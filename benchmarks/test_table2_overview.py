"""Table II — experiments overview (10-400 containers, 1 per pod)."""

from conftest import emit

from repro.core.integration import RUNTIME_CONFIGS
from repro.measure.figures import table2_experiments_overview
from repro.measure.report import render_table2


def test_table2_experiments_overview(benchmark):
    rows = benchmark.pedantic(table2_experiments_overview, rounds=1, iterations=1)
    emit("table2", render_table2(rows))
    assert [r["section"] for r in rows] == ["IV-B", "IV-C", "IV-D", "IV-E"]
    # Every runtime configuration named in Table II exists in the registry.
    assert set(RUNTIME_CONFIGS) == {
        "crun-wamr",
        "crun-wasmtime",
        "crun-wasmer",
        "crun-wasmedge",
        "shim-wasmtime",
        "shim-wasmer",
        "shim-wasmedge",
        "crun-python",
        "runc-python",
    }
