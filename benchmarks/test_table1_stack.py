"""Table I — software stack of the evaluation."""

from conftest import emit

from repro.measure.figures import table1_software_stack
from repro.measure.report import render_table1


def test_table1_software_stack(benchmark):
    stack = benchmark.pedantic(table1_software_stack, rounds=1, iterations=1)
    emit("table1", render_table1(stack))
    assert stack == {
        "Linux": "5.4.0-187-generic",
        "Kubernetes": "1.27.0",
        "containerd": "1.1.1",
        "runC": "1.6.31",
        "WAMR": "2.1.0",
        "WasmEdge": "0.14.0",
        "Wasmer": "4.3.5",
        "Wasmtime": "23.0.1",
    }
