"""Recovery — 100 pods converge to Running under 30% transient faults.

The robustness acceptance experiment: a 100-replica crun-wamr deployment
where 30% of image pulls and 30% of engine compiles fail transiently.
The self-healing control plane (restart policies + capped exponential
backoff + deployment reconciliation) must still reach all-Running with
zero permanently failed pods, and do so deterministically per seed.
"""

from conftest import SEED, emit

from repro.measure.recovery import render_recovery, run_recovery
from repro.sim.faults import FaultPoint, transient_plan


def _run(seed: int):
    return run_recovery(
        config="crun-wamr",
        count=100,
        seed=seed,
        plan=transient_plan(
            seed=seed, pull_probability=0.3, compile_probability=0.3
        ),
    )


def test_recovery_100_pods_under_faults(benchmark):
    m = benchmark.pedantic(_run, args=(SEED,), rounds=1, iterations=1)
    emit("recovery", render_recovery(m))

    # Every replica recovered: all Running, nothing permanently failed.
    assert m.converged
    assert m.failed_pods == 0
    assert m.count == 100

    # Faults really fired at the promised rate (≈30% of 100 pods per point,
    # with retried pulls re-rolling the dice).
    assert m.faults_by_point.get(FaultPoint.IMAGE_PULL.value, 0) >= 30
    assert m.faults_by_point.get(FaultPoint.ENGINE_COMPILE.value, 0) >= 20

    # Recovery was driven by retries: one backoff period per injected fault,
    # and the restart counter adds up.
    total_faults = sum(m.faults_by_point.values())
    assert len(m.backoff_events) == total_faults
    assert m.restarts_total == total_faults
    assert m.time_to_all_running > 0.0

    # Determinism: an identical second run produces the identical timeline.
    again = _run(SEED)
    assert again.timeline == m.timeline
    assert again.backoff_events == m.backoff_events
    assert again.faults_by_point == m.faults_by_point

    # A different seed draws a different fault pattern.
    other = _run(SEED + 1)
    assert other.converged and other.failed_pods == 0
    assert other.timeline != m.timeline
