"""Specialization-tier throughput: specialized closures vs flat bytecode.

Writes ``benchmarks/output/BENCH_specialize.json`` — instructions/second
for the baseline prepared flat interpreter, the ``bytecode``
specialization mode (folding + fusion + bounds elision + inline
caches), and the full ``on`` mode (exec'd Python closures) on the same
microbenchmark workloads `test_interpreter_micro` uses, plus the
store-heavy churn variant whose bounds checks the elision pass removes.

The ≥2× floors on fib and memory_churn are the PR's acceptance
criterion; CI runs this file in the ``specialize-bench`` job and uploads
the JSON as an artifact.
"""

import json
import time

from conftest import OUTPUT_DIR, emit
from test_interpreter_micro import FIB_WAT, LOOP_WAT, STORE_WAT

from repro.wasm import parse_wat, validate_module
from repro.wasm.runtime import (
    Interpreter,
    Store,
    instantiate,
    prepare_module,
    specialize_module,
)

_WORKLOADS = {
    "fib": (FIB_WAT, "fib", [15]),
    "memory_churn": (LOOP_WAT, "churn", [2000]),
    "memory_churn_store": (STORE_WAT, "churn_store", [2000]),
}

#: workloads whose speedup is asserted (the PR's acceptance floors)
_FLOORS = {"fib": 2.0, "memory_churn": 2.0}


def _instantiate(src: str, specialize=None):
    module = validate_module(parse_wat(src))
    if specialize is not None:
        prepare_module(module)
        specialize_module(module, specialize).attach(module)
    store = Store()
    inst = instantiate(store, module)
    return Interpreter(store), inst  # unmetered: the closure fast path


def _throughput(src, export, args, specialize=None, min_seconds=0.4):
    interp, inst = _instantiate(src, specialize)
    addr = inst.export_addr(export, "func")
    interp.invoke(addr, args)  # warm up (lazy prepare, IC fills)
    rounds = 0
    instrs_before = interp.instructions_executed
    t0 = time.perf_counter()
    while True:
        interp.invoke(addr, args)
        rounds += 1
        elapsed = time.perf_counter() - t0
        if elapsed >= min_seconds:
            break
    instrs = interp.instructions_executed - instrs_before
    return {
        "instructions": instrs,
        "seconds": elapsed,
        "rounds": rounds,
        "instr_per_sec": instrs / elapsed,
    }


def test_bench_specialized_vs_flat_json():
    """Emit BENCH_specialize.json and hold the ≥2× acceptance floors."""
    report = {"workloads": {}}
    for name, (src, export, args) in _WORKLOADS.items():
        flat = _throughput(src, export, args)
        bytecode = _throughput(src, export, args, specialize="bytecode")
        compiled = _throughput(src, export, args, specialize="on")
        report["workloads"][name] = {
            "flat": flat,
            "bytecode": bytecode,
            "specialized": compiled,
            "speedup_bytecode": round(
                bytecode["instr_per_sec"] / flat["instr_per_sec"], 3
            ),
            "speedup": round(
                compiled["instr_per_sec"] / flat["instr_per_sec"], 3
            ),
        }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_specialize.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    lines = [
        f"[specialize] {name}: {w['specialized']['instr_per_sec'] / 1e6:.2f} "
        f"Minstr/s vs flat {w['flat']['instr_per_sec'] / 1e6:.2f} Minstr/s "
        f"({w['speedup']:.2f}x; bytecode-only {w['speedup_bytecode']:.2f}x)"
        for name, w in report["workloads"].items()
    ]
    emit("specialize_throughput", "\n".join(lines))
    for name, floor in _FLOORS.items():
        speedup = report["workloads"][name]["speedup"]
        assert speedup >= floor, (
            f"{name}: specialization tier below its ≥{floor}x floor "
            f"(got {speedup}x)"
        )


def test_bench_specialized_fib(benchmark):
    interp, inst = _instantiate(FIB_WAT, specialize="on")
    addr = inst.export_addr("fib", "func")
    result = benchmark(lambda: interp.invoke(addr, [15]))
    assert result == [610]


def test_bench_specialized_memory_churn(benchmark):
    interp, inst = _instantiate(LOOP_WAT, specialize="on")
    addr = inst.export_addr("churn", "func")
    result = benchmark(lambda: interp.invoke(addr, [2000]))
    assert isinstance(result[0], int)


def test_bench_specialization_pass(benchmark):
    """Cost of the pass itself (amortized once per digest by the cache)."""
    module = validate_module(parse_wat(FIB_WAT))
    prepare_module(module)
    sm = benchmark(lambda: specialize_module(module, "on"))
    assert sm.functions[0].compiled is not None
