"""Fig 5 — memory per container for the runwasi shims (`free` channel).

Paper claims (§IV-C): our integration has the lowest memory of all
runwasi shims at every density; at least ~10.87% below
containerd-shim-wasmtime (the second best) and ~77.53% below
containerd-shim-wasmer (the worst).
"""

from conftest import SEED, emit

from repro.measure.figures import fig5_runwasi_memory_free
from repro.measure.report import render_series
from repro.measure.stats import percent_lower


def test_fig5_runwasi_memory_free(benchmark):
    series = benchmark.pedantic(
        fig5_runwasi_memory_free, kwargs={"seed": SEED}, rounds=1, iterations=1
    )
    emit("fig5", render_series(series))

    for density in series.densities:
        ours = series.value("crun-wamr", density)
        for shim in ("shim-wasmtime", "shim-wasmedge", "shim-wasmer"):
            assert ours < series.value(shim, density), (shim, density)

        # Second-best is the wasmtime shim; reduction >= ~10.87%.
        second = series.value("shim-wasmtime", density)
        assert percent_lower(ours, second) >= 10.8, density

        # Worst is the wasmer shim; reduction ~77.53% (+/- 3pp).
        worst = series.value("shim-wasmer", density)
        assert 73.0 <= percent_lower(ours, worst) <= 81.0, density

    # Ranking among shims: wasmtime < wasmedge < wasmer.
    for density in series.densities:
        assert (
            series.value("shim-wasmtime", density)
            < series.value("shim-wasmedge", density)
            < series.value("shim-wasmer", density)
        )
