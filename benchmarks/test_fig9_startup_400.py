"""Fig 9 — time to start 400 concurrent containers' workload executions.

Paper claims (§IV-E): the ranking flips at scale — ours is now ~18.82%
and ~28.38% faster than containerd-shim-wasmedge and -wasmtime, but
~6.93% *slower* than crun-wasmtime (the best crun runtime at 400);
ours still beats both Python baselines.
"""

from conftest import SEED, emit

from repro.measure.figures import fig9_startup_400
from repro.measure.report import render_series
from repro.measure.stats import percent_lower


def test_fig9_startup_400(benchmark):
    series = benchmark.pedantic(
        fig9_startup_400, kwargs={"seed": SEED}, rounds=1, iterations=1
    )
    emit("fig9", render_series(series))
    t = {config: series.value(config, 400) for config in series.configs()}

    # Crossover 1: ours now beats the runwasi shims decisively.
    assert percent_lower(t["crun-wamr"], t["shim-wasmedge"]) >= 15.0
    assert percent_lower(t["crun-wamr"], t["shim-wasmtime"]) >= 25.0

    # Crossover 2: crun-wasmtime overtakes ours (paper: ours 6.93% slower).
    assert t["crun-wasmtime"] < t["crun-wamr"]
    slower_by = 100.0 * (t["crun-wamr"] / t["crun-wasmtime"] - 1.0)
    assert 3.0 <= slower_by <= 12.0, slower_by

    # Ours still beats the other crun engines and both Python baselines.
    for config in ("crun-wasmer", "crun-wasmedge", "crun-python", "runc-python"):
        assert t["crun-wamr"] < t[config], config

    # The heavyweight shim (wasmer) is the slowest overall at scale.
    assert max(t, key=t.get) == "shim-wasmer"
