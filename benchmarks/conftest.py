"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one table/figure of the paper: it runs the
deployments behind it (through the full simulated stack), prints the
series the paper plots, writes it to ``benchmarks/output/``, and asserts
the paper's qualitative relations. Timings reported by pytest-benchmark
measure the regeneration harness itself.

Experiments are cached process-wide (`repro.measure.experiment.measure`),
so figures sharing bars (e.g. crun-wamr appears in Figs 3-7 and 10) don't
re-simulate identical deployments.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Seed for the whole benchmark campaign.
SEED = 1


def emit(name: str, text: str) -> None:
    """Print a figure's rows and persist them under benchmarks/output/."""
    print()
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def seed() -> int:
    return SEED
