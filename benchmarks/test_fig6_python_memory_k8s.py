"""Fig 6 — ours vs Python containers, metrics-server channel.

Paper claims (§IV-D): our integration uses at least 17.98% less memory
than crun+Python and 18.15% less than runC+Python; it is the *only* Wasm
runtime below the Python baselines on this channel; it is ~21% below the
second-most efficient Wasm runtime (containerd-shim-wasmtime).
"""

from conftest import SEED, emit

from repro.measure.figures import fig3_crun_memory_metrics, fig6_python_memory_metrics
from repro.measure.report import render_series
from repro.measure.stats import percent_lower


def test_fig6_python_memory_metrics(benchmark):
    series = benchmark.pedantic(
        fig6_python_memory_metrics, kwargs={"seed": SEED}, rounds=1, iterations=1
    )
    emit("fig6", render_series(series))

    for density in series.densities:
        ours = series.value("crun-wamr", density)
        crun_py = series.value("crun-python", density)
        runc_py = series.value("runc-python", density)
        assert percent_lower(ours, crun_py) >= 17.9, density
        assert percent_lower(ours, runc_py) >= 18.1, density

        # Only ours beats Python; shim-wasmtime (second best Wasm) doesn't.
        assert series.value("shim-wasmtime", density) > min(crun_py, runc_py)

        # Roughly the paper's 21.07% below shim-wasmtime (ours is a bit
        # better in our model; assert the minimum).
        assert percent_lower(ours, series.value("shim-wasmtime", density)) >= 21.0

    # The crun Wasm baselines (Fig 3) are all above Python too.
    crun_series = fig3_crun_memory_metrics(seed=SEED)
    for config in ("crun-wasmtime", "crun-wasmer", "crun-wasmedge"):
        for density in series.densities:
            assert crun_series.value(config, density) > series.value(
                "crun-python", density
            )
