"""Fig 7 — ours vs Python containers, `free` channel.

Paper claims (§IV-D): at least 16.38% below crun+Python and 17.87% below
runC+Python; containerd-shim-wasmtime also beats Python here (by at
least ~4.66%) — the only other Wasm runtime to do so.
"""

from conftest import SEED, emit

from repro.measure.figures import (
    fig4_crun_memory_free,
    fig5_runwasi_memory_free,
    fig7_python_memory_free,
)
from repro.measure.report import render_series
from repro.measure.stats import percent_lower


def test_fig7_python_memory_free(benchmark):
    series = benchmark.pedantic(
        fig7_python_memory_free, kwargs={"seed": SEED}, rounds=1, iterations=1
    )
    emit("fig7", render_series(series))

    for density in series.densities:
        ours = series.value("crun-wamr", density)
        crun_py = series.value("crun-python", density)
        runc_py = series.value("runc-python", density)
        assert percent_lower(ours, crun_py) >= 16.3, density
        assert percent_lower(ours, runc_py) >= 17.8, density

        # shim-wasmtime beats Python by >= ~4.66% on this channel.
        shim_wt = series.value("shim-wasmtime", density)
        assert percent_lower(shim_wt, crun_py) >= 4.6, density

    # ...and is the ONLY other Wasm runtime to do so: every other Wasm
    # config sits above Python on the free channel.
    crun_free = fig4_crun_memory_free(seed=SEED)
    shim_free = fig5_runwasi_memory_free(seed=SEED)
    for density in series.densities:
        python_best = min(
            series.value("crun-python", density), series.value("runc-python", density)
        )
        for config in ("crun-wasmtime", "crun-wasmer", "crun-wasmedge"):
            assert crun_free.value(config, density) > python_best, (config, density)
        for config in ("shim-wasmedge", "shim-wasmer"):
            assert shim_free.value(config, density) > python_best, (config, density)
