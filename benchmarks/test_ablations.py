"""Ablations of the integration's design choices (DESIGN.md §7).

Not in the paper — these quantify *why* the WAMR-in-crun integration wins
by turning its mechanisms off one at a time:

* **no dlopen sharing** (`crun-wamr-static`): each container carries a
  private copy of the engine text → the per-container saving of §III-C(1);
* **AOT mode** (`crun-wamr-aot`): trades memory (native artifact) and
  startup (per-container compilation) for execution speed — the paper's
  "advanced runtime optimizations" future work;
* **channel decomposition**: how much of the metrics-vs-`free` gap each
  outside-the-cgroup mechanism contributes.
"""

from conftest import emit

from repro.container import constants as C
from repro.engines.registry import get_engine
from repro.measure.experiment import ExperimentRunner
from repro.sim.memory import MIB

DENSITY = 100


def _render(title: str, rows: dict) -> str:
    lines = [title]
    for name, value in rows.items():
        lines.append(f"  {name:22s} {value}")
    return "\n".join(lines)


def test_ablation_dlopen_sharing(benchmark):
    """Shared libiwasm text vs a statically linked private copy."""
    runner = ExperimentRunner(seed=21)

    def run():
        return runner.run("crun-wamr", DENSITY), runner.run("crun-wamr-static", DENSITY)

    shared, static = benchmark.pedantic(run, rounds=1, iterations=1)
    lib_text = get_engine("wamr").profile.lib_text / MIB
    extra = static.metrics_mib - shared.metrics_mib
    emit(
        "ablation_dlopen",
        _render(
            "[ablation] dlopen sharing (metrics-server MiB/container, n=100)",
            {
                "shared (paper)": f"{shared.metrics_mib:.2f}",
                "static (ablated)": f"{static.metrics_mib:.2f}",
                "cost of ablation": f"+{extra:.2f} per container",
                "libiwasm text": f"{lib_text:.2f}",
            },
        ),
    )
    # Losing sharing costs ~one private copy of the engine text per
    # container (minus the amortized shared copy it replaces).
    assert extra > 0.8 * lib_text
    assert extra < 1.2 * lib_text
    # Both variants still beat every other engine by a wide margin.
    assert static.metrics_mib < 0.7 * runner.run("crun-wasmedge", DENSITY).metrics_mib


def test_ablation_wamr_aot(benchmark):
    """Interpreter (paper) vs AOT mode: memory/startup vs execution speed."""
    runner = ExperimentRunner(seed=22)

    def run():
        return runner.run("crun-wamr", DENSITY), runner.run("crun-wamr-aot", DENSITY)

    interp, aot = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_aot",
        _render(
            "[ablation] WAMR interpreter vs AOT (n=100)",
            {
                "interp memory": f"{interp.metrics_mib:.2f} MiB/container",
                "aot memory": f"{aot.metrics_mib:.2f} MiB/container",
                "interp startup": f"{interp.startup_seconds:.2f} s",
                "aot startup": f"{aot.startup_seconds:.2f} s",
            },
        ),
    )
    # AOT costs memory (native artifact) and startup (compilation)...
    assert aot.metrics_mib > interp.metrics_mib
    assert aot.startup_seconds > interp.startup_seconds
    # ...but its execution model is much faster per instruction.
    assert (
        get_engine("wamr-aot").profile.interp_ips
        > 5 * get_engine("wamr").profile.interp_ips
    )
    # Still the most memory-efficient family: below the wasmtime shim.
    assert aot.metrics_mib < runner.run("shim-wasmtime", DENSITY).metrics_mib


def test_ablation_channel_gap_decomposition(benchmark):
    """Attribute the metrics-vs-free gap to its outside-cgroup mechanisms."""
    runner = ExperimentRunner(seed=23)
    m = benchmark.pedantic(
        runner.run, args=("crun-wamr", DENSITY), rounds=1, iterations=1
    )
    gap = m.free_mib - m.metrics_mib

    shim = C.RUNC_SHIM_PRIVATE / MIB
    kernel = C.KERNEL_PER_POD / MIB
    daemon = C.CONTAINERD_GROWTH_PER_POD / MIB
    # Shared text first-touched outside pod cgroups (the runc-v2 shim
    # binary), amortized over the deployment.
    shim_text = C.RUNC_SHIM_TEXT / MIB / DENSITY
    explained = shim + kernel + daemon + shim_text

    emit(
        "ablation_gap",
        _render(
            f"[ablation] metrics-vs-free gap decomposition (crun-wamr, n={DENSITY})",
            {
                "measured gap": f"{gap:.3f} MiB/container",
                "shim process": f"{shim:.3f}",
                "kernel per pod": f"{kernel:.3f}",
                "containerd growth": f"{daemon:.3f}",
                "shim text (shared)": f"{shim_text:.3f}",
                "explained": f"{explained:.3f}",
            },
        ),
    )
    # The mechanisms account for (nearly) the whole gap.
    assert abs(gap - explained) < 0.15, (gap, explained)


def test_ablation_gap_shrinks_with_density(benchmark):
    """Shared-text amortization: the free/metrics ratio falls with density."""
    runner = ExperimentRunner(seed=24)

    def run():
        return {n: runner.run("crun-wamr", n) for n in (10, 50, 200)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    ratios = {n: m.free_mib / m.metrics_mib for n, m in results.items()}
    emit(
        "ablation_density_gap",
        _render(
            "[ablation] free/metrics ratio vs density (crun-wamr)",
            {f"n={n}": f"{r:.3f}" for n, r in ratios.items()},
        ),
    )
    assert ratios[10] > ratios[50] > ratios[200] > 1.0
