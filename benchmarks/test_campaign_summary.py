"""The full §IV campaign with claim-by-claim verdicts (§IV-F summary)."""

from conftest import SEED, emit

from repro.measure.campaign import render_campaign, run_campaign


def test_campaign_all_claims_hold(benchmark):
    result = benchmark.pedantic(run_campaign, kwargs={"seed": SEED}, rounds=1, iterations=1)
    emit("campaign", render_campaign(result))
    failing = [c.claim_id for c in result.claims if not c.holds]
    assert result.all_hold(), failing
    assert len(result.measurements) == 27  # 9 configs x 3 densities
