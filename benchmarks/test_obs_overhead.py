"""Telemetry overhead contract: zero-cost when disabled, cheap when on.

Writes ``benchmarks/output/BENCH_obs.json`` (CI artifact):

* the 400-pod crun-wamr startup experiment timed with telemetry **off**
  (the default every figure/benchmark runs under);
* the same experiment with telemetry **on**, plus how many metric
  observations and spans it recorded;
* the **projected disabled-path cost**: with telemetry off every
  instrumentation site is a bound ``NULL_METRIC`` no-op call, so the
  upper bound on what instrumentation adds to the default path is
  (observations recorded when on) × (measured null-call cost). The
  contract asserted here: that projection stays ≤ 3% of the
  telemetry-off wall time.

The enabled-path overhead is recorded for trajectory context but not
asserted — it is the price of opting in, not a regression gate.
"""

import json
import time

from conftest import OUTPUT_DIR, SEED, emit

from repro import obs
from repro.engines.cache import reset_caches
from repro.measure.experiment import ExperimentRunner
from repro.obs.registry import NULL_METRIC

#: contract: instrumentation may cost the telemetry-off path at most this
OFF_OVERHEAD_CEILING_PCT = 3.0


def _timed_400pod() -> float:
    reset_caches()
    t0 = time.perf_counter()
    m = ExperimentRunner(seed=SEED).run("crun-wamr", 400)
    seconds = time.perf_counter() - t0
    assert m.count == 400 and m.ready_fraction == 1.0
    return seconds


def _null_call_cost(calls: int = 200_000) -> float:
    """Mean seconds per NULL_METRIC method call (the disabled-path unit)."""
    null = NULL_METRIC
    t0 = time.perf_counter()
    for _ in range(calls):
        null.inc()
    return (time.perf_counter() - t0) / calls


def test_bench_obs_overhead():
    was_enabled = obs.enabled()
    obs.set_enabled(False)
    try:
        _timed_400pod()  # warm engine/measurement-independent state
        off_s = min(_timed_400pod() for _ in range(2))

        obs.set_enabled(True)
        obs.reset()
        on_s = _timed_400pod()
        events = obs.default_registry().events
        spans = len(obs.tagged_spans())
    finally:
        obs.reset()
        obs.set_enabled(was_enabled)
        reset_caches()

    per_call = _null_call_cost()
    projected_off_s = events * per_call
    projected_off_pct = 100.0 * projected_off_s / off_s
    on_pct = 100.0 * (on_s - off_s) / off_s

    report = {
        "experiment": "crun-wamr x400",
        "telemetry_off_seconds": round(off_s, 4),
        "telemetry_on_seconds": round(on_s, 4),
        "overhead_on_pct": round(on_pct, 2),
        "metric_events_recorded": events,
        "spans_recorded": spans,
        "null_call_seconds": per_call,
        "projected_off_overhead_seconds": round(projected_off_s, 6),
        "projected_off_overhead_pct": round(projected_off_pct, 3),
        "off_overhead_ceiling_pct": OFF_OVERHEAD_CEILING_PCT,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_obs.json").write_text(json.dumps(report, indent=2) + "\n")

    emit(
        "obs_overhead",
        "\n".join(
            [
                f"[obs] 400-pod startup: {off_s:.3f} s off vs {on_s:.3f} s on "
                f"({on_pct:+.1f}% with telemetry)",
                f"[obs] enabled run recorded {events} metric events, {spans} spans",
                f"[obs] disabled-path projection: {events} null calls x "
                f"{per_call * 1e9:.0f} ns = {projected_off_s * 1000:.2f} ms "
                f"({projected_off_pct:.2f}% of off wall time)",
            ]
        ),
    )

    # ~15 metric events per pod (guest-work caching collapses the rest).
    assert events > 2_000, "enabled run barely recorded anything"
    assert spans > 1000, "tracer sink did not mirror spans"
    assert projected_off_pct <= OFF_OVERHEAD_CEILING_PCT, (
        f"disabled-path instrumentation cost projects to "
        f"{projected_off_pct:.2f}% of the 400-pod experiment "
        f"(ceiling {OFF_OVERHEAD_CEILING_PCT}%)"
    )
