"""Fig 8 — time to start 10 concurrent containers' workload executions.

Paper claims (§IV-E): our integration starts all 10 under 3.24 s;
containerd-shim-wasmedge/-wasmtime are fastest (up to ~11.45% faster than
ours); ours is at least ~2.66% faster than every other crun Wasm runtime
and faster than both Python baselines (by 3%-18%).
"""

from conftest import SEED, emit

from repro.measure.figures import fig8_startup_10
from repro.measure.report import render_series
from repro.measure.stats import percent_lower


def test_fig8_startup_10(benchmark):
    series = benchmark.pedantic(
        fig8_startup_10, kwargs={"seed": SEED}, rounds=1, iterations=1
    )
    emit("fig8", render_series(series))
    t = {config: series.value(config, 10) for config in series.configs()}

    # Ours completes under the paper's 3.24 s.
    assert t["crun-wamr"] < 3.24

    # The runwasi wasmtime/wasmedge shims lead, by at most ~11.45%.
    for shim in ("shim-wasmtime", "shim-wasmedge"):
        assert t[shim] < t["crun-wamr"]
        assert percent_lower(t[shim], t["crun-wamr"]) <= 11.5

    # Ours beats every other crun-integrated Wasm runtime by >= ~2.66%.
    for config in ("crun-wasmtime", "crun-wasmer", "crun-wasmedge"):
        assert percent_lower(t["crun-wamr"], t[config]) >= 2.6, config

    # Ours beats the Python baselines by 3%-18%-ish.
    assert 3.0 <= percent_lower(t["crun-wamr"], t["crun-python"]) <= 20.0
    assert 3.0 <= percent_lower(t["crun-wamr"], t["runc-python"]) <= 20.0
