"""Application-impact experiment (beyond the paper).

§IV-A argues the minimal microservice makes measurements "dominated by
the WebAssembly runtime rather than the actual microservice"; §IV-D and
IV-F defer the impact of bigger applications. This benchmark quantifies
it with the size-parameterized memhog workload: as the guest's working
set grows, runtime overhead amortizes and the crun-WAMR advantage over
the heavier engines shrinks — the regime where runtime choice stops
mattering.
"""

from conftest import emit

from repro.measure.experiment import ExperimentRunner
from repro.measure.stats import percent_lower
from repro.workloads.memhog import MEMHOG_IMAGE_REF, build_memhog_image

DENSITY = 50
#: guest working set in 64-KiB pages: 0, 4 MiB, 16 MiB
PAGE_STEPS = (0, 64, 256)


def test_workload_size_sensitivity(benchmark):
    runner = ExperimentRunner(seed=31, extra_images=(build_memhog_image(),))

    def run():
        table = {}
        for pages in PAGE_STEPS:
            env = {"PAGES": str(pages)}
            table[pages] = {
                config: runner.run(
                    config, DENSITY, env=env, image=MEMHOG_IMAGE_REF
                ).metrics_mib
                for config in ("crun-wamr", "crun-wasmedge", "crun-wasmtime")
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "[sensitivity] per-container memory (metrics MiB) vs guest working set",
        f"{'pages':>8s}{'app MiB':>9s}{'crun-wamr':>12s}{'crun-wasmedge':>15s}"
        f"{'crun-wasmtime':>15s}{'advantage':>11s}",
    ]
    advantages = {}
    for pages in PAGE_STEPS:
        row = table[pages]
        advantage = percent_lower(row["crun-wamr"], row["crun-wasmedge"])
        advantages[pages] = advantage
        lines.append(
            f"{pages:>8d}{pages * 64 / 1024:>9.1f}{row['crun-wamr']:>12.2f}"
            f"{row['crun-wasmedge']:>15.2f}{row['crun-wasmtime']:>15.2f}"
            f"{advantage:>10.1f}%"
        )
    emit("sensitivity", "\n".join(lines))

    # The tiny-workload regime shows the paper's headline (~50%+).
    assert advantages[0] >= 50.0
    # The advantage decays monotonically as the app dominates...
    assert advantages[0] > advantages[64] > advantages[256]
    # ...and by a 16 MiB working set it is a minor factor (< 25%).
    assert advantages[256] < 25.0

    # Every configuration pays the same +app-memory delta (the engine
    # cannot shrink the app): deltas within 5% of each other.
    for config in ("crun-wamr", "crun-wasmedge", "crun-wasmtime"):
        delta = table[256][config] - table[0][config]
        assert abs(delta - 16.0) < 1.0, (config, delta)
