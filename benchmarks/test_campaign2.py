"""Campaign engine v2: warm-worker pools vs the PR 3 throwaway pool.

Writes ``benchmarks/output/BENCH_campaign2.json`` (CI uploads it, following
the ``BENCH_campaign.json`` precedent):

* the full 27-cell figure campaign, cold measurement cache, at
  ``--jobs 4``: the PR 3 runner (``legacy_run_matrix``, preserved
  verbatim) vs the campaign engine's persistent warm-worker pool —
  both best-of-2, same machine;
* the engine's wall time against the **recorded PR 3 baseline** (the
  cold campaign wall time pinned in ``BENCH_campaign.json`` when PR 3
  landed), asserted against a ≥2× floor — the compounding of the warm
  pool, LPT scheduling, memoized workload images, and the simulation
  speedups landed since;
* the correctness contract: summaries byte-identical to ``--jobs 1``,
  telemetry merged at ``--jobs 4``, resume re-running only unfinished
  cells.

The live legacy-vs-engine ratio is recorded for trajectory context; like
PR 3's parallel speedup it is hardware-dependent (≈1× on this 1-core
container, grows with real cores), so its ≥2× floor is only enforced
when ``REPRO_BENCH_REQUIRE_SPEEDUP=1`` (set on multi-core CI runners).
"""

import json
import os
import time

from conftest import OUTPUT_DIR, SEED, emit

from repro import obs
from repro.measure.cache import MeasurementCache, measurement_to_dict
from repro.measure.campaign import render_campaign, run_campaign
from repro.measure.experiment import ExperimentRunner
from repro.measure.parallel import legacy_run_matrix, run_matrix
from repro.measure.series import expand_series, run_series
from repro.obs.export import chrome_trace

#: The PR 3 runner's cold-cache campaign wall time as recorded in
#: ``BENCH_campaign.json`` when PR 3 landed (commit 286a99a, this
#: container class). The tracked floor: the engine must stay ≥2× under it.
PINNED_PR3_BASELINE = {
    "commit": "286a99a",
    "campaign_cold_seconds": 10.7,
    "note": "wall times are machine-dependent; speedup ratios are the "
    "tracked quantity",
}

ENGINE_SPEEDUP_FLOOR = 2.0
JOBS = 4

#: Metric families that track per-process warmth (engine-cache hits,
#: specialization/deopt state); they differ even between two successive
#: --jobs 1 runs in one process, so the telemetry-equality check scopes
#: to the simulation-driven remainder.
_WARMTH_PREFIXES = ("repro_engine_cache", "repro_specialize", "repro_zygote")


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _best_of_two(fn):
    first, first_s = _timed(fn)
    _, second_s = _timed(fn)
    return first, min(first_s, second_s)


def _deterministic_counters():
    out = {}
    for family in obs.default_registry().collect():
        if family.kind != "counter" or family.name.startswith(_WARMTH_PREFIXES):
            continue
        out[family.name] = {k: c.value for k, c in family.samples()}
    return out


def _telemetry_matches_sequential() -> bool:
    """Merged --jobs 4 counters + trace == a --jobs 1 run's, exactly."""
    pairs = [("crun-wamr", 10), ("crun-python", 10)]
    was = obs.enabled()
    obs.set_enabled(True)
    try:
        obs.reset()
        seq = run_matrix(pairs, seed=SEED, jobs=1, cache=None)
        seq_counters = _deterministic_counters()
        seq_trace = json.dumps(
            chrome_trace(obs.tagged_spans(), obs.context_labels()), sort_keys=True
        )
        obs.reset()
        par = run_matrix(pairs, seed=SEED, jobs=JOBS, cache=None)
        par_counters = _deterministic_counters()
        par_trace = json.dumps(
            chrome_trace(obs.tagged_spans(), obs.context_labels()), sort_keys=True
        )
        return par == seq and par_counters == seq_counters and par_trace == seq_trace
    finally:
        obs.reset()
        obs.set_enabled(was)


def _resume_reruns_remainder_only(tmp_root) -> dict:
    """Interrupt a 4-cell series after 2 cells; resuming re-runs only 2."""
    spec = {
        "name": "bench-resume",
        "matrix": {"config": ["crun-wamr", "crun-python"], "count": [10, 25]},
    }
    cache = MeasurementCache(tmp_root / "cache")
    manifest = tmp_root / "series.json"

    class Interrupted(RuntimeError):
        pass

    done = []

    def interrupt(cell, _m):
        done.append(cell.key)
        if len(done) == 2:
            raise Interrupted

    try:
        run_series(spec, jobs=1, cache=cache, manifest=manifest, on_cell=interrupt)
    except Interrupted:
        pass

    reruns = []
    original = ExperimentRunner.run
    ExperimentRunner.run = lambda self, c, n: reruns.append((c, n)) or original(self, c, n)
    try:
        resumed = run_series(spec, jobs=1, cache=cache, manifest=manifest)
    finally:
        ExperimentRunner.run = original
    return {
        "cells": 4,
        "interrupted_after": len(done),
        "rerun_on_resume": len(reruns),
        "resumed_from_cache": len(resumed.resumed),
        "ok": len(reruns) == 2 and sorted(resumed.resumed) == sorted(done),
    }


def test_bench_campaign2_json(tmp_path):
    """Emit BENCH_campaign2.json and hold the engine-speedup floor."""
    pairs = [(c.config, c.count) for c in expand_series("figures")]
    assert len(pairs) == 27

    legacy, legacy_s = _best_of_two(
        lambda: legacy_run_matrix(pairs, seed=SEED, jobs=JOBS, cache=None)
    )
    engine, engine_s = _best_of_two(
        lambda: run_campaign(seed=SEED, jobs=JOBS, cache=None)
    )
    sequential, sequential_s = _timed(
        lambda: run_campaign(seed=SEED, jobs=1, cache=None)
    )

    render_identical = render_campaign(engine) == render_campaign(sequential)
    measurements_identical = all(
        json.dumps(measurement_to_dict(engine.measurements[key]))
        == json.dumps(measurement_to_dict(legacy[key]))
        for key in legacy
    )
    telemetry_ok = _telemetry_matches_sequential()
    resume = _resume_reruns_remainder_only(tmp_path)

    vs_pinned = PINNED_PR3_BASELINE["campaign_cold_seconds"] / engine_s
    vs_live_legacy = legacy_s / engine_s

    report = {
        "pinned_baseline": PINNED_PR3_BASELINE,
        "jobs": JOBS,
        "cpus": os.cpu_count(),
        "campaign_cold": {
            "legacy_pool_seconds": round(legacy_s, 4),
            "engine_seconds": round(engine_s, 4),
            "sequential_seconds": round(sequential_s, 4),
            "speedup_vs_live_legacy": round(vs_live_legacy, 3),
            "speedup_vs_pinned_baseline": round(vs_pinned, 3),
        },
        "correctness": {
            "render_identical_to_jobs1": render_identical,
            "measurements_identical_to_legacy": measurements_identical,
            "telemetry_merged_at_jobs4": telemetry_ok,
            "resume": resume,
        },
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_campaign2.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    c = report["campaign_cold"]
    emit(
        "campaign2",
        "\n".join(
            [
                f"[campaign2] figure campaign cold @ --jobs {JOBS}: "
                f"{c['engine_seconds']:.3f} s engine vs "
                f"{c['legacy_pool_seconds']:.3f} s PR 3 pool "
                f"({c['speedup_vs_live_legacy']:.2f}x live, "
                f"{os.cpu_count()} cpu)",
                f"[campaign2] vs recorded PR 3 baseline "
                f"({PINNED_PR3_BASELINE['campaign_cold_seconds']} s): "
                f"{c['speedup_vs_pinned_baseline']:.2f}x",
                f"[campaign2] summaries byte-identical: {render_identical}, "
                f"telemetry merged @ jobs={JOBS}: {telemetry_ok}, "
                f"resume re-ran {resume['rerun_on_resume']}/{resume['cells']}",
            ]
        ),
    )

    assert engine.all_hold() and sequential.all_hold()
    assert render_identical, "engine campaign summary drifted from --jobs 1"
    assert measurements_identical, "engine measurements drifted from PR 3 runner"
    assert telemetry_ok, "merged --jobs 4 telemetry drifted from --jobs 1"
    assert resume["ok"], f"resume re-ran the wrong cells: {resume}"
    assert vs_pinned >= ENGINE_SPEEDUP_FLOOR, (
        f"campaign engine lost its ≥{ENGINE_SPEEDUP_FLOOR}x floor over the "
        f"recorded PR 3 baseline: {vs_pinned:.2f}x"
    )
    if os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP") == "1":
        assert vs_live_legacy >= ENGINE_SPEEDUP_FLOOR, (
            f"live legacy-pool comparison below {ENGINE_SPEEDUP_FLOOR}x: "
            f"{vs_live_legacy:.2f}x"
        )
