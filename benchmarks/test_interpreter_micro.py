"""Microbenchmarks of the Wasm substrate itself.

Unlike the figure benchmarks (which time a simulated campaign), these
time the *real* work this library does: decoding, validation, and
interpreting guest code. Useful for tracking toolchain performance over
time; they assert functional correctness, not latency.

The interpreter benchmarks also write ``benchmarks/output/BENCH_interpreter.json``
— machine-readable instructions/second for the prepared flat interpreter
vs the reference tree-walker on fib and memory-churn, so the throughput
trajectory is tracked across PRs (CI uploads it as an artifact).
"""

import json
import time

from conftest import OUTPUT_DIR, emit

from repro.wasm import assemble_wat, decode_module, encode_module, parse_wat, validate_module
from repro.wasm.embed import run_wasi
from repro.wasm.runtime import (
    Interpreter,
    ReferenceInterpreter,
    Store,
    instantiate,
)
from repro.workloads.microservice import MICROSERVICE_WAT, build_microservice_wasm

FIB_WAT = """
(module (func $fib (export "fib") (param i32) (result i32)
  (if (result i32) (i32.lt_s (local.get 0) (i32.const 2))
    (then (local.get 0))
    (else (i32.add
      (call $fib (i32.sub (local.get 0) (i32.const 1)))
      (call $fib (i32.sub (local.get 0) (i32.const 2))))))))
"""

LOOP_WAT = """
(module (memory 1) (func (export "churn") (param i32) (result i32)
  (local $i i32) (local $acc i32)
  (block $out (loop $top
    (br_if $out (i32.ge_u (local.get $i) (local.get 0)))
    (i32.store (i32.and (i32.mul (local.get $i) (i32.const 13)) (i32.const 0xfff8))
               (local.get $i))
    (local.set $acc (i32.xor (local.get $acc)
      (i32.load (i32.and (i32.mul (local.get $i) (i32.const 7)) (i32.const 0xfff8)))))
    (local.set $i (i32.add (local.get $i) (i32.const 1)))
    (br $top)))
  (local.get $acc)))
"""


STORE_WAT = """
(module (memory 1) (func (export "churn_store") (param i32) (result i32)
  (local $i i32)
  (block $out (loop $top
    (br_if $out (i32.ge_u (local.get $i) (local.get 0)))
    (i32.store (i32.and (i32.mul (local.get $i) (i32.const 40)) (i32.const 0xfffc))
               (local.get $i))
    (i32.store8 (i32.and (i32.add (local.get $i) (i32.const 17)) (i32.const 0xffff))
                (local.get $i))
    (i32.store16 (i32.and (i32.mul (local.get $i) (i32.const 6)) (i32.const 0xfffe))
                 (local.get $i))
    (local.set $i (i32.add (local.get $i) (i32.const 1)))
    (br $top)))
  (local.get $i)))
"""


def _instantiate(src: str, interpreter_cls=Interpreter):
    module = validate_module(parse_wat(src))
    store = Store()
    inst = instantiate(store, module)
    return interpreter_cls(store), inst


def _throughput(interpreter_cls, src, export, args, min_seconds=0.4):
    """Measured instructions/second for one interpreter on one workload."""
    interp, inst = _instantiate(src, interpreter_cls)
    addr = inst.export_addr(export, "func")
    interp.invoke(addr, args)  # warm up (triggers lazy prepare)
    rounds = 0
    instrs_before = interp.instructions_executed
    t0 = time.perf_counter()
    while True:
        interp.invoke(addr, args)
        rounds += 1
        elapsed = time.perf_counter() - t0
        if elapsed >= min_seconds:
            break
    instrs = interp.instructions_executed - instrs_before
    return {
        "instructions": instrs,
        "seconds": elapsed,
        "rounds": rounds,
        "instr_per_sec": instrs / elapsed,
    }


_WORKLOADS = {
    "fib": (FIB_WAT, "fib", [15]),
    "memory_churn": (LOOP_WAT, "churn", [2000]),
    "memory_churn_store": (STORE_WAT, "churn_store", [2000]),
}


def test_bench_interpreter_vs_reference_json():
    """Emit BENCH_interpreter.json and hold the ≥2× speedup floor."""
    report = {"workloads": {}}
    for name, (src, export, args) in _WORKLOADS.items():
        prepared = _throughput(Interpreter, src, export, args)
        reference = _throughput(ReferenceInterpreter, src, export, args)
        speedup = prepared["instr_per_sec"] / reference["instr_per_sec"]
        report["workloads"][name] = {
            "prepared": prepared,
            "reference": reference,
            "speedup": round(speedup, 3),
        }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_interpreter.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    lines = [
        f"[interp] {name}: prepared {w['prepared']['instr_per_sec'] / 1e6:.2f} "
        f"Minstr/s vs reference {w['reference']['instr_per_sec'] / 1e6:.2f} "
        f"Minstr/s ({w['speedup']:.2f}x)"
        for name, w in report["workloads"].items()
    ]
    emit("interp_throughput", "\n".join(lines))
    for name, w in report["workloads"].items():
        assert w["speedup"] >= 2.0, f"{name}: flat interpreter lost its ≥2x edge"


def test_bench_interpreter_fib(benchmark):
    interp, inst = _instantiate(FIB_WAT)
    addr = inst.export_addr("fib", "func")
    result = benchmark(lambda: interp.invoke(addr, [15]))
    assert result == [610]


def test_bench_interpreter_memory_churn(benchmark):
    interp, inst = _instantiate(LOOP_WAT)
    addr = inst.export_addr("churn", "func")
    result = benchmark(lambda: interp.invoke(addr, [2000]))
    assert isinstance(result[0], int)


def test_bench_decode_validate(benchmark):
    blob = build_microservice_wasm()

    def decode():
        return validate_module(decode_module(blob))

    module = benchmark(decode)
    assert module.total_funcs() > 5


def test_bench_wat_parse(benchmark):
    module = benchmark(lambda: parse_wat(MICROSERVICE_WAT))
    assert module.total_funcs() > 5


def test_bench_encode(benchmark):
    module = parse_wat(MICROSERVICE_WAT)
    blob = benchmark(lambda: encode_module(module))
    assert blob[:4] == b"\x00asm"


def test_bench_full_wasi_run(benchmark):
    blob = build_microservice_wasm()
    result = benchmark(lambda: run_wasi(blob, args=["svc"], env={"REQUESTS": "1"}))
    assert result.exit_code == 0
    emit(
        "micro_summary",
        f"[micro] microservice: {result.instructions} instructions/run, "
        f"module {len(blob)} bytes",
    )
