"""Monitoring overhead contract: near-zero when off, bounded when sampling.

Writes ``benchmarks/output/BENCH_monitor.json`` (CI artifact):

* the 400-pod crun-wamr startup experiment with sampling **off** (the
  default): with no monitor attached every kubelet/scheduler tick site
  is a single ``sampler is None`` check, so the disabled-path cost
  projects to (ticks an enabled run performs) × (measured null-tick
  cost). Contract: that projection stays ≤ 3% of the off wall time.
* the same experiment with telemetry on but sampling off (the
  ``--metrics-out``/``--trace-out`` price, measured by the obs bench);
* the same experiment with **sampling on** — monitor gauges scraped,
  TSDB appends, rule evaluation per sample tick. Contract: sampling
  adds ≤ 10% on top of the telemetry-on wall time.
"""

import gc
import json
import time
import types

from conftest import OUTPUT_DIR, SEED, emit

from repro import obs
from repro.engines.cache import reset_caches
from repro.k8s.kubelet import Kubelet
from repro.measure.experiment import ExperimentRunner
from repro.obs import timeseries

#: contract: with sampling off, tick sites may cost the default path at
#: most this much of the 400-pod experiment
OFF_OVERHEAD_CEILING_PCT = 3.0
#: contract: turning sampling on may add at most this much on top of
#: plain telemetry (metrics + spans, no sampler)
SAMPLING_OVERHEAD_CEILING_PCT = 10.0


def _timed_400pod() -> float:
    reset_caches()
    gc.collect()
    t0 = time.perf_counter()
    m = ExperimentRunner(seed=SEED).run("crun-wamr", 400)
    seconds = time.perf_counter() - t0
    assert m.count == 400 and m.ready_fraction == 1.0
    return seconds


def _null_tick_cost(calls: int = 200_000) -> float:
    """Mean seconds per disabled tick site (the real kubelet guard run
    against a monitor-less stand-in: one method call + None check)."""
    guard = Kubelet._tick_sampler
    stub = types.SimpleNamespace(sampler=None)
    t0 = time.perf_counter()
    for _ in range(calls):
        guard(stub)
    return (time.perf_counter() - t0) / calls


def test_bench_monitor_overhead():
    was_enabled = obs.enabled()
    obs.set_enabled(False)
    cycles = 3
    off_times, telemetry_times, sampled_times = [], [], []
    try:
        _timed_400pod()  # warm engine/measurement-independent state
        ticks_before = timeseries.tick_invocations()
        # Interleave the three phases: process drift (allocator growth,
        # host jitter) hits each phase equally instead of stacking on
        # whichever phase runs last.
        for _ in range(cycles):
            obs.set_enabled(False)
            off_times.append(_timed_400pod())

            obs.set_enabled(True)
            obs.reset()
            telemetry_times.append(_timed_400pod())

            obs.reset()
            timeseries.set_sampling(True, timeseries.DEFAULT_PERIOD)
            try:
                sampled_times.append(_timed_400pod())
            finally:
                timeseries.set_sampling(False)
        off_s = min(off_times)
        telemetry_s = min(telemetry_times)
        sampled_s = min(sampled_times)
        ticks = (timeseries.tick_invocations() - ticks_before) // cycles
        # obs.reset() at the top of each cycle clears the TSDB, so the
        # entries left are exactly the last cycle's single sampled run.
        entries = timeseries.default_db().tagged_entries()
        samples = sum(1 for _, e in entries if e[0] == "sample")
        alerts = sum(1 for _, e in entries if e[0] == "alert")
    finally:
        obs.reset()
        obs.set_enabled(was_enabled)
        reset_caches()

    per_tick = _null_tick_cost()
    projected_off_s = ticks * per_tick
    projected_off_pct = 100.0 * projected_off_s / off_s
    sampling_pct = 100.0 * (sampled_s - telemetry_s) / telemetry_s

    report = {
        "experiment": "crun-wamr x400",
        "sampling_off_seconds": round(off_s, 4),
        "telemetry_only_seconds": round(telemetry_s, 4),
        "sampling_on_seconds": round(sampled_s, 4),
        "sampling_overhead_pct": round(sampling_pct, 2),
        "sampling_overhead_ceiling_pct": SAMPLING_OVERHEAD_CEILING_PCT,
        "tick_sites_per_run": ticks,
        "samples_recorded": samples,
        "alert_transitions_recorded": alerts,
        "null_tick_seconds": per_tick,
        "projected_off_overhead_seconds": round(projected_off_s, 6),
        "projected_off_overhead_pct": round(projected_off_pct, 3),
        "off_overhead_ceiling_pct": OFF_OVERHEAD_CEILING_PCT,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_monitor.json").write_text(json.dumps(report, indent=2) + "\n")

    emit(
        "monitor_overhead",
        "\n".join(
            [
                f"[monitor] 400-pod startup: {off_s:.3f} s off, "
                f"{telemetry_s:.3f} s telemetry, {sampled_s:.3f} s sampled "
                f"({sampling_pct:+.1f}% for the sampler)",
                f"[monitor] sampled run: {ticks} tick sites, {samples} samples, "
                f"{alerts} alert transitions",
                f"[monitor] disabled-path projection: {ticks} null ticks x "
                f"{per_tick * 1e9:.0f} ns = {projected_off_s * 1000:.3f} ms "
                f"({projected_off_pct:.3f}% of off wall time)",
            ]
        ),
    )

    assert samples > 400, "sampled run recorded almost nothing"
    assert alerts >= 2, "no alert lifecycle during the deploy (canary gone?)"
    assert projected_off_pct <= OFF_OVERHEAD_CEILING_PCT, (
        f"disabled tick sites project to {projected_off_pct:.3f}% of the "
        f"400-pod experiment (ceiling {OFF_OVERHEAD_CEILING_PCT}%)"
    )
    assert sampling_pct <= SAMPLING_OVERHEAD_CEILING_PCT, (
        f"sampling adds {sampling_pct:.1f}% over plain telemetry "
        f"(ceiling {SAMPLING_OVERHEAD_CEILING_PCT}%)"
    )
