"""Startup phase breakdown — the mechanism behind Figs 8 and 9.

Beyond the paper: decomposes each configuration's startup into the
traced phases (pipeline, serialized, parallel, exec) at both densities
and asserts the mechanism that produces the ranking flip:

* at n=10 the *parallel* phase separates configurations (JIT compile,
  CPython boot) while serialized work is negligible;
* at n=400 the *serialized* phase dominates for the configurations with
  per-creation lock-growth (runwasi shims, our loader), which is exactly
  why crun-wasmtime overtakes ours and ours overtakes the shims.
"""

from conftest import SEED, emit

from repro.measure.experiment import measure
from repro.measure.report import render_phase_breakdown

CONFIGS = ("crun-wamr", "crun-wasmtime", "shim-wasmtime", "crun-python")


def test_startup_phase_breakdown(benchmark):
    def run():
        return {
            n: {c: measure(c, n, seed=SEED).phase_means for c in CONFIGS}
            for n in (10, 400)
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    for n, breakdowns in data.items():
        emit(
            f"phases_n{n}",
            render_phase_breakdown(
                f"[phases] mean startup phase durations, n={n}", breakdowns
            ),
        )

    small, large = data[10], data[400]

    # n=10: parallel work separates configs; ours has the cheapest.
    for config in ("crun-wasmtime", "crun-python"):
        assert (
            small["crun-wamr"]["startup.parallel"]
            < small[config]["startup.parallel"]
        )
    # Serialized phase (incl. queueing) is small next to the pipeline.
    for config in CONFIGS:
        assert (
            small[config]["startup.serialized"] < small[config]["startup.pipeline"]
        )

    # n=400: the serialized phase (queue wait included) explodes for the
    # growth-heavy configs — the shims worst, ours in between,
    # crun-wasmtime barely affected.
    assert (
        large["shim-wasmtime"]["startup.serialized"]
        > large["crun-wamr"]["startup.serialized"]
        > large["crun-wasmtime"]["startup.serialized"]
    )
    # Growth between densities is >10x for the shims' serialized phase.
    assert (
        large["shim-wasmtime"]["startup.serialized"]
        > 10 * small["shim-wasmtime"]["startup.serialized"]
    )
