"""Multi-node fleet benchmark: cross-node scaling + snapshot locality.

Writes ``benchmarks/output/BENCH_multinode.json`` (uploaded by CI
alongside the other trajectory artifacts):

* the scaling sweep — one 2000-pod deployment repeated over fleet sizes
  1/2/4/8, reporting the startup makespan, pods-per-second throughput
  and the speedup over the single node, asserted against a conservative
  ≥3× floor at 8 nodes (the serialized sandbox phase is quadratic in
  per-node container count, so real scaling is superlinear);
* the headline 10k-pods-on-32-nodes point, asserted to complete with
  every container ready;
* the zygote-locality ablation — the same wave scheduled with and
  without the snapshot-locality bonus, asserting that locality-aware
  placement wins strictly more warm starts;
* the scheduler's wall-clock decision latency (mean over all placements
  of the 8-node sweep point), from the decision-seconds histogram.

All throughput figures are simulated-time ratios of the same seed, so
the floors are machine-independent; only the decision latency is
wall-clock (reported, not asserted).
"""

import json

from conftest import OUTPUT_DIR, SEED, emit

from repro.measure.fleet import render_fleet, run_fleet, run_locality_ablation

#: Acceptance floor: 8 nodes at least this much faster than 1 node.
SCALING_FLOOR_8 = 3.0

#: The scaling sweep's deployment size (dense enough that the per-node
#: serialized phase dominates the single-node baseline).
SWEEP_COUNT = 2000

#: The headline point: the paper's 500-pods-per-node extension, fleet-wide.
HEADLINE_PODS = 10_000
HEADLINE_NODES = 32


def _decision_latency_stats():
    """Mean/count of scheduler decisions from the wall-clock histogram."""
    from repro import obs

    fam = obs.default_registry().get("repro_scheduler_decision_seconds")
    if fam is None:
        return None
    child = fam.labels()
    if not child.count:
        return None
    return {"decisions": child.count, "mean_us": 1e6 * child.sum / child.count}


def test_bench_multinode_json():
    """Emit BENCH_multinode.json and hold the fleet-scaling floor."""
    from repro import obs

    was_enabled = obs.enabled()
    obs.set_enabled(True)
    obs.reset()
    try:
        scaling = run_fleet(
            config="crun-wamr-zygote", count=SWEEP_COUNT, seed=SEED
        )
        latency = _decision_latency_stats()
    finally:
        obs.reset()
        obs.set_enabled(was_enabled)

    from repro.measure.experiment import ExperimentRunner

    headline = ExperimentRunner(seed=SEED).run(
        "crun-wamr-zygote", HEADLINE_PODS, nodes=HEADLINE_NODES
    )
    ablation = run_locality_ablation(seed=SEED)

    report = {
        "seed": SEED,
        "scaling": {
            "config": scaling.config,
            "count": scaling.count,
            "points": [
                {
                    "nodes": p.nodes,
                    "startup_seconds": round(p.measurement.startup_seconds, 4),
                    "throughput_pods_per_s": round(p.throughput, 2),
                    "speedup": round(scaling.speedup(p.nodes), 3),
                    "warm_fraction": (
                        round(p.warm_fraction, 4)
                        if p.warm_fraction is not None
                        else None
                    ),
                }
                for p in scaling.points
            ],
            "floor_8_nodes": SCALING_FLOOR_8,
        },
        "headline": {
            "pods": HEADLINE_PODS,
            "nodes": HEADLINE_NODES,
            "startup_seconds": round(headline.startup_seconds, 4),
            "throughput_pods_per_s": round(headline.throughput, 2),
            "ready_fraction": headline.ready_fraction,
            "max_pods_on_a_node": max(u.pods for u in headline.per_node),
            "min_pods_on_a_node": min(u.pods for u in headline.per_node),
        },
        "locality": {
            "config": ablation.config,
            "count": ablation.count,
            "nodes": ablation.nodes,
            "warm_fraction_with": round(ablation.warm_fraction_with, 4),
            "warm_fraction_without": round(ablation.warm_fraction_without, 4),
            "warm_gain": round(ablation.warm_gain, 4),
        },
        "scheduler_decision_latency": latency,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_multinode.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    speedup8 = scaling.speedup(8)
    lat = (
        f"{latency['mean_us']:.1f} us over {latency['decisions']} decisions"
        if latency
        else "n/a"
    )
    emit(
        "multinode",
        "\n".join(
            [
                render_fleet(scaling),
                "",
                f"[fleet] 10k pods on 32 nodes: "
                f"{headline.startup_seconds:.2f} s "
                f"({headline.throughput:.0f} pods/s, "
                f"ready {headline.ready_fraction:.0%})",
                f"[fleet] locality warm fraction: "
                f"{ablation.warm_fraction_with:.1%} with vs "
                f"{ablation.warm_fraction_without:.1%} without "
                f"({ablation.warm_gain:+.1%})",
                f"[fleet] scheduler decision latency: {lat}",
            ]
        ),
    )

    # Near-linear (here: superlinear) scaling floor at 8 nodes.
    assert speedup8 >= SCALING_FLOOR_8, (
        f"8-node speedup {speedup8:.2f}x below the {SCALING_FLOOR_8}x floor"
    )
    # Monotone: adding nodes never slows the sweep down.
    makespans = [p.measurement.startup_seconds for p in scaling.points]
    assert makespans == sorted(makespans, reverse=True)
    # The headline deployment completes fleet-wide, evenly sharded.
    assert headline.ready_fraction == 1.0
    assert len(headline.per_node) == HEADLINE_NODES
    assert max(u.pods for u in headline.per_node) <= 500
    # Locality-aware placement strictly beats locality-blind warm-wise.
    assert ablation.warm_fraction_with > ablation.warm_fraction_without
