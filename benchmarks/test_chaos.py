"""Chaos acceptance — 400 pods converge under full-lifecycle faults.

Writes ``benchmarks/output/BENCH_chaos.json`` (CI artifact): the chaos
campaign at two seeds, each with its convergence invariants, per-point
fault counts, and recovery-time percentiles.

Three contracts are asserted:

* **convergence** — a 400-replica crun-wamr deployment with every
  lifecycle stage armed at 25% per attempt (startup, guest runtime,
  WASI, zygote/cache corruption, probes, scrape loss) ends with every
  replica Ready or terminally backed off, accounting verified, nothing
  leaked — and bit-identically per seed;
* **figure isolation** — with every fault toggle off, Fig 9 regenerates
  byte-identical to the committed output: the chaos layer cannot move a
  published number;
* **disabled-path overhead** — the ambient-context guards the runtime
  fault points added to the hot path cost, projected as (guard calls ×
  measured per-call cost), stay ≤ 3% of the 400-pod wall time (the
  BENCH_obs ceiling).
"""

import json
import time

from conftest import OUTPUT_DIR, SEED, emit

from repro.engines.cache import reset_caches
from repro.measure.chaos import render_chaos, run_chaos
from repro.measure.experiment import ExperimentRunner
from repro.measure.figures import fig9_startup_400
from repro.measure.report import render_series
from repro.sim import faults

COUNT = 400
RATE = 0.25

#: contract: ambient fault guards may cost the fault-free path at most this
GUARD_OVERHEAD_CEILING_PCT = 3.0


def _run(seed: int):
    return run_chaos(config="crun-wamr", count=COUNT, seed=seed, rate=RATE)


def test_bench_chaos(benchmark):
    m1 = benchmark.pedantic(_run, args=(SEED,), rounds=1, iterations=1)
    emit("chaos", render_chaos(m1))

    # Every invariant holds: all Ready or terminally backed off,
    # accounting verified, counters balanced, nothing leaked.
    assert m1.all_hold(), [c.name for c in m1.invariants if not c.passed]
    assert m1.converged and m1.ready_pods == COUNT

    # Chaos was real: ≥20% of the fleet drew at least one fault, with
    # both startup and runtime stages firing.
    total_faults = sum(m1.faults_by_point.values())
    assert total_faults >= 0.20 * COUNT, total_faults
    assert m1.faults_by_point.get("image.pull", 0) > 0
    assert m1.faults_by_point.get("guest.trap", 0) > 0
    assert m1.faults_by_point.get("probe.liveness", 0) > 0

    # Determinism: the identical campaign is bit-identical.
    again = _run(SEED)
    assert again.to_dict() == m1.to_dict()

    # A different seed converges too, along a different timeline.
    m2 = _run(SEED + 1)
    assert m2.all_hold(), [c.name for c in m2.invariants if not c.passed]
    assert (
        m2.to_dict()["timeline_fingerprint"]
        != m1.to_dict()["timeline_fingerprint"]
    )

    report = {
        "experiment": f"chaos crun-wamr x{COUNT} @ rate {RATE}",
        "seeds": {str(SEED): m1.to_dict(), str(SEED + 1): m2.to_dict()},
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_chaos.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )


def test_faults_off_fig9_byte_identical():
    """With no plan armed, the chaos layer must not move a published
    figure: Fig 9 regenerates byte-identical to the committed output."""
    committed = (OUTPUT_DIR / "fig9.txt").read_text()
    regenerated = render_series(fig9_startup_400(seed=SEED)) + "\n"
    assert regenerated == committed


def _timed_400pod_counting_guards():
    reset_caches()
    with faults.count_disabled_guards():
        t0 = time.perf_counter()
        m = ExperimentRunner(seed=SEED).run("crun-wamr", 400)
        seconds = time.perf_counter() - t0
        calls = faults.guard_calls()
    assert m.count == 400 and m.ready_fraction == 1.0
    return seconds, calls


def _guard_call_cost(calls: int = 200_000) -> float:
    """Mean seconds per ambient() call on the disabled (no-scope) path."""
    ambient = faults.ambient
    t0 = time.perf_counter()
    for _ in range(calls):
        ambient()
    return (time.perf_counter() - t0) / calls


def test_disabled_guard_overhead_within_ceiling():
    try:
        wall_s, guard_calls = _timed_400pod_counting_guards()
    finally:
        reset_caches()
    per_call = _guard_call_cost()
    projected_pct = 100.0 * (guard_calls * per_call) / wall_s

    report = {
        "experiment": "crun-wamr x400, no fault plan",
        "wall_seconds": round(wall_s, 4),
        "guard_calls": guard_calls,
        "guard_call_cost_ns": round(per_call * 1e9, 2),
        "projected_overhead_pct": round(projected_pct, 3),
        "ceiling_pct": GUARD_OVERHEAD_CEILING_PCT,
    }
    emit("chaos_guard_overhead", json.dumps(report, indent=2, sort_keys=True))
    assert guard_calls > 0  # the guards are actually on the hot path
    assert projected_pct <= GUARD_OVERHEAD_CEILING_PCT, report
