"""Zygote warm-start benchmark: cold vs snapshot-clone 400-pod startup.

Writes ``benchmarks/output/BENCH_zygote.json`` (uploaded by CI alongside
the other trajectory artifacts):

* the 400-pod deployment makespan under plain ``crun-wamr`` (every
  container pays full instantiation) vs ``crun-wamr-zygote`` (clones
  restore the image's instance snapshot), asserted against a ≥2× floor —
  both are simulated-time measurements of the same seed, so the ratio is
  machine-independent;
* per-container memory through both channels for the two runs;
* the pinned pre-PR cold baseline for trajectory context;
* an opt-out sanity check: with ``REPRO_ZYGOTE=off`` the zygote config
  degrades to crun-wamr's startup constants.
"""

import json
import os

from conftest import OUTPUT_DIR, SEED, emit

from repro.measure.experiment import ExperimentRunner
from repro.measure.zygote import run_zygote_experiment

#: Cold-path reference measured at the seed of this PR (commit 7feca1f):
#: the 400-pod crun-wamr startup makespan before any warm path existed.
#: Simulated seconds, so exact across machines at this seed.
PINNED_BASELINE = {
    "commit": "7feca1f",
    "cold_400pod_startup_seconds": 10.92,
    "note": "simulated makespan at seed=1; the zygote run must beat the "
    "cold path by the floor below on the same seed",
}

#: Acceptance floor: warm 400-pod startup at least this much faster.
STARTUP_SPEEDUP_FLOOR = 2.0


def test_bench_zygote_json():
    """Emit BENCH_zygote.json and hold the warm-start speedup floor."""
    os.environ["REPRO_ZYGOTE"] = "on"
    try:
        comp = run_zygote_experiment(seed=SEED, count=400)
        off = _opt_out_makespan()
    finally:
        del os.environ["REPRO_ZYGOTE"]

    report = {
        "pinned_baseline": PINNED_BASELINE,
        "count": comp.count,
        "seed": comp.seed,
        "startup": {
            "cold_seconds": round(comp.cold.startup_seconds, 4),
            "warm_seconds": round(comp.warm.startup_seconds, 4),
            "speedup": round(comp.startup_speedup, 3),
            "speedup_vs_pinned_baseline": round(
                PINNED_BASELINE["cold_400pod_startup_seconds"]
                / comp.warm.startup_seconds,
                3,
            ),
        },
        "memory_mib_per_container": {
            "cold_metrics": round(comp.cold.metrics_mib, 3),
            "warm_metrics": round(comp.warm.metrics_mib, 3),
            "cold_free": round(comp.cold.free_mib, 3),
            "warm_free": round(comp.warm.free_mib, 3),
            "ratio_metrics": round(comp.memory_ratio, 3),
        },
        "opt_out": {
            "zygote_off_seconds": round(off, 4),
            "cold_seconds": round(comp.cold.startup_seconds, 4),
        },
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_zygote.json").write_text(json.dumps(report, indent=2) + "\n")

    s, m = report["startup"], report["memory_mib_per_container"]
    emit(
        "startup_warm",
        "\n".join(
            [
                f"[zygote] 400-pod startup: {s['cold_seconds']:.2f} s cold vs "
                f"{s['warm_seconds']:.2f} s warm ({s['speedup']:.2f}x)",
                f"[zygote] memory/container: {m['cold_metrics']:.2f} MiB cold vs "
                f"{m['warm_metrics']:.2f} MiB warm ({m['ratio_metrics']:.2f}x)",
                f"[zygote] REPRO_ZYGOTE=off makespan: "
                f"{report['opt_out']['zygote_off_seconds']:.2f} s "
                f"(cold path: {s['cold_seconds']:.2f} s)",
            ]
        ),
    )

    assert comp.cold.ready_fraction == 1.0 and comp.warm.ready_fraction == 1.0
    assert comp.startup_speedup >= STARTUP_SPEEDUP_FLOOR, (
        f"warm-start speedup {comp.startup_speedup:.2f}x below the "
        f"{STARTUP_SPEEDUP_FLOOR}x floor"
    )
    assert comp.warm.metrics_mib < comp.cold.metrics_mib
    assert comp.warm.free_mib < comp.cold.free_mib
    # Opt-out: within the jitter envelope of the cold path (streams are
    # keyed by config-prefixed container ids, so not bit-equal).
    assert abs(off - comp.cold.startup_seconds) < 0.05 * comp.cold.startup_seconds


def _opt_out_makespan() -> float:
    os.environ["REPRO_ZYGOTE"] = "off"
    try:
        return ExperimentRunner(seed=SEED).run("crun-wamr-zygote", 400).startup_seconds
    finally:
        os.environ["REPRO_ZYGOTE"] = "on"
