"""Fig 10 — memory per container across all runtimes, averaged over all
deployment sizes (`free` channel).

Paper claims (§IV-F): ours lowest overall; ordering ours < shim-wasmtime
< Python baselines < shim-wasmedge < crun-wasmedge < crun-wasmtime <
crun-wasmer < shim-wasmer; summary reductions: >= 40% vs crun Wasm
runtimes, 10.87%-77.53% vs runwasi shims, >= 16.38% vs Python.
"""

from conftest import SEED, emit

from repro.measure.figures import fig10_overview
from repro.measure.report import render_series
from repro.measure.stats import percent_lower


def test_fig10_overview(benchmark):
    series = benchmark.pedantic(
        fig10_overview, kwargs={"seed": SEED}, rounds=1, iterations=1
    )
    emit("fig10", render_series(series))
    avg = {config: series.averaged(config) for config in series.configs()}

    expected_order = [
        "crun-wamr",
        "shim-wasmtime",
        "crun-python",
        "runc-python",
        "shim-wasmedge",
        "crun-wasmedge",
        "crun-wasmtime",
        "crun-wasmer",
        "shim-wasmer",
    ]
    assert sorted(avg, key=avg.get) == expected_order

    ours = avg["crun-wamr"]
    # §IV-F summary numbers.
    assert percent_lower(ours, avg["crun-wasmedge"]) >= 40.0
    assert percent_lower(ours, avg["shim-wasmtime"]) >= 10.8
    assert 73.0 <= percent_lower(ours, avg["shim-wasmer"]) <= 81.0
    assert percent_lower(ours, avg["crun-python"]) >= 16.3
    assert percent_lower(ours, avg["runc-python"]) >= 16.3
