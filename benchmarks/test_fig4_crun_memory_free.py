"""Fig 4 — the same crun deployments measured by the OS (`free`).

Paper claims (§IV-B): `free` reports more than the metrics server in all
scenarios (up to ~42% more), and our integration uses at least 40.0% less
memory than any other crun Wasm runtime on this channel.
"""

from conftest import SEED, emit

from repro.measure.figures import fig3_crun_memory_metrics, fig4_crun_memory_free
from repro.measure.report import render_series
from repro.measure.stats import percent_lower


def test_fig4_crun_memory_free(benchmark):
    series = benchmark.pedantic(
        fig4_crun_memory_free, kwargs={"seed": SEED}, rounds=1, iterations=1
    )
    emit("fig4", render_series(series))
    metrics = fig3_crun_memory_metrics(seed=SEED)

    for density in series.densities:
        ours = series.value("crun-wamr", density)
        _, best_value = series.best_other(density)
        assert percent_lower(ours, best_value) >= 40.0

        for config in series.configs():
            free_v = series.value(config, density)
            met_v = metrics.value(config, density)
            # free always reports more...
            assert free_v > met_v, (config, density)
            # ...by a bounded factor (paper: up to 42%; tolerance +10pp
            # because low densities amortize shared text less).
            assert free_v / met_v < 1.52, (config, density, free_v / met_v)

    # The gap peaks for the smallest deployments (shared text amortizes).
    ours_gap = [
        series.value("crun-wamr", d) / metrics.value("crun-wamr", d)
        for d in series.densities
    ]
    assert ours_gap[0] >= ours_gap[-1]
