"""Fig 3 — memory per container, Wasm runtimes embedded in crun,
measured by the Kubernetes metrics server at 10/100/400 containers.

Paper claims (§IV-B): our WAMR integration outperforms the other three
crun Wasm integrations by *at least 50.34%* at every deployment density,
and per-container memory varies little with density.
"""

from conftest import SEED, emit

from repro.measure.figures import fig3_crun_memory_metrics
from repro.measure.report import render_series
from repro.measure.stats import percent_lower


def test_fig3_crun_memory_metrics(benchmark):
    series = benchmark.pedantic(
        fig3_crun_memory_metrics, kwargs={"seed": SEED}, rounds=1, iterations=1
    )
    emit("fig3", render_series(series))

    for density in series.densities:
        ours = series.value("crun-wamr", density)
        best_other, best_value = series.best_other(density)
        reduction = percent_lower(ours, best_value)
        # Paper: >= 50.34% lower than any other crun Wasm runtime.
        assert reduction >= 50.0, (density, best_other, reduction)

    # Paper: overhead per container does not vary significantly with
    # density (proper scaling). Density 10 carries the shared-library
    # first-touch charge un-amortized, so allow 25% there.
    for config in series.configs():
        dense = series.value(config, 400)
        for density in series.densities:
            assert abs(series.value(config, density) - dense) / dense < 0.25, config

    # Ranking among the baselines: wasmedge < wasmtime < wasmer.
    for density in series.densities:
        assert (
            series.value("crun-wasmedge", density)
            < series.value("crun-wasmtime", density)
            < series.value("crun-wasmer", density)
        )
