"""Campaign throughput: incremental accounting + parallel scheduling.

Writes ``benchmarks/output/BENCH_campaign.json`` (the trajectory artifact
CI uploads, following the ``BENCH_interpreter.json`` precedent):

* the 400-pod deployment experiment timed under incremental vs reference
  (full-scan) accounting — the algorithmic speedup this PR's ledger
  delivers, asserted against a ≥2× floor;
* the full 27-experiment campaign timed sequentially vs through the
  process-pool scheduler (speedup is hardware-dependent: ~1× on 1 core,
  grows with ``--jobs`` on multicore runners), with byte-identity of the
  rendered summaries asserted;
* the pinned pre-PR baseline wall times for trajectory context.

Everything here runs with the measurement cache disabled — these tests
exist to time simulation, not cache reads.
"""

import json
import os
import time

from conftest import OUTPUT_DIR, SEED, emit

from repro.measure.campaign import render_campaign, run_campaign
from repro.measure.experiment import ExperimentRunner

#: Pre-PR wall times measured at the seed of this PR (commit 286a99a,
#: single-core container): the recompute-the-world accountant.
PINNED_BASELINE = {
    "commit": "286a99a",
    "experiment_400pod_seconds": 1.15,
    "campaign_sequential_seconds": 10.7,
    "note": "wall times are machine-dependent; speedup ratios are the "
    "tracked quantity",
}

#: Algorithmic floor: incremental ledger vs full-scan reference accounting
#: on the 400-pod experiment. Ratio of two same-machine runs, so it is
#: stable across hardware.
ACCOUNTING_SPEEDUP_FLOOR = 2.0


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _run_400pod(accounting: str) -> float:
    os.environ["REPRO_MEMORY_ACCOUNTING"] = accounting
    try:
        m, seconds = _timed(lambda: ExperimentRunner(seed=SEED).run("crun-wamr", 400))
        assert m.count == 400
        return seconds
    finally:
        del os.environ["REPRO_MEMORY_ACCOUNTING"]


def test_bench_campaign_json():
    """Emit BENCH_campaign.json and hold the accounting-speedup floor."""
    incremental_s = _run_400pod("incremental")
    reference_s = _run_400pod("reference")
    accounting_speedup = reference_s / incremental_s

    sequential, sequential_s = _timed(
        lambda: run_campaign(seed=SEED, jobs=1, cache=None)
    )
    jobs = min(os.cpu_count() or 1, 4)
    parallel, parallel_s = _timed(
        lambda: run_campaign(seed=SEED, jobs=jobs, cache=None)
    )
    render_identical = render_campaign(sequential) == render_campaign(parallel)

    report = {
        "pinned_baseline": PINNED_BASELINE,
        "experiment_400pod": {
            "incremental_seconds": round(incremental_s, 4),
            "reference_seconds": round(reference_s, 4),
            "accounting_speedup": round(accounting_speedup, 3),
            "speedup_vs_pinned_baseline": round(
                PINNED_BASELINE["experiment_400pod_seconds"] / incremental_s, 3
            ),
        },
        "campaign": {
            "jobs": jobs,
            "sequential_seconds": round(sequential_s, 4),
            "parallel_seconds": round(parallel_s, 4),
            "parallel_speedup": round(sequential_s / parallel_s, 3),
            "speedup_vs_pinned_baseline": round(
                PINNED_BASELINE["campaign_sequential_seconds"] / sequential_s, 3
            ),
            "render_identical": render_identical,
        },
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_campaign.json").write_text(json.dumps(report, indent=2) + "\n")

    e = report["experiment_400pod"]
    c = report["campaign"]
    emit(
        "campaign_perf",
        "\n".join(
            [
                f"[campaign] 400-pod experiment: {e['incremental_seconds']:.3f} s "
                f"incremental vs {e['reference_seconds']:.3f} s reference "
                f"({e['accounting_speedup']:.2f}x accounting speedup)",
                f"[campaign] full matrix: {c['sequential_seconds']:.3f} s sequential "
                f"vs {c['parallel_seconds']:.3f} s with {c['jobs']} workers "
                f"({c['parallel_speedup']:.2f}x)",
                f"[campaign] vs pinned seed baseline: 400-pod "
                f"{e['speedup_vs_pinned_baseline']:.2f}x, campaign "
                f"{c['speedup_vs_pinned_baseline']:.2f}x",
            ]
        ),
    )

    assert sequential.all_hold() and parallel.all_hold()
    assert render_identical, "parallel campaign summary drifted from sequential"
    assert accounting_speedup >= ACCOUNTING_SPEEDUP_FLOOR, (
        f"incremental accounting lost its ≥{ACCOUNTING_SPEEDUP_FLOOR}x edge: "
        f"{accounting_speedup:.2f}x"
    )
