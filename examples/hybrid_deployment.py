#!/usr/bin/env python3
"""Hybrid deployment: Wasm and traditional containers on one node.

§III-C: "Kubernetes pods can seamlessly run traditional and Wasm-based
containers, enabling hybrid deployments without additional infrastructure
changes." This example runs a mixed fleet — WAMR-in-crun Wasm pods, a
runwasi shim pod, and Python pods — on a single simulated node, then
breaks the node's memory down by pod and by channel.

Run:  python examples/hybrid_deployment.py
"""

from collections import defaultdict

from repro.k8s.cluster import build_cluster
from repro.measure.free import FreeSampler
from repro.sim.memory import MIB

FLEET = [
    ("crun-wamr", 6),
    ("shim-wasmtime", 3),
    ("crun-python", 3),
]


def main() -> None:
    cluster = build_cluster(seed=5)
    node = cluster.node
    sampler = FreeSampler(node.env.memory)
    sampler.mark_baseline()

    all_pods = []
    for config, count in FLEET:
        pods = cluster.deploy_and_wait(config, count, env={"REQUESTS": "1"})
        all_pods.extend((config, p) for p in pods)
        print(f"deployed {count:2d} x {config:14s} "
              f"(last ready at t={max(p.exec_started_at for p in pods):.2f}s)")

    metrics = node.metrics.pod_working_sets()
    by_config = defaultdict(list)
    for config, pod in all_pods:
        by_config[config].append(metrics[pod.uid])

    print("\nper-pod working sets (metrics-server channel):")
    for config, values in by_config.items():
        mean = sum(values) / len(values) / MIB
        lo, hi = min(values) / MIB, max(values) / MIB
        print(f"  {config:14s} mean {mean:6.2f} MiB   [min {lo:6.2f}, max {hi:6.2f}]")

    # Verify every container actually ran its workload.
    served = 0
    for config, pod in all_pods:
        for c in node.kubelet.pod_containers[pod.uid]:
            assert b"ready" in c.stdout, (config, pod.name)
            served += c.stdout.count(b"request served")
    print(f"\nall {len(all_pods)} containers ready; {served} requests served in-guest")

    delta = sampler.delta()
    print(f"node-level footprint of the fleet (free channel): "
          f"{delta.footprint_bytes / MIB:.1f} MiB "
          f"({delta.footprint_bytes / len(all_pods) / MIB:.2f} MiB/pod)")

    cluster.teardown([p for _, p in all_pods])
    print("fleet torn down.")


if __name__ == "__main__":
    main()
