#!/usr/bin/env python3
"""Startup race: the Fig 8 → Fig 9 ranking flip.

Measures time-to-last-workload-start for every runtime configuration at a
small and a large density and shows the crossover the paper reports: the
runwasi shims win small deployments, crun-wasmtime wins huge ones, and
crun-WAMR sits near the front in both regimes.

Run:  python examples/startup_race.py [small] [large]
"""

import sys

from repro.core.integration import RUNTIME_CONFIGS
from repro.measure.experiment import ExperimentRunner


def main() -> None:
    small = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    large = int(sys.argv[2]) if len(sys.argv) > 2 else 400
    runner = ExperimentRunner(seed=3)

    results = {}
    for config in RUNTIME_CONFIGS:
        t_small = runner.run(config, small).startup_seconds
        t_large = runner.run(config, large).startup_seconds
        results[config] = (t_small, t_large)

    for label, idx, n in (("small", 0, small), ("large", 1, large)):
        print(f"\n=== {label} deployment: {n} concurrent containers ===")
        ranked = sorted(results, key=lambda c: results[c][idx])
        best = results[ranked[0]][idx]
        for rank, config in enumerate(ranked, 1):
            t = results[config][idx]
            ours = " <== ours" if RUNTIME_CONFIGS[config].is_ours else ""
            print(f"  {rank}. {config:15s} {t:7.2f} s  (+{100 * (t / best - 1):5.1f}%){ours}")

    small_rank = sorted(results, key=lambda c: results[c][0])
    large_rank = sorted(results, key=lambda c: results[c][1])
    movers = [
        c for c in results if abs(small_rank.index(c) - large_rank.index(c)) >= 2
    ]
    print("\nconfigurations whose rank shifts by >= 2 places between regimes:")
    for c in movers:
        print(f"  {c}: #{small_rank.index(c) + 1} -> #{large_rank.index(c) + 1}")


if __name__ == "__main__":
    main()
