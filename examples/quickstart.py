#!/usr/bin/env python3
"""Quickstart: run a Wasm container through the WAMR-in-crun integration.

Builds the simulated single-node Kubernetes testbed, deploys one pod whose
container image carries a WebAssembly module (assembled by this library's
own WAT toolchain), and shows what the paper measures: the container's real
stdout, its pod working set (metrics-server channel), and the node-level
`free` view.

Run:  python examples/quickstart.py
"""

from repro.k8s.cluster import build_cluster
from repro.measure.free import FreeSampler
from repro.sim.memory import MIB


def main() -> None:
    cluster = build_cluster(seed=42)
    node = cluster.node

    sampler = FreeSampler(node.env.memory)
    sampler.mark_baseline()

    print("deploying 1 pod with RuntimeClass crun-wamr ...")
    [pod] = cluster.deploy_and_wait("crun-wamr", 1, env={"REQUESTS": "2"})

    [container] = node.kubelet.pod_containers[pod.uid]
    print(f"\npod {pod.name}: phase={pod.phase.value}")
    print(f"workload started at t={pod.exec_started_at:.3f}s (simulated)")
    print(f"exit code: {container.exit_code}")
    print("container stdout:")
    for line in container.stdout.decode().splitlines():
        print(f"  | {line}")

    print("\nengine facts recorded by the crun-wamr handler:")
    for key in ("engine", "handler", "instructions", "linear_memory", "dlopen_s"):
        print(f"  {key} = {container.facts[key]}")

    ws = node.metrics.pod_working_sets()[pod.uid]
    print(f"\nmetrics-server pod working set: {ws / MIB:.2f} MiB")
    delta = sampler.delta()
    print(f"free(1) node delta:             {delta.footprint_bytes / MIB:.2f} MiB")
    print("\nnode free report after deployment:")
    print(FreeSampler.render(node.env.memory.free_report()))

    cluster.teardown([pod])
    print("\npod torn down; node restored.")


if __name__ == "__main__":
    main()
