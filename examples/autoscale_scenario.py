#!/usr/bin/env python3
"""Autoscaling scenario: the serverless motivation of the paper's intro.

"The high velocity of change in the number of running containers in
large-scale deployment environments leads to spikes in resource
utilization" — this example drives a Deployment of the Wasm microservice
through a load spike (scale 5 → 120 → 20 → 0) and records how the node's
memory follows, for both the crun-WAMR integration and the Python
baseline. The per-pod saving compounds exactly where it matters: at the
spike's peak.

Run:  python examples/autoscale_scenario.py
"""

from repro.k8s.cluster import build_cluster
from repro.k8s.objects import ContainerSpec, PodSpec
from repro.sim.memory import MIB
from repro.workloads.images import PYTHON_IMAGE_REF, WASM_IMAGE_REF

SPIKE = [5, 120, 20, 0]


def drive(runtime_config: str, image: str) -> list:
    cluster = build_cluster(seed=11)
    template = PodSpec(
        containers=[ContainerSpec(name="app", image=image)],
        runtime_class_name=runtime_config,
    )
    cluster.deployments.create("svc", template, replicas=0)
    trajectory = []
    for replicas in SPIKE:
        cluster.deployments.scale("svc", replicas)
        status = cluster.reconcile_and_wait("svc")
        assert status["ready"] == replicas
        used = cluster.node.env.memory.free_report().used
        trajectory.append((replicas, used))
    return trajectory


def main() -> None:
    wasm = drive("crun-wamr", WASM_IMAGE_REF)
    python = drive("crun-python", PYTHON_IMAGE_REF)

    print(f"{'replicas':>9s} {'crun-wamr used':>16s} {'crun-python used':>18s} {'saving':>9s}")
    baseline_w = wasm[-1][1]
    baseline_p = python[-1][1]
    for (r, used_w), (_, used_p) in zip(wasm, python):
        delta_w = (used_w - baseline_w) / MIB
        delta_p = (used_p - baseline_p) / MIB
        saving = delta_p - delta_w
        print(f"{r:9d} {delta_w:13.1f} MiB {delta_p:15.1f} MiB {saving:6.1f} MiB")

    peak_w = max(u for _, u in wasm)
    peak_p = max(u for _, u in python)
    print(
        f"\npeak node usage: wasm {peak_w / MIB:.0f} MiB vs python "
        f"{peak_p / MIB:.0f} MiB -> {(peak_p - peak_w) / MIB:.0f} MiB headroom "
        f"({100 * (peak_p - peak_w) / peak_p:.1f}%) at the spike"
    )


if __name__ == "__main__":
    main()
