#!/usr/bin/env python3
"""Tour of the WebAssembly toolchain underneath the container stack.

Everything the engines execute goes through this pipeline, built from
scratch in this repository: WAT text → module AST → validator → binary
encoder → binary decoder → interpreter with a WASI host. This example
walks the pipeline on a small program, then demonstrates traps and fuel
metering.

Run:  python examples/wasm_toolchain_tour.py
"""

from repro.errors import ExhaustionError, WasmTrap
from repro.wasm import decode_module, encode_module, parse_wat, validate_module
from repro.wasm.embed import run_wasi
from repro.wasm.runtime import Interpreter, Store, instantiate

COLLATZ = r"""
(module
  (import "wasi_snapshot_preview1" "fd_write"
    (func $fd_write (param i32 i32 i32 i32) (result i32)))
  (memory (export "memory") 1)
  (data (i32.const 64) "collatz steps: ")
  (global $steps (mut i32) (i32.const 0))

  (func $collatz (export "collatz") (param $n i32) (result i32)
    (local $count i32)
    (block $done
      (loop $top
        (br_if $done (i32.le_u (local.get $n) (i32.const 1)))
        (if (i32.and (local.get $n) (i32.const 1))
          (then (local.set $n
            (i32.add (i32.mul (local.get $n) (i32.const 3)) (i32.const 1))))
          (else (local.set $n (i32.shr_u (local.get $n) (i32.const 1)))))
        (local.set $count (i32.add (local.get $count) (i32.const 1)))
        (br $top)))
    (local.get $count))

  (func (export "_start")
    (local $steps i32) (local $digits i32) (local $v i32) (local $p i32)
    (local.set $steps (call $collatz (i32.const 27)))
    ;; render the count as decimal at 96 (two digits minimum)
    (local.set $p (i32.const 105))
    (local.set $v (local.get $steps))
    (block $fin (loop $render
      (i32.store8 (local.get $p)
        (i32.add (i32.const 48) (i32.rem_u (local.get $v) (i32.const 10))))
      (local.set $v (i32.div_u (local.get $v) (i32.const 10)))
      (local.set $p (i32.sub (local.get $p) (i32.const 1)))
      (br_if $fin (i32.eqz (local.get $v)))
      (br $render)))
    ;; write "collatz steps: " then the digits and newline
    (i32.store (i32.const 0) (i32.const 64))
    (i32.store (i32.const 4) (i32.const 15))
    (drop (call $fd_write (i32.const 1) (i32.const 0) (i32.const 1) (i32.const 16)))
    (i32.store8 (i32.const 106) (i32.const 10))
    (i32.store (i32.const 0) (i32.add (local.get $p) (i32.const 1)))
    (i32.store (i32.const 4) (i32.sub (i32.const 107)
                                      (i32.add (local.get $p) (i32.const 1))))
    (drop (call $fd_write (i32.const 1) (i32.const 0) (i32.const 1) (i32.const 16)))))
"""


def main() -> None:
    print("1. parse WAT -> module AST")
    module = parse_wat(COLLATZ)
    print(f"   {len(module.funcs)} functions, {len(module.imports)} imports, "
          f"{module.code_size()} instructions")

    print("2. validate (spec-style type checking)")
    validate_module(module)
    print("   ok")

    print("3. encode to binary, decode back, re-encode byte-identically")
    blob = encode_module(module)
    assert encode_module(decode_module(blob)) == blob
    print(f"   {len(blob)} bytes, magic={blob[:4]!r}")

    print("4. run under WASI (the engines' execution path)")
    result = run_wasi(blob, args=["collatz"])
    print(f"   stdout: {result.stdout.decode().strip()!r}")
    print(f"   {result.instructions} guest instructions, "
          f"{result.memory_bytes // 1024} KiB linear memory")

    print("5. call an export directly with arguments")
    store = Store()
    inst = instantiate(store, decode_module(blob), run_start=False,
                       imports=_wasi_imports(store))
    interp = Interpreter(store)
    for n in (6, 7, 27, 97):
        [steps] = interp.invoke_export(inst, "collatz", [n])
        print(f"   collatz({n}) = {steps} steps")

    print("6. traps are typed errors, not crashes")
    bad = parse_wat('(module (func (export "_start") unreachable))')
    try:
        run_wasi(encode_module(bad))
    except WasmTrap as trap:
        print(f"   WasmTrap: {trap}")

    print("7. fuel metering bounds runaway guests")
    spin = parse_wat('(module (func (export "_start") (loop $l (br $l))))')
    try:
        run_wasi(encode_module(spin), fuel=50_000)
    except ExhaustionError as exc:
        print(f"   ExhaustionError: {exc}")


def _wasi_imports(store: Store):
    from repro.wasm.wasi import WasiEnv

    return WasiEnv().register(store).import_map()


if __name__ == "__main__":
    main()
