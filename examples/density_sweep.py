#!/usr/bin/env python3
"""Density sweep: per-container memory for every runtime configuration.

Reproduces the shape of the paper's memory figures interactively: sweeps
deployment densities, prints both measurement channels per configuration,
and draws ASCII bars for the Fig 10 overview (averaged over densities).

Run:  python examples/density_sweep.py [densities ...]
"""

import sys

from repro.core.integration import RUNTIME_CONFIGS
from repro.measure.experiment import ExperimentRunner


def bar(value: float, scale: float, width: int = 44) -> str:
    n = int(round(value / scale * width))
    return "#" * n


def main() -> None:
    densities = [int(a) for a in sys.argv[1:]] or [10, 50, 200]
    runner = ExperimentRunner(seed=7)

    print(f"{'config':15s}" + "".join(f"{f'n={n}':>21s}" for n in densities))
    print(f"{'':15s}" + f"{'met / free (MiB)':>21s}" * len(densities))
    print("-" * (15 + 21 * len(densities)))

    averages = {}
    for config in RUNTIME_CONFIGS:
        cells = []
        free_values = []
        for n in densities:
            m = runner.run(config, n)
            cells.append(f"{m.metrics_mib:8.2f} /{m.free_mib:8.2f}")
            free_values.append(m.free_mib)
        averages[config] = sum(free_values) / len(free_values)
        marker = "  <== ours" if RUNTIME_CONFIGS[config].is_ours else ""
        print(f"{config:15s}" + "".join(f"{c:>21s}" for c in cells) + marker)

    print("\nOverview (free channel, averaged over densities — Fig 10 shape):")
    scale = max(averages.values())
    for config in sorted(averages, key=averages.get):
        label = "ours " if RUNTIME_CONFIGS[config].is_ours else "     "
        print(f"  {config:15s} {label}{averages[config]:7.2f} MiB  {bar(averages[config], scale)}")


if __name__ == "__main__":
    main()
