#!/usr/bin/env python3
"""The paper's complete workload pipeline: C source → Wasm → Kubernetes.

§IV-A runs "a minimal C application" compiled to WebAssembly. This example
performs every stage inside the repository: compile the C microservice
with the built-in mini-C compiler, inspect the module, package it into an
OCI image, and deploy it through the WAMR-in-crun integration next to the
hand-written WAT build for comparison.

Run:  python examples/c_to_cluster.py
"""

from repro.cc import compile_c
from repro.k8s.cluster import build_cluster
from repro.sim.memory import MIB
from repro.wasm.encoder import encode_module
from repro.workloads.microservice_c import (
    C_MICROSERVICE_SOURCE,
    C_WASM_IMAGE_REF,
    build_c_wasm_image,
)


def main() -> None:
    print("1. compile the C microservice with the built-in mini-C compiler")
    module = compile_c(C_MICROSERVICE_SOURCE)
    blob = encode_module(module)
    print(f"   {len(C_MICROSERVICE_SOURCE.splitlines())} lines of C -> "
          f"{len(blob)} bytes of wasm, "
          f"{module.total_funcs()} functions "
          f"({module.num_imported_funcs()} WASI imports)")
    for imp in module.imports:
        print(f"     import {imp.module}.{imp.name}")

    print("2. package into an OCI image (module + source provenance)")
    image = build_c_wasm_image()
    print(f"   {image.reference}  digest={image.digest[:25]}…  {image.size} bytes")

    print("3. deploy 6 pods via RuntimeClass crun-wamr")
    cluster = build_cluster(seed=9)
    cluster.node.env.images.push(image)
    pods = [
        cluster.make_pod("crun-wamr", image=C_WASM_IMAGE_REF, env={"REQUESTS": "1"})
        for _ in range(6)
    ]
    cluster.kernel.run_all([cluster.node.kubelet.sync_pod(p) for p in pods])

    [container] = cluster.node.kubelet.pod_containers[pods[0].uid]
    print("   first container stdout:")
    for line in container.stdout.decode().splitlines():
        print(f"     | {line}")

    metrics = cluster.node.metrics.pod_working_sets()
    mean = sum(metrics.values()) / len(metrics) / MIB
    print(f"   mean pod working set: {mean:.2f} MiB "
          f"(instructions/run: {container.facts['instructions']})")

    print("4. same module through a runwasi shim, for contrast")
    shim_pod = cluster.make_pod("shim-wasmtime", image=C_WASM_IMAGE_REF)
    cluster.kernel.run_all([cluster.node.kubelet.sync_pod(shim_pod)])
    ws = cluster.node.metrics.pod_working_sets()[shim_pod.uid] / MIB
    print(f"   shim-wasmtime pod working set: {ws:.2f} MiB")


if __name__ == "__main__":
    main()
