"""OCI substrate: digests, images, store, spec, bundles, annotations."""

import pytest

from repro.errors import ImageNotFound, OCIError
from repro.oci import (
    Image,
    ImageConfig,
    ImageStore,
    Layer,
    build_bundle,
    is_wasm_image,
    sha256_digest,
)
from repro.oci.digest import short_digest
from repro.oci.spec import MountSpec, RuntimeSpec
from repro.sim.memory import MIB, SystemMemoryModel
from repro.workloads.images import build_python_image, build_wasm_image


class TestDigest:
    def test_format(self):
        d = sha256_digest(b"abc")
        assert d.startswith("sha256:") and len(d) == 7 + 64

    def test_deterministic(self):
        assert sha256_digest(b"x") == sha256_digest(b"x")
        assert sha256_digest(b"x") != sha256_digest(b"y")

    def test_short(self):
        assert len(short_digest(sha256_digest(b"x"))) == 12


class TestImage:
    def test_layer_digest_is_content_addressed(self):
        a = Layer.from_files({"f": b"1"})
        b = Layer.from_files({"f": b"1"})
        c = Layer.from_files({"f": b"2"})
        assert a.digest == b.digest != c.digest

    def test_layer_order_independence_of_digest(self):
        a = Layer.from_files({"a": b"1", "b": b"2"})
        b = Layer.from_files({"b": b"2", "a": b"1"})
        assert a.digest == b.digest

    def test_image_needs_layers(self):
        with pytest.raises(OCIError, match="layer"):
            Image("r", ImageConfig(), layers=[])

    def test_flatten_shadows_earlier_layers(self):
        image = Image(
            "r",
            ImageConfig(),
            layers=[
                Layer.from_files({"etc/conf": b"old", "keep": b"k"}),
                Layer.from_files({"etc/conf": b"new"}),
            ],
        )
        rootfs = image.flatten()
        assert rootfs["etc/conf"] == b"new" and rootfs["keep"] == b"k"

    def test_read_file(self):
        image = build_wasm_image()
        assert image.read_file("app/main.wasm")[:4] == b"\x00asm"
        with pytest.raises(OCIError):
            image.read_file("missing")

    def test_full_command(self):
        cfg = ImageConfig(entrypoint=["/bin/app"], cmd=["--serve"])
        assert cfg.full_command() == ["/bin/app", "--serve"]


class TestAnnotations:
    def test_wasm_image_detected_by_annotation(self):
        assert is_wasm_image(build_wasm_image())

    def test_python_image_not_wasm(self):
        assert not is_wasm_image(build_python_image())

    def test_wasm_detected_by_entrypoint_suffix(self):
        image = Image(
            "r",
            ImageConfig(entrypoint=["/app/x.wasm"]),
            layers=[Layer.from_files({"app/x.wasm": b"\x00asm"})],
        )
        assert is_wasm_image(image)


class TestStore:
    def test_pull_unknown_reference(self):
        with pytest.raises(ImageNotFound):
            ImageStore().pull("nope:latest")

    def test_cold_then_warm_pull(self):
        store = ImageStore()
        store.push(build_wasm_image())
        first = store.pull(build_wasm_image().reference)
        second = store.pull(build_wasm_image().reference)
        assert not first.was_cached and first.seconds > 0
        assert second.was_cached and second.seconds == 0

    def test_pull_populates_page_cache(self):
        memory = SystemMemoryModel()
        store = ImageStore(memory=memory)
        image = build_python_image()
        store.push(image)
        before = memory.free_report().buff_cache
        store.pull(image.reference)
        after = memory.free_report().buff_cache
        assert after - before == image.size

    def test_warm_pull_does_not_regrow_cache(self):
        memory = SystemMemoryModel()
        store = ImageStore(memory=memory)
        image = build_wasm_image()
        store.push(image)
        store.pull(image.reference)
        cache1 = memory.free_report().buff_cache
        store.pull(image.reference)
        assert memory.free_report().buff_cache == cache1


class TestSpecAndBundle:
    def test_bundle_merges_env_with_overrides(self):
        image = build_python_image()
        bundle = build_bundle("c1", image, env_override={"EXTRA": "1"})
        assert bundle.spec.process.env["SERVICE"] == "microservice"
        assert bundle.spec.process.env["EXTRA"] == "1"

    def test_bundle_args_override_wins(self):
        image = build_python_image()
        bundle = build_bundle("c1", image, args_override=["/usr/bin/python3", "-V"])
        assert bundle.spec.process.args == ["/usr/bin/python3", "-V"]

    def test_bundle_default_args_from_image(self):
        bundle = build_bundle("c1", build_wasm_image())
        assert bundle.spec.process.args == ["/app/main.wasm"]

    def test_bundle_carries_rootfs_content(self):
        bundle = build_bundle("c1", build_wasm_image())
        assert bundle.read_file("/app/main.wasm")[:4] == b"\x00asm"

    def test_bundle_annotations_merge(self):
        bundle = build_bundle(
            "c1", build_wasm_image(), annotations={"custom": "y"}
        )
        assert bundle.spec.annotations["module.wasm.image/variant"] == "compat"
        assert bundle.spec.annotations["custom"] == "y"

    def test_preopen_dirs_from_mounts(self):
        spec = RuntimeSpec(
            mounts=[MountSpec(destination="/config", source="/host/cfg")]
        )
        dirs = spec.preopen_dirs()
        assert dirs["/"] == "rootfs"
        assert dirs["/config"] == "/host/cfg"

    def test_cgroups_path_set(self):
        bundle = build_bundle("c1", build_wasm_image(), cgroups_path="/kubepods/podX")
        assert bundle.spec.linux.cgroups_path == "/kubepods/podX"
