"""Property test: WAT printer/parser roundtrip over generated modules."""

from hypothesis import given, settings

from repro.wasm import encode_module, parse_wat
from repro.wasm.wat import print_wat

from test_codec_prop import modules  # reuse the module generator


@settings(max_examples=120, deadline=None)
@given(modules)
def test_print_parse_preserves_binary(module):
    """print_wat → parse_wat reproduces the identical binary encoding."""
    text = print_wat(module)
    reparsed = parse_wat(text)
    assert encode_module(reparsed) == encode_module(module)
