"""Property tests: interpreter numeric semantics vs Python reference,
plus differential properties (flat interpreter, specialized tiers, and
reference tree-walker) over randomly generated straight-line/loop
programs and fuel budgets."""

import math

from hypothesis import given, settings, strategies as st

from repro.errors import ExhaustionError, WasmTrap
from repro.wasm import parse_wat, validate_module
from repro.wasm.runtime import (
    Interpreter,
    ReferenceInterpreter,
    Store,
    instantiate,
    prepare_module,
    specialize_module,
)
from repro.wasm.runtime import values as V

i32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)
u32s = st.integers(min_value=0, max_value=2**32 - 1)
i64s = st.integers(min_value=-(2**63), max_value=2**63 - 1)


def _binop_runner(op: str, ty: str):
    src = f"""
    (module (func (export "run") (param {ty}) (param {ty}) (result {ty})
      ({op} (local.get 0) (local.get 1))))
    """
    module = validate_module(parse_wat(src))
    store = Store()
    inst = instantiate(store, module)
    interp = Interpreter(store)
    addr = inst.export_addr("run", "func")
    return lambda a, b: interp.invoke(addr, [a, b])[0]


_ADD = _binop_runner("i32.add", "i32")
_SUB = _binop_runner("i32.sub", "i32")
_MUL = _binop_runner("i32.mul", "i32")
_DIVS = _binop_runner("i32.div_s", "i32")
_SHL = _binop_runner("i32.shl", "i32")
_ROTL = _binop_runner("i32.rotl", "i32")
_ADD64 = _binop_runner("i64.add", "i64")


@given(u32s, u32s)
def test_i32_add_matches_mod_2_32(a, b):
    assert _ADD(a, b) == (a + b) % 2**32


@given(u32s, u32s)
def test_i32_sub_matches_mod_2_32(a, b):
    assert _SUB(a, b) == (a - b) % 2**32


@given(u32s, u32s)
def test_i32_mul_matches_mod_2_32(a, b):
    assert _MUL(a, b) == (a * b) % 2**32


@given(i32s, i32s.filter(lambda x: x != 0))
def test_i32_div_s_truncates(a, b):
    if a == -(2**31) and b == -1:
        return  # traps (tested elsewhere)
    got = _DIVS(a & 0xFFFFFFFF, b & 0xFFFFFFFF)
    want = int(a / b)  # Python float div truncation is fine in i32 range? no:
    want = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        want = -want
    assert got == want % 2**32


@given(u32s, st.integers(min_value=0, max_value=255))
def test_i32_shl_mod_32(a, k):
    assert _SHL(a, k) == (a << (k % 32)) % 2**32


@given(u32s, st.integers(min_value=0, max_value=63))
def test_rotl_preserves_bits(a, k):
    got = _ROTL(a, k)
    assert bin(got).count("1") == bin(a).count("1")
    # Double rotation by complementary amounts restores the input.
    assert _ROTL(got, (32 - k) % 32) == a


@given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(min_value=0, max_value=2**64 - 1))
def test_i64_add_matches_mod_2_64(a, b):
    assert _ADD64(a, b) == (a + b) % 2**64


@given(u32s)
def test_signed_unsigned_involution(a):
    assert V.signed32(a) & 0xFFFFFFFF == a


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_signed64_involution(a):
    assert V.signed64(a) & 0xFFFFFFFFFFFFFFFF == a


@given(u32s)
def test_clz_ctz_bounds(a):
    assert 0 <= V.clz(a, 32) <= 32
    assert 0 <= V.ctz(a, 32) <= 32
    if a != 0:
        assert V.clz(a, 32) + a.bit_length() == 32


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_f32_bits_roundtrip(x):
    assert V.bits_to_f32(V.f32_to_bits(x)) == x


@given(st.floats(allow_nan=False))
def test_f64_bits_roundtrip(x):
    assert V.bits_to_f64(V.f64_to_bits(x)) == x


@given(st.floats(allow_nan=False, allow_infinity=False))
def test_fnearest_is_integral_and_close(x):
    r = V.fnearest(x)
    assert r == math.floor(r) or not math.isfinite(r)
    assert abs(r - x) <= 0.5


@given(st.floats())
def test_trunc_sat_total(x):
    """trunc_sat never raises and stays in range for any float input."""
    for bits, signed in ((32, True), (32, False), (64, True), (64, False)):
        v = V.trunc_sat(x, bits, signed)
        assert 0 <= v < 2**bits


# -- differential: prepared flat code vs reference tree-walker -----------------

_FOLD_OPS = ("i32.add", "i32.sub", "i32.mul", "i32.and", "i32.or", "i32.xor",
             "i32.shl", "i32.shr_u", "i32.rotl")


def _gen_module(ops):
    """A loop that folds `ops` (op, constant) pairs over both params each
    iteration, storing intermediate state through memory — shaped to hit
    the fused superinstruction patterns and branch repairs."""
    folds = "\n".join(
        f"(local.set $acc ({op} (local.get $acc) (i32.const {k})))"
        for op, k in ops
    )
    return f"""
    (module (memory 1)
      (func (export "run") (param $n i32) (param $seed i32) (result i32)
        (local $acc i32) (local $i i32)
        (local.set $acc (local.get $seed))
        (block $out
          (loop $top
            (br_if $out (i32.ge_u (local.get $i) (local.get $n)))
            {folds}
            (i32.store (i32.and (local.get $acc) (i32.const 0xfffc))
                       (i32.add (local.get $acc) (local.get $i)))
            (local.set $acc (i32.add (local.get $acc)
              (i32.load (i32.and (local.get $i) (i32.const 0xfffc)))))
            (local.set $i (i32.add (local.get $i) (i32.const 1)))
            (br $top)))
        (local.get $acc)))
    """


def _observe(cls, src, args, fuel, specialize=None):
    module = validate_module(parse_wat(src))
    if specialize is not None:
        prepare_module(module)
        specialize_module(module, specialize).attach(module)
    store = Store()
    inst = instantiate(store, module)
    interp = cls(store, fuel=fuel)
    try:
        outcome = ("ok", interp.invoke_export(inst, "run", list(args)))
    except ExhaustionError as e:
        outcome = ("exhausted", str(e))
    except WasmTrap as e:
        outcome = ("trap", str(e))
    mem = bytes(store.mems[inst.mem_addrs[0]].data) if inst.mem_addrs else b""
    return outcome, interp.instructions_executed, interp.fuel, mem


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(_FOLD_OPS), st.integers(0, 2**32 - 1)),
        min_size=1,
        max_size=5,
    ),
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.one_of(st.none(), st.integers(min_value=0, max_value=600)),
)
def test_differential_random_programs(ops, n, seed, fuel):
    src = _gen_module(ops)
    flat = _observe(Interpreter, src, (n, seed), fuel)
    ref = _observe(ReferenceInterpreter, src, (n, seed), fuel)
    assert flat == ref
    for mode in ("bytecode", "on"):
        spec = _observe(Interpreter, src, (n, seed), fuel, specialize=mode)
        assert spec == ref, f"specialize={mode}: {spec} != {ref}"
