"""Property tests: binary encode/decode roundtrip over generated modules."""

from hypothesis import given, settings, strategies as st

from repro.wasm import decode_module, encode_module
from repro.wasm.ast import (
    DataSegment,
    Export,
    Function,
    Global,
    Instr,
    Module,
)
from repro.wasm.types import FuncType, GlobalType, Limits, MemoryType, ValType

valtypes = st.sampled_from(list(ValType))

functypes = st.builds(
    FuncType,
    params=st.lists(valtypes, max_size=4).map(tuple),
    results=st.lists(valtypes, max_size=2).map(tuple),
)

# Instruction generators: a mix of leaf + structured instructions whose
# encodings cover every immediate class. (Not necessarily *valid* modules;
# the codec must roundtrip anything structurally well-formed.)
leaf_instrs = st.one_of(
    st.builds(Instr, op=st.just("i32.const"), args=st.tuples(st.integers(-(2**31), 2**31 - 1))),
    st.builds(Instr, op=st.just("i64.const"), args=st.tuples(st.integers(-(2**63), 2**63 - 1))),
    st.builds(Instr, op=st.just("f64.const"), args=st.tuples(st.floats(allow_nan=False))),
    st.builds(Instr, op=st.just("local.get"), args=st.tuples(st.integers(0, 200))),
    st.builds(Instr, op=st.just("local.set"), args=st.tuples(st.integers(0, 200))),
    st.builds(Instr, op=st.just("call"), args=st.tuples(st.integers(0, 50))),
    st.builds(Instr, op=st.sampled_from(["nop", "drop", "select", "unreachable", "return", "i32.add", "i64.mul", "f64.sqrt"])),
    st.builds(
        Instr,
        op=st.sampled_from(["i32.load", "i64.store", "f32.load"]),
        args=st.tuples(st.integers(0, 3), st.integers(0, 2**16)),
    ),
    st.builds(
        Instr,
        op=st.just("br_table"),
        args=st.tuples(
            st.lists(st.integers(0, 10), max_size=5).map(tuple), st.integers(0, 10)
        ),
    ),
)


def structured(children):
    return st.one_of(
        st.builds(
            Instr,
            op=st.sampled_from(["block", "loop"]),
            blocktype=st.one_of(st.none(), valtypes),
            body=st.lists(children, max_size=3),
        ),
        st.builds(
            Instr,
            op=st.just("if"),
            blocktype=st.one_of(st.none(), valtypes),
            body=st.lists(children, max_size=3),
            else_body=st.lists(children, max_size=3),
        ),
    )


instrs = st.recursive(leaf_instrs, structured, max_leaves=12)

functions = st.builds(
    Function,
    type_idx=st.integers(0, 3),
    locals=st.lists(valtypes, max_size=6),
    body=st.lists(instrs, max_size=6),
)

modules = st.builds(
    Module,
    types=st.lists(functypes, min_size=4, max_size=4),
    funcs=st.lists(functions, max_size=4),
    mems=st.lists(st.builds(MemoryType, limits=st.builds(Limits, minimum=st.integers(0, 10), maximum=st.one_of(st.none(), st.integers(10, 100)))), max_size=1),
    globals=st.lists(
        st.builds(
            Global,
            type=st.builds(GlobalType, valtype=st.just(ValType.I32), mutable=st.booleans()),
            init=st.just([Instr("i32.const", (0,))]),
        ),
        max_size=3,
    ),
    datas=st.lists(
        st.builds(
            DataSegment,
            mem_idx=st.just(0),
            offset=st.just([Instr("i32.const", (0,))]),
            data=st.binary(max_size=64),
        ),
        max_size=2,
    ),
)


@settings(max_examples=150, deadline=None)
@given(modules)
def test_encode_decode_encode_is_identity(module):
    blob = encode_module(module)
    decoded = decode_module(blob)
    assert encode_module(decoded) == blob


@settings(max_examples=150, deadline=None)
@given(modules)
def test_decode_preserves_structure(module):
    decoded = decode_module(encode_module(module))
    assert decoded.types == module.types
    assert len(decoded.funcs) == len(module.funcs)
    for got, want in zip(decoded.funcs, module.funcs):
        assert got.type_idx == want.type_idx
        assert got.locals == want.locals
        assert _ops(got.body) == _ops(want.body)
    assert [d.data for d in decoded.datas] == [d.data for d in module.datas]


def _ops(body):
    out = []
    for ins in body:
        out.append((ins.op, ins.args if ins.op != "f64.const" else None))
        out.extend(_ops(ins.body))
        out.extend(_ops(ins.else_body))
    return out
