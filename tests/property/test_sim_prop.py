"""Property tests: kernel ordering and memory-model invariants."""

from hypothesis import given, settings, strategies as st

from repro.sim.kernel import Acquire, Kernel, Release, Resource, Timeout
from repro.sim.memory import MIB, SystemMemoryModel


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
def test_activities_complete_at_their_delays(delays):
    k = Kernel()
    completions = []

    def act(d):
        yield Timeout(d)
        completions.append((d, k.now))

    k.run_all([act(d) for d in delays])
    for d, t in completions:
        assert t == d
    assert k.now == max(delays)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=40),
)
def test_resource_never_oversubscribed(capacity, durations):
    k = Kernel()
    res = Resource(capacity)
    active = [0]
    peak = [0]

    def job(d):
        yield Acquire(res)
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        yield Timeout(d)
        active[0] -= 1
        yield Release(res)

    k.run_all([job(d) for d in durations])
    assert peak[0] <= capacity
    # Work conservation: makespan at least total/ capacity, at most serial.
    total = sum(durations)
    assert max(durations) - 1e-9 <= k.now <= total + 1e-9
    assert k.now >= total / capacity - 1e-9


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20 * MIB),  # private
            st.sampled_from(["libA", "libB", "libC", None]),  # shared file
            st.sampled_from(["/pods/a", "/pods/b", "/system"]),
        ),
        min_size=1,
        max_size=25,
    )
)
def test_memory_accounting_invariants(procs):
    m = SystemMemoryModel(total_bytes=64 * 1024 * MIB, kernel_base=0)
    spawned = []
    for private, lib, cgroup in procs:
        p = m.spawn("proc", cgroup=cgroup)
        m.map_private(p, private)
        if lib is not None:
            m.map_file(p, lib, 3 * MIB)
        spawned.append(p)

    node_ws = m.node_working_set()
    report = m.free_report()
    # free(1) used equals node working set (kernel_base = 0 here).
    assert report.used == node_ws
    # Sum of RSS >= node working set (sharing counted per process).
    assert sum(p.rss() for p in spawned) >= node_ws
    # Cgroup charges partition the shared+private total exactly.
    charged = sum(
        m.cgroup_working_set(c) for c in ("/pods/a", "/pods/b", "/system")
    )
    assert charged == node_ws
    # Killing everything returns the node to empty.
    for p in spawned:
        m.exit(p)
    assert m.node_working_set() == 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=100), min_size=2, max_size=20))
def test_first_touch_charge_is_stable_under_exits(exit_order):
    """Whatever order mappers exit in, the shared file stays charged to
    exactly one live mapper's cgroup until the last one exits."""
    m = SystemMemoryModel(total_bytes=64 * 1024 * MIB, kernel_base=0)
    procs = []
    for i in range(len(exit_order)):
        p = m.spawn(f"p{i}", cgroup=f"/pods/pod{i}")
        m.map_file(p, "shared.so", 2 * MIB)
        procs.append(p)

    alive = set(range(len(procs)))
    for idx in exit_order:
        target = idx % len(procs)
        if target in alive:
            m.exit(procs[target])
            alive.remove(target)
        total_charged = sum(
            m.cgroup_working_set(f"/pods/pod{i}") for i in range(len(procs))
        )
        assert total_charged == (2 * MIB if alive else 0)
