"""Property tests: LEB128 codec."""

from hypothesis import given, strategies as st

from repro.errors import MalformedModule
from repro.wasm import leb128


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_u32_roundtrip(value):
    decoded, pos = leb128.decode_u(leb128.encode_u(value), 0, bits=32)
    assert decoded == value


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_u64_roundtrip(value):
    encoded = leb128.encode_u(value)
    decoded, pos = leb128.decode_u(encoded, 0, bits=64)
    assert decoded == value and pos == len(encoded)


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_s32_roundtrip(value):
    decoded, _ = leb128.decode_s(leb128.encode_s(value), 0, bits=32)
    assert decoded == value


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_s64_roundtrip(value):
    decoded, _ = leb128.decode_s(leb128.encode_s(value), 0, bits=64)
    assert decoded == value


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_u32_encoding_is_minimal(value):
    encoded = leb128.encode_u(value)
    # Strictly fewer bytes must not decode to the same value.
    assert len(encoded) == max(1, (value.bit_length() + 6) // 7)


@given(st.integers(min_value=0, max_value=2**32 - 1), st.binary(max_size=8))
def test_trailing_bytes_ignored(value, suffix):
    encoded = leb128.encode_u(value)
    decoded, pos = leb128.decode_u(encoded + suffix, 0, bits=32)
    assert decoded == value and pos == len(encoded)


@given(st.binary(min_size=1, max_size=12))
def test_decode_never_crashes(data):
    """Arbitrary bytes either decode or raise MalformedModule — no other
    exception escapes."""
    for bits in (32, 64):
        try:
            value, pos = leb128.decode_u(data, 0, bits=bits)
            assert 0 <= value < 2**bits and 0 < pos <= len(data)
        except MalformedModule:
            pass
        try:
            value, pos = leb128.decode_s(data, 0, bits=bits)
            assert -(2 ** (bits - 1)) <= value < 2 ** (bits - 1)
        except MalformedModule:
            pass
