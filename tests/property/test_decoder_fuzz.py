"""Fuzz-style robustness: decoder/validator never crash unexpectedly.

Arbitrary or mutated bytes must either decode (and then validate or fail
validation) or raise the library's typed errors — any other exception is
a robustness bug (malicious images must not take down the runtime).
"""

from hypothesis import given, settings, strategies as st

from repro.errors import WasmError
from repro.wasm import decode_module, validate_module
from repro.workloads.microservice import build_microservice_wasm

_BASE = build_microservice_wasm()


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=200))
def test_random_bytes_never_crash(data):
    try:
        module = decode_module(data)
        validate_module(module)
    except WasmError:
        pass


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=8, max_value=len(_BASE) - 1),
    st.integers(min_value=0, max_value=255),
)
def test_single_byte_mutations_never_crash(pos, value):
    """Flip one byte of a real module (the classic corruption model)."""
    mutated = bytearray(_BASE)
    mutated[pos] = value
    try:
        module = decode_module(bytes(mutated))
        validate_module(module)
    except WasmError:
        pass
    except RecursionError:
        # A mutation can nest blocks absurdly deep; the decoder is
        # recursive by design and Python's limit turns that into a
        # RecursionError rather than unbounded memory use. Acceptable.
        pass


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=8, max_value=len(_BASE)))
def test_truncations_never_crash(cut):
    try:
        module = decode_module(_BASE[:cut])
        validate_module(module)
    except WasmError:
        pass
