"""Property tests: mini-C codegen vs a Python reference evaluator.

Random arithmetic/logic expressions over two int parameters are compiled
to wasm and executed by the interpreter; a Python oracle evaluates the
same expression with C's int32 semantics. Divergence means a codegen or
interpreter bug.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.cc import compile_c
from repro.wasm.runtime import Interpreter, Store, instantiate

MASK32 = 0xFFFFFFFF


def s32(x: int) -> int:
    x &= MASK32
    return x - (1 << 32) if x >= 1 << 31 else x


# -- expression AST we control (so we can render + evaluate) -----------------

_binops = st.sampled_from(["+", "-", "*", "&", "|", "^", "<", ">", "==", "!=", "&&", "||"])
_leaves = st.one_of(
    st.integers(min_value=-100, max_value=100).map(lambda v: ("num", v)),
    st.sampled_from([("var", "a"), ("var", "b")]),
)


def _nodes(children):
    return st.one_of(
        st.tuples(st.just("un"), st.sampled_from(["-", "!", "~"]), children),
        st.tuples(st.just("bin"), _binops, children, children),
    )


exprs = st.recursive(_leaves, _nodes, max_leaves=12)


def render(e) -> str:
    kind = e[0]
    if kind == "num":
        value = e[1]
        return f"({value})" if value < 0 else str(value)
    if kind == "var":
        return e[1]
    if kind == "un":
        return f"({e[1]}{render(e[2])})"
    _, op, left, right = e
    return f"({render(left)} {op} {render(right)})"


def evaluate(e, a: int, b: int) -> int:
    kind = e[0]
    if kind == "num":
        return s32(e[1])
    if kind == "var":
        return a if e[1] == "a" else b
    if kind == "un":
        value = evaluate(e[2], a, b)
        if e[1] == "-":
            return s32(-value)
        if e[1] == "~":
            return s32(~value)
        return 0 if value else 1  # !
    _, op, left, right = e
    lv = evaluate(left, a, b)
    if op == "&&":
        return 1 if lv and evaluate(right, a, b) else 0
    if op == "||":
        return 1 if lv or evaluate(right, a, b) else 0
    rv = evaluate(right, a, b)
    if op == "+":
        return s32(lv + rv)
    if op == "-":
        return s32(lv - rv)
    if op == "*":
        return s32(lv * rv)
    if op == "&":
        return s32(lv & rv)
    if op == "|":
        return s32(lv | rv)
    if op == "^":
        return s32(lv ^ rv)
    if op == "<":
        return 1 if lv < rv else 0
    if op == ">":
        return 1 if lv > rv else 0
    if op == "==":
        return 1 if lv == rv else 0
    if op == "!=":
        return 1 if lv != rv else 0
    raise AssertionError(op)


_CACHE = {}


def compile_expr(text: str):
    runner = _CACHE.get(text)
    if runner is None:
        module = compile_c(f"int f(int a, int b) {{ return {text}; }}")
        store = Store()
        inst = instantiate(store, module)
        interp = Interpreter(store)
        addr = inst.export_addr("f", "func")
        runner = lambda a, b: interp.invoke(addr, [a & MASK32, b & MASK32])[0]
        _CACHE[text] = runner
    return runner


@settings(max_examples=250, deadline=None)
@given(
    exprs,
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
)
def test_codegen_matches_reference_semantics(e, a, b):
    text = render(e)
    want = evaluate(e, a, b) & MASK32
    got = compile_expr(text)(a, b)
    assert got == want, f"{text} with a={a} b={b}"


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=8),
)
def test_loop_accumulation_matches_python(values):
    """A data-driven loop: sum of i*v over hardcoded v table via globals."""
    decls = "\n".join(
        f"int v{i} = {v};" for i, v in enumerate(values)
    )
    adds = "\n".join(f"    total += ({i} + 1) * v{i};" for i in range(len(values)))
    src = f"""
    {decls}
    int f(void) {{
        int total = 0;
    {adds}
        return total;
    }}
    """
    want = sum((i + 1) * v for i, v in enumerate(values)) & MASK32
    module = compile_c(src)
    store = Store()
    inst = instantiate(store, module)
    assert Interpreter(store).invoke_export(inst, "f") == [want]
