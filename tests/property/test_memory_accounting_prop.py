"""Differential property test: incremental ledger vs reference accountant.

Drives random spawn / map_private / map_file / map_cow / cow_split /
resize_segment / drop_segment / exit / touch_page_cache / drop_page_cache
sequences
against a model in **audit** mode (every query already cross-checks) and
additionally calls ``verify_accounting()`` after every step, which
compares the running counters byte-for-byte against full recomputation:
free-report components, node working set, every cgroup working set, and
every shared file's charge owner.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.sim.memory import MIB, SystemMemoryModel
from repro.sim.process import SegmentKind

CGROUPS = ["/", "/kubepods/pod-a", "/kubepods/pod-b", "/system.slice/containerd"]
#: fixed size per shared file — mappings of one key must agree on size
FILES = {"libA.so": 3 * MIB, "libB.so": 5 * MIB, "app.aot": 1 * MIB}
#: fixed size per zygote snapshot — COW clones must agree on the extent
COWS = {"zygote/svc": 2 * MIB, "zygote/batch": 4 * MIB}


class AccountingMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.model = SystemMemoryModel(
            total_bytes=1 << 50, kernel_base=0, accounting="audit"
        )
        self.procs = []

    def _pick_proc(self, data):
        if not self.procs:
            return None
        return data.draw(st.sampled_from(self.procs), label="proc")

    @rule(data=st.data(), cgroup=st.sampled_from(CGROUPS))
    def spawn(self, data, cgroup):
        self.procs.append(self.model.spawn("proc", cgroup=cgroup))

    @rule(data=st.data(), size=st.integers(min_value=0, max_value=8 * MIB))
    def map_private(self, data, size):
        proc = self._pick_proc(data)
        if proc is not None:
            self.model.map_private(proc, size)

    @rule(data=st.data(), file_key=st.sampled_from(sorted(FILES)))
    def map_file(self, data, file_key):
        proc = self._pick_proc(data)
        if proc is not None:
            self.model.map_file(proc, file_key, FILES[file_key])

    @rule(data=st.data(), cow_key=st.sampled_from(sorted(COWS)))
    def map_cow(self, data, cow_key):
        proc = self._pick_proc(data)
        if proc is not None:
            self.model.map_cow(proc, cow_key, COWS[cow_key])

    @rule(data=st.data(), frac=st.floats(min_value=0.0, max_value=1.0))
    def cow_split(self, data, frac):
        """Dirty (or re-share) a random amount of a random COW segment."""
        proc = self._pick_proc(data)
        if proc is None:
            return
        keys = [k for k, s in proc.segments.items() if s.kind is SegmentKind.COW]
        if not keys:
            return
        key = data.draw(st.sampled_from(keys), label="key")
        seg = proc.segments[key]
        # delta ranges over everything legal: [-dirty, size - dirty]
        delta = round(-seg.cow_dirty + frac * seg.size)
        delta = max(-seg.cow_dirty, min(delta, seg.size - seg.cow_dirty))
        if delta >= 0:
            proc.cow_split(key, delta)
        else:
            proc.cow_unsplit(key, -delta)

    @rule(data=st.data(), size=st.integers(min_value=0, max_value=8 * MIB))
    def resize_private(self, data, size):
        proc = self._pick_proc(data)
        if proc is None:
            return
        keys = [
            k for k, s in proc.segments.items() if s.kind is SegmentKind.PRIVATE
        ]
        if keys:
            proc.resize_segment(data.draw(st.sampled_from(keys), label="key"), size)

    @rule(data=st.data())
    def drop_segment(self, data):
        proc = self._pick_proc(data)
        if proc is None or not proc.segments:
            return
        proc.drop_segment(data.draw(st.sampled_from(sorted(proc.segments)), label="key"))

    @rule(data=st.data())
    def exit(self, data):
        proc = self._pick_proc(data)
        if proc is not None:
            self.model.exit(proc)
            self.procs.remove(proc)

    @rule(
        file_key=st.sampled_from(["layer1", "layer2"]),
        size=st.integers(min_value=0, max_value=16 * MIB),
    )
    def touch_page_cache(self, file_key, size):
        self.model.touch_page_cache(file_key, size)

    @rule(file_key=st.sampled_from(["layer1", "layer2", None]))
    def drop_page_cache(self, file_key):
        self.model.drop_page_cache(file_key)

    @invariant()
    def counters_match_reference(self):
        if not hasattr(self, "model"):
            return
        self.model.verify_accounting()
        # Exercise the audit-checked query paths too (each re-verifies).
        self.model.node_working_set()
        report = self.model.free_report()
        assert report.used + report.free + report.buff_cache == report.total
        for cgroup in CGROUPS:
            assert self.model.cgroup_working_set(cgroup) >= 0
        batch = self.model.cgroup_working_sets(CGROUPS)
        for cgroup in CGROUPS:
            assert batch[cgroup] == self.model.cgroup_working_set(cgroup)


TestAccountingDifferential = AccountingMachine.TestCase
TestAccountingDifferential.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
