"""Property tests: series expansion is canonical, deduped, and seed-stable."""

from hypothesis import given, settings, strategies as st

from repro.measure.series import derive_seed, expand_series

CONFIGS = ["crun-wamr", "crun-wasmtime", "crun-python", "shim-wasmer", "runc-python"]


def spec_strategy():
    configs = st.lists(st.sampled_from(CONFIGS), min_size=1, max_size=5)
    counts = st.lists(st.integers(min_value=1, max_value=400), min_size=1, max_size=4)
    return st.builds(
        lambda cfgs, ns, seed, derive: {
            "name": "prop",
            "kind": "deploy",
            "seed": seed,
            "derive_seeds": derive,
            "matrix": {"config": cfgs, "count": ns},
        },
        configs,
        counts,
        st.integers(min_value=0, max_value=2**31 - 1),
        st.booleans(),
    )


@settings(max_examples=60, deadline=None)
@given(spec_strategy(), st.randoms(use_true_random=False))
def test_expansion_independent_of_listing_order(spec, rng):
    canonical = expand_series(spec)
    shuffled_matrix = {}
    for axis in rng.sample(list(spec["matrix"]), k=len(spec["matrix"])):
        values = list(spec["matrix"][axis])
        rng.shuffle(values)
        shuffled_matrix[axis] = values
    shuffled = dict(spec, matrix=shuffled_matrix)
    assert expand_series(shuffled) == canonical


@settings(max_examples=60, deadline=None)
@given(spec_strategy())
def test_expansion_never_duplicates_cells(spec):
    cells = expand_series(spec)
    keys = [cell.key for cell in cells]
    assert len(keys) == len(set(keys))
    # Deduped axes: cell count is the product of distinct axis values.
    expected = len(set(spec["matrix"]["config"])) * len(set(spec["matrix"]["count"]))
    assert len(cells) == expected


@settings(max_examples=60, deadline=None)
@given(spec_strategy())
def test_expansion_is_deterministic(spec):
    first = expand_series(spec)
    second = expand_series(spec)
    assert first == second
    assert [c.seed for c in first] == [c.seed for c in second]


@settings(max_examples=60, deadline=None)
@given(spec_strategy())
def test_derived_seeds_depend_only_on_coordinates(spec):
    spec = dict(spec, derive_seeds=True)
    cells = expand_series(spec)
    for cell in cells:
        coordinates = f"{cell.kind}:{cell.config}:n{cell.count}:"
        assert cell.seed == derive_seed(spec["seed"], coordinates)
        assert 0 <= cell.seed < 2**31


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.text(min_size=0, max_size=40),
)
def test_derive_seed_is_stable_and_bounded(seed, coordinates):
    first = derive_seed(seed, coordinates)
    assert first == derive_seed(seed, coordinates)
    assert 0 <= first < 2**31
