"""Telemetry test fixtures: enable obs and isolate global state."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture()
def telemetry():
    """Telemetry on, clean slate; restores the prior state afterwards."""
    was_enabled = obs.enabled()
    obs.set_enabled(True)
    obs.reset()
    yield obs
    obs.reset()
    obs.set_enabled(was_enabled)
