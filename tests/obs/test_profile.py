"""Guest profiling: self-time math, merge algebra, end-to-end collapse.

The FunctionProfiler unit tests drive enter/exit by hand; the
integration test runs a real WASI module under ``run_wasi`` with
profiling on and checks the collapsed output accounts for every
executed instruction (the interpreter's deterministic clock).
"""

import pytest

from repro.obs import profile
from repro.obs.profile import (
    WASI_BASE_COST_NS,
    WASI_BYTE_COST_NS,
    WASI_DEFAULT_COST_NS,
    FunctionProfiler,
    wasi_modeled_ns,
    wasi_report,
)


class TestFunctionProfiler:
    def test_nested_call_splits_self_from_children(self):
        p = FunctionProfiler()
        p.enter("a")
        p.enter("b")
        p.exit(10)  # b: 10 inclusive, no children
        p.exit(25)  # a: 25 inclusive, 10 spent in b -> 15 self
        assert p.stacks == {("a", "b"): 10, ("a",): 15}

    def test_sibling_calls_accumulate_into_parent(self):
        p = FunctionProfiler()
        p.enter("a")
        for _ in range(2):
            p.enter("b")
            p.exit(4)
        p.exit(20)
        assert p.stacks == {("a", "b"): 8, ("a",): 12}

    def test_repeat_top_level_calls_accumulate(self):
        p = FunctionProfiler()
        for n in (3, 7):
            p.enter("f")
            p.exit(n)
        assert p.stacks == {("f",): 10}

    def test_merge_is_order_independent_addition(self):
        left = {("a",): 5, ("a", "b"): 2}
        right = {("a",): 1, ("c",): 4}
        p1, p2 = FunctionProfiler(), FunctionProfiler()
        p1.merge(left)
        p1.merge(right)
        p2.merge(right)
        p2.merge(left)
        assert p1.stacks == p2.stacks == {("a",): 6, ("a", "b"): 2, ("c",): 4}

    def test_delta_since_skips_unchanged_stacks(self):
        profile.reset()
        prof = profile._profiler
        prof.merge({("warm",): 5})
        base = profile.state()
        prof.merge({("warm",): 0, ("fresh",): 3})
        try:
            assert profile.delta_since(base) == {("fresh",): 3}
        finally:
            profile.reset()

    def test_collapsed_sorted_with_zero_suppression(self):
        profile.reset()
        profile.merge_delta({("b",): 2, ("a", "x"): 1, ("zero",): 0})
        try:
            assert profile.collapsed() == "a;x 1\nb 2\n"
        finally:
            profile.reset()
        assert profile.collapsed() == ""


class TestInterpreterIntegration:
    def test_run_wasi_profile_accounts_for_every_instruction(self):
        from repro.wasm import assemble_wat
        from repro.wasm.embed import run_wasi

        blob = assemble_wat(
            """
            (module
              (func $leaf (result i32)
                (i32.add (i32.const 1) (i32.const 2)))
              (func (export "_start")
                (drop (call $leaf))
                (drop (call $leaf)))
            )
            """
        )
        profile.reset()
        profile.set_profiling(True)
        try:
            result = run_wasi(blob, zygote=False)
            stacks = dict(profile._profiler.stacks)
            text = profile.collapsed()
        finally:
            profile.set_profiling(False)
            profile.reset()
        assert result.exit_code == 0
        # Export-name backfill: the entry frame reads `_start`, not
        # `<anonymous>`; the internal helper has no name to surface.
        assert any(path[0] == "_start" for path in stacks)
        assert any(len(path) == 2 for path in stacks)  # _start -> leaf
        # Self-times partition the inclusive count: summed, they equal
        # the interpreter's full instruction tally for the run.
        assert sum(stacks.values()) == result.instructions > 0
        assert text.startswith("_start")

    def test_profiling_off_leaves_no_trace(self):
        from repro.wasm import assemble_wat
        from repro.wasm.embed import run_wasi

        blob = assemble_wat(
            '(module (func (export "_start") (drop (i32.const 1))))'
        )
        profile.reset()
        assert profile.active_profiler() is None
        run_wasi(blob, zygote=False)
        assert profile._profiler.stacks == {}


class TestWasiModel:
    def test_modeled_ns_base_plus_bytes(self):
        assert wasi_modeled_ns("fd_write", 10, 100) == pytest.approx(
            10 * WASI_BASE_COST_NS["fd_write"] + 100 * WASI_BYTE_COST_NS
        )
        assert wasi_modeled_ns("not_a_real_call", 2) == pytest.approx(
            2 * WASI_DEFAULT_COST_NS
        )

    def test_report_rows_and_shares(self):
        families = {
            "repro_wasi_calls_total": {("fd_write",): 4.0, ("clock_time_get",): 2.0},
            "repro_wasi_bytes_total": {
                ("fd_write", "out"): 64.0,
                ("fd_write", "in"): 16.0,
            },
        }
        rows = {r["func"]: r for r in wasi_report(families)}
        fw = rows["fd_write"]
        # Bytes sum over the direction label before costing.
        assert fw["bytes"] == 80.0
        assert fw["total_ns"] == pytest.approx(wasi_modeled_ns("fd_write", 4, 80))
        assert fw["mean_ns"] == pytest.approx(fw["total_ns"] / 4)
        assert sum(r["share"] for r in rows.values()) == pytest.approx(1.0)

    def test_report_empty_families(self):
        assert wasi_report({}) == []
