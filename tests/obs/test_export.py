"""Exporter tests: Prometheus text, Chrome trace JSON, JSONL, inspect."""

import json

import pytest

from repro.obs.export import (
    chrome_trace,
    jsonl_events,
    load_trace_events,
    metric_families,
    parse_prometheus_text,
    parse_timeseries_jsonl,
    prometheus_text,
    render_breakdown,
    render_dashboard,
    render_wasi,
    timeseries_jsonl,
    validate_chrome_trace,
)
from repro.obs.registry import MetricsRegistry
from repro.sim.trace import Span


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("repro_requests_total", "requests by outcome", ("outcome",))
    c.labels("ok").inc(3)
    c.labels("err").inc()
    reg.gauge("repro_inflight", "current in-flight").set(2)
    h = reg.histogram("repro_latency_seconds", "latency", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return reg


def _spans():
    return [
        (1, Span("startup.pull", "img", 0.0, 0.5, (("config", "crun-wamr"),))),
        (1, Span("startup.exec", "c-1", 0.5, 1.5, ())),
        (2, Span("recovery.backoff", "pod-1", 0.2, 1.2, (("reason", "CrashLoopBackOff"),))),
    ]


class TestPrometheusRoundTrip:
    def test_round_trip(self):
        text = prometheus_text(_sample_registry())
        fams = parse_prometheus_text(text)
        assert set(fams) == {
            "repro_requests_total",
            "repro_inflight",
            "repro_latency_seconds",
        }
        assert fams["repro_requests_total"]["type"] == "counter"
        samples = fams["repro_requests_total"]["samples"]
        assert samples[("repro_requests_total", (("outcome", "ok"),))] == 3.0
        assert samples[("repro_requests_total", (("outcome", "err"),))] == 1.0

    def test_histogram_exposition(self):
        text = prometheus_text(_sample_registry())
        samples = parse_prometheus_text(text)["repro_latency_seconds"]["samples"]
        # Cumulative buckets: 0.05 ≤ 0.1; 0.5 ≤ 1.0; 5.0 only under +Inf.
        assert samples[("repro_latency_seconds_bucket", (("le", "0.1"),))] == 1.0
        assert samples[("repro_latency_seconds_bucket", (("le", "1"),))] == 2.0
        assert samples[("repro_latency_seconds_bucket", (("le", "+Inf"),))] == 3.0
        assert samples[("repro_latency_seconds_count", ())] == 3.0
        assert samples[("repro_latency_seconds_sum", ())] == pytest.approx(5.55)

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labelnames=("k",)).labels('a"b\\c\nd').inc()
        fams = parse_prometheus_text(prometheus_text(reg))
        ((_, labels),) = list(fams["c_total"]["samples"])
        assert labels == (("k", 'a"b\\c\nd'),)

    def test_metric_families_helper(self):
        assert metric_families(prometheus_text(_sample_registry())) == [
            "repro_inflight",
            "repro_latency_seconds",
            "repro_requests_total",
        ]


class TestPrometheusChecker:
    def test_malformed_sample_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus_text("# TYPE x counter\nx{ oops\n")

    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            parse_prometheus_text("x_total 1\n")

    def test_duplicate_sample_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_prometheus_text("# TYPE x counter\nx 1\nx 2\n")

    def test_bad_type_line_rejected(self):
        with pytest.raises(ValueError, match="bad TYPE"):
            parse_prometheus_text("# TYPE x summary\n")


class TestChromeTrace:
    def test_schema_and_tracks(self):
        obj = chrome_trace(_spans(), {1: "deploy crun-wamr n=2", 2: "recover"})
        assert validate_chrome_trace(obj) == 3
        events = obj["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        # One process_name per context + one thread_name per component.
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        procs = {e["pid"]: e["args"]["name"] for e in meta if e["name"] == "process_name"}
        assert procs == {1: "deploy crun-wamr n=2", 2: "recover"}
        threads = {
            (e["pid"], e["args"]["name"]) for e in meta if e["name"] == "thread_name"
        }
        assert threads == {(1, "startup"), (2, "recovery")}

    def test_simulated_seconds_become_microseconds(self):
        obj = chrome_trace(_spans())
        pull = next(e for e in obj["traceEvents"] if e.get("name") == "img")
        assert pull["ts"] == 0.0
        assert pull["dur"] == 500_000.0
        assert pull["args"] == {"config": "crun-wamr"}

    def test_validator_rejects_junk(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"notTraceEvents": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X", "name": "n"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "Q"}]})


class TestJsonl:
    def test_monotonic_and_parseable(self):
        text = jsonl_events(_spans(), {1: "a", 2: "b"})
        rows = [json.loads(line) for line in text.splitlines()]
        assert len(rows) == 3
        starts = [r["ts"] for r in rows]
        assert starts == sorted(starts)
        assert rows[0]["ctx"] == "a"
        assert rows[1]["category"] == "recovery.backoff"
        assert rows[1]["attrs"] == {"reason": "CrashLoopBackOff"}

    def test_empty(self):
        assert jsonl_events([]) == ""


class TestLoadAndInspect:
    def test_load_chrome_json(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(chrome_trace(_spans(), {1: "ctx-a", 2: "ctx-b"})))
        records = load_trace_events(path)
        assert len(records) == 3
        assert {r["ctx"] for r in records} == {"ctx-a", "ctx-b"}
        assert records[0]["dur_s"] == pytest.approx(0.5)

    def test_load_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(jsonl_events(_spans()))
        records = load_trace_events(path)
        assert len(records) == 3
        assert records[0]["ts_s"] == 0.0

    def test_render_breakdown(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(jsonl_events(_spans()))
        table = render_breakdown(load_trace_events(path))
        assert "3 spans, 3 categories" in table
        assert "startup.exec" in table and "recovery.backoff" in table
        filtered = render_breakdown(load_trace_events(path), category="startup")
        assert "recovery.backoff" not in filtered
        assert render_breakdown([], category="nope").startswith("trace: no spans")

    def test_render_breakdown_top_and_sort(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(jsonl_events(_spans()))
        records = load_trace_events(path)
        table = render_breakdown(records, top=1)
        # startup.exec and recovery.backoff tie on total (1.0 s each);
        # ties break alphabetically, the rest fold into the footer but
        # stay in the header count.
        assert "recovery.backoff" in table
        assert "startup.exec" not in table
        assert "... 2 more categories (raise --top)" in table
        assert "3 categories" in table
        by_mean = render_breakdown(records, top=2, sort="mean")
        # startup.pull (0.5 s mean) ranks last under mean; top=2 drops it.
        assert "startup.pull" not in by_mean
        assert "startup.exec" in by_mean and "recovery.backoff" in by_mean


class TestNumericLabelSort:
    """S1: exports sort label values numerically, not lexically."""

    def test_histogram_le_order_in_exposition(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_h_seconds", "h", buckets=(2.0, 10.0))
        h.observe(1.0)
        text = prometheus_text(reg)
        bucket_lines = [l for l in text.splitlines() if "_bucket" in l]
        les = [l.split('le="')[1].split('"')[0] for l in bucket_lines]
        # Lexical sort would put "10" before "2".
        assert les == ["2", "10", "+Inf"]

    def test_numeric_labelvalues_sort_by_value(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_pods_total", "by count", ("count",))
        for n in ("100", "20", "3"):
            c.labels(n).inc()
        text = prometheus_text(reg)
        order = [
            l.split('count="')[1].split('"')[0]
            for l in text.splitlines()
            if l.startswith("repro_pods_total{")
        ]
        assert order == ["3", "20", "100"]

    def test_mixed_labels_numbers_before_strings(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", "x", ("k",))
        for v in ("b", "10", "a", "2"):
            c.labels(v).inc()
        text = prometheus_text(reg)
        order = [
            l.split('k="')[1].split('"')[0]
            for l in text.splitlines()
            if l.startswith("repro_x_total{")
        ]
        assert order == ["2", "10", "a", "b"]


class TestCounterTracks:
    def _samples(self):
        return [
            (1, "repro_monitor_pods_ready", (), 0.0, 0.0),
            (1, "repro_monitor_pods_ready", (), 1.0, 4.0),
            (2, "repro_alert_state", (("alert", "A"),), 0.5, 2.0),
        ]

    def test_counter_samples_become_c_events(self):
        obj = chrome_trace(_spans(), {1: "deploy"}, counter_samples=self._samples())
        validate_chrome_trace(obj)
        counters = [e for e in obj["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 3
        ready = [e for e in counters if e["name"] == "repro_monitor_pods_ready"]
        assert [e["ts"] for e in ready] == [0.0, 1_000_000.0]
        assert [e["args"]["value"] for e in ready] == [0.0, 4.0]
        labeled = next(e for e in counters if e["pid"] == 2)
        assert labeled["name"] == "repro_alert_state{alert=A}"

    def test_counter_only_context_gets_process_name(self):
        obj = chrome_trace([], {3: "campaign"},
                           counter_samples=[(3, "repro_monitor_v", (), 0.0, 1.0)])
        meta = [e for e in obj["traceEvents"] if e["ph"] == "M"]
        assert any(
            e["name"] == "process_name" and e["pid"] == 3
            and e["args"]["name"] == "campaign"
            for e in meta
        )

    def test_validator_checks_c_events(self):
        with pytest.raises(ValueError, match="counter ts"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "C", "pid": 1, "ts": float("nan"),
                                  "args": {"value": 1}}]}
            )
        with pytest.raises(ValueError, match="without args"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "C", "pid": 1, "ts": 0.0, "args": {}}]}
            )
        with pytest.raises(ValueError, match="non-numeric"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "C", "pid": 1, "ts": 0.0,
                                  "args": {"value": "high"}}]}
            )


class TestTimeseriesJsonl:
    def _entries(self):
        return [
            (1, ("sample", "repro_monitor_pods_ready", (), 0.0, 0.0)),
            (1, ("sample", "repro_monitor_pods_ready", (), 1.0, 4.0)),
            (1, ("alert", "PodReadyAvailabilityLow",
                 (("from", "pending"), ("to", "firing"), ("severity", "page")),
                 1.0, 2.0)),
        ]

    def test_round_trip(self):
        text = timeseries_jsonl(self._entries(), {1: "deploy crun-wamr"})
        records = parse_timeseries_jsonl(text)
        assert [r["kind"] for r in records] == ["sample", "sample", "alert"]
        assert records[0]["ctx"] == "deploy crun-wamr"
        assert records[2]["alert"] == "PodReadyAvailabilityLow"
        assert records[2]["to"] == "firing"
        assert timeseries_jsonl([]) == ""
        assert parse_timeseries_jsonl("") == []

    def test_parser_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown kind"):
            parse_timeseries_jsonl('{"kind": "gauge", "ts": 0, "value": 1}\n')

    def test_parser_rejects_missing_field(self):
        with pytest.raises(ValueError, match="missing 'value'"):
            parse_timeseries_jsonl(
                '{"kind": "sample", "name": "m", "labels": {}, "ts": 0, "ctx": "c"}\n'
            )

    def test_parser_rejects_non_finite(self):
        with pytest.raises(ValueError, match="bad 'value'"):
            parse_timeseries_jsonl(
                '{"kind": "sample", "name": "m", "labels": {}, "ts": 0,'
                ' "value": NaN, "ctx": "c"}\n'
            )

    def test_parser_rejects_ts_regression_per_context(self):
        rows = [
            '{"kind": "sample", "name": "m", "labels": {}, "ts": 2.0, "value": 1, "ctx": "a"}',
            '{"kind": "sample", "name": "m", "labels": {}, "ts": 0.0, "value": 1, "ctx": "b"}',
        ]
        # Different contexts interleave freely...
        parse_timeseries_jsonl("\n".join(rows) + "\n")
        rows.append(
            '{"kind": "sample", "name": "m", "labels": {}, "ts": 1.0, "value": 1, "ctx": "a"}'
        )
        # ...but within one context time only moves forward.
        with pytest.raises(ValueError, match="timestamp regression"):
            parse_timeseries_jsonl("\n".join(rows) + "\n")


class TestRenderWasi:
    def _text(self):
        reg = MetricsRegistry()
        calls = reg.counter("repro_wasi_calls_total", "calls", ("func",))
        calls.labels("fd_write").inc(4)
        calls.labels("clock_time_get").inc(2)
        calls.labels("fd_close")  # registered, never called
        data = reg.counter("repro_wasi_bytes_total", "bytes", ("func", "direction"))
        data.labels("fd_write", "out").inc(64)
        return prometheus_text(reg)

    def test_table_shape_and_zero_row_filter(self):
        table = render_wasi(self._text())
        assert "2 hostcalls" in table and "6 calls" in table
        assert "fd_write" in table and "clock_time_get" in table
        assert "fd_close" not in table  # zero-activity rows dropped

    def test_top_footer_and_sort(self):
        table = render_wasi(self._text(), top=1)
        assert "fd_write" in table
        assert "... 1 more hostcalls (raise --top)" in table
        by_count = render_wasi(self._text(), top=1, sort="count")
        assert "fd_write" in by_count  # 4 calls > 2

    def test_no_samples_message(self):
        assert render_wasi(prometheus_text(MetricsRegistry())).startswith(
            "wasi: no repro_wasi_calls_total samples"
        )


class TestRenderDashboard:
    def test_sparklines_and_alert_timeline(self):
        text = timeseries_jsonl(
            [
                (1, ("sample", "repro_monitor_pods_ready", (), float(i), float(i)))
                for i in range(4)
            ]
            + [
                (1, ("sample", "repro_kubelet_pod_syncs_total", (), 3.0, 9.0)),
                (1, ("alert", "PodReadyAvailabilityLow",
                     (("from", "inactive"), ("to", "pending"), ("severity", "page")),
                     3.0, 1.0)),
            ],
            {1: "deploy"},
        )
        out = render_dashboard(parse_timeseries_jsonl(text))
        assert "deploy" in out
        assert "repro_monitor_pods_ready" in out
        # Default series filter keeps the collector gauges only.
        assert "repro_kubelet_pod_syncs_total" not in out
        assert "min=0 mean=1.5 max=3 last=3" in out
        assert "PodReadyAvailabilityLow" in out and "inactive → pending" in out
        widened = render_dashboard(
            parse_timeseries_jsonl(text), series="repro_kubelet_"
        )
        assert "repro_kubelet_pod_syncs_total" in widened

    def test_no_matching_series(self):
        assert render_dashboard([], series="nope").startswith(
            "monitor: no series matching"
        )
