"""Exporter tests: Prometheus text, Chrome trace JSON, JSONL, inspect."""

import json

import pytest

from repro.obs.export import (
    chrome_trace,
    jsonl_events,
    load_trace_events,
    metric_families,
    parse_prometheus_text,
    prometheus_text,
    render_breakdown,
    validate_chrome_trace,
)
from repro.obs.registry import MetricsRegistry
from repro.sim.trace import Span


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("repro_requests_total", "requests by outcome", ("outcome",))
    c.labels("ok").inc(3)
    c.labels("err").inc()
    reg.gauge("repro_inflight", "current in-flight").set(2)
    h = reg.histogram("repro_latency_seconds", "latency", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return reg


def _spans():
    return [
        (1, Span("startup.pull", "img", 0.0, 0.5, (("config", "crun-wamr"),))),
        (1, Span("startup.exec", "c-1", 0.5, 1.5, ())),
        (2, Span("recovery.backoff", "pod-1", 0.2, 1.2, (("reason", "CrashLoopBackOff"),))),
    ]


class TestPrometheusRoundTrip:
    def test_round_trip(self):
        text = prometheus_text(_sample_registry())
        fams = parse_prometheus_text(text)
        assert set(fams) == {
            "repro_requests_total",
            "repro_inflight",
            "repro_latency_seconds",
        }
        assert fams["repro_requests_total"]["type"] == "counter"
        samples = fams["repro_requests_total"]["samples"]
        assert samples[("repro_requests_total", (("outcome", "ok"),))] == 3.0
        assert samples[("repro_requests_total", (("outcome", "err"),))] == 1.0

    def test_histogram_exposition(self):
        text = prometheus_text(_sample_registry())
        samples = parse_prometheus_text(text)["repro_latency_seconds"]["samples"]
        # Cumulative buckets: 0.05 ≤ 0.1; 0.5 ≤ 1.0; 5.0 only under +Inf.
        assert samples[("repro_latency_seconds_bucket", (("le", "0.1"),))] == 1.0
        assert samples[("repro_latency_seconds_bucket", (("le", "1"),))] == 2.0
        assert samples[("repro_latency_seconds_bucket", (("le", "+Inf"),))] == 3.0
        assert samples[("repro_latency_seconds_count", ())] == 3.0
        assert samples[("repro_latency_seconds_sum", ())] == pytest.approx(5.55)

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labelnames=("k",)).labels('a"b\\c\nd').inc()
        fams = parse_prometheus_text(prometheus_text(reg))
        ((_, labels),) = list(fams["c_total"]["samples"])
        assert labels == (("k", 'a"b\\c\nd'),)

    def test_metric_families_helper(self):
        assert metric_families(prometheus_text(_sample_registry())) == [
            "repro_inflight",
            "repro_latency_seconds",
            "repro_requests_total",
        ]


class TestPrometheusChecker:
    def test_malformed_sample_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus_text("# TYPE x counter\nx{ oops\n")

    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            parse_prometheus_text("x_total 1\n")

    def test_duplicate_sample_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_prometheus_text("# TYPE x counter\nx 1\nx 2\n")

    def test_bad_type_line_rejected(self):
        with pytest.raises(ValueError, match="bad TYPE"):
            parse_prometheus_text("# TYPE x summary\n")


class TestChromeTrace:
    def test_schema_and_tracks(self):
        obj = chrome_trace(_spans(), {1: "deploy crun-wamr n=2", 2: "recover"})
        assert validate_chrome_trace(obj) == 3
        events = obj["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        # One process_name per context + one thread_name per component.
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        procs = {e["pid"]: e["args"]["name"] for e in meta if e["name"] == "process_name"}
        assert procs == {1: "deploy crun-wamr n=2", 2: "recover"}
        threads = {
            (e["pid"], e["args"]["name"]) for e in meta if e["name"] == "thread_name"
        }
        assert threads == {(1, "startup"), (2, "recovery")}

    def test_simulated_seconds_become_microseconds(self):
        obj = chrome_trace(_spans())
        pull = next(e for e in obj["traceEvents"] if e.get("name") == "img")
        assert pull["ts"] == 0.0
        assert pull["dur"] == 500_000.0
        assert pull["args"] == {"config": "crun-wamr"}

    def test_validator_rejects_junk(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"notTraceEvents": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X", "name": "n"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "Q"}]})


class TestJsonl:
    def test_monotonic_and_parseable(self):
        text = jsonl_events(_spans(), {1: "a", 2: "b"})
        rows = [json.loads(line) for line in text.splitlines()]
        assert len(rows) == 3
        starts = [r["ts"] for r in rows]
        assert starts == sorted(starts)
        assert rows[0]["ctx"] == "a"
        assert rows[1]["category"] == "recovery.backoff"
        assert rows[1]["attrs"] == {"reason": "CrashLoopBackOff"}

    def test_empty(self):
        assert jsonl_events([]) == ""


class TestLoadAndInspect:
    def test_load_chrome_json(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(chrome_trace(_spans(), {1: "ctx-a", 2: "ctx-b"})))
        records = load_trace_events(path)
        assert len(records) == 3
        assert {r["ctx"] for r in records} == {"ctx-a", "ctx-b"}
        assert records[0]["dur_s"] == pytest.approx(0.5)

    def test_load_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(jsonl_events(_spans()))
        records = load_trace_events(path)
        assert len(records) == 3
        assert records[0]["ts_s"] == 0.0

    def test_render_breakdown(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(jsonl_events(_spans()))
        table = render_breakdown(load_trace_events(path))
        assert "3 spans, 3 categories" in table
        assert "startup.exec" in table and "recovery.backoff" in table
        filtered = render_breakdown(load_trace_events(path), category="startup")
        assert "recovery.backoff" not in filtered
        assert render_breakdown([], category="nope").startswith("trace: no spans")
