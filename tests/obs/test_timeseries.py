"""Sim-clock TSDB + sampler: queries, scrape rules, merge protocol.

The determinism contract (``repro.obs.timeseries`` docstring) is pinned
here without running any cluster simulation: counters/histograms sample
as deltas since sampler birth with zero suppression, gauges only under
the collector prefix, wall-clock families never, and the worker merge
protocol reproduces the sequential log byte for byte.
"""

import math

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import (
    DEFAULT_PERIOD,
    MONITOR_GAUGE_PREFIX,
    WALLCLOCK_FAMILIES,
    Sampler,
    TimeSeriesDB,
)


def _db_with(points, name="m", labels=(), cid=1):
    db = TimeSeriesDB()
    for ts, value in points:
        db.append("sample", name, labels, ts, value, cid=cid)
    return db


class TestQueries:
    def test_instant_returns_last_at_or_before(self):
        db = _db_with([(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)])
        assert db.instant("m") == 3.0
        assert db.instant("m", at=1.5) == 2.0
        assert db.instant("m", at=-1.0) is None
        assert db.instant("missing") is None

    def test_increase_and_rate_over_window(self):
        db = _db_with([(0.0, 0.0), (1.0, 4.0), (2.0, 10.0)])
        assert db.increase("m", (), at=2.0, window=2.0) == 10.0
        assert db.rate("m", (), at=2.0, window=2.0) == pytest.approx(5.0)
        # A single point has no increase.
        assert db.increase("m", (), at=0.0, window=1.0) is None

    def test_rate_sums_across_matching_series(self):
        db = TimeSeriesDB()
        for node in ("a", "b"):
            for ts, v in [(0.0, 0.0), (2.0, 4.0)]:
                db.append("sample", "m", (("node", node),), ts, v, cid=1)
        assert db.rate("m", (), at=2.0, window=2.0) == pytest.approx(4.0)
        assert db.rate("m", (("node", "a"),), at=2.0, window=2.0) == pytest.approx(2.0)

    def test_over_time_avg_max_sum(self):
        db = _db_with([(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)])
        assert db.over_time("avg", "m", (), at=2.0, window=2.0) == pytest.approx(2.0)
        assert db.over_time("max", "m", (), at=2.0, window=2.0) == 3.0
        assert db.over_time("sum", "m", (), at=2.0, window=2.0) == 6.0
        with pytest.raises(ValueError):
            db.over_time("median", "m", (), at=2.0, window=2.0)

    def test_histogram_quantile_from_bucket_series(self):
        db = TimeSeriesDB()
        # Cumulative bucket counts growing over two samples: the window
        # increase is 10 observations, 8 under le=1, all under le=10.
        for ts, counts in [(0.0, (0, 0, 0)), (1.0, (8, 10, 10))]:
            for le, c in zip(("1", "10", "+Inf"), counts):
                db.append("sample", "h_bucket", (("le", le),), ts, float(c), cid=1)
        q50 = db.histogram_quantile("h", 0.5, at=1.0, window=1.0)
        assert q50 is not None and q50 <= 1.0
        q99 = db.histogram_quantile("h", 0.99, at=1.0, window=1.0)
        assert 1.0 < q99 <= 10.0
        # No increase in the window -> no quantile.
        assert db.histogram_quantile("h", 0.5, at=0.0, window=0.5) is None

    def test_retention_caps_index_not_log(self):
        db = TimeSeriesDB(retention=4)
        for i in range(10):
            db.append("sample", "m", (), float(i), float(i), cid=1)
        assert len(db.tagged_entries()) == 10
        assert len(db.window("m", (), at=10.0, window=100.0)) == 4


class TestSampler:
    def _clock(self):
        return self._now

    def _make(self, reg, db, period=DEFAULT_PERIOD):
        self._now = 0.0
        return Sampler(reg, db, clock=self._clock, period=period)

    def test_counters_sample_as_deltas_since_birth(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", "x")
        c.inc(5)  # pre-birth warmth
        db = TimeSeriesDB()
        sampler = self._make(reg, db)
        c.inc(2)
        sampler.sample_now()
        values = [e for _, e in db.tagged_entries() if e[1] == "repro_x_total"]
        assert [v[4] for v in values] == [2.0]

    def test_zero_delta_counters_suppressed(self):
        reg = MetricsRegistry()
        reg.counter("repro_quiet_total", "warm but untouched").inc(3)
        db = TimeSeriesDB()
        sampler = self._make(reg, db)
        sampler.sample_now()
        assert db.tagged_entries() == []

    def test_gauges_require_monitor_prefix(self):
        reg = MetricsRegistry()
        reg.gauge("repro_other_gauge", "stale cross-cell state").set(9)
        g = reg.gauge(MONITOR_GAUGE_PREFIX + "ready_fraction", "fresh")
        db = TimeSeriesDB()
        sampler = self._make(reg, db)
        g.set(0.5)
        sampler.sample_now()
        names = {e[1] for _, e in db.tagged_entries()}
        assert names == {MONITOR_GAUGE_PREFIX + "ready_fraction"}

    def test_wallclock_families_never_sampled(self):
        reg = MetricsRegistry()
        name = next(iter(WALLCLOCK_FAMILIES))
        reg.histogram(name, "host time", buckets=(0.1, 1.0)).observe(0.05)
        db = TimeSeriesDB()
        sampler = self._make(reg, db)
        sampler.sample_now()
        assert db.tagged_entries() == []

    def test_histogram_sampled_as_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_h_seconds", "h", buckets=(1.0, 10.0))
        db = TimeSeriesDB()
        sampler = self._make(reg, db)
        h.observe(0.5)
        h.observe(5.0)
        sampler.sample_now()
        rows = {
            (e[1], dict(e[2]).get("le")): e[4] for _, e in db.tagged_entries()
        }
        assert rows[("repro_h_seconds_bucket", "1")] == 1.0
        assert rows[("repro_h_seconds_bucket", "10")] == 2.0
        assert rows[("repro_h_seconds_bucket", "+Inf")] == 2.0
        assert rows[("repro_h_seconds_count", None)] == 2.0
        assert rows[("repro_h_seconds_sum", None)] == pytest.approx(5.5)

    def test_tick_samples_once_per_period(self):
        reg = MetricsRegistry()
        g = reg.gauge(MONITOR_GAUGE_PREFIX + "v", "v")
        g.set(1.0)
        db = TimeSeriesDB()
        sampler = self._make(reg, db, period=1.0)
        for now in (0.0, 0.1, 0.2, 1.05, 1.5, 2.0):
            self._now = now
            sampler.tick()
        stamps = [e[3] for _, e in db.tagged_entries()]
        # First tick of each period boundary samples; same-period ticks
        # are dropped by the cheap early-exit.
        assert stamps == [0.0, 1.05, 2.0]

    def test_collectors_run_before_each_sample(self):
        reg = MetricsRegistry()
        g = reg.gauge(MONITOR_GAUGE_PREFIX + "v", "v")
        db = TimeSeriesDB()
        sampler = self._make(reg, db)
        calls = []
        sampler.collectors.append(lambda: (calls.append(1), g.set(len(calls)))[0])
        sampler.sample_now()
        self._now = 1.0
        sampler.sample_now()
        values = [e[4] for _, e in db.tagged_entries()]
        assert values == [1.0, 2.0]


class TestMergeProtocol:
    def test_adopt_reproduces_sequential_log(self):
        from repro import obs

        seq = TimeSeriesDB()
        for i in range(4):
            seq.append("sample", "m", (), float(i), float(i * i), cid=7)
        seq.append("alert", "A", (("to", "firing"),), 4.0, 2.0, cid=7)

        mark = 0
        groups = seq.sample_groups_since(mark)
        assert len(groups) == 1
        _, entries = groups[0]

        merged = TimeSeriesDB()
        merged.adopt(7, entries)
        assert merged.tagged_entries() == seq.tagged_entries()
        # Queries see the adopted points too.
        assert merged.instant("m", cid=7) == 9.0
        assert obs is not None  # keep the import form shared with prod code

    def test_watermark_slices_new_entries_only(self):
        db = TimeSeriesDB()
        db.append("sample", "m", (), 0.0, 1.0, cid=1)
        mark = db.watermark()
        db.append("sample", "m", (), 1.0, 2.0, cid=1)
        groups = db.sample_groups_since(mark)
        assert [e[4] for _, entries in groups for e in entries] == [2.0]
