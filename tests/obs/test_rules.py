"""SLO rule engine: expression algebra, alert state machine, lifecycle.

The unit layer drives a hand-built TSDB; the integration layer runs a
real deployment with sampling on and asserts the canary alert fires
during startup (no pod ready yet) and resolves at convergence — the
full pending → firing → resolved arc, witnessed in all three channels
(counter, TSDB log, tracer spans).
"""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.rules import (
    FIRING,
    INACTIVE,
    PENDING,
    AlertRule,
    Expr,
    RecordingRule,
    RuleEngine,
    shipped_alerts,
)
from repro.obs.timeseries import TimeSeriesDB


def _engine(db, alerts=None, recordings=None, tracer=None):
    return RuleEngine(
        db, MetricsRegistry(), tracer=tracer, alerts=alerts, recordings=recordings
    )


class TestExpr:
    def test_instant(self):
        db = TimeSeriesDB()
        db.append("sample", "m", (), 1.0, 0.25, cid=1)
        assert Expr("instant", "m").evaluate(db, 1.0) == 0.25
        assert Expr("instant", "missing").evaluate(db, 1.0) is None

    def test_rate_and_ratio(self):
        db = TimeSeriesDB()
        for ts, num, den in [(0.0, 0.0, 0.0), (10.0, 5.0, 10.0)]:
            db.append("sample", "errs", (), ts, num, cid=1)
            db.append("sample", "reqs", (), ts, den, cid=1)
        assert Expr("rate", "errs", window=10.0).evaluate(db, 10.0) == pytest.approx(0.5)
        ratio = Expr("ratio_rate", "errs", window=10.0, denominator="reqs")
        assert ratio.evaluate(db, 10.0) == pytest.approx(0.5)
        # Zero/missing denominator rate -> no value, not a crash.
        bad = Expr("ratio_rate", "errs", window=10.0, denominator="missing")
        assert bad.evaluate(db, 10.0) is None

    def test_over_time_and_quantile(self):
        db = TimeSeriesDB()
        for ts, v in [(0.0, 0.2), (1.0, 0.4)]:
            db.append("sample", "g", (), ts, v, cid=1)
        assert Expr("avg_over_time", "g", window=2.0).evaluate(db, 1.0) == pytest.approx(0.3)
        assert Expr("max_over_time", "g", window=2.0).evaluate(db, 1.0) == 0.4
        for ts, c in [(0.0, 0.0), (1.0, 10.0)]:
            for le in ("1", "+Inf"):
                db.append("sample", "h_bucket", (("le", le),), ts, c, cid=1)
        q = Expr("histogram_quantile", "h", window=2.0, q=0.5).evaluate(db, 1.0)
        assert q is not None and q <= 1.0

    def test_unknown_fn_raises(self):
        with pytest.raises(ValueError):
            Expr("stddev", "m").evaluate(TimeSeriesDB(), 0.0)


class TestStateMachine:
    def _alert(self, for_s=1.0):
        return AlertRule(
            name="A", expr=Expr("instant", "m"), op="<", threshold=0.5, for_s=for_s
        )

    def _feed(self, db, ts, value):
        db.append("sample", "m", (), ts, value, cid=1)

    def test_pending_then_firing_then_resolved(self):
        db = TimeSeriesDB()
        alert = self._alert(for_s=1.0)
        engine = _engine(db, alerts=[alert])

        self._feed(db, 0.0, 0.1)
        engine.evaluate(0.0)
        assert alert.state == PENDING

        # Still breaching but not for long enough.
        self._feed(db, 0.5, 0.1)
        engine.evaluate(0.5)
        assert alert.state == PENDING

        self._feed(db, 1.0, 0.1)
        engine.evaluate(1.0)
        assert alert.state == FIRING and alert.fired_at == 1.0

        self._feed(db, 2.0, 1.0)
        engine.evaluate(2.0)
        assert alert.state == INACTIVE and alert.fired_at is None

        transitions = [
            (dict(e[2])["from"], dict(e[2])["to"])
            for _, e in db.tagged_entries()
            if e[0] == "alert"
        ]
        assert transitions == [
            ("inactive", "pending"),
            ("pending", "firing"),
            ("firing", "resolved"),
        ]

    def test_zero_for_fires_immediately(self):
        db = TimeSeriesDB()
        alert = self._alert(for_s=0.0)
        engine = _engine(db, alerts=[alert])
        self._feed(db, 0.0, 0.1)
        engine.evaluate(0.0)
        assert alert.state == FIRING

    def test_pending_recovery_resets_clock(self):
        db = TimeSeriesDB()
        alert = self._alert(for_s=1.0)
        engine = _engine(db, alerts=[alert])
        self._feed(db, 0.0, 0.1)
        engine.evaluate(0.0)  # pending
        self._feed(db, 0.5, 1.0)
        engine.evaluate(0.5)  # back to inactive
        assert alert.state == INACTIVE and alert.pending_since is None
        self._feed(db, 2.0, 0.1)
        engine.evaluate(2.0)  # pending again with a fresh clock
        self._feed(db, 2.5, 0.1)
        engine.evaluate(2.5)
        assert alert.state == PENDING

    def test_no_data_is_not_a_breach(self):
        db = TimeSeriesDB()
        alert = self._alert(for_s=0.0)
        engine = _engine(db, alerts=[alert])
        engine.evaluate(0.0)  # metric never sampled
        assert alert.state == INACTIVE

    def test_alert_state_series_emitted_every_tick(self):
        db = TimeSeriesDB()
        alert = self._alert()
        engine = _engine(db, alerts=[alert])
        engine.evaluate(0.0)
        engine.evaluate(1.0)
        states = [
            e[4] for _, e in db.tagged_entries() if e[1] == "repro_alert_state"
        ]
        assert states == [0.0, 0.0]

    def test_transition_counter_increments(self):
        db = TimeSeriesDB()
        reg = MetricsRegistry()
        alert = self._alert(for_s=0.0)
        engine = RuleEngine(db, reg, alerts=[alert])
        db.append("sample", "m", (), 0.0, 0.1, cid=1)
        engine.evaluate(0.0)
        fam = reg.get("repro_alert_transitions_total")
        values = {labels: child.value for labels, child in fam.samples()}
        assert values[("A", "firing")] == 1

    def test_incident_span_covers_fired_to_resolved(self):
        from repro.sim.trace import Tracer

        tracer = Tracer()
        db = TimeSeriesDB()
        alert = self._alert(for_s=0.0)
        engine = _engine(db, alerts=[alert], tracer=tracer)
        db.append("sample", "m", (), 1.0, 0.1, cid=1)
        engine.evaluate(1.0)
        db.append("sample", "m", (), 3.0, 1.0, cid=1)
        engine.evaluate(3.0)
        incidents = tracer.by_category("alert")
        names = [s.name for s in incidents]
        assert "alert.firing" in names and "alert.resolved" in names
        incident = next(s for s in incidents if s.name == "alert.incident")
        assert incident.start == 1.0 and incident.duration == pytest.approx(2.0)

    def test_recording_rule_materializes_series(self):
        db = TimeSeriesDB()
        rec = RecordingRule(
            "repro_rule_err_rate", Expr("rate", "errs", window=10.0)
        )
        engine = _engine(db, alerts=[], recordings=[rec])
        db.append("sample", "errs", (), 0.0, 0.0, cid=1)
        db.append("sample", "errs", (), 10.0, 5.0, cid=1)
        engine.evaluate(10.0)
        assert db.instant("repro_rule_err_rate") == pytest.approx(0.5)


class TestShippedAlerts:
    def test_shipped_set_shape(self):
        alerts = {a.name: a for a in shipped_alerts()}
        assert set(alerts) == {
            "PodReadyAvailabilityLow",
            "ColdStartP99High",
            "NodeMemoryPressureSustained",
            "SyncFailureBurnRate",
        }
        assert alerts["PodReadyAvailabilityLow"].severity == "page"
        assert alerts["SyncFailureBurnRate"].expr.denominator == (
            "repro_kubelet_pod_syncs_total"
        )

    def test_alert_fires_during_chaos_and_resolves_after_recovery(self, telemetry):
        """Acceptance: under a fault campaign at least one shipped alert
        reaches FIRING while the cluster is degraded, and the forced
        convergence sample at the end resolves every incident."""
        from repro.measure.chaos import run_chaos
        from repro.obs import timeseries

        timeseries.set_sampling(True, timeseries.DEFAULT_PERIOD)
        try:
            m = run_chaos(count=24, seed=5, max_rounds=20)
        finally:
            timeseries.set_sampling(False)
        assert m.converged
        arcs = {}
        for _, e in timeseries.default_db().tagged_entries():
            if e[0] == "alert":
                arcs.setdefault(e[1], []).append(dict(e[2])["to"])
        fired = [name for name, arc in arcs.items() if "firing" in arc]
        assert fired, f"no shipped alert fired under chaos (arcs: {arcs})"
        # Rate-window alerts (burn rate over 30 s) legitimately keep
        # firing until the window slides past the chaotic period; the
        # instant-expression alerts must resolve at the convergence
        # sample.
        resolved = [name for name in fired if arcs[name][-1] == "resolved"]
        assert resolved, f"no fired alert resolved after recovery (arcs: {arcs})"
        assert "PodReadyAvailabilityLow" in resolved

    def test_canary_fires_and_resolves_on_real_deploy(self, telemetry):
        """Full arc on a real cluster: ready_fraction is 0 during the
        startup window (breach), 1.0 at the convergence sample
        (resolve)."""
        from repro.engines.cache import clear_cache_state
        from repro.obs import timeseries
        from repro.measure.experiment import ExperimentRunner

        clear_cache_state()
        timeseries.set_sampling(True, 0.25)
        try:
            ExperimentRunner(seed=1).run("crun-wamr", 10)
        finally:
            timeseries.set_sampling(False)
        arc = [
            dict(e[2])["to"]
            for _, e in timeseries.default_db().tagged_entries()
            if e[0] == "alert" and e[1] == "PodReadyAvailabilityLow"
        ]
        assert arc == ["pending", "firing", "resolved"]
