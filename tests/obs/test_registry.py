"""MetricsRegistry / family / child unit tests."""

import pytest

from repro import obs
from repro.errors import SimulationError
from repro.obs.registry import DEFAULT_BUCKETS, NULL_METRIC, MetricsRegistry


class TestCounter:
    def test_labelless_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "help text")
        assert c.value == 0
        c.inc()
        c.inc(2)
        assert c.value == 3

    def test_labelled_children_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", labelnames=("layer",))
        c.labels("compile").inc()
        c.labels("compile").inc()
        c.labels("run").inc()
        assert c.labels("compile").value == 2
        assert c.labels("run").value == 1
        assert c.labels(layer="compile") is c.labels("compile")

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total")
        with pytest.raises(SimulationError):
            c.inc(-1)

    def test_label_arity_checked(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", labelnames=("a", "b"))
        with pytest.raises(SimulationError):
            c.labels("only-one")


class TestGauge:
    def test_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("inflight")
        g.set(5)
        g.inc(-2)
        assert g.value == 3


class TestHistogram:
    def test_observations_land_in_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.7, 5.0, 100.0):
            h.observe(v)
        child = h.labels()
        assert child.bucket_counts == [1, 2, 1]  # 100.0 only in +Inf
        assert child.cumulative_buckets() == [1, 3, 4]
        assert child.count == 5
        assert child.sum == pytest.approx(106.25)

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "first")
        b = reg.counter("x_total", "second registration ignored")
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(SimulationError):
            reg.gauge("x_total")

    def test_labelnames_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("a",))
        with pytest.raises(SimulationError):
            reg.counter("x_total", labelnames=("b",))

    def test_collect_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zz_total")
        reg.counter("aa_total")
        assert [f.name for f in reg.collect()] == ["aa_total", "zz_total"]

    def test_reset_keeps_registrations_and_handles(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", labelnames=("k",))
        child = c.labels("v")
        child.inc(7)
        reg.reset()
        assert reg.get("x_total") is c
        assert child.value == 0
        child.inc()  # bound handle still live
        assert c.labels("v").value == 1

    def test_events_counts_observations(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total")
        h = reg.histogram("h_seconds")
        c.inc()
        c.inc()
        h.observe(0.5)
        assert reg.events == 3
        reg.reset()
        assert reg.events == 0


class TestNullMetric:
    def test_null_metric_absorbs_everything(self):
        n = NULL_METRIC
        assert n.labels("a", "b") is n
        assert n.labels(k="v") is n
        n.inc()
        n.inc(10)
        n.set(3)
        n.observe(0.1)
        n.reset()
        assert n.value == 0.0


class TestModuleApi:
    def test_disabled_returns_null_metric(self):
        was = obs.enabled()
        obs.set_enabled(False)
        try:
            assert obs.counter("off_total") is NULL_METRIC
            assert obs.gauge("off_g") is NULL_METRIC
            assert obs.histogram("off_h") is NULL_METRIC
        finally:
            obs.set_enabled(was)

    def test_always_registers_even_when_disabled(self):
        was = obs.enabled()
        obs.set_enabled(False)
        try:
            fam = obs.counter("forced_total", "always-on", always=True)
            assert fam is not NULL_METRIC
            assert obs.default_registry().get("forced_total") is fam
        finally:
            obs.set_enabled(was)

    def test_enabled_returns_live_family(self, telemetry):
        fam = telemetry.counter("live_total")
        fam.inc()
        assert telemetry.default_registry().get("live_total").value == 1

    def test_contexts(self, telemetry):
        cid = telemetry.new_context("deploy x")
        assert telemetry.current_context() == cid
        assert telemetry.context_labels()[cid] == "deploy x"
        telemetry.reset()
        assert telemetry.current_context() == 0
        assert telemetry.context_labels() == {}
