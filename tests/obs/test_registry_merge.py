"""Mergeable registry state: the worker-pool telemetry protocol.

A pool worker snapshots ``state()`` before a cell, computes
``delta_since()`` after, and ships the (picklable) delta back; the
parent folds the deltas in sequential cell order with ``merge_delta()``.
These tests pin the protocol's algebra without running any simulation.
"""

import pickle

import pytest

from repro.errors import SimulationError
from repro.obs.export import prometheus_text
from repro.obs.registry import MetricsRegistry


def _workload_a(reg):
    reg.counter("tasks_total", "tasks", labelnames=("kind",)).labels("deploy").inc(3)
    reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0)).observe(0.5)
    reg.gauge("inflight", "in flight").set(7)


def _workload_b(reg):
    reg.counter("tasks_total", "tasks", labelnames=("kind",)).labels("deploy").inc(2)
    reg.counter("tasks_total", "tasks", labelnames=("kind",)).labels("chaos").inc()
    reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0)).observe(5.0)
    reg.gauge("inflight", "in flight").set(2)


class TestDeltaAlgebra:
    def test_delta_of_unchanged_registry_is_empty(self):
        reg = MetricsRegistry()
        _workload_a(reg)
        base = reg.state()
        delta = reg.delta_since(base)
        assert delta["events"] == 0
        assert delta["families"] == {}

    def test_delta_captures_only_new_activity(self):
        reg = MetricsRegistry()
        _workload_a(reg)
        base = reg.state()
        _workload_b(reg)
        delta = reg.delta_since(base)
        children = delta["families"]["tasks_total"]["children"]
        assert children[("deploy",)] == 2  # 5 total minus 3 at snapshot
        assert children[("chaos",)] == 1
        buckets, dsum, dcount, dunits = delta["families"]["lat_seconds"]["children"][()]
        assert dcount == 1 and dsum == 5.0 and dunits == 5_000_000_000
        assert buckets == (0, 0)  # 5.0 overflows every finite bucket

    def test_new_family_registration_propagates_even_when_zero(self):
        reg = MetricsRegistry()
        base = reg.state()
        reg.counter("quiet_total", "registered but never incremented")
        delta = reg.delta_since(base)
        # The labelless child rides along at zero so the parent's export
        # shows the family exactly as the worker's would.
        assert delta["families"]["quiet_total"]["children"] == {(): 0.0}
        parent = MetricsRegistry()
        parent.merge_delta(delta)
        assert parent.get("quiet_total") is not None
        assert parent.counter("quiet_total").value == 0

    def test_delta_is_picklable(self):
        reg = MetricsRegistry()
        base = reg.state()
        _workload_a(reg)
        delta = reg.delta_since(base)
        assert pickle.loads(pickle.dumps(delta)) == delta


class TestMergeEquivalence:
    def test_split_run_merges_to_sequential_registry(self):
        # Sequential reference: both workloads in one registry.
        seq = MetricsRegistry()
        _workload_a(seq)
        _workload_b(seq)

        # Parallel: each workload in its own "worker" registry, deltas
        # merged into a fresh parent in sequential order.
        parent = MetricsRegistry()
        for workload in (_workload_a, _workload_b):
            worker = MetricsRegistry()
            base = worker.state()
            workload(worker)
            parent.merge_delta(worker.delta_since(base))

        assert prometheus_text(parent) == prometheus_text(seq)
        assert parent.events == seq.events

    def test_gauges_apply_last_writer_wins(self):
        parent = MetricsRegistry()
        for value in (7, 2):
            worker = MetricsRegistry()
            base = worker.state()
            worker.gauge("inflight").set(value)
            parent.merge_delta(worker.delta_since(base))
        assert parent.gauge("inflight").value == 2

    def test_merge_into_warm_parent_adds(self):
        parent = MetricsRegistry()
        _workload_a(parent)
        worker = MetricsRegistry()
        base = worker.state()
        _workload_b(worker)
        parent.merge_delta(worker.delta_since(base))
        assert parent.counter("tasks_total", labelnames=("kind",)).labels("deploy").value == 5
        assert parent.histogram("lat_seconds", buckets=(0.1, 1.0)).labels().count == 2

    def test_bucket_mismatch_rejected(self):
        parent = MetricsRegistry()
        parent.histogram("lat_seconds", buckets=(0.1, 1.0))
        worker = MetricsRegistry()
        base = worker.state()
        worker.histogram("lat_seconds", buckets=(0.5, 2.0)).observe(0.3)
        with pytest.raises(SimulationError, match="bucket mismatch"):
            parent.merge_delta(worker.delta_since(base))

    def test_events_counter_merges_exactly(self):
        worker = MetricsRegistry()
        base = worker.state()
        _workload_a(worker)  # 3 observations: inc, observe, set
        events = worker.events
        parent = MetricsRegistry()
        parent.merge_delta(worker.delta_since(base))
        assert parent.events == events > 0


class TestMergeEdgeCases:
    """S3: the algebra's corners — the cases the pool never hits until
    it does (empty cells, children one side has never seen, repeated
    application)."""

    def test_empty_delta_is_a_no_op(self):
        parent = MetricsRegistry()
        _workload_a(parent)
        before = prometheus_text(parent)
        worker = MetricsRegistry()
        parent.merge_delta(worker.delta_since(worker.state()))
        assert prometheus_text(parent) == before
        parent.merge_delta(None)
        parent.merge_delta({})
        assert prometheus_text(parent) == before

    def test_one_sided_histogram_child_merges_into_bare_parent(self):
        # Parent registered the family but never observed the worker's
        # label set: the merge must materialize the child, buckets and
        # all, not just add to existing cells.
        parent = MetricsRegistry()
        parent.histogram("lat_seconds", "latency", buckets=(0.1, 1.0),
                         labelnames=("config",))
        worker = MetricsRegistry()
        base = worker.state()
        h = worker.histogram("lat_seconds", "latency", buckets=(0.1, 1.0),
                             labelnames=("config",))
        h.labels("crun-wamr").observe(0.05)
        h.labels("crun-wamr").observe(0.5)
        parent.merge_delta(worker.delta_since(base))
        child = parent.get("lat_seconds").samples()
        ((labels, merged),) = child
        assert labels == ("crun-wamr",)
        assert merged.count == 2 and merged.sum == pytest.approx(0.55)
        assert tuple(merged.cumulative_buckets()) == (1, 2)

    def test_merge_is_additive_not_idempotent(self):
        # The protocol applies each delta exactly once (sequential cell
        # order); applying one twice double-counts by design. Pinned so
        # nobody "fixes" the pool by making merges idempotent and
        # silently drops legitimate repeat activity across cells.
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        base = worker.state()
        worker.counter("tasks_total", "t").inc(3)
        delta = worker.delta_since(base)
        parent.merge_delta(delta)
        parent.merge_delta(delta)
        assert parent.counter("tasks_total").value == 6

    def test_counters_never_regress_under_merge(self):
        # A worker delta can only add: zero-activity children arrive as
        # 0.0 and leave the parent's accumulated totals untouched.
        parent = MetricsRegistry()
        parent.counter("tasks_total", "t").inc(5)
        worker = MetricsRegistry()
        base = worker.state()
        worker.counter("tasks_total", "t")  # registered, never incremented
        parent.merge_delta(worker.delta_since(base))
        assert parent.counter("tasks_total").value == 5
