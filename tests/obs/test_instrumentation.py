"""End-to-end telemetry: real experiments populate metrics + spans.

The acceptance bar from the issue: a telemetry-enabled run must export a
valid Chrome trace and Prometheus text with ≥8 metric families spanning
≥5 distinct subsystems.
"""

import json

import pytest

from repro.measure.experiment import ExperimentRunner
from repro.measure.recovery import run_recovery
from repro.obs.export import (
    chrome_trace,
    parse_prometheus_text,
    prometheus_text,
    render_breakdown,
    load_trace_events,
    validate_chrome_trace,
    write_outputs,
)

#: subsystem = second dotted segment of the metric name (repro_<subsystem>_...)
def _subsystem(family: str) -> str:
    return family.split("_")[1]


@pytest.fixture(scope="module")
def deployed():
    """One small deployment + one small recovery run with telemetry on.

    Module-scoped: the simulated runs happen once, every test reads the
    resulting registry/trace.
    """
    from repro import obs
    from repro.engines.cache import reset_caches

    was_enabled = obs.enabled()
    obs.set_enabled(True)
    obs.reset()
    # Cold guest-work caches: a warm run cache would skip the wasm/WASI
    # layer entirely (and with it their metric registrations).
    reset_caches()
    ExperimentRunner(seed=11).run("crun-wamr", 4)
    run_recovery(config="crun-wamr", count=4, seed=3)
    yield obs
    obs.reset()
    obs.set_enabled(was_enabled)


class TestMetricsCoverage:
    def test_family_and_subsystem_floor(self, deployed):
        text = prometheus_text(deployed.default_registry())
        families = parse_prometheus_text(text)
        populated = [
            name
            for name, fam in families.items()
            if any(v for v in fam["samples"].values())
        ]
        assert len(populated) >= 8, populated
        assert len({_subsystem(f) for f in populated}) >= 5, populated

    def test_expected_families_present(self, deployed):
        reg = deployed.default_registry()
        for name in (
            "repro_scheduler_placements_total",
            "repro_kubelet_pod_syncs_total",
            "repro_containerd_tasks_total",
            "repro_memory_queries_total",
            "repro_metrics_server_scrapes_total",
            "repro_engine_cache_requests_total",
            "repro_wasm_instructions_total",
            "repro_wasi_calls_total",
            "repro_faults_checks_total",
            "repro_faults_injected_total",
        ):
            assert reg.get(name) is not None, name

    def test_counters_reflect_the_runs(self, deployed):
        reg = deployed.default_registry()
        # 4 pods deployed + ≥4 recovered: ≥8 successful syncs.
        assert reg.get("repro_kubelet_pod_syncs_total").labels("ok").value >= 8
        assert reg.get("repro_containerd_tasks_total").labels("sandbox_created").value >= 8
        assert reg.get("repro_wasm_instructions_total").value > 0
        assert reg.get("repro_wasi_calls_total").labels("fd_write").value > 0
        # The transient plan fired at least once at ≥30% per attempt.
        assert reg.get("repro_faults_checks_total").value > 0
        assert reg.get("repro_scheduler_decision_seconds").labels().count >= 8


class TestSpanCollection:
    def test_contexts_separate_experiments(self, deployed):
        labels = deployed.context_labels()
        assert any(l.startswith("deploy crun-wamr") for l in labels.values())
        assert any(l.startswith("recover crun-wamr") for l in labels.values())

    def test_pod_sync_and_recovery_spans_present(self, deployed):
        cats = {span.category for _, span in deployed.tagged_spans()}
        assert "pod.sync" in cats
        assert "startup.pipeline" in cats
        assert "recovery.converge" in cats

    def test_chrome_trace_validates(self, deployed):
        obj = chrome_trace(deployed.tagged_spans(), deployed.context_labels())
        assert validate_chrome_trace(obj) == len(deployed.tagged_spans())


class TestWriteOutputs:
    def test_files_round_trip(self, deployed, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        written = write_outputs("trace.json", "metrics.prom")
        assert written == ["trace.json", "metrics.prom"]
        obj = json.loads((tmp_path / "trace.json").read_text())
        assert validate_chrome_trace(obj) > 0
        parse_prometheus_text((tmp_path / "metrics.prom").read_text())
        table = render_breakdown(load_trace_events(tmp_path / "trace.json"))
        assert "pod.sync" in table

    def test_jsonl_variant(self, deployed, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_outputs(str(path), None)
        records = load_trace_events(path)
        starts = [r["ts_s"] for r in records]
        assert starts == sorted(starts)


class TestDisabledIsInert:
    def test_disabled_run_records_nothing(self, telemetry):
        telemetry.set_enabled(False)
        before_events = telemetry.default_registry().events
        ExperimentRunner(seed=21).run("crun-wamr", 2)
        reg = telemetry.default_registry()
        # Only always=True families (engine cache) may move.
        assert reg.get("repro_scheduler_placements_total") is None or (
            not any(
                child.value
                for _, child in reg.get("repro_scheduler_placements_total").samples()
            )
        )
        assert telemetry.tagged_spans() == []
        # Engine-cache counters still function (always=True contract).
        from repro.engines.cache import cache_stats

        assert cache_stats()["run"]["hits"] + cache_stats()["run"]["misses"] >= 0
        assert reg.events >= before_events
