"""Fleet scheduling: heterogeneous nodes, locality, node-failure recovery."""

import pytest

from repro import obs
from repro.errors import KubernetesError
from repro.k8s import PodPhase
from repro.k8s.cluster import NodeSpec, build_cluster
from repro.sim.faults import fleet_plan
from repro.sim.memory import GIB


@pytest.fixture()
def telemetry():
    """Telemetry on, clean slate; restores the prior state afterwards."""
    was_enabled = obs.enabled()
    obs.set_enabled(True)
    obs.reset()
    yield obs
    obs.reset()
    obs.set_enabled(was_enabled)


class TestHeterogeneousFleet:
    def test_node_specs_build_exact_shapes(self):
        cluster = build_cluster(
            seed=3,
            node_specs=[
                NodeSpec("big", cores=32, memory_bytes=512 * GIB, max_pods=100),
                NodeSpec(
                    "edge",
                    cores=4,
                    memory_bytes=64 * GIB,
                    max_pods=10,
                    labels={"tier": "edge"},
                ),
            ],
        )
        assert sorted(cluster.nodes) == ["big", "edge"]
        big, edge = cluster.nodes["big"].info, cluster.nodes["edge"].info
        assert big.max_pods == 100 and big.allocatable_memory == 512 * GIB
        assert edge.max_pods == 10 and edge.labels == {"tier": "edge"}
        assert cluster.nodes["edge"].env.memory.total_bytes == 64 * GIB

    def test_zero_capacity_node_never_receives_pods(self):
        cluster = build_cluster(
            seed=3,
            node_specs=[
                NodeSpec("empty", max_pods=0),
                NodeSpec("real", max_pods=10),
            ],
        )
        pods = cluster.deploy_and_wait("crun-wamr", 5)
        assert all(p.node_name == "real" for p in pods)

    def test_full_node_spills_to_the_rest(self):
        cluster = build_cluster(
            seed=3,
            node_specs=[
                NodeSpec("small", max_pods=2),
                NodeSpec("large", max_pods=8),
            ],
        )
        pods = cluster.deploy_and_wait("crun-wamr", 10)
        assert all(p.phase is PodPhase.RUNNING for p in pods)
        assert cluster.nodes["small"].info.pod_count == 2
        assert cluster.nodes["large"].info.pod_count == 8

    def test_selector_mismatch_across_whole_fleet(self):
        cluster = build_cluster(
            seed=3,
            node_specs=[
                NodeSpec("a", labels={"zone": "us"}),
                NodeSpec("b", labels={"zone": "eu"}),
            ],
        )
        spec = cluster.pod_template("crun-wamr")
        spec.node_selector = {"zone": "mars"}
        pod = cluster.api.create_pod("stranded", spec)
        assert pod.node_name is None  # no node matches; stays Pending

    def test_selector_routes_within_fleet(self):
        cluster = build_cluster(
            seed=3,
            node_specs=[
                NodeSpec("a", labels={"zone": "us"}),
                NodeSpec("b", labels={"zone": "eu"}),
            ],
        )
        spec = cluster.pod_template("crun-wamr")
        spec.node_selector = {"zone": "eu"}
        assert cluster.api.create_pod("routed", spec).node_name == "b"

    def test_tie_break_is_name_order(self):
        # Empty homogeneous nodes score identically on every term; only a
        # strictly greater score displaces the incumbent, so the first
        # node in name order wins the first placement deterministically.
        cluster = build_cluster(seed=3, node_count=4)
        pod = cluster.make_pod("crun-wamr")
        assert pod.node_name == "node-0"


class TestPlacementFailureTelemetry:
    def test_unschedulable_pod_counts_failure_and_stays_pending(self, telemetry):
        cluster = build_cluster(seed=3, node_count=1, max_pods=1)
        cluster.make_pod("crun-wamr")
        stuck = cluster.make_pod("crun-wamr")  # no capacity: swallowed error
        assert stuck.phase is PodPhase.PENDING and stuck.node_name is None
        fam = telemetry.default_registry().get(
            "repro_scheduler_placement_failures_total"
        )
        assert fam.labels("capacity").value == 1

    def test_failure_reasons_are_classified(self, telemetry):
        cluster = build_cluster(seed=3, node_count=2)
        spec = cluster.pod_template("crun-wamr")
        spec.node_selector = {"zone": "nowhere"}
        cluster.api.create_pod("mismatch", spec)
        for name in list(cluster.nodes):
            cluster.nodes[name].info.unschedulable = True
        cluster.make_pod("crun-wamr")
        fam = telemetry.default_registry().get(
            "repro_scheduler_placement_failures_total"
        )
        assert fam.labels("selector_mismatch").value == 1
        assert fam.labels("unschedulable").value == 1


class TestIncrementalFreeSlots:
    def test_delete_frees_a_slot_for_sweep(self):
        cluster = build_cluster(seed=3, node_count=1, max_pods=2)
        pods = cluster.deploy_and_wait("crun-wamr", 2)
        stuck = cluster.make_pod("crun-wamr")
        assert stuck.node_name is None
        cluster.nodes[pods[0].node_name].kubelet.teardown_pod(pods[0])
        cluster.api.delete_pod(pods[0])  # +1 via the capacity watch
        assert cluster.scheduler.sweep() == 1
        assert stuck.node_name == "node-0"

    def test_free_slots_track_binds_across_fleet(self):
        cluster = build_cluster(seed=3, node_count=3, max_pods=4)
        cluster.deploy_and_wait("crun-wamr", 9)
        order = cluster.scheduler._node_order()
        assert [n.name for n in order] == ["node-0", "node-1", "node-2"]
        assert cluster.scheduler._free_slots == {
            "node-0": 1,
            "node-1": 1,
            "node-2": 1,
        }


class TestZygoteLocality:
    def test_wave_follows_the_snapshot(self):
        # A completed seed pod plants exactly one node's snapshot; the
        # locality bonus then outweighs the small balance deficit, so a
        # follow-up wave of warm-capable pods lands on the same node.
        cluster = build_cluster(seed=3, node_count=4)
        seed_pod = cluster.deploy_and_wait("crun-wamr-zygote", 1)[0]
        wave = cluster.deploy_and_wait("crun-wamr-zygote", 12)
        assert {p.node_name for p in wave} == {seed_pod.node_name}

    def test_locality_blind_spreads(self):
        cluster = build_cluster(seed=3, node_count=4, locality_weight=0.0)
        cluster.deploy_and_wait("crun-wamr-zygote", 1)
        wave = cluster.deploy_and_wait("crun-wamr-zygote", 12)
        assert len({p.node_name for p in wave}) == 4

    def test_locality_raises_warm_fraction(self):
        # The acceptance criterion: locality-aware placement wins strictly
        # more warm starts than locality-blind spreading of the same wave.
        from repro.measure.fleet import run_locality_ablation

        ablation = run_locality_ablation(count=24, nodes=4, seed=3)
        assert ablation.warm_fraction_with == 1.0
        assert ablation.warm_fraction_with > ablation.warm_fraction_without
        assert ablation.warm_gain > 0.5

    def test_non_zygote_configs_skip_the_bonus(self):
        # crun-wamr has no warm profile: placement must stay pure
        # spreading even when a zygote snapshot exists somewhere.
        cluster = build_cluster(seed=3, node_count=2)
        cluster.deploy_and_wait("crun-wamr-zygote", 1)
        wave = cluster.deploy_and_wait("crun-wamr", 8)
        by_node = {}
        for p in wave:
            by_node[p.node_name] = by_node.get(p.node_name, 0) + 1
        assert by_node["node-1"] >= 4  # not packed onto the snapshot node


class TestNodeFailure:
    def test_fail_node_drains_and_replacements_land_elsewhere(self):
        cluster = build_cluster(seed=3, node_count=2)
        spec = cluster.pod_template("crun-wamr")
        cluster.deployments.create("svc", spec, replicas=6)
        cluster.reconcile_and_wait("svc")
        drained = cluster.fail_node("node-0")
        assert drained and all(p.phase is PodPhase.FAILED for p in drained)
        assert cluster.nodes["node-0"].info.unschedulable
        status = cluster.reconcile_and_wait("svc")
        assert status["ready"] == 6
        survivors = [
            p
            for p in cluster.api.pods_on_node("node-1")
            if p.phase is PodPhase.RUNNING
        ]
        assert len(survivors) == 6

    def test_failed_node_rejects_new_pods(self):
        cluster = build_cluster(seed=3, node_count=2)
        cluster.fail_node("node-0")
        pods = cluster.deploy_and_wait("crun-wamr", 4)
        assert all(p.node_name == "node-1" for p in pods)

    def test_fleet_plan_fires_one_node_failure(self):
        cluster = build_cluster(
            seed=3, node_count=3, fault_plan=fleet_plan(seed=0)
        )
        cluster.deploy_and_wait("crun-wamr", 6)
        failed = cluster.inject_node_failures()
        assert len(failed) == 1  # max_node_failures budget
        assert cluster.nodes[failed[0]].info.unschedulable
        # Budget spent: a second sweep fails nothing further.
        assert cluster.inject_node_failures() == []

    def test_all_nodes_failed_leaves_pods_pending(self):
        cluster = build_cluster(seed=3, node_count=2)
        cluster.fail_node("node-0")
        cluster.fail_node("node-1")
        with pytest.raises(KubernetesError, match="not scheduled"):
            cluster.deploy_and_wait("crun-wamr", 1)
