"""Backoff schedule shape, restart policies, and per-seed determinism."""

import pytest

from repro.errors import SimulationError
from repro.k8s.backoff import BackoffPolicy, BackoffTracker
from repro.k8s.cluster import build_cluster
from repro.k8s.objects import (
    PodPhase,
    REASON_CRASH_LOOP_BACKOFF,
    REASON_ERROR,
    REASON_IMAGE_PULL_BACKOFF,
    RestartPolicy,
)
from repro.measure.recovery import run_recovery
from repro.sim.faults import FaultPlan, FaultPoint, FaultSpec
from repro.sim.rng import RngStreams


# -- policy shape ------------------------------------------------------------


def test_base_delay_geometric_then_capped():
    policy = BackoffPolicy(initial_s=0.5, factor=2.0, max_s=10.0)
    assert [policy.base_delay(n) for n in range(5)] == [0.5, 1.0, 2.0, 4.0, 8.0]
    assert policy.base_delay(5) == 10.0  # 16 → capped
    assert policy.base_delay(50) == 10.0


def test_policy_validation():
    with pytest.raises(SimulationError):
        BackoffPolicy(initial_s=0.0)
    with pytest.raises(SimulationError):
        BackoffPolicy(max_s=-1.0)
    with pytest.raises(SimulationError):
        BackoffPolicy(factor=0.5)
    with pytest.raises(SimulationError):
        BackoffPolicy().base_delay(-1)


def test_tracker_deterministic_per_seed_and_key():
    policy = BackoffPolicy()

    def schedule(seed, key):
        tracker = BackoffTracker(policy, RngStreams(seed), key)
        return [tracker.next_delay() for _ in range(6)]

    assert schedule(3, "pod-a") == schedule(3, "pod-a")
    assert schedule(3, "pod-a") != schedule(4, "pod-a")
    assert schedule(3, "pod-a") != schedule(3, "pod-b")
    # Jitter rides on top of the geometric base, never below it.
    for n, delay in enumerate(schedule(3, "pod-a")):
        assert delay >= policy.base_delay(n)


def test_tracker_reset_restarts_schedule():
    tracker = BackoffTracker(BackoffPolicy(jitter_s=0.0), RngStreams(1), "p")
    first = [tracker.next_delay() for _ in range(3)]
    tracker.reset()
    assert [tracker.next_delay() for _ in range(3)] == first


# -- restart policies under injected faults ----------------------------------


def _one_pod_cluster(plan, seed=7):
    cluster = build_cluster(seed=seed, fault_plan=plan)
    return cluster


def _sync_one(cluster, restart_policy):
    pod = cluster.make_pod("crun-wamr", restart_policy=restart_policy)
    node = cluster.nodes[pod.node_name]
    cluster.kernel.run_all([node.kubelet.sync_pod(pod)])
    return pod


def test_transient_compile_fault_retried_under_always():
    plan = FaultPlan(
        [FaultSpec(FaultPoint.ENGINE_COMPILE, probability=1.0, max_occurrences=1)]
    )
    cluster = _one_pod_cluster(plan)
    pod = _sync_one(cluster, RestartPolicy.ALWAYS)
    assert pod.phase is PodPhase.RUNNING
    assert pod.restart_count == 1
    assert pod.backoff_until is None
    spans = cluster.node.env.tracer.by_category("recovery.backoff")
    assert [s.attr("reason") for s in spans] == [REASON_CRASH_LOOP_BACKOFF]


def test_transient_compile_fault_terminal_under_never():
    plan = FaultPlan(
        [FaultSpec(FaultPoint.ENGINE_COMPILE, probability=1.0, max_occurrences=1)]
    )
    cluster = _one_pod_cluster(plan)
    pod = _sync_one(cluster, RestartPolicy.NEVER)
    assert pod.phase is PodPhase.FAILED
    assert pod.reason == REASON_ERROR
    assert pod.restart_count == 0
    assert cluster.node.env.tracer.by_category("recovery.backoff") == []


def test_image_pull_fault_retried_even_under_never():
    """The kubelet always retries pulls: ImagePullBackOff, not failure."""
    plan = FaultPlan(
        [FaultSpec(FaultPoint.IMAGE_PULL, probability=1.0, max_occurrences=2)]
    )
    cluster = _one_pod_cluster(plan)
    pod = _sync_one(cluster, RestartPolicy.NEVER)
    assert pod.phase is PodPhase.RUNNING
    assert pod.restart_count == 2
    spans = cluster.node.env.tracer.by_category("recovery.backoff")
    assert [s.attr("reason") for s in spans] == [REASON_IMAGE_PULL_BACKOFF] * 2
    # Consecutive failures back off geometrically (jitter rides on top).
    assert spans[1].duration > spans[0].duration


def test_retry_budget_caps_crash_looping():
    plan = FaultPlan([FaultSpec(FaultPoint.ENGINE_COMPILE, probability=1.0)])
    cluster = _one_pod_cluster(plan)
    cluster.node.kubelet.max_sync_retries = 3
    pod = _sync_one(cluster, RestartPolicy.ALWAYS)
    assert pod.phase is PodPhase.FAILED
    assert pod.reason == REASON_ERROR
    assert pod.restart_count == 3


# -- whole-experiment determinism --------------------------------------------


def _small_recovery(seed):
    return run_recovery(config="crun-wamr", count=12, seed=seed)


def test_same_seed_reproduces_recovery_timeline():
    a = _small_recovery(5)
    b = _small_recovery(5)
    assert a.converged and b.converged
    assert a.timeline == b.timeline
    assert a.backoff_events == b.backoff_events
    assert a.faults_by_point == b.faults_by_point
    assert a.time_to_all_running == b.time_to_all_running


def test_different_seed_differs():
    a = _small_recovery(5)
    c = _small_recovery(6)
    assert c.converged
    assert (
        a.timeline != c.timeline
        or a.backoff_events != c.backoff_events
        or a.faults_by_point != c.faults_by_point
    )
