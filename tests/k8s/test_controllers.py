"""Deployment controller: reconciliation, scaling, teardown."""

import pytest

from repro.errors import KubernetesError
from repro.k8s import ContainerSpec, PodPhase, PodSpec
from repro.k8s.cluster import build_cluster
from repro.workloads.images import WASM_IMAGE_REF


def template(config: str = "crun-wamr") -> PodSpec:
    return PodSpec(
        containers=[ContainerSpec(name="app", image=WASM_IMAGE_REF)],
        runtime_class_name=config,
    )


@pytest.fixture()
def cluster_with_deployment(cluster):
    cluster.deployments.create("svc", template(), replicas=4)
    return cluster


class TestReconciliation:
    def test_initial_rollout(self, cluster_with_deployment):
        status = cluster_with_deployment.reconcile_and_wait("svc")
        assert status == {"desired": 4, "current": 4, "ready": 4}
        assert len(cluster_with_deployment.node.containerd.pods) == 4

    def test_reconcile_is_idempotent(self, cluster_with_deployment):
        cluster_with_deployment.reconcile_and_wait("svc")
        pods_before = set(cluster_with_deployment.api.pods)
        status = cluster_with_deployment.reconcile_and_wait("svc")
        assert status["ready"] == 4
        assert set(cluster_with_deployment.api.pods) == pods_before

    def test_scale_up(self, cluster_with_deployment):
        cluster_with_deployment.reconcile_and_wait("svc")
        cluster_with_deployment.deployments.scale("svc", 7)
        status = cluster_with_deployment.reconcile_and_wait("svc")
        assert status == {"desired": 7, "current": 7, "ready": 7}

    def test_scale_down_releases_node_memory(self, cluster_with_deployment):
        c = cluster_with_deployment
        c.reconcile_and_wait("svc")
        ws_at_4 = c.node.env.memory.node_working_set()
        c.deployments.scale("svc", 1)
        status = c.reconcile_and_wait("svc")
        assert status["ready"] == 1
        assert c.node.env.memory.node_working_set() < ws_at_4
        assert len(c.node.containerd.pods) == 1

    def test_scale_to_zero(self, cluster_with_deployment):
        c = cluster_with_deployment
        c.reconcile_and_wait("svc")
        c.deployments.scale("svc", 0)
        status = c.reconcile_and_wait("svc")
        assert status == {"desired": 0, "current": 0, "ready": 0}

    def test_replaces_externally_deleted_pods(self, cluster_with_deployment):
        c = cluster_with_deployment
        c.reconcile_and_wait("svc")
        victim_uid = c.deployments.deployments["svc"].pod_uids[0]
        victim = c.api.pods[victim_uid]
        c.nodes[victim.node_name].kubelet.teardown_pod(victim)
        status = c.reconcile_and_wait("svc")
        assert status["ready"] == 4
        assert victim_uid not in c.api.pods


class TestControllerEdges:
    def test_duplicate_deployment(self, cluster_with_deployment):
        with pytest.raises(KubernetesError, match="already exists"):
            cluster_with_deployment.deployments.create("svc", template())

    def test_unknown_deployment(self, cluster):
        with pytest.raises(KubernetesError, match="no deployment"):
            cluster.deployments.reconcile("ghost")

    def test_negative_replicas(self, cluster_with_deployment):
        with pytest.raises(KubernetesError, match=">= 0"):
            cluster_with_deployment.deployments.scale("svc", -1)

    def test_delete_returns_pods_for_teardown(self, cluster_with_deployment):
        c = cluster_with_deployment
        c.reconcile_and_wait("svc")
        pods = c.deployments.delete("svc")
        assert len(pods) == 4
        c.teardown(pods)
        assert len(c.node.containerd.pods) == 0

    def test_mixed_deployments_share_node(self, cluster):
        cluster.deployments.create("wasm", template("crun-wamr"), replicas=3)
        cluster.deployments.create("legacy", template("crun-python"), replicas=2)
        # Python template needs the python image.
        cluster.deployments.deployments["legacy"].template.containers[0].image = (
            "registry.local/microservice:python"
        )
        assert cluster.reconcile_and_wait("wasm")["ready"] == 3
        assert cluster.reconcile_and_wait("legacy")["ready"] == 2
        assert len(cluster.node.containerd.pods) == 5
