"""MetricsServer.scrape: empty node, steady state, and post-eviction."""

from repro.sim.memory import MIB


class TestScrape:
    def test_empty_node_scrapes_empty(self, cluster):
        assert cluster.node.metrics.scrape() == []
        assert cluster.node.metrics.total_pod_bytes() == 0

    def test_scrape_covers_every_running_pod(self, cluster):
        pods = cluster.deploy_and_wait("crun-wamr", 3)
        samples = cluster.node.metrics.scrape()
        assert {m.pod_uid for m in samples} == {p.uid for p in pods}
        for m in samples:
            assert 0 < m.working_set_bytes < 64 * MIB

    def test_eviction_drops_pod_from_scrape(self, cluster):
        pods = cluster.deploy_and_wait("crun-wamr", 3)
        before = cluster.node.metrics.pod_working_sets()
        total_before = cluster.node.metrics.total_pod_bytes()

        victim = pods[-1]
        cluster.node.kubelet.evict_pod(victim)

        after = cluster.node.metrics.pod_working_sets()
        assert victim.uid in before and victim.uid not in after
        assert set(after) == {p.uid for p in pods[:-1]}
        # The freed working set comes off the node total (not a stale cache).
        assert cluster.node.metrics.total_pod_bytes() == (
            total_before - before[victim.uid]
        )

    def test_scrape_is_stable_between_events(self, cluster):
        cluster.deploy_and_wait("crun-wamr", 2)
        assert cluster.node.metrics.pod_working_sets() == (
            cluster.node.metrics.pod_working_sets()
        )
