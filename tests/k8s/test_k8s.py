"""Kubernetes substrate: API server, scheduler, kubelet, metrics, cluster."""

import pytest

from repro.errors import KubernetesError, SchedulingError
from repro.k8s import (
    APIServer,
    ContainerSpec,
    NodeInfo,
    PodPhase,
    PodSpec,
    RuntimeClass,
    Scheduler,
)
from repro.k8s.cluster import build_cluster
from repro.sim.memory import MIB
from repro.workloads.images import PYTHON_IMAGE_REF, WASM_IMAGE_REF


def pod_spec(runtime: str = "crun-wamr", image: str = WASM_IMAGE_REF) -> PodSpec:
    return PodSpec(
        containers=[ContainerSpec(name="app", image=image)],
        runtime_class_name=runtime,
    )


class TestAPIServer:
    def test_create_pod_assigns_uid(self):
        api = APIServer()
        api.register_runtime_class(RuntimeClass("crun-wamr", "crun-wamr"))
        p1 = api.create_pod("a", pod_spec())
        p2 = api.create_pod("b", pod_spec())
        assert p1.uid != p2.uid
        assert p1.phase is PodPhase.PENDING

    def test_unknown_runtime_class_rejected(self):
        api = APIServer()
        with pytest.raises(KubernetesError, match="runtimeClassName"):
            api.create_pod("a", pod_spec("missing"))

    def test_watchers_notified(self):
        api = APIServer()
        api.register_runtime_class(RuntimeClass("crun-wamr", "crun-wamr"))
        seen = []
        api.watch_pods(lambda p: seen.append(p.phase))
        pod = api.create_pod("a", pod_spec())
        api.set_phase(pod, PodPhase.RUNNING)
        assert seen[-1] is PodPhase.RUNNING

    def test_bind_updates_node(self):
        api = APIServer()
        api.register_runtime_class(RuntimeClass("crun-wamr", "crun-wamr"))
        api.register_node(NodeInfo(name="n0", runtime_handlers=["crun-wamr"]))
        pod = api.create_pod("a", pod_spec())
        api.bind_pod(pod, "n0")
        assert api.nodes["n0"].pod_count == 1
        api.delete_pod(pod)
        assert api.nodes["n0"].pod_count == 0

    def test_duplicate_node_rejected(self):
        api = APIServer()
        api.register_node(NodeInfo(name="n0"))
        with pytest.raises(KubernetesError, match="already registered"):
            api.register_node(NodeInfo(name="n0"))


class TestScheduler:
    def _api(self, *nodes: NodeInfo) -> APIServer:
        api = APIServer()
        api.register_runtime_class(RuntimeClass("crun-wamr", "crun-wamr"))
        for n in nodes:
            api.register_node(n)
        return api

    def test_schedules_on_create(self):
        api = self._api(NodeInfo(name="n0", runtime_handlers=["crun-wamr"]))
        Scheduler(api)
        pod = api.create_pod("a", pod_spec())
        assert pod.node_name == "n0"

    def test_respects_max_pods(self):
        api = self._api(NodeInfo(name="n0", max_pods=1, runtime_handlers=["crun-wamr"]))
        Scheduler(api)
        api.create_pod("a", pod_spec())
        p2 = api.create_pod("b", pod_spec())
        assert p2.node_name is None  # stays pending

    def test_500_pods_per_node_config(self):
        cluster = build_cluster()
        assert cluster.node.info.max_pods == 500

    def test_respects_runtime_handler_support(self):
        api = self._api(NodeInfo(name="n0", runtime_handlers=["runc-python"]))
        scheduler = Scheduler(api)
        pod = api.create_pod("a", pod_spec("crun-wamr"))
        assert pod.node_name is None
        with pytest.raises(SchedulingError):
            scheduler.schedule(pod)

    def test_spreads_by_least_pods(self):
        api = self._api(
            NodeInfo(name="n0", runtime_handlers=["crun-wamr"]),
            NodeInfo(name="n1", runtime_handlers=["crun-wamr"]),
        )
        Scheduler(api)
        placements = [api.create_pod(f"p{i}", pod_spec()).node_name for i in range(4)]
        assert placements.count("n0") == 2 and placements.count("n1") == 2

    def test_node_selector(self):
        api = self._api(
            NodeInfo(name="n0", runtime_handlers=["crun-wamr"], labels={"zone": "a"}),
            NodeInfo(name="n1", runtime_handlers=["crun-wamr"], labels={"zone": "b"}),
        )
        Scheduler(api)
        spec = pod_spec()
        spec.node_selector = {"zone": "b"}
        pod = api.create_pod("p", spec)
        assert pod.node_name == "n1"

    def test_sweep_retries_pending(self):
        api = self._api(NodeInfo(name="n0", max_pods=1, runtime_handlers=["crun-wamr"]))
        scheduler = Scheduler(api)
        p1 = api.create_pod("a", pod_spec())
        p2 = api.create_pod("b", pod_spec())
        assert p2.node_name is None
        api.delete_pod(p1)
        assert scheduler.sweep() == 1
        assert p2.node_name == "n0"


class TestKubeletAndCluster:
    def test_deploy_single_pod(self, cluster):
        pods = cluster.deploy_and_wait("crun-wamr", 1)
        assert pods[0].phase is PodPhase.RUNNING
        assert pods[0].exec_started_at is not None
        containers = cluster.node.kubelet.pod_containers[pods[0].uid]
        assert b"ready" in containers[0].stdout

    def test_pod_without_runtime_class_fails(self, cluster):
        spec = PodSpec(containers=[ContainerSpec(name="a", image=WASM_IMAGE_REF)])
        pod = cluster.api.create_pod("bare", spec)
        cluster.scheduler.sweep()
        with pytest.raises(KubernetesError, match="RuntimeClass"):
            cluster.kernel.run_all([cluster.node.kubelet.sync_pod(pod)])

    def test_wasm_image_under_runc_fails_pod(self, cluster):
        pod = cluster.make_pod("runc-python", image=WASM_IMAGE_REF)
        cluster.kernel.run_all([cluster.node.kubelet.sync_pod(pod)])
        assert pod.phase is PodPhase.FAILED
        assert "wasm" in pod.status_message

    def test_metrics_server_reports_per_pod(self, cluster):
        pods = cluster.deploy_and_wait("crun-wamr", 3)
        metrics = cluster.node.metrics.pod_working_sets()
        assert len(metrics) == 3
        assert all(v > 2 * MIB for v in metrics.values())

    def test_teardown_restores_node(self, cluster):
        env = cluster.node.env
        before_ws = env.memory.node_working_set()
        before_kernel = env.memory.kernel_bytes
        pods = cluster.deploy_and_wait("shim-wasmedge", 2)
        cluster.teardown(pods)
        assert env.memory.node_working_set() == before_ws
        assert env.memory.kernel_bytes == before_kernel
        assert len(cluster.api.pods) == 0

    def test_hybrid_wasm_and_python_on_one_node(self, cluster):
        """§III-C: pods can run traditional and Wasm containers side by side."""
        wasm_pods = cluster.deploy_and_wait("crun-wamr", 2)
        py_pods = cluster.deploy_and_wait("crun-python", 2)
        assert all(p.phase is PodPhase.RUNNING for p in wasm_pods + py_pods)
        metrics = cluster.node.metrics.pod_working_sets()
        wasm_ws = [metrics[p.uid] for p in wasm_pods]
        py_ws = [metrics[p.uid] for p in py_pods]
        # Mean comparison: the first wasm pod carries the first-touch
        # charge for the shared crun/libiwasm text.
        assert sum(wasm_ws) / 2 < sum(py_ws) / 2

    def test_deterministic_given_seed(self):
        a = build_cluster(seed=3)
        b = build_cluster(seed=3)
        pods_a = a.deploy_and_wait("crun-wamr", 5)
        pods_b = b.deploy_and_wait("crun-wamr", 5)
        t_a = max(p.exec_started_at for p in pods_a)
        t_b = max(p.exec_started_at for p in pods_b)
        assert t_a == t_b
        assert (
            a.node.metrics.total_pod_bytes() == b.node.metrics.total_pod_bytes()
        )

    def test_different_seed_changes_jitter(self):
        a = build_cluster(seed=3)
        b = build_cluster(seed=4)
        t_a = max(p.exec_started_at for p in a.deploy_and_wait("crun-wamr", 5))
        t_b = max(p.exec_started_at for p in b.deploy_and_wait("crun-wamr", 5))
        assert t_a != t_b
