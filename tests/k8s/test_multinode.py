"""Multi-node clusters (beyond the paper's single-node testbed)."""

import pytest

from repro.k8s import PodPhase
from repro.k8s.cluster import build_cluster
from repro.sim.memory import MIB


class TestMultiNode:
    def test_scheduler_spreads_evenly(self):
        cluster = build_cluster(seed=2, node_count=3)
        pods = cluster.deploy_and_wait("crun-wamr", 30)
        placement = {}
        for pod in pods:
            placement[pod.node_name] = placement.get(pod.node_name, 0) + 1
        assert placement == {"node-0": 10, "node-1": 10, "node-2": 10}

    def test_node_property_requires_single_node(self):
        from repro.errors import KubernetesError

        cluster = build_cluster(seed=2, node_count=2)
        with pytest.raises(KubernetesError, match="multiple nodes"):
            _ = cluster.node

    def test_memory_isolated_per_node(self):
        cluster = build_cluster(seed=2, node_count=2)
        pods = cluster.deploy_and_wait("crun-wasmer", 2)  # one per node
        by_node = {p.node_name: p for p in pods}
        for name, pod in by_node.items():
            node = cluster.nodes[name]
            ws = node.metrics.pod_working_sets()
            assert set(ws) == {pod.uid}
            assert ws[pod.uid] > 10 * MIB

    def test_capacity_spill_over(self):
        cluster = build_cluster(seed=2, node_count=2, max_pods=5)
        pods = cluster.deploy_and_wait("crun-wamr", 10)
        assert all(p.phase is PodPhase.RUNNING for p in pods)
        counts = [cluster.nodes[n].info.pod_count for n in sorted(cluster.nodes)]
        assert counts == [5, 5]

    def test_over_capacity_stays_pending(self):
        from repro.errors import KubernetesError

        cluster = build_cluster(seed=2, node_count=1, max_pods=3)
        with pytest.raises(KubernetesError, match="not scheduled"):
            cluster.deploy_and_wait("crun-wamr", 4)

    def test_parallel_nodes_share_simulated_clock(self):
        cluster = build_cluster(seed=2, node_count=2)
        pods = cluster.deploy_and_wait("crun-wamr", 8)
        # Both nodes progress on one kernel: the makespan matches the
        # slowest node's pods, and both nodes host running containers.
        assert all(p.running_at is not None for p in pods)
        for node in cluster.nodes.values():
            assert len(node.containerd.pods) == 4
