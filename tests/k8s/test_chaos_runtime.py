"""Full-lifecycle chaos at the kubelet: runtime (post-start) faults.

Startup faults (image pull, compile, instantiate) are covered by
test_backoff.py. This suite exercises the PR's *runtime* fault points —
guest traps, fuel exhaustion, WASI syscall failures — plus liveness /
readiness probes, admission load-shedding, and metrics-scrape loss:
every way a pod that already left the startup path can still crash, and
the recovery machinery that walks it back to Running (or terminally to
CrashLoopBackOff/FAILED).
"""

import pytest

from repro import obs
from repro.errors import AdmissionRejected, FaultInjected
from repro.k8s.cluster import build_cluster
from repro.k8s.kubelet import ProbeConfig
from repro.k8s.objects import (
    PodPhase,
    REASON_CRASH_LOOP_BACKOFF,
    REASON_ERROR,
    REASON_MEMORY_PRESSURE,
    RestartPolicy,
)
from repro.sim.faults import FaultPlan, FaultPoint, FaultSpec


def _fired_total(point):
    fam = obs.default_registry().get("repro_faults_fired_total")
    if fam is None:
        return 0.0
    return sum(
        child.value for labels, child in fam.samples() if labels[0] == point
    )


def _one_pod_cluster(plan, seed=7, **kwargs):
    return build_cluster(seed=seed, fault_plan=plan, **kwargs)


def _sync_one(cluster, restart_policy=RestartPolicy.ALWAYS):
    pod = cluster.make_pod("crun-wamr", restart_policy=restart_policy)
    node = cluster.nodes[pod.node_name]
    cluster.kernel.run_all([node.kubelet.sync_pod(pod)])
    return pod


# -- guest runtime faults → CrashLoopBackOff ---------------------------------


class TestRuntimeCrashLoop:
    def test_guest_trap_walks_backoff_to_running(self):
        plan = FaultPlan(
            [FaultSpec(FaultPoint.GUEST_TRAP, probability=1.0, max_occurrences=2)]
        )
        cluster = _one_pod_cluster(plan)
        pod = _sync_one(cluster)
        assert pod.phase is PodPhase.RUNNING
        assert pod.restart_count == 2
        assert pod.backoff_until is None
        spans = cluster.node.env.tracer.by_category("recovery.backoff")
        assert [s.attr("reason") for s in spans] == [REASON_CRASH_LOOP_BACKOFF] * 2
        # Capped exponential: the second wait is strictly longer.
        assert spans[1].duration > spans[0].duration

    def test_guest_exhaust_is_transient_too(self):
        plan = FaultPlan(
            [FaultSpec(FaultPoint.GUEST_EXHAUST, probability=1.0, max_occurrences=1)]
        )
        cluster = _one_pod_cluster(plan)
        pod = _sync_one(cluster)
        assert pod.phase is PodPhase.RUNNING
        assert pod.restart_count == 1

    def test_wasi_syscall_fault_surfaces_as_pod_crash(self):
        plan = FaultPlan(
            [FaultSpec(FaultPoint.WASI_SYSCALL, probability=1.0, max_occurrences=1)]
        )
        cluster = _one_pod_cluster(plan)
        before = _fired_total("wasi.syscall")
        pod = _sync_one(cluster)
        assert pod.phase is PodPhase.RUNNING
        assert pod.restart_count == 1
        spans = cluster.node.env.tracer.by_category("recovery.backoff")
        assert [s.attr("reason") for s in spans] == [REASON_CRASH_LOOP_BACKOFF]
        assert _fired_total("wasi.syscall") == before + 1

    def test_unbounded_runtime_faults_exhaust_retry_budget(self):
        plan = FaultPlan([FaultSpec(FaultPoint.GUEST_TRAP, probability=1.0)])
        cluster = _one_pod_cluster(plan)
        cluster.node.kubelet.max_sync_retries = 3
        pod = _sync_one(cluster)
        assert pod.phase is PodPhase.FAILED
        assert pod.reason == REASON_ERROR
        assert pod.restart_count == 3

    def test_runtime_fault_never_restarts_under_policy_never(self):
        plan = FaultPlan(
            [FaultSpec(FaultPoint.GUEST_TRAP, probability=1.0, max_occurrences=1)]
        )
        cluster = _one_pod_cluster(plan)
        pod = _sync_one(cluster, RestartPolicy.NEVER)
        assert pod.phase is PodPhase.FAILED
        assert pod.restart_count == 0

    def test_schedule_deterministic_per_seed(self):
        def run(seed):
            plan = FaultPlan(
                [
                    FaultSpec(
                        FaultPoint.GUEST_TRAP, probability=1.0, max_occurrences=2
                    )
                ]
            )
            cluster = _one_pod_cluster(plan, seed=seed)
            pod = _sync_one(cluster)
            spans = cluster.node.env.tracer.by_category("recovery.backoff")
            return (pod.restart_count, [(s.start, s.duration) for s in spans])

        assert run(11) == run(11)
        assert run(11) != run(12)


# -- probes -------------------------------------------------------------------


class TestProbes:
    def test_disabled_probes_add_no_events(self):
        plain = build_cluster(seed=7)
        pod = _sync_one(plain)
        assert pod.phase is PodPhase.RUNNING and pod.ready
        assert plain.node.env.tracer.by_category("recovery.backoff") == []

    def test_clean_pod_passes_probe_window(self):
        cluster = build_cluster(seed=7, probes=ProbeConfig(enabled=True))
        pod = _sync_one(cluster)
        assert pod.phase is PodPhase.RUNNING
        assert pod.ready
        assert pod.restart_count == 0

    def test_liveness_threshold_restarts_pod(self):
        plan = FaultPlan(
            [
                FaultSpec(
                    FaultPoint.PROBE_LIVENESS, probability=1.0, max_occurrences=2
                )
            ]
        )
        cluster = _one_pod_cluster(plan, probes=ProbeConfig(enabled=True))
        pod = _sync_one(cluster)
        # Two consecutive failures cross the default threshold, the pod is
        # restarted once, and the budget-exhausted retry comes up clean.
        assert pod.phase is PodPhase.RUNNING
        assert pod.ready
        assert pod.restart_count == 1
        spans = cluster.node.env.tracer.by_category("recovery.backoff")
        assert [s.attr("reason") for s in spans] == [REASON_CRASH_LOOP_BACKOFF]

    def test_readiness_blip_recovers_without_restart(self):
        plan = FaultPlan(
            [
                FaultSpec(
                    FaultPoint.PROBE_READINESS, probability=1.0, max_occurrences=2
                )
            ]
        )
        cluster = _one_pod_cluster(plan, probes=ProbeConfig(enabled=True))
        pod = _sync_one(cluster)
        assert pod.phase is PodPhase.RUNNING
        assert pod.ready  # recovered inside the window
        assert pod.restart_count == 0

    def test_persistent_readiness_failure_restarts(self):
        # Enough budget to fail every probe round AND the whole recovery
        # loop on the first attempt; the retry then runs the budget out.
        plan = FaultPlan(
            [
                FaultSpec(
                    FaultPoint.PROBE_READINESS, probability=1.0, max_occurrences=6
                )
            ]
        )
        cluster = _one_pod_cluster(plan, probes=ProbeConfig(enabled=True))
        pod = _sync_one(cluster)
        assert pod.phase is PodPhase.RUNNING
        assert pod.ready
        assert pod.restart_count == 1

    def test_not_ready_pods_excluded_from_deployment_ready(self):
        cluster = build_cluster(seed=7)
        pods = cluster.deploy_and_wait("crun-wamr", 3)
        cluster.deployments.create(
            "d", cluster.pod_template("crun-wamr"), replicas=0
        )
        dep = cluster.deployments.deployments["d"]
        dep.replicas = 3
        dep.pod_uids = [p.uid for p in pods]
        assert cluster.deployments.status("d")["ready"] == 3
        pods[0].ready = False
        assert cluster.deployments.status("d")["ready"] == 2


# -- admission load-shedding --------------------------------------------------


class TestAdmissionShedding:
    def test_shed_admission_backs_off_then_admits(self, monkeypatch):
        cluster = build_cluster(seed=7, admission_shedding=True)
        kubelet = cluster.node.kubelet
        pressured = {"calls": 0}
        real = kubelet.under_memory_pressure

        def fake():
            pressured["calls"] += 1
            return True if pressured["calls"] == 1 else real()

        monkeypatch.setattr(kubelet, "under_memory_pressure", fake)
        pod = _sync_one(cluster)
        assert pod.phase is PodPhase.RUNNING
        assert pod.restart_count == 1
        spans = cluster.node.env.tracer.by_category("recovery.backoff")
        assert [s.attr("reason") for s in spans] == [REASON_MEMORY_PRESSURE]
        # Shedding never evicts a running pod to make room.
        assert cluster.node.env.tracer.by_category("recovery.eviction") == []

    def test_classification_is_memory_pressure(self):
        cluster = build_cluster(seed=7, admission_shedding=True)
        pod = cluster.make_pod("crun-wamr")
        action = cluster.node.kubelet._failure_action(
            pod, AdmissionRejected("shed")
        )
        assert action == REASON_MEMORY_PRESSURE

    def test_disabled_by_default(self):
        cluster = build_cluster(seed=7)
        assert cluster.node.kubelet.admission_shedding is False


# -- metrics-server scrape loss -----------------------------------------------


class TestScrapeLoss:
    def test_lost_scrape_serves_stale_data(self):
        plan = FaultPlan(
            [
                FaultSpec(
                    FaultPoint.METRICS_SCRAPE, probability=1.0, max_occurrences=1
                )
            ]
        )
        cluster = _one_pod_cluster(plan)
        cluster.deploy_and_wait("crun-wamr", 2)
        before = _fired_total("metrics.scrape")
        # First scrape is lost: the server answers from its (empty) cache.
        assert cluster.node.metrics.scrape() == []
        assert _fired_total("metrics.scrape") == before + 1
        # Budget spent: the next scrape is live, and repeatable.
        live = cluster.node.metrics.scrape()
        assert len(live) == 2
        assert cluster.node.metrics.scrape() == live

    def test_stale_answer_is_previous_live_result(self):
        plan = FaultPlan(
            [
                FaultSpec(
                    FaultPoint.METRICS_SCRAPE,
                    probability=0.0,  # armed but never fires on its own
                )
            ]
        )
        cluster = _one_pod_cluster(plan)
        cluster.deploy_and_wait("crun-wamr", 2)
        live = cluster.node.metrics.scrape()
        assert len(live) == 2
        # Force a loss by swapping in an always-fire plan mid-flight.
        cluster.node.metrics._faults = FaultPlan(
            [FaultSpec(FaultPoint.METRICS_SCRAPE, probability=1.0)]
        )
        assert cluster.node.metrics.scrape() == live


# -- FaultInjected plumbing ---------------------------------------------------


class TestFaultInjectedRouting:
    def test_probe_fault_carries_structured_context(self):
        plan = FaultPlan(
            [FaultSpec(FaultPoint.PROBE_LIVENESS, probability=1.0)]
        )
        cluster = _one_pod_cluster(plan, probes=ProbeConfig(enabled=True))
        cluster.node.kubelet.max_sync_retries = 1
        pod = _sync_one(cluster)
        assert pod.phase is PodPhase.FAILED
        assert "liveness" in pod.status_message
