"""Zygote warm-start end-to-end: deployment experiments on the testbed.

Asserts the three properties the PR promises: the zygote configuration
converges functionally, beats cold crun-wamr on both startup and memory,
and — the acceptance criterion — leaves every non-zygote measurement
byte-identical whether ``REPRO_ZYGOTE`` is on or off.
"""

import pytest

from repro.measure.experiment import ExperimentRunner

DENSITY = 15


@pytest.fixture()
def runner():
    return ExperimentRunner(seed=23)


class TestZygoteDeployment:
    def test_runs_to_ready(self, runner, monkeypatch):
        monkeypatch.setenv("REPRO_ZYGOTE", "on")
        m = runner.run("crun-wamr-zygote", DENSITY)
        assert m.ready_fraction == 1.0
        assert set(m.exit_codes) == {0}

    def test_leaner_than_cold_crun_wamr(self, runner, monkeypatch):
        monkeypatch.setenv("REPRO_ZYGOTE", "on")
        cold = runner.run("crun-wamr", DENSITY)
        warm = runner.run("crun-wamr-zygote", DENSITY)
        # The COW snapshot replaces most per-container private memory.
        assert warm.metrics_mib < 0.7 * cold.metrics_mib
        assert warm.free_mib < cold.free_mib

    def test_faster_at_density(self, runner, monkeypatch):
        # The startup win comes from the serialized-phase growth term, so
        # measure at a density where it dominates.
        monkeypatch.setenv("REPRO_ZYGOTE", "on")
        cold = runner.run("crun-wamr", 100)
        warm = runner.run("crun-wamr-zygote", 100)
        assert warm.startup_seconds < cold.startup_seconds

    def test_opt_out_restores_cold_behaviour(self, runner, monkeypatch):
        # REPRO_ZYGOTE=off: the zygote config degrades to plain crun-wamr
        # constants (same profile, same memory model). Jitter streams are
        # keyed by container id (config-prefixed), so compare within the
        # jitter envelope rather than exactly.
        monkeypatch.setenv("REPRO_ZYGOTE", "off")
        plain = runner.run("crun-wamr", DENSITY)
        off = runner.run("crun-wamr-zygote", DENSITY)
        assert off.metrics_mib == pytest.approx(plain.metrics_mib, rel=0.05)
        assert off.startup_seconds == pytest.approx(plain.startup_seconds, rel=0.05)


class TestByteIdenticalAcceptance:
    def test_non_zygote_configs_unaffected_by_toggle(self, monkeypatch):
        """Figure/summary inputs must not move when the feature is on."""
        monkeypatch.setenv("REPRO_ZYGOTE", "on")
        with_zygote = ExperimentRunner(seed=7).run("crun-wamr", DENSITY)
        monkeypatch.setenv("REPRO_ZYGOTE", "off")
        without = ExperimentRunner(seed=7).run("crun-wamr", DENSITY)
        assert with_zygote == without  # full dataclass equality

    def test_python_baseline_unaffected_by_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_ZYGOTE", "on")
        with_zygote = ExperimentRunner(seed=7).run("runc-python", DENSITY)
        monkeypatch.setenv("REPRO_ZYGOTE", "off")
        without = ExperimentRunner(seed=7).run("runc-python", DENSITY)
        assert with_zygote == without
