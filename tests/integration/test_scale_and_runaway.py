"""Scale canary (the §III-C 500-pods-per-node extension) + runaway guests."""

import pytest

from repro.errors import KubernetesError
from repro.k8s import PodPhase
from repro.k8s.cluster import build_cluster
from repro.oci.annotations import WASM_VARIANT_ANNOTATION, WASM_VARIANT_COMPAT
from repro.oci.image import Image, ImageConfig, Layer
from repro.wasm import assemble_wat


class TestFiveHundredPods:
    def test_full_node_of_wamr_pods(self):
        """§III-C: 'now supporting up to 500 pods per node'."""
        cluster = build_cluster(seed=6)
        pods = cluster.deploy_and_wait("crun-wamr", 500)
        assert all(p.phase is PodPhase.RUNNING for p in pods)
        assert cluster.node.info.pod_count == 500
        metrics = cluster.node.metrics.pod_working_sets()
        assert len(metrics) == 500
        # Memory scales linearly, not superlinearly: mean per pod stays
        # in the same band as smaller deployments.
        mean = sum(metrics.values()) / len(metrics) / (1024 * 1024)
        assert 3.5 < mean < 4.5

    def test_pod_501_stays_pending(self):
        cluster = build_cluster(seed=6)
        cluster.deploy_and_wait("crun-wamr", 500)
        extra = cluster.make_pod("crun-wamr")
        assert extra.node_name is None  # no capacity anywhere


class TestRunawayGuest:
    def _spin_image(self, cluster) -> str:
        spin = assemble_wat(
            '(module (func (export "_start") (loop $l (br $l))))'
        )
        image = Image(
            reference="registry.local/spin:latest",
            config=ImageConfig(
                entrypoint=["/app/spin.wasm"],
                annotations={WASM_VARIANT_ANNOTATION: WASM_VARIANT_COMPAT},
            ),
            layers=[Layer.from_files({"app/spin.wasm": spin})],
        )
        cluster.node.env.images.push(image)
        return image.reference

    def test_infinite_loop_fails_pod_not_harness(self):
        cluster = build_cluster(seed=6)
        ref = self._spin_image(cluster)
        pod = cluster.make_pod("crun-wamr", image=ref)
        cluster.kernel.run_all([cluster.node.kubelet.sync_pod(pod)])
        assert pod.phase is PodPhase.FAILED
        assert "fuel" in pod.status_message or "trap" in pod.status_message

    def test_runaway_under_runwasi_too(self):
        cluster = build_cluster(seed=6)
        ref = self._spin_image(cluster)
        pod = cluster.make_pod("shim-wasmer", image=ref)
        cluster.kernel.run_all([cluster.node.kubelet.sync_pod(pod)])
        assert pod.phase is PodPhase.FAILED

    def test_node_remains_usable_after_runaway(self):
        cluster = build_cluster(seed=6)
        ref = self._spin_image(cluster)
        bad = cluster.make_pod("crun-wamr", image=ref)
        cluster.kernel.run_all([cluster.node.kubelet.sync_pod(bad)])
        good = cluster.deploy_and_wait("crun-wamr", 3)
        assert all(p.phase is PodPhase.RUNNING for p in good)
