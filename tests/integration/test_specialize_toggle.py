"""Specialization-tier toggle end-to-end: figure inputs must not move.

The acceptance criterion for the specialization tier is that it changes
*speed only*: every measurement feeding the paper's figures — working
sets, free-memory deltas, startup makespans, per-phase traces — is
byte-identical whether ``REPRO_SPECIALIZE`` is off or on. This holds
because specialized code preserves exact instruction accounting (weight
sums equal ``source_instrs``) and the metered engine path debits fuel
through the same totals.

The measurement caches (in-process lru + on-disk) are defeated so both
sides of every comparison run the full simulation.
"""

import pytest

from repro.engines.cache import reset_caches
from repro.measure.experiment import ExperimentRunner, _cached_measurement, measure
from repro.measure.figures import fig8_startup_10
from repro.measure.report import render_series

DENSITY = 15


@pytest.fixture(autouse=True)
def fresh_measurements(monkeypatch):
    monkeypatch.setenv("REPRO_MEASURE_CACHE", "off")
    _cached_measurement.cache_clear()
    reset_caches()
    yield
    _cached_measurement.cache_clear()
    reset_caches()


def _measure_with(monkeypatch, spec_mode, config, count=DENSITY):
    monkeypatch.setenv("REPRO_SPECIALIZE", spec_mode)
    reset_caches()
    return ExperimentRunner(seed=7).run(config, count)


class TestMeasurementsByteIdentical:
    @pytest.mark.parametrize("config", ["crun-wamr", "crun-wasmtime"])
    def test_wasm_config_unaffected_by_toggle(self, config, monkeypatch):
        on = _measure_with(monkeypatch, "on", config)
        off = _measure_with(monkeypatch, "off", config)
        assert on == off  # full dataclass equality, phase traces included

    def test_bytecode_mode_also_identical(self, monkeypatch):
        on = _measure_with(monkeypatch, "bytecode", "crun-wamr")
        off = _measure_with(monkeypatch, "off", "crun-wamr")
        assert on == off

    def test_python_baseline_unaffected(self, monkeypatch):
        on = _measure_with(monkeypatch, "on", "runc-python")
        off = _measure_with(monkeypatch, "off", "runc-python")
        assert on == off


class TestFigureOutputsByteIdentical:
    def _render_fig8(self, monkeypatch, spec_mode):
        monkeypatch.setenv("REPRO_SPECIALIZE", spec_mode)
        _cached_measurement.cache_clear()
        reset_caches()
        return render_series(fig8_startup_10(seed=7))

    def test_fig8_renders_identically(self, monkeypatch):
        on = self._render_fig8(monkeypatch, "on")
        off = self._render_fig8(monkeypatch, "off")
        assert on == off

    def test_measure_helper_identical_at_density(self, monkeypatch):
        # `measure` is the single entry point behind every figN_* series,
        # so identity here extends to all figures at this density.
        monkeypatch.setenv("REPRO_SPECIALIZE", "on")
        reset_caches()
        on = measure("crun-wamr", DENSITY, seed=11)
        monkeypatch.setenv("REPRO_SPECIALIZE", "off")
        _cached_measurement.cache_clear()
        reset_caches()
        off = measure("crun-wamr", DENSITY, seed=11)
        assert on == off
