"""The ablation runtime configurations, end to end on the cluster."""

import pytest

from repro.core.integration import ABLATION_CONFIGS
from repro.measure.experiment import ExperimentRunner

DENSITY = 15


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(seed=17)


class TestAblationConfigs:
    def test_registry(self):
        assert set(ABLATION_CONFIGS) == {
            "crun-wamr-aot",
            "crun-wamr-static",
            "youki-wamr",
            "crun-wamr-zygote",
        }
        assert all(not c.is_ours for c in ABLATION_CONFIGS.values())

    def test_all_run_to_ready(self, runner):
        for config in ABLATION_CONFIGS:
            m = runner.run(config, DENSITY)
            assert m.ready_fraction == 1.0, config
            assert set(m.exit_codes) == {0}, config

    def test_static_pays_for_private_text(self, runner):
        shared = runner.run("crun-wamr", DENSITY)
        static = runner.run("crun-wamr-static", DENSITY)
        assert static.metrics_mib > shared.metrics_mib + 1.0  # ~libiwasm copy

    def test_aot_memory_and_startup_cost(self, runner):
        interp = runner.run("crun-wamr", DENSITY)
        aot = runner.run("crun-wamr-aot", DENSITY)
        assert aot.metrics_mib > interp.metrics_mib
        assert aot.startup_seconds > interp.startup_seconds

    def test_youki_close_to_crun(self, runner):
        crun = runner.run("crun-wamr", DENSITY)
        youki = runner.run("youki-wamr", DENSITY)
        # Same handler, slightly heavier host runtime.
        assert 0 < youki.metrics_mib - crun.metrics_mib < 1.0
        # Still far below any upstream engine handler.
        wasmedge = runner.run("crun-wasmedge", DENSITY)
        assert youki.metrics_mib < 0.6 * wasmedge.metrics_mib

    def test_ablations_keep_functional_output(self, runner):
        m = runner.run("crun-wamr-aot", DENSITY)
        assert m.ready_fraction == 1.0
