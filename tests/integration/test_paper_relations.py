"""Integration: the paper's headline relations at reduced density.

The full 10/100/400 campaign lives in benchmarks/; these tests assert the
same *orderings* at cheaper densities so the suite stays fast while still
exercising the entire stack end to end.
"""

import pytest

from repro.core.integration import (
    CRUN_WASM_CONFIGS,
    PYTHON_CONFIGS,
    RUNWASI_CONFIGS,
)
from repro.measure.experiment import measure

DENSITY = 25  # between the paper's 10 and 100 buckets


@pytest.fixture(scope="module")
def results():
    configs = CRUN_WASM_CONFIGS + RUNWASI_CONFIGS + PYTHON_CONFIGS
    return {c: measure(c, DENSITY, seed=11) for c in configs}


class TestMemoryOrdering:
    def test_ours_lowest_metrics_overall(self, results):
        ours = results["crun-wamr"].metrics_mib
        for config, m in results.items():
            if config != "crun-wamr":
                assert ours < m.metrics_mib, config

    def test_ours_lowest_free_overall(self, results):
        ours = results["crun-wamr"].free_mib
        for config, m in results.items():
            if config != "crun-wamr":
                assert ours < m.free_mib, config

    def test_ours_at_least_half_of_other_crun_engines(self, results):
        ours = results["crun-wamr"].metrics_mib
        for config in CRUN_WASM_CONFIGS:
            if config != "crun-wamr":
                assert ours < 0.55 * results[config].metrics_mib

    def test_shim_wasmer_is_worst(self, results):
        worst = max(results, key=lambda c: results[c].free_mib)
        assert worst == "shim-wasmer"

    def test_only_ours_beats_python_on_metrics(self, results):
        python_best = min(results[c].metrics_mib for c in PYTHON_CONFIGS)
        beats = [
            c
            for c in CRUN_WASM_CONFIGS + RUNWASI_CONFIGS
            if results[c].metrics_mib < python_best
        ]
        assert beats == ["crun-wamr"]

    def test_shim_wasmtime_second_best_wasm(self, results):
        wasm = {c: results[c].metrics_mib for c in CRUN_WASM_CONFIGS + RUNWASI_CONFIGS}
        ranked = sorted(wasm, key=wasm.get)
        assert ranked[:2] == ["crun-wamr", "shim-wasmtime"]

    def test_free_exceeds_metrics_for_every_config(self, results):
        for config, m in results.items():
            assert m.free_mib > m.metrics_mib, config

    def test_free_gap_within_plausible_band(self, results):
        for config, m in results.items():
            gap = m.free_mib / m.metrics_mib
            assert 1.05 < gap < 2.0, (config, gap)


class TestStartupOrdering:
    def test_small_deployment_ranking(self, results):
        t = {c: m.startup_seconds for c, m in results.items()}
        # runwasi wasmtime/wasmedge lead at low density.
        assert t["shim-wasmtime"] < t["crun-wamr"]
        assert t["shim-wasmedge"] < t["crun-wamr"]
        # Ours beats every other crun engine and both Python baselines.
        for config in ("crun-wasmtime", "crun-wasmer", "crun-wasmedge", *PYTHON_CONFIGS):
            assert t["crun-wamr"] < t[config], config

    def test_runc_python_slowest_baseline(self, results):
        assert (
            results["runc-python"].startup_seconds
            > results["crun-python"].startup_seconds
        )


class TestFunctionalHealth:
    def test_all_containers_ready_and_clean(self, results):
        for config, m in results.items():
            assert m.ready_fraction == 1.0, config
            assert set(m.exit_codes) == {0}, config

    def test_per_container_deviation_small(self, results):
        """§IV-A: negligible deviation across identical containers.

        The std over all pods is dominated by the single first-touch
        outlier (the pod charged for shared library text); bound it by
        that mechanism rather than a flat threshold.
        """
        import math

        # One outlier of size S among N pods contributes std S*sqrt(N-1)/N.
        # The largest shared text any config first-touches is < 32 MiB
        # (libwasmer + crun + pause).
        bound = 32 * (1024**2) * math.sqrt(DENSITY - 1) / DENSITY
        for config, m in results.items():
            assert m.memory.metrics_server_std < bound, config
