"""The full paper pipeline with the C workload: C → wasm → image → pod."""

import pytest

from repro.wasm.embed import run_wasi
from repro.workloads.microservice import build_microservice_wasm
from repro.workloads.microservice_c import (
    C_WASM_IMAGE_REF,
    build_c_microservice_wasm,
    build_c_wasm_image,
)


class TestEquivalenceWithWat:
    """The C build and the reference WAT build are the same microservice."""

    @pytest.mark.parametrize("requests", [0, 1, 5])
    def test_identical_observable_behaviour(self, requests):
        env = {"REQUESTS": str(requests)}
        wat = run_wasi(build_microservice_wasm(), args=["svc"], env=env)
        c = run_wasi(build_c_microservice_wasm(), args=["svc"], env=env)
        assert c.exit_code == wat.exit_code == 0
        assert c.stdout == wat.stdout

    def test_both_fit_in_one_memory_page(self):
        wat = run_wasi(build_microservice_wasm())
        c = run_wasi(build_c_microservice_wasm())
        assert wat.memory_bytes == c.memory_bytes == 65536


class TestDeployment:
    def test_c_image_runs_under_crun_wamr(self, cluster):
        cluster.node.env.images.push(build_c_wasm_image())
        pod = cluster.make_pod("crun-wamr", image=C_WASM_IMAGE_REF, env={"REQUESTS": "2"})
        cluster.kernel.run_all([cluster.node.kubelet.sync_pod(pod)])
        [container] = cluster.node.kubelet.pod_containers[pod.uid]
        assert container.exit_code == 0
        assert container.stdout.count(b"request served") == 2
        assert container.facts["engine"] == "wamr"

    def test_c_image_runs_under_runwasi(self, cluster):
        cluster.node.env.images.push(build_c_wasm_image())
        pod = cluster.make_pod("shim-wasmedge", image=C_WASM_IMAGE_REF)
        cluster.kernel.run_all([cluster.node.kubelet.sync_pod(pod)])
        [container] = cluster.node.kubelet.pod_containers[pod.uid]
        assert b"ready" in container.stdout

    def test_image_carries_source_provenance(self):
        image = build_c_wasm_image()
        assert b"int main(void)" in image.read_file("app/main.c")
        assert image.read_file("app/main.wasm")[:4] == b"\x00asm"

    def test_memory_footprint_close_to_wat_workload(self, cluster):
        """The workload swap must not change the figure-level story."""
        from repro.sim.memory import MIB

        cluster.node.env.images.push(build_c_wasm_image())
        wat_pods = cluster.deploy_and_wait("crun-wamr", 4)
        metrics = cluster.node.metrics.pod_working_sets()
        wat_mean = sum(metrics[p.uid] for p in wat_pods) / 4
        cluster.teardown(wat_pods)

        c_pods = [
            cluster.make_pod("crun-wamr", image=C_WASM_IMAGE_REF) for _ in range(4)
        ]
        cluster.kernel.run_all(
            [cluster.node.kubelet.sync_pod(p) for p in c_pods]
        )
        metrics = cluster.node.metrics.pod_working_sets()
        c_mean = sum(metrics[p.uid] for p in c_pods) / 4
        assert abs(c_mean - wat_mean) < 0.1 * MIB
