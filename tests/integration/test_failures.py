"""Fault injection across the stack: OOM, bad modules, guest traps,
injected transients, eviction, and teardown hygiene."""

import pytest

from repro.errors import KubernetesError, OutOfMemory
from repro.k8s import ContainerSpec, PodPhase, PodSpec
from repro.k8s.cluster import build_cluster
from repro.k8s.objects import REASON_EVICTED
from repro.oci.annotations import WASM_VARIANT_ANNOTATION, WASM_VARIANT_COMPAT
from repro.oci.image import Image, ImageConfig, Layer
from repro.sim.faults import FaultPlan, FaultPoint, FaultSpec, transient_plan
from repro.sim.memory import GIB, MIB
from repro.wasm import assemble_wat


def _push_image(cluster, reference: str, wasm_bytes: bytes) -> str:
    image = Image(
        reference=reference,
        config=ImageConfig(
            entrypoint=["/app/bad.wasm"],
            annotations={WASM_VARIANT_ANNOTATION: WASM_VARIANT_COMPAT},
        ),
        layers=[Layer.from_files({"app/bad.wasm": wasm_bytes})],
    )
    cluster.node.env.images.push(image)
    cluster.node.env.images.pull(reference)
    return reference


def _deploy_one(cluster, config: str, image: str):
    spec = PodSpec(
        containers=[ContainerSpec(name="app", image=image)],
        runtime_class_name=config,
    )
    pod = cluster.api.create_pod("faulty", spec)
    cluster.kernel.run_all([cluster.node.kubelet.sync_pod(pod)])
    return pod


class TestBadModules:
    def test_corrupt_wasm_fails_pod_not_harness(self):
        cluster = build_cluster(seed=1)
        ref = _push_image(cluster, "registry.local/bad:corrupt", b"\x00asmGARBAGE")
        pod = _deploy_one(cluster, "crun-wamr", ref)
        assert pod.phase is PodPhase.FAILED
        assert "rejected" in pod.status_message
        # Node fully cleaned up after the failure.
        assert len(cluster.node.containerd.pods) == 0

    def test_trapping_module_fails_pod(self):
        cluster = build_cluster(seed=1)
        trap = assemble_wat('(module (func (export "_start") unreachable))')
        ref = _push_image(cluster, "registry.local/bad:trap", trap)
        pod = _deploy_one(cluster, "crun-wamr", ref)
        assert pod.phase is PodPhase.FAILED
        assert "trap" in pod.status_message

    def test_trapping_module_fails_under_runwasi_too(self):
        cluster = build_cluster(seed=1)
        trap = assemble_wat('(module (func (export "_start") (unreachable)))')
        ref = _push_image(cluster, "registry.local/bad:trap2", trap)
        pod = _deploy_one(cluster, "shim-wasmtime", ref)
        assert pod.phase is PodPhase.FAILED

    def test_module_without_entrypoint_fails(self):
        cluster = build_cluster(seed=1)
        empty = assemble_wat("(module (func $noop))")
        ref = _push_image(cluster, "registry.local/bad:noentry", empty)
        pod = _deploy_one(cluster, "crun-wamr", ref)
        assert pod.phase is PodPhase.FAILED

    def test_healthy_pods_unaffected_by_earlier_failure(self):
        cluster = build_cluster(seed=1)
        ref = _push_image(cluster, "registry.local/bad:corrupt2", b"not wasm at all")
        bad = _deploy_one(cluster, "crun-wamr", ref)
        assert bad.phase is PodPhase.FAILED
        good = cluster.deploy_and_wait("crun-wamr", 3)
        assert all(p.phase is PodPhase.RUNNING for p in good)


class TestOutOfMemory:
    def test_dense_deployment_on_tiny_node_fails_pods(self):
        # 1 GiB node: the ~23 MiB/pod wasmer shims exhaust it quickly.
        cluster = build_cluster(seed=1, memory_bytes=1 * GIB)
        pods = [cluster.make_pod("shim-wasmer") for _ in range(40)]
        acts = [cluster.node.kubelet.sync_pod(p) for p in pods]
        cluster.kernel.run_all(acts)
        phases = {p.phase for p in pods}
        assert PodPhase.FAILED in phases, "some pods must OOM"
        failed = [p for p in pods if p.phase is PodPhase.FAILED]
        assert any("exhausted" in p.status_message for p in failed)

    def test_lightweight_pods_fit_where_heavy_ones_do_not(self):
        cluster = build_cluster(seed=1, memory_bytes=1 * GIB)
        pods = cluster.deploy_and_wait("crun-wamr", 40)
        assert all(p.phase is PodPhase.RUNNING for p in pods)

    def test_oom_error_type(self):
        from repro.sim.memory import SystemMemoryModel

        model = SystemMemoryModel(total_bytes=10 * MIB, kernel_base=0)
        p = model.spawn("hog")
        with pytest.raises(OutOfMemory):
            model.map_private(p, 11 * MIB)


class TestInjectedTransients:
    def test_deployment_recovers_from_transient_faults(self):
        """30% pull + compile faults: every pod still reaches Running."""
        cluster = build_cluster(seed=3, fault_plan=transient_plan(seed=3))
        cluster.deployments.create(
            "web", cluster.pod_template("crun-wamr"), replicas=15
        )
        status = cluster.reconcile_and_wait("web")
        assert status == {"desired": 15, "current": 15, "ready": 15}
        # Faults really fired, and retries (not luck) produced convergence.
        plan = cluster.node.env.faults
        assert sum(plan.summary().values()) > 0
        retried = [
            cluster.api.pods[uid]
            for uid in cluster.deployments.deployments["web"].pod_uids
            if cluster.api.pods[uid].restart_count > 0
        ]
        assert retried, "at least one pod must have recovered via retry"
        assert cluster.node.env.tracer.by_category("recovery.backoff")

    def test_permanent_injected_fault_fails_pod(self):
        plan = FaultPlan(
            [FaultSpec(FaultPoint.SHIM_SPAWN, probability=1.0, transient=False)]
        )
        cluster = build_cluster(seed=1, fault_plan=plan)
        pod = cluster.make_pod("crun-wamr")
        cluster.kernel.run_all([cluster.node.kubelet.sync_pod(pod)])
        assert pod.phase is PodPhase.FAILED
        assert pod.restart_count == 0
        assert "injected permanent fault" in pod.status_message
        # Failed attempt left nothing behind on the node.
        assert len(cluster.node.containerd.pods) == 0


class TestEviction:
    def test_memory_pressure_evicts_newest_first(self):
        cluster = build_cluster(seed=1, memory_bytes=1 * GIB)
        pods = [cluster.make_pod("shim-wasmer") for _ in range(40)]
        cluster.kernel.run_all([cluster.node.kubelet.sync_pod(p) for p in pods])
        evicted = [p for p in pods if p.reason == REASON_EVICTED]
        assert evicted, "dense deployment on a tiny node must evict"
        assert all(p.phase is PodPhase.FAILED for p in evicted)
        # Eviction picks victims from the newest end of the creation order:
        # the earliest-created pods survive.
        survivors = [p for p in pods if p.phase is PodPhase.RUNNING]
        assert survivors
        assert min(s.created_at for s in survivors) <= min(
            e.created_at for e in evicted
        )
        spans = cluster.node.env.tracer.by_category("recovery.eviction")
        assert len(spans) == len(evicted)

    def test_deployment_controller_replaces_evicted_pods(self):
        """Evicted pods leave the live set; reconcile creates replacements
        (which may evict others — the churn stays bounded by capacity)."""
        cluster = build_cluster(seed=2, memory_bytes=1 * GIB)
        cluster.deployments.create(
            "dense", cluster.pod_template("shim-wasmer"), replicas=40
        )
        first = cluster.reconcile_and_wait("dense")
        assert first["ready"] < 40  # node can't hold all 40
        actions = cluster.deployments.reconcile("dense")
        assert actions["failed"], "evicted pods must be disowned on reconcile"
        assert len(actions["created"]) == len(actions["failed"])


class TestTeardownHygiene:
    def test_remove_pod_sandbox_is_idempotent(self):
        cluster = build_cluster(seed=1)
        pods = cluster.deploy_and_wait("crun-wamr", 1)
        uid = pods[0].uid
        assert uid in cluster.node.containerd.pods
        cluster.node.cri.remove_pod_sandbox(uid)
        # Second (and third) removal of the same sandbox is a no-op.
        cluster.node.cri.remove_pod_sandbox(uid)
        cluster.node.cri.remove_pod_sandbox(uid)
        assert uid not in cluster.node.containerd.pods

    def test_delete_deployment_returns_node_memory_to_baseline(self):
        cluster = build_cluster(seed=4)
        baseline = cluster.node.env.memory.free_report()
        cluster.deployments.create(
            "app", cluster.pod_template("crun-wamr"), replicas=10
        )
        status = cluster.reconcile_and_wait("app")
        assert status["ready"] == 10
        assert cluster.node.env.memory.free_report().used > baseline.used
        cluster.delete_deployment("app")
        after = cluster.node.env.memory.free_report()
        assert after.used == baseline.used
        assert after.free == baseline.free
        assert len(cluster.node.containerd.pods) == 0

    def test_delete_deployment_cleans_up_failed_pods_too(self):
        """FAILED pods the controller still owns must not leak node state."""
        plan = FaultPlan(
            [FaultSpec(FaultPoint.SANDBOX_SETUP, probability=1.0, transient=False)]
        )
        cluster = build_cluster(seed=4, fault_plan=plan)
        baseline = cluster.node.env.memory.free_report()
        cluster.deployments.create(
            "doomed", cluster.pod_template("crun-wamr"), replicas=5
        )
        status = cluster.reconcile_and_wait("doomed")
        assert status["ready"] == 0
        cluster.delete_deployment("doomed")
        assert cluster.node.env.memory.free_report().used == baseline.used
        assert cluster.deployments.deployments == {}


class TestAdmission:
    def test_zero_container_pod_rejected(self):
        cluster = build_cluster(seed=1)
        with pytest.raises(KubernetesError, match="containers must not be empty"):
            cluster.api.create_pod("empty", PodSpec(containers=[]))
        assert all(p.name != "empty" for p in cluster.api.pods.values())
