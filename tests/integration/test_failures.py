"""Fault injection across the stack: OOM, bad modules, guest traps."""

import pytest

from repro.errors import OutOfMemory
from repro.k8s import ContainerSpec, PodPhase, PodSpec
from repro.k8s.cluster import build_cluster
from repro.oci.annotations import WASM_VARIANT_ANNOTATION, WASM_VARIANT_COMPAT
from repro.oci.image import Image, ImageConfig, Layer
from repro.sim.memory import GIB, MIB
from repro.wasm import assemble_wat


def _push_image(cluster, reference: str, wasm_bytes: bytes) -> str:
    image = Image(
        reference=reference,
        config=ImageConfig(
            entrypoint=["/app/bad.wasm"],
            annotations={WASM_VARIANT_ANNOTATION: WASM_VARIANT_COMPAT},
        ),
        layers=[Layer.from_files({"app/bad.wasm": wasm_bytes})],
    )
    cluster.node.env.images.push(image)
    cluster.node.env.images.pull(reference)
    return reference


def _deploy_one(cluster, config: str, image: str):
    spec = PodSpec(
        containers=[ContainerSpec(name="app", image=image)],
        runtime_class_name=config,
    )
    pod = cluster.api.create_pod("faulty", spec)
    cluster.kernel.run_all([cluster.node.kubelet.sync_pod(pod)])
    return pod


class TestBadModules:
    def test_corrupt_wasm_fails_pod_not_harness(self):
        cluster = build_cluster(seed=1)
        ref = _push_image(cluster, "registry.local/bad:corrupt", b"\x00asmGARBAGE")
        pod = _deploy_one(cluster, "crun-wamr", ref)
        assert pod.phase is PodPhase.FAILED
        assert "rejected" in pod.status_message
        # Node fully cleaned up after the failure.
        assert len(cluster.node.containerd.pods) == 0

    def test_trapping_module_fails_pod(self):
        cluster = build_cluster(seed=1)
        trap = assemble_wat('(module (func (export "_start") unreachable))')
        ref = _push_image(cluster, "registry.local/bad:trap", trap)
        pod = _deploy_one(cluster, "crun-wamr", ref)
        assert pod.phase is PodPhase.FAILED
        assert "trap" in pod.status_message

    def test_trapping_module_fails_under_runwasi_too(self):
        cluster = build_cluster(seed=1)
        trap = assemble_wat('(module (func (export "_start") (unreachable)))')
        ref = _push_image(cluster, "registry.local/bad:trap2", trap)
        pod = _deploy_one(cluster, "shim-wasmtime", ref)
        assert pod.phase is PodPhase.FAILED

    def test_module_without_entrypoint_fails(self):
        cluster = build_cluster(seed=1)
        empty = assemble_wat("(module (func $noop))")
        ref = _push_image(cluster, "registry.local/bad:noentry", empty)
        pod = _deploy_one(cluster, "crun-wamr", ref)
        assert pod.phase is PodPhase.FAILED

    def test_healthy_pods_unaffected_by_earlier_failure(self):
        cluster = build_cluster(seed=1)
        ref = _push_image(cluster, "registry.local/bad:corrupt2", b"not wasm at all")
        bad = _deploy_one(cluster, "crun-wamr", ref)
        assert bad.phase is PodPhase.FAILED
        good = cluster.deploy_and_wait("crun-wamr", 3)
        assert all(p.phase is PodPhase.RUNNING for p in good)


class TestOutOfMemory:
    def test_dense_deployment_on_tiny_node_fails_pods(self):
        # 1 GiB node: the ~23 MiB/pod wasmer shims exhaust it quickly.
        cluster = build_cluster(seed=1, memory_bytes=1 * GIB)
        pods = [cluster.make_pod("shim-wasmer") for _ in range(40)]
        acts = [cluster.node.kubelet.sync_pod(p) for p in pods]
        cluster.kernel.run_all(acts)
        phases = {p.phase for p in pods}
        assert PodPhase.FAILED in phases, "some pods must OOM"
        failed = [p for p in pods if p.phase is PodPhase.FAILED]
        assert any("exhausted" in p.status_message for p in failed)

    def test_lightweight_pods_fit_where_heavy_ones_do_not(self):
        cluster = build_cluster(seed=1, memory_bytes=1 * GIB)
        pods = cluster.deploy_and_wait("crun-wamr", 40)
        assert all(p.phase is PodPhase.RUNNING for p in pods)

    def test_oom_error_type(self):
        from repro.sim.memory import SystemMemoryModel

        model = SystemMemoryModel(total_bytes=10 * MIB, kernel_base=0)
        p = model.spawn("hog")
        with pytest.raises(OutOfMemory):
            model.map_private(p, 11 * MIB)
