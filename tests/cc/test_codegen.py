"""mini-C code generation: compiled programs run correctly."""

import pytest

from repro.cc import compile_c, compile_c_binary
from repro.errors import CompileError
from repro.wasm.embed import run_wasi
from repro.wasm.runtime import Interpreter, Store, instantiate
from repro.wasm.wasi import WasiEnv


def call(source: str, func: str, *args):
    """Compile and invoke one exported function directly."""
    module = compile_c(source)
    store = Store()
    wasi = WasiEnv()
    inst = instantiate(store, module, imports=wasi.register(store).import_map())
    if inst.mem_addrs:
        wasi.attach_memory(store.mems[inst.mem_addrs[0]])
    return Interpreter(store).invoke_export(inst, func, list(args))


def run_main(source: str, env=None):
    return run_wasi(compile_c_binary(source), args=["prog"], env=env or {})


class TestArithmetic:
    def test_basic_ops(self):
        src = "int f(int a, int b) { return (a + b) * (a - b) / 2 % 7; }"
        assert call(src, "f", 7, 3) == [(10 * 4 // 2) % 7]

    def test_signed_division(self):
        src = "int f(int a, int b) { return a / b; }"
        assert call(src, "f", 0xFFFFFFF9, 2) == [(-7 // -2 if False else 0xFFFFFFFD)]  # -7/2=-3

    def test_bitwise(self):
        src = "int f(int a) { return (a & 0xF0) | (a ^ 0xFF) ; }"
        assert call(src, "f", 0x3C) == [(0x3C & 0xF0) | (0x3C ^ 0xFF)]

    def test_shifts_are_arithmetic(self):
        src = "int f(int a) { return a >> 2; }"
        assert call(src, "f", 0xFFFFFFF0) == [0xFFFFFFFC]  # -16 >> 2 = -4

    def test_unary(self):
        src = "int f(int a) { return -a + ~a + !a; }"
        # -5 + ~5 + 0 = -5 - 6 = -11
        assert call(src, "f", 5) == [(-11) & 0xFFFFFFFF]

    def test_int_wraps_at_32_bits(self):
        src = "int f(int a) { return a * a; }"
        assert call(src, "f", 0x10000) == [0]

    def test_long_arithmetic(self):
        src = "long f(long a, long b) { return a * b; }"
        assert call(src, "f", 1 << 20, 1 << 20) == [1 << 40]

    def test_mixed_promotes_to_long(self):
        src = "long f(int a, long b) { return a + b; }"
        assert call(src, "f", 0xFFFFFFFF, 10) == [9]  # -1 + 10, sign-extended

    def test_narrowing_assignment_wraps(self):
        src = "int f(long a) { int x = a; return x; }"
        assert call(src, "f", 0x1_0000_0005) == [5]

    def test_hex_and_char_literals(self):
        src = "int f(void) { return 0xFF + 'A'; }"
        assert call(src, "f") == [255 + 65]


class TestControlFlow:
    def test_if_else_chain(self):
        src = """
        int grade(int score) {
            if (score >= 90) { return 4; }
            else if (score >= 80) { return 3; }
            else if (score >= 70) { return 2; }
            else { return 0; }
        }
        """
        assert call(src, "grade", 95) == [4]
        assert call(src, "grade", 85) == [3]
        assert call(src, "grade", 71) == [2]
        assert call(src, "grade", 10) == [0]

    def test_while_loop(self):
        src = """
        int sum(int n) {
            int total = 0;
            while (n > 0) { total += n; n = n - 1; }
            return total;
        }
        """
        assert call(src, "sum", 100) == [5050]

    def test_for_loop(self):
        src = """
        int f(void) {
            int total = 0;
            for (int i = 0; i < 10; i++) { total += i; }
            return total;
        }
        """
        assert call(src, "f") == [45]

    def test_break(self):
        src = """
        int f(void) {
            int i;
            for (i = 0; i < 100; i++) { if (i == 7) { break; } }
            return i;
        }
        """
        assert call(src, "f") == [7]

    def test_continue_skips_step_correctly(self):
        src = """
        int f(void) {
            int total = 0;
            for (int i = 0; i < 10; i++) {
                if (i % 2 == 0) { continue; }
                total += i;
            }
            return total;
        }
        """
        assert call(src, "f") == [1 + 3 + 5 + 7 + 9]

    def test_continue_in_while(self):
        src = """
        int f(void) {
            int i = 0; int total = 0;
            while (i < 10) {
                i++;
                if (i > 5) { continue; }
                total += i;
            }
            return total;
        }
        """
        assert call(src, "f") == [15]

    def test_nested_loops_break_inner_only(self):
        src = """
        int f(void) {
            int count = 0;
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 10; j++) {
                    if (j == 2) { break; }
                    count++;
                }
            }
            return count;
        }
        """
        assert call(src, "f") == [6]

    def test_short_circuit_and(self):
        src = """
        int calls;
        int bump(void) { calls += 1; return 1; }
        int f(int a) { return a && bump(); }
        int probe(void) { return calls; }
        """
        module_calls = call(src, "f", 0)
        assert module_calls == [0]
        # bump() must not have run: compile fresh and check via probe.
        src2 = src + "int g(void) { f(0); return probe(); }"
        assert call(src2, "g") == [0]
        src3 = src + "int g(void) { f(5); return probe(); }"
        assert call(src3, "g") == [1]

    def test_short_circuit_or(self):
        src = """
        int calls;
        int bump(void) { calls += 1; return 0; }
        int f(int a) { return a || bump(); }
        int g(void) { f(1); return calls; }
        """
        assert call(src, "g") == [0]

    def test_logical_results_are_bool(self):
        src = "int f(int a, int b) { return (a && b) + (a || b); }"
        assert call(src, "f", 7, 9) == [2]


class TestFunctionsAndGlobals:
    def test_recursion(self):
        src = """
        int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        """
        assert call(src, "fact", 7) == [5040]

    def test_mutual_recursion(self):
        # Function signatures are collected before bodies are compiled,
        # so forward references work without prototypes.
        src = """
        int is_even(int n) {
            if (n == 0) { return 1; }
            return is_odd(n - 1);
        }
        int is_odd(int n) {
            if (n == 0) { return 0; }
            return is_even(n - 1);
        }
        """
        assert call(src, "is_even", 10) == [1]
        assert call(src, "is_odd", 10) == [0]
        assert call(src, "is_even", 7) == [0]

    def test_call_before_definition(self):
        src = """
        int outer(int n) { return helper(n) * 2; }
        int helper(int n) { return n + 1; }
        """
        assert call(src, "outer", 20) == [42]

    def test_globals_persist(self):
        src = """
        int counter = 10;
        int bump(void) { counter += 1; return counter; }
        int f(void) { bump(); bump(); return bump(); }
        """
        assert call(src, "f") == [13]

    def test_long_global(self):
        src = """
        long acc = -3;
        long f(void) { acc = acc * 1000000000L; return acc; }
        """
        assert call(src, "f") == [(-3_000_000_000) & 0xFFFFFFFFFFFFFFFF]

    def test_argument_conversion(self):
        src = """
        long wide(long x) { return x + 1; }
        long f(int a) { return wide(a); }
        """
        assert call(src, "f", 0xFFFFFFFF) == [0]  # -1 sign-extended, +1


class TestErrors:
    @pytest.mark.parametrize(
        "src,match",
        [
            ("int f(void) { return g(); }", "unknown function"),
            ("int f(void) { return x; }", "unknown variable"),
            ("int f(void) { int a; int a; return 0; }", "redeclaration"),
            ("int f(int a) { return f(); }", "expects 1 args"),
            ("void f(void) { return 1; }", "void function returns"),
            ("int f(void) { break; return 0; }", "outside of a loop"),
            ("int f(void) { continue; return 0; }", "outside of a loop"),
            ("int f(void) { puts(42); return 0; }", "string literal"),
            ("int main(int argc) { return 0; }", "no parameters"),
            ("int f(void) { return 0; } int f(void) { return 1; }", "duplicate function"),
        ],
    )
    def test_compile_errors(self, src, match):
        with pytest.raises(CompileError, match=match):
            compile_c(src)


class TestWasiIntegration:
    def test_main_exit_code(self):
        assert run_main("int main(void) { return 42; }").exit_code == 42

    def test_void_main_exits_zero(self):
        assert run_main("void main(void) { puts(\"hi\"); }").exit_code == 0

    def test_explicit_exit(self):
        src = "int main(void) { exit(7); return 0; }"
        assert run_main(src).exit_code == 7

    def test_puts_and_putd(self):
        src = """
        int main(void) {
            puts("header");
            putd(12345);
            putd(-99);
            putd(0);
            return 0;
        }
        """
        assert run_main(src).stdout == b"header\n12345\n-99\n0\n"

    def test_env_int_reads_environment(self):
        src = """
        int main(void) {
            putd(env_int("WORKERS", 4));
            putd(env_int("MISSING", -1));
            return 0;
        }
        """
        result = run_main(src, env={"WORKERS": "16", "OTHER": "9"})
        assert result.stdout == b"16\n-1\n"

    def test_env_int_negative_value(self):
        src = 'int main(void) { putd(env_int("DELTA", 0)); return 0; }'
        assert run_main(src, env={"DELTA": "-250"}).stdout == b"-250\n"

    def test_env_int_prefix_not_matched(self):
        src = 'int main(void) { putd(env_int("REQ", 5)); return 0; }'
        # "REQUESTS" must not match "REQ".
        assert run_main(src, env={"REQUESTS": "100"}).stdout == b"5\n"

    def test_clock_ms(self):
        src = "int main(void) { putd(clock_ms()); return 0; }"
        blob = compile_c_binary(src)
        result = run_wasi(blob, clock_ns=lambda: 2_500_000_000)
        assert result.stdout == b"2500\n"

    def test_function_names_survive_in_name_section(self):
        from repro.wasm import decode_module, encode_module
        from repro.wasm.names import apply_name_section

        module = compile_c("int work(void) { return 1; } int main(void) { return work(); }")
        decoded = apply_name_section(decode_module(encode_module(module)))
        names = {f.name for f in decoded.funcs}
        assert {"work", "main", "_start"} <= names
