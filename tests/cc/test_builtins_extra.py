"""grow_pages builtin + the memhog workload."""

import pytest

from repro.cc import compile_c_binary
from repro.errors import CompileError
from repro.wasm.embed import run_wasi
from repro.workloads.memhog import MEMHOG_SOURCE, build_memhog_wasm


class TestGrowPages:
    def test_returns_previous_page_count(self):
        src = """
        int main(void) {
            putd(grow_pages(3));
            putd(grow_pages(1));
            return 0;
        }
        """
        result = run_wasi(compile_c_binary(src))
        assert result.stdout == b"1\n4\n"

    def test_memory_grows(self):
        src = "int main(void) { grow_pages(7); return 0; }"
        result = run_wasi(compile_c_binary(src))
        assert result.memory_bytes == 8 * 65536

    def test_arg_count_checked(self):
        with pytest.raises(CompileError, match="one argument"):
            compile_c_binary("int main(void) { grow_pages(); return 0; }")


class TestMemhogWorkload:
    def test_default_stays_one_page(self):
        result = run_wasi(build_memhog_wasm(), env={})
        assert result.exit_code == 0
        assert result.memory_bytes == 65536
        assert b"ready" in result.stdout

    @pytest.mark.parametrize("pages", [1, 16, 128])
    def test_pages_env_controls_memory(self, pages):
        result = run_wasi(build_memhog_wasm(), env={"PAGES": str(pages)})
        assert result.exit_code == 0
        assert result.memory_bytes == (1 + pages) * 65536

    def test_source_is_carried(self):
        assert "grow_pages" in MEMHOG_SOURCE
