"""mini-C lexer and parser."""

import pytest

from repro.cc import cast as C
from repro.cc.lexer import Kind, lex
from repro.cc.parser import parse_c
from repro.errors import CompileError


class TestLexer:
    def test_keywords_vs_identifiers(self):
        toks = lex("int main interest")
        assert [t.kind for t in toks[:3]] == [Kind.KEYWORD, Kind.IDENT, Kind.IDENT]

    def test_numbers(self):
        toks = lex("42 0x2A 7L 0")
        assert toks[0].value == (42, False)
        assert toks[1].value == (42, False)
        assert toks[2].value == (7, True)  # long suffix
        assert toks[3].value == (0, False)

    def test_char_literals(self):
        toks = lex(r"'a' '\n' '\\'")
        assert toks[0].value == (97, False)
        assert toks[1].value == (10, False)
        assert toks[2].value == (92, False)

    def test_string_escapes(self):
        toks = lex(r'"a\tb\n"')
        assert toks[0].value == b"a\tb\n"

    def test_comments(self):
        toks = lex("a // line\n/* block\n comment */ b")
        idents = [t.text for t in toks if t.kind is Kind.IDENT]
        assert idents == ["a", "b"]

    def test_maximal_munch_operators(self):
        toks = lex("a<<=b && c++")
        ops = [t.text for t in toks if t.kind is Kind.OP]
        assert ops == ["<<=", "&&", "++"]

    def test_unterminated_string(self):
        with pytest.raises(CompileError, match="unterminated string"):
            lex('"abc')

    def test_unterminated_comment(self):
        with pytest.raises(CompileError, match="block comment"):
            lex("/* never")

    def test_bad_character(self):
        with pytest.raises(CompileError, match="unexpected character"):
            lex("int a @ b;")

    def test_line_numbers(self):
        toks = lex("a\n  b")
        b = [t for t in toks if t.text == "b"][0]
        assert (b.line, b.col) == (2, 3)


class TestParser:
    def test_function_shape(self):
        program = parse_c("int add(int a, long b) { return a; }")
        [func] = program.functions
        assert func.ret == "int"
        assert [(p.ctype, p.name) for p in func.params] == [("int", "a"), ("long", "b")]

    def test_void_params(self):
        program = parse_c("void f(void) { }")
        assert program.functions[0].params == []

    def test_globals(self):
        program = parse_c("int counter; long big = -5; int main(void){return 0;}")
        assert [(g.name, g.init) for g in program.globals] == [("counter", 0), ("big", -5)]

    def test_precedence(self):
        program = parse_c("int f(void) { return 1 + 2 * 3; }")
        ret = program.functions[0].body.statements[0]
        add = ret.value
        assert isinstance(add, C.CBinary) and add.op == "+"
        assert isinstance(add.right, C.CBinary) and add.right.op == "*"

    def test_comparison_precedence_below_shift(self):
        program = parse_c("int f(int a) { return a << 1 < 8; }")
        ret = program.functions[0].body.statements[0]
        assert ret.value.op == "<"
        assert ret.value.left.op == "<<"

    def test_assignment_is_right_associative(self):
        program = parse_c("int f(void) { int a; int b; a = b = 1; return a; }")
        stmt = program.functions[0].body.statements[2]
        assert isinstance(stmt.expr, C.CAssign)
        assert isinstance(stmt.expr.value, C.CAssign)

    def test_compound_assignment(self):
        program = parse_c("int f(int a) { a += 2; return a; }")
        stmt = program.functions[0].body.statements[0]
        assert stmt.expr.op == "+="

    def test_increment_sugar(self):
        program = parse_c("int f(int a) { a++; ++a; return a; }")
        s0, s1, _ = program.functions[0].body.statements
        assert s0.expr.op == "+=" and s1.expr.op == "+="

    def test_for_with_declaration(self):
        program = parse_c("int f(void) { for (int i = 0; i < 3; i++) { } return 0; }")
        loop = program.functions[0].body.statements[0]
        assert isinstance(loop, C.CFor) and isinstance(loop.init, C.CDecl)

    def test_for_headless(self):
        program = parse_c("int f(void) { for (;;) { break; } return 0; }")
        loop = program.functions[0].body.statements[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_if_without_braces(self):
        program = parse_c("int f(int a) { if (a) return 1; else return 2; }")
        branch = program.functions[0].body.statements[0]
        assert isinstance(branch.then, C.CBlock)
        assert isinstance(branch.otherwise, C.CBlock)

    def test_missing_semicolon(self):
        with pytest.raises(CompileError, match="expected ';'"):
            parse_c("int f(void) { return 1 }")

    def test_bad_toplevel(self):
        with pytest.raises(CompileError, match="expected declaration"):
            parse_c("return 1;")

    def test_unterminated_block(self):
        with pytest.raises(CompileError):
            parse_c("int f(void) { return 1;")
