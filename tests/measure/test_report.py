"""Report renderers."""

from repro.measure.figures import FigureSeries
from repro.measure.report import render_phase_breakdown, render_series


class TestRenderSeries:
    def _series(self) -> FigureSeries:
        return FigureSeries(
            figure_id="figX",
            title="Example",
            unit="MiB/container",
            densities=(10, 400),
            values={
                "crun-wamr": {10: 4.0, 400: 3.9},
                "crun-wasmer": {10: 20.0, 400: 18.0},
            },
        )

    def test_contains_rows_and_average(self):
        text = render_series(self._series())
        assert "crun-wamr" in text and "<== ours" in text
        assert "avg" in text
        assert "3.95" in text  # (4.0+3.9)/2

    def test_single_density_has_no_average(self):
        series = self._series()
        series.densities = (10,)
        series.values = {c: {10: v[10]} for c, v in series.values.items()}
        assert "avg" not in render_series(series)

    def test_best_other_and_averaged_helpers(self):
        series = self._series()
        assert series.best_other(10) == ("crun-wasmer", 20.0)
        assert series.averaged("crun-wamr") == 3.95


class TestRenderPhases:
    def test_table_shape(self):
        text = render_phase_breakdown(
            "phases",
            {
                "crun-wamr": {"startup.parallel": 0.08, "startup.serialized": 0.01},
                "shim-wasmtime": {"startup.parallel": 0.10},
            },
        )
        assert "parallel" in text and "serialized" in text
        assert "80.0ms" in text
        assert "0.0ms" in text  # missing phase renders as zero
