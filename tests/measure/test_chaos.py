"""Chaos campaign: convergence invariants and per-seed determinism.

Small-n in-process runs of ``measure.chaos.run_chaos`` — the 400-pod
acceptance campaign is exercised by ``benchmarks/test_chaos.py``; here
we pin the invariant machinery itself: every invariant holds, faults
actually fire at the configured rate, the measurement is bit-identical
when repeated (same process, counters already warm), and the JSON
payload round-trips.
"""

import json

import pytest

from repro.measure.chaos import (
    ChaosMeasurement,
    render_chaos,
    run_chaos,
)

COUNT = 24


@pytest.fixture(scope="module")
def chaos():
    return run_chaos(count=COUNT, seed=5, max_rounds=20)


class TestInvariants:
    def test_all_invariants_hold(self, chaos):
        failing = [c.name for c in chaos.invariants if not c.passed]
        assert chaos.all_hold(), failing

    def test_converges_with_full_replica_set(self, chaos):
        assert chaos.converged
        assert chaos.ready_pods == COUNT

    def test_faults_actually_fired(self, chaos):
        assert sum(chaos.faults_by_point.values()) > 0
        # Startup AND runtime stages both injected something.
        startup = {"image.pull", "engine.compile", "engine.instantiate"}
        runtime = {
            "guest.trap",
            "guest.exhaust",
            "wasi.syscall",
            "probe.liveness",
            "probe.readiness",
        }
        fired = {p for p, n in chaos.faults_by_point.items() if n > 0}
        assert fired & startup
        assert fired & runtime

    def test_recovery_percentiles_ordered(self, chaos):
        p = chaos.recovery_percentiles
        assert set(p) == {"p50", "p90", "p99"}
        assert 0.0 < p["p50"] <= p["p90"] <= p["p99"]

    def test_restarts_recorded(self, chaos):
        assert chaos.restarts_total > 0
        assert 0 < chaos.restarts_max <= chaos.restarts_total


class TestDeterminism:
    def test_repeat_run_is_bit_identical(self, chaos):
        again = run_chaos(count=COUNT, seed=5, max_rounds=20)
        assert json.dumps(again.to_dict(), sort_keys=True) == json.dumps(
            chaos.to_dict(), sort_keys=True
        )

    def test_seed_changes_outcome(self, chaos):
        other = run_chaos(count=COUNT, seed=6, max_rounds=20)
        assert other.all_hold()
        assert (
            other.to_dict()["timeline_fingerprint"]
            != chaos.to_dict()["timeline_fingerprint"]
        )


class TestPayload:
    def test_to_dict_json_round_trips(self, chaos):
        payload = json.loads(json.dumps(chaos.to_dict(), sort_keys=True))
        assert payload["count"] == COUNT
        assert payload["converged"] is True
        assert len(payload["timeline_fingerprint"]) == 16
        assert all(inv["passed"] for inv in payload["invariants"])

    def test_render_mentions_every_invariant(self, chaos):
        text = render_chaos(chaos)
        for check in chaos.invariants:
            assert check.name in text
        assert "[ok ]" in text

    def test_measurement_is_frozen(self, chaos):
        assert isinstance(chaos, ChaosMeasurement)
        with pytest.raises(Exception):
            chaos.count = 1  # type: ignore[misc]
