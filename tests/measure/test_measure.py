"""Measurement harness: free sampler, stats, experiments, figure shapes."""

import pytest

from repro.measure.experiment import ExperimentRunner, measure
from repro.measure.figures import (
    table1_software_stack,
    table2_experiments_overview,
)
from repro.measure.free import FreeSampler
from repro.measure.report import render_series, render_table1, render_table2
from repro.measure.stats import mean, percent_lower, stddev, summarize
from repro.sim.memory import MIB, SystemMemoryModel


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stddev_constant_is_zero(self):
        assert stddev([5.0, 5.0, 5.0]) == 0.0

    def test_stddev_known(self):
        assert stddev([2.0, 4.0]) == pytest.approx(1.0)

    def test_summary(self):
        s = summarize([1.0, 3.0])
        assert (s.n, s.mean, s.minimum, s.maximum) == (2, 2.0, 1.0, 3.0)

    def test_percent_lower(self):
        assert percent_lower(50.0, 100.0) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            percent_lower(1.0, 0.0)


class TestFreeSampler:
    def test_delta_attributes_growth(self):
        memory = SystemMemoryModel()
        sampler = FreeSampler(memory)
        sampler.mark_baseline()
        p = memory.spawn("x")
        memory.map_private(p, 10 * MIB)
        memory.touch_page_cache("layer", 5 * MIB)
        delta = sampler.delta()
        assert delta.used_bytes == 10 * MIB
        assert delta.buff_cache_bytes == 5 * MIB
        assert delta.per_container(5) == 3 * MIB

    def test_delta_requires_baseline(self):
        with pytest.raises(RuntimeError):
            FreeSampler(SystemMemoryModel()).delta()

    def test_render_shape(self):
        memory = SystemMemoryModel()
        text = FreeSampler.render(memory.free_report())
        assert "total" in text and "buff/cache" in text and "Mem:" in text


class TestExperimentRunner:
    def test_basic_shape(self):
        m = ExperimentRunner(seed=2).run("crun-wamr", 5)
        assert m.count == 5
        assert m.ready_fraction == 1.0
        assert m.exit_codes == (0,) * 5
        assert m.free_mib > m.metrics_mib > 0
        assert m.startup_seconds > m.per_pod_start.minimum > 0

    def test_deviation_below_paper_bound(self):
        """§IV-A: deviation in per-container memory < 0.1 MB."""
        m = ExperimentRunner(seed=2).run("crun-wamr", 20)
        # The first pod carries first-touch charges; spread of the rest
        # is what the paper's deviation covers. Std over all pods is still
        # dominated by that single outlier, so check it stays moderate and
        # the jitter scale is tiny.
        assert m.memory.metrics_server_std / MIB < 1.0

    def test_measure_is_cached(self):
        a = measure("crun-wamr", 10, seed=1)
        b = measure("crun-wamr", 10, seed=1)
        assert a is b

    def test_python_experiment(self):
        m = ExperimentRunner(seed=2).run("crun-python", 4)
        assert m.ready_fraction == 1.0
        assert m.metrics_mib > 4.0


class TestTables:
    def test_table1_matches_paper(self):
        stack = table1_software_stack()
        assert stack["WAMR"] == "2.1.0"
        assert stack["Kubernetes"] == "1.27.0"
        assert stack["Wasmtime"] == "23.0.1"
        assert len(stack) == 8

    def test_table2_covers_four_sections(self):
        rows = table2_experiments_overview()
        assert [r["section"] for r in rows] == ["IV-B", "IV-C", "IV-D", "IV-E"]
        assert all("Memory" in r["metric"] or "Latency" in r["metric"] for r in rows)

    def test_renderers(self):
        assert "WAMR" in render_table1(table1_software_stack())
        assert "IV-E" in render_table2(table2_experiments_overview())
