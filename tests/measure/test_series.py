"""Campaign engine: spec validation, inheritance, expansion, resume."""

import json

import pytest

from repro.errors import SeriesError
from repro.measure.cache import MeasurementCache, measurement_to_dict
from repro.measure.experiment import ExperimentRunner
from repro.measure.series import (
    SHIPPED_SERIES,
    Cell,
    SeriesManifest,
    derive_seed,
    expand_series,
    resolve_spec,
    run_series,
    validate_spec,
)

SMALL_SPEC = {
    "name": "small",
    "kind": "deploy",
    "seed": 1,
    "matrix": {"config": ["crun-wamr", "crun-python"], "count": [10, 25]},
}


class TestValidation:
    def test_unknown_series_name(self):
        with pytest.raises(SeriesError, match="unknown series"):
            validate_spec("no-such-series")

    def test_unknown_spec_key(self):
        with pytest.raises(SeriesError, match="unknown spec keys"):
            validate_spec(dict(SMALL_SPEC, typo_key=1))

    def test_bad_kind(self):
        with pytest.raises(SeriesError, match="kind must be one of"):
            validate_spec(dict(SMALL_SPEC, kind="bench"))

    def test_spec_needs_cells(self):
        with pytest.raises(SeriesError, match="needs a matrix or include"):
            validate_spec({"name": "empty"})

    def test_empty_axis_rejected(self):
        with pytest.raises(SeriesError, match="non-empty list"):
            validate_spec(dict(SMALL_SPEC, matrix={"config": []}))

    def test_count_values_must_be_positive_ints(self):
        bad = dict(SMALL_SPEC, matrix={"config": ["crun-wamr"], "count": [0]})
        with pytest.raises(SeriesError, match="positive ints"):
            validate_spec(bad)

    def test_params_checked_against_kind(self):
        # Deploy cells must stay param-free: the measurement cache keys
        # on (seed, config, count) only, so extra knobs cannot be cached.
        with pytest.raises(SeriesError, match="not valid for kind 'deploy'"):
            validate_spec(dict(SMALL_SPEC, params={"rate": 0.5}))

    def test_stages_exclude_top_level_matrix(self):
        bad = dict(SMALL_SPEC, stages=[{"matrix": {"config": ["crun-wamr"], "count": [10]}}])
        with pytest.raises(SeriesError, match="mutually exclusive"):
            validate_spec(bad)

    def test_stages_cannot_nest(self):
        bad = {"name": "nested", "stages": [{"stages": []}]}
        with pytest.raises(SeriesError, match="cannot nest"):
            validate_spec(bad)


class TestInheritance:
    def test_base_matrix_is_inherited(self):
        figures = resolve_spec("figures")
        campaign = resolve_spec("campaign")
        assert figures["matrix"] == campaign["matrix"]
        assert figures["name"] == "figures"

    def test_child_axis_replaces_base_axis(self):
        crun = resolve_spec("crun-memory")
        campaign = resolve_spec("campaign")
        assert crun["matrix"]["count"] == campaign["matrix"]["count"]
        assert crun["matrix"]["config"] == [
            "crun-wamr",
            "crun-wasmedge",
            "crun-wasmer",
            "crun-wasmtime",
        ]

    def test_params_dict_merge(self):
        registry = {
            "parent": {
                "name": "parent",
                "kind": "chaos",
                "matrix": {"config": ["crun-wamr"], "count": [10]},
                "params": {"rate": 0.25, "max_rounds": 5},
            }
        }
        child = {"name": "child", "base": "parent", "params": {"rate": 0.5}}
        merged = resolve_spec(child, registry=registry)
        assert merged["params"] == {"rate": 0.5, "max_rounds": 5}

    def test_inheritance_cycle_detected(self):
        registry = {
            "a": {"name": "a", "base": "b"},
            "b": {"name": "b", "base": "a"},
        }
        with pytest.raises(SeriesError, match="cycle"):
            resolve_spec("a", registry=registry)


class TestExpansion:
    def test_shipped_series_expand_cleanly(self):
        expected_cells = {
            "campaign": 27,
            "figures": 27,
            "crun-memory": 12,
            "zygote": 2,
            "recovery": 1,
            "chaos": 1,
            "fleet": 6,
        }
        for name, spec in SHIPPED_SERIES.items():
            cells = expand_series(spec)
            assert len(cells) == expected_cells[name], name
            keys = [cell.key for cell in cells]
            assert len(keys) == len(set(keys)), f"{name}: duplicate cells"

    def test_expansion_is_axis_order_independent(self):
        shuffled = dict(
            SMALL_SPEC,
            matrix={"count": [25, 10], "config": ["crun-python", "crun-wamr"]},
        )
        assert expand_series(shuffled) == expand_series(SMALL_SPEC)

    def test_duplicate_axis_values_collapse(self):
        doubled = dict(
            SMALL_SPEC,
            matrix={"config": ["crun-wamr", "crun-wamr"], "count": [10]},
        )
        assert len(expand_series(doubled)) == 1

    def test_exclude_punches_matrix_holes(self):
        spec = dict(SMALL_SPEC, exclude=[{"config": "crun-python", "count": 25}])
        cells = expand_series(spec)
        assert len(cells) == 3
        assert all(
            not (c.config == "crun-python" and c.count == 25) for c in cells
        )

    def test_include_adds_explicit_cells(self):
        spec = dict(SMALL_SPEC, include=[{"config": "runc-python", "count": 50}])
        cells = expand_series(spec)
        assert ("runc-python", 50) in {(c.config, c.count) for c in cells}
        assert len(cells) == 5

    def test_stage_barriers_preserve_stage_order(self):
        cells = expand_series("zygote")
        assert [c.stage for c in cells] == [0, 1]
        assert [c.config for c in cells] == ["crun-wamr", "crun-wamr-zygote"]

    def test_derived_seeds_are_stable_and_distinct(self):
        spec = dict(SMALL_SPEC, derive_seeds=True)
        first = expand_series(spec)
        second = expand_series(spec)
        assert [c.seed for c in first] == [c.seed for c in second]
        assert len({c.seed for c in first}) == len(first)
        # sha256-based, not hash()-based: pin one value so a change to
        # the derivation would surface as a failure, not silent reseeding.
        assert derive_seed(1, "deploy:crun-wamr:n10:") == derive_seed(
            1, "deploy:crun-wamr:n10:"
        )
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_seed_override_reaches_cells(self):
        cells = expand_series(SMALL_SPEC, seed=7)
        assert {c.seed for c in cells} == {7}


class TestNodesAxis:
    FLEET_SPEC = {
        "name": "mini-fleet",
        "kind": "deploy",
        "seed": 1,
        "matrix": {"config": ["crun-wamr"], "count": [10], "nodes": [1, 4]},
    }

    def test_single_node_cells_keep_prefleet_keys(self):
        # Byte-compat: a nodes=1 cell's key/identity must be exactly what
        # pre-fleet expansions produced, so old manifests keep resuming.
        cells = expand_series(self.FLEET_SPEC)
        assert [c.key for c in cells] == [
            "deploy:crun-wamr:n10:s1",
            "deploy:crun-wamr:n10:s1:nodes4",
        ]
        assert cells[0] == Cell(
            series="mini-fleet",
            kind="deploy",
            config="crun-wamr",
            count=10,
            seed=1,
        )

    def test_derived_seeds_ignore_nodes_one(self):
        spec = dict(self.FLEET_SPEC, derive_seeds=True)
        baseline = dict(spec, matrix={"config": ["crun-wamr"], "count": [10]})
        with_axis, without_axis = expand_series(spec), expand_series(baseline)
        assert with_axis[0].seed == without_axis[0].seed
        assert with_axis[1].seed != with_axis[0].seed

    def test_only_single_node_cells_are_cacheable(self):
        cells = expand_series(self.FLEET_SPEC)
        assert cells[0].cacheable and not cells[1].cacheable

    def test_nodes_axis_requires_deploy_kind(self):
        bad = {
            "name": "bad",
            "kind": "chaos",
            "matrix": {"config": ["crun-wamr"], "count": [10], "nodes": [2]},
        }
        with pytest.raises(SeriesError, match="only valid for deploy"):
            validate_spec(bad)

    def test_nodes_values_must_be_positive_ints(self):
        bad = dict(
            self.FLEET_SPEC,
            matrix={"config": ["crun-wamr"], "count": [10], "nodes": [0]},
        )
        with pytest.raises(SeriesError, match="positive ints"):
            validate_spec(bad)

    def test_run_series_shards_fleet_cells(self):
        result = run_series(
            dict(
                self.FLEET_SPEC,
                matrix={"config": ["crun-wamr"], "count": [8], "nodes": [1, 2]},
            ),
            cache=None,
        )
        fleet = result.fleet_measurements
        assert fleet[("crun-wamr", 8, 1)].nodes == 1
        assert fleet[("crun-wamr", 8, 2)].nodes == 2
        assert len(fleet[("crun-wamr", 8, 2)].per_node) == 2
        # measurements (the pre-fleet view) only exposes single-node cells.
        assert set(result.measurements) == {("crun-wamr", 8)}


class TestManifestResume:
    def _run_counting(self, monkeypatch):
        calls = []
        original = ExperimentRunner.run

        def counting(self, config, count):
            calls.append((config, count))
            return original(self, config, count)

        monkeypatch.setattr(ExperimentRunner, "run", counting)
        return calls

    def test_interrupted_series_resumes_remainder_only(self, tmp_path, monkeypatch):
        cache = MeasurementCache(tmp_path / "cache")
        manifest = tmp_path / "series.json"
        seen = []

        class Interrupted(RuntimeError):
            pass

        def interrupt_after_two(cell, result):
            seen.append(cell.key)
            if len(seen) == 2:
                raise Interrupted

        with pytest.raises(Interrupted):
            run_series(
                SMALL_SPEC,
                jobs=1,
                cache=cache,
                manifest=manifest,
                on_cell=interrupt_after_two,
            )
        assert len(SeriesManifest(manifest).__dict__) >= 0  # path exists
        assert len(json.loads(manifest.read_text())["completed"]) == 2

        calls = self._run_counting(monkeypatch)
        resumed = run_series(SMALL_SPEC, jobs=1, cache=cache, manifest=manifest)
        # Only the N - K unfinished cells simulate again.
        assert len(calls) == 2
        assert set(resumed.resumed) == set(seen)
        assert len(resumed.results) == 4

        # Summaries are byte-identical to an uninterrupted run.
        fresh = run_series(SMALL_SPEC, jobs=1, cache=None)
        for key in fresh.results:
            assert json.dumps(measurement_to_dict(resumed.results[key])) == json.dumps(
                measurement_to_dict(fresh.results[key])
            )

    def test_completed_series_reruns_nothing(self, tmp_path, monkeypatch):
        cache = MeasurementCache(tmp_path / "cache")
        manifest = tmp_path / "series.json"
        run_series(SMALL_SPEC, jobs=1, cache=cache, manifest=manifest)
        calls = self._run_counting(monkeypatch)
        again = run_series(SMALL_SPEC, jobs=1, cache=cache, manifest=manifest)
        assert calls == []
        assert len(again.resumed) == 4

    def test_manifest_identity_mismatch_starts_fresh(self, tmp_path):
        manifest = SeriesManifest(tmp_path / "series.json")
        cells = expand_series(SMALL_SPEC)
        assert manifest.begin("small", 1, cells) == set()
        manifest.mark(cells[0], wall_seconds=0.5)
        # Same identity: the completed cell is honored.
        reloaded = SeriesManifest(tmp_path / "series.json")
        assert reloaded.begin("small", 1, cells) == {cells[0].key}
        # Different seed: the journal describes other experiments.
        other = SeriesManifest(tmp_path / "series.json")
        assert other.begin("small", 2, cells) == set()

    def test_manifest_rejects_changed_cell_list(self, tmp_path):
        manifest = SeriesManifest(tmp_path / "series.json")
        cells = expand_series(SMALL_SPEC)
        manifest.begin("small", 1, cells)
        manifest.mark(cells[0])
        fewer = cells[:-1]
        assert SeriesManifest(tmp_path / "series.json").begin("small", 1, fewer) == set()


class TestRunSeries:
    def test_inline_spec_roundtrip(self, tmp_path):
        spec = {
            "name": "tiny",
            "matrix": {"config": ["crun-wamr"], "count": [10]},
        }
        result = run_series(spec, jobs=1, cache=MeasurementCache(tmp_path / "c"))
        assert result.series == "tiny"
        assert ("crun-wamr", 10) in result.measurements
        m = result.measurements[("crun-wamr", 10)]
        assert m == ExperimentRunner(seed=1).run("crun-wamr", 10)

    def test_cell_key_is_stable(self):
        cell = Cell(
            series="s",
            kind="chaos",
            config="crun-wamr",
            count=400,
            seed=1,
            params=(("rate", 0.25),),
        )
        assert cell.key == "chaos:crun-wamr:n400:s1:rate=0.25"
        assert not cell.cacheable
