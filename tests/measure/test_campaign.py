"""Campaign driver tests (uses cached measurements from other tests)."""

import pytest

from repro.measure.campaign import render_campaign, run_campaign


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(seed=1)


class TestCampaign:
    def test_all_claims_hold(self, campaign):
        failing = [c.claim_id for c in campaign.claims if not c.holds]
        assert campaign.all_hold(), failing

    def test_covers_six_claims(self, campaign):
        assert {c.claim_id for c in campaign.claims} == {
            "crun-family",
            "runwasi",
            "python",
            "startup-10",
            "startup-400",
            "fig10-order",
        }

    def test_full_matrix_measured(self, campaign):
        assert len(campaign.measurements) == 9 * 3

    def test_render_contains_verdicts(self, campaign):
        text = render_campaign(campaign)
        assert "[OK  ]" in text
        assert "crun-wamr" in text
        assert "paper:" in text and "measured:" in text

    def test_averages_consistent_with_measurements(self, campaign):
        avg = campaign.averaged_free("crun-wamr")
        values = [campaign.get("crun-wamr", n).free_mib for n in (10, 100, 400)]
        assert avg == pytest.approx(sum(values) / 3)
