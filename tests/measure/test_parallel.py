"""Parallel experiment scheduler + persistent measurement cache."""

import json

import pytest

from repro.measure.cache import (
    MeasurementCache,
    measurement_from_dict,
    measurement_to_dict,
    source_tree_digest,
    toggle_fingerprint,
)
from repro.measure.experiment import ExperimentRunner, measure
from repro.measure.parallel import auto_jobs, legacy_run_matrix, run_matrix

PAIRS = [("crun-wamr", 10), ("crun-python", 10)]


@pytest.fixture(scope="module")
def sequential():
    return run_matrix(PAIRS, seed=1, jobs=1)


class TestRunMatrix:
    def test_sequential_matches_measure(self, sequential):
        for config, count in PAIRS:
            assert sequential[(config, count)] == measure(config, count, seed=1)

    def test_parallel_results_identical(self, sequential, tmp_path):
        parallel = run_matrix(
            PAIRS, seed=1, jobs=2, cache=MeasurementCache(tmp_path / "cache")
        )
        assert parallel == sequential

    def test_merge_order_is_caller_order(self, sequential):
        reversed_result = run_matrix(list(reversed(PAIRS)), seed=1, jobs=1)
        assert list(reversed_result) == list(reversed(PAIRS))
        assert dict(reversed_result) == dict(sequential)

    def test_no_cache_recomputes(self, sequential):
        fresh = run_matrix(PAIRS, seed=1, jobs=1, cache=None)
        assert fresh == sequential

    def test_auto_jobs_positive(self):
        assert auto_jobs() >= 1

    def test_legacy_runner_matches_engine(self, sequential, tmp_path):
        legacy = legacy_run_matrix(
            PAIRS, seed=1, jobs=2, cache=MeasurementCache(tmp_path / "legacy")
        )
        assert legacy == sequential


class TestMeasurementCache:
    def test_roundtrip_is_exact(self, sequential, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        m = sequential[("crun-wamr", 10)]
        cache.put(1, "crun-wamr", 10, m)
        assert cache.get(1, "crun-wamr", 10) == m

    def test_miss_returns_none(self, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        assert cache.get(99, "crun-wamr", 10) is None

    def test_json_serialization_is_lossless(self, sequential):
        m = sequential[("crun-python", 10)]
        data = json.loads(json.dumps(measurement_to_dict(m)))
        assert measurement_from_dict(data) == m

    def test_entries_keyed_by_source_digest(self, sequential, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        m = sequential[("crun-wamr", 10)]
        cache.put(1, "crun-wamr", 10, m)
        (entry,) = (tmp_path / "cache").glob("*.json")
        assert entry.name.startswith(source_tree_digest()[:16])
        # A source-tree change produces a different digest prefix — the
        # stale entry is simply never read again.
        payload = json.loads(entry.read_text())
        assert payload["source_digest"] == source_tree_digest()

    def test_toggle_flip_is_a_cache_miss(self, sequential, tmp_path, monkeypatch):
        """A run cached under one REPRO_* toggle combination must never be
        served under another: the toggles are part of the cache key."""
        cache = MeasurementCache(tmp_path / "cache")
        m = sequential[("crun-wamr", 10)]
        cache.put(1, "crun-wamr", 10, m)
        assert cache.get(1, "crun-wamr", 10) == m
        baseline = toggle_fingerprint()
        for env, value in (
            ("REPRO_SPECIALIZE", "off"),
            ("REPRO_ZYGOTE", "off"),
            ("REPRO_MEMORY_ACCOUNTING", "reference"),
        ):
            monkeypatch.setenv(env, value)
            assert toggle_fingerprint() != baseline, env
            assert cache.get(1, "crun-wamr", 10) is None, env
            monkeypatch.delenv(env)
        assert cache.get(1, "crun-wamr", 10) == m

    def test_equivalent_toggle_spellings_share_entries(self, sequential, tmp_path, monkeypatch):
        cache = MeasurementCache(tmp_path / "cache")
        m = sequential[("crun-wamr", 10)]
        cache.put(1, "crun-wamr", 10, m)
        # Explicit defaults fingerprint identically to unset toggles.
        monkeypatch.setenv("REPRO_SPECIALIZE", "on")
        monkeypatch.setenv("REPRO_MEMORY_ACCOUNTING", "incremental")
        assert cache.get(1, "crun-wamr", 10) == m

    def test_wall_seconds_recorded_for_cost_estimates(self, sequential, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        m = sequential[("crun-wamr", 10)]
        assert cache.cost_estimate(1, "crun-wamr", 10) is None
        cache.put(1, "crun-wamr", 10, m, wall_seconds=0.125)
        assert cache.cost_estimate(1, "crun-wamr", 10) == 0.125

    def test_warm_run_skips_simulation(self, sequential, tmp_path, monkeypatch):
        cache = MeasurementCache(tmp_path / "cache")
        for (config, count), m in sequential.items():
            cache.put(1, config, count, m)

        def boom(self, *a, **k):  # pragma: no cover - must not run
            raise AssertionError("cache miss: simulation ran on a warm cache")

        monkeypatch.setattr(ExperimentRunner, "run", boom)
        warm = run_matrix(PAIRS, seed=1, jobs=2, cache=cache)
        assert warm == sequential


class TestTelemetryMerge:
    """--trace-out/--metrics-out work at any --jobs N (satellite fix).

    Workers ship per-cell registry deltas and span groups; the parent
    merges them in sequential cell order. Simulation-driven counters and
    the trace export must be byte-identical to a --jobs 1 run. Families
    that track *process* state — engine-cache hit/miss stats,
    specialization/zygote warmth counters — are excluded: they differ
    even between two successive --jobs 1 runs in one process.
    """

    WARMTH_PREFIXES = ("repro_engine_cache", "repro_specialize", "repro_zygote")

    @pytest.fixture()
    def telemetry(self):
        from repro import obs

        was = obs.enabled()
        obs.set_enabled(True)
        obs.reset()
        yield obs
        obs.reset()
        obs.set_enabled(was)

    def _deterministic_counters(self, obs):
        out = {}
        for family in obs.default_registry().collect():
            if family.kind != "counter":
                continue
            if family.name.startswith(self.WARMTH_PREFIXES):
                continue
            out[family.name] = {
                labels: child.value for labels, child in family.samples()
            }
        return out

    def test_parallel_merge_equals_sequential_totals(self, telemetry):
        import json

        from repro.obs.export import chrome_trace

        obs = telemetry
        seq = run_matrix(PAIRS, seed=1, jobs=1, cache=None)
        seq_counters = self._deterministic_counters(obs)
        seq_trace = json.dumps(
            chrome_trace(obs.tagged_spans(), obs.context_labels()), sort_keys=True
        )
        seq_contexts = obs.context_labels()
        assert seq_counters, "sequential run recorded no counters"

        obs.reset()
        par = run_matrix(PAIRS, seed=1, jobs=2, cache=None)
        par_counters = self._deterministic_counters(obs)
        par_trace = json.dumps(
            chrome_trace(obs.tagged_spans(), obs.context_labels()), sort_keys=True
        )

        assert par == seq
        assert obs.context_labels() == seq_contexts
        assert par_counters == seq_counters
        assert par_trace == seq_trace

    def test_registry_families_survive_merge(self, telemetry):
        obs = telemetry
        run_matrix([("crun-wamr", 10)], seed=1, jobs=2, cache=None)
        names = {family.name for family in obs.default_registry().collect()}
        # Worker-side registrations propagate through the merged deltas.
        assert "repro_scheduler_placements_total" in names
        assert "repro_kubelet_pod_syncs_total" in names


class TestTimeseriesJobsIdentity:
    """--timeseries-out/--profile-out at any --jobs N (tentpole acceptance).

    Stronger than counter-total equality: the TSDB log (samples + alert
    transitions), the collapsed guest profile, and the --wasi latency
    table must be *byte-identical* between --jobs 1 and --jobs 2. The
    sampler's determinism contract (cold caches per cell, baseline
    deltas, zero suppression, wall-clock exclusion) is what makes this
    hold; any leak of process warmth into the sampled stream fails here.
    """

    @pytest.fixture()
    def full_telemetry(self):
        from repro import obs
        from repro.obs import profile, timeseries

        was = obs.enabled()
        obs.set_enabled(True)
        obs.reset()
        timeseries.set_sampling(True, timeseries.DEFAULT_PERIOD)
        profile.set_profiling(True)
        yield obs
        profile.set_profiling(False)
        timeseries.set_sampling(False)
        obs.reset()
        obs.set_enabled(was)

    def _artifacts(self, obs):
        from repro.obs import profile, timeseries
        from repro.obs.export import (
            prometheus_text,
            render_wasi,
            timeseries_jsonl,
        )

        return {
            "timeseries": timeseries_jsonl(
                timeseries.default_db().tagged_entries(), obs.context_labels()
            ),
            "profile": profile.collapsed(),
            "wasi": render_wasi(prometheus_text(obs.default_registry())),
        }

    def test_artifacts_byte_identical_across_jobs(self, full_telemetry):
        obs = full_telemetry
        seq_results = run_matrix(PAIRS, seed=1, jobs=1, cache=None)
        seq = self._artifacts(obs)
        assert seq["timeseries"], "sequential run sampled nothing"
        assert '"kind": "alert"' in seq["timeseries"], (
            "no alert transition in the sampled stream"
        )
        assert "_start" in seq["profile"]
        assert "hostcalls" in seq["wasi"]

        obs.reset()
        par_results = run_matrix(PAIRS, seed=1, jobs=2, cache=None)
        par = self._artifacts(obs)

        assert par_results == seq_results
        assert par == seq


class TestAuditModeExperiments:
    def test_audit_measurement_identical_to_default(self, sequential, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_ACCOUNTING", "audit")
        audited = ExperimentRunner(seed=1).run("crun-wamr", 10)
        assert audited == sequential[("crun-wamr", 10)]

    def test_reference_measurement_identical_to_default(self, sequential, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_ACCOUNTING", "reference")
        referenced = ExperimentRunner(seed=1).run("crun-wamr", 10)
        assert referenced == sequential[("crun-wamr", 10)]
