"""Parallel experiment scheduler + persistent measurement cache."""

import json

import pytest

from repro.measure.cache import (
    MeasurementCache,
    measurement_from_dict,
    measurement_to_dict,
    source_tree_digest,
)
from repro.measure.experiment import ExperimentRunner, measure
from repro.measure.parallel import auto_jobs, run_matrix

PAIRS = [("crun-wamr", 10), ("crun-python", 10)]


@pytest.fixture(scope="module")
def sequential():
    return run_matrix(PAIRS, seed=1, jobs=1)


class TestRunMatrix:
    def test_sequential_matches_measure(self, sequential):
        for config, count in PAIRS:
            assert sequential[(config, count)] == measure(config, count, seed=1)

    def test_parallel_results_identical(self, sequential, tmp_path):
        parallel = run_matrix(
            PAIRS, seed=1, jobs=2, cache=MeasurementCache(tmp_path / "cache")
        )
        assert parallel == sequential

    def test_merge_order_is_caller_order(self, sequential):
        reversed_result = run_matrix(list(reversed(PAIRS)), seed=1, jobs=1)
        assert list(reversed_result) == list(reversed(PAIRS))
        assert dict(reversed_result) == dict(sequential)

    def test_no_cache_recomputes(self, sequential):
        fresh = run_matrix(PAIRS, seed=1, jobs=1, cache=None)
        assert fresh == sequential

    def test_auto_jobs_positive(self):
        assert auto_jobs() >= 1


class TestMeasurementCache:
    def test_roundtrip_is_exact(self, sequential, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        m = sequential[("crun-wamr", 10)]
        cache.put(1, "crun-wamr", 10, m)
        assert cache.get(1, "crun-wamr", 10) == m

    def test_miss_returns_none(self, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        assert cache.get(99, "crun-wamr", 10) is None

    def test_json_serialization_is_lossless(self, sequential):
        m = sequential[("crun-python", 10)]
        data = json.loads(json.dumps(measurement_to_dict(m)))
        assert measurement_from_dict(data) == m

    def test_entries_keyed_by_source_digest(self, sequential, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        m = sequential[("crun-wamr", 10)]
        cache.put(1, "crun-wamr", 10, m)
        (entry,) = (tmp_path / "cache").glob("*.json")
        assert entry.name.startswith(source_tree_digest()[:16])
        # A source-tree change produces a different digest prefix — the
        # stale entry is simply never read again.
        payload = json.loads(entry.read_text())
        assert payload["source_digest"] == source_tree_digest()

    def test_warm_run_skips_simulation(self, sequential, tmp_path, monkeypatch):
        cache = MeasurementCache(tmp_path / "cache")
        for (config, count), m in sequential.items():
            cache.put(1, config, count, m)

        def boom(self, *a, **k):  # pragma: no cover - must not run
            raise AssertionError("cache miss: simulation ran on a warm cache")

        monkeypatch.setattr(ExperimentRunner, "run", boom)
        warm = run_matrix(PAIRS, seed=1, jobs=2, cache=cache)
        assert warm == sequential


class TestAuditModeExperiments:
    def test_audit_measurement_identical_to_default(self, sequential, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_ACCOUNTING", "audit")
        audited = ExperimentRunner(seed=1).run("crun-wamr", 10)
        assert audited == sequential[("crun-wamr", 10)]

    def test_reference_measurement_identical_to_default(self, sequential, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_ACCOUNTING", "reference")
        referenced = ExperimentRunner(seed=1).run("crun-wamr", 10)
        assert referenced == sequential[("crun-wamr", 10)]
