"""RNG streams and CPU pressure model."""

import pytest

from repro.sim.cpu import CpuModel
from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_name_reproduces(self):
        a = RngStreams(42).stream("jitter").normal(size=10)
        b = RngStreams(42).stream("jitter").normal(size=10)
        assert (a == b).all()

    def test_different_names_are_independent(self):
        r = RngStreams(42)
        a = r.stream("a").normal(size=10)
        b = r.stream("b").normal(size=10)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").normal(size=10)
        b = RngStreams(2).stream("x").normal(size=10)
        assert not (a == b).all()

    def test_stream_is_cached(self):
        r = RngStreams(0)
        assert r.stream("x") is r.stream("x")

    def test_jitter_is_nonnegative(self):
        r = RngStreams(3)
        assert all(r.jitter("j", 0.5) >= 0 for _ in range(100))

    def test_fork_changes_draws(self):
        base = RngStreams(5)
        fork = base.fork(1)
        assert fork.seed != base.seed
        a = base.stream("x").normal(size=5)
        b = fork.stream("x").normal(size=5)
        assert not (a == b).all()

    def test_name_hash_is_stable_across_instances(self):
        # crc32-based derivation: no process-salted hash() involved.
        a = RngStreams(9).stream("startup/pod-1").integers(0, 1000, size=4)
        b = RngStreams(9).stream("startup/pod-1").integers(0, 1000, size=4)
        assert (a == b).all()


class TestCpuModel:
    def test_no_pressure_at_idle(self):
        cpu = CpuModel()
        assert cpu.pressure_factor(0, 0) == 1.0

    def test_pressure_grows_with_processes(self):
        cpu = CpuModel()
        assert cpu.pressure_factor(400, 0) > cpu.pressure_factor(10, 0)

    def test_pressure_grows_with_memory_beyond_floor(self):
        cpu = CpuModel()
        floor = int(cpu.pressure_floor_gib * 1024**3)
        assert cpu.pressure_factor(0, floor * 2) > cpu.pressure_factor(0, floor)

    def test_memory_below_floor_is_free(self):
        cpu = CpuModel()
        assert cpu.pressure_factor(0, 1024**3) == 1.0

    def test_run_queue_capacity_is_cores(self):
        cpu = CpuModel(cores=20)
        assert cpu.make_run_queue().capacity == 20
