"""Unit tests for the deterministic fault-injection plan."""

import pytest

from repro.errors import FaultInjected, SimulationError
from repro.sim.faults import (
    GUEST_RUNTIME_POINTS,
    FaultPlan,
    FaultPoint,
    FaultSpec,
    ambient,
    count_disabled_guards,
    fault_scope,
    full_lifecycle_plan,
    guard_calls,
    transient_plan,
)


def test_spec_validation():
    with pytest.raises(SimulationError):
        FaultSpec(FaultPoint.IMAGE_PULL, probability=1.5)
    with pytest.raises(SimulationError):
        FaultSpec(FaultPoint.IMAGE_PULL, probability=-0.1)
    with pytest.raises(SimulationError):
        FaultSpec(FaultPoint.IMAGE_PULL, probability=0.5, max_occurrences=-1)
    with pytest.raises(SimulationError):
        FaultPlan(
            [
                FaultSpec(FaultPoint.IMAGE_PULL, probability=0.5),
                FaultSpec(FaultPoint.IMAGE_PULL, probability=0.2),
            ]
        )


def test_unarmed_points_never_fire():
    plan = FaultPlan([FaultSpec(FaultPoint.IMAGE_PULL, probability=1.0)])
    assert plan.check(FaultPoint.ENGINE_COMPILE, "pod-1") is None
    assert plan.check(FaultPoint.MAIN_EXEC, "pod-1") is None
    # Unarmed checks don't even count as draws.
    assert plan.checks == 0


def test_probability_edges():
    always = FaultPlan([FaultSpec(FaultPoint.IMAGE_PULL, probability=1.0)])
    never = FaultPlan([FaultSpec(FaultPoint.IMAGE_PULL, probability=0.0)])
    for i in range(20):
        assert always.check(FaultPoint.IMAGE_PULL, f"pod-{i}") is not None
        assert never.check(FaultPoint.IMAGE_PULL, f"pod-{i}") is None
    assert always.count(FaultPoint.IMAGE_PULL) == 20
    assert never.count(FaultPoint.IMAGE_PULL) == 0


def test_budget_limits_total_firings():
    plan = FaultPlan(
        [FaultSpec(FaultPoint.IMAGE_PULL, probability=1.0, max_occurrences=3)]
    )
    fired = [
        plan.check(FaultPoint.IMAGE_PULL, f"pod-{i}") for i in range(10)
    ]
    assert sum(1 for f in fired if f is not None) == 3
    # The three that fired have 1-based occurrence numbers.
    assert [f.occurrence for f in fired if f is not None] == [1, 2, 3]
    assert plan.count(FaultPoint.IMAGE_PULL) == 3
    assert plan.summary() == {"image.pull": 3}


def test_same_seed_same_pattern():
    def pattern(seed):
        plan = transient_plan(seed=seed)
        return tuple(
            plan.check(point, f"pod-{i}") is not None
            for point in (FaultPoint.IMAGE_PULL, FaultPoint.ENGINE_COMPILE)
            for i in range(50)
        )

    assert pattern(7) == pattern(7)
    assert pattern(7) != pattern(8)


def test_outcome_independent_of_check_order():
    """Per-(point, key) streams: interleaving doesn't change outcomes."""
    keys = [f"pod-{i}" for i in range(30)]

    forward = FaultPlan([FaultSpec(FaultPoint.IMAGE_PULL, probability=0.4)], seed=3)
    backward = FaultPlan([FaultSpec(FaultPoint.IMAGE_PULL, probability=0.4)], seed=3)
    got_fwd = {k: forward.check(FaultPoint.IMAGE_PULL, k) is not None for k in keys}
    got_bwd = {
        k: backward.check(FaultPoint.IMAGE_PULL, k) is not None
        for k in reversed(keys)
    }
    assert got_fwd == got_bwd


def test_retry_draws_next_value_of_same_stream():
    """Same (point, key) re-checked draws the stream's next value, so a
    transient fault can clear on a later attempt — deterministically."""
    plan = FaultPlan([FaultSpec(FaultPoint.IMAGE_PULL, probability=0.5)], seed=11)
    outcomes = [
        plan.check(FaultPoint.IMAGE_PULL, "pod-1") is not None for _ in range(64)
    ]
    again = FaultPlan([FaultSpec(FaultPoint.IMAGE_PULL, probability=0.5)], seed=11)
    outcomes2 = [
        again.check(FaultPoint.IMAGE_PULL, "pod-1") is not None for _ in range(64)
    ]
    assert outcomes == outcomes2
    # With p=0.5 over 64 draws, both outcomes must occur.
    assert True in outcomes and False in outcomes


def test_raise_if_fires_carries_classification():
    plan = FaultPlan(
        [
            FaultSpec(
                FaultPoint.ENGINE_COMPILE,
                probability=1.0,
                transient=False,
                message="compiler segfault",
            )
        ]
    )
    with pytest.raises(FaultInjected) as excinfo:
        plan.raise_if_fires(FaultPoint.ENGINE_COMPILE, "pod-9")
    exc = excinfo.value
    assert exc.point == "engine.compile"
    assert exc.transient is False
    assert "compiler segfault" in str(exc)
    assert "pod-9" in str(exc)


def test_fired_log_records_every_injection():
    plan = FaultPlan([FaultSpec(FaultPoint.CRI_RPC, probability=1.0)])
    with pytest.raises(FaultInjected):
        plan.raise_if_fires(FaultPoint.CRI_RPC, "RunPodSandbox/p1")
    with pytest.raises(FaultInjected):
        plan.raise_if_fires(FaultPoint.CRI_RPC, "CreateContainer/p1")
    assert [f.key for f in plan.fired] == [
        "RunPodSandbox/p1",
        "CreateContainer/p1",
    ]
    assert all(f.point is FaultPoint.CRI_RPC for f in plan.fired)
    assert plan.checks == 2


# -- structured fault context (message + metric) ------------------------------


def test_raise_if_fires_carries_structured_context():
    plan = FaultPlan(
        [FaultSpec(FaultPoint.GUEST_TRAP, probability=1.0, max_occurrences=2)]
    )
    with pytest.raises(FaultInjected):
        plan.raise_if_fires(FaultPoint.GUEST_TRAP, "pod-7")
    with pytest.raises(FaultInjected) as excinfo:
        plan.raise_if_fires(FaultPoint.GUEST_TRAP, "pod-7")
    exc = excinfo.value
    # The message alone (what a pod's status_message shows) pins down the
    # injection site, the victim, and which occurrence this was.
    assert "point=guest.trap" in str(exc)
    assert "key=pod-7" in str(exc)
    assert "occurrence=2" in str(exc)
    assert exc.point == "guest.trap"
    assert exc.key == "pod-7"
    assert exc.occurrence == 2
    assert exc.transient is True


def test_fired_metric_counts_by_point_and_kind():
    from repro import obs

    def fired(point, kind):
        fam = obs.default_registry().get("repro_faults_fired_total")
        assert fam is not None  # always=True: registered even when disabled
        return fam.labels(point, kind).value

    before_t = fired("image.pull", "transient")
    before_p = fired("engine.instantiate", "permanent")
    plan = FaultPlan(
        [
            FaultSpec(FaultPoint.IMAGE_PULL, probability=1.0, max_occurrences=2),
            FaultSpec(
                FaultPoint.ENGINE_INSTANTIATE,
                probability=1.0,
                transient=False,
                max_occurrences=1,
            ),
        ]
    )
    for _ in range(3):  # third check is over budget: no fire, no count
        plan.check(FaultPoint.IMAGE_PULL, "p")
    plan.check(FaultPoint.ENGINE_INSTANTIATE, "p")
    assert fired("image.pull", "transient") == before_t + 2
    assert fired("engine.instantiate", "permanent") == before_p + 1


def test_arms_any():
    plan = FaultPlan(
        [
            FaultSpec(FaultPoint.GUEST_TRAP, probability=0.5),
            FaultSpec(FaultPoint.WASI_SYSCALL, probability=0.0),
        ]
    )
    assert plan.arms_any((FaultPoint.GUEST_TRAP,))
    assert plan.arms_any(GUEST_RUNTIME_POINTS)
    # probability=0 counts as unarmed for bypass decisions.
    assert not plan.arms_any((FaultPoint.WASI_SYSCALL,))
    assert not plan.arms_any((FaultPoint.IMAGE_PULL,))


# -- ambient fault context ----------------------------------------------------


class TestFaultScope:
    def test_scope_arms_and_disarms(self):
        plan = FaultPlan([FaultSpec(FaultPoint.GUEST_TRAP, probability=1.0)])
        assert ambient() is None
        with fault_scope(plan, "pod-1"):
            assert ambient() == (plan, "pod-1")
        assert ambient() is None

    def test_none_plan_is_noop(self):
        with fault_scope(None, "pod-1"):
            assert ambient() is None

    def test_scope_cleared_on_exception(self):
        plan = FaultPlan([])
        with pytest.raises(RuntimeError):
            with fault_scope(plan, "pod-1"):
                raise RuntimeError("guest blew up")
        assert ambient() is None

    def test_nested_scope_rejected(self):
        plan = FaultPlan([])
        with fault_scope(plan, "outer"):
            with pytest.raises(SimulationError):
                with fault_scope(plan, "inner"):
                    pass
        assert ambient() is None

    def test_guard_counting(self):
        with count_disabled_guards():
            assert guard_calls() == 0
            ambient()
            ambient()
            assert guard_calls() == 2
        # Outside the scope, calls are no longer counted.
        ambient()
        assert guard_calls() == 2


# -- full-lifecycle plan ------------------------------------------------------


def test_full_lifecycle_plan_arms_every_stage():
    plan = full_lifecycle_plan(seed=3, rate=0.25)
    for point in (
        FaultPoint.IMAGE_PULL,
        FaultPoint.ENGINE_COMPILE,
        FaultPoint.GUEST_TRAP,
        FaultPoint.GUEST_EXHAUST,
        FaultPoint.WASI_SYSCALL,
        FaultPoint.ZYGOTE_CORRUPT,
        FaultPoint.CACHE_CORRUPT,
        FaultPoint.METRICS_SCRAPE,
        FaultPoint.PROBE_LIVENESS,
        FaultPoint.PROBE_READINESS,
    ):
        spec = plan.spec(point)
        assert spec is not None and spec.transient and spec.probability == 0.25
        assert spec.max_occurrences == 40
    inst = plan.spec(FaultPoint.ENGINE_INSTANTIATE)
    assert inst is not None and not inst.transient and inst.max_occurrences == 5


def test_full_lifecycle_plan_total_firings_bounded():
    plan = full_lifecycle_plan(seed=1, rate=1.0, budget_per_point=2,
                               permanent_budget=1)
    for point in FaultPoint:
        for i in range(100):
            plan.check(point, f"k{i}")
    assert plan.count(FaultPoint.GUEST_TRAP) == 2
    assert plan.count(FaultPoint.ENGINE_INSTANTIATE) == 1
    assert len(plan.fired) == 10 * 2 + 1
