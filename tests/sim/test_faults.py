"""Unit tests for the deterministic fault-injection plan."""

import pytest

from repro.errors import FaultInjected, SimulationError
from repro.sim.faults import (
    FaultPlan,
    FaultPoint,
    FaultSpec,
    transient_plan,
)


def test_spec_validation():
    with pytest.raises(SimulationError):
        FaultSpec(FaultPoint.IMAGE_PULL, probability=1.5)
    with pytest.raises(SimulationError):
        FaultSpec(FaultPoint.IMAGE_PULL, probability=-0.1)
    with pytest.raises(SimulationError):
        FaultSpec(FaultPoint.IMAGE_PULL, probability=0.5, max_occurrences=-1)
    with pytest.raises(SimulationError):
        FaultPlan(
            [
                FaultSpec(FaultPoint.IMAGE_PULL, probability=0.5),
                FaultSpec(FaultPoint.IMAGE_PULL, probability=0.2),
            ]
        )


def test_unarmed_points_never_fire():
    plan = FaultPlan([FaultSpec(FaultPoint.IMAGE_PULL, probability=1.0)])
    assert plan.check(FaultPoint.ENGINE_COMPILE, "pod-1") is None
    assert plan.check(FaultPoint.MAIN_EXEC, "pod-1") is None
    # Unarmed checks don't even count as draws.
    assert plan.checks == 0


def test_probability_edges():
    always = FaultPlan([FaultSpec(FaultPoint.IMAGE_PULL, probability=1.0)])
    never = FaultPlan([FaultSpec(FaultPoint.IMAGE_PULL, probability=0.0)])
    for i in range(20):
        assert always.check(FaultPoint.IMAGE_PULL, f"pod-{i}") is not None
        assert never.check(FaultPoint.IMAGE_PULL, f"pod-{i}") is None
    assert always.count(FaultPoint.IMAGE_PULL) == 20
    assert never.count(FaultPoint.IMAGE_PULL) == 0


def test_budget_limits_total_firings():
    plan = FaultPlan(
        [FaultSpec(FaultPoint.IMAGE_PULL, probability=1.0, max_occurrences=3)]
    )
    fired = [
        plan.check(FaultPoint.IMAGE_PULL, f"pod-{i}") for i in range(10)
    ]
    assert sum(1 for f in fired if f is not None) == 3
    # The three that fired have 1-based occurrence numbers.
    assert [f.occurrence for f in fired if f is not None] == [1, 2, 3]
    assert plan.count(FaultPoint.IMAGE_PULL) == 3
    assert plan.summary() == {"image.pull": 3}


def test_same_seed_same_pattern():
    def pattern(seed):
        plan = transient_plan(seed=seed)
        return tuple(
            plan.check(point, f"pod-{i}") is not None
            for point in (FaultPoint.IMAGE_PULL, FaultPoint.ENGINE_COMPILE)
            for i in range(50)
        )

    assert pattern(7) == pattern(7)
    assert pattern(7) != pattern(8)


def test_outcome_independent_of_check_order():
    """Per-(point, key) streams: interleaving doesn't change outcomes."""
    keys = [f"pod-{i}" for i in range(30)]

    forward = FaultPlan([FaultSpec(FaultPoint.IMAGE_PULL, probability=0.4)], seed=3)
    backward = FaultPlan([FaultSpec(FaultPoint.IMAGE_PULL, probability=0.4)], seed=3)
    got_fwd = {k: forward.check(FaultPoint.IMAGE_PULL, k) is not None for k in keys}
    got_bwd = {
        k: backward.check(FaultPoint.IMAGE_PULL, k) is not None
        for k in reversed(keys)
    }
    assert got_fwd == got_bwd


def test_retry_draws_next_value_of_same_stream():
    """Same (point, key) re-checked draws the stream's next value, so a
    transient fault can clear on a later attempt — deterministically."""
    plan = FaultPlan([FaultSpec(FaultPoint.IMAGE_PULL, probability=0.5)], seed=11)
    outcomes = [
        plan.check(FaultPoint.IMAGE_PULL, "pod-1") is not None for _ in range(64)
    ]
    again = FaultPlan([FaultSpec(FaultPoint.IMAGE_PULL, probability=0.5)], seed=11)
    outcomes2 = [
        again.check(FaultPoint.IMAGE_PULL, "pod-1") is not None for _ in range(64)
    ]
    assert outcomes == outcomes2
    # With p=0.5 over 64 draws, both outcomes must occur.
    assert True in outcomes and False in outcomes


def test_raise_if_fires_carries_classification():
    plan = FaultPlan(
        [
            FaultSpec(
                FaultPoint.ENGINE_COMPILE,
                probability=1.0,
                transient=False,
                message="compiler segfault",
            )
        ]
    )
    with pytest.raises(FaultInjected) as excinfo:
        plan.raise_if_fires(FaultPoint.ENGINE_COMPILE, "pod-9")
    exc = excinfo.value
    assert exc.point == "engine.compile"
    assert exc.transient is False
    assert "compiler segfault" in str(exc)
    assert "pod-9" in str(exc)


def test_fired_log_records_every_injection():
    plan = FaultPlan([FaultSpec(FaultPoint.CRI_RPC, probability=1.0)])
    with pytest.raises(FaultInjected):
        plan.raise_if_fires(FaultPoint.CRI_RPC, "RunPodSandbox/p1")
    with pytest.raises(FaultInjected):
        plan.raise_if_fires(FaultPoint.CRI_RPC, "CreateContainer/p1")
    assert [f.key for f in plan.fired] == [
        "RunPodSandbox/p1",
        "CreateContainer/p1",
    ]
    assert all(f.point is FaultPoint.CRI_RPC for f in plan.fired)
    assert plan.checks == 2
