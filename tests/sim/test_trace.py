"""Tracer unit tests + end-to-end startup phase spans."""

import pytest

from repro.sim.trace import Span, Tracer


class TestTracer:
    def test_record_and_query(self):
        t = Tracer()
        t.record("phase.a", "x", 0.0, 1.0, config="c1")
        t.record("phase.a", "y", 1.0, 3.0, config="c2")
        t.record("phase.b", "x", 0.0, 0.5, config="c1")
        assert len(t.by_category("phase.a")) == 2
        assert t.phase_totals() == {"phase.a": 3.0, "phase.b": 0.5}
        assert t.phase_means()["phase.a"] == 1.5

    def test_attr_filtering(self):
        t = Tracer()
        t.record("p", "a", 0.0, 1.0, config="c1")
        t.record("p", "b", 0.0, 2.0, config="c2")
        assert t.phase_totals(config="c1") == {"p": 1.0}
        assert [s.name for s in t.filtered(config="c2")] == ["b"]

    def test_negative_span_rejected(self):
        with pytest.raises(ValueError):
            Tracer().record("p", "x", 2.0, 1.0)

    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        t.record("p", "x", 0.0, 1.0)
        assert t.spans == []

    def test_span_attr_access(self):
        s = Span("c", "n", 0.0, 1.0, (("k", "v"),))
        assert s.attr("k") == "v" and s.attr("missing") is None
        assert s.duration == 1.0

    def test_clear(self):
        t = Tracer()
        t.record("p", "x", 0.0, 1.0)
        t.clear()
        assert t.spans == []


class TestTracerIndex:
    """by_category/filtered are index-backed; clear() resets the index."""

    def test_by_category_uses_index(self):
        t = Tracer()
        for i in range(5):
            t.record("a", f"s{i}", float(i), float(i) + 0.5)
        t.record("b", "x", 0.0, 1.0)
        assert len(t.by_category("a")) == 5
        assert [s.name for s in t.by_category("b")] == ["x"]
        assert t.by_category("missing") == []
        assert t.categories() == ["a", "b"]

    def test_clear_resets_index(self):
        t = Tracer()
        t.record("a", "x", 0.0, 1.0, config="c")
        t.clear()
        assert t.by_category("a") == []
        assert t.filtered(config="c") == []
        assert t.categories() == []
        # The tracer still works after a clear.
        t.record("a", "y", 0.0, 1.0)
        assert [s.name for s in t.by_category("a")] == ["y"]

    def test_filtered_multiple_attrs(self):
        t = Tracer()
        t.record("p", "a", 0.0, 1.0, config="c1", reason="r1")
        t.record("p", "b", 0.0, 1.0, config="c1", reason="r2")
        t.record("p", "c", 0.0, 1.0, config="c2", reason="r1")
        assert [s.name for s in t.filtered(config="c1", reason="r1")] == ["a"]
        assert [s.name for s in t.filtered(reason="r1")] == ["a", "c"]
        assert t.filtered(config="c3") == []

    def test_presupplied_spans_are_indexed(self):
        spans = [Span("a", "x", 0.0, 1.0, (("k", "v"),))]
        t = Tracer(spans=spans)
        assert t.by_category("a") == spans
        assert t.filtered(k="v") == spans

    def test_sink_mirrors_records(self):
        seen = []
        t = Tracer(sink=seen.append)
        t.record("a", "x", 0.0, 1.0)
        t.record("b", "y", 1.0, 2.0)
        assert seen == t.spans
        # Disabled tracers don't feed the sink either.
        quiet = Tracer(enabled=False, sink=seen.append)
        quiet.record("c", "z", 0.0, 1.0)
        assert len(seen) == 2


class TestStartupSpans:
    def test_deployment_produces_phase_spans(self, cluster):
        pods = cluster.deploy_and_wait("crun-wamr", 4)
        tracer = cluster.node.env.tracer
        means = tracer.phase_means(config="crun-wamr")
        for phase in ("startup.pipeline", "startup.serialized", "startup.parallel", "startup.exec"):
            assert phase in means, phase
        # One span per pod for the pipeline, one per container otherwise.
        assert len(tracer.by_category("startup.pipeline")) == 4
        assert len(tracer.by_category("startup.parallel")) == 4
        # Phases are ordered in time for each container.
        for pod in pods:
            cid = cluster.node.kubelet.pod_containers[pod.uid][0].container_id
            serialized = [s for s in tracer.by_category("startup.serialized") if s.name == cid][0]
            parallel = [s for s in tracer.by_category("startup.parallel") if s.name == cid][0]
            assert serialized.end <= parallel.start + 1e-9

    def test_phase_means_reach_measurement(self):
        from repro.measure.experiment import ExperimentRunner

        m = ExperimentRunner(seed=13).run("crun-wasmtime", 6)
        assert m.phase_means["startup.parallel"] > m.phase_means["startup.serialized"]
        # Pipeline dominates small deployments.
        assert m.phase_means["startup.pipeline"] > m.phase_means["startup.parallel"]

    def test_phases_explain_makespan(self):
        """pipeline + serialized-wait + parallel + (exec) ≈ last start."""
        from repro.measure.experiment import ExperimentRunner

        m = ExperimentRunner(seed=13).run("crun-wamr", 8)
        lower = m.phase_means["startup.pipeline"]
        assert m.startup_seconds > lower
        assert m.startup_seconds < lower + 8 * 0.1 + 1.0  # loose upper bound
