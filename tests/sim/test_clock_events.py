"""Clock and event-queue unit tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advance_to_same_time_is_ok(self):
        clock = SimClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_no_time_travel(self):
        clock = SimClock(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(9.999)


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.push(2.0, lambda: fired.append("b"))
        q.push(1.0, lambda: fired.append("a"))
        q.push(3.0, lambda: fired.append("c"))
        while (ev := q.pop()) is not None:
            ev.callback()
        assert fired == ["a", "b", "c"]

    def test_fifo_within_same_time(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.push(1.0, lambda i=i: fired.append(i))
        while (ev := q.pop()) is not None:
            ev.callback()
        assert fired == [0, 1, 2, 3, 4]

    def test_len_tracks_live_events(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        q.cancel(e1)
        assert len(q) == 1

    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None, label="first")
        q.push(2.0, lambda: None, label="second")
        q.cancel(e1)
        popped = q.pop()
        assert popped is not None and popped.label == "second"

    def test_double_cancel_is_idempotent(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        q.cancel(e1)
        assert q.peek_time() == 5.0

    def test_empty_pop_returns_none(self):
        assert EventQueue().pop() is None

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("nan"), lambda: None)
