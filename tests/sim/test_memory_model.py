"""SystemMemoryModel: RSS, sharing, cgroup charging, free(1)."""

import pytest

from repro.errors import SimulationError
from repro.sim.memory import GIB, MIB, SystemMemoryModel
from repro.sim.process import MemorySegment, SegmentKind


@pytest.fixture()
def memory() -> SystemMemoryModel:
    return SystemMemoryModel(total_bytes=8 * GIB, kernel_base=100 * MIB)


class TestProcessAccounting:
    def test_private_counts_fully(self, memory):
        p = memory.spawn("app", cgroup="/pods/a")
        memory.map_private(p, 10 * MIB)
        assert p.private_bytes() == 10 * MIB
        assert p.rss() == 10 * MIB

    def test_rss_includes_full_shared_mapping(self, memory):
        p1 = memory.spawn("a")
        p2 = memory.spawn("b")
        memory.map_file(p1, "lib.so", 4 * MIB)
        memory.map_file(p2, "lib.so", 4 * MIB)
        # Linux semantics: both RSS values include the mapping fully...
        assert p1.rss() == p2.rss() == 4 * MIB
        # ...but the node pays once.
        assert memory.node_working_set() == 4 * MIB

    def test_mismatched_file_size_rejected(self, memory):
        p1 = memory.spawn("a")
        p2 = memory.spawn("b")
        memory.map_file(p1, "lib.so", 4 * MIB)
        with pytest.raises(SimulationError):
            memory.map_file(p2, "lib.so", 8 * MIB)

    def test_exit_releases_private_and_mappings(self, memory):
        p = memory.spawn("app")
        memory.map_private(p, 10 * MIB)
        memory.map_file(p, "lib.so", 2 * MIB)
        memory.exit(p)
        assert memory.node_working_set() == 0
        assert memory.file_mapper_count("lib.so") == 0

    def test_exit_is_idempotent(self, memory):
        p = memory.spawn("app")
        memory.exit(p)
        memory.exit(p)  # no error

    def test_find_by_name_prefix(self, memory):
        memory.spawn("containerd-shim-a")
        memory.spawn("containerd-shim-b")
        memory.spawn("other")
        assert len(memory.find("containerd-shim")) == 2

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            MemorySegment(SegmentKind.PRIVATE, -1)
        with pytest.raises(ValueError):
            MemorySegment(SegmentKind.FILE_TEXT, 10)  # no file_key


class TestCgroupCharging:
    def test_first_toucher_pays_for_shared_file(self, memory):
        p1 = memory.spawn("a", cgroup="/pods/a")
        p2 = memory.spawn("b", cgroup="/pods/b")
        memory.map_file(p1, "lib.so", 4 * MIB)
        memory.map_file(p2, "lib.so", 4 * MIB)
        assert memory.cgroup_working_set("/pods/a") == 4 * MIB
        assert memory.cgroup_working_set("/pods/b") == 0

    def test_charge_migrates_when_first_toucher_exits(self, memory):
        p1 = memory.spawn("a", cgroup="/pods/a")
        p2 = memory.spawn("b", cgroup="/pods/b")
        memory.map_file(p1, "lib.so", 4 * MIB)
        memory.map_file(p2, "lib.so", 4 * MIB)
        memory.exit(p1)
        assert memory.cgroup_working_set("/pods/b") == 4 * MIB

    def test_cgroup_prefix_aggregation(self, memory):
        p1 = memory.spawn("a", cgroup="/kubepods/pod1")
        p2 = memory.spawn("b", cgroup="/kubepods/pod2")
        memory.map_private(p1, 1 * MIB)
        memory.map_private(p2, 2 * MIB)
        assert memory.cgroup_working_set("/kubepods") == 3 * MIB
        assert memory.cgroup_working_set("/kubepods/pod2") == 2 * MIB

    def test_unrelated_cgroup_sees_nothing(self, memory):
        p = memory.spawn("a", cgroup="/system/daemon")
        memory.map_private(p, 5 * MIB)
        assert memory.cgroup_working_set("/kubepods") == 0


class TestFreeReport:
    def test_conservation(self, memory):
        p = memory.spawn("a")
        memory.map_private(p, 100 * MIB)
        memory.touch_page_cache("layer1", 50 * MIB)
        report = memory.free_report()
        assert report.total == 8 * GIB
        assert report.used + report.free + report.buff_cache == report.total

    def test_used_includes_kernel_and_processes(self, memory):
        baseline = memory.free_report().used
        p = memory.spawn("a")
        memory.map_private(p, 64 * MIB)
        assert memory.free_report().used == baseline + 64 * MIB

    def test_shared_file_counted_once_in_used(self, memory):
        before = memory.free_report().used
        p1 = memory.spawn("a")
        p2 = memory.spawn("b")
        memory.map_file(p1, "lib.so", 10 * MIB)
        memory.map_file(p2, "lib.so", 10 * MIB)
        assert memory.free_report().used == before + 10 * MIB

    def test_page_cache_in_buff_cache_not_used(self, memory):
        before = memory.free_report()
        memory.touch_page_cache("layer", 30 * MIB)
        after = memory.free_report()
        assert after.used == before.used
        assert after.buff_cache == before.buff_cache + 30 * MIB

    def test_page_cache_touch_takes_max(self, memory):
        memory.touch_page_cache("layer", 30 * MIB)
        memory.touch_page_cache("layer", 10 * MIB)
        assert memory.free_report().buff_cache == 30 * MIB

    def test_drop_page_cache(self, memory):
        memory.touch_page_cache("layer", 30 * MIB)
        memory.drop_page_cache("layer")
        assert memory.free_report().buff_cache == 0

    def test_oom_raises_at_allocation(self):
        from repro.errors import OutOfMemory

        small = SystemMemoryModel(total_bytes=64 * MIB, kernel_base=0)
        p = small.spawn("big")
        with pytest.raises(OutOfMemory, match="exhausted"):
            small.map_private(p, 65 * MIB)

    def test_allocation_up_to_limit_succeeds(self):
        small = SystemMemoryModel(total_bytes=64 * MIB, kernel_base=0)
        p = small.spawn("fits")
        small.map_private(p, 64 * MIB)
        assert small.free_report().free == 0

    def test_kernel_overhead_tracking(self, memory):
        before = memory.free_report().used
        memory.add_kernel_overhead(1 * MIB)
        assert memory.free_report().used == before + 1 * MIB
        memory.remove_kernel_overhead(1 * MIB)
        assert memory.free_report().used == before
        with pytest.raises(SimulationError):
            memory.remove_kernel_overhead(10 * GIB)


class TestFileSizeValidation:
    """map_file validates against the tracked size, not the first mapper's
    segments — the old scan silently skipped the check once the first
    mapper's segment was gone."""

    def test_mismatch_rejected_after_first_mapper_drops_mapping(self, memory):
        p1 = memory.spawn("a")
        p2 = memory.spawn("b")
        k1 = memory.map_file(p1, "lib.so", 4 * MIB)
        memory.map_file(p2, "lib.so", 4 * MIB)
        p1.drop_segment(k1)
        p3 = memory.spawn("c")
        with pytest.raises(SimulationError, match="lib.so"):
            memory.map_file(p3, "lib.so", 8 * MIB)

    def test_mismatch_rejected_after_first_mapper_exits(self, memory):
        p1 = memory.spawn("a")
        p2 = memory.spawn("b")
        memory.map_file(p1, "lib.so", 4 * MIB)
        memory.map_file(p2, "lib.so", 4 * MIB)
        memory.exit(p1)
        p3 = memory.spawn("c")
        with pytest.raises(SimulationError, match="lib.so"):
            memory.map_file(p3, "lib.so", 8 * MIB)

    def test_fully_unmapped_file_can_remap_with_new_size(self, memory):
        p1 = memory.spawn("a")
        k1 = memory.map_file(p1, "lib.so", 4 * MIB)
        p1.drop_segment(k1)
        assert memory.file_mapper_count("lib.so") == 0
        p2 = memory.spawn("b")
        memory.map_file(p2, "lib.so", 8 * MIB)
        assert memory.node_working_set() == 8 * MIB


class TestMunmapSemantics:
    def test_drop_segment_releases_file_claim(self, memory):
        p1 = memory.spawn("a", cgroup="/pods/a")
        p2 = memory.spawn("b", cgroup="/pods/b")
        k1 = memory.map_file(p1, "lib.so", 4 * MIB)
        k2 = memory.map_file(p2, "lib.so", 4 * MIB)
        p1.drop_segment(k1)
        # Node still pays once (p2 maps it); charge migrated to p2.
        assert memory.file_mapper_count("lib.so") == 1
        assert memory.node_working_set() == 4 * MIB
        assert memory.cgroup_working_set("/pods/a") == 0
        assert memory.cgroup_working_set("/pods/b") == 4 * MIB
        p2.drop_segment(k2)
        assert memory.node_working_set() == 0
        assert memory.file_mapper_count("lib.so") == 0

    def test_drop_private_segment_updates_ledger(self, memory):
        p = memory.spawn("a", cgroup="/pods/a")
        key = memory.map_private(p, 10 * MIB)
        p.drop_segment(key)
        assert p.private_bytes() == 0
        assert memory.node_working_set() == 0
        assert memory.cgroup_working_set("/pods/a") == 0

    def test_resize_private_segment_updates_ledger(self, memory):
        p = memory.spawn("a", cgroup="/pods/a")
        key = memory.map_private(p, 10 * MIB)
        p.resize_segment(key, 4 * MIB)
        assert p.private_bytes() == 4 * MIB
        assert memory.cgroup_working_set("/pods/a") == 4 * MIB
        assert memory.free_report().used == 100 * MIB + 4 * MIB


class TestCowSegments:
    """Zygote clones: shared snapshot extent + per-process dirty split."""

    def test_clones_pay_snapshot_once_plus_dirty(self, memory):
        p1 = memory.spawn("a", cgroup="/pods/a")
        p2 = memory.spawn("b", cgroup="/pods/b")
        memory.map_cow(p1, "zygote/svc", 4 * MIB)
        k2 = memory.map_cow(p2, "zygote/svc", 4 * MIB)
        assert memory.node_working_set() == 4 * MIB
        p2.cow_split(k2, 1 * MIB)
        # Original pages stay resident; the copy is additional private.
        assert memory.node_working_set() == 5 * MIB
        assert p2.private_bytes() == 1 * MIB
        # RSS stays the mapping size: each dirty page *replaces* the
        # shared page in the writer's address space (Linux semantics);
        # the extra node-wide cost is the still-resident original.
        assert p1.rss() == 4 * MIB
        assert p2.rss() == 4 * MIB

    def test_first_toucher_charged_dirty_split_charged_to_writer(self, memory):
        p1 = memory.spawn("a", cgroup="/pods/a")
        p2 = memory.spawn("b", cgroup="/pods/b")
        memory.map_cow(p1, "zygote/svc", 4 * MIB)
        k2 = memory.map_cow(p2, "zygote/svc", 4 * MIB)
        assert memory.cgroup_working_set("/pods/a") == 4 * MIB
        assert memory.cgroup_working_set("/pods/b") == 0
        p2.cow_split(k2, 1 * MIB)
        assert memory.cgroup_working_set("/pods/a") == 4 * MIB
        assert memory.cgroup_working_set("/pods/b") == 1 * MIB

    def test_charge_migrates_when_owner_exits(self, memory):
        p1 = memory.spawn("a", cgroup="/pods/a")
        p2 = memory.spawn("b", cgroup="/pods/b")
        memory.map_cow(p1, "zygote/svc", 4 * MIB)
        memory.map_cow(p2, "zygote/svc", 4 * MIB)
        memory.exit(p1)
        assert memory.cgroup_working_set("/pods/b") == 4 * MIB
        assert memory.node_working_set() == 4 * MIB

    def test_unsplit_resharing_returns_bytes(self, memory):
        p = memory.spawn("a", cgroup="/pods/a")
        key = memory.map_cow(p, "zygote/svc", 4 * MIB)
        p.cow_split(key, 2 * MIB)
        p.cow_unsplit(key, 1 * MIB)
        assert p.private_bytes() == 1 * MIB
        assert memory.node_working_set() == 5 * MIB
        memory.verify_accounting()

    def test_split_bounds_enforced(self, memory):
        p = memory.spawn("a")
        key = memory.map_cow(p, "zygote/svc", 4 * MIB)
        with pytest.raises(ValueError):
            p.cow_split(key, 5 * MIB)
        with pytest.raises(ValueError):
            p.cow_unsplit(key, 1)

    def test_resize_forbidden(self, memory):
        p = memory.spawn("a")
        key = memory.map_cow(p, "zygote/svc", 4 * MIB)
        with pytest.raises(ValueError, match="fixed snapshot extent"):
            p.resize_segment(key, 8 * MIB)

    def test_extent_mismatch_rejected(self, memory):
        p1 = memory.spawn("a")
        p2 = memory.spawn("b")
        memory.map_cow(p1, "zygote/svc", 4 * MIB)
        with pytest.raises(SimulationError):
            memory.map_cow(p2, "zygote/svc", 8 * MIB)

    def test_cow_segment_validation(self):
        with pytest.raises(ValueError):
            MemorySegment(SegmentKind.COW, 10)  # no file_key
        with pytest.raises(ValueError):
            MemorySegment(SegmentKind.COW, 10, file_key="z", cow_dirty=11)
        with pytest.raises(ValueError):
            MemorySegment(SegmentKind.PRIVATE, 10, cow_dirty=1)

    def test_audit_mode_cross_checks_cow(self):
        for mode in ("incremental", "reference", "audit"):
            m = SystemMemoryModel(total_bytes=8 * GIB, kernel_base=0, accounting=mode)
            p1 = m.spawn("a", cgroup="/pods/a")
            p2 = m.spawn("b", cgroup="/pods/b")
            m.map_cow(p1, "zygote/svc", 4 * MIB)
            k2 = m.map_cow(p2, "zygote/svc", 4 * MIB)
            p2.cow_split(k2, 1 * MIB)
            p2.cow_unsplit(k2, 512)
            m.exit(p1)
            m.verify_accounting()
            assert m.node_working_set() == 5 * MIB - 512
            assert m.cgroup_working_set("/pods/b") == 4 * MIB + 1 * MIB - 512


class TestAccountingModes:
    def _scenario(self, m: SystemMemoryModel) -> tuple:
        p1 = m.spawn("a", cgroup="/pods/a")
        p2 = m.spawn("b", cgroup="/pods/b")
        m.map_private(p1, 7 * MIB)
        m.map_file(p1, "lib.so", 4 * MIB)
        m.map_file(p2, "lib.so", 4 * MIB)
        m.map_cow(p2, "zygote/svc", 2 * MIB)
        m.touch_page_cache("layer", 9 * MIB)
        m.exit(p1)
        return (
            m.node_working_set(),
            m.free_report(),
            m.cgroup_working_set("/pods/a"),
            m.cgroup_working_set("/pods/b"),
        )

    def test_reference_and_audit_agree_with_incremental(self):
        answers = {
            mode: self._scenario(
                SystemMemoryModel(total_bytes=8 * GIB, kernel_base=0, accounting=mode)
            )
            for mode in ("incremental", "reference", "audit")
        }
        assert answers["incremental"] == answers["reference"] == answers["audit"]

    def test_audit_mode_detects_untracked_mutation(self):
        m = SystemMemoryModel(total_bytes=8 * GIB, kernel_base=0, accounting="audit")
        p = m.spawn("a")
        key = m.map_private(p, 4 * MIB)
        # Bypassing resize_segment desyncs the ledger; audit must catch it.
        p.segments[key].size = 5 * MIB
        with pytest.raises(SimulationError, match="drift"):
            m.node_working_set()

    def test_verify_accounting_passes_on_clean_model(self, memory):
        self._scenario(memory)
        memory.verify_accounting()

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError, match="accounting"):
            SystemMemoryModel(accounting="sloppy")

    def test_env_var_selects_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_ACCOUNTING", "audit")
        assert SystemMemoryModel().accounting == "audit"


class TestBatchedCgroupWorkingSets:
    def test_batch_matches_individual_queries(self, memory):
        p1 = memory.spawn("a", cgroup="/kubepods/pod1")
        p2 = memory.spawn("b", cgroup="/kubepods/pod2")
        p3 = memory.spawn("c", cgroup="/system/daemon")
        memory.map_private(p1, 1 * MIB)
        memory.map_private(p2, 2 * MIB)
        memory.map_private(p3, 4 * MIB)
        memory.map_file(p1, "lib.so", 8 * MIB)
        # Overlapping prefixes must double-count exactly like single queries.
        prefixes = ["/kubepods", "/kubepods/pod1", "/kubepods/pod2", "/system", "/none"]
        batch = memory.cgroup_working_sets(prefixes)
        assert batch == {
            p: memory.cgroup_working_set(p) for p in prefixes
        }
        assert batch["/kubepods"] == 11 * MIB
        assert batch["/none"] == 0
