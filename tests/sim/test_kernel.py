"""Discrete-event kernel behaviour."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import (
    Acquire,
    Kernel,
    Release,
    Resource,
    SimEvent,
    Timeout,
    WaitEvent,
)


class TestTimeouts:
    def test_single_timeout_advances_clock(self):
        k = Kernel()

        def act():
            yield Timeout(2.5)
            return k.now

        [t] = k.run_all([act()])
        assert t == 2.5
        assert k.now == 2.5

    def test_sequential_timeouts_accumulate(self):
        k = Kernel()

        def act():
            yield Timeout(1.0)
            yield Timeout(2.0)
            return k.now

        assert k.run_all([act()]) == [3.0]

    def test_zero_timeout_is_allowed(self):
        k = Kernel()

        def act():
            yield Timeout(0.0)
            return "done"

        assert k.run_all([act()]) == ["done"]

    def test_negative_timeout_rejected(self):
        k = Kernel()

        def act():
            yield Timeout(-1.0)

        k.spawn(act())
        with pytest.raises(SimulationError):
            k.run()

    def test_concurrent_activities_interleave(self):
        k = Kernel()
        order = []

        def act(name, delay):
            yield Timeout(delay)
            order.append((name, k.now))

        k.run_all([act("slow", 3.0), act("fast", 1.0)])
        assert order == [("fast", 1.0), ("slow", 3.0)]


class TestSubActivities:
    def test_child_return_value_propagates(self):
        k = Kernel()

        def child():
            yield Timeout(1.0)
            return 42

        def parent():
            value = yield child()
            return value + 1

        assert k.run_all([parent()]) == [43]

    def test_nested_children_accumulate_time(self):
        k = Kernel()

        def leaf():
            yield Timeout(0.5)
            return "leaf"

        def mid():
            r = yield leaf()
            yield Timeout(0.5)
            return r + "+mid"

        def top():
            r = yield mid()
            return r + "+top"

        assert k.run_all([top()]) == ["leaf+mid+top"]
        assert k.now == 1.0


class TestResources:
    def test_capacity_limits_parallelism(self):
        k = Kernel()
        res = Resource(2)

        def worker():
            yield Acquire(res)
            yield Timeout(1.0)
            yield Release(res)

        k.run_all([worker() for _ in range(6)])
        # 6 jobs, 2 at a time, 1s each -> 3 waves.
        assert k.now == pytest.approx(3.0)

    def test_fifo_admission(self):
        k = Kernel()
        res = Resource(1)
        order = []

        def worker(i):
            yield Acquire(res)
            order.append(i)
            yield Timeout(0.1)
            yield Release(res)

        k.run_all([worker(i) for i in range(5)])
        assert order == [0, 1, 2, 3, 4]

    def test_release_without_acquire_fails(self):
        res = Resource(1)
        with pytest.raises(SimulationError):
            res.release()

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(0)

    def test_queued_count(self):
        k = Kernel()
        res = Resource(1)

        def holder():
            yield Acquire(res)
            yield Timeout(10.0)
            yield Release(res)

        def waiter():
            yield Acquire(res)
            yield Release(res)

        k.spawn(holder())
        k.spawn(waiter())
        k.run(until=1.0)
        assert res.queued == 1


class TestSimEvents:
    def test_wait_then_trigger(self):
        k = Kernel()
        ev = SimEvent()
        got = []

        def waiter():
            value = yield WaitEvent(ev)
            got.append(value)

        def trigger():
            yield Timeout(2.0)
            ev.trigger("payload")

        k.run_all([waiter(), trigger()])
        assert got == ["payload"]

    def test_wait_on_already_triggered_event(self):
        k = Kernel()
        ev = SimEvent()
        ev.trigger("early")

        def waiter():
            value = yield WaitEvent(ev)
            return value

        assert k.run_all([waiter()]) == ["early"]

    def test_double_trigger_fails(self):
        ev = SimEvent()
        ev.trigger()
        with pytest.raises(SimulationError):
            ev.trigger()

    def test_spawn_returns_completion_event(self):
        k = Kernel()

        def act():
            yield Timeout(1.0)
            return "result"

        done = k.spawn(act())
        k.run()
        assert done.triggered and done.value == "result"


class TestExceptionPropagation:
    def test_child_exception_lands_in_parent_try(self):
        k = Kernel()

        def child():
            yield Timeout(1.0)
            raise ValueError("boom")

        def parent():
            try:
                yield child()
            except ValueError as exc:
                return f"caught {exc}"
            return "not caught"

        assert k.run_all([parent()]) == ["caught boom"]

    def test_uncaught_child_exception_reaches_run_all(self):
        k = Kernel()

        def child():
            yield Timeout(0.5)
            raise RuntimeError("unhandled")

        def parent():
            yield child()

        with pytest.raises(RuntimeError, match="unhandled"):
            k.run_all([parent()])

    def test_top_level_exception_reaches_run_all(self):
        k = Kernel()

        def act():
            yield Timeout(0.1)
            raise KeyError("top")

        with pytest.raises(KeyError):
            k.run_all([act()])

    def test_sibling_activities_continue_after_failure(self):
        k = Kernel()
        finished = []

        def bad():
            yield Timeout(0.1)
            raise RuntimeError("x")

        def good():
            yield Timeout(5.0)
            finished.append(True)

        def parent():
            try:
                yield bad()
            except RuntimeError:
                pass
            return "ok"

        results = k.run_all([parent(), good()])
        assert results[0] == "ok" and finished == [True]


class TestRunControls:
    def test_run_until_stops_early(self):
        k = Kernel()

        def act():
            yield Timeout(10.0)

        k.spawn(act())
        k.run(until=3.0)
        assert k.now == 3.0

    def test_call_at_and_after(self):
        k = Kernel()
        fired = []
        k.call_after(1.0, lambda: fired.append("after"))
        k.call_at(0.5, lambda: fired.append("at"))
        k.run()
        assert fired == ["at", "after"]

    def test_call_at_in_past_rejected(self):
        k = Kernel()
        k.call_after(1.0, lambda: None)
        k.run()
        with pytest.raises(SimulationError):
            k.call_at(0.5, lambda: None)

    def test_deadlock_detection_in_run_all(self):
        k = Kernel()
        ev = SimEvent()  # never triggered

        def stuck():
            yield WaitEvent(ev)

        with pytest.raises(SimulationError, match="deadlock"):
            k.run_all([stuck()])

    def test_unsupported_effect_rejected(self):
        k = Kernel()

        def bad():
            yield "not-an-effect"

        k.spawn(bad())
        with pytest.raises(SimulationError, match="unsupported effect"):
            k.run()
