"""The WAMR-in-crun integration (the paper's contribution)."""

import pytest

from repro.container.lifecycle import Container
from repro.container.nodeenv import NodeEnv
from repro.core import (
    CRUN_WAMR_CONFIG,
    DynamicLibraryLoader,
    WamrCrunHandler,
    build_crun_with_wamr,
)
from repro.core.integration import RUNTIME_CONFIGS, build_crun_with_engine
from repro.oci.bundle import build_bundle
from repro.oci.spec import MountSpec
from repro.sim.kernel import Kernel
from repro.sim.memory import MIB, SystemMemoryModel
from repro.workloads.images import build_python_image, build_wasm_image


@pytest.fixture()
def env() -> NodeEnv:
    e = NodeEnv.create(kernel=Kernel(), memory=SystemMemoryModel())
    e.images.push(build_wasm_image())
    return e


def make_container(i: int = 0) -> Container:
    return Container(
        container_id=f"wamr-{i}",
        pod_uid=f"pod{i}",
        runtime_config=CRUN_WAMR_CONFIG,
        cgroup=f"/kubepods/pod{i}",
    )


class TestDynamicLibraryLoader:
    def test_first_load_slower_than_warm(self):
        memory = SystemMemoryModel()
        loader = DynamicLibraryLoader(memory)
        p1 = memory.spawn("a")
        p2 = memory.spawn("b")
        cold = loader.dlopen(p1, "lib/libiwasm.so", 2 * MIB)
        warm = loader.dlopen(p2, "lib/libiwasm.so", 2 * MIB)
        assert cold > warm

    def test_text_shared_once(self):
        memory = SystemMemoryModel()
        loader = DynamicLibraryLoader(memory)
        for i in range(5):
            loader.dlopen(memory.spawn(f"p{i}"), "lib/libiwasm.so", 2 * MIB)
        assert memory.node_working_set() == 2 * MIB
        assert loader.load_count["lib/libiwasm.so"] == 5

    def test_lazy_nothing_loaded_without_wasm(self):
        loader = DynamicLibraryLoader(SystemMemoryModel())
        assert not loader.is_loaded("lib/libiwasm.so")


class TestWasiWorld:
    def test_args_env_from_oci_spec(self):
        handler = WamrCrunHandler()
        bundle = build_bundle(
            "c",
            build_wasm_image(),
            args_override=["/app/main.wasm", "--mode", "svc"],
            env_override={"REQUESTS": "1"},
        )
        world = handler.build_wasi_world(bundle)
        assert world["args"] == ["/app/main.wasm", "--mode", "svc"]
        assert world["env"]["REQUESTS"] == "1"
        assert world["env"]["SERVICE"] == "microservice"

    def test_preopens_include_rootfs_and_mounts(self):
        handler = WamrCrunHandler()
        bundle = build_bundle(
            "c",
            build_wasm_image(),
            mounts=[MountSpec(destination="/config", source="/host/config")],
        )
        world = handler.build_wasi_world(bundle)
        assert world["preopens"]["/"] == "rootfs"
        assert world["preopens"]["/config"] == "/host/config"


class TestExecution:
    def test_runs_module_in_process(self, env):
        handler = WamrCrunHandler()
        container = make_container()
        proc = env.memory.spawn("crun:wamr-0", cgroup=container.cgroup)
        container.processes.append(proc)
        exec_s = handler.execute(env, container, build_bundle("c", build_wasm_image()), proc)
        assert container.exit_code == 0
        assert b"microservice: ready" in container.stdout
        assert container.facts["handler"] == "crun-wamr"
        assert exec_s > 0
        # In-process: exactly one process, hosting both crun and WAMR.
        assert len(container.processes) == 1

    def test_dlopen_cost_amortizes(self, env):
        handler = WamrCrunHandler()
        costs = []
        for i in range(3):
            container = make_container(i)
            proc = env.memory.spawn(f"crun:{i}", cgroup=container.cgroup)
            container.processes.append(proc)
            handler.execute(env, container, build_bundle(f"c{i}", build_wasm_image()), proc)
            costs.append(container.facts["dlopen_s"])
        assert costs[0] > costs[1] == costs[2]

    def test_memory_footprint_small(self, env):
        handler = WamrCrunHandler()
        container = make_container()
        proc = env.memory.spawn("crun:wamr", cgroup=container.cgroup)
        container.processes.append(proc)
        handler.execute(env, container, build_bundle("c", build_wasm_image()), proc)
        assert proc.private_bytes() < 5 * MIB

    def test_matches_only_wasm(self):
        handler = WamrCrunHandler()
        assert handler.matches(build_bundle("c", build_wasm_image()))
        assert not handler.matches(build_bundle("c", build_python_image()))


class TestIntegrationAssembly:
    def test_wamr_handler_registered(self):
        crun = build_crun_with_wamr()
        bundle = build_bundle("c", build_wasm_image())
        assert crun.handler_for(bundle).name == "crun-wamr"

    def test_runtime_config_table_complete(self):
        assert len(RUNTIME_CONFIGS) == 9
        assert RUNTIME_CONFIGS[CRUN_WAMR_CONFIG].is_ours
        assert sum(1 for c in RUNTIME_CONFIGS.values() if c.is_ours) == 1
        families = {c.family for c in RUNTIME_CONFIGS.values()}
        assert families == {"crun", "runc", "runwasi"}

    def test_baseline_builder(self):
        crun = build_crun_with_engine("wasmedge")
        handler = crun.handler_for(build_bundle("c", build_wasm_image()))
        assert handler.name == "crun-wasmedge"
