"""Unit tests for the specialization tier passes (`wasm/runtime/specialize`).

Each pass is exercised in isolation through `SpecializeReport` counts
and by inspecting the rewritten flat code (handler identity), then the
result is executed to confirm behaviour is unchanged. The differential
suites (`tests/wasm/test_differential.py`, the hypothesis property)
cover end-to-end equivalence; this file pins the mechanics: what gets
folded, fused, elided, IC'd, and compiled, and that instruction
accounting and the deopt chain survive every rewrite.
"""

import pytest

from repro import obs
from repro.errors import WasmTrap
from repro.wasm import parse_wat, validate_module
from repro.wasm.runtime import (
    Interpreter,
    SpecializedFunction,
    Store,
    instantiate,
    prepare_module,
    specialize_mode,
    specialize_module,
)
from repro.wasm.runtime.specialize import (
    METERED_DEOPT,
    SpecializeReport,
    specialize_counts,
)


def _specialized(src, mode="bytecode"):
    module = validate_module(parse_wat(src))
    prepare_module(module)
    report = SpecializeReport()
    specialize_module(module, mode, report=report).attach(module)
    return module, report


def _run(module, func="run", args=(), fuel=None):
    store = Store()
    inst = instantiate(store, module)
    interp = Interpreter(store, fuel=fuel)
    return interp.invoke_export(inst, func, list(args))


def _handlers(module, fi=0):
    return [h.__name__ for h, _a, _w in module.funcs[fi].prepared.code]


class TestGlobalFolding:
    IMMUT = """
        (module (global $k i32 (i32.const 41))
          (func (export "run") (result i32)
            (i32.add (global.get $k) (i32.const 1))))
    """
    MUT = """
        (module (global $k (mut i32) (i32.const 41))
          (func (export "run") (result i32)
            (i32.add (global.get $k) (i32.const 1))))
    """

    def test_immutable_global_becomes_const(self):
        module, report = _specialized(self.IMMUT)
        assert report.folded == 1
        assert "h_global_get" not in _handlers(module)
        assert _run(module) == [42]

    def test_mutable_global_not_folded(self):
        module, report = _specialized(self.MUT)
        assert report.folded == 0
        assert "h_global_get" in _handlers(module)
        assert _run(module) == [42]


class TestPeepholeFusion:
    def test_const_const_binop_folds_to_const(self):
        module, report = _specialized(
            '(module (func (export "run") (result i32)'
            " (i32.mul (i32.const 6) (i32.const 7))))"
        )
        assert report.fused >= 1
        names = _handlers(module)
        assert "h_binop" not in names and "h_const_binop" not in names
        assert _run(module) == [42]

    def test_folded_global_feeds_fusion(self):
        # global.get -> const (pass 1) must then fuse with the binop.
        module, report = _specialized(
            "(module (global $k i32 (i32.const 5))"
            ' (func (export "run") (param i32) (result i32)'
            " (i32.add (local.get 0) (global.get $k))))"
        )
        assert report.folded == 1 and report.fused >= 1
        assert "h_const_binop" in _handlers(module)
        assert _run(module, args=(37,)) == [42]

    def test_weight_sum_preserved(self):
        module, _ = _specialized(
            '(module (func (export "run") (result i32)'
            " (i32.add (i32.add (i32.const 1) (i32.const 2))"
            "          (i32.add (i32.const 3) (i32.const 4)))))"
        )
        pf = module.funcs[0].prepared
        assert sum(w for _h, _a, w in pf.code) == pf.source_instrs
        # Exact fuel accounting at the boundary: the run above costs
        # source_instrs units regardless of how much got folded.
        assert _run(module, fuel=pf.source_instrs) == [10]


class TestBoundsElision:
    MASKED = """
        (module (memory 1)
          (func (export "run") (param i32) (result i32)
            (i32.store (i32.and (local.get 0) (i32.const 0xfffc))
                       (i32.const 7))
            (i32.load (i32.and (local.get 0) (i32.const 0xfffc)))))
    """

    def test_masked_access_uses_unchecked_handlers(self):
        module, report = _specialized(self.MASKED)
        assert report.elided == 2
        names = _handlers(module)
        assert "u_i32_store" in names and "u_i32_load" in names
        assert _run(module, args=(123456,)) == [7]

    def test_unbounded_access_stays_checked(self):
        module, report = _specialized(
            '(module (memory 1) (func (export "run") (param i32) (result i32)'
            " (i32.load (local.get 0))))"
        )
        assert report.elided == 0
        assert not any(n.startswith("u_") for n in _handlers(module))
        with pytest.raises(WasmTrap, match="out of bounds memory access"):
            _run(module, args=(70000,))

    def test_mask_exceeding_minimum_stays_checked(self):
        # 0x1ffff + 4 > one page: the proof must fail even though the
        # address is masked.
        module, report = _specialized(
            '(module (memory 1) (func (export "run") (param i32) (result i32)'
            " (i32.load (i32.and (local.get 0) (i32.const 0x1ffff)))))"
        )
        assert report.elided == 0


class TestInlineCaches:
    TABLE = """
        (module (type $t (func (param i32) (result i32)))
          (table 3 funcref) (elem (i32.const 0) $sq $dbl)
          (func $sq (type $t) (i32.mul (local.get 0) (local.get 0)))
          (func $dbl (type $t) (i32.add (local.get 0) (local.get 0)))
          (func (export "run") (param i32 i32) (result i32)
            (call_indirect (type $t) (local.get 1) (local.get 0))))
    """

    def test_ic_installed_and_counts_misses(self):
        module, report = _specialized(self.TABLE)
        assert report.ic_sites == 1
        assert "h_call_indirect_ic" in _handlers(module, fi=2)
        before = specialize_counts()["deopts_ic_miss"]
        store = Store()
        inst = instantiate(store, module)
        interp = Interpreter(store)
        # First call misses and fills the cell; the repeat hits.
        assert interp.invoke_export(inst, "run", [0, 6]) == [36]
        assert interp.invoke_export(inst, "run", [0, 7]) == [49]
        mono = specialize_counts()["deopts_ic_miss"] - before
        assert mono == 1
        # Flipping the target invalidates the cell each time.
        assert interp.invoke_export(inst, "run", [1, 6]) == [12]
        assert interp.invoke_export(inst, "run", [0, 6]) == [36]
        assert specialize_counts()["deopts_ic_miss"] - before == 3

    def test_ic_traps_match_generic_path(self):
        module, _ = _specialized(self.TABLE)
        with pytest.raises(WasmTrap, match="undefined element"):
            _run(module, args=(9, 1))
        with pytest.raises(WasmTrap, match="uninitialized element"):
            _run(module, args=(2, 1))

    def test_ic_type_mismatch_message(self):
        src = """(module (type $t (func (result i64)))
            (table 1 funcref) (elem (i32.const 0) $f)
            (func $f (result i32) (i32.const 1))
            (func (export "run") (result i64)
              (call_indirect (type $t) (i32.const 0))))"""
        module, _ = _specialized(src)
        with pytest.raises(WasmTrap, match="indirect call type mismatch"):
            _run(module)


class TestClosureTier:
    LOOP = """
        (module (func (export "run") (param i32) (result i32)
          (local $acc i32)
          (block $out (loop $top
            (br_if $out (i32.eqz (local.get 0)))
            (local.set $acc (i32.add (local.get $acc) (local.get 0)))
            (local.set 0 (i32.sub (local.get 0) (i32.const 1)))
            (br $top)))
          (local.get $acc)))
    """

    def test_bytecode_mode_never_compiles(self):
        module, report = _specialized(self.LOOP, mode="bytecode")
        assert report.compiled == 0 and report.bytecode == 1
        assert module.funcs[0].prepared.compiled is None

    def test_on_mode_compiles_closure(self):
        module, report = _specialized(self.LOOP, mode="on")
        sf = module.funcs[0].prepared
        assert report.compiled == 1
        assert sf.compiled is not None
        assert "while True:" in sf.compiled.__specialized_source__
        assert _run(module, args=(10,)) == [55]

    def test_metered_run_deopts_to_bytecode(self):
        module, _ = _specialized(self.LOOP, mode="on")
        before = METERED_DEOPT.value
        assert _run(module, args=(10,), fuel=10_000) == [55]
        assert METERED_DEOPT.value > before

    def test_unmetered_counts_exact_instructions(self):
        module, _ = _specialized(self.LOOP, mode="on")
        flat_module = validate_module(parse_wat(self.LOOP))
        store = Store()
        inst = instantiate(store, flat_module)
        flat = Interpreter(store)
        flat.invoke_export(inst, "run", [10])
        store2 = Store()
        inst2 = instantiate(store2, module)
        spec = Interpreter(store2)
        spec.invoke_export(inst2, "run", [10])
        assert spec.instructions_executed == flat.instructions_executed


class TestDriver:
    def test_specialized_function_keeps_baseline_fallback(self):
        module, _ = _specialized(TestClosureTier.LOOP)
        sf = module.funcs[0].prepared
        assert isinstance(sf, SpecializedFunction)
        assert type(sf.fallback) is not SpecializedFunction

    def test_respecialize_is_idempotent(self):
        module, _ = _specialized(TestClosureTier.LOOP)
        first_fallback = module.funcs[0].prepared.fallback
        specialize_module(module, "bytecode").attach(module)
        sf = module.funcs[0].prepared
        assert sf.fallback is first_fallback  # never stacks tiers
        assert _run(module, args=(4,)) == [10]

    def test_invalid_mode_rejected(self):
        module = validate_module(parse_wat(TestClosureTier.LOOP))
        prepare_module(module)
        with pytest.raises(ValueError):
            specialize_module(module, "off")

    def test_counts_exposes_all_keys(self):
        counts = specialize_counts()
        assert set(counts) == {
            "functions_compiled",
            "functions_bytecode",
            "functions_failed",
            "deopts_ic_miss",
            "deopts_metered",
        }

    def test_pass_duration_observed(self):
        fam = obs.histogram(
            "repro_specialize_pass_seconds",
            "wall time of the specialization pass per module",
            always=True,
        )
        before = fam.labels().count
        _specialized(TestClosureTier.LOOP)
        assert fam.labels().count == before + 1


class TestModeParsing:
    @pytest.mark.parametrize(
        "raw,want",
        [
            ("on", "on"),
            ("", "on"),
            ("bytecode", "bytecode"),
            ("off", "off"),
            ("0", "off"),
            ("FALSE", "off"),
            ("no", "off"),
            ("garbage", "on"),
        ],
    )
    def test_env_values(self, raw, want, monkeypatch):
        if raw == "":
            monkeypatch.delenv("REPRO_SPECIALIZE", raising=False)
        else:
            monkeypatch.setenv("REPRO_SPECIALIZE", raw)
        assert specialize_mode() == want
