"""Instantiation: imports, linking, segments, start function."""

import pytest

from repro.errors import LinkError, WasmTrap
from repro.wasm import parse_wat, validate_module
from repro.wasm.runtime import (
    GlobalInstance,
    Interpreter,
    MemoryInstance,
    Store,
    TableInstance,
    instantiate,
)
from repro.wasm.runtime.host import HostModule, sig
from repro.wasm.types import GlobalType, Limits, MemoryType, TableType, ValType


def load(src: str):
    return validate_module(parse_wat(src))


class TestImports:
    def test_unresolved_import(self):
        m = load('(module (import "env" "f" (func)))')
        with pytest.raises(LinkError, match="unresolved"):
            instantiate(Store(), m)

    def test_host_function_import_and_call(self):
        m = load(
            """
            (module (import "env" "add3" (func $a (param i32) (result i32)))
              (func (export "run") (result i32) (call $a (i32.const 4))))
            """
        )
        store = Store()
        host = HostModule(store, "env")
        host.func("add3", sig("i", "i"), lambda x: [x + 3])
        inst = instantiate(store, m, imports=host.import_map())
        assert Interpreter(store).invoke_export(inst, "run") == [7]

    def test_signature_mismatch_rejected(self):
        m = load('(module (import "env" "f" (func (param i32))))')
        store = Store()
        host = HostModule(store, "env")
        host.func("f", sig("ii"), lambda a, b: [])
        with pytest.raises(LinkError, match="signature mismatch"):
            instantiate(store, m, imports=host.import_map())

    def test_kind_mismatch_rejected(self):
        m = load('(module (import "env" "f" (func)))')
        store = Store()
        addr = store.alloc_mem(MemoryInstance(MemoryType(Limits(1))))
        with pytest.raises(LinkError, match="expected func"):
            instantiate(store, m, imports={"env": {"f": ("mem", addr)}})

    def test_memory_import_limits_checked(self):
        m = load('(module (import "env" "mem" (memory 2)))')
        store = Store()
        addr = store.alloc_mem(MemoryInstance(MemoryType(Limits(1))))
        with pytest.raises(LinkError, match="limits"):
            instantiate(store, m, imports={"env": {"mem": ("mem", addr)}})

    def test_shared_memory_between_instances(self):
        writer = load(
            """
            (module (import "env" "mem" (memory 1))
              (func (export "write") (i32.store (i32.const 0) (i32.const 42))))
            """
        )
        reader = load(
            """
            (module (import "env" "mem" (memory 1))
              (func (export "read") (result i32) (i32.load (i32.const 0))))
            """
        )
        store = Store()
        mem_addr = store.alloc_mem(MemoryInstance(MemoryType(Limits(1))))
        imports = {"env": {"mem": ("mem", mem_addr)}}
        w = instantiate(store, writer, imports=imports)
        r = instantiate(store, reader, imports=imports)
        interp = Interpreter(store)
        interp.invoke_export(w, "write")
        assert interp.invoke_export(r, "read") == [42]

    def test_imported_global_read(self):
        m = load(
            """
            (module (import "env" "g" (global i32))
              (func (export "run") (result i32) (global.get 0)))
            """
        )
        store = Store()
        addr = store.alloc_global(GlobalInstance(GlobalType(ValType.I32), 99))
        inst = instantiate(store, m, imports={"env": {"g": ("global", addr)}})
        assert Interpreter(store).invoke_export(inst, "run") == [99]

    def test_global_type_mismatch(self):
        m = load('(module (import "env" "g" (global (mut i32))))')
        store = Store()
        addr = store.alloc_global(GlobalInstance(GlobalType(ValType.I32), 0))
        with pytest.raises(LinkError, match="global type"):
            instantiate(store, m, imports={"env": {"g": ("global", addr)}})


class TestSegments:
    def test_data_segment_initializes_memory(self):
        m = load('(module (memory (export "memory") 1) (data (i32.const 4) "wasm"))')
        store = Store()
        inst = instantiate(store, m)
        mem = store.mems[inst.export_addr("memory", "mem")]
        assert mem.read(4, 4) == b"wasm"

    def test_data_segment_oob_traps(self):
        m = load('(module (memory 1) (data (i32.const 65534) "long"))')
        with pytest.raises(WasmTrap, match="data segment"):
            instantiate(Store(), m)

    def test_elem_segment_oob_traps(self):
        m = load("(module (table 1 funcref) (func $f) (elem (i32.const 1) $f))")
        with pytest.raises(WasmTrap, match="element segment"):
            instantiate(Store(), m)

    def test_global_init_from_imported_global(self):
        m = load(
            """
            (module (import "env" "base" (global i32))
              (global $x i32 (global.get 0))
              (func (export "run") (result i32) (global.get $x)))
            """
        )
        store = Store()
        addr = store.alloc_global(GlobalInstance(GlobalType(ValType.I32), 7))
        inst = instantiate(store, m, imports={"env": {"base": ("global", addr)}})
        assert Interpreter(store).invoke_export(inst, "run") == [7]


class TestStart:
    def test_start_runs_at_instantiation(self):
        m = load(
            """
            (module (memory (export "memory") 1)
              (func $init (i32.store (i32.const 0) (i32.const 123)))
              (start $init))
            """
        )
        store = Store()
        inst = instantiate(store, m)
        mem = store.mems[inst.export_addr("memory", "mem")]
        assert mem.read_u32(0) == 123

    def test_start_deferred_with_run_start_false(self):
        m = load(
            """
            (module (memory (export "memory") 1)
              (func $init (i32.store (i32.const 0) (i32.const 123)))
              (start $init))
            """
        )
        store = Store()
        inst = instantiate(store, m, run_start=False)
        mem = store.mems[inst.export_addr("memory", "mem")]
        assert mem.read_u32(0) == 0


class TestExports:
    def test_export_addr_lookup(self):
        m = load('(module (func (export "f")) (memory (export "m") 1))')
        store = Store()
        inst = instantiate(store, m)
        assert inst.exports["f"][0] == "func"
        with pytest.raises(KeyError):
            inst.export_addr("f", "mem")
        with pytest.raises(KeyError):
            inst.export_addr("missing", "func")

    def test_table_export(self):
        m = load('(module (table (export "t") 3 funcref))')
        store = Store()
        inst = instantiate(store, m)
        table = store.tables[inst.export_addr("t", "table")]
        assert len(table.elements) == 3
