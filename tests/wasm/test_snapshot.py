"""Differential suite: a restored zygote instance is observably identical
to a fresh instantiation.

Covers the snapshot API directly (capture → restore structural equality),
the ``run_wasi`` warm-start path (cold vs capture vs restore three-way,
fuel metering including the exhaustion boundary, pure and impure start
sections, both interpreters, a full-WASI microservice run), the
entrypoint-kind bugfix, and hypothesis-generated random programs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engines.cache import reset_caches, zygote_get
from repro.errors import ExhaustionError, WasmError
from repro.wasm import assemble_wat, parse_wat, validate_module
from repro.wasm.embed import run_wasi
from repro.wasm.runtime import (
    Interpreter,
    ReferenceInterpreter,
    Store,
    capture_snapshot,
    instantiate,
    restore_instance,
)
from repro.workloads.microservice import READY_LINE, build_microservice_wasm

INTERPS = (Interpreter, ReferenceInterpreter)


@pytest.fixture(autouse=True)
def _fresh_caches():
    reset_caches()
    yield
    reset_caches()


def _observe(r):
    """The observable surface of one run (instance/store excluded)."""
    return (r.exit_code, r.stdout, r.stderr, r.instructions, r.memory_bytes)


# A WASI program with initialized memory, a mutable global, and a table —
# every snapshot-able entity class in one module.
STATEFUL_WAT = r"""
(module
  (import "wasi_snapshot_preview1" "fd_write"
    (func $fd_write (param i32 i32 i32 i32) (result i32)))
  (memory (export "memory") 1)
  (data (i32.const 64) "snapshot!\n")
  (global $g (mut i32) (i32.const 41))
  (table 2 funcref)
  (elem (i32.const 0) $bump $bump)
  (func $bump (result i32)
    (global.set $g (i32.add (global.get $g) (i32.const 1)))
    (global.get $g))
  (func (export "_start")
    (drop (call_indirect (result i32) (i32.const 0)))
    (i32.store (i32.const 16) (i32.const 64))
    (i32.store (i32.const 20) (i32.const 10))
    (drop (call $fd_write (i32.const 1) (i32.const 16) (i32.const 1) (i32.const 32)))))
"""


class TestSnapshotApi:
    def test_capture_restore_structural_equality(self):
        module = validate_module(parse_wat(STATEFUL_WAT))
        store = Store()
        inst = instantiate(store, module, imports=_host(store))
        snap = capture_snapshot(store, inst, digest="d1")
        assert snap is not None
        assert snap.memory_bytes == 65536

        store2 = Store()
        clone = restore_instance(store2, snap, imports=_host(store2))
        assert set(clone.exports) == set(inst.exports)
        assert [k for k, _ in clone.exports.values()] == [
            k for k, _ in inst.exports.values()
        ]
        # Linear memory byte-for-byte, globals, table entries (compared as
        # module-local indices — store addresses differ by construction).
        assert bytes(store2.mems[clone.mem_addrs[0]].data) == bytes(
            store.mems[inst.mem_addrs[0]].data
        )
        assert [store2.globals[a].value for a in clone.global_addrs] == [
            store.globals[a].value for a in inst.global_addrs
        ]
        t1 = store.tables[inst.table_addrs[0]].elements
        t2 = store2.tables[clone.table_addrs[0]].elements
        assert [inst.func_addrs.index(a) for a in t1] == [
            clone.func_addrs.index(a) for a in t2
        ]

    def test_restored_instance_runs_like_fresh(self):
        from repro.wasm.wasi import WasiEnv

        module = validate_module(parse_wat(STATEFUL_WAT))

        def boot(make_instance):
            store = Store()
            wasi = WasiEnv(args=("t",))
            host = wasi.register(store)
            inst = make_instance(store, host.import_map())
            wasi.attach_memory(store.mems[inst.mem_addrs[0]])
            interp = Interpreter(store)
            interp.invoke(inst.exports["_start"][1])
            return (
                interp.instructions_executed,
                bytes(wasi.stdout),
                bytes(store.mems[inst.mem_addrs[0]].data),
            )

        snap = {}

        def fresh(store, imports):
            inst = instantiate(store, module, imports=imports)
            snap["s"] = capture_snapshot(store, inst)
            return inst

        fresh_obs = boot(fresh)
        clone_obs = boot(lambda store, imports: restore_instance(store, snap["s"], imports))
        assert clone_obs == fresh_obs


def _host(store):
    """Minimal fd_write host import for the direct-API tests."""
    from repro.wasm.wasi import WasiEnv

    wasi = WasiEnv(args=("t",))
    return wasi.register(store).import_map()


# -- run_wasi three-way: cold vs capture vs restore ---------------------------

OUTPUT_WAT = r"""
(module
  (import "wasi_snapshot_preview1" "fd_write"
    (func $fd_write (param i32 i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "proc_exit"
    (func $proc_exit (param i32)))
  (memory (export "memory") 1)
  (data (i32.const 4096) "hello zygote\n")
  (global $acc (mut i32) (i32.const 0))
  (func $work (param $n i32)
    (local $i i32)
    (block $out
      (loop $top
        (br_if $out (i32.ge_u (local.get $i) (local.get $n)))
        (global.set $acc (i32.add (global.get $acc) (local.get $i)))
        (i32.store (i32.mul (local.get $i) (i32.const 4)) (global.get $acc))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $top))))
  (func (export "_start")
    (call $work (i32.const 50))
    (i32.store (i32.const 1024) (i32.const 4096))
    (i32.store (i32.const 1028) (i32.const 13))
    (drop (call $fd_write (i32.const 1) (i32.const 1024) (i32.const 1) (i32.const 1032)))
    (call $proc_exit (i32.const 7))))
"""


class TestRunWasiDifferential:
    def test_three_way_identical(self):
        blob = assemble_wat(OUTPUT_WAT)
        cold = run_wasi(blob, zygote=False)
        captured = run_wasi(blob)  # first zygote run: instantiates + captures
        restored = run_wasi(blob)  # second: clones the snapshot

        assert not cold.restored and not captured.restored
        assert restored.restored
        assert restored.zygote_digest is not None
        assert _observe(cold) == _observe(captured) == _observe(restored)
        assert cold.exit_code == 7
        assert cold.stdout == b"hello zygote\n"

    def test_repeat_restores_stay_identical(self):
        blob = assemble_wat(OUTPUT_WAT)
        first = run_wasi(blob)
        for _ in range(3):
            again = run_wasi(blob)
            assert again.restored
            assert _observe(again) == _observe(first)

    def test_zygote_off_never_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_ZYGOTE", "off")
        blob = assemble_wat(OUTPUT_WAT)
        r1 = run_wasi(blob)
        r2 = run_wasi(blob)
        assert not r1.restored and not r2.restored
        assert r1.zygote_digest is None
        assert _observe(r1) == _observe(r2)

    @pytest.mark.parametrize("cls", INTERPS)
    def test_both_interpreters(self, cls):
        blob = assemble_wat(OUTPUT_WAT)
        cold = run_wasi(blob, zygote=False, interpreter_cls=cls)
        run_wasi(blob, interpreter_cls=cls)
        restored = run_wasi(blob, interpreter_cls=cls)
        assert restored.restored
        assert _observe(restored) == _observe(cold)

    def test_fuel_sweep_matches_cold(self):
        blob = assemble_wat(OUTPUT_WAT)
        run_wasi(blob)  # capture once
        baseline = run_wasi(blob, zygote=False).instructions
        for fuel in (0, 1, baseline - 1, baseline, baseline + 1, 10 * baseline):
            cold_exc = restored_exc = None
            try:
                cold = run_wasi(blob, zygote=False, fuel=fuel)
            except ExhaustionError as e:
                cold_exc = str(e)
            try:
                restored = run_wasi(blob, fuel=fuel)
            except ExhaustionError as e:
                restored_exc = str(e)
            assert cold_exc == restored_exc, f"fuel={fuel}"
            if cold_exc is None:
                assert restored.restored
                assert _observe(restored) == _observe(cold), f"fuel={fuel}"


# -- start sections: pure state-building vs host side effects ------------------

PURE_START_WAT = r"""
(module
  (import "wasi_snapshot_preview1" "fd_write"
    (func $fd_write (param i32 i32 i32 i32) (result i32)))
  (memory (export "memory") 1)
  (global $init (mut i32) (i32.const 0))
  (func $prelude
    (local $i i32)
    (block $out
      (loop $top
        (br_if $out (i32.ge_u (local.get $i) (i32.const 200)))
        (i32.store (i32.mul (local.get $i) (i32.const 4)) (local.get $i))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $top)))
    (global.set $init (i32.const 1)))
  (start $prelude)
  (func (export "_start")
    (i32.store (i32.const 2048) (global.get $init))))
"""

IMPURE_START_WAT = r"""
(module
  (import "wasi_snapshot_preview1" "fd_write"
    (func $fd_write (param i32 i32 i32 i32) (result i32)))
  (memory (export "memory") 1)
  (data (i32.const 64) "booting\n")
  (func $announce
    (i32.store (i32.const 16) (i32.const 64))
    (i32.store (i32.const 20) (i32.const 8))
    (drop (call $fd_write (i32.const 1) (i32.const 16) (i32.const 1) (i32.const 32))))
  (start $announce)
  (func (export "_start")
    (i32.store (i32.const 2048) (i32.const 99))))
"""


class TestStartSections:
    def test_pure_start_snapshotted_post_start(self):
        blob = assemble_wat(PURE_START_WAT)
        captured = run_wasi(blob)
        snap = zygote_get(captured.zygote_digest)
        assert snap is not None
        assert not snap.start_rerun
        assert snap.start_instructions > 0
        # The restored run skips the start but is metered as if it ran.
        cold = run_wasi(blob, zygote=False)
        restored = run_wasi(blob)
        assert restored.restored
        assert _observe(restored) == _observe(cold) == _observe(captured)

    def test_pure_start_fuel_exhaustion_boundary(self):
        blob = assemble_wat(PURE_START_WAT)
        run_wasi(blob)  # capture
        total = run_wasi(blob, zygote=False).instructions
        for fuel in (0, 1, total - 1, total):
            cold_exc = restored_exc = None
            try:
                run_wasi(blob, zygote=False, fuel=fuel)
            except ExhaustionError as e:
                cold_exc = str(e)
            try:
                run_wasi(blob, fuel=fuel)
            except ExhaustionError as e:
                restored_exc = str(e)
            assert cold_exc == restored_exc, f"fuel={fuel}"

    def test_impure_start_reruns_and_reproduces_output(self):
        blob = assemble_wat(IMPURE_START_WAT)
        captured = run_wasi(blob)
        snap = zygote_get(captured.zygote_digest)
        assert snap is not None
        assert snap.start_rerun  # fd_write during start → pre-start snapshot
        cold = run_wasi(blob, zygote=False)
        restored = run_wasi(blob)
        assert restored.restored
        assert cold.stdout == b"booting\n"
        assert _observe(restored) == _observe(cold) == _observe(captured)


# -- entrypoint-kind bugfix ---------------------------------------------------

MEM_ENTRY_WAT = r"""
(module
  (memory (export "_start") 1)
  (func $noop))
"""

MEM_ENTRY_WITH_START_WAT = r"""
(module
  (memory (export "_start") 1)
  (func $init (i32.store (i32.const 0) (i32.const 1)))
  (start $init))
"""


class TestEntrypointKind:
    def test_non_func_export_raises(self):
        with pytest.raises(WasmError, match="is a mem, not a function"):
            run_wasi(assemble_wat(MEM_ENTRY_WAT))

    def test_non_func_export_raises_even_with_start_section(self):
        # Previously silently "ran" as an empty program when a start
        # section was present; now a clear error either way.
        with pytest.raises(WasmError, match="is a mem, not a function"):
            run_wasi(assemble_wat(MEM_ENTRY_WITH_START_WAT))

    def test_missing_entrypoint_still_raises(self):
        blob = assemble_wat("(module (func $f))")
        with pytest.raises(WasmError, match="no '_start' export"):
            run_wasi(blob)


# -- full-WASI microservice ---------------------------------------------------

class TestMicroserviceZygote:
    @pytest.mark.parametrize("cls", INTERPS)
    def test_full_wasi_run_restores_identically(self, cls):
        blob = build_microservice_wasm()
        kwargs = dict(
            args=("svc", "--replica", "3"),
            env={"REQUESTS": "2", "REGION": "eu"},
            interpreter_cls=cls,
        )
        cold = run_wasi(blob, zygote=False, **kwargs)
        run_wasi(blob, **kwargs)  # capture
        restored = run_wasi(blob, **kwargs)
        assert restored.restored
        assert READY_LINE in cold.stdout
        assert _observe(restored) == _observe(cold)

    def test_restore_sees_fresh_argv_and_env(self):
        # argv/environ are host-world state: a clone launched with
        # different arguments must observe *its* arguments, not the
        # capturing run's.
        blob = build_microservice_wasm()
        run_wasi(blob, args=("svc", "first"), env={"REQUESTS": "1"})
        restored = run_wasi(blob, args=("svc", "second"), env={"REQUESTS": "3"})
        cold = run_wasi(
            blob, args=("svc", "second"), env={"REQUESTS": "3"}, zygote=False
        )
        assert restored.restored
        assert _observe(restored) == _observe(cold)


# -- hypothesis: random programs --------------------------------------------

_FOLD_OPS = ("i32.add", "i32.sub", "i32.mul", "i32.and", "i32.or", "i32.xor")


def _random_wasi_prog(ops, n, seed):
    """A `_start` program folding random (op, constant) pairs over a loop,
    touching memory, then printing the 4-byte accumulator to stdout."""
    folds = "\n".join(
        f"(local.set $acc ({op} (local.get $acc) (i32.const {k})))"
        for op, k in ops
    )
    return f"""
    (module
      (import "wasi_snapshot_preview1" "fd_write"
        (func $fd_write (param i32 i32 i32 i32) (result i32)))
      (memory (export "memory") 1)
      (func (export "_start")
        (local $acc i32) (local $i i32)
        (local.set $acc (i32.const {seed}))
        (block $out
          (loop $top
            (br_if $out (i32.ge_u (local.get $i) (i32.const {n})))
            {folds}
            (i32.store (i32.and (local.get $acc) (i32.const 0xfffc))
                       (i32.add (local.get $acc) (local.get $i)))
            (local.set $i (i32.add (local.get $i) (i32.const 1)))
            (br $top)))
        (i32.store (i32.const 8192) (local.get $acc))
        (i32.store (i32.const 16) (i32.const 8192))
        (i32.store (i32.const 20) (i32.const 4))
        (drop (call $fd_write (i32.const 1) (i32.const 16) (i32.const 1) (i32.const 32)))))
    """


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(_FOLD_OPS), st.integers(0, 2**32 - 1)),
        min_size=1,
        max_size=4,
    ),
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_random_programs_restore_identically(ops, n, seed):
    reset_caches()
    blob = assemble_wat(_random_wasi_prog(ops, n, seed))
    cold = run_wasi(blob, zygote=False)
    captured = run_wasi(blob)
    restored = run_wasi(blob)
    assert restored.restored
    assert _observe(cold) == _observe(captured) == _observe(restored)
    assert restored.dirty_memory_bytes == captured.dirty_memory_bytes
