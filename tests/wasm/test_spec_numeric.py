"""Spec-style numeric battery: assert_return tables at type boundaries.

A compact harness in the spirit of the WebAssembly spec test suite:
each operator gets a parameterized function module, invoked over a table
of (inputs → expected) rows covering the boundary values the spec calls
out (INT_MIN/INT_MAX, -0.0, infinities, NaN, shift counts ≥ width, ...).
Integers are written/compared in *unsigned* representation.
"""

import math

import pytest

from repro.wasm import parse_wat, validate_module
from repro.wasm.runtime import Interpreter, Store, instantiate

I32_MIN = 0x80000000  # -2147483648 unsigned view
I32_MAX = 0x7FFFFFFF
U32_MAX = 0xFFFFFFFF
I64_MIN = 0x8000000000000000
I64_MAX = 0x7FFFFFFFFFFFFFFF
U64_MAX = 0xFFFFFFFFFFFFFFFF

_CACHE = {}


def invoke(op: str, in_types: str, out_type: str, *args):
    key = (op, in_types, out_type)
    runner = _CACHE.get(key)
    if runner is None:
        params = " ".join(f"(param {t})" for t in in_types.split())
        gets = " ".join(f"(local.get {i})" for i in range(len(in_types.split())))
        src = f'(module (func (export "f") {params} (result {out_type}) ({op} {gets})))'
        module = validate_module(parse_wat(src))
        store = Store()
        inst = instantiate(store, module)
        interp = Interpreter(store)
        addr = inst.export_addr("f", "func")
        runner = lambda *a: interp.invoke(addr, list(a))[0]  # noqa: E731
        _CACHE[key] = runner
    return runner(*args)


class TestI32Boundaries:
    @pytest.mark.parametrize(
        "a,b,want",
        [
            (I32_MAX, 1, I32_MIN),  # overflow wraps to INT_MIN
            (I32_MIN, I32_MIN, 0),
            (U32_MAX, U32_MAX, U32_MAX - 1),
            (0, 0, 0),
        ],
    )
    def test_add(self, a, b, want):
        assert invoke("i32.add", "i32 i32", "i32", a, b) == want

    @pytest.mark.parametrize(
        "a,b,want",
        [
            (0, 1, U32_MAX),  # 0 - 1 wraps to UINT_MAX
            (I32_MIN, 1, I32_MAX),  # INT_MIN - 1 wraps to INT_MAX
            (I32_MIN, I32_MIN, 0),
        ],
    )
    def test_sub(self, a, b, want):
        assert invoke("i32.sub", "i32 i32", "i32", a, b) == want

    @pytest.mark.parametrize(
        "a,b,want",
        [
            (I32_MIN, U32_MAX, I32_MIN),  # MIN * -1 wraps back to MIN
            (0x10000, 0x10000, 0),  # 2^32 wraps to 0
            (0x7FFF, 0x10001, 0x7FFF7FFF),
        ],
    )
    def test_mul(self, a, b, want):
        assert invoke("i32.mul", "i32 i32", "i32", a, b) == want

    @pytest.mark.parametrize(
        "a,b,want",
        [
            (7, 2, 3),
            (U32_MAX - 6, 2, U32_MAX - 2),  # -7 / 2 = -3
            (U32_MAX - 6, U32_MAX - 1, 3),  # -7 / -2 = 3
            (7, U32_MAX - 1, U32_MAX - 2),  # 7 / -2 = -3
            (I32_MIN, 2, 0xC0000000),  # MIN/2
        ],
    )
    def test_div_s_truncation(self, a, b, want):
        assert invoke("i32.div_s", "i32 i32", "i32", a, b) == want

    @pytest.mark.parametrize(
        "a,b,want",
        [
            (7, 3, 1),
            (U32_MAX - 6, 3, U32_MAX),  # -7 rem 3 = -1
            (7, U32_MAX - 2, 1),  # 7 rem -3 = 1
            (U32_MAX - 6, U32_MAX - 2, U32_MAX),  # -7 rem -3 = -1
        ],
    )
    def test_rem_s_sign(self, a, b, want):
        assert invoke("i32.rem_s", "i32 i32", "i32", a, b) == want

    @pytest.mark.parametrize("k", [0, 1, 31, 32, 33, 63, 64, 100])
    def test_shift_counts_mod_32(self, k):
        assert invoke("i32.shl", "i32 i32", "i32", 1, k) == (1 << (k % 32)) & U32_MAX
        assert invoke("i32.shr_u", "i32 i32", "i32", I32_MIN, k) == I32_MIN >> (k % 32)

    @pytest.mark.parametrize(
        "x,clz,ctz,pop",
        [
            (0, 32, 32, 0),
            (1, 31, 0, 1),
            (I32_MIN, 0, 31, 1),
            (U32_MAX, 0, 0, 32),
            (0x00F0, 24, 4, 4),
        ],
    )
    def test_bit_counting(self, x, clz, ctz, pop):
        assert invoke("i32.clz", "i32", "i32", x) == clz
        assert invoke("i32.ctz", "i32", "i32", x) == ctz
        assert invoke("i32.popcnt", "i32", "i32", x) == pop

    @pytest.mark.parametrize(
        "x,k,want",
        [
            (0xABCD9876, 0, 0xABCD9876),
            (0xFE00DC00, 4, 0xE00DC00F),
            (0xB0C1D2E3, 32, 0xB0C1D2E3),
        ],
    )
    def test_rotl(self, x, k, want):
        assert invoke("i32.rotl", "i32 i32", "i32", x, k) == want


class TestI64Boundaries:
    def test_add_wrap(self):
        assert invoke("i64.add", "i64 i64", "i64", I64_MAX, 1) == I64_MIN

    def test_div_s_min_by_two(self):
        assert invoke("i64.div_s", "i64 i64", "i64", I64_MIN, 2) == 0xC000000000000000

    def test_shift_mod_64(self):
        assert invoke("i64.shl", "i64 i64", "i64", 1, 64) == 1
        assert invoke("i64.shl", "i64 i64", "i64", 1, 65) == 2

    def test_clz_ctz(self):
        assert invoke("i64.clz", "i64", "i64", 1) == 63
        assert invoke("i64.ctz", "i64", "i64", I64_MIN) == 63

    def test_rem_s_min_minus_one(self):
        assert invoke("i64.rem_s", "i64 i64", "i64", I64_MIN, U64_MAX) == 0


class TestFloatSpecials:
    def test_neg_zero_identity(self):
        got = invoke("f64.neg", "f64", "f64", 0.0)
        assert got == 0.0 and math.copysign(1.0, got) < 0

    def test_add_inf_and_neg_inf_is_nan(self):
        assert math.isnan(invoke("f64.add", "f64 f64", "f64", math.inf, -math.inf))

    def test_mul_zero_inf_is_nan(self):
        assert math.isnan(invoke("f64.mul", "f64 f64", "f64", 0.0, math.inf))

    def test_sub_same_inf_is_nan(self):
        assert math.isnan(invoke("f64.sub", "f64 f64", "f64", math.inf, math.inf))

    @pytest.mark.parametrize(
        "x,want",
        [(0.5, 0.0), (1.5, 2.0), (2.5, 2.0), (-0.5, -0.0), (4.5, 4.0), (5.5, 6.0)],
    )
    def test_nearest_ties_even(self, x, want):
        got = invoke("f64.nearest", "f64", "f64", x)
        assert got == want
        assert math.copysign(1.0, got) == math.copysign(1.0, want)

    def test_abs_of_nan_is_nan(self):
        assert math.isnan(invoke("f64.abs", "f64", "f64", math.nan))

    @pytest.mark.parametrize(
        "a,b,want_min,want_max",
        [
            (1.0, 2.0, 1.0, 2.0),
            (-math.inf, math.inf, -math.inf, math.inf),
        ],
    )
    def test_min_max(self, a, b, want_min, want_max):
        assert invoke("f64.min", "f64 f64", "f64", a, b) == want_min
        assert invoke("f64.max", "f64 f64", "f64", a, b) == want_max

    def test_copysign_table(self):
        assert invoke("f64.copysign", "f64 f64", "f64", 1.0, -2.0) == -1.0
        assert invoke("f64.copysign", "f64 f64", "f64", -1.0, 2.0) == 1.0
        got = invoke("f64.copysign", "f64 f64", "f64", 1.0, -0.0)
        assert got == -1.0

    def test_sqrt_neg_zero(self):
        got = invoke("f64.sqrt", "f64", "f64", -0.0)
        assert got == 0.0 and math.copysign(1.0, got) < 0


class TestConversionBoundaries:
    @pytest.mark.parametrize(
        "x,want",
        [
            (2147483647.0, I32_MAX),
            (-2147483648.0, I32_MIN),
            (2147483646.9, 2147483646),
            (-2147483648.9, I32_MIN),  # truncates toward zero into range
            (-0.9, 0),
        ],
    )
    def test_i32_trunc_f64_s_in_range(self, x, want):
        assert invoke("i32.trunc_f64_s", "f64", "i32", x) == want

    @pytest.mark.parametrize("x", [2147483648.0, -2147483649.0, math.inf, -math.inf])
    def test_i32_trunc_f64_s_out_of_range_traps(self, x):
        from repro.errors import WasmTrap

        with pytest.raises(WasmTrap):
            invoke("i32.trunc_f64_s", "f64", "i32", x)

    @pytest.mark.parametrize(
        "x,want",
        [(4294967295.0, U32_MAX), (0.9, 0), (4294967295.9, U32_MAX)],
    )
    def test_i32_trunc_f64_u_in_range(self, x, want):
        assert invoke("i32.trunc_f64_u", "f64", "i32", x) == want

    def test_f32_convert_precision_loss(self):
        # 2^24 + 1 is not representable in f32.
        got = invoke("f32.convert_i32_s", "i32", "f32", (1 << 24) + 1)
        assert got == float(1 << 24)

    def test_f64_convert_u64_max(self):
        got = invoke("f64.convert_i64_u", "i64", "f64", U64_MAX)
        assert got == 18446744073709551616.0  # rounded up to 2^64

    def test_wrap_keeps_low_bits(self):
        assert invoke("i32.wrap_i64", "i64", "i32", 0xAABBCCDD11223344) == 0x11223344

    @pytest.mark.parametrize(
        "x,want",
        [(0x7F, 0x7F), (0x80, 0xFFFFFF80), (0xFF, U32_MAX), (0x17F, 0x7F)],
    )
    def test_extend8_s(self, x, want):
        assert invoke("i32.extend8_s", "i32", "i32", x) == want

    def test_reinterpret_nan_payload_roundtrip(self):
        bits = 0x7FF8000000000001  # quiet NaN with payload
        got = invoke("f64.reinterpret_i64", "i64", "f64", bits)
        back = invoke("i64.reinterpret_f64", "f64", "i64", got)
        assert back == bits

    def test_reinterpret_neg_zero(self):
        assert invoke("i64.reinterpret_f64", "f64", "i64", -0.0) == 1 << 63
