"""Binary encoder/decoder: sections, roundtrips, malformed input."""

import pytest

from repro.errors import MalformedModule
from repro.wasm import decode_module, encode_module, parse_wat
from repro.wasm.ast import (
    CustomSection,
    DataSegment,
    ElemSegment,
    Export,
    Function,
    Global,
    Import,
    Instr,
    Module,
)
from repro.wasm.types import (
    FuncType,
    GlobalType,
    Limits,
    MemoryType,
    TableType,
    ValType,
)


def roundtrip(module: Module) -> Module:
    blob = encode_module(module)
    decoded = decode_module(blob)
    assert encode_module(decoded) == blob, "re-encode must be byte-identical"
    return decoded


class TestHeader:
    def test_empty_module(self):
        blob = encode_module(Module())
        assert blob == b"\x00asm\x01\x00\x00\x00"
        assert decode_module(blob).types == []

    def test_bad_magic(self):
        with pytest.raises(MalformedModule, match="magic"):
            decode_module(b"\x00bad\x01\x00\x00\x00")

    def test_bad_version(self):
        with pytest.raises(MalformedModule, match="version"):
            decode_module(b"\x00asm\x02\x00\x00\x00")

    def test_truncated_header(self):
        with pytest.raises(MalformedModule):
            decode_module(b"\x00asm")


class TestSections:
    def test_type_section_roundtrip(self):
        m = Module(types=[FuncType((ValType.I32, ValType.I64), (ValType.F64,))])
        assert roundtrip(m).types == m.types

    def test_import_kinds_roundtrip(self):
        m = Module(
            types=[FuncType((ValType.I32,), ())],
            imports=[
                Import("env", "f", "func", 0),
                Import("env", "t", "table", TableType(Limits(1, 10))),
                Import("env", "m", "mem", MemoryType(Limits(1, None))),
                Import("env", "g", "global", GlobalType(ValType.I64, mutable=True)),
            ],
        )
        decoded = roundtrip(m)
        assert [i.kind for i in decoded.imports] == ["func", "table", "mem", "global"]
        assert decoded.imports[1].desc.limits == Limits(1, 10)
        assert decoded.imports[3].desc.mutable is True

    def test_function_and_code_roundtrip(self):
        m = Module(
            types=[FuncType((ValType.I32,), (ValType.I32,))],
            funcs=[
                Function(
                    type_idx=0,
                    locals=[ValType.I64, ValType.I64, ValType.F32],
                    body=[
                        Instr("local.get", (0,)),
                        Instr("i32.const", (5,)),
                        Instr("i32.add"),
                    ],
                )
            ],
        )
        decoded = roundtrip(m)
        assert decoded.funcs[0].locals == [ValType.I64, ValType.I64, ValType.F32]
        assert [i.op for i in decoded.funcs[0].body] == ["local.get", "i32.const", "i32.add"]

    def test_memory_limits_roundtrip(self):
        m = Module(mems=[MemoryType(Limits(2, 16))])
        assert roundtrip(m).mems[0].limits == Limits(2, 16)

    def test_global_with_init(self):
        m = Module(
            globals=[
                Global(GlobalType(ValType.I32, True), [Instr("i32.const", (7,))])
            ]
        )
        decoded = roundtrip(m)
        assert decoded.globals[0].init[0].args == (7,)

    def test_exports_roundtrip(self):
        m = Module(
            types=[FuncType()],
            funcs=[Function(0)],
            mems=[MemoryType(Limits(1))],
            exports=[Export("run", "func", 0), Export("memory", "mem", 0)],
        )
        decoded = roundtrip(m)
        assert {(e.name, e.kind) for e in decoded.exports} == {
            ("run", "func"),
            ("memory", "mem"),
        }

    def test_start_section(self):
        m = Module(types=[FuncType()], funcs=[Function(0)], start=0)
        assert roundtrip(m).start == 0

    def test_elem_and_data_segments(self):
        m = Module(
            types=[FuncType()],
            funcs=[Function(0)],
            tables=[TableType(Limits(4))],
            mems=[MemoryType(Limits(1))],
            elems=[ElemSegment(0, [Instr("i32.const", (1,))], [0])],
            datas=[DataSegment(0, [Instr("i32.const", (8,))], b"hello")],
        )
        decoded = roundtrip(m)
        assert decoded.elems[0].func_indices == [0]
        assert decoded.datas[0].data == b"hello"

    def test_custom_section_preserved(self):
        m = Module(customs=[CustomSection("name", b"\x01\x02\x03")])
        decoded = roundtrip(m)
        assert decoded.customs[0].name == "name"
        assert decoded.customs[0].payload == b"\x01\x02\x03"

    def test_section_order_enforced(self):
        # memory (5) then type (1) is out of order.
        blob = bytearray(b"\x00asm\x01\x00\x00\x00")
        blob += bytes([5, 3, 1, 0, 1])  # memory section
        blob += bytes([1, 4, 1, 0x60, 0, 0])  # type section
        with pytest.raises(MalformedModule, match="out of order"):
            decode_module(bytes(blob))

    def test_trailing_garbage_in_section(self):
        blob = bytearray(b"\x00asm\x01\x00\x00\x00")
        blob += bytes([1, 5, 1, 0x60, 0, 0, 0xAA])  # extra byte in type section
        with pytest.raises(MalformedModule, match="trailing"):
            decode_module(bytes(blob))

    def test_code_count_mismatch(self):
        blob = bytearray(b"\x00asm\x01\x00\x00\x00")
        blob += bytes([1, 4, 1, 0x60, 0, 0])  # one type
        blob += bytes([3, 2, 1, 0])  # one function
        blob += bytes([10, 1, 0])  # zero code entries
        with pytest.raises(MalformedModule, match="code count"):
            decode_module(bytes(blob))


class TestInstructions:
    def test_structured_control_roundtrip(self):
        src = """
        (module (func (result i32)
          (block (result i32)
            (if (result i32) (i32.const 1)
              (then (i32.const 2))
              (else (i32.const 3))))))
        """
        m = parse_wat(src)
        decoded = roundtrip(m)
        block = decoded.funcs[0].body[0]
        assert block.op == "block"
        if_instr = block.body[-1]
        assert if_instr.op == "if"
        assert if_instr.body[0].args == (2,)
        assert if_instr.else_body[0].args == (3,)

    def test_br_table_roundtrip(self):
        src = """
        (module (func (param i32)
          (block (block (block
            (br_table 0 1 2 (local.get 0)))))))
        """
        decoded = roundtrip(parse_wat(src))

        def find(instrs):
            for i in instrs:
                if i.op == "br_table":
                    return i
                found = find(i.body) or find(i.else_body)
                if found:
                    return found
            return None

        bt = find(decoded.funcs[0].body)
        assert bt is not None and bt.args == ((0, 1), 2)

    def test_float_const_roundtrip(self):
        src = '(module (func (result f64) (f64.const 3.14159)))'
        decoded = roundtrip(parse_wat(src))
        assert decoded.funcs[0].body[0].args[0] == pytest.approx(3.14159)

    def test_memarg_roundtrip(self):
        src = "(module (memory 1) (func (drop (i32.load offset=16 align=1 (i32.const 0)))))"
        decoded = roundtrip(parse_wat(src))
        load = decoded.funcs[0].body[1]
        assert load.op == "i32.load"
        assert load.args == (0, 16)  # align log2=0, offset=16

    def test_fc_prefixed_roundtrip(self):
        src = "(module (func (param f64) (result i32) (i32.trunc_sat_f64_s (local.get 0))))"
        decoded = roundtrip(parse_wat(src))
        assert decoded.funcs[0].body[-1].op == "i32.trunc_sat_f64_s"

    def test_memory_copy_fill_roundtrip(self):
        src = """
        (module (memory 1) (func
          (memory.copy (i32.const 0) (i32.const 16) (i32.const 8))
          (memory.fill (i32.const 0) (i32.const 0) (i32.const 4))))
        """
        decoded = roundtrip(parse_wat(src))
        ops = [i.op for i in decoded.funcs[0].body]
        assert "memory.copy" in ops and "memory.fill" in ops

    def test_unknown_opcode_rejected(self):
        blob = bytearray(b"\x00asm\x01\x00\x00\x00")
        blob += bytes([1, 4, 1, 0x60, 0, 0])
        blob += bytes([3, 2, 1, 0])
        # body: size 3, 0 locals, opcode 0xFE (unknown), end
        blob += bytes([10, 5, 1, 3, 0, 0xFE, 0x0B])
        with pytest.raises(MalformedModule, match="opcode"):
            decode_module(bytes(blob))
