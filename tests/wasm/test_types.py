"""Type-system primitives: ValType, FuncType, Limits matching."""

import pytest

from repro.errors import MalformedModule
from repro.wasm.types import FuncType, Limits, TableType, ValType


class TestValType:
    def test_byte_mapping(self):
        assert ValType.from_byte(0x7F) is ValType.I32
        assert ValType.from_byte(0x7C) is ValType.F64

    def test_unknown_byte(self):
        with pytest.raises(MalformedModule, match="value type"):
            ValType.from_byte(0x11)

    def test_properties(self):
        assert ValType.I64.is_int and ValType.I64.bits == 64
        assert not ValType.F32.is_int and ValType.F32.bits == 32


class TestFuncType:
    def test_equality_is_structural(self):
        a = FuncType((ValType.I32,), (ValType.I64,))
        b = FuncType((ValType.I32,), (ValType.I64,))
        assert a == b and hash(a) == hash(b)

    def test_str_rendering(self):
        ft = FuncType((ValType.I32, ValType.F64), (ValType.I64,))
        assert str(ft) == "[i32 f64] -> [i64]"


class TestLimits:
    def test_validation(self):
        with pytest.raises(MalformedModule):
            Limits(-1)
        with pytest.raises(MalformedModule):
            Limits(5, 3)

    @pytest.mark.parametrize(
        "declared,actual,ok",
        [
            (Limits(1), Limits(1), True),
            (Limits(1), Limits(5), True),  # bigger minimum is fine
            (Limits(2), Limits(1), False),  # too small
            (Limits(1, 10), Limits(1, 10), True),
            (Limits(1, 10), Limits(1, 5), True),  # tighter max is fine
            (Limits(1, 10), Limits(1, None), False),  # unbounded vs bounded
            (Limits(1, 10), Limits(1, 20), False),  # looser max
            (Limits(1, None), Limits(1, 5), True),  # declared unbounded
        ],
    )
    def test_import_matching_rule(self, declared, actual, ok):
        assert declared.contains(actual) is ok


class TestTableType:
    def test_default_elem_kind_is_funcref(self):
        assert TableType(Limits(1)).elem_kind == 0x70
