"""LEB128 codec unit tests (spec edge cases)."""

import pytest

from repro.errors import MalformedModule
from repro.wasm import leb128


class TestUnsigned:
    @pytest.mark.parametrize(
        "value,encoding",
        [
            (0, b"\x00"),
            (1, b"\x01"),
            (127, b"\x7f"),
            (128, b"\x80\x01"),
            (624485, b"\xe5\x8e\x26"),
            (2**32 - 1, b"\xff\xff\xff\xff\x0f"),
        ],
    )
    def test_known_encodings(self, value, encoding):
        assert leb128.encode_u(value) == encoding
        decoded, pos = leb128.decode_u(encoding, 0)
        assert decoded == value and pos == len(encoding)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            leb128.encode_u(-1)

    def test_truncated_input(self):
        with pytest.raises(MalformedModule):
            leb128.decode_u(b"\x80", 0)

    def test_too_long_for_width(self):
        with pytest.raises(MalformedModule):
            leb128.decode_u(b"\x80\x80\x80\x80\x80\x01", 0, bits=32)

    def test_overflow_in_final_byte(self):
        # 5-byte u32 with high bits set in the last byte.
        with pytest.raises(MalformedModule):
            leb128.decode_u(b"\xff\xff\xff\xff\x7f", 0, bits=32)

    def test_decode_at_offset(self):
        data = b"junk" + leb128.encode_u(300)
        value, pos = leb128.decode_u(data, 4)
        assert value == 300

    def test_64_bit_values(self):
        big = 2**64 - 1
        value, _ = leb128.decode_u(leb128.encode_u(big), 0, bits=64)
        assert value == big


class TestSigned:
    @pytest.mark.parametrize(
        "value,encoding",
        [
            (0, b"\x00"),
            (1, b"\x01"),
            (-1, b"\x7f"),
            (63, b"\x3f"),
            (64, b"\xc0\x00"),
            (-64, b"\x40"),
            (-65, b"\xbf\x7f"),
            (-123456, b"\xc0\xbb\x78"),
        ],
    )
    def test_known_encodings(self, value, encoding):
        assert leb128.encode_s(value) == encoding
        decoded, pos = leb128.decode_s(encoding, 0)
        assert decoded == value and pos == len(encoding)

    def test_int32_extremes(self):
        for value in (-(2**31), 2**31 - 1):
            decoded, _ = leb128.decode_s(leb128.encode_s(value), 0, bits=32)
            assert decoded == value

    def test_int64_extremes(self):
        for value in (-(2**63), 2**63 - 1):
            decoded, _ = leb128.decode_s(leb128.encode_s(value), 0, bits=64)
            assert decoded == value

    def test_value_too_large_for_s32(self):
        encoded = leb128.encode_s(2**31)  # fits s64, not s32
        with pytest.raises(MalformedModule):
            leb128.decode_s(encoded, 0, bits=32)

    def test_truncated(self):
        with pytest.raises(MalformedModule):
            leb128.decode_s(b"\xc0", 0)

    def test_s33_block_types(self):
        # Block type indices use 33-bit signed decoding.
        value, _ = leb128.decode_s(leb128.encode_s(2**32 - 1), 0, bits=33)
        assert value == 2**32 - 1
