"""Embedder API details + multi-value block results."""

import pytest

from repro.errors import WasmError
from repro.wasm import assemble_wat, parse_wat, validate_module
from repro.wasm.embed import run_wasi
from repro.wasm.runtime import Interpreter, Store, instantiate
from repro.wasm.wasi import InMemoryFilesystem


class TestMultiValueBlocks:
    def test_block_with_two_results(self):
        # Multi-value block results ride on a type-section signature.
        src = """
        (module
          (type $pair (func (result i32 i32)))
          (func (export "run") (result i32)
            (block (result i32 i32)
              (i32.const 30)
              (i32.const 12))
            i32.add))
        """
        module = validate_module(parse_wat(src))
        store = Store()
        inst = instantiate(store, module)
        assert Interpreter(store).invoke_export(inst, "run") == [42]

    def test_function_with_two_results(self):
        src = """
        (module
          (func $divmod (param i32 i32) (result i32 i32)
            (i32.div_u (local.get 0) (local.get 1))
            (i32.rem_u (local.get 0) (local.get 1)))
          (func (export "run") (result i32)
            (call $divmod (i32.const 17) (i32.const 5))
            i32.mul))
        """
        module = validate_module(parse_wat(src))
        store = Store()
        inst = instantiate(store, module)
        # 17/5=3, 17%5=2 -> 6
        assert Interpreter(store).invoke_export(inst, "run") == [6]

    def test_direct_multivalue_invoke(self):
        src = """
        (module (func (export "pair") (result i32 i64)
          (i32.const 1) (i64.const 2)))
        """
        module = validate_module(parse_wat(src))
        store = Store()
        inst = instantiate(store, module)
        assert Interpreter(store).invoke_export(inst, "pair") == [1, 2]


class TestEmbedApi:
    def test_custom_entrypoint(self):
        blob = assemble_wat(
            '(module (memory (export "memory") 1) '
            '(func (export "serve") (i32.store (i32.const 0) (i32.const 9))))'
        )
        result = run_wasi(blob, entrypoint="serve")
        assert result.exit_code == 0

    def test_missing_entrypoint_raises(self):
        blob = assemble_wat("(module (func $hidden))")
        with pytest.raises(WasmError, match="no '_start' export"):
            run_wasi(blob)

    def test_start_section_runs_without_entrypoint(self):
        blob = assemble_wat(
            '(module (memory (export "memory") 1) '
            "(func $init (i32.store (i32.const 4) (i32.const 7))) (start $init))"
        )
        result = run_wasi(blob)  # no _start export, but start section
        assert result.exit_code == 0

    def test_shared_filesystem_across_runs(self):
        fs = InMemoryFilesystem()
        writer = assemble_wat(
            """
            (module
              (import "wasi_snapshot_preview1" "path_open"
                (func $open (param i32 i32 i32 i32 i32 i64 i64 i32 i32) (result i32)))
              (import "wasi_snapshot_preview1" "fd_write"
                (func $fd_write (param i32 i32 i32 i32) (result i32)))
              (memory (export "memory") 1)
              (data (i32.const 400) "state.txt")
              (data (i32.const 500) "persisted")
              (func (export "_start")
                ;; open with OFLAGS_CREAT (=1)
                (drop (call $open (i32.const 3) (i32.const 0)
                  (i32.const 400) (i32.const 9) (i32.const 1)
                  (i64.const -1) (i64.const -1) (i32.const 0) (i32.const 32)))
                (i32.store (i32.const 0) (i32.const 500))
                (i32.store (i32.const 4) (i32.const 9))
                (drop (call $fd_write (i32.load (i32.const 32))
                                      (i32.const 0) (i32.const 1) (i32.const 16)))))
            """
        )
        run_wasi(writer, preopens={"/data": "/data"}, fs=fs)
        assert fs.read_file("/data/state.txt") == b"persisted"

    def test_instruction_count_deterministic(self):
        blob = assemble_wat(
            '(module (func (export "_start") (local $i i32) '
            "(block $e (loop $t (br_if $e (i32.ge_u (local.get $i) (i32.const 50))) "
            "(local.set $i (i32.add (local.get $i) (i32.const 1))) (br $t)))))"
        )
        a = run_wasi(blob).instructions
        b = run_wasi(blob).instructions
        assert a == b > 100
