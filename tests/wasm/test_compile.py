"""Unit tests for the AST → flat-code lowering pass (runtime/compile.py)."""

import pytest

from repro.wasm import parse_wat, validate_module
from repro.wasm.runtime import (
    Interpreter,
    Store,
    instantiate,
    prepare_function,
    prepare_module,
)
from repro.wasm.runtime import compile as rtc


def prepare(src: str, index: int = 0):
    module = validate_module(parse_wat(src))
    return module, prepare_function(module, module.funcs[index])


def handlers(pf):
    return [entry[0] for entry in pf.code]


class TestLowering:
    def test_terminal_entry(self):
        _, pf = prepare('(module (func (export "run")))')
        assert pf.code[-1][0] is rtc.h_end
        assert pf.code[-1][2] == 0  # the implicit end is free

    def test_branch_targets_resolved_to_pcs(self):
        src = """(module (func (export "run") (result i32)
            (block $b (result i32)
              (i32.const 1)
              (br $b))))"""
        _, pf = prepare(src)
        for handler, args, _ in pf.code:
            if handler is rtc.h_goto:
                assert isinstance(args, int) and 0 <= args <= len(pf.code)
                return
        pytest.fail("no goto emitted for br")

    def test_loop_backedge_points_after_header(self):
        # The loop header no-op is charged once on entry; the backward
        # branch must re-enter *after* it or iterations would re-pay it.
        src = """(module (func (export "run") (param i32)
            (loop $l (br_if $l (local.get 0)))))"""
        _, pf = prepare(src)
        hs = handlers(pf)
        header_pc = hs.index(rtc.h_nop)
        branch_pc = next(
            i for i, h in enumerate(hs) if h in (rtc.h_br_if, rtc.h_br_if_adjust)
        )
        target = pf.code[branch_pc][1]
        if isinstance(target, tuple):
            target = target[0]
        assert target == header_pc + 1

    def test_weights_total_source_instructions(self):
        # Sum of weights == number of AST instructions the body contains,
        # counted the way the reference walker counts them.
        src = """(module (func (export "run") (param i32) (result i32)
            (block $b (result i32)
              (i32.add (local.get 0) (i32.const 2)))))"""
        module, pf = prepare(src)

        def count(body):
            n = 0
            for ins in body:
                n += 1
                if ins.op in ("block", "loop", "if"):
                    n += count(ins.body) + count(ins.else_body or [])
            return n

        assert pf.source_instrs == count(module.funcs[0].body)

    def test_unknown_op_rejected(self):
        from repro.errors import WasmTrap
        from repro.wasm.ast import Function, Instr, Module
        from repro.wasm.types import FuncType

        module = Module(types=[FuncType((), ())])
        func = Function(type_idx=0, body=[Instr("bogus.op")])
        module.funcs.append(func)
        with pytest.raises(WasmTrap, match="unknown instruction"):
            prepare_function(module, func)


class TestFusion:
    def test_local_get_pair_binop(self):
        src = """(module (func (export "run") (param i32 i32) (result i32)
            (i32.add (local.get 0) (local.get 1))))"""
        _, pf = prepare(src)
        assert rtc.h_lgg_binop in handlers(pf)
        # Three source instructions collapse to one weight-3 entry.
        entry = pf.code[handlers(pf).index(rtc.h_lgg_binop)]
        assert entry[2] == 3

    def test_const_binop(self):
        src = """(module (func (export "run") (param i32) (result i32)
            (i32.add (local.get 0) (i32.const 41))))"""
        _, pf = prepare(src)
        assert rtc.h_const_binop in handlers(pf)

    def test_local_get_load(self):
        src = """(module (memory 1) (func (export "run") (param i32) (result i32)
            (i32.load (local.get 0))))"""
        _, pf = prepare(src)
        assert rtc.h_lg_i32_load in handlers(pf)

    def test_cmp_br_if(self):
        src = """(module (func (export "run") (param i32) (result i32)
            (local $i i32)
            (block $out
              (loop $top
                (local.set $i (i32.add (local.get $i) (i32.const 1)))
                (br_if $out (i32.ge_u (i32.add (local.get $i) (i32.const 0))
                                      (local.get 0)))
                (br $top)))
            (local.get $i)))"""
        _, pf = prepare(src)
        assert rtc.h_cmp_br_if in handlers(pf)

    def test_fusion_shrinks_code(self):
        src = """(module (func (export "run") (param i32 i32) (result i32)
            (i32.mul (i32.add (local.get 0) (local.get 1))
                     (i32.sub (local.get 0) (local.get 1)))))"""
        _, pf = prepare(src)
        assert len(pf.code) < pf.source_instrs

    def test_fused_semantics(self):
        src = """(module (func (export "run") (param i32 i32) (result i32)
            (i32.mul (i32.add (local.get 0) (local.get 1))
                     (i32.sub (local.get 0) (local.get 1)))))"""
        module = validate_module(parse_wat(src))
        store = Store()
        inst = instantiate(store, module)
        assert Interpreter(store).invoke_export(inst, "run", [10, 3]) == [
            (13 * 7) & 0xFFFFFFFF
        ]


class TestPreparedCaching:
    SRC = """(module (func (export "run") (result i32) (i32.const 5)))"""

    def test_attached_once_per_function_object(self):
        module = validate_module(parse_wat(self.SRC))
        pm1 = prepare_module(module)
        pm2 = prepare_module(module)
        assert pm1.functions[0] is pm2.functions[0]
        assert module.funcs[0].prepared is pm1.functions[0]

    def test_attach_shares_code_across_decodes(self):
        m1 = validate_module(parse_wat(self.SRC))
        m2 = validate_module(parse_wat(self.SRC))
        pm = prepare_module(m1)
        pm.attach(m2)
        assert m2.funcs[0].prepared is m1.funcs[0].prepared

    def test_lazy_prepare_on_first_call(self):
        module = validate_module(parse_wat(self.SRC))
        assert module.funcs[0].prepared is None
        store = Store()
        inst = instantiate(store, module)
        assert Interpreter(store).invoke_export(inst, "run") == [5]
        assert module.funcs[0].prepared is not None
