"""Bulk-memory extension: passive segments, memory.init, data.drop."""

import pytest

from repro.errors import InvalidModule, WasmTrap
from repro.wasm import decode_module, encode_module, parse_wat, validate_module
from repro.wasm.embed import run_wasi
from repro.wasm.runtime import Interpreter, Store, instantiate
from repro.wasm.wat import print_wat


def run(src: str, func: str = "run", args=()):
    module = validate_module(parse_wat(src))
    store = Store()
    inst = instantiate(store, module)
    return Interpreter(store).invoke_export(inst, func, args), store, inst


class TestParsing:
    def test_passive_segment_parses(self):
        m = parse_wat('(module (memory 1) (data "payload"))')
        assert m.datas[0].passive and m.datas[0].data == b"payload"

    def test_active_segment_still_works(self):
        m = parse_wat('(module (memory 1) (data (i32.const 4) "x"))')
        assert not m.datas[0].passive

    def test_named_segment_referenced_by_ops(self):
        m = parse_wat(
            """
            (module (memory 1)
              (data $blob "abc")
              (func (memory.init $blob (i32.const 0) (i32.const 0) (i32.const 3))
                    (data.drop $blob)))
            """
        )
        body = m.funcs[0].body
        assert body[3].op == "memory.init" and body[3].args == (0,)
        assert body[4].op == "data.drop" and body[4].args == (0,)


class TestBinaryFormat:
    def test_passive_roundtrip(self):
        m = parse_wat('(module (memory 1) (data "p") (data (i32.const 0) "a"))')
        blob = encode_module(m)
        decoded = decode_module(blob)
        assert decoded.datas[0].passive and not decoded.datas[1].passive
        assert encode_module(decoded) == blob

    def test_datacount_section_emitted_when_needed(self):
        m = parse_wat(
            """
            (module (memory 1) (data $d "abc")
              (func (memory.init $d (i32.const 0) (i32.const 0) (i32.const 1))))
            """
        )
        blob = encode_module(m)
        assert bytes([12]) in blob  # DataCount section id present
        decoded = decode_module(blob)
        assert len(decoded.datas) == 1

    def test_datacount_mismatch_rejected(self):
        from repro.errors import MalformedModule

        m = parse_wat(
            """
            (module (memory 1) (data $d "abc")
              (func (memory.init $d (i32.const 0) (i32.const 0) (i32.const 1))))
            """
        )
        blob = bytearray(encode_module(m))
        # Patch the DataCount payload (section 12, size 1, count 1 -> 2).
        idx = blob.index(bytes([12, 1, 1]))
        blob[idx + 2] = 2
        with pytest.raises(MalformedModule, match="data count"):
            decode_module(bytes(blob))

    def test_printer_handles_passive(self):
        m = parse_wat('(module (memory 1) (data "p\\00q"))')
        reparsed = parse_wat(print_wat(m))
        assert encode_module(reparsed) == encode_module(m)


class TestValidation:
    def test_memory_init_requires_valid_segment(self):
        with pytest.raises(InvalidModule, match="no data segment"):
            validate_module(
                parse_wat(
                    "(module (memory 1) (func "
                    "(memory.init 3 (i32.const 0) (i32.const 0) (i32.const 0))))"
                )
            )

    def test_data_drop_requires_valid_segment(self):
        with pytest.raises(InvalidModule, match="no data segment"):
            validate_module(parse_wat("(module (func (data.drop 0)))"))

    def test_memory_init_requires_memory(self):
        with pytest.raises(InvalidModule, match="requires a memory"):
            validate_module(
                parse_wat(
                    '(module (data "x") (func '
                    "(memory.init 0 (i32.const 0) (i32.const 0) (i32.const 0))))"
                )
            )


class TestExecution:
    INIT_SRC = """
    (module (memory 1)
      (data $greeting "hello!")
      (func (export "run") (result i32)
        (memory.init $greeting (i32.const 100) (i32.const 0) (i32.const 6))
        (i32.load8_u (i32.const 100))))
    """

    def test_memory_init_copies_payload(self):
        [result], store, inst = run(self.INIT_SRC)
        assert result == ord("h")
        mem = store.mems[inst.mem_addrs[0]]
        assert mem.read(100, 6) == b"hello!"

    def test_partial_init_with_source_offset(self):
        src = """
        (module (memory 1)
          (data $d "abcdef")
          (func (export "run") (result i32)
            (memory.init $d (i32.const 0) (i32.const 2) (i32.const 3))
            (i32.load8_u (i32.const 0))))
        """
        [result], store, inst = run(src)
        assert result == ord("c")
        assert store.mems[inst.mem_addrs[0]].read(0, 3) == b"cde"

    def test_init_after_drop_traps(self):
        src = """
        (module (memory 1)
          (data $d "abc")
          (func (export "run")
            (data.drop $d)
            (memory.init $d (i32.const 0) (i32.const 0) (i32.const 1))))
        """
        with pytest.raises(WasmTrap, match="out of bounds"):
            run(src)

    def test_zero_length_init_after_drop_succeeds(self):
        src = """
        (module (memory 1)
          (data $d "abc")
          (func (export "run")
            (data.drop $d)
            (memory.init $d (i32.const 0) (i32.const 0) (i32.const 0))))
        """
        run(src)  # no trap

    def test_source_oob_traps(self):
        src = """
        (module (memory 1)
          (data $d "abc")
          (func (export "run")
            (memory.init $d (i32.const 0) (i32.const 1) (i32.const 5))))
        """
        with pytest.raises(WasmTrap, match="out of bounds"):
            run(src)

    def test_dest_oob_traps(self):
        src = """
        (module (memory 1)
          (data $d "abc")
          (func (export "run")
            (memory.init $d (i32.const 65535) (i32.const 0) (i32.const 3))))
        """
        with pytest.raises(WasmTrap, match="out of bounds"):
            run(src)

    def test_double_drop_is_ok(self):
        src = """
        (module (memory 1)
          (data $d "abc")
          (func (export "run") (data.drop $d) (data.drop $d)))
        """
        run(src)

    def test_active_segments_unaffected(self):
        """Active segments still initialize memory and then auto-drop."""
        src = """
        (module (memory 1)
          (data (i32.const 8) "live")
          (func (export "run") (result i32) (i32.load8_u (i32.const 8))))
        """
        [result], store, inst = run(src)
        assert result == ord("l")
        assert store.datas[inst.data_addrs[0]] is None  # auto-dropped

    def test_lazy_initialization_pattern_under_wasi(self):
        """The classic use: a passive segment initialized on demand."""
        from repro.wasm import assemble_wat

        blob = assemble_wat(
            """
            (module
              (import "wasi_snapshot_preview1" "fd_write"
                (func $fd_write (param i32 i32 i32 i32) (result i32)))
              (import "wasi_snapshot_preview1" "proc_exit"
                (func $proc_exit (param i32)))
              (memory (export "memory") 1)
              (data $msg "lazy init works\\n")
              (func (export "_start")
                (memory.init $msg (i32.const 64) (i32.const 0) (i32.const 16))
                (data.drop $msg)
                (i32.store (i32.const 0) (i32.const 64))
                (i32.store (i32.const 4) (i32.const 16))
                (drop (call $fd_write (i32.const 1) (i32.const 0) (i32.const 1) (i32.const 16)))
                (call $proc_exit (i32.const 0))))
            """
        )
        result = run_wasi(blob)
        assert result.stdout == b"lazy init works\n"
