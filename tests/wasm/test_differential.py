"""Differential testing: prepared and specialized code vs the reference.

Every case executes the same module through the reference tree-walker,
the prepared flat interpreter, and the specialization tier in both its
modes (``bytecode``: folded/elided/IC'd flat code; ``on``: exec'd Python
closures where compilable) and asserts identical observable behaviour:
result values (including float bit patterns), trap type and message,
fuel accounting, total ``instructions_executed``, and final
linear-memory contents. Metered runs (``fuel`` set) exercise the
specialized flat bytecode through the metered-deopt path; unmetered runs
exercise the compiled closures.
"""

import pytest

from repro.errors import ExhaustionError, WasmTrap
from repro.wasm import parse_wat, validate_module
from repro.wasm.embed import run_wasi
from repro.wasm.runtime import (
    Interpreter,
    ReferenceInterpreter,
    Store,
    instantiate,
    prepare_module,
    specialize_module,
)
from repro.workloads.microservice import build_microservice_wasm

INTERPS = (Interpreter, ReferenceInterpreter)
SPECIALIZE_MODES = ("bytecode", "on")


def _observe(cls, src, func, args, fuel, specialize=None):
    """Run one interpreter; capture (outcome, instr count, fuel left, memory)."""
    module = validate_module(parse_wat(src))
    if specialize is not None:
        prepare_module(module)
        specialize_module(module, specialize).attach(module)
    store = Store()
    inst = instantiate(store, module)
    interp = cls(store, fuel=fuel)
    try:
        outcome = ("ok", interp.invoke_export(inst, func, list(args)))
    except ExhaustionError as e:  # subclass of WasmTrap: catch first
        outcome = ("exhausted", str(e))
    except WasmTrap as e:
        outcome = ("trap", str(e))
    mem = bytes(store.mems[inst.mem_addrs[0]].data) if inst.mem_addrs else b""
    return outcome, interp.instructions_executed, interp.fuel, mem


def check(src, func="run", args=(), fuel=None):
    ref = _observe(ReferenceInterpreter, src, func, args, fuel)
    flat = _observe(Interpreter, src, func, args, fuel)
    assert flat == ref, f"\nflat: {flat}\nref : {ref}"
    for mode in SPECIALIZE_MODES:
        spec = _observe(Interpreter, src, func, args, fuel, specialize=mode)
        assert spec == ref, f"\nspec({mode}): {spec}\nref : {ref}"
    return flat[0]


MODULES = {
    "fib_recursive": """
        (module (func $f (export "run") (param i32) (result i32)
          (if (result i32) (i32.lt_u (local.get 0) (i32.const 2))
            (then (local.get 0))
            (else (i32.add
              (call $f (i32.sub (local.get 0) (i32.const 1)))
              (call $f (i32.sub (local.get 0) (i32.const 2))))))))
    """,
    "loop_sum": """
        (module (func (export "run") (param i32) (result i32)
          (local $acc i32)
          (block $out
            (loop $top
              (br_if $out (i32.eqz (local.get 0)))
              (local.set $acc (i32.add (local.get $acc) (local.get 0)))
              (local.set 0 (i32.sub (local.get 0) (i32.const 1)))
              (br $top)))
          (local.get $acc)))
    """,
    "branch_stack_repair": """
        (module (func (export "run") (param i32) (result i32)
          (block $a (result i32)
            (i32.const 7)
            (i32.const 8)
            (i32.const 30)
            (br_if $a (i32.lt_u (local.get 0) (i32.const 2)))
            (drop) (drop) (drop)
            (i32.const 40))))
    """,
    "fused_cmp_brif": """
        (module (func (export "run") (param i32) (result i32)
          (local $i i32)
          (block $out
            (loop $top
              (local.set $i (i32.add (local.get $i) (i32.const 1)))
              (br_if $out (i32.ge_u (i32.add (local.get $i) (i32.const 0))
                                    (local.get 0)))
              (br $top)))
          (local.get $i)))
    """,
    "cmp_brif_stack_repair": """
        (module (func (export "run") (param i32) (result i32)
          (block $a (result i32)
            (i32.const 5)
            (i32.const 6)
            (br_if $a (i32.lt_u (i32.add (local.get 0) (i32.const 1))
                                (local.get 0)))
            (i32.add))))
    """,
    "br_table_dispatch": """
        (module (func (export "run") (param i32) (result i32)
          (block $c (block $b (block $a
            (br_table $a $b $c (local.get 0))
            ) (return (i32.const 100))
            ) (return (i32.const 200)))
          (i32.const 300)))
    """,
    "memory_churn": """
        (module (memory 1)
          (func (export "run") (param i32) (result i32)
            (local $i i32) (local $sum i32)
            (block $out (loop $top
              (br_if $out (i32.ge_u (local.get $i) (local.get 0)))
              (i32.store (i32.and (i32.mul (local.get $i) (i32.const 40))
                                  (i32.const 0xffff))
                         (local.get $i))
              (local.set $sum (i32.add (local.get $sum)
                (i32.load (i32.and (i32.mul (local.get $i) (i32.const 40))
                                   (i32.const 0xffff)))))
              (local.set $i (i32.add (local.get $i) (i32.const 1)))
              (br $top)))
            (local.get $sum)))
    """,
    "narrow_memory": """
        (module (memory 1)
          (func (export "run") (result i32)
            (i32.store8 (i32.const 0) (i32.const 0x80))
            (i32.store16 (i32.const 8) (i32.const 0xbeef))
            (i64.store32 (i32.const 16) (i64.const 0xdeadbeef))
            (i32.add
              (i32.add (i32.load8_s (i32.const 0)) (i32.load16_u (i32.const 8)))
              (i32.wrap_i64 (i64.load32_u (i32.const 16))))))
    """,
    "float_mix": """
        (module (func (export "run") (param f64) (result f64)
          (f64.add (f64.sqrt (local.get 0))
                   (f64.mul (f64.const 1.5) (f64.floor (local.get 0))))))
    """,
    "globals": """
        (module (global $g (mut i32) (i32.const 7))
          (func (export "run") (param i32) (result i32)
            (global.set $g (i32.add (global.get $g) (local.get 0)))
            (global.get $g)))
    """,
    "indirect": """
        (module (type $t (func (param i32) (result i32)))
          (table 2 funcref) (elem (i32.const 0) $sq $dbl)
          (func $sq (type $t) (i32.mul (local.get 0) (local.get 0)))
          (func $dbl (type $t) (i32.add (local.get 0) (local.get 0)))
          (func (export "run") (param i32 i32) (result i32)
            (call_indirect (type $t) (local.get 1) (local.get 0))))
    """,
    "multivalue_block": """
        (module (func (export "run") (result i32)
          (block (result i32 i32) (i32.const 3) (i32.const 4))
          (i32.add)))
    """,
    "loop_with_result": """
        (module (func (export "run") (param i32) (result i32)
          (loop $l (result i32) (local.get 0))))
    """,
}


@pytest.mark.parametrize("name", sorted(MODULES))
@pytest.mark.parametrize("arg", [0, 1, 2, 7, 13])
def test_corpus_agrees(name, arg):
    src = MODULES[name]
    if "param i32 i32" in src:
        args = (arg, arg % 2)
    elif "(param f64)" in src:
        args = (float(arg),)
    elif "(param" in src.split("func", 2)[-1]:
        args = (arg,)
    else:
        args = ()
    check(src, args=args)


class TestTrapsAgree:
    def test_div_by_zero(self):
        assert check(
            "(module (func (export \"run\") (result i32)"
            " (i32.div_s (i32.const 1) (i32.const 0))))"
        )[0] == "trap"

    def test_unreachable(self):
        assert check('(module (func (export "run") (unreachable)))')[0] == "trap"

    def test_oob_load(self):
        src = """(module (memory 1) (func (export "run") (result i32)
            (i32.load (i32.const 65536))))"""
        assert check(src)[0] == "trap"

    def test_oob_store(self):
        src = """(module (memory 1) (func (export "run")
            (i64.store (i32.const 65533) (i64.const 1))))"""
        assert check(src)[0] == "trap"

    def test_fused_load_oob(self):
        # The `local.get i32.load` superinstruction must trap identically.
        src = """(module (memory 1) (func (export "run") (param i32) (result i32)
            (i32.load (local.get 0))))"""
        assert check(src, args=(70000,))[0] == "trap"

    def test_indirect_type_mismatch(self):
        src = """(module (type $t (func (result i64)))
            (table 1 funcref) (elem (i32.const 0) $f)
            (func $f (result i32) (i32.const 1))
            (func (export "run") (result i64)
              (call_indirect (type $t) (i32.const 0))))"""
        assert check(src)[0] == "trap"

    def test_undefined_element(self):
        src = """(module (type $t (func))
            (table 4 funcref)
            (func (export "run") (call_indirect (type $t) (i32.const 2))))"""
        assert check(src)[0] == "trap"

    def test_stack_exhaustion(self):
        src = """(module (func $f (export "run") (call $f)))"""
        assert check(src)[0] == "exhausted"

    def test_trunc_invalid(self):
        src = """(module (func (export "run") (result i32)
            (i32.trunc_f64_s (f64.const nan))))"""
        assert check(src)[0] == "trap"


class TestFuelAgrees:
    SRC = MODULES["fib_recursive"]

    def _count(self, arg):
        outcome, n, _, _ = _observe(Interpreter, self.SRC, "run", (arg,), None)
        assert outcome[0] == "ok"
        return n

    @pytest.mark.parametrize("arg", [0, 1, 5, 10])
    def test_exact_instruction_count(self, arg):
        check(self.SRC, args=(arg,))

    def test_every_fuel_boundary_near_exhaustion(self):
        # Sweep fuel values around the exact cost: both interpreters must
        # flip from exhausted to ok at the same budget and agree on the
        # partial count when exhausted — this pins down per-instruction
        # debiting through fused superinstructions and block headers.
        cost = self._count(7)
        for fuel in [0, 1, 2, 3, cost - 2, cost - 1, cost, cost + 1]:
            check(self.SRC, args=(7,), fuel=fuel)

    def test_fuel_boundary_in_memory_loop(self):
        src = MODULES["memory_churn"]
        _, cost, _, _ = _observe(Interpreter, src, "run", (50,), None)
        for fuel in [cost // 2, cost - 1, cost, cost + 3]:
            check(src, args=(50,), fuel=fuel)


@pytest.mark.parametrize("fuel", [None, 5_000_000])
@pytest.mark.parametrize("spec_mode", ["off", "bytecode", "on"])
def test_full_wasi_microservice_agrees(spec_mode, fuel, monkeypatch):
    # The reference walks the AST and ignores specialization entirely, so
    # it is a fixed oracle across all three modes; the flat interpreter
    # picks up whatever the digest cache attached for the current mode.
    from repro.engines.cache import reset_caches

    monkeypatch.setenv("REPRO_SPECIALIZE", spec_mode)
    reset_caches()
    try:
        blob = build_microservice_wasm()
        results = []
        for cls in INTERPS:
            r = run_wasi(
                blob,
                args=["svc"],
                env={"REQUESTS": "3"},
                fuel=fuel,
                interpreter_cls=cls,
            )
            results.append(
                (r.exit_code, r.stdout, r.stderr, r.instructions, r.memory_bytes)
            )
        assert results[0] == results[1]
    finally:
        reset_caches()
