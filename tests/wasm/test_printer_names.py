"""WAT printer and name-section roundtrips."""

import pytest

from repro.wasm import decode_module, encode_module, parse_wat, validate_module
from repro.wasm.names import (
    apply_name_section,
    attach_name_section,
    build_name_section,
)
from repro.wasm.wat import print_wat
from repro.workloads.microservice import MICROSERVICE_WAT


def print_parse_encode(src: str) -> None:
    """parse → print → parse must reproduce the identical binary."""
    module = parse_wat(src)
    validate_module(module)
    reparsed = parse_wat(print_wat(module))
    assert encode_module(reparsed) == encode_module(module)


class TestPrinterRoundtrip:
    def test_microservice(self):
        print_parse_encode(MICROSERVICE_WAT)

    def test_arithmetic(self):
        print_parse_encode(
            "(module (func (export \"f\") (param i32 i64) (result i64) "
            "(i64.add (i64.extend_i32_s (local.get 0)) (local.get 1))))"
        )

    def test_control_flow(self):
        print_parse_encode(
            """
            (module (func (param i32) (result i32)
              (block $b (result i32)
                (loop $l (result i32)
                  (if (result i32) (local.get 0)
                    (then (br 2 (i32.const 1)))
                    (else (i32.const 0)))))))
            """
        )

    def test_br_table(self):
        print_parse_encode(
            """
            (module (func (param i32)
              (block (block (block (br_table 0 1 2 (local.get 0)))))))
            """
        )

    def test_memory_and_segments(self):
        print_parse_encode(
            '(module (memory 1 4) (data (i32.const 3) "a\\"b\\\\c\\00d")'
            " (func (drop (i32.load offset=4 align=2 (i32.const 0)))))"
        )

    def test_tables_and_call_indirect(self):
        print_parse_encode(
            """
            (module
              (type $binop (func (param i32 i32) (result i32)))
              (table 3 funcref)
              (elem (i32.const 0) $add $add)
              (func $add (type $binop) (i32.add (local.get 0) (local.get 1)))
              (func (export "apply") (param i32 i32) (result i32)
                (call_indirect (type $binop)
                  (local.get 0) (local.get 1) (i32.const 0))))
            """
        )

    def test_globals_and_start(self):
        print_parse_encode(
            """
            (module
              (global $g (mut i64) (i64.const -5))
              (global $pi f64 (f64.const 3.14159))
              (func $init (global.set $g (i64.const 1)))
              (start $init))
            """
        )

    def test_imports(self):
        print_parse_encode(
            """
            (module
              (import "env" "f" (func (param f32) (result f64)))
              (import "env" "m" (memory 1 2))
              (import "env" "t" (table 1 funcref))
              (import "env" "g" (global (mut i32))))
            """
        )

    def test_float_specials(self):
        print_parse_encode(
            "(module (func (result f64) "
            "(f64.add (f64.const inf) (f64.add (f64.const -inf) (f64.const nan)))))"
        )

    def test_printed_output_is_readable(self):
        text = print_wat(parse_wat("(module (func (result i32) (i32.const 42)))"))
        assert text.startswith("(module")
        assert "i32.const 42" in text
        assert text.endswith(")")


class TestNameSection:
    def _module(self):
        return parse_wat(
            """
            (module $svc
              (import "env" "host" (func $host))
              (func $alpha nop)
              (func $beta nop))
            """
        )

    def test_build_and_parse(self):
        module = self._module()
        section = build_name_section(module)
        assert section is not None and section.name == "name"

    def test_binary_roundtrip_preserves_names(self):
        module = attach_name_section(self._module())
        decoded = decode_module(encode_module(module))
        # Names are lost at decode (custom section opaque)...
        assert decoded.funcs[0].name is None
        # ...until the name section is applied.
        apply_name_section(decoded)
        assert decoded.name == "svc"
        assert [f.name for f in decoded.funcs] == ["alpha", "beta"]

    def test_import_offset_respected(self):
        """Function name indices are in the joint (imports-first) space."""
        module = attach_name_section(self._module())
        payload = build_name_section(module).payload
        # Function subsection must reference indices 1 and 2 (import is 0).
        decoded = decode_module(encode_module(module))
        apply_name_section(decoded)
        assert decoded.funcs[0].name == "alpha"

    def test_no_names_no_section(self):
        module = parse_wat("(module (func nop))")
        assert build_name_section(module) is None

    def test_attach_replaces_stale_section(self):
        module = attach_name_section(self._module())
        module.funcs[0].name = "renamed"
        attach_name_section(module)
        sections = [c for c in module.customs if c.name == "name"]
        assert len(sections) == 1
        decoded = apply_name_section(decode_module(encode_module(module)))
        assert decoded.funcs[0].name == "renamed"

    def test_unknown_subsections_skipped(self):
        from repro.wasm.ast import CustomSection
        from repro.wasm.names import parse_name_section

        # Subsection id 9 (unknown) then a module name.
        payload = bytes([9, 1, 0]) + bytes([0, 3, 2]) + b"ab"
        names = parse_name_section(CustomSection("name", payload))
        assert names["module"] == "ab"
