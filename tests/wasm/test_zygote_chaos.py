"""Zygote corruption: checksum verification, quarantine, cold fallback.

The chaos PR's safety claim for the zygote layer, tested differentially:
a corrupted cached snapshot is *detected* (content checksum mismatch on
restore), *quarantined* (never served, never re-captured), and the run
falls back to cold instantiation with byte-identical observable output —
on both interpreters. ``reset_caches`` clears the quarantine so one
experiment's poison can't leak into the next.
"""

import dataclasses

import pytest

from repro.engines.cache import (
    reset_caches,
    zygote_fallback_count,
    zygote_get,
    zygote_known,
    zygote_put,
    zygote_quarantine,
    zygote_quarantined,
)
from repro.sim.faults import FaultPlan, FaultPoint, FaultSpec, fault_scope
from repro.wasm import assemble_wat
from repro.wasm.embed import run_wasi
from repro.wasm.runtime import Interpreter, ReferenceInterpreter, verify_snapshot

from test_snapshot import OUTPUT_WAT, _observe

INTERPS = (Interpreter, ReferenceInterpreter)


@pytest.fixture(autouse=True)
def _fresh_caches():
    reset_caches()
    yield
    reset_caches()


def _poison_cached_snapshot(digest):
    """Flip one byte of the cached snapshot's memory image (checksum kept
    stale — exactly what silent storage corruption looks like)."""
    snap = zygote_get(digest)
    assert snap is not None
    mem_type, data = snap.memories[0]
    bad = bytes([data[0] ^ 0xFF]) + data[1:]
    poisoned = dataclasses.replace(snap, memories=((mem_type, bad),))
    zygote_put(digest, poisoned)
    return poisoned


class TestOrganicCorruption:
    @pytest.mark.parametrize("cls", INTERPS)
    def test_fallback_is_byte_identical_to_cold(self, cls):
        blob = assemble_wat(OUTPUT_WAT)
        cold = run_wasi(blob, zygote=False, interpreter_cls=cls)
        captured = run_wasi(blob, interpreter_cls=cls)  # capture
        digest = captured.zygote_digest
        poisoned = _poison_cached_snapshot(digest)
        assert not verify_snapshot(poisoned)

        before = zygote_fallback_count()
        fallback = run_wasi(blob, interpreter_cls=cls)
        assert fallback.restored is False
        assert _observe(fallback) == _observe(cold)
        assert zygote_fallback_count() == before + 1
        assert zygote_quarantined(digest)

    def test_quarantined_digest_never_recaptured(self):
        blob = assemble_wat(OUTPUT_WAT)
        digest = run_wasi(blob).zygote_digest
        _poison_cached_snapshot(digest)
        run_wasi(blob)  # detects + quarantines
        # Every later run stays cold: no re-capture, no restore, and the
        # fallback counter moves only on the detection, not per run.
        before = zygote_fallback_count()
        for _ in range(3):
            again = run_wasi(blob)
            assert not again.restored
        assert zygote_get(digest) is None
        assert zygote_known(digest)  # poisoned, not forgotten
        assert zygote_fallback_count() == before

    def test_reset_caches_clears_quarantine(self):
        """The satellite regression: a poisoned digest restores cleanly
        after ``reset_caches`` — re-probed, re-captured, served warm."""
        blob = assemble_wat(OUTPUT_WAT)
        cold = run_wasi(blob, zygote=False)
        digest = run_wasi(blob).zygote_digest
        _poison_cached_snapshot(digest)
        run_wasi(blob)
        assert zygote_quarantined(digest)

        reset_caches()
        assert not zygote_quarantined(digest)
        assert not zygote_known(digest)
        recaptured = run_wasi(blob)  # fresh capture
        warm = run_wasi(blob)
        assert not recaptured.restored
        assert warm.restored
        assert _observe(warm) == _observe(cold)


class TestInjectedCorruption:
    def test_fault_point_quarantines_without_touching_bytes(self):
        blob = assemble_wat(OUTPUT_WAT)
        cold = run_wasi(blob, zygote=False)
        digest = run_wasi(blob).zygote_digest
        assert zygote_get(digest) is not None

        plan = FaultPlan(
            [FaultSpec(FaultPoint.ZYGOTE_CORRUPT, probability=1.0)]
        )
        before = zygote_fallback_count()
        with fault_scope(plan, "pod-1"):
            fallback = run_wasi(blob)
        assert not fallback.restored
        assert _observe(fallback) == _observe(cold)
        assert zygote_quarantined(digest)
        assert zygote_fallback_count() == before + 1
        # The point can fire at most once per digest: quarantined means
        # there is no snapshot left to corrupt.
        with fault_scope(plan, "pod-2"):
            again = run_wasi(blob)
        assert not again.restored
        assert plan.count(FaultPoint.ZYGOTE_CORRUPT) == 1

    def test_armed_scope_verifies_every_restore(self):
        from repro.engines.cache import zygote_mark_verified

        blob = assemble_wat(OUTPUT_WAT)
        digest = run_wasi(blob).zygote_digest
        run_wasi(blob)  # happy-path restore marks the digest verified
        # Under an armed scope the verified marker is NOT trusted — the
        # plan may have corrupted the entry since. Poison, force the
        # marker back on, and restore: the check must still run.
        _poison_cached_snapshot(digest)
        zygote_mark_verified(digest)
        plan = FaultPlan(
            [FaultSpec(FaultPoint.ZYGOTE_CORRUPT, probability=0.0)]
        )
        with fault_scope(plan, "pod-1"):
            r = run_wasi(blob)
        assert not r.restored
        assert zygote_quarantined(digest)


class TestQuarantineApi:
    def test_manual_quarantine_reason_counted(self):
        zygote_quarantine("deadbeef", reason="test")
        assert zygote_quarantined("deadbeef")
        assert zygote_fallback_count("test") == 1
        assert zygote_fallback_count("corrupt") == 0
