"""Validator: type checking, index spaces, module-level rules."""

import pytest

from repro.errors import InvalidModule
from repro.wasm import parse_wat, validate_module
from repro.wasm.ast import Function, Global, Instr, Module
from repro.wasm.types import FuncType, GlobalType, Limits, MemoryType, TableType, ValType


def check(src: str):
    return validate_module(parse_wat(src))


def reject(src: str, match: str):
    with pytest.raises(InvalidModule, match=match):
        check(src)


class TestStackTyping:
    def test_simple_arith_validates(self):
        check("(module (func (result i32) (i32.add (i32.const 1) (i32.const 2))))")

    def test_type_mismatch(self):
        reject(
            "(module (func (result i32) (i32.add (i32.const 1) (i64.const 2))))",
            "type mismatch",
        )

    def test_stack_underflow(self):
        reject("(module (func (result i32) i32.add))", "underflow")

    def test_leftover_values(self):
        reject(
            "(module (func (i32.const 1)))",
            "values left|not empty",
        )

    def test_missing_result(self):
        reject("(module (func (result i32) nop))", "underflow")

    def test_param_types_respected(self):
        check("(module (func (param i64) (result i64) (local.get 0)))")
        reject(
            "(module (func (param i64) (result i32) (local.get 0)))",
            "type mismatch",
        )

    def test_local_index_bounds(self):
        reject("(module (func (local.get 3)))", "out of range")

    def test_drop_and_select(self):
        check(
            "(module (func (result i32) "
            "(drop (i64.const 1)) "
            "(select (i32.const 1) (i32.const 2) (i32.const 0))))"
        )

    def test_select_mismatched_operands(self):
        reject(
            "(module (func (result i32) "
            "(select (i32.const 1) (i64.const 2) (i32.const 0))))",
            "type mismatch",
        )


class TestControlFlow:
    def test_block_result(self):
        check("(module (func (result i32) (block (result i32) (i32.const 1))))")

    def test_block_wrong_result(self):
        reject(
            "(module (func (result i32) (block (result i32) (i64.const 1))))",
            "type mismatch",
        )

    def test_if_arms_must_match(self):
        reject(
            "(module (func (param i32) (result i32) "
            "(if (result i32) (local.get 0) (then (i32.const 1)) (else (i64.const 2)))))",
            "type mismatch",
        )

    def test_if_without_else_needs_empty_type(self):
        reject(
            "(module (func (param i32) (result i32) "
            "(if (result i32) (local.get 0) (then (i32.const 1)))))",
            "matching types",
        )

    def test_br_depth_bounds(self):
        reject("(module (func (br 2)))", "depth")

    def test_br_with_value(self):
        check(
            "(module (func (result i32) "
            "(block (result i32) (br 0 (i32.const 5)))))"
        )

    def test_br_if_preserves_stack(self):
        check(
            "(module (func (param i32) (result i32) "
            "(block (result i32) (i32.const 1) (br_if 0 (local.get 0)))))"
        )

    def test_br_table_consistent_labels(self):
        reject(
            "(module (func (param i32) "
            "(block (result i32) (block "
            "(br_table 0 1 (local.get 0))) (drop (i32.const 0)) ) drop))",
            "br_table|type mismatch|underflow",
        )

    def test_unreachable_makes_rest_polymorphic(self):
        check("(module (func (result i32) unreachable))")
        check("(module (func (result i32) (unreachable) (i32.add)))")

    def test_code_after_br_is_polymorphic(self):
        check("(module (func (result i32) (block (result i32) (br 0 (i32.const 1)) (i32.add))))")

    def test_loop_branch_targets_start(self):
        # br to a loop must match its *start* types (empty), not results.
        check(
            "(module (func (result i32) "
            "(loop (result i32) (br_if 0 (i32.const 0)) (i32.const 4))))"
        )

    def test_return_checks_results(self):
        check("(module (func (result i32) (return (i32.const 1))))")
        reject("(module (func (result i32) (return)))", "underflow")


class TestCallsAndIndices:
    def test_call_signature(self):
        check(
            "(module (func $f (param i32) (result i32) (local.get 0)) "
            "(func (result i32) (call $f (i32.const 1))))"
        )

    def test_call_wrong_arg_type(self):
        reject(
            "(module (func $f (param i32)) (func (call $f (i64.const 1))))",
            "type mismatch",
        )

    def test_call_index_out_of_range(self):
        m = Module(types=[FuncType()], funcs=[Function(0, body=[Instr("call", (7,))])])
        with pytest.raises(InvalidModule, match="unknown function"):
            validate_module(m)

    def test_call_indirect_requires_table(self):
        reject(
            "(module (func (call_indirect (i32.const 0))))",
            "requires a table",
        )

    def test_global_set_immutable(self):
        reject(
            "(module (global $g i32 (i32.const 0)) (func (global.set $g (i32.const 1))))",
            "immutable",
        )

    def test_global_get_type(self):
        check(
            "(module (global $g i64 (i64.const 9)) "
            "(func (result i64) (global.get $g)))"
        )


class TestMemoryRules:
    def test_load_requires_memory(self):
        reject("(module (func (drop (i32.load (i32.const 0)))))", "requires a memory")

    def test_alignment_bound(self):
        m = parse_wat("(module (memory 1) (func (drop (i32.load (i32.const 0)))))")
        # Force an over-natural alignment directly in the AST.
        m.funcs[0].body[1].args = (3, 0)  # 2**3 > 4 bytes
        with pytest.raises(InvalidModule, match="alignment"):
            validate_module(m)

    def test_multiple_memories_rejected(self):
        m = Module(mems=[MemoryType(Limits(1)), MemoryType(Limits(1))])
        with pytest.raises(InvalidModule, match="multiple memories"):
            validate_module(m)

    def test_multiple_tables_rejected(self):
        m = Module(tables=[TableType(Limits(1)), TableType(Limits(1))])
        with pytest.raises(InvalidModule, match="multiple tables"):
            validate_module(m)

    def test_memory_grow_type(self):
        check(
            "(module (memory 1) (func (result i32) (memory.grow (i32.const 1))))"
        )


class TestModuleLevel:
    def test_duplicate_export_names(self):
        reject(
            '(module (func $f) (export "x" (func $f)) (export "x" (func $f)))',
            "duplicate export",
        )

    def test_export_index_bounds(self):
        m = Module(exports=[__import__("repro.wasm.ast", fromlist=["Export"]).Export("f", "func", 0)])
        with pytest.raises(InvalidModule, match="out of range"):
            validate_module(m)

    def test_start_signature(self):
        reject(
            "(module (func $main (param i32)) (start $main))",
            "start function",
        )

    def test_global_init_must_be_constant(self):
        m = Module(
            globals=[Global(GlobalType(ValType.I32), [Instr("i32.add")])]
        )
        with pytest.raises(InvalidModule, match="non-constant"):
            validate_module(m)

    def test_global_init_type(self):
        m = Module(
            globals=[Global(GlobalType(ValType.I32), [Instr("i64.const", (1,))])]
        )
        with pytest.raises(InvalidModule, match="expected"):
            validate_module(m)

    def test_global_init_may_reference_imported_global(self):
        check(
            '(module (global $base (import "env" "base") i32) '
            "(global $derived i32 (global.get $base)))"
        )

    def test_global_init_may_not_reference_local_global(self):
        m = parse_wat(
            "(module (global $a i32 (i32.const 1)) (global $b i32 (global.get $a)))"
        )
        with pytest.raises(InvalidModule, match="imported"):
            validate_module(m)

    def test_data_offset_type(self):
        m = parse_wat('(module (memory 1) (data (i32.const 0) "x"))')
        m.datas[0].offset = [Instr("i64.const", (0,))]
        with pytest.raises(InvalidModule, match="expected"):
            validate_module(m)

    def test_elem_function_bounds(self):
        m = parse_wat("(module (table 1 funcref) (func $f))")
        from repro.wasm.ast import ElemSegment

        m.elems.append(ElemSegment(0, [Instr("i32.const", (0,))], [5]))
        with pytest.raises(InvalidModule, match="no function"):
            validate_module(m)

    def test_microservice_module_validates(self):
        from repro.workloads.microservice import microservice_module

        validate_module(microservice_module())
