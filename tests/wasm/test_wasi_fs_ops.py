"""Host-side unit tests for the extended WASI filesystem calls.

These drive :class:`WasiEnv` methods directly with an attached memory —
the same entry points the interpreter invokes — which keeps the ABI
plumbing (pointers, records) under test without a WAT harness per call.
"""

import pytest

from repro.wasm.runtime.store import MemoryInstance
from repro.wasm.types import Limits, MemoryType
from repro.wasm.wasi import InMemoryFilesystem, WasiEnv
from repro.wasm.wasi import errno as E


@pytest.fixture()
def env():
    fs = InMemoryFilesystem()
    fs.write_file("/work/a.txt", b"alpha")
    fs.write_file("/work/sub/b.txt", b"beta")
    wasi = WasiEnv(preopens={"/work": "/work"}, fs=fs)
    wasi.attach_memory(MemoryInstance(MemoryType(Limits(1))))
    return wasi


def put_path(env: WasiEnv, path: str, at: int = 512) -> tuple:
    raw = path.encode()
    env.memory.write(at, raw)
    return at, len(raw)


class TestCreateDirectory:
    def test_create(self, env):
        ptr, n = put_path(env, "newdir")
        assert env.path_create_directory(3, ptr, n) == [E.SUCCESS]
        node = env.fs.lookup("/work/newdir")
        assert node is not None and node.is_dir

    def test_nested_parent_missing(self, env):
        ptr, n = put_path(env, "no/such/dir")
        assert env.path_create_directory(3, ptr, n) == [E.ENOENT]

    def test_already_exists(self, env):
        ptr, n = put_path(env, "sub")
        assert env.path_create_directory(3, ptr, n) == [E.EEXIST]

    def test_bad_fd(self, env):
        ptr, n = put_path(env, "x")
        assert env.path_create_directory(99, ptr, n) == [E.EBADF]


class TestUnlink:
    def test_unlink_file(self, env):
        ptr, n = put_path(env, "a.txt")
        assert env.path_unlink_file(3, ptr, n) == [E.SUCCESS]
        assert env.fs.lookup("/work/a.txt") is None

    def test_unlink_missing(self, env):
        ptr, n = put_path(env, "ghost.txt")
        assert env.path_unlink_file(3, ptr, n) == [E.ENOENT]

    def test_unlink_directory_rejected(self, env):
        ptr, n = put_path(env, "sub")
        assert env.path_unlink_file(3, ptr, n) == [E.EISDIR]

    def test_remove_empty_directory(self, env):
        env.fs.mkdir("/work/empty")
        ptr, n = put_path(env, "empty")
        assert env.path_remove_directory(3, ptr, n) == [E.SUCCESS]
        assert env.fs.lookup("/work/empty") is None

    def test_remove_nonempty_directory(self, env):
        ptr, n = put_path(env, "sub")
        assert env.path_remove_directory(3, ptr, n) == [E.ENOTEMPTY]

    def test_remove_file_as_directory(self, env):
        ptr, n = put_path(env, "a.txt")
        assert env.path_remove_directory(3, ptr, n) == [E.ENOTDIR]


class TestTellSeek:
    def _open(self, env, name: str) -> int:
        ptr, n = put_path(env, name)
        assert env.path_open(3, 0, ptr, n, 0, -1, -1, 0, 128) == [E.SUCCESS]
        return env.memory.read_u32(128)

    def test_tell_tracks_reads(self, env):
        fd = self._open(env, "a.txt")
        # read 3 bytes via one iovec at 0
        env.memory.write_u32(0, 300)
        env.memory.write_u32(4, 3)
        assert env.fd_read(fd, 0, 1, 16) == [E.SUCCESS]
        assert env.fd_tell(fd, 64) == [E.SUCCESS]
        assert env.memory.read_u64(64) == 3

    def test_tell_after_seek_end(self, env):
        fd = self._open(env, "a.txt")
        assert env.fd_seek(fd, (1 << 64) - 2, E.WHENCE_END, 64) == [E.SUCCESS]  # -2
        assert env.memory.read_u64(64) == 3  # len("alpha") - 2

    def test_tell_on_stream(self, env):
        assert env.fd_tell(1, 64) == [E.ESPIPE]

    def test_sync_noops(self, env):
        # registered lambdas; exercised through an fd lookup path
        fd = self._open(env, "a.txt")
        assert env.fd_close(fd) == [E.SUCCESS]


class TestReaddir:
    def test_lists_children_sorted(self, env):
        assert env.fd_readdir(3, 1024, 512, 0, 16) == [E.SUCCESS]
        used = env.memory.read_u32(16)
        data = env.memory.read(1024, used)
        # Two entries: a.txt (file), sub (dir), sorted.
        # First record: next-cookie=1, namlen=5, type=regular, name=a.txt
        assert int.from_bytes(data[0:8], "little") == 1
        assert int.from_bytes(data[16:20], "little") == 5
        assert data[20] == E.FILETYPE_REGULAR_FILE
        assert data[24:29] == b"a.txt"
        # Second record follows.
        second = data[29:]
        assert int.from_bytes(second[0:8], "little") == 2
        assert second[20] == E.FILETYPE_DIRECTORY
        assert second[24:27] == b"sub"

    def test_cookie_resumes(self, env):
        assert env.fd_readdir(3, 1024, 512, 1, 16) == [E.SUCCESS]
        used = env.memory.read_u32(16)
        data = env.memory.read(1024, used)
        assert data[24:27] == b"sub"

    def test_small_buffer_truncates(self, env):
        assert env.fd_readdir(3, 1024, 10, 0, 16) == [E.SUCCESS]
        assert env.memory.read_u32(16) == 10

    def test_readdir_on_file(self, env):
        ptr, n = put_path(env, "a.txt")
        env.path_open(3, 0, ptr, n, 0, -1, -1, 0, 128)
        fd = env.memory.read_u32(128)
        assert env.fd_readdir(fd, 1024, 64, 0, 16) == [E.ENOTDIR]
