"""Interpreter semantics: numerics, control flow, memory, calls, traps."""

import math

import pytest

from repro.errors import ExhaustionError, WasmTrap
from repro.wasm import parse_wat, validate_module
from repro.wasm.runtime import Interpreter, Store, instantiate


def run(src: str, func: str = "run", args=(), fuel=None):
    module = validate_module(parse_wat(src))
    store = Store()
    inst = instantiate(store, module)
    interp = Interpreter(store, fuel=fuel)
    return interp.invoke_export(inst, func, args)


def expr(body: str, result: str = "i32", params: str = "", args=()):
    plist = " ".join(f"(param {p})" for p in params.split()) if params else ""
    src = f'(module (func (export "run") {plist} (result {result}) {body}))'
    return run(src, args=args)[0]


class TestI32Arithmetic:
    def test_add_wraps(self):
        assert expr("(i32.add (i32.const 0x7fffffff) (i32.const 1))") == 0x80000000

    def test_sub_wraps(self):
        assert expr("(i32.sub (i32.const 0) (i32.const 1))") == 0xFFFFFFFF

    def test_mul(self):
        assert expr("(i32.mul (i32.const 1234) (i32.const 5678))") == 7006652

    def test_div_s_truncates_toward_zero(self):
        assert expr("(i32.div_s (i32.const -7) (i32.const 2))") == 0xFFFFFFFD  # -3

    def test_div_u(self):
        assert expr("(i32.div_u (i32.const -1) (i32.const 2))") == 0x7FFFFFFF

    def test_div_by_zero_traps(self):
        with pytest.raises(WasmTrap, match="divide by zero"):
            expr("(i32.div_s (i32.const 1) (i32.const 0))")

    def test_div_overflow_traps(self):
        with pytest.raises(WasmTrap, match="overflow"):
            expr("(i32.div_s (i32.const 0x80000000) (i32.const -1))")

    def test_rem_s_sign_follows_dividend(self):
        assert expr("(i32.rem_s (i32.const -7) (i32.const 3))") == 0xFFFFFFFF  # -1

    def test_rem_s_int_min(self):
        assert expr("(i32.rem_s (i32.const 0x80000000) (i32.const -1))") == 0

    def test_rem_u(self):
        assert expr("(i32.rem_u (i32.const 7) (i32.const 3))") == 1

    @pytest.mark.parametrize(
        "op,a,b,want",
        [
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
        ],
    )
    def test_bitwise(self, op, a, b, want):
        assert expr(f"(i32.{op} (i32.const {a}) (i32.const {b}))") == want

    def test_shl_modulo_width(self):
        assert expr("(i32.shl (i32.const 1) (i32.const 33))") == 2

    def test_shr_s_sign_extends(self):
        assert expr("(i32.shr_s (i32.const -8) (i32.const 1))") == 0xFFFFFFFC

    def test_shr_u_zero_fills(self):
        assert expr("(i32.shr_u (i32.const -8) (i32.const 1))") == 0x7FFFFFFC

    def test_rotl_rotr(self):
        assert expr("(i32.rotl (i32.const 0x80000001) (i32.const 1))") == 3
        assert expr("(i32.rotr (i32.const 3) (i32.const 1))") == 0x80000001

    def test_clz_ctz_popcnt(self):
        assert expr("(i32.clz (i32.const 1))") == 31
        assert expr("(i32.clz (i32.const 0))") == 32
        assert expr("(i32.ctz (i32.const 8))") == 3
        assert expr("(i32.ctz (i32.const 0))") == 32
        assert expr("(i32.popcnt (i32.const 0xFF0F))") == 12

    def test_eqz(self):
        assert expr("(i32.eqz (i32.const 0))") == 1
        assert expr("(i32.eqz (i32.const 5))") == 0

    def test_signed_vs_unsigned_compare(self):
        assert expr("(i32.lt_s (i32.const -1) (i32.const 1))") == 1
        assert expr("(i32.lt_u (i32.const -1) (i32.const 1))") == 0


class TestI64:
    def test_add_wraps(self):
        assert (
            expr("(i64.add (i64.const 0x7fffffffffffffff) (i64.const 1))", "i64")
            == 0x8000000000000000
        )

    def test_mul_large(self):
        assert (
            expr("(i64.mul (i64.const 0x100000000) (i64.const 0x100000000))", "i64")
            == 0
        )

    def test_clz64(self):
        assert expr("(i64.clz (i64.const 1))", "i64") == 63

    def test_extend_s(self):
        assert (
            expr("(i64.extend_i32_s (i32.const -1))", "i64") == 0xFFFFFFFFFFFFFFFF
        )

    def test_extend_u(self):
        assert expr("(i64.extend_i32_u (i32.const -1))", "i64") == 0xFFFFFFFF

    def test_wrap(self):
        assert expr("(i32.wrap_i64 (i64.const 0x1_0000_0001))") == 1


class TestFloats:
    def test_f64_arith(self):
        assert expr("(f64.add (f64.const 1.5) (f64.const 2.25))", "f64") == 3.75

    def test_f32_rounds_to_single(self):
        got = expr("(f32.add (f32.const 0.1) (f32.const 0.2))", "f32")
        assert got == pytest.approx(0.3, abs=1e-6)
        assert got != 0.1 + 0.2  # double result would differ

    def test_div_by_zero_is_inf(self):
        assert expr("(f64.div (f64.const 1) (f64.const 0))", "f64") == math.inf
        assert expr("(f64.div (f64.const -1) (f64.const 0))", "f64") == -math.inf

    def test_zero_over_zero_is_nan(self):
        assert math.isnan(expr("(f64.div (f64.const 0) (f64.const 0))", "f64"))

    def test_min_max_nan_propagation(self):
        assert math.isnan(expr("(f64.min (f64.const nan) (f64.const 1))", "f64"))
        assert math.isnan(expr("(f64.max (f64.const 1) (f64.const nan))", "f64"))

    def test_min_of_signed_zeros(self):
        got = expr("(f64.min (f64.const -0.0) (f64.const 0.0))", "f64")
        assert math.copysign(1.0, got) < 0

    def test_nearest_ties_to_even(self):
        assert expr("(f64.nearest (f64.const 2.5))", "f64") == 2.0
        assert expr("(f64.nearest (f64.const 3.5))", "f64") == 4.0
        assert expr("(f64.nearest (f64.const -0.5))", "f64") == -0.0

    def test_sqrt(self):
        assert expr("(f64.sqrt (f64.const 9))", "f64") == 3.0
        assert math.isnan(expr("(f64.sqrt (f64.const -1))", "f64"))

    def test_copysign(self):
        assert expr("(f64.copysign (f64.const 3) (f64.const -1))", "f64") == -3.0

    def test_trunc_floor_ceil(self):
        assert expr("(f64.trunc (f64.const -1.7))", "f64") == -1.0
        assert expr("(f64.floor (f64.const -1.2))", "f64") == -2.0
        assert expr("(f64.ceil (f64.const 1.2))", "f64") == 2.0


class TestConversions:
    def test_trunc_in_range(self):
        assert expr("(i32.trunc_f64_s (f64.const -3.9))") == 0xFFFFFFFD  # -3

    def test_trunc_nan_traps(self):
        with pytest.raises(WasmTrap, match="invalid conversion"):
            expr("(i32.trunc_f64_s (f64.const nan))")

    def test_trunc_overflow_traps(self):
        with pytest.raises(WasmTrap, match="overflow"):
            expr("(i32.trunc_f64_s (f64.const 3e9))")

    def test_trunc_sat_clamps(self):
        assert expr("(i32.trunc_sat_f64_s (f64.const 3e9))") == 0x7FFFFFFF
        assert expr("(i32.trunc_sat_f64_s (f64.const -3e9))") == 0x80000000
        assert expr("(i32.trunc_sat_f64_s (f64.const nan))") == 0

    def test_trunc_sat_unsigned(self):
        assert expr("(i32.trunc_sat_f64_u (f64.const -5))") == 0
        assert expr("(i32.trunc_sat_f64_u (f64.const 5e9))") == 0xFFFFFFFF

    def test_convert_unsigned(self):
        assert expr("(f64.convert_i32_u (i32.const -1))", "f64") == 4294967295.0

    def test_reinterpret_roundtrip(self):
        assert (
            expr("(f64.reinterpret_i64 (i64.reinterpret_f64 (f64.const 1.5)))", "f64")
            == 1.5
        )

    def test_reinterpret_bits(self):
        assert expr("(i32.reinterpret_f32 (f32.const 1.0))") == 0x3F800000

    def test_sign_extension_ops(self):
        assert expr("(i32.extend8_s (i32.const 0x80))") == 0xFFFFFF80
        assert expr("(i32.extend16_s (i32.const 0x8000))") == 0xFFFF8000
        assert expr("(i64.extend32_s (i64.const 0x80000000))", "i64") == 0xFFFFFFFF80000000

    def test_demote_promote(self):
        assert expr("(f64.promote_f32 (f32.const 1.5))", "f64") == 1.5


class TestControlFlow:
    def test_if_then_else(self):
        src = """
        (module (func (export "run") (param i32) (result i32)
          (if (result i32) (local.get 0)
            (then (i32.const 10)) (else (i32.const 20)))))
        """
        assert run(src, args=[1]) == [10]
        assert run(src, args=[0]) == [20]

    def test_loop_with_br_if(self):
        src = """
        (module (func (export "run") (param i32) (result i32)
          (local $acc i32)
          (block $out (loop $top
            (br_if $out (i32.eqz (local.get 0)))
            (local.set $acc (i32.add (local.get $acc) (local.get 0)))
            (local.set 0 (i32.sub (local.get 0) (i32.const 1)))
            (br $top)))
          (local.get $acc)))
        """
        assert run(src, args=[5]) == [15]

    def test_br_table_dispatch(self):
        src = """
        (module (func (export "run") (param i32) (result i32)
          (block $b2 (block $b1 (block $b0
            (br_table $b0 $b1 $b2 (local.get 0)))
            (return (i32.const 100)))
           (return (i32.const 200)))
          (i32.const 300)))
        """
        assert run(src, args=[0]) == [100]
        assert run(src, args=[1]) == [200]
        assert run(src, args=[2]) == [300]
        assert run(src, args=[9]) == [300]  # default

    def test_br_with_value_from_block(self):
        assert expr("(block (result i32) (br 0 (i32.const 7)) )") == 7

    def test_return_early(self):
        src = """
        (module (func (export "run") (result i32)
          (return (i32.const 1)) ))
        """
        assert run(src) == [1]

    def test_unreachable_traps(self):
        with pytest.raises(WasmTrap, match="unreachable"):
            run('(module (func (export "run") unreachable))')

    def test_nested_loop_break_out_two_levels(self):
        src = """
        (module (func (export "run") (result i32)
          (local $i i32) (local $total i32)
          (block $out
            (loop $outer
              (local.set $i (i32.add (local.get $i) (i32.const 1)))
              (local.set $total (i32.add (local.get $total) (local.get $i)))
              (br_if $out (i32.ge_u (local.get $i) (i32.const 4)))
              (br $outer)))
          (local.get $total)))
        """
        assert run(src) == [10]

    def test_select(self):
        src = """
        (module (func (export "run") (param i32) (result i32)
          (select (i32.const 1) (i32.const 2) (local.get 0))))
        """
        assert run(src, args=[7]) == [1]
        assert run(src, args=[0]) == [2]


class TestCalls:
    def test_recursion(self):
        src = """
        (module (func $fact (export "run") (param i32) (result i32)
          (if (result i32) (i32.le_s (local.get 0) (i32.const 1))
            (then (i32.const 1))
            (else (i32.mul (local.get 0)
                           (call $fact (i32.sub (local.get 0) (i32.const 1))))))))
        """
        assert run(src, args=[6]) == [720]

    def test_mutual_recursion(self):
        src = """
        (module
          (func $is_even (export "run") (param i32) (result i32)
            (if (result i32) (i32.eqz (local.get 0))
              (then (i32.const 1))
              (else (call $is_odd (i32.sub (local.get 0) (i32.const 1))))))
          (func $is_odd (param i32) (result i32)
            (if (result i32) (i32.eqz (local.get 0))
              (then (i32.const 0))
              (else (call $is_even (i32.sub (local.get 0) (i32.const 1)))))))
        """
        assert run(src, args=[10]) == [1]
        assert run(src, args=[7]) == [0]

    def test_call_indirect(self):
        src = """
        (module
          (table 2 funcref)
          (elem (i32.const 0) $double $square)
          (func $double (param i32) (result i32) (i32.mul (local.get 0) (i32.const 2)))
          (func $square (param i32) (result i32) (i32.mul (local.get 0) (local.get 0)))
          (func (export "run") (param i32) (param i32) (result i32)
            (call_indirect (param i32) (result i32) (local.get 1) (local.get 0))))
        """
        assert run(src, args=[0, 5]) == [10]
        assert run(src, args=[1, 5]) == [25]

    def test_call_indirect_oob_traps(self):
        src = """
        (module (table 1 funcref)
          (func (export "run") (call_indirect (i32.const 5))))
        """
        with pytest.raises(WasmTrap, match="undefined element"):
            run(src)

    def test_call_indirect_null_traps(self):
        src = """
        (module (table 1 funcref)
          (func (export "run") (call_indirect (i32.const 0))))
        """
        with pytest.raises(WasmTrap, match="uninitialized"):
            run(src)

    def test_call_indirect_signature_mismatch_traps(self):
        src = """
        (module (table 1 funcref) (elem (i32.const 0) $f)
          (func $f (param i32))
          (func (export "run") (call_indirect (i32.const 0))))
        """
        with pytest.raises(WasmTrap, match="type mismatch"):
            run(src)

    def test_stack_exhaustion(self):
        src = """
        (module (func $loop (export "run") (result i32)
          (call $loop)))
        """
        with pytest.raises(ExhaustionError):
            run(src)

    def test_fuel_exhaustion(self):
        src = """
        (module (func (export "run")
          (loop $l (br $l))))
        """
        with pytest.raises(ExhaustionError, match="fuel"):
            run(src, fuel=10_000)

    def test_multi_local_defaults(self):
        src = """
        (module (func (export "run") (result i32)
          (local i32 i64 f32 f64 i32)
          (local.get 4)))
        """
        assert run(src) == [0]


class TestMemoryOps:
    def test_store_load_roundtrip(self):
        src = """
        (module (memory 1) (func (export "run") (result i32)
          (i32.store (i32.const 8) (i32.const 0xdeadbeef))
          (i32.load (i32.const 8))))
        """
        assert run(src) == [0xDEADBEEF]

    def test_narrow_loads_sign(self):
        src = """
        (module (memory 1) (func (export "run") (result i32)
          (i32.store8 (i32.const 0) (i32.const 0xFF))
          (i32.load8_s (i32.const 0))))
        """
        assert run(src) == [0xFFFFFFFF]

    def test_narrow_loads_unsigned(self):
        src = """
        (module (memory 1) (func (export "run") (result i32)
          (i32.store8 (i32.const 0) (i32.const 0xFF))
          (i32.load8_u (i32.const 0))))
        """
        assert run(src) == [0xFF]

    def test_store_truncates(self):
        src = """
        (module (memory 1) (func (export "run") (result i32)
          (i32.store16 (i32.const 0) (i32.const 0x12345678))
          (i32.load16_u (i32.const 0))))
        """
        assert run(src) == [0x5678]

    def test_little_endian_layout(self):
        src = """
        (module (memory 1) (func (export "run") (result i32)
          (i32.store (i32.const 0) (i32.const 0x11223344))
          (i32.load8_u (i32.const 0))))
        """
        assert run(src) == [0x44]

    def test_offset_immediate(self):
        src = """
        (module (memory 1) (func (export "run") (result i32)
          (i32.store offset=100 (i32.const 0) (i32.const 7))
          (i32.load (i32.const 100))))
        """
        assert run(src) == [7]

    def test_oob_load_traps(self):
        src = """
        (module (memory 1) (func (export "run") (result i32)
          (i32.load (i32.const 65533))))
        """
        with pytest.raises(WasmTrap, match="out of bounds"):
            run(src)

    def test_oob_store_traps(self):
        src = """
        (module (memory 1) (func (export "run")
          (i64.store (i32.const 65530) (i64.const 1))))
        """
        with pytest.raises(WasmTrap, match="out of bounds"):
            run(src)

    def test_memory_size_grow(self):
        src = """
        (module (memory 1 3) (func (export "run") (result i32)
          (drop (memory.grow (i32.const 1)))
          (memory.size)))
        """
        assert run(src) == [2]

    def test_memory_grow_beyond_max_fails(self):
        src = """
        (module (memory 1 2) (func (export "run") (result i32)
          (memory.grow (i32.const 5))))
        """
        assert run(src) == [0xFFFFFFFF]  # -1

    def test_grow_makes_new_pages_accessible(self):
        src = """
        (module (memory 1 2) (func (export "run") (result i32)
          (drop (memory.grow (i32.const 1)))
          (i32.store (i32.const 70000) (i32.const 9))
          (i32.load (i32.const 70000))))
        """
        assert run(src) == [9]

    def test_memory_fill_and_copy(self):
        src = """
        (module (memory 1) (func (export "run") (result i32)
          (memory.fill (i32.const 0) (i32.const 0xAB) (i32.const 4))
          (memory.copy (i32.const 8) (i32.const 0) (i32.const 4))
          (i32.load8_u (i32.const 11))))
        """
        assert run(src) == [0xAB]

    def test_f64_store_load(self):
        src = """
        (module (memory 1) (func (export "run") (result f64)
          (f64.store (i32.const 0) (f64.const 2.718281828))
          (f64.load (i32.const 0))))
        """
        assert run(src) == [pytest.approx(2.718281828)]


class TestGlobals:
    def test_global_get_set(self):
        src = """
        (module (global $g (mut i32) (i32.const 10))
          (func (export "run") (result i32)
            (global.set $g (i32.add (global.get $g) (i32.const 5)))
            (global.get $g)))
        """
        assert run(src) == [15]

    def test_globals_persist_across_invocations(self):
        module = validate_module(
            parse_wat(
                """
                (module (global $g (mut i32) (i32.const 0))
                  (func (export "bump") (result i32)
                    (global.set $g (i32.add (global.get $g) (i32.const 1)))
                    (global.get $g)))
                """
            )
        )
        store = Store()
        inst = instantiate(store, module)
        interp = Interpreter(store)
        assert interp.invoke_export(inst, "bump") == [1]
        assert interp.invoke_export(inst, "bump") == [2]
        assert interp.invoke_export(inst, "bump") == [3]
