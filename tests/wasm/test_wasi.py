"""WASI preview1 host functions + in-memory filesystem."""

import pytest

from repro.wasm import assemble_wat
from repro.wasm.embed import run_wasi
from repro.wasm.wasi.fs import InMemoryFilesystem


# A tiny WASI program template: imports, 1-page memory, _start body.
def wasi_prog(body: str, extra_imports: str = "") -> bytes:
    return assemble_wat(
        f"""
        (module
          (import "wasi_snapshot_preview1" "fd_write"
            (func $fd_write (param i32 i32 i32 i32) (result i32)))
          (import "wasi_snapshot_preview1" "fd_read"
            (func $fd_read (param i32 i32 i32 i32) (result i32)))
          (import "wasi_snapshot_preview1" "args_sizes_get"
            (func $args_sizes_get (param i32 i32) (result i32)))
          (import "wasi_snapshot_preview1" "args_get"
            (func $args_get (param i32 i32) (result i32)))
          (import "wasi_snapshot_preview1" "environ_sizes_get"
            (func $environ_sizes_get (param i32 i32) (result i32)))
          (import "wasi_snapshot_preview1" "environ_get"
            (func $environ_get (param i32 i32) (result i32)))
          (import "wasi_snapshot_preview1" "clock_time_get"
            (func $clock_time_get (param i32 i64 i32) (result i32)))
          (import "wasi_snapshot_preview1" "random_get"
            (func $random_get (param i32 i32) (result i32)))
          (import "wasi_snapshot_preview1" "path_open"
            (func $path_open (param i32 i32 i32 i32 i32 i64 i64 i32 i32) (result i32)))
          (import "wasi_snapshot_preview1" "fd_close"
            (func $fd_close (param i32) (result i32)))
          (import "wasi_snapshot_preview1" "fd_seek"
            (func $fd_seek (param i32 i64 i32 i32) (result i32)))
          (import "wasi_snapshot_preview1" "proc_exit"
            (func $proc_exit (param i32)))
          {extra_imports}
          (memory (export "memory") 1)
          (func $write_str (param $fd i32) (param $ptr i32) (param $len i32)
            (i32.store (i32.const 0) (local.get $ptr))
            (i32.store (i32.const 4) (local.get $len))
            (drop (call $fd_write (local.get $fd) (i32.const 0) (i32.const 1) (i32.const 8))))
          (func (export "_start")
            {body}))
        """
    )


class TestStdio:
    def test_stdout_capture(self):
        blob = wasi_prog(
            """
            (i32.store8 (i32.const 100) (i32.const 104)) ;; h
            (i32.store8 (i32.const 101) (i32.const 105)) ;; i
            (call $write_str (i32.const 1) (i32.const 100) (i32.const 2))
            """
        )
        result = run_wasi(blob)
        assert result.stdout == b"hi"
        assert result.exit_code == 0

    def test_stderr_capture(self):
        blob = wasi_prog(
            """
            (i32.store8 (i32.const 100) (i32.const 69)) ;; E
            (call $write_str (i32.const 2) (i32.const 100) (i32.const 1))
            """
        )
        assert run_wasi(blob).stderr == b"E"

    def test_multiple_iovecs(self):
        blob = wasi_prog(
            """
            (i32.store8 (i32.const 100) (i32.const 97))
            (i32.store8 (i32.const 110) (i32.const 98))
            ;; iovec[2] at 0: (100,1) and (110,1)
            (i32.store (i32.const 0) (i32.const 100))
            (i32.store (i32.const 4) (i32.const 1))
            (i32.store (i32.const 8) (i32.const 110))
            (i32.store (i32.const 12) (i32.const 1))
            (drop (call $fd_write (i32.const 1) (i32.const 0) (i32.const 2) (i32.const 16)))
            """
        )
        assert run_wasi(blob).stdout == b"ab"

    def test_stdin_read(self):
        blob = wasi_prog(
            """
            ;; read up to 8 bytes from fd0 into 200, echo to stdout
            (i32.store (i32.const 0) (i32.const 200))
            (i32.store (i32.const 4) (i32.const 8))
            (drop (call $fd_read (i32.const 0) (i32.const 0) (i32.const 1) (i32.const 16)))
            (call $write_str (i32.const 1) (i32.const 200) (i32.load (i32.const 16)))
            """
        )
        assert run_wasi(blob, stdin=b"hello").stdout == b"hello"

    def test_write_to_stdin_denied(self):
        blob = wasi_prog(
            """
            (i32.store (i32.const 0) (i32.const 200))
            (i32.store (i32.const 4) (i32.const 1))
            ;; fd_write on stdin returns EACCES (2); store errno at 300
            (i32.store (i32.const 300)
              (call $fd_write (i32.const 0) (i32.const 0) (i32.const 1) (i32.const 16)))
            (call $proc_exit (i32.load (i32.const 300)))
            """
        )
        assert run_wasi(blob).exit_code == 2  # EACCES

    def test_bad_fd(self):
        blob = wasi_prog(
            """
            (i32.store (i32.const 0) (i32.const 200))
            (i32.store (i32.const 4) (i32.const 1))
            (call $proc_exit
              (call $fd_write (i32.const 99) (i32.const 0) (i32.const 1) (i32.const 16)))
            """
        )
        assert run_wasi(blob).exit_code == 8  # EBADF


class TestArgsEnviron:
    def test_args_roundtrip(self):
        blob = wasi_prog(
            """
            ;; sizes at 0/4, ptrs at 64, buf at 256
            (drop (call $args_sizes_get (i32.const 0) (i32.const 4)))
            (drop (call $args_get (i32.const 64) (i32.const 256)))
            ;; write the whole arg buffer to stdout
            (call $write_str (i32.const 1) (i32.const 256) (i32.load (i32.const 4)))
            """
        )
        result = run_wasi(blob, args=["prog", "--flag", "x"])
        assert result.stdout == b"prog\x00--flag\x00x\x00"

    def test_environ_roundtrip(self):
        blob = wasi_prog(
            """
            (drop (call $environ_sizes_get (i32.const 0) (i32.const 4)))
            (drop (call $environ_get (i32.const 64) (i32.const 256)))
            (call $write_str (i32.const 1) (i32.const 256) (i32.load (i32.const 4)))
            """
        )
        result = run_wasi(blob, env={"A": "1", "B": "two"})
        assert result.stdout == b"A=1\x00B=two\x00"

    def test_empty_args(self):
        blob = wasi_prog(
            """
            (drop (call $args_sizes_get (i32.const 0) (i32.const 4)))
            (call $proc_exit (i32.load (i32.const 0)))
            """
        )
        assert run_wasi(blob, args=[]).exit_code == 0


class TestClocksRandom:
    def test_clock_time_injected(self):
        blob = wasi_prog(
            """
            (drop (call $clock_time_get (i32.const 1) (i64.const 0) (i32.const 0)))
            (call $proc_exit (i32.wrap_i64 (i64.load (i32.const 0))))
            """
        )
        result = run_wasi(blob, clock_ns=lambda: 77)
        assert result.exit_code == 77

    def test_bad_clock_id(self):
        blob = wasi_prog(
            """
            (call $proc_exit (call $clock_time_get (i32.const 9) (i64.const 0) (i32.const 0)))
            """
        )
        assert run_wasi(blob).exit_code == 28  # EINVAL

    def test_random_get_deterministic_default(self):
        blob = wasi_prog(
            """
            (drop (call $random_get (i32.const 0) (i32.const 4)))
            (call $proc_exit (i32.load (i32.const 0)))
            """
        )
        assert run_wasi(blob).exit_code == 0  # default RNG = zeros


class TestFilesystem:
    def test_fs_tree_operations(self):
        fs = InMemoryFilesystem()
        fs.mkdir("/data/sub")
        fs.write_file("/data/sub/file.txt", b"content")
        assert fs.read_file("/data/sub/file.txt") == b"content"
        assert fs.lookup("/data/sub").is_dir
        assert fs.lookup("/missing") is None
        with pytest.raises(FileNotFoundError):
            fs.read_file("/nope")

    def test_resolve_relative(self):
        fs = InMemoryFilesystem()
        fs.write_file("/data/a/b.txt", b"x")
        base = fs.lookup("/data")
        node, err = fs.resolve(base, "a/b.txt")
        assert err == "" and node.data == bytearray(b"x")

    def test_resolve_dotdot_containment(self):
        fs = InMemoryFilesystem()
        fs.mkdir("/data")
        base = fs.lookup("/data")
        node, err = fs.resolve(base, "../etc/passwd")
        assert node is None and err == "escape"

    def test_resolve_dot_and_inner_dotdot(self):
        fs = InMemoryFilesystem()
        fs.write_file("/data/x/f.txt", b"1")
        base = fs.lookup("/data")
        node, err = fs.resolve(base, "./x/../x/f.txt")
        assert err == "" and node.data == bytearray(b"1")

    def test_path_open_read(self):
        fs = InMemoryFilesystem()
        fs.write_file("/work/greeting.txt", b"hey!")
        blob = wasi_prog(
            """
            ;; path string "greeting.txt" at 400
            (i64.store (i32.const 400) (i64.const 0x697465657267))   ;; "greeti" LE... built below
            """
        )
        # Easier: write the path via data segment in a standalone program.
        blob = assemble_wat(
            """
            (module
              (import "wasi_snapshot_preview1" "path_open"
                (func $path_open (param i32 i32 i32 i32 i32 i64 i64 i32 i32) (result i32)))
              (import "wasi_snapshot_preview1" "fd_read"
                (func $fd_read (param i32 i32 i32 i32) (result i32)))
              (import "wasi_snapshot_preview1" "fd_write"
                (func $fd_write (param i32 i32 i32 i32) (result i32)))
              (import "wasi_snapshot_preview1" "proc_exit"
                (func $proc_exit (param i32)))
              (memory (export "memory") 1)
              (data (i32.const 400) "greeting.txt")
              (func (export "_start")
                ;; open preopen fd 3, path at 400 len 12 -> fd at 32
                (drop (call $path_open (i32.const 3) (i32.const 0)
                  (i32.const 400) (i32.const 12) (i32.const 0)
                  (i64.const -1) (i64.const -1) (i32.const 0) (i32.const 32)))
                ;; read 4 bytes into 500
                (i32.store (i32.const 0) (i32.const 500))
                (i32.store (i32.const 4) (i32.const 4))
                (drop (call $fd_read (i32.load (i32.const 32)) (i32.const 0) (i32.const 1) (i32.const 16)))
                ;; echo
                (i32.store (i32.const 0) (i32.const 500))
                (i32.store (i32.const 4) (i32.load (i32.const 16)))
                (drop (call $fd_write (i32.const 1) (i32.const 0) (i32.const 1) (i32.const 16)))
                (call $proc_exit (i32.const 0))))
            """
        )
        result = run_wasi(blob, preopens={"/work": "/work"}, fs=fs)
        assert result.stdout == b"hey!"

    def test_path_open_missing_file(self):
        blob = assemble_wat(
            """
            (module
              (import "wasi_snapshot_preview1" "path_open"
                (func $path_open (param i32 i32 i32 i32 i32 i64 i64 i32 i32) (result i32)))
              (import "wasi_snapshot_preview1" "proc_exit"
                (func $proc_exit (param i32)))
              (memory 1)
              (data (i32.const 400) "nope.txt")
              (func (export "_start")
                (call $proc_exit (call $path_open (i32.const 3) (i32.const 0)
                  (i32.const 400) (i32.const 8) (i32.const 0)
                  (i64.const -1) (i64.const -1) (i32.const 0) (i32.const 32)))))
            """
        )
        result = run_wasi(blob, preopens={"/work": "/work"})
        assert result.exit_code == 44  # ENOENT


class TestProcExit:
    def test_exit_code_propagates(self):
        blob = wasi_prog("(call $proc_exit (i32.const 17))")
        assert run_wasi(blob).exit_code == 17

    def test_normal_return_is_zero(self):
        blob = wasi_prog("nop")
        assert run_wasi(blob).exit_code == 0

    def test_exit_stops_execution(self):
        blob = wasi_prog(
            """
            (call $proc_exit (i32.const 1))
            ;; never reached:
            (i32.store8 (i32.const 100) (i32.const 88))
            (call $write_str (i32.const 1) (i32.const 100) (i32.const 1))
            """
        )
        result = run_wasi(blob)
        assert result.exit_code == 1
        assert result.stdout == b""
