"""WAT lexer + parser behaviour."""

import math

import pytest

from repro.errors import WatSyntaxError
from repro.wasm import parse_wat, validate_module
from repro.wasm.types import FuncType, Limits, ValType
from repro.wasm.wat.lexer import TokKind, tokenize
from repro.wasm.wat.parser import parse_float, parse_int


class TestLexer:
    def test_parens_and_atoms(self):
        toks = tokenize("(module $m)")
        assert [t.kind for t in toks] == [
            TokKind.LPAREN,
            TokKind.ATOM,
            TokKind.ATOM,
            TokKind.RPAREN,
        ]

    def test_line_comment(self):
        toks = tokenize("(a) ;; comment here\n(b)")
        assert len(toks) == 6

    def test_nested_block_comment(self):
        toks = tokenize("(a (; outer (; inner ;) still ;) b)")
        assert [t.text for t in toks if t.kind is TokKind.ATOM] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(WatSyntaxError, match="block comment"):
            tokenize("(; never ends")

    def test_string_escapes(self):
        toks = tokenize(r'"a\n\t\"\\\5a"')
        assert toks[0].data == b'a\n\t"\\\x5a'

    def test_unicode_escape(self):
        toks = tokenize(r'"\u{1F600}"')
        assert toks[0].data == "\U0001F600".encode("utf-8")

    def test_unterminated_string(self):
        with pytest.raises(WatSyntaxError, match="unterminated"):
            tokenize('"abc')

    def test_line_col_tracking(self):
        toks = tokenize("(a\n  b)")
        b = [t for t in toks if t.text == "b"][0]
        assert (b.line, b.col) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(WatSyntaxError):
            tokenize("[bracket]")


class TestLiterals:
    @pytest.mark.parametrize(
        "text,value",
        [("0", 0), ("42", 42), ("-1", -1), ("0x10", 16), ("-0x80000000", -(2**31)),
         ("4294967295", -1), ("1_000_000", 1000000)],
    )
    def test_i32(self, text, value):
        assert parse_int(text, 32) == value

    def test_i32_overflow(self):
        with pytest.raises(WatSyntaxError):
            parse_int("4294967296", 32)

    @pytest.mark.parametrize(
        "text,value",
        [("1.5", 1.5), ("-2.0", -2.0), ("1e3", 1000.0), ("inf", math.inf),
         ("-inf", -math.inf), ("0x1.8p3", 12.0)],
    )
    def test_floats(self, text, value):
        assert parse_float(text, 64) == value

    def test_nan(self):
        assert math.isnan(parse_float("nan", 64))
        assert math.isnan(parse_float("nan:0x400000", 32))

    def test_f32_rounding(self):
        # 0.1 is not representable in f32; must round through single.
        assert parse_float("0.1", 32) != 0.1


class TestModuleFields:
    def test_typed_func_with_named_params(self):
        m = parse_wat(
            "(module (func $add (param $a i32) (param $b i32) (result i32) "
            "(i32.add (local.get $a) (local.get $b))))"
        )
        assert m.types[0] == FuncType((ValType.I32, ValType.I32), (ValType.I32,))
        assert m.funcs[0].name == "add"

    def test_type_interning(self):
        m = parse_wat(
            "(module (func (param i32)) (func (param i32)) (func (param i64)))"
        )
        assert len(m.types) == 2

    def test_explicit_type_use(self):
        m = parse_wat(
            "(module (type $t (func (param i32) (result i32))) "
            "(func (type $t) (local.get 0)))"
        )
        assert m.funcs[0].type_idx == 0

    def test_type_use_signature_mismatch(self):
        with pytest.raises(WatSyntaxError, match="does not match"):
            parse_wat(
                "(module (type $t (func (param i32))) "
                "(func (type $t) (param i64)))"
            )

    def test_inline_export(self):
        m = parse_wat('(module (func (export "f") (export "g")))')
        assert [(e.name, e.index) for e in m.exports] == [("f", 0), ("g", 0)]

    def test_inline_import(self):
        m = parse_wat('(module (func $f (import "env" "f") (param i32)))')
        assert m.imports[0].module == "env"
        assert m.num_imported_funcs() == 1

    def test_memory_with_limits(self):
        m = parse_wat("(module (memory 2 10))")
        assert m.mems[0].limits == Limits(2, 10)

    def test_memory_inline_data(self):
        m = parse_wat('(module (memory (data "abc")))')
        assert m.mems[0].limits == Limits(1, 1)
        assert m.datas[0].data == b"abc"

    def test_data_with_offset(self):
        m = parse_wat('(module (memory 1) (data (i32.const 8) "xy" "z"))')
        assert m.datas[0].data == b"xyz"
        assert m.datas[0].offset[0].args == (8,)

    def test_global_mutable(self):
        m = parse_wat("(module (global $g (mut i64) (i64.const 5)))")
        assert m.globals[0].type.mutable is True
        assert m.globals[0].type.valtype is ValType.I64

    def test_table_with_elem(self):
        m = parse_wat(
            "(module (table 2 funcref) (elem (i32.const 0) $f $f) (func $f))"
        )
        assert m.elems[0].func_indices == [0, 0]

    def test_table_inline_elem(self):
        m = parse_wat("(module (table funcref (elem $f)) (func $f))")
        assert m.tables[0].limits == Limits(1, 1)

    def test_start_field(self):
        m = parse_wat("(module (func $main) (start $main))")
        assert m.start == 0

    def test_export_field(self):
        m = parse_wat('(module (func $f) (export "run" (func $f)))')
        assert m.exports[0].index == 0

    def test_module_name(self):
        assert parse_wat("(module $hello)").name == "hello"

    def test_unknown_field_rejected(self):
        with pytest.raises(WatSyntaxError, match="unsupported module field"):
            parse_wat("(module (bogus))")

    def test_duplicate_identifier_rejected(self):
        with pytest.raises(WatSyntaxError, match="duplicate"):
            parse_wat("(module (func $f) (func $f))")

    def test_unknown_function_reference(self):
        with pytest.raises(WatSyntaxError, match="unknown function"):
            parse_wat("(module (func (call $missing)))")

    def test_unbalanced_parens(self):
        with pytest.raises(WatSyntaxError, match="unbalanced"):
            parse_wat("(module (func)")


class TestInstructionForms:
    def test_flat_form(self):
        m = parse_wat(
            "(module (func (result i32) i32.const 1 i32.const 2 i32.add))"
        )
        assert [i.op for i in m.funcs[0].body] == ["i32.const", "i32.const", "i32.add"]

    def test_folded_form_operand_order(self):
        m = parse_wat(
            "(module (func (result i32) (i32.sub (i32.const 10) (i32.const 3))))"
        )
        ops = [(i.op, i.args) for i in m.funcs[0].body]
        assert ops == [("i32.const", (10,)), ("i32.const", (3,)), ("i32.sub", ())]

    def test_flat_block_with_end(self):
        m = parse_wat(
            "(module (func block $l i32.const 1 drop end))"
        )
        assert m.funcs[0].body[0].op == "block"

    def test_flat_if_else(self):
        m = parse_wat(
            "(module (func (param i32) (result i32) "
            "local.get 0 if (result i32) i32.const 1 else i32.const 2 end))"
        )
        if_instr = m.funcs[0].body[1]
        assert if_instr.op == "if"
        assert if_instr.body[0].args == (1,)
        assert if_instr.else_body[0].args == (2,)

    def test_label_resolution_depth(self):
        m = parse_wat(
            "(module (func (block $outer (block $inner (br $outer)))))"
        )
        outer = m.funcs[0].body[0]
        inner = outer.body[0]
        assert inner.body[0].args == (1,)  # $outer is depth 1 from inside $inner

    def test_loop_label(self):
        m = parse_wat("(module (func (loop $l (br $l))))")
        assert m.funcs[0].body[0].body[0].args == (0,)

    def test_unknown_label(self):
        with pytest.raises(WatSyntaxError, match="unknown label"):
            parse_wat("(module (func (br $nope)))")

    def test_memarg_defaults(self):
        m = parse_wat("(module (memory 1) (func (drop (i64.load (i32.const 0)))))")
        load = m.funcs[0].body[1]
        assert load.args == (3, 0)  # natural align log2(8)=3, offset 0

    def test_bad_alignment(self):
        with pytest.raises(WatSyntaxError, match="power of 2"):
            parse_wat("(module (memory 1) (func (drop (i32.load align=3 (i32.const 0)))))")

    def test_call_indirect_typeuse(self):
        m = parse_wat(
            "(module (table 1 funcref) (func (result i32) "
            "(call_indirect (result i32) (i32.const 0))))"
        )
        ci = m.funcs[0].body[-1]
        assert ci.op == "call_indirect"
        assert m.types[ci.args[0]] == FuncType((), (ValType.I32,))

    def test_select_parses(self):
        m = parse_wat(
            "(module (func (result i32) "
            "(select (i32.const 1) (i32.const 2) (i32.const 0))))"
        )
        assert m.funcs[0].body[-1].op == "select"

    def test_parsed_modules_validate(self):
        m = parse_wat(
            """
            (module
              (memory 1)
              (global $g (mut i32) (i32.const 0))
              (table 2 funcref)
              (elem (i32.const 0) $f $f)
              (func $f (param i32) (result i32)
                (local $tmp i32)
                (local.set $tmp (i32.mul (local.get 0) (i32.const 2)))
                (global.set $g (local.get $tmp))
                (local.get $tmp))
              (func (export "main") (result i32)
                (call_indirect (param i32) (result i32) (i32.const 21) (i32.const 0))))
            """
        )
        validate_module(m)
