"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.k8s.cluster import Cluster, build_cluster
from repro.workloads.microservice import build_microservice_wasm


@pytest.fixture(scope="session")
def microservice_blob() -> bytes:
    return build_microservice_wasm()


@pytest.fixture()
def cluster() -> Cluster:
    return build_cluster(seed=7)
