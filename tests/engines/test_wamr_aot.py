"""The wamr-aot extension profile and its handler plumbing."""

import pytest

from repro.engines import available_engines, get_engine
from repro.engines.profiles import ALL_PROFILES, EXTENSION_PROFILES
from repro.errors import EngineError
from repro.workloads.microservice import build_microservice_wasm


class TestAotProfile:
    def test_not_in_paper_engine_set(self):
        assert "wamr-aot" not in available_engines()
        assert "wamr-aot" in EXTENSION_PROFILES

    def test_resolvable_via_registry(self):
        engine = get_engine("wamr-aot")
        assert engine.profile.compile_mode == "aot"

    def test_same_semantics_as_interpreter_mode(self, microservice_blob):
        interp = get_engine("wamr")
        aot = get_engine("wamr-aot")
        r1 = interp.run(interp.compile(microservice_blob), env={"REQUESTS": "1"})
        r2 = aot.run(aot.compile(microservice_blob), env={"REQUESTS": "1"})
        assert r1.stdout == r2.stdout
        assert r1.instructions == r2.instructions

    def test_aot_trades_memory_for_speed(self, microservice_blob):
        interp = get_engine("wamr")
        aot = get_engine("wamr-aot")
        ci = interp.compile(microservice_blob)
        ca = aot.compile(microservice_blob)
        # Bigger artifact (native code)...
        assert ca.artifact_bytes > ci.artifact_bytes
        # ...longer compile...
        assert ca.compile_seconds > ci.compile_seconds
        # ...much faster execution.
        r1 = interp.run(ci)
        r2 = aot.run(ca)
        assert r2.exec_seconds < r1.exec_seconds / 5

    def test_shares_libiwasm_file_key(self):
        assert (
            get_engine("wamr-aot").profile.lib_file
            == get_engine("wamr").profile.lib_file
        )

    def test_paper_profiles_untouched(self):
        assert set(ALL_PROFILES) == {"wamr", "wasmtime", "wasmer", "wasmedge"}
