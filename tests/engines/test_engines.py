"""Engine models: functional execution + resource accounting."""

import pytest

from repro.engines import available_engines, get_engine
from repro.engines.base import WasmEngine
from repro.engines.cache import (
    cache_stats,
    clear_caches,
    compile_cached,
    compile_stats,
    prepare_stats,
    reset_caches,
    run_cached,
    run_stats,
)
from repro.engines.profiles import ALL_PROFILES, STACK_VERSIONS
from repro.errors import EngineError
from repro.sim.memory import MIB
from repro.wasm import assemble_wat


@pytest.fixture(scope="module")
def blob(microservice_blob):
    return microservice_blob


class TestRegistry:
    def test_four_engines(self):
        assert available_engines() == ["wamr", "wasmedge", "wasmer", "wasmtime"]

    def test_engines_are_singletons(self):
        assert get_engine("wamr") is get_engine("WAMR")

    def test_unknown_engine(self):
        with pytest.raises(EngineError, match="unknown engine"):
            get_engine("v8")


class TestProfiles:
    def test_versions_match_table1(self):
        assert ALL_PROFILES["wamr"].version == STACK_VERSIONS["WAMR"]
        assert ALL_PROFILES["wasmtime"].version == STACK_VERSIONS["Wasmtime"]

    def test_wamr_is_smallest_embedded(self):
        wamr = ALL_PROFILES["wamr"]
        for other in ("wasmtime", "wasmer", "wasmedge"):
            assert wamr.base_rss < ALL_PROFILES[other].base_rss
            assert wamr.lib_text < ALL_PROFILES[other].lib_text

    def test_interpreters_have_unit_code_multiplier(self):
        assert ALL_PROFILES["wamr"].code_multiplier == 1.0
        assert ALL_PROFILES["wasmedge"].code_multiplier == 1.0

    def test_jits_multiply_code(self):
        assert ALL_PROFILES["wasmtime"].code_multiplier > 1
        assert ALL_PROFILES["wasmer"].code_multiplier > 1

    def test_latency_helpers(self):
        p = ALL_PROFILES["wasmtime"]
        assert p.compile_seconds(p.compile_bps) == pytest.approx(1.0)
        assert p.exec_seconds(p.interp_ips) == pytest.approx(1.0)


class TestCompileRun:
    def test_compile_validates(self, blob):
        compiled = get_engine("wamr").compile(blob)
        assert compiled.module_size == len(blob)
        assert compiled.artifact_bytes == len(blob)  # interp: 1x

    def test_jit_artifact_larger(self, blob):
        compiled = get_engine("wasmtime").compile(blob)
        assert compiled.artifact_bytes == 6 * len(blob)

    def test_compile_rejects_garbage(self):
        with pytest.raises(EngineError, match="rejected"):
            get_engine("wamr").compile(b"\x00asm garbage")

    def test_run_produces_real_output(self, blob):
        engine = get_engine("wamr")
        result = engine.run(engine.compile(blob), args=["svc"], env={})
        assert result.exit_code == 0
        assert b"microservice: ready" in result.stdout
        assert result.instructions > 1000
        assert result.linear_memory_bytes == 65536

    def test_identical_semantics_across_engines(self, blob):
        outputs = set()
        for name in available_engines():
            engine = get_engine(name)
            result = engine.run(engine.compile(blob), args=["svc"], env={"REQUESTS": "2"})
            outputs.add((result.exit_code, result.stdout, result.instructions))
        assert len(outputs) == 1, "engines must agree on guest semantics"

    def test_exec_seconds_differ_by_engine_speed(self, blob):
        wamr = get_engine("wamr")
        wasmtime = get_engine("wasmtime")
        r1 = wamr.run(wamr.compile(blob))
        r2 = wasmtime.run(wasmtime.compile(blob))
        assert r1.exec_seconds > r2.exec_seconds  # interp slower than JIT

    def test_run_trap_becomes_engine_error(self):
        bad = assemble_wat('(module (func (export "_start") unreachable))')
        engine = get_engine("wamr")
        with pytest.raises(EngineError, match="trap"):
            engine.run(engine.compile(bad))


class TestMemoryAccounting:
    def test_embedded_footprint_composition(self, blob):
        engine = get_engine("wamr")
        compiled = engine.compile(blob)
        linmem = 65536
        total = engine.embedded_private_bytes(compiled, linmem)
        p = engine.profile
        assert total == p.base_rss + p.per_instance + compiled.artifact_bytes + linmem

    def test_shim_child_footprint(self, blob):
        engine = get_engine("wasmtime")
        compiled = engine.compile(blob)
        assert (
            engine.shim_child_private_bytes(compiled, 65536)
            == engine.profile.shim_child_rss + 65536
        )

    def test_wamr_embedded_beats_others_by_construction(self, blob):
        linmem = 65536
        footprints = {}
        for name in available_engines():
            engine = get_engine(name)
            footprints[name] = engine.embedded_private_bytes(
                engine.compile(blob), linmem
            )
        assert min(footprints, key=footprints.get) == "wamr"
        # Paper's headline: >= ~50% smaller than the next engine.
        others = [v for k, v in footprints.items() if k != "wamr"]
        assert footprints["wamr"] < 0.5 * min(others)


class TestCache:
    def test_run_cached_reuses_results(self, blob):
        clear_caches()
        engine = get_engine("wamr")
        c1, r1 = run_cached(engine, blob, args=["svc"], env={"A": "1"})
        c2, r2 = run_cached(engine, blob, args=["svc"], env={"A": "1"})
        assert r1 is r2 and c1 is c2

    def test_cache_distinguishes_env(self, blob):
        clear_caches()
        engine = get_engine("wamr")
        _, r1 = run_cached(engine, blob, args=["svc"], env={"REQUESTS": "1"})
        _, r2 = run_cached(engine, blob, args=["svc"], env={"REQUESTS": "2"})
        assert r1.stdout != r2.stdout

    def test_cache_distinguishes_engine(self, blob):
        clear_caches()
        c1, _ = run_cached(get_engine("wamr"), blob, args=["x"])
        c2, _ = run_cached(get_engine("wasmtime"), blob, args=["x"])
        assert c1.artifact_bytes != c2.artifact_bytes

    def test_hit_miss_counters(self, blob):
        reset_caches()
        engine = get_engine("wamr")
        run_cached(engine, blob, args=["svc"])
        assert (compile_stats.misses, compile_stats.hits) == (1, 0)
        assert (run_stats.misses, run_stats.hits) == (1, 0)
        run_cached(engine, blob, args=["svc"])
        assert (compile_stats.misses, compile_stats.hits) == (1, 1)
        assert (run_stats.misses, run_stats.hits) == (1, 1)

    def test_prepare_cached_shared_across_engines(self, blob):
        # Flat code is engine-neutral: the second engine's decode re-uses
        # the prepared functions keyed by blob digest.
        reset_caches()
        c1 = compile_cached(get_engine("wamr"), blob)
        c2 = compile_cached(get_engine("wasmtime"), blob)
        assert prepare_stats.misses == 1 and prepare_stats.hits == 1
        assert (
            c1.module.funcs[0].prepared is c2.module.funcs[0].prepared is not None
        )

    def test_reset_caches_zeroes_state(self, blob):
        engine = get_engine("wamr")
        run_cached(engine, blob, args=["svc"])
        reset_caches()
        stats = cache_stats()
        for layer in ("compile", "prepare", "run"):
            assert stats[layer] == {"hits": 0, "misses": 0, "entries": 0}

    def test_clear_caches_is_reset_alias(self):
        assert clear_caches is reset_caches
