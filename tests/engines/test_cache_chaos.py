"""Cache-entry corruption: rebuild-once semantics and the run-cache bypass.

Armed with ``cache.corrupt``, a warm decode/compile/prepare hit can come
back poisoned; the layer must drop the entry and rebuild it — at most
once per entry (``MAX_REBUILDS_PER_ENTRY``), so a hostile plan cannot
turn the cache into a permanent miss machine. And with any guest-runtime
point armed, the run cache must get out of the way entirely: memoizing
one pod's execution would let its fault draw answer for every pod.
"""

import pytest

from repro.engines import cache as engine_cache
from repro.engines.cache import (
    cache_rebuilds,
    cache_stats,
    compile_cached,
    decode_cached,
    reset_caches,
    run_cached,
)
from repro.engines import get_engine
from repro.sim.faults import FaultPlan, FaultPoint, FaultSpec, fault_scope
from repro.wasm import assemble_wat
from repro.wasm.runtime import SpecializedFunction

WAT = r"""
(module
  (memory (export "memory") 1)
  (func (export "_start")))
"""


@pytest.fixture(autouse=True)
def _fresh_caches():
    reset_caches()
    yield
    reset_caches()


def _always_corrupt():
    return FaultPlan([FaultSpec(FaultPoint.CACHE_CORRUPT, probability=1.0)])


class TestCorruptRebuild:
    def test_decode_hit_corrupted_rebuilds_once(self):
        blob = assemble_wat(WAT)
        module, digest = decode_cached(blob)
        plan = _always_corrupt()
        with fault_scope(plan, "pod-1"):
            rebuilt, _ = decode_cached(blob)  # corrupt → miss → rebuild
            cached, _ = decode_cached(blob)  # rebuild budget spent → hit
        assert rebuilt is not module  # fresh decode, not the poisoned one
        assert cached is rebuilt
        # decode_cached also services the prepare and specialize layers;
        # every entry took its one rebuild and then went quiet.
        assert cache_rebuilds() == {
            ("decode", digest): 1,
            ("prepare", digest): 1,
            ("specialize", digest): 1,
        }
        assert plan.count(FaultPoint.CACHE_CORRUPT) == 3

    def test_compile_hit_corrupted_rebuilds_once(self):
        blob = assemble_wat(WAT)
        engine = get_engine("wamr")
        compiled = compile_cached(engine, blob)
        with fault_scope(_always_corrupt(), "pod-1"):
            rebuilt = compile_cached(engine, blob)
            assert compile_cached(engine, blob) is rebuilt
        assert rebuilt is not compiled
        key = ("compile", f"{engine.name}/{compiled.digest}")
        assert cache_rebuilds()[key] == 1

    def test_no_scope_means_no_corruption(self):
        blob = assemble_wat(WAT)
        module, _ = decode_cached(blob)
        assert decode_cached(blob)[0] is module
        assert cache_rebuilds() == {}

    def test_unarmed_plan_never_corrupts(self):
        blob = assemble_wat(WAT)
        module, _ = decode_cached(blob)
        plan = FaultPlan(
            [FaultSpec(FaultPoint.GUEST_TRAP, probability=1.0)]
        )
        with fault_scope(plan, "pod-1"):
            assert decode_cached(blob)[0] is module
        assert cache_rebuilds() == {}

    def test_rebuild_counts_reset_with_caches(self):
        blob = assemble_wat(WAT)
        decode_cached(blob)
        with fault_scope(_always_corrupt(), "pod-1"):
            decode_cached(blob)
        assert cache_rebuilds()
        reset_caches()
        assert cache_rebuilds() == {}


class TestSpecializeCorrupt:
    """``cache.corrupt`` on the specialized-code layer (PR 7)."""

    def test_specialized_hit_corrupted_respecializes_once(self):
        blob = assemble_wat(WAT)
        module, digest = decode_cached(blob)
        assert isinstance(module.funcs[0].prepared, SpecializedFunction)
        with fault_scope(_always_corrupt(), "pod-1"):
            rebuilt, _ = decode_cached(blob)  # corrupt → re-specialize
            decode_cached(blob)  # rebuild budget spent → hit
        # The rebuilt attachment is specialized again, not left baseline.
        assert isinstance(rebuilt.funcs[0].prepared, SpecializedFunction)
        assert cache_rebuilds()[("specialize", digest)] == 1

    def test_pass_failure_falls_back_to_prepared(self, monkeypatch):
        def boom(module, mode):
            raise RuntimeError("specialization pass exploded")

        monkeypatch.setattr(engine_cache, "specialize_module", boom)
        blob = assemble_wat(WAT)
        module, _ = decode_cached(blob)
        # Unspecialized prepared code stays attached and nothing cached.
        pf = module.funcs[0].prepared
        assert pf is not None
        assert not isinstance(pf, SpecializedFunction)
        assert cache_stats()["specialize"]["entries"] == 0

    def test_off_mode_skips_layer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPECIALIZE", "off")
        blob = assemble_wat(WAT)
        module, _ = decode_cached(blob)
        assert not isinstance(module.funcs[0].prepared, SpecializedFunction)
        assert cache_stats()["specialize"]["entries"] == 0

    def test_mode_change_respecializes(self, monkeypatch):
        blob = assemble_wat(WAT)
        module, _ = decode_cached(blob)
        assert module.funcs[0].prepared.compiled is not None  # default: on
        monkeypatch.setenv("REPRO_SPECIALIZE", "bytecode")
        module2, _ = decode_cached(blob)
        sf = module2.funcs[0].prepared
        assert isinstance(sf, SpecializedFunction)
        assert sf.compiled is None


class TestRunCacheBypass:
    def test_armed_guest_points_bypass_run_cache(self):
        blob = assemble_wat(WAT)
        engine = get_engine("wamr")
        plan = FaultPlan(
            [FaultSpec(FaultPoint.GUEST_TRAP, probability=0.0)]
        )
        # probability=0 still counts as unarmed: memoization is safe.
        with fault_scope(plan, "pod-1"):
            run_cached(engine, blob, args=("m",))
            run_cached(engine, blob, args=("m",))
        assert cache_stats()["run"]["entries"] == 1

        reset_caches()
        # Armed (probability > 0) but with a spent budget: the bypass
        # decision keys on arming alone, and no fault actually fires.
        armed = FaultPlan(
            [FaultSpec(FaultPoint.GUEST_TRAP, probability=1.0, max_occurrences=0)]
        )
        with fault_scope(armed, "pod-1"):
            run_cached(engine, blob, args=("m",))
            run_cached(engine, blob, args=("m",))
        # Nothing memoized: every pod executes and draws its own faults.
        assert cache_stats()["run"]["entries"] == 0

    def test_bypass_results_match_memoized(self):
        blob = assemble_wat(WAT)
        engine = get_engine("wamr")
        _, memoized = run_cached(engine, blob, args=("m",))
        plan = FaultPlan(
            [FaultSpec(FaultPoint.GUEST_TRAP, probability=1.0, max_occurrences=0)]
        )
        with fault_scope(plan, "pod-1"):
            _, bypassed = run_cached(engine, blob, args=("m",))
        assert (bypassed.exit_code, bypassed.stdout, bypassed.stderr) == (
            memoized.exit_code,
            memoized.stdout,
            memoized.stderr,
        )
