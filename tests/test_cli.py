"""CLI behaviour (argument parsing + end-to-end subcommands)."""

import pathlib

import pytest

from repro.cli import main
from repro.workloads.microservice import MICROSERVICE_WAT, build_microservice_wasm


@pytest.fixture()
def wat_file(tmp_path) -> pathlib.Path:
    path = tmp_path / "svc.wat"
    path.write_text(MICROSERVICE_WAT)
    return path


@pytest.fixture()
def wasm_file(tmp_path) -> pathlib.Path:
    path = tmp_path / "svc.wasm"
    path.write_bytes(build_microservice_wasm())
    return path


class TestToolchainCommands:
    def test_wat2wasm(self, wat_file, tmp_path, capsys):
        out = tmp_path / "out.wasm"
        assert main(["wat2wasm", str(wat_file), "-o", str(out)]) == 0
        assert out.read_bytes()[:4] == b"\x00asm"
        assert "wrote" in capsys.readouterr().out

    def test_wat2wasm_default_output(self, wat_file):
        assert main(["wat2wasm", str(wat_file)]) == 0
        assert wat_file.with_suffix(".wasm").exists()

    def test_wasm2wat_prints(self, wasm_file, capsys):
        assert main(["wasm2wat", str(wasm_file)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("(module") and "fd_write" in out

    def test_wasm2wat_roundtrip_through_files(self, wasm_file, tmp_path):
        wat_out = tmp_path / "dis.wat"
        assert main(["wasm2wat", str(wasm_file), "-o", str(wat_out)]) == 0
        wasm_out = tmp_path / "re.wasm"
        assert main(["wat2wasm", str(wat_out), "-o", str(wasm_out)]) == 0
        assert wasm_out.read_bytes() == wasm_file.read_bytes()

    def test_validate_wat(self, wat_file, capsys):
        assert main(["validate", str(wat_file)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_wasm(self, wasm_file, capsys):
        assert main(["validate", str(wasm_file)]) == 0

    def test_validate_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.wasm"
        bad.write_bytes(b"nope")
        assert main(["validate", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["validate", "/nonexistent.wasm"]) == 1


class TestCcCommand:
    def test_compile_and_run_c(self, tmp_path, capsys):
        src = tmp_path / "app.c"
        src.write_text(
            'int main(void) { puts("from C"); putd(6 * 7); return 3; }'
        )
        assert main(["cc", str(src)]) == 0
        out_path = src.with_suffix(".wasm")
        assert out_path.read_bytes()[:4] == b"\x00asm"
        capsys.readouterr()
        code = main(["run", str(out_path)])
        captured = capsys.readouterr()
        assert code == 3
        assert captured.out == "from C\n42\n"

    def test_run_c_source_directly(self, tmp_path, capsys):
        src = tmp_path / "direct.c"
        src.write_text("int main(void) { putd(env_int(\"N\", 11)); return 0; }")
        assert main(["run", str(src), "--env", "N=5"]) == 0
        assert capsys.readouterr().out == "5\n"

    def test_cc_error_reporting(self, tmp_path, capsys):
        src = tmp_path / "bad.c"
        src.write_text("int main(void) { return missing(); }")
        assert main(["cc", str(src)]) == 1
        assert "unknown function" in capsys.readouterr().err

    def test_cc_output_disassembles(self, tmp_path, capsys):
        src = tmp_path / "app.c"
        src.write_text("int twice(int x) { return 2 * x; } int main(void) { return twice(2); }")
        out = tmp_path / "app.wasm"
        assert main(["cc", str(src), "-o", str(out)]) == 0
        capsys.readouterr()
        assert main(["wasm2wat", str(out)]) == 0
        text = capsys.readouterr().out
        assert "i32.mul" in text


class TestRunCommand:
    def test_run_wasm(self, wasm_file, capsys):
        code = main(["run", str(wasm_file), "--env", "REQUESTS=2", "--stats"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.count("request served") == 2
        assert "instructions=" in captured.err

    def test_run_wat_directly(self, wat_file, capsys):
        assert main(["run", str(wat_file)]) == 0
        assert "ready" in capsys.readouterr().out

    def test_run_fuel_exhaustion(self, tmp_path, capsys):
        spin = tmp_path / "spin.wat"
        spin.write_text('(module (func (export "_start") (loop $l (br $l))))')
        assert main(["run", str(spin), "--fuel", "1000"]) == 1
        assert "error" in capsys.readouterr().err


class TestDeployCommand:
    def test_deploy_summary(self, capsys):
        assert main(["deploy", "--config", "crun-wamr", "-n", "4", "--phases"]) == 0
        out = capsys.readouterr().out
        assert "memory (metrics)" in out
        assert "startup.parallel" in out

    def test_deploy_unknown_config(self, capsys):
        assert main(["deploy", "--config", "docker-v8", "-n", "2"]) == 1


class TestTelemetryExport:
    @pytest.fixture()
    def restore_obs(self):
        from repro import obs

        was = obs.enabled()
        yield
        obs.reset()
        obs.set_enabled(was)

    def test_deploy_exports_trace_and_metrics(self, tmp_path, capsys, restore_obs):
        import json

        from repro.obs.export import parse_prometheus_text, validate_chrome_trace

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.prom"
        assert main([
            "deploy", "--config", "crun-wamr", "-n", "3",
            "--trace-out", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert str(trace) in out and str(metrics) in out
        assert validate_chrome_trace(json.loads(trace.read_text())) > 0
        families = parse_prometheus_text(metrics.read_text())
        assert "repro_scheduler_placements_total" in families

    def test_inspect_renders_breakdown(self, tmp_path, capsys, restore_obs):
        trace = tmp_path / "t.jsonl"
        assert main([
            "deploy", "--config", "crun-wamr", "-n", "2", "--trace-out", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["inspect", str(trace)]) == 0
        table = capsys.readouterr().out
        assert "startup.pipeline" in table and "pod.sync" in table
        assert main(["inspect", str(trace), "--category", "startup"]) == 0
        assert "pod.sync" not in capsys.readouterr().out

    def test_inspect_missing_file(self, capsys):
        assert main(["inspect", "/nonexistent-trace.json"]) == 1
        assert "error" in capsys.readouterr().err

    def test_deploy_without_flags_leaves_telemetry_off(self, capsys):
        from repro import obs

        was = obs.enabled()
        assert main(["deploy", "--config", "crun-wamr", "-n", "2"]) == 0
        assert obs.enabled() == was


class TestFiguresCommand:
    def test_single_table(self, capsys):
        assert main(["figures", "table1"]) == 0
        assert "WAMR" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err


class TestSeriesCommand:
    def test_list_shows_every_shipped_series(self, capsys):
        assert main(["series", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("campaign", "figures", "zygote", "recovery", "chaos"):
            assert name in out
        assert "27 cells" in out

    def test_validate_expands_all_shipped_specs(self, capsys):
        assert main(["series", "validate"]) == 0
        out = capsys.readouterr().out
        assert "campaign: ok (27 cells)" in out
        assert "zygote: ok (2 cells)" in out

    def test_validate_unknown_series_fails(self, capsys):
        assert main(["series", "validate", "no-such"]) == 1
        assert "unknown series" in capsys.readouterr().err

    def test_run_requires_a_name(self, capsys):
        assert main(["series", "run"]) == 2
        assert "name required" in capsys.readouterr().err

    def test_run_recovery_series(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["series", "run", "recovery", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "done recovery:crun-wamr:n100:s1" in out
        assert "1/1 cells" in out

    def test_run_journals_to_manifest(self, tmp_path, capsys):
        import json

        manifest = tmp_path / "series.json"
        assert main([
            "series", "run", "recovery",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest", str(manifest),
        ]) == 0
        capsys.readouterr()
        completed = json.loads(manifest.read_text())["completed"]
        assert list(completed) == ["recovery:crun-wamr:n100:s1"]
