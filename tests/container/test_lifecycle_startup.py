"""Container lifecycle state machine + startup profiles."""

import pytest

from repro.container.lifecycle import Container, ContainerState
from repro.container.startup import known_configs, startup_profile
from repro.errors import InvalidTransition


def fresh() -> Container:
    return Container(
        container_id="c1", pod_uid="p1", runtime_config="crun-wamr", cgroup="/kubepods/p1"
    )


class TestLifecycle:
    def test_happy_path(self):
        c = fresh()
        c.transition(ContainerState.CREATED)
        c.transition(ContainerState.RUNNING)
        assert c.is_running
        c.transition(ContainerState.STOPPED)
        c.transition(ContainerState.DELETED)

    def test_kill_before_start(self):
        c = fresh()
        c.transition(ContainerState.CREATED)
        c.transition(ContainerState.STOPPED)

    def test_cannot_run_from_creating(self):
        c = fresh()
        with pytest.raises(InvalidTransition):
            c.transition(ContainerState.RUNNING)

    def test_cannot_delete_running(self):
        c = fresh()
        c.transition(ContainerState.CREATED)
        c.transition(ContainerState.RUNNING)
        with pytest.raises(InvalidTransition):
            c.transition(ContainerState.DELETED)

    def test_cannot_resurrect(self):
        c = fresh()
        c.transition(ContainerState.CREATED)
        c.transition(ContainerState.STOPPED)
        c.transition(ContainerState.DELETED)
        with pytest.raises(InvalidTransition):
            c.transition(ContainerState.RUNNING)


class TestStartupProfiles:
    def test_all_nine_configs_present(self):
        assert len(known_configs()) == 9
        for config in known_configs():
            profile = startup_profile(config)
            assert profile.pipeline_s > 0
            assert profile.parallel_s > 0
            assert profile.serial_s >= 0

    def test_unknown_config(self):
        with pytest.raises(KeyError, match="no startup profile"):
            startup_profile("docker-v8")

    def test_serial_hold_grows_with_density(self):
        p = startup_profile("crun-wamr")
        assert p.serial_hold(400) > p.serial_hold(0) == p.serial_s

    def test_runwasi_pipeline_is_shortest(self):
        """runwasi skips the shim→crun hop (fewer sequential hops)."""
        for shim in ("shim-wasmtime", "shim-wasmedge", "shim-wasmer"):
            assert startup_profile(shim).pipeline_s < startup_profile("crun-wamr").pipeline_s

    def test_runc_pipeline_is_slowest(self):
        assert startup_profile("runc-python").pipeline_s > startup_profile("crun-python").pipeline_s

    def test_ours_has_smallest_parallel_cost(self):
        """The WAMR handler avoids JIT compilation and CPython boot."""
        ours = startup_profile("crun-wamr").parallel_s
        for other in known_configs():
            if other != "crun-wamr":
                assert ours < startup_profile(other).parallel_s

    def test_runwasi_growth_exceeds_crun_wasmtime(self):
        """The Fig 8 → Fig 9 ranking flip mechanism."""
        assert (
            startup_profile("shim-wasmtime").serial_growth_s
            > startup_profile("crun-wamr").serial_growth_s
            > startup_profile("crun-wasmtime").serial_growth_s
        )
