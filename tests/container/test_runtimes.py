"""Low-level runtimes, runwasi shims, containerd dispatch."""

import pytest

from repro.container import constants as C
from repro.container.highlevel.containerd import Containerd
from repro.container.highlevel.runwasi import RunwasiShim
from repro.container.lifecycle import Container, ContainerState
from repro.container.lowlevel.crun import CrunRuntime, EmbeddedEngineHandler
from repro.container.lowlevel.runc import RuncRuntime
from repro.container.lowlevel.youki import YoukiRuntime
from repro.container.nodeenv import NodeEnv
from repro.core.integration import build_crun_with_wamr
from repro.engines.registry import get_engine
from repro.errors import ContainerError
from repro.oci.bundle import build_bundle
from repro.sim.kernel import Kernel
from repro.sim.memory import MIB, SystemMemoryModel
from repro.workloads.images import build_python_image, build_wasm_image


@pytest.fixture()
def env() -> NodeEnv:
    kernel = Kernel()
    memory = SystemMemoryModel()
    env = NodeEnv.create(kernel=kernel, memory=memory)
    env.images.push(build_wasm_image())
    env.images.push(build_python_image())
    return env


def make_container(config: str = "crun-wamr") -> Container:
    return Container(
        container_id=f"{config}-1",
        pod_uid="pod1",
        runtime_config=config,
        cgroup="/kubepods/pod1",
    )


class TestHandlerRegistration:
    def test_runc_rejects_handlers(self):
        runc = RuncRuntime()
        with pytest.raises(ContainerError, match="does not support"):
            runc.register_handler(EmbeddedEngineHandler(get_engine("wamr")))

    def test_crun_and_youki_accept_handlers(self):
        for runtime in (CrunRuntime(), YoukiRuntime()):
            runtime.register_handler(EmbeddedEngineHandler(get_engine("wasmtime")))
            assert runtime.handler_for(
                build_bundle("c", build_wasm_image())
            ) is not None

    def test_handler_order_first_match_wins(self):
        crun = build_crun_with_wamr(include_upstream_handlers=True)
        handler = crun.handler_for(build_bundle("c", build_wasm_image()))
        assert handler.name == "crun-wamr"

    def test_no_handler_matches_python_bundle(self):
        crun = build_crun_with_wamr()
        assert crun.handler_for(build_bundle("c", build_python_image())) is None


class TestNativeExec:
    def test_python_workload(self, env):
        crun = CrunRuntime()
        container = make_container("crun-python")
        bundle = build_bundle("c", build_python_image(), env_override={"REQUESTS": "1"})
        exec_s = crun.create_and_exec(env, container, bundle)
        assert container.is_running
        assert container.stdout.count(b"\n") == 2  # ready + 1 request
        assert exec_s == 0.0
        proc = container.processes[0]
        assert proc.private_bytes() > 4 * MIB

    def test_runc_python_slightly_heavier(self, env):
        runc_container = make_container("runc-python")
        crun_container = make_container("crun-python")
        RuncRuntime().create_and_exec(
            env, runc_container, build_bundle("c1", build_python_image())
        )
        CrunRuntime().create_and_exec(
            env, crun_container, build_bundle("c2", build_python_image())
        )
        # runC pods carry a small extra (paper's 17.98% vs 18.15% spread).
        diff = (
            runc_container.processes[0].private_bytes()
            - crun_container.processes[0].private_bytes()
        )
        assert abs(diff) < 0.1 * MIB and diff != 0

    def test_wasm_bundle_without_handler_fails(self, env):
        runc = RuncRuntime()
        container = make_container()
        with pytest.raises(ContainerError, match="no wasm handler"):
            runc.create_and_exec(env, container, build_bundle("c", build_wasm_image()))

    def test_unknown_native_binary_rejected(self, env):
        crun = CrunRuntime()
        container = make_container()
        bundle = build_bundle(
            "c", build_python_image(), args_override=["/usr/bin/node"]
        )
        with pytest.raises(ContainerError, match="no native runtime model"):
            crun.create_and_exec(env, container, bundle)

    def test_kill_and_delete_releases_memory(self, env):
        crun = CrunRuntime()
        container = make_container("crun-python")
        before = env.memory.node_working_set()
        crun.create_and_exec(env, container, build_bundle("c", build_python_image()))
        crun.kill_and_delete(env, container)
        assert container.state is ContainerState.DELETED
        assert env.memory.node_working_set() == before


class TestEmbeddedEngines:
    def test_wasm_execution_real_output(self, env):
        crun = CrunRuntime()
        crun.register_handler(EmbeddedEngineHandler(get_engine("wasmedge")))
        container = make_container("crun-wasmedge")
        bundle = build_bundle("c", build_wasm_image(), env_override={"REQUESTS": "2"})
        exec_s = crun.create_and_exec(env, container, bundle)
        assert container.stdout.count(b"request served") == 2
        assert container.facts["engine"] == "wasmedge"
        assert exec_s > 0

    def test_engine_lib_shared_across_containers(self, env):
        crun = CrunRuntime()
        crun.register_handler(EmbeddedEngineHandler(get_engine("wasmtime")))
        for i in range(3):
            c = make_container(f"crun-wasmtime")
            c.container_id = f"c{i}"
            crun.create_and_exec(env, c, build_bundle(f"c{i}", build_wasm_image()))
        assert env.memory.file_mapper_count("lib/libwasmtime.so") == 3

    def test_memory_ranking_wamr_smallest(self, env):
        footprints = {}
        for engine_name in ("wamr", "wasmtime", "wasmer", "wasmedge"):
            crun = CrunRuntime()
            crun.register_handler(EmbeddedEngineHandler(get_engine(engine_name)))
            c = make_container(f"crun-{engine_name}")
            c.container_id = engine_name
            crun.create_and_exec(env, c, build_bundle(engine_name, build_wasm_image()))
            footprints[engine_name] = c.processes[0].private_bytes()
        assert min(footprints, key=footprints.get) == "wamr"
        assert footprints["wasmer"] == max(footprints.values())


class TestRunwasi:
    def test_parent_and_child_processes(self, env):
        shim = RunwasiShim(get_engine("wasmtime"))
        container = make_container("shim-wasmtime")
        shim.create_and_exec(env, container, build_bundle("c", build_wasm_image()))
        assert len(container.processes) == 2
        parent, child = container.processes
        assert parent.cgroup.startswith("/system.slice")
        assert child.cgroup == "/kubepods/pod1"

    def test_metrics_sees_only_child(self, env):
        shim = RunwasiShim(get_engine("wasmtime"))
        container = make_container("shim-wasmtime")
        shim.create_and_exec(env, container, build_bundle("c", build_wasm_image()))
        pod_ws = env.memory.cgroup_working_set("/kubepods/pod1")
        parent, child = container.processes
        assert pod_ws < parent.private_bytes() + child.rss()
        assert pod_ws >= child.private_bytes()

    def test_rejects_non_wasm_image(self, env):
        shim = RunwasiShim(get_engine("wasmer"))
        container = make_container("shim-wasmer")
        with pytest.raises(ContainerError, match="not a wasm image"):
            shim.create_and_exec(env, container, build_bundle("c", build_python_image()))

    def test_functional_output(self, env):
        shim = RunwasiShim(get_engine("wasmedge"))
        container = make_container("shim-wasmedge")
        shim.create_and_exec(env, container, build_bundle("c", build_wasm_image()))
        assert b"microservice: ready" in container.stdout

    def test_teardown(self, env):
        shim = RunwasiShim(get_engine("wasmtime"))
        container = make_container("shim-wasmtime")
        before = env.memory.node_working_set()
        shim.create_and_exec(env, container, build_bundle("c", build_wasm_image()))
        shim.kill_and_delete(env, container)
        assert env.memory.node_working_set() == before


class TestContainerd:
    def test_sandbox_lifecycle(self, env):
        containerd = Containerd(env)
        handle = containerd.run_pod_sandbox("podA")
        assert handle.pause is not None
        assert env.memory.cgroup_working_set(handle.cgroup) >= C.PAUSE_PRIVATE
        with pytest.raises(ContainerError, match="already exists"):
            containerd.run_pod_sandbox("podA")
        containerd.remove_pod_sandbox("podA")
        assert "podA" not in containerd.pods

    def test_create_container_activity(self, env):
        containerd = Containerd(env)
        containerd.run_pod_sandbox("podA")
        [container] = env.kernel.run_all(
            [
                containerd.create_container(
                    "podA", "crun-wamr", build_wasm_image().reference
                )
            ]
        )
        assert container.is_running
        assert container.exec_started_at is not None
        assert b"ready" in container.stdout

    def test_unknown_config_rejected(self, env):
        containerd = Containerd(env)
        containerd.run_pod_sandbox("podA")
        gen = containerd.create_container("podA", "bogus", build_wasm_image().reference)
        with pytest.raises(ContainerError, match="unknown runtime config"):
            env.kernel.run_all([gen])

    def test_container_without_sandbox_rejected(self, env):
        containerd = Containerd(env)
        gen = containerd.create_container("ghost", "crun-wamr", build_wasm_image().reference)
        with pytest.raises(ContainerError, match="no sandbox"):
            env.kernel.run_all([gen])

    def test_serialized_phase_counts_containers(self, env):
        containerd = Containerd(env)
        for i in range(3):
            containerd.run_pod_sandbox(f"pod{i}")
        gens = [
            containerd.create_container(f"pod{i}", "crun-wamr", build_wasm_image().reference)
            for i in range(3)
        ]
        env.kernel.run_all(gens)
        assert env.containers_created == 3

    def test_remove_pod_tears_down_containers(self, env):
        containerd = Containerd(env)
        containerd.run_pod_sandbox("podA")
        env.kernel.run_all(
            [containerd.create_container("podA", "shim-wasmtime", build_wasm_image().reference)]
        )
        baseline = sum(1 for _ in env.memory.processes())
        containerd.remove_pod_sandbox("podA")
        # pause + shim parent + shim child all gone.
        assert sum(1 for _ in env.memory.processes()) == baseline - 3
