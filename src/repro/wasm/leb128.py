"""LEB128 variable-length integer codec (unsigned and signed).

Follows the WebAssembly binary format rules: encodings are minimal-length
by construction when produced by :func:`encode_u` / :func:`encode_s`, and
the decoders enforce the spec's bound of ``ceil(bits/7)`` bytes and reject
non-zero unused bits in the final byte.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import MalformedModule


def encode_u(value: int) -> bytes:
    """Encode a non-negative integer as unsigned LEB128."""
    if value < 0:
        raise ValueError(f"unsigned LEB128 requires value >= 0, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_s(value: int) -> bytes:
    """Encode a signed integer as signed LEB128."""
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7  # arithmetic shift: Python ints keep the sign
        sign_bit = byte & 0x40
        if (value == 0 and not sign_bit) or (value == -1 and sign_bit):
            out.append(byte)
            return bytes(out)
        out.append(byte | 0x80)


def decode_u(data: bytes, pos: int, bits: int = 32) -> Tuple[int, int]:
    """Decode unsigned LEB128 at ``pos``; returns (value, new_pos).

    Raises:
        MalformedModule: on truncation, overlong encoding, or overflow.
    """
    result = 0
    shift = 0
    max_bytes = (bits + 6) // 7
    for i in range(max_bytes):
        if pos >= len(data):
            raise MalformedModule("unexpected end of LEB128")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not (byte & 0x80):
            # Unused bits in the final byte must be zero.
            used = bits - shift
            if used < 7 and (byte & 0x7F) >> used:
                raise MalformedModule(f"integer too large for u{bits}")
            return result, pos
        shift += 7
    raise MalformedModule(f"LEB128 longer than {max_bytes} bytes for u{bits}")


def decode_s(data: bytes, pos: int, bits: int = 32) -> Tuple[int, int]:
    """Decode signed LEB128 at ``pos``; returns (value, new_pos)."""
    result = 0
    shift = 0
    max_bytes = (bits + 6) // 7
    for i in range(max_bytes):
        if pos >= len(data):
            raise MalformedModule("unexpected end of LEB128")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        shift += 7
        if not (byte & 0x80):
            if byte & 0x40:
                # Sign-extend from the bits read so far; the range check
                # below rejects encodings whose padding bits are wrong.
                result |= -(1 << shift)
            # Check the value fits in `bits` as a signed integer.
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
            if not (lo <= result <= hi):
                raise MalformedModule(f"integer too large for s{bits}")
            return result, pos
    raise MalformedModule(f"LEB128 longer than {max_bytes} bytes for s{bits}")
