"""Numeric value semantics for the interpreter.

Integers are stored **unsigned** (``0 .. 2**N - 1``); helpers convert to the
signed view where an operation is sign-sensitive. Floats are Python floats;
f32 results are rounded through a 32-bit pack/unpack to get correct single
precision.
"""

from __future__ import annotations

import math
import struct

from repro.errors import WasmTrap

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF


def wrap32(x: int) -> int:
    return x & MASK32


def wrap64(x: int) -> int:
    return x & MASK64


def signed32(x: int) -> int:
    x &= MASK32
    return x - 0x1_0000_0000 if x >= 0x8000_0000 else x


def signed64(x: int) -> int:
    x &= MASK64
    return x - 0x1_0000_0000_0000_0000 if x >= 0x8000_0000_0000_0000 else x


def unsigned32(x: int) -> int:
    return x & MASK32


def unsigned64(x: int) -> int:
    return x & MASK64


def f32_round(x: float) -> float:
    """Round a Python float to the nearest representable f32."""
    return struct.unpack("<f", struct.pack("<f", x))[0]


# -- integer division / remainder (trap semantics) ---------------------------


def idiv_s(a: int, b: int, bits: int) -> int:
    sa = signed32(a) if bits == 32 else signed64(a)
    sb = signed32(b) if bits == 32 else signed64(b)
    if sb == 0:
        raise WasmTrap("integer divide by zero")
    # Wasm truncates toward zero; Python floors — use explicit truncation.
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    lo = -(1 << (bits - 1))
    if q == -lo:  # overflow: INT_MIN / -1
        raise WasmTrap("integer overflow")
    return q & (MASK32 if bits == 32 else MASK64)


def idiv_u(a: int, b: int, bits: int) -> int:
    if b == 0:
        raise WasmTrap("integer divide by zero")
    return a // b


def irem_s(a: int, b: int, bits: int) -> int:
    sa = signed32(a) if bits == 32 else signed64(a)
    sb = signed32(b) if bits == 32 else signed64(b)
    if sb == 0:
        raise WasmTrap("integer divide by zero")
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & (MASK32 if bits == 32 else MASK64)


def irem_u(a: int, b: int, bits: int) -> int:
    if b == 0:
        raise WasmTrap("integer divide by zero")
    return a % b


# -- bit operations -----------------------------------------------------------


def clz(x: int, bits: int) -> int:
    if x == 0:
        return bits
    return bits - x.bit_length()


def ctz(x: int, bits: int) -> int:
    if x == 0:
        return bits
    return (x & -x).bit_length() - 1


def popcnt(x: int) -> int:
    return bin(x).count("1")


def rotl(x: int, k: int, bits: int) -> int:
    k %= bits
    mask = MASK32 if bits == 32 else MASK64
    return ((x << k) | (x >> (bits - k))) & mask


def rotr(x: int, k: int, bits: int) -> int:
    k %= bits
    mask = MASK32 if bits == 32 else MASK64
    return ((x >> k) | (x << (bits - k))) & mask


def shl(x: int, k: int, bits: int) -> int:
    mask = MASK32 if bits == 32 else MASK64
    return (x << (k % bits)) & mask


def shr_u(x: int, k: int, bits: int) -> int:
    return x >> (k % bits)


def shr_s(x: int, k: int, bits: int) -> int:
    s = signed32(x) if bits == 32 else signed64(x)
    mask = MASK32 if bits == 32 else MASK64
    return (s >> (k % bits)) & mask


def sign_extend(x: int, from_bits: int, to_bits: int) -> int:
    """Sign-extend the low ``from_bits`` of x to ``to_bits``."""
    x &= (1 << from_bits) - 1
    if x & (1 << (from_bits - 1)):
        x -= 1 << from_bits
    return x & ((1 << to_bits) - 1)


# -- float → int truncation ----------------------------------------------------


def trunc_checked(x: float, bits: int, signed: bool) -> int:
    if math.isnan(x):
        raise WasmTrap("invalid conversion to integer")
    t = math.trunc(x) if math.isfinite(x) else x
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if not math.isfinite(x) or t < lo or t > hi:
        raise WasmTrap("integer overflow")
    return int(t) & ((1 << bits) - 1)


def trunc_sat(x: float, bits: int, signed: bool) -> int:
    if math.isnan(x):
        return 0
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if x == math.inf or (math.isfinite(x) and math.trunc(x) > hi):
        return hi & ((1 << bits) - 1)
    if x == -math.inf or (math.isfinite(x) and math.trunc(x) < lo):
        return lo & ((1 << bits) - 1)
    return int(math.trunc(x)) & ((1 << bits) - 1)


# -- float min/max/nearest (Wasm NaN/zero semantics) ---------------------------


def fmin(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return math.nan
    if a == b == 0.0:
        # min(-0, +0) = -0
        return a if math.copysign(1.0, a) < 0 else b
    return min(a, b)


def fmax(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return math.nan
    if a == b == 0.0:
        return a if math.copysign(1.0, a) > 0 else b
    return max(a, b)


def fnearest(x: float) -> float:
    """Round-to-nearest, ties to even (Wasm `nearest`)."""
    if not math.isfinite(x):
        return x
    floor_x = math.floor(x)
    diff = x - floor_x
    if diff < 0.5:
        result = floor_x
    elif diff > 0.5:
        result = floor_x + 1.0
    else:
        result = floor_x if math.fmod(floor_x, 2.0) == 0.0 else floor_x + 1.0
    # Preserve the sign of zero for inputs in (-0.5, -0.0].
    if result == 0.0 and math.copysign(1.0, x) < 0:
        return -0.0
    return result


# -- bit reinterpretation -------------------------------------------------------


def f32_to_bits(x: float) -> int:
    return struct.unpack("<I", struct.pack("<f", x))[0]


def bits_to_f32(b: int) -> float:
    return struct.unpack("<f", struct.pack("<I", b & MASK32))[0]


def f64_to_bits(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def bits_to_f64(b: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", b & MASK64))[0]


def default_value(valtype) -> object:
    """Zero value for locals and fresh globals."""
    from repro.wasm.types import ValType

    return 0.0 if valtype in (ValType.F32, ValType.F64) else 0
