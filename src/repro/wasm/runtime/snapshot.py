"""Zygote instance snapshots: instantiate once, clone cheaply.

The startup experiments deploy hundreds of containers of one image; with
decode/validate/prepare already memoized (``engines/cache.py``), the full
two-phase instantiation — allocate memories, evaluate global
initializers, copy data segments, run the start prologue — is the last
per-instance cost paid N times for identical state. This module is the
Wizer-style answer: :func:`capture_snapshot` freezes a just-initialized
:class:`~repro.wasm.runtime.store.ModuleInstance` into immutable data and
:func:`restore_instance` clones a fresh instance from it in O(state) —
no segment evaluation, no start run, no zero-fill-then-copy.

Snapshots are *host-world free* by construction: import addresses are
re-resolved per store, and a snapshot is only taken post-``start`` when
the start function made no host calls (otherwise the pre-``start`` state
is captured and the start section re-runs on every restore, preserving
its side effects). Table entries are stored as module-local function
indices so they can be rebound to the clone's fresh function addresses;
an entry pointing outside the instance makes the module unsnapshottable
(:func:`capture_snapshot` returns ``None``).

The process-wide snapshot-per-digest cache lives in
:mod:`repro.engines.cache` (the fourth layer); ``REPRO_ZYGOTE=off``
disables the whole mechanism (:func:`zygote_enabled`).
"""

from __future__ import annotations

import hashlib
import os
import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.wasm.ast import Module
from repro.wasm.runtime.instantiate import ImportMap, build_exports, resolve_imports
from repro.wasm.runtime.store import (
    FuncInstance,
    GlobalInstance,
    MemoryInstance,
    ModuleInstance,
    Store,
    TableInstance,
)
from repro.wasm.types import GlobalType, MemoryType, TableType

#: environment toggle for the whole zygote mechanism (default: on)
ZYGOTE_ENV = "REPRO_ZYGOTE"

#: page granularity for the dirty-memory diff (Linux small-page size)
COW_PAGE = 4096


def zygote_enabled() -> bool:
    """Is zygote warm-start on? Consulted per run, so tests and the
    benchmark can flip ``REPRO_ZYGOTE`` without re-importing anything."""
    return os.environ.get(ZYGOTE_ENV, "on").strip().lower() not in (
        "off",
        "0",
        "false",
        "no",
    )


def _imported_counts(module: Module) -> Dict[str, int]:
    counts = {"func": 0, "table": 0, "mem": 0, "global": 0}
    for imp in module.imports:
        counts[imp.kind] += 1
    return counts


@dataclass(frozen=True)
class InstanceSnapshot:
    """Immutable image of one instantiated module's mutable state.

    Only module-*defined* entities are captured; imported ones are
    host-world state resolved anew by :func:`restore_instance`. Table
    entries hold module-local function indices (position in
    ``instance.func_addrs``), not store addresses.
    """

    module: Module
    digest: Optional[str]
    memories: Tuple[Tuple[MemoryType, bytes], ...]
    tables: Tuple[Tuple[TableType, Tuple[Optional[int], ...]], ...]
    globals: Tuple[Tuple[GlobalType, object], ...]
    datas: Tuple[Optional[bytes], ...]
    #: True when the snapshot predates the start section (impure start:
    #: restore must re-run it to reproduce its host side effects).
    start_rerun: bool
    #: instructions the snapshotted start run retired (pure start only);
    #: credited to restored runs so metering matches a cold run exactly.
    start_instructions: int = 0
    #: sha256 over the captured state (see :func:`snapshot_checksum`);
    #: verified on restore — a mismatch means the cached snapshot was
    #: corrupted and the run must fall back to cold instantiation.
    checksum: str = ""

    @property
    def memory_bytes(self) -> int:
        return sum(len(data) for _, data in self.memories)


def snapshot_checksum(
    memories: Tuple[Tuple[MemoryType, bytes], ...],
    tables: Tuple[Tuple[TableType, Tuple[Optional[int], ...]], ...],
    globals_: Tuple[Tuple[GlobalType, object], ...],
    datas: Tuple[Optional[bytes], ...],
) -> str:
    """Content checksum of a snapshot's mutable state.

    Covers exactly the state :func:`restore_instance` copies into clones:
    memory bytes, table function indices, global values, and data-segment
    payloads. Types and the shared module are excluded — they are
    structural, not mutable, and the module object is compared by
    identity anyway.
    """
    h = hashlib.sha256()
    for _, data in memories:
        h.update(struct.pack("<Q", len(data)))
        h.update(data)
    for _, elems in tables:
        h.update(struct.pack("<Q", len(elems)))
        for e in elems:
            h.update(struct.pack("<q", -1 if e is None else e))
    for _, value in globals_:
        h.update(repr(value).encode())
        h.update(b"\x00")
    for payload in datas:
        if payload is None:
            h.update(b"\xff")
        else:
            h.update(struct.pack("<Q", len(payload)))
            h.update(payload)
    return h.hexdigest()


def verify_snapshot(snapshot: InstanceSnapshot) -> bool:
    """Recompute the checksum; False means the snapshot bytes diverged
    from what :func:`capture_snapshot` recorded (corruption)."""
    return snapshot.checksum == snapshot_checksum(
        snapshot.memories, snapshot.tables, snapshot.globals, snapshot.datas
    )


def capture_snapshot(
    store: Store,
    instance: ModuleInstance,
    digest: Optional[str] = None,
    start_rerun: bool = False,
    start_instructions: int = 0,
) -> Optional[InstanceSnapshot]:
    """Freeze ``instance``'s defined state; ``None`` if unsnapshottable.

    The only unsnapshottable case is a table entry referencing a function
    outside the instance's address list (can't be rebound in a clone).
    """
    module = instance.module
    n = _imported_counts(module)

    addr_to_local: Dict[int, int] = {}
    for local_idx, addr in enumerate(instance.func_addrs):
        addr_to_local.setdefault(addr, local_idx)

    tables = []
    for t_addr in instance.table_addrs[n["table"] :]:
        table = store.tables[t_addr]
        elems = []
        for addr in table.elements:
            if addr is None:
                elems.append(None)
            elif addr in addr_to_local:
                elems.append(addr_to_local[addr])
            else:
                return None
        tables.append((table.type, tuple(elems)))

    memories = tuple(
        (store.mems[a].type, bytes(store.mems[a].data))
        for a in instance.mem_addrs[n["mem"] :]
    )
    globals_ = tuple(
        (store.globals[a].type, store.globals[a].value)
        for a in instance.global_addrs[n["global"] :]
    )
    datas = tuple(store.datas[a] for a in instance.data_addrs)

    frozen_tables = tuple(tables)
    return InstanceSnapshot(
        module=module,
        digest=digest,
        memories=memories,
        tables=frozen_tables,
        globals=globals_,
        datas=datas,
        start_rerun=start_rerun,
        start_instructions=start_instructions,
        checksum=snapshot_checksum(memories, frozen_tables, globals_, datas),
    )


def restore_instance(
    store: Store, snapshot: InstanceSnapshot, imports: Optional[ImportMap] = None
) -> ModuleInstance:
    """Clone a fresh :class:`ModuleInstance` from ``snapshot`` into ``store``.

    Skips decode, validation, import type-checking beyond link resolution,
    global-initializer evaluation, element/data segment copying, and (for
    pure-start snapshots) the start function itself. The prepared flat
    code hangs off the shared :class:`Module`, so clones execute the same
    lowered bytecode.
    """
    module = snapshot.module
    instance = ModuleInstance(module=module)
    resolve_imports(store, module, imports or {}, instance)

    for func in module.funcs:
        instance.func_addrs.append(
            store.alloc_func(
                FuncInstance(
                    type=module.types[func.type_idx],
                    module=instance,
                    code=func,
                    name=func.name or "",
                )
            )
        )
    for table_type, elems in snapshot.tables:
        table = TableInstance(table_type)
        table.elements = [
            None if e is None else instance.func_addrs[e] for e in elems
        ]
        instance.table_addrs.append(store.alloc_table(table))
    for mem_type, data in snapshot.memories:
        instance.mem_addrs.append(
            store.alloc_mem(MemoryInstance.from_snapshot(mem_type, data))
        )
    for global_type, value in snapshot.globals:
        instance.global_addrs.append(
            store.alloc_global(GlobalInstance(global_type, value))
        )
    for payload in snapshot.datas:
        instance.data_addrs.append(store.alloc_data(payload))

    build_exports(module, instance, store)
    return instance


def dirty_memory_bytes(
    snapshot: InstanceSnapshot,
    store: Store,
    instance: ModuleInstance,
    page: int = COW_PAGE,
) -> int:
    """Bytes of ``instance``'s linear memory diverging from ``snapshot``,
    at page granularity — the COW split a clone of this run would cost.

    Pages past the snapshot extent (memory.grow during the run) are fully
    dirty; within the common extent, a page counts once if any byte
    differs.
    """
    n_mem = _imported_counts(instance.module)["mem"]
    dirty = 0
    for (_, snap_data), addr in zip(
        snapshot.memories, instance.mem_addrs[n_mem:]
    ):
        data = store.mems[addr].data
        snap_view = memoryview(snap_data)
        live_view = memoryview(data)
        common = min(len(snap_data), len(data))
        for off in range(0, common, page):
            end = min(off + page, common)
            if live_view[off:end] != snap_view[off:end]:
                dirty += end - off
        if len(data) > len(snap_data):
            dirty += len(data) - len(snap_data)
    return dirty
