"""Execution engine: store, instances, interpreter, instantiation."""

from repro.wasm.runtime.store import (
    FuncInstance,
    GlobalInstance,
    MemoryInstance,
    ModuleInstance,
    Store,
    TableInstance,
)
from repro.wasm.runtime.interpreter import Interpreter
from repro.wasm.runtime.instantiate import instantiate

__all__ = [
    "Store",
    "ModuleInstance",
    "FuncInstance",
    "TableInstance",
    "MemoryInstance",
    "GlobalInstance",
    "Interpreter",
    "instantiate",
]
