"""Execution engine: store, instances, interpreter, instantiation.

Two interpreters share one store model: the production
:class:`Interpreter` runs flat pre-compiled code (see ``compile.py``),
while :class:`ReferenceInterpreter` walks the AST and serves as the
executable specification for differential testing. A third, optional
tier (``specialize.py``, ``REPRO_SPECIALIZE``) rewrites prepared code
per module digest — constant folding, bounds-check elision, inline
caches, and closure compilation — with guarded deopt back to the
prepared baseline.
"""

from repro.wasm.runtime.store import (
    FuncInstance,
    GlobalInstance,
    MemoryInstance,
    ModuleInstance,
    Store,
    TableInstance,
)
from repro.wasm.runtime.compile import (
    PreparedFunction,
    PreparedModule,
    prepare_function,
    prepare_module,
)
from repro.wasm.runtime.interpreter import Interpreter
from repro.wasm.runtime.reference import ReferenceInterpreter
from repro.wasm.runtime.specialize import (
    SpecializedFunction,
    SpecializedModule,
    specialize_mode,
    specialize_module,
)
from repro.wasm.runtime.instantiate import instantiate
from repro.wasm.runtime.snapshot import (
    InstanceSnapshot,
    capture_snapshot,
    dirty_memory_bytes,
    restore_instance,
    verify_snapshot,
    zygote_enabled,
)

__all__ = [
    "InstanceSnapshot",
    "capture_snapshot",
    "dirty_memory_bytes",
    "restore_instance",
    "verify_snapshot",
    "zygote_enabled",
    "Store",
    "ModuleInstance",
    "FuncInstance",
    "TableInstance",
    "MemoryInstance",
    "GlobalInstance",
    "Interpreter",
    "ReferenceInterpreter",
    "PreparedFunction",
    "PreparedModule",
    "prepare_function",
    "prepare_module",
    "SpecializedFunction",
    "SpecializedModule",
    "specialize_mode",
    "specialize_module",
    "instantiate",
]
