"""Reference tree-walking interpreter (retained for differential testing).

This is the original structured interpreter: execution state is a value
stack (Python list) per function activation; control flow inside a
function uses two internal exceptions (`_Branch`, `_Return`) that unwind
to the matching structured block. Calls recurse on the Python stack with
an explicit depth limit; an optional fuel budget bounds total executed
instructions.

The production :class:`~repro.wasm.runtime.interpreter.Interpreter` runs
pre-compiled flat code instead (see ``compile.py``); this walker is the
executable specification it is differentially tested against — results,
traps, fuel accounting, and memory contents must agree instruction for
instruction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ExhaustionError, WasmTrap
from repro.wasm.ast import Expr, Instr
from repro.wasm.runtime import values as V
from repro.wasm.runtime.ops import BINOPS, CMPOPS, LOADS, STORES, UNOPS
from repro.wasm.runtime.store import FuncInstance, ModuleInstance, Store


class _Branch(Exception):
    __slots__ = ("depth",)

    def __init__(self, depth: int) -> None:
        self.depth = depth


class _Return(Exception):
    pass


class _Frame:
    __slots__ = ("locals", "instance")

    def __init__(self, locals_: List[object], instance: ModuleInstance) -> None:
        self.locals = locals_
        self.instance = instance


class ReferenceInterpreter:
    """Executes functions from a :class:`Store` by walking the AST."""

    def __init__(
        self,
        store: Store,
        fuel: Optional[int] = None,
        max_call_depth: int = 400,
    ) -> None:
        import sys

        # Each guest frame costs ~24 Python frames here (call dispatch plus
        # one `_exec_block` frame per structured nesting level); make sure
        # the guest limit is reached first so exhaustion surfaces as a wasm
        # trap, not a RecursionError.
        needed = 5000 + max_call_depth * 24
        if sys.getrecursionlimit() < needed:
            sys.setrecursionlimit(needed)
        self.store = store
        self.fuel = fuel
        self.max_call_depth = max_call_depth
        self._depth = 0
        self.instructions_executed = 0

    # -- public ----------------------------------------------------------------

    def invoke(self, func_addr: int, args: Sequence[object] = ()) -> List[object]:
        """Call a function by store address with Python-level arguments."""
        fi = self.store.funcs[func_addr]
        if len(args) != len(fi.type.params):
            raise WasmTrap(
                f"bad argument count for {fi.name or func_addr}: "
                f"expected {len(fi.type.params)}, got {len(args)}"
            )
        if fi.is_host:
            result = fi.host_fn(*args)  # type: ignore[misc]
            return list(result) if result is not None else []
        return self._call_wasm(fi, list(args))

    def invoke_export(self, instance: ModuleInstance, name: str, args: Sequence[object] = ()):
        return self.invoke(instance.export_addr(name, "func"), args)

    # -- function activation ---------------------------------------------------

    def _call_wasm(self, fi: FuncInstance, args: List[object]) -> List[object]:
        assert fi.code is not None and fi.module is not None
        if self._depth >= self.max_call_depth:
            raise ExhaustionError("call stack exhausted")
        locals_ = args + [V.default_value(t) for t in fi.code.locals]
        frame = _Frame(locals_, fi.module)
        stack: List[object] = []
        self._depth += 1
        try:
            try:
                self._exec(fi.code.body, frame, stack)
            except _Return:
                pass
            except _Branch:
                # A branch out of the function body targets the implicit
                # function block: same as returning.
                pass
        finally:
            self._depth -= 1
        n = len(fi.type.results)
        if n == 0:
            return []
        results = stack[-n:]
        return results

    # -- instruction sequence --------------------------------------------------

    def _exec(self, body: Expr, frame: _Frame, stack: List[object]) -> None:
        fuel = self.fuel
        for ins in body:
            if fuel is not None:
                self.fuel -= 1  # type: ignore[operator]
                fuel = self.fuel
                if fuel < 0:
                    raise ExhaustionError("fuel exhausted")
            self.instructions_executed += 1
            op = ins.op

            # Hot paths first.
            if op == "local.get":
                stack.append(frame.locals[ins.args[0]])
            elif op == "i32.const" or op == "i64.const":
                # Consts are stored signed; runtime works unsigned.
                bits = 32 if op[1] == "3" else 64
                stack.append(ins.args[0] & ((1 << bits) - 1))
            elif op in BINOPS:
                b = stack.pop()
                a = stack.pop()
                stack.append(BINOPS[op](a, b))
            elif op in CMPOPS:
                b = stack.pop()
                a = stack.pop()
                stack.append(1 if CMPOPS[op](a, b) else 0)
            elif op in UNOPS:
                stack.append(UNOPS[op](stack.pop()))
            elif op == "local.set":
                frame.locals[ins.args[0]] = stack.pop()
            elif op == "local.tee":
                frame.locals[ins.args[0]] = stack[-1]
            elif op == "f32.const" or op == "f64.const":
                stack.append(ins.args[0])
            elif op == "block":
                self._exec_block(ins.body, frame, stack, loop=False)
            elif op == "loop":
                self._exec_block(ins.body, frame, stack, loop=True)
            elif op == "if":
                cond = stack.pop()
                chosen = ins.body if cond else ins.else_body
                self._exec_block(chosen, frame, stack, loop=False)
            elif op == "br":
                raise _Branch(ins.args[0])
            elif op == "br_if":
                if stack.pop():
                    raise _Branch(ins.args[0])
            elif op == "br_table":
                labels, default = ins.args
                idx = stack.pop()
                raise _Branch(labels[idx] if idx < len(labels) else default)
            elif op == "return":
                raise _Return()
            elif op == "call":
                self._do_call(frame.instance.func_addrs[ins.args[0]], stack)
            elif op == "call_indirect":
                self._do_call_indirect(ins, frame, stack)
            elif op == "drop":
                stack.pop()
            elif op == "select":
                c = stack.pop()
                v2 = stack.pop()
                v1 = stack.pop()
                stack.append(v1 if c else v2)
            elif op == "global.get":
                stack.append(self.store.globals[frame.instance.global_addrs[ins.args[0]]].value)
            elif op == "global.set":
                self.store.globals[frame.instance.global_addrs[ins.args[0]]].set(stack.pop())
            elif op in LOADS:
                self._do_load(ins, frame, stack)
            elif op in STORES:
                self._do_store(ins, frame, stack)
            elif op == "memory.size":
                stack.append(self._mem(frame).pages)
            elif op == "memory.grow":
                delta = stack.pop()
                stack.append(self._mem(frame).grow(delta) & V.MASK32)
            elif op == "memory.fill":
                n = stack.pop()
                val = stack.pop()
                dst = stack.pop()
                mem = self._mem(frame)
                if dst + n > len(mem.data):
                    raise WasmTrap("out of bounds memory access")
                mem.data[dst : dst + n] = bytes([val & 0xFF]) * n
            elif op == "memory.copy":
                n = stack.pop()
                src = stack.pop()
                dst = stack.pop()
                mem = self._mem(frame)
                if src + n > len(mem.data) or dst + n > len(mem.data):
                    raise WasmTrap("out of bounds memory access")
                mem.data[dst : dst + n] = mem.data[src : src + n]
            elif op == "memory.init":
                n = stack.pop()
                src = stack.pop()
                dst = stack.pop()
                payload = self.store.datas[frame.instance.data_addrs[ins.args[0]]]
                if payload is None:
                    if n or src:
                        raise WasmTrap("out of bounds memory access")
                    payload = b""
                mem = self._mem(frame)
                if src + n > len(payload) or dst + n > len(mem.data):
                    raise WasmTrap("out of bounds memory access")
                mem.data[dst : dst + n] = payload[src : src + n]
            elif op == "data.drop":
                self.store.datas[frame.instance.data_addrs[ins.args[0]]] = None
            elif op == "nop":
                pass
            elif op == "unreachable":
                raise WasmTrap("unreachable executed")
            else:  # pragma: no cover - validator rejects unknown ops
                raise WasmTrap(f"unknown instruction {op!r}")

    # -- helpers ---------------------------------------------------------------

    def _exec_block(self, body: Expr, frame: _Frame, stack: List[object], loop: bool) -> None:
        while True:
            try:
                self._exec(body, frame, stack)
                return
            except _Branch as br:
                if br.depth > 0:
                    br.depth -= 1
                    raise
                if not loop:
                    return
                # Branch to a loop label: iterate again.
                continue

    def _mem(self, frame: _Frame):
        return self.store.mems[frame.instance.mem_addrs[0]]

    def _do_call(self, func_addr: int, stack: List[object]) -> None:
        fi = self.store.funcs[func_addr]
        n = len(fi.type.params)
        args = stack[len(stack) - n :] if n else []
        del stack[len(stack) - n :]
        if fi.is_host:
            result = fi.host_fn(*args)  # type: ignore[misc]
            stack.extend(result if result is not None else [])
        else:
            stack.extend(self._call_wasm(fi, args))

    def _do_call_indirect(self, ins: Instr, frame: _Frame, stack: List[object]) -> None:
        table = self.store.tables[frame.instance.table_addrs[0]]
        elem_idx = stack.pop()
        func_addr = table.get(elem_idx)
        expected = frame.instance.module.types[ins.args[0]]
        actual = self.store.funcs[func_addr].type
        if actual != expected:
            raise WasmTrap(
                f"indirect call type mismatch: expected {expected}, got {actual}"
            )
        self._do_call(func_addr, stack)

    def _do_load(self, ins: Instr, frame: _Frame, stack: List[object]) -> None:
        width, signed, kind, bits = LOADS[ins.op]
        base = stack.pop()
        addr = base + ins.args[1]
        raw = self._mem(frame).read(addr, width)
        if kind == "i":
            value = int.from_bytes(raw, "little", signed=False)
            if signed:
                value = V.sign_extend(value, width * 8, bits)
            stack.append(value)
        else:
            stack.append(V.bits_to_f32(int.from_bytes(raw, "little")) if bits == 32
                         else V.bits_to_f64(int.from_bytes(raw, "little")))

    def _do_store(self, ins: Instr, frame: _Frame, stack: List[object]) -> None:
        width, kind = STORES[ins.op]
        value = stack.pop()
        base = stack.pop()
        addr = base + ins.args[1]
        if kind == "i":
            raw = (value & ((1 << (width * 8)) - 1)).to_bytes(width, "little")
        elif kind == "f32":
            raw = V.f32_to_bits(value).to_bytes(4, "little")
        else:
            raw = V.f64_to_bits(value).to_bytes(8, "little")
        self._mem(frame).write(addr, raw)
