"""Numeric operator tables shared by the prepared interpreter and the
reference tree-walker.

Integers arrive unsigned; results are returned unsigned. Each table maps
an opcode string to a plain callable so prepare-time lowering can bind
the callable directly into flat code (no per-step table lookup).
"""

from __future__ import annotations

import math

from repro.wasm.runtime import values as V

BINOPS = {
    "i32.add": lambda a, b: V.wrap32(a + b),
    "i32.sub": lambda a, b: V.wrap32(a - b),
    "i32.mul": lambda a, b: V.wrap32(a * b),
    "i32.div_s": lambda a, b: V.idiv_s(a, b, 32),
    "i32.div_u": lambda a, b: V.idiv_u(a, b, 32),
    "i32.rem_s": lambda a, b: V.irem_s(a, b, 32),
    "i32.rem_u": lambda a, b: V.irem_u(a, b, 32),
    "i32.and": lambda a, b: a & b,
    "i32.or": lambda a, b: a | b,
    "i32.xor": lambda a, b: a ^ b,
    "i32.shl": lambda a, b: V.shl(a, b, 32),
    "i32.shr_s": lambda a, b: V.shr_s(a, b, 32),
    "i32.shr_u": lambda a, b: V.shr_u(a, b, 32),
    "i32.rotl": lambda a, b: V.rotl(a, b, 32),
    "i32.rotr": lambda a, b: V.rotr(a, b, 32),
    "i64.add": lambda a, b: V.wrap64(a + b),
    "i64.sub": lambda a, b: V.wrap64(a - b),
    "i64.mul": lambda a, b: V.wrap64(a * b),
    "i64.div_s": lambda a, b: V.idiv_s(a, b, 64),
    "i64.div_u": lambda a, b: V.idiv_u(a, b, 64),
    "i64.rem_s": lambda a, b: V.irem_s(a, b, 64),
    "i64.rem_u": lambda a, b: V.irem_u(a, b, 64),
    "i64.and": lambda a, b: a & b,
    "i64.or": lambda a, b: a | b,
    "i64.xor": lambda a, b: a ^ b,
    "i64.shl": lambda a, b: V.shl(a, b, 64),
    "i64.shr_s": lambda a, b: V.shr_s(a, b, 64),
    "i64.shr_u": lambda a, b: V.shr_u(a, b, 64),
    "i64.rotl": lambda a, b: V.rotl(a, b, 64),
    "i64.rotr": lambda a, b: V.rotr(a, b, 64),
    "f32.add": lambda a, b: V.f32_round(a + b),
    "f32.sub": lambda a, b: V.f32_round(a - b),
    "f32.mul": lambda a, b: V.f32_round(a * b),
    "f32.div": lambda a, b: V.f32_round(fdiv(a, b)),
    "f32.min": lambda a, b: V.f32_round(V.fmin(a, b)),
    "f32.max": lambda a, b: V.f32_round(V.fmax(a, b)),
    "f32.copysign": lambda a, b: math.copysign(a, b) if a == a else _nan_sign(a, b),
    "f64.add": lambda a, b: a + b,
    "f64.sub": lambda a, b: a - b,
    "f64.mul": lambda a, b: a * b,
    "f64.div": lambda a, b: fdiv(a, b),
    "f64.min": V.fmin,
    "f64.max": V.fmax,
    "f64.copysign": lambda a, b: math.copysign(a, b) if a == a else _nan_sign(a, b),
}


def fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        return math.copysign(math.inf, a) * math.copysign(1.0, b)
    try:
        return a / b
    except OverflowError:  # pragma: no cover - huge finite operands
        return math.copysign(math.inf, a) * math.copysign(1.0, b)


def _nan_sign(a: float, b: float) -> float:
    return math.copysign(math.nan, b)


CMPOPS = {
    "i32.eq": lambda a, b: a == b,
    "i32.ne": lambda a, b: a != b,
    "i32.lt_s": lambda a, b: V.signed32(a) < V.signed32(b),
    "i32.lt_u": lambda a, b: a < b,
    "i32.gt_s": lambda a, b: V.signed32(a) > V.signed32(b),
    "i32.gt_u": lambda a, b: a > b,
    "i32.le_s": lambda a, b: V.signed32(a) <= V.signed32(b),
    "i32.le_u": lambda a, b: a <= b,
    "i32.ge_s": lambda a, b: V.signed32(a) >= V.signed32(b),
    "i32.ge_u": lambda a, b: a >= b,
    "i64.eq": lambda a, b: a == b,
    "i64.ne": lambda a, b: a != b,
    "i64.lt_s": lambda a, b: V.signed64(a) < V.signed64(b),
    "i64.lt_u": lambda a, b: a < b,
    "i64.gt_s": lambda a, b: V.signed64(a) > V.signed64(b),
    "i64.gt_u": lambda a, b: a > b,
    "i64.le_s": lambda a, b: V.signed64(a) <= V.signed64(b),
    "i64.le_u": lambda a, b: a <= b,
    "i64.ge_s": lambda a, b: V.signed64(a) >= V.signed64(b),
    "i64.ge_u": lambda a, b: a >= b,
    "f32.eq": lambda a, b: a == b,
    "f32.ne": lambda a, b: a != b,
    "f32.lt": lambda a, b: a < b,
    "f32.gt": lambda a, b: a > b,
    "f32.le": lambda a, b: a <= b,
    "f32.ge": lambda a, b: a >= b,
    "f64.eq": lambda a, b: a == b,
    "f64.ne": lambda a, b: a != b,
    "f64.lt": lambda a, b: a < b,
    "f64.gt": lambda a, b: a > b,
    "f64.le": lambda a, b: a <= b,
    "f64.ge": lambda a, b: a >= b,
}

UNOPS = {
    "i32.clz": lambda a: V.clz(a, 32),
    "i32.ctz": lambda a: V.ctz(a, 32),
    "i32.popcnt": V.popcnt,
    "i32.eqz": lambda a: 1 if a == 0 else 0,
    "i64.clz": lambda a: V.clz(a, 64),
    "i64.ctz": lambda a: V.ctz(a, 64),
    "i64.popcnt": V.popcnt,
    "i64.eqz": lambda a: 1 if a == 0 else 0,
    "f32.abs": lambda a: V.f32_round(abs(a)),
    "f32.neg": lambda a: V.f32_round(-a),
    "f32.ceil": lambda a: V.f32_round(fceil(a)),
    "f32.floor": lambda a: V.f32_round(ffloor(a)),
    "f32.trunc": lambda a: V.f32_round(ftrunc(a)),
    "f32.nearest": lambda a: V.f32_round(V.fnearest(a)),
    "f32.sqrt": lambda a: V.f32_round(fsqrt(a)),
    "f64.abs": abs,
    "f64.neg": lambda a: -a,
    "f64.ceil": lambda a: fceil(a),
    "f64.floor": lambda a: ffloor(a),
    "f64.trunc": lambda a: ftrunc(a),
    "f64.nearest": V.fnearest,
    "f64.sqrt": lambda a: fsqrt(a),
    # Conversions
    "i32.wrap_i64": V.wrap32,
    "i32.trunc_f32_s": lambda a: V.trunc_checked(a, 32, True),
    "i32.trunc_f32_u": lambda a: V.trunc_checked(a, 32, False),
    "i32.trunc_f64_s": lambda a: V.trunc_checked(a, 32, True),
    "i32.trunc_f64_u": lambda a: V.trunc_checked(a, 32, False),
    "i32.trunc_sat_f32_s": lambda a: V.trunc_sat(a, 32, True),
    "i32.trunc_sat_f32_u": lambda a: V.trunc_sat(a, 32, False),
    "i32.trunc_sat_f64_s": lambda a: V.trunc_sat(a, 32, True),
    "i32.trunc_sat_f64_u": lambda a: V.trunc_sat(a, 32, False),
    "i64.extend_i32_s": lambda a: V.sign_extend(a, 32, 64),
    "i64.extend_i32_u": lambda a: a & V.MASK32,
    "i64.trunc_f32_s": lambda a: V.trunc_checked(a, 64, True),
    "i64.trunc_f32_u": lambda a: V.trunc_checked(a, 64, False),
    "i64.trunc_f64_s": lambda a: V.trunc_checked(a, 64, True),
    "i64.trunc_f64_u": lambda a: V.trunc_checked(a, 64, False),
    "i64.trunc_sat_f32_s": lambda a: V.trunc_sat(a, 64, True),
    "i64.trunc_sat_f32_u": lambda a: V.trunc_sat(a, 64, False),
    "i64.trunc_sat_f64_s": lambda a: V.trunc_sat(a, 64, True),
    "i64.trunc_sat_f64_u": lambda a: V.trunc_sat(a, 64, False),
    "f32.convert_i32_s": lambda a: V.f32_round(float(V.signed32(a))),
    "f32.convert_i32_u": lambda a: V.f32_round(float(a & V.MASK32)),
    "f32.convert_i64_s": lambda a: V.f32_round(float(V.signed64(a))),
    "f32.convert_i64_u": lambda a: V.f32_round(float(a & V.MASK64)),
    "f32.demote_f64": V.f32_round,
    "f64.convert_i32_s": lambda a: float(V.signed32(a)),
    "f64.convert_i32_u": lambda a: float(a & V.MASK32),
    "f64.convert_i64_s": lambda a: float(V.signed64(a)),
    "f64.convert_i64_u": lambda a: float(a & V.MASK64),
    "f64.promote_f32": lambda a: a,
    "i32.reinterpret_f32": V.f32_to_bits,
    "i64.reinterpret_f64": V.f64_to_bits,
    "f32.reinterpret_i32": V.bits_to_f32,
    "f64.reinterpret_i64": V.bits_to_f64,
    "i32.extend8_s": lambda a: V.sign_extend(a, 8, 32),
    "i32.extend16_s": lambda a: V.sign_extend(a, 16, 32),
    "i64.extend8_s": lambda a: V.sign_extend(a, 8, 64),
    "i64.extend16_s": lambda a: V.sign_extend(a, 16, 64),
    "i64.extend32_s": lambda a: V.sign_extend(a, 32, 64),
}


def fceil(a: float) -> float:
    return float(math.ceil(a)) if math.isfinite(a) else a


def ffloor(a: float) -> float:
    return float(math.floor(a)) if math.isfinite(a) else a


def ftrunc(a: float) -> float:
    return float(math.trunc(a)) if math.isfinite(a) else a


def fsqrt(a: float) -> float:
    if a != a:
        return math.nan
    if a < 0:
        return math.nan
    return math.sqrt(a)


# Loads: op -> (width_bytes, signed, valtype kind, result bits)
LOADS = {
    "i32.load": (4, False, "i", 32),
    "i64.load": (8, False, "i", 64),
    "f32.load": (4, False, "f", 32),
    "f64.load": (8, False, "f", 64),
    "i32.load8_s": (1, True, "i", 32),
    "i32.load8_u": (1, False, "i", 32),
    "i32.load16_s": (2, True, "i", 32),
    "i32.load16_u": (2, False, "i", 32),
    "i64.load8_s": (1, True, "i", 64),
    "i64.load8_u": (1, False, "i", 64),
    "i64.load16_s": (2, True, "i", 64),
    "i64.load16_u": (2, False, "i", 64),
    "i64.load32_s": (4, True, "i", 64),
    "i64.load32_u": (4, False, "i", 64),
}

# Stores: op -> (width_bytes, value kind)
STORES = {
    "i32.store": (4, "i"),
    "i64.store": (8, "i"),
    "f32.store": (4, "f32"),
    "f64.store": (8, "f64"),
    "i32.store8": (1, "i"),
    "i32.store16": (2, "i"),
    "i64.store8": (1, "i"),
    "i64.store16": (2, "i"),
    "i64.store32": (4, "i"),
}
