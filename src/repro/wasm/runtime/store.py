"""Runtime store and instance structures.

A :class:`Store` owns every runtime object (functions, tables, memories,
globals); instances refer to them by *address* (index into the store's
lists), mirroring the spec's store/instance split. Host functions live in
the same function address space as wasm functions, so ``call`` and
``call_indirect`` need no special casing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import WasmTrap
from repro.wasm.ast import Function, Module
from repro.wasm.types import (
    FuncType,
    GlobalType,
    MemoryType,
    TableType,
    ValType,
    MAX_PAGES,
    PAGE_SIZE,
)


@dataclass
class FuncInstance:
    """Either a wasm function (code + defining instance) or a host function."""

    type: FuncType
    module: Optional["ModuleInstance"] = None
    code: Optional[Function] = None
    host_fn: Optional[Callable[..., List[object]]] = None
    name: str = ""

    @property
    def is_host(self) -> bool:
        return self.host_fn is not None


@dataclass
class TableInstance:
    type: TableType
    elements: List[Optional[int]] = field(default_factory=list)  # func addresses

    def __post_init__(self) -> None:
        if not self.elements:
            self.elements = [None] * self.type.limits.minimum

    def get(self, idx: int) -> int:
        if idx >= len(self.elements) or idx < 0:
            raise WasmTrap("undefined element")
        addr = self.elements[idx]
        if addr is None:
            raise WasmTrap("uninitialized element")
        return addr


class MemoryInstance:
    """Linear memory backed by a bytearray."""

    __slots__ = ("type", "data")

    def __init__(self, mem_type: MemoryType) -> None:
        self.type = mem_type
        self.data = bytearray(mem_type.limits.minimum * PAGE_SIZE)

    @classmethod
    def from_snapshot(cls, mem_type: MemoryType, data: bytes) -> "MemoryInstance":
        """Clone a memory from captured bytes without zero-fill + copy-in.

        The zygote restore path: the snapshot already contains the fully
        initialized (possibly grown) contents, so the spec's minimum-size
        zero allocation would be wasted work.
        """
        mem = cls.__new__(cls)
        mem.type = mem_type
        mem.data = bytearray(data)
        return mem

    @property
    def pages(self) -> int:
        return len(self.data) // PAGE_SIZE

    def grow(self, delta: int) -> int:
        """Grow by ``delta`` pages; returns old page count or -1 on failure."""
        old = self.pages
        new = old + delta
        maximum = self.type.limits.maximum
        if new > MAX_PAGES or (maximum is not None and new > maximum):
            return -1
        self.data.extend(bytes(delta * PAGE_SIZE))
        return old

    # -- raw access with trap-on-OOB -------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        if addr < 0 or addr + size > len(self.data):
            raise WasmTrap("out of bounds memory access")
        return bytes(self.data[addr : addr + size])

    def write(self, addr: int, payload: bytes) -> None:
        if addr < 0 or addr + len(payload) > len(self.data):
            raise WasmTrap("out of bounds memory access")
        self.data[addr : addr + len(payload)] = payload

    def read_u32(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 4), "little")

    def write_u32(self, addr: int, value: int) -> None:
        self.write(addr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def read_u64(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))

    def read_cstring(self, addr: int, max_len: int = 1 << 20) -> bytes:
        end = self.data.find(b"\x00", addr, addr + max_len)
        if end < 0:
            raise WasmTrap("unterminated string in guest memory")
        return bytes(self.data[addr:end])


@dataclass
class GlobalInstance:
    type: GlobalType
    value: object = 0

    def set(self, value: object) -> None:
        if not self.type.mutable:
            raise WasmTrap("set of immutable global")
        self.value = value


@dataclass
class ModuleInstance:
    """Instantiated module: address maps into the store + export table."""

    module: Module
    func_addrs: List[int] = field(default_factory=list)
    table_addrs: List[int] = field(default_factory=list)
    mem_addrs: List[int] = field(default_factory=list)
    global_addrs: List[int] = field(default_factory=list)
    data_addrs: List[int] = field(default_factory=list)  # bulk-memory segments
    exports: Dict[str, Tuple[str, int]] = field(default_factory=dict)  # name -> (kind, addr)
    # Cached default memory (mem_addrs[0]); resolved by instantiate() or on
    # first call. Safe to cache: MemoryInstance.grow mutates in place.
    mem0: Optional[MemoryInstance] = field(default=None, repr=False, compare=False)

    def export_addr(self, name: str, kind: str) -> int:
        entry = self.exports.get(name)
        if entry is None or entry[0] != kind:
            raise KeyError(f"no {kind} export named {name!r}")
        return entry[1]


class Store:
    """Owner of all runtime objects, addressed by index."""

    def __init__(self) -> None:
        self.funcs: List[FuncInstance] = []
        self.tables: List[TableInstance] = []
        self.mems: List[MemoryInstance] = []
        self.globals: List[GlobalInstance] = []
        # Data segment instances: payload bytes, or None once dropped.
        self.datas: List[Optional[bytes]] = []

    def alloc_func(self, inst: FuncInstance) -> int:
        self.funcs.append(inst)
        return len(self.funcs) - 1

    def alloc_table(self, inst: TableInstance) -> int:
        self.tables.append(inst)
        return len(self.tables) - 1

    def alloc_mem(self, inst: MemoryInstance) -> int:
        self.mems.append(inst)
        return len(self.mems) - 1

    def alloc_global(self, inst: GlobalInstance) -> int:
        self.globals.append(inst)
        return len(self.globals) - 1

    def alloc_data(self, payload: Optional[bytes]) -> int:
        self.datas.append(payload)
        return len(self.datas) - 1

    def alloc_host_func(
        self, func_type: FuncType, fn: Callable[..., List[object]], name: str = ""
    ) -> int:
        return self.alloc_func(FuncInstance(type=func_type, host_fn=fn, name=name))

    def total_memory_bytes(self) -> int:
        """Resident linear memory across all instances (resource models)."""
        return sum(len(m.data) for m in self.mems)
