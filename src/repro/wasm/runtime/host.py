"""Helpers for registering host functions (the import side of WASI)."""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.wasm.runtime.instantiate import Extern
from repro.wasm.runtime.store import Store
from repro.wasm.types import FuncType, ValType

_ABBREV = {"i": ValType.I32, "I": ValType.I64, "f": ValType.F32, "F": ValType.F64}


def sig(params: str, results: str = "") -> FuncType:
    """Shorthand signature builder: ``sig("iiii", "i")`` = 4×i32 → i32."""
    return FuncType(
        tuple(_ABBREV[c] for c in params),
        tuple(_ABBREV[c] for c in results),
    )


class HostModule:
    """A named bag of host functions, exposable as an import map entry."""

    def __init__(self, store: Store, name: str) -> None:
        self.store = store
        self.name = name
        self._items: Dict[str, Extern] = {}

    def func(self, item_name: str, func_type: FuncType, fn: Callable[..., Sequence[object]]) -> None:
        addr = self.store.alloc_host_func(func_type, fn, name=f"{self.name}.{item_name}")
        self._items[item_name] = ("func", addr)

    def externs(self) -> Dict[str, Extern]:
        return dict(self._items)

    def import_map(self) -> Dict[str, Dict[str, Extern]]:
        return {self.name: self.externs()}
