"""Two-phase module instantiation (allocate, then initialize).

Follows the spec: resolve imports against a name→extern map, allocate
instances in the store, evaluate global initializers, copy element and
data segments (with bounds traps), then run the start function.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple, Union

from repro.errors import LinkError, WasmTrap
from repro.wasm.ast import Expr, Module
from repro.wasm.runtime.interpreter import Interpreter
from repro.wasm.runtime.store import (
    FuncInstance,
    GlobalInstance,
    MemoryInstance,
    ModuleInstance,
    Store,
    TableInstance,
)
from repro.wasm.types import GlobalType, MemoryType, TableType

# An importable item: ("func"|"table"|"mem"|"global", store address)
Extern = Tuple[str, int]
ImportMap = Mapping[str, Mapping[str, Extern]]


def _eval_const(expr: Expr, instance: ModuleInstance, store: Store) -> object:
    ins = expr[0]
    if ins.op in ("i32.const", "i64.const"):
        bits = 32 if ins.op.startswith("i32") else 64
        return ins.args[0] & ((1 << bits) - 1)
    if ins.op in ("f32.const", "f64.const"):
        return ins.args[0]
    if ins.op == "global.get":
        return store.globals[instance.global_addrs[ins.args[0]]].value
    raise LinkError(f"unsupported constant instruction {ins.op}")


def resolve_imports(
    store: Store, module: Module, imports: ImportMap, instance: ModuleInstance
) -> None:
    """Resolve ``module``'s imports into ``instance``'s address lists.

    Shared by :func:`instantiate` and the zygote restore path
    (:mod:`repro.wasm.runtime.snapshot`): import addresses are host-world
    state and must be re-resolved per store, never snapshotted.

    Raises:
        LinkError: unresolved or mismatched imports.
    """
    for imp in module.imports:
        try:
            kind, addr = imports[imp.module][imp.name]
        except KeyError:
            raise LinkError(f"unresolved import {imp.module}.{imp.name}") from None
        if kind != imp.kind:
            raise LinkError(
                f"import {imp.module}.{imp.name}: expected {imp.kind}, got {kind}"
            )
        if imp.kind == "func":
            expected = module.types[imp.desc]  # type: ignore[index]
            actual = store.funcs[addr].type
            if actual != expected:
                raise LinkError(
                    f"import {imp.module}.{imp.name}: signature mismatch "
                    f"{actual} != {expected}"
                )
            instance.func_addrs.append(addr)
        elif imp.kind == "table":
            declared: TableType = imp.desc  # type: ignore[assignment]
            if not declared.limits.contains(store.tables[addr].type.limits):
                raise LinkError(f"import {imp.module}.{imp.name}: table limits mismatch")
            instance.table_addrs.append(addr)
        elif imp.kind == "mem":
            declared_mem: MemoryType = imp.desc  # type: ignore[assignment]
            actual_limits = store.mems[addr].type.limits
            if not declared_mem.limits.contains(actual_limits):
                raise LinkError(f"import {imp.module}.{imp.name}: memory limits mismatch")
            instance.mem_addrs.append(addr)
        elif imp.kind == "global":
            declared_g: GlobalType = imp.desc  # type: ignore[assignment]
            actual_g = store.globals[addr].type
            if declared_g != actual_g:
                raise LinkError(f"import {imp.module}.{imp.name}: global type mismatch")
            instance.global_addrs.append(addr)


def build_exports(module: Module, instance: ModuleInstance, store: Store) -> None:
    """Fill the export table and cache the default memory."""
    addr_spaces = {
        "func": instance.func_addrs,
        "table": instance.table_addrs,
        "mem": instance.mem_addrs,
        "global": instance.global_addrs,
    }
    for ex in module.exports:
        addr = addr_spaces[ex.kind][ex.index]
        instance.exports[ex.name] = (ex.kind, addr)
        if ex.kind == "func" and not store.funcs[addr].name:
            # Modules without a name section still get readable profiler
            # frames and trap messages for their exported entry points.
            store.funcs[addr].name = ex.name
    if instance.mem_addrs:
        instance.mem0 = store.mems[instance.mem_addrs[0]]


def instantiate(
    store: Store,
    module: Module,
    imports: Optional[ImportMap] = None,
    run_start: bool = True,
    interpreter: Optional[Interpreter] = None,
) -> ModuleInstance:
    """Instantiate ``module`` in ``store`` resolving ``imports``.

    Args:
        imports: two-level map ``{module_name: {item_name: (kind, addr)}}``.
        run_start: execute the start function (disable to defer).
        interpreter: used for the start function; a fresh one is created
            if omitted.

    Raises:
        LinkError: unresolved or mismatched imports.
        WasmTrap: active segment out of bounds, or start function trap.
    """
    instance = ModuleInstance(module=module)
    resolve_imports(store, module, imports or {}, instance)

    # -- allocate definitions ------------------------------------------------
    for func in module.funcs:
        addr = store.alloc_func(
            FuncInstance(
                type=module.types[func.type_idx],
                module=instance,
                code=func,
                name=func.name or "",
            )
        )
        instance.func_addrs.append(addr)
    for table_type in module.tables:
        instance.table_addrs.append(store.alloc_table(TableInstance(table_type)))
    for mem_type in module.mems:
        instance.mem_addrs.append(store.alloc_mem(MemoryInstance(mem_type)))
    for g in module.globals:
        value = _eval_const(g.init, instance, store)
        instance.global_addrs.append(store.alloc_global(GlobalInstance(g.type, value)))

    # -- element segments ----------------------------------------------------------
    for seg in module.elems:
        offset = int(_eval_const(seg.offset, instance, store))  # type: ignore[arg-type]
        table = store.tables[instance.table_addrs[seg.table_idx]]
        if offset + len(seg.func_indices) > len(table.elements):
            raise WasmTrap("element segment out of bounds")
        for i, func_idx in enumerate(seg.func_indices):
            table.elements[offset + i] = instance.func_addrs[func_idx]

    # -- data segments ----------------------------------------------------------------
    for seg in module.datas:
        if seg.passive:
            # Passive: payload sits in the store for memory.init.
            instance.data_addrs.append(store.alloc_data(seg.data))
            continue
        offset = int(_eval_const(seg.offset, instance, store))  # type: ignore[arg-type]
        mem = store.mems[instance.mem_addrs[seg.mem_idx]]
        if offset + len(seg.data) > len(mem.data):
            raise WasmTrap("data segment out of bounds")
        mem.data[offset : offset + len(seg.data)] = seg.data
        # Active segments are dropped after initialization (spec).
        instance.data_addrs.append(store.alloc_data(None))

    # Exports + cached default memory, before any guest code (start) runs.
    build_exports(module, instance, store)

    # -- start function ------------------------------------------------------------------
    if run_start and module.start is not None:
        interp = interpreter or Interpreter(store)
        interp.invoke(instance.func_addrs[module.start])

    return instance
