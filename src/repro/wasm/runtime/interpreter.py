"""Flat-code Wasm interpreter: a pc loop over prepared linear code.

Function bodies are lowered once by :mod:`repro.wasm.runtime.compile`
into tuples of ``(handler, args, weight)`` triples with branch targets
resolved to pc values; execution is then a tight loop of

    handler, args, weight = code[pc]
    pc = handler(self, frame, stack, args, pc)

with no per-step opcode comparison and no exception-driven control flow.
The public API is byte-compatible with the original tree-walker (kept as
:class:`~repro.wasm.runtime.reference.ReferenceInterpreter`): ``invoke``
/ ``invoke_export`` signatures, fuel semantics (debited per source
instruction *before* it executes; ``ExhaustionError("fuel exhausted")``
with the exhausting instruction not counted), ``instructions_executed``
(counts source AST instructions, not flat entries — fused
superinstructions carry the summed weight of their parts), and all trap
messages.

Fuel bookkeeping is hoisted out of the common path: when ``fuel`` is
``None`` the loop accumulates the count in a local and flushes it once
per activation (a ``try/finally`` keeps the count exact across traps),
so the unmetered configuration pays no per-instruction conditional.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Sequence

from repro.errors import ExhaustionError, WasmTrap
from repro.wasm.runtime.compile import prepare_function
from repro.wasm.runtime.specialize import METERED_DEOPT
from repro.wasm.runtime.store import FuncInstance, ModuleInstance, Store


class Frame:
    """Activation record: locals, owning instance, and its default memory.

    The memory is resolved once per call (and cached on the instance):
    ``MemoryInstance.grow`` extends the bytearray in place, so a cached
    reference stays valid across ``memory.grow``.
    """

    __slots__ = ("locals", "instance", "mem")

    def __init__(self, locals_: List[object], instance: ModuleInstance, mem) -> None:
        self.locals = locals_
        self.instance = instance
        self.mem = mem


class Interpreter:
    """Executes functions from a :class:`Store` by running prepared flat code."""

    def __init__(
        self,
        store: Store,
        fuel: Optional[int] = None,
        max_call_depth: int = 400,
    ) -> None:
        # A guest call costs 3 Python frames in the flat scheme (the call
        # handler -> _call_wasm -> _run); budget 6 per guest frame for
        # headroom (host functions, instantiation nesting) plus a 1000
        # frame base for the embedder. The limit is raised, never lowered
        # or restored: it is process-global and other live interpreters
        # may depend on it.
        needed = 1000 + max_call_depth * 6
        if sys.getrecursionlimit() < needed:
            sys.setrecursionlimit(needed)
        self.store = store
        self.fuel = fuel
        self.max_call_depth = max_call_depth
        self._depth = 0
        self.instructions_executed = 0
        #: attached FunctionProfiler (obs.profile) or None; the None
        #: check is the whole disabled-path cost
        self.profiler = None

    # -- public ----------------------------------------------------------------

    def invoke(self, func_addr: int, args: Sequence[object] = ()) -> List[object]:
        """Call a function by store address with Python-level arguments."""
        fi = self.store.funcs[func_addr]
        if len(args) != len(fi.type.params):
            raise WasmTrap(
                f"bad argument count for {fi.name or func_addr}: "
                f"expected {len(fi.type.params)}, got {len(args)}"
            )
        if fi.is_host:
            result = fi.host_fn(*args)  # type: ignore[misc]
            return list(result) if result is not None else []
        return self._call_wasm(fi, list(args))

    def invoke_export(self, instance: ModuleInstance, name: str, args: Sequence[object] = ()):
        return self.invoke(instance.export_addr(name, "func"), args)

    # -- function activation ---------------------------------------------------

    def _call_wasm(self, fi: FuncInstance, args: List[object]) -> List[object]:
        if self._depth >= self.max_call_depth:
            raise ExhaustionError("call stack exhausted")
        code_obj = fi.code
        prepared = code_obj.prepared
        if prepared is None:
            # Lazy prepare for instances outside the engine cache; the
            # result is keyed to the Function object so it happens once.
            prepared = prepare_function(fi.module.module, code_obj)
            code_obj.prepared = prepared
        if prepared.local_defaults:
            args.extend(prepared.local_defaults)  # `args` is a fresh list
        inst = fi.module
        mem = inst.mem0
        if mem is None and inst.mem_addrs:
            mem = inst.mem0 = self.store.mems[inst.mem_addrs[0]]
        prof = self.profiler
        compiled = prepared.compiled
        if compiled is not None:
            if self.fuel is None:
                # Specialization tier: the exec'd closure flushes its own
                # retired-instruction count and raises the same traps as
                # the flat code; results come back as the final list.
                self._depth += 1
                if prof is None:
                    try:
                        return compiled(self, Frame(args, inst, mem))
                    finally:
                        self._depth -= 1
                # Inner activations flush their counts in their own
                # finally first, so the delta seen here is inclusive.
                prof.enter(fi.name or "<anonymous>")
                base = self.instructions_executed
                try:
                    return compiled(self, Frame(args, inst, mem))
                finally:
                    self._depth -= 1
                    prof.exit(self.instructions_executed - base)
            # Metered activations need the per-entry fuel debit protocol;
            # deopt to the specialized flat bytecode below.
            METERED_DEOPT.inc()
        frame = Frame(args, inst, mem)
        stack: List[object] = []
        self._depth += 1
        if prof is None:
            try:
                self._run(prepared.code, frame, stack)
            finally:
                self._depth -= 1
        else:
            prof.enter(fi.name or "<anonymous>")
            base = self.instructions_executed
            try:
                self._run(prepared.code, frame, stack)
            finally:
                self._depth -= 1
                prof.exit(self.instructions_executed - base)
        n = prepared.n_results
        if n == 0:
            return []
        if len(stack) != n:
            # A branch to the function label leaves garbage below its
            # carried values; the epilogue discards it (spec return).
            return stack[-n:]
        return stack

    # -- dispatch loop ---------------------------------------------------------

    def _run(self, code, frame: Frame, stack: List[object]) -> None:
        pc = 0
        if self.fuel is None:
            # Unmetered: count in a local, flush once. The finally keeps
            # `instructions_executed` exact when a handler traps (the
            # trapping instruction is charged, as in the reference), and
            # the deltas commute across the nested activations.
            n_exec = 0
            try:
                while pc >= 0:
                    handler, args, weight = code[pc]
                    n_exec += weight
                    pc = handler(self, frame, stack, args, pc)
            finally:
                self.instructions_executed += n_exec
        else:
            while pc >= 0:
                handler, args, weight = code[pc]
                left = self.fuel - weight
                if left < 0:
                    # Partial credit for a fused pair straddling the
                    # limit: the reference charges each component before
                    # executing it, so `fuel` whole instructions complete
                    # and the one that exhausts is not counted. Fusion
                    # candidates are side-effect-free before their last
                    # component, so stopping the whole entry is exact.
                    self.instructions_executed += self.fuel
                    self.fuel = -1
                    raise ExhaustionError("fuel exhausted")
                self.fuel = left
                self.instructions_executed += weight
                pc = handler(self, frame, stack, args, pc)
