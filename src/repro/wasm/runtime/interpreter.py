"""Structured tree-walking interpreter for the module AST.

Execution state is a value stack (Python list) per function activation;
control flow inside a function uses two internal exceptions (`_Branch`,
`_Return`) that unwind to the matching structured block. Calls recurse on
the Python stack with an explicit depth limit; an optional fuel budget
bounds total executed instructions (used by engine models to meter work).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.errors import ExhaustionError, WasmTrap
from repro.wasm.ast import Expr, Instr
from repro.wasm.runtime import values as V
from repro.wasm.runtime.store import FuncInstance, ModuleInstance, Store
from repro.wasm.types import FuncType, ValType


class _Branch(Exception):
    __slots__ = ("depth",)

    def __init__(self, depth: int) -> None:
        self.depth = depth


class _Return(Exception):
    pass


class _Frame:
    __slots__ = ("locals", "instance")

    def __init__(self, locals_: List[object], instance: ModuleInstance) -> None:
        self.locals = locals_
        self.instance = instance


# -- numeric operator tables ---------------------------------------------------
# Integers arrive unsigned; results are returned unsigned.

_BINOPS = {
    "i32.add": lambda a, b: V.wrap32(a + b),
    "i32.sub": lambda a, b: V.wrap32(a - b),
    "i32.mul": lambda a, b: V.wrap32(a * b),
    "i32.div_s": lambda a, b: V.idiv_s(a, b, 32),
    "i32.div_u": lambda a, b: V.idiv_u(a, b, 32),
    "i32.rem_s": lambda a, b: V.irem_s(a, b, 32),
    "i32.rem_u": lambda a, b: V.irem_u(a, b, 32),
    "i32.and": lambda a, b: a & b,
    "i32.or": lambda a, b: a | b,
    "i32.xor": lambda a, b: a ^ b,
    "i32.shl": lambda a, b: V.shl(a, b, 32),
    "i32.shr_s": lambda a, b: V.shr_s(a, b, 32),
    "i32.shr_u": lambda a, b: V.shr_u(a, b, 32),
    "i32.rotl": lambda a, b: V.rotl(a, b, 32),
    "i32.rotr": lambda a, b: V.rotr(a, b, 32),
    "i64.add": lambda a, b: V.wrap64(a + b),
    "i64.sub": lambda a, b: V.wrap64(a - b),
    "i64.mul": lambda a, b: V.wrap64(a * b),
    "i64.div_s": lambda a, b: V.idiv_s(a, b, 64),
    "i64.div_u": lambda a, b: V.idiv_u(a, b, 64),
    "i64.rem_s": lambda a, b: V.irem_s(a, b, 64),
    "i64.rem_u": lambda a, b: V.irem_u(a, b, 64),
    "i64.and": lambda a, b: a & b,
    "i64.or": lambda a, b: a | b,
    "i64.xor": lambda a, b: a ^ b,
    "i64.shl": lambda a, b: V.shl(a, b, 64),
    "i64.shr_s": lambda a, b: V.shr_s(a, b, 64),
    "i64.shr_u": lambda a, b: V.shr_u(a, b, 64),
    "i64.rotl": lambda a, b: V.rotl(a, b, 64),
    "i64.rotr": lambda a, b: V.rotr(a, b, 64),
    "f32.add": lambda a, b: V.f32_round(a + b),
    "f32.sub": lambda a, b: V.f32_round(a - b),
    "f32.mul": lambda a, b: V.f32_round(a * b),
    "f32.div": lambda a, b: V.f32_round(_fdiv(a, b)),
    "f32.min": lambda a, b: V.f32_round(V.fmin(a, b)),
    "f32.max": lambda a, b: V.f32_round(V.fmax(a, b)),
    "f32.copysign": lambda a, b: math.copysign(a, b) if a == a else _nan_sign(a, b),
    "f64.add": lambda a, b: a + b,
    "f64.sub": lambda a, b: a - b,
    "f64.mul": lambda a, b: a * b,
    "f64.div": lambda a, b: _fdiv(a, b),
    "f64.min": V.fmin,
    "f64.max": V.fmax,
    "f64.copysign": lambda a, b: math.copysign(a, b) if a == a else _nan_sign(a, b),
}


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        return math.copysign(math.inf, a) * math.copysign(1.0, b)
    try:
        return a / b
    except OverflowError:  # pragma: no cover - huge finite operands
        return math.copysign(math.inf, a) * math.copysign(1.0, b)


def _nan_sign(a: float, b: float) -> float:
    return math.copysign(math.nan, b)


_CMPOPS = {
    "i32.eq": lambda a, b: a == b,
    "i32.ne": lambda a, b: a != b,
    "i32.lt_s": lambda a, b: V.signed32(a) < V.signed32(b),
    "i32.lt_u": lambda a, b: a < b,
    "i32.gt_s": lambda a, b: V.signed32(a) > V.signed32(b),
    "i32.gt_u": lambda a, b: a > b,
    "i32.le_s": lambda a, b: V.signed32(a) <= V.signed32(b),
    "i32.le_u": lambda a, b: a <= b,
    "i32.ge_s": lambda a, b: V.signed32(a) >= V.signed32(b),
    "i32.ge_u": lambda a, b: a >= b,
    "i64.eq": lambda a, b: a == b,
    "i64.ne": lambda a, b: a != b,
    "i64.lt_s": lambda a, b: V.signed64(a) < V.signed64(b),
    "i64.lt_u": lambda a, b: a < b,
    "i64.gt_s": lambda a, b: V.signed64(a) > V.signed64(b),
    "i64.gt_u": lambda a, b: a > b,
    "i64.le_s": lambda a, b: V.signed64(a) <= V.signed64(b),
    "i64.le_u": lambda a, b: a <= b,
    "i64.ge_s": lambda a, b: V.signed64(a) >= V.signed64(b),
    "i64.ge_u": lambda a, b: a >= b,
    "f32.eq": lambda a, b: a == b,
    "f32.ne": lambda a, b: a != b,
    "f32.lt": lambda a, b: a < b,
    "f32.gt": lambda a, b: a > b,
    "f32.le": lambda a, b: a <= b,
    "f32.ge": lambda a, b: a >= b,
    "f64.eq": lambda a, b: a == b,
    "f64.ne": lambda a, b: a != b,
    "f64.lt": lambda a, b: a < b,
    "f64.gt": lambda a, b: a > b,
    "f64.le": lambda a, b: a <= b,
    "f64.ge": lambda a, b: a >= b,
}

_UNOPS = {
    "i32.clz": lambda a: V.clz(a, 32),
    "i32.ctz": lambda a: V.ctz(a, 32),
    "i32.popcnt": V.popcnt,
    "i32.eqz": lambda a: 1 if a == 0 else 0,
    "i64.clz": lambda a: V.clz(a, 64),
    "i64.ctz": lambda a: V.ctz(a, 64),
    "i64.popcnt": V.popcnt,
    "i64.eqz": lambda a: 1 if a == 0 else 0,
    "f32.abs": lambda a: V.f32_round(abs(a)),
    "f32.neg": lambda a: V.f32_round(-a),
    "f32.ceil": lambda a: V.f32_round(_fceil(a)),
    "f32.floor": lambda a: V.f32_round(_ffloor(a)),
    "f32.trunc": lambda a: V.f32_round(_ftrunc(a)),
    "f32.nearest": lambda a: V.f32_round(V.fnearest(a)),
    "f32.sqrt": lambda a: V.f32_round(_fsqrt(a)),
    "f64.abs": abs,
    "f64.neg": lambda a: -a,
    "f64.ceil": lambda a: _fceil(a),
    "f64.floor": lambda a: _ffloor(a),
    "f64.trunc": lambda a: _ftrunc(a),
    "f64.nearest": V.fnearest,
    "f64.sqrt": lambda a: _fsqrt(a),
    # Conversions
    "i32.wrap_i64": V.wrap32,
    "i32.trunc_f32_s": lambda a: V.trunc_checked(a, 32, True),
    "i32.trunc_f32_u": lambda a: V.trunc_checked(a, 32, False),
    "i32.trunc_f64_s": lambda a: V.trunc_checked(a, 32, True),
    "i32.trunc_f64_u": lambda a: V.trunc_checked(a, 32, False),
    "i32.trunc_sat_f32_s": lambda a: V.trunc_sat(a, 32, True),
    "i32.trunc_sat_f32_u": lambda a: V.trunc_sat(a, 32, False),
    "i32.trunc_sat_f64_s": lambda a: V.trunc_sat(a, 32, True),
    "i32.trunc_sat_f64_u": lambda a: V.trunc_sat(a, 32, False),
    "i64.extend_i32_s": lambda a: V.sign_extend(a, 32, 64),
    "i64.extend_i32_u": lambda a: a & V.MASK32,
    "i64.trunc_f32_s": lambda a: V.trunc_checked(a, 64, True),
    "i64.trunc_f32_u": lambda a: V.trunc_checked(a, 64, False),
    "i64.trunc_f64_s": lambda a: V.trunc_checked(a, 64, True),
    "i64.trunc_f64_u": lambda a: V.trunc_checked(a, 64, False),
    "i64.trunc_sat_f32_s": lambda a: V.trunc_sat(a, 64, True),
    "i64.trunc_sat_f32_u": lambda a: V.trunc_sat(a, 64, False),
    "i64.trunc_sat_f64_s": lambda a: V.trunc_sat(a, 64, True),
    "i64.trunc_sat_f64_u": lambda a: V.trunc_sat(a, 64, False),
    "f32.convert_i32_s": lambda a: V.f32_round(float(V.signed32(a))),
    "f32.convert_i32_u": lambda a: V.f32_round(float(a & V.MASK32)),
    "f32.convert_i64_s": lambda a: V.f32_round(float(V.signed64(a))),
    "f32.convert_i64_u": lambda a: V.f32_round(float(a & V.MASK64)),
    "f32.demote_f64": V.f32_round,
    "f64.convert_i32_s": lambda a: float(V.signed32(a)),
    "f64.convert_i32_u": lambda a: float(a & V.MASK32),
    "f64.convert_i64_s": lambda a: float(V.signed64(a)),
    "f64.convert_i64_u": lambda a: float(a & V.MASK64),
    "f64.promote_f32": lambda a: a,
    "i32.reinterpret_f32": V.f32_to_bits,
    "i64.reinterpret_f64": V.f64_to_bits,
    "f32.reinterpret_i32": V.bits_to_f32,
    "f64.reinterpret_i64": V.bits_to_f64,
    "i32.extend8_s": lambda a: V.sign_extend(a, 8, 32),
    "i32.extend16_s": lambda a: V.sign_extend(a, 16, 32),
    "i64.extend8_s": lambda a: V.sign_extend(a, 8, 64),
    "i64.extend16_s": lambda a: V.sign_extend(a, 16, 64),
    "i64.extend32_s": lambda a: V.sign_extend(a, 32, 64),
}


def _fceil(a: float) -> float:
    return float(math.ceil(a)) if math.isfinite(a) else a


def _ffloor(a: float) -> float:
    return float(math.floor(a)) if math.isfinite(a) else a


def _ftrunc(a: float) -> float:
    return float(math.trunc(a)) if math.isfinite(a) else a


def _fsqrt(a: float) -> float:
    if a != a:
        return math.nan
    if a < 0:
        return math.nan
    return math.sqrt(a)


# Loads: op -> (width_bytes, signed, valtype kind)
_LOADS = {
    "i32.load": (4, False, "i", 32),
    "i64.load": (8, False, "i", 64),
    "f32.load": (4, False, "f", 32),
    "f64.load": (8, False, "f", 64),
    "i32.load8_s": (1, True, "i", 32),
    "i32.load8_u": (1, False, "i", 32),
    "i32.load16_s": (2, True, "i", 32),
    "i32.load16_u": (2, False, "i", 32),
    "i64.load8_s": (1, True, "i", 64),
    "i64.load8_u": (1, False, "i", 64),
    "i64.load16_s": (2, True, "i", 64),
    "i64.load16_u": (2, False, "i", 64),
    "i64.load32_s": (4, True, "i", 64),
    "i64.load32_u": (4, False, "i", 64),
}

_STORES = {
    "i32.store": (4, "i"),
    "i64.store": (8, "i"),
    "f32.store": (4, "f32"),
    "f64.store": (8, "f64"),
    "i32.store8": (1, "i"),
    "i32.store16": (2, "i"),
    "i64.store8": (1, "i"),
    "i64.store16": (2, "i"),
    "i64.store32": (4, "i"),
}


class Interpreter:
    """Executes functions from a :class:`Store`."""

    def __init__(
        self,
        store: Store,
        fuel: Optional[int] = None,
        max_call_depth: int = 400,
    ) -> None:
        import sys

        # Each guest frame costs a handful of Python frames (call dispatch,
        # block nesting); make sure the guest limit is reached first so
        # exhaustion surfaces as a wasm trap, not a RecursionError.
        needed = 5000 + max_call_depth * 24
        if sys.getrecursionlimit() < needed:
            sys.setrecursionlimit(needed)
        self.store = store
        self.fuel = fuel
        self.max_call_depth = max_call_depth
        self._depth = 0
        self.instructions_executed = 0

    # -- public ----------------------------------------------------------------

    def invoke(self, func_addr: int, args: Sequence[object] = ()) -> List[object]:
        """Call a function by store address with Python-level arguments."""
        fi = self.store.funcs[func_addr]
        if len(args) != len(fi.type.params):
            raise WasmTrap(
                f"bad argument count for {fi.name or func_addr}: "
                f"expected {len(fi.type.params)}, got {len(args)}"
            )
        if fi.is_host:
            result = fi.host_fn(*args)  # type: ignore[misc]
            return list(result) if result is not None else []
        return self._call_wasm(fi, list(args))

    def invoke_export(self, instance: ModuleInstance, name: str, args: Sequence[object] = ()):
        return self.invoke(instance.export_addr(name, "func"), args)

    # -- function activation ---------------------------------------------------------

    def _call_wasm(self, fi: FuncInstance, args: List[object]) -> List[object]:
        assert fi.code is not None and fi.module is not None
        if self._depth >= self.max_call_depth:
            raise ExhaustionError("call stack exhausted")
        locals_ = args + [V.default_value(t) for t in fi.code.locals]
        frame = _Frame(locals_, fi.module)
        stack: List[object] = []
        self._depth += 1
        try:
            try:
                self._exec(fi.code.body, frame, stack)
            except _Return:
                pass
            except _Branch:
                # A branch out of the function body targets the implicit
                # function block: same as returning.
                pass
        finally:
            self._depth -= 1
        n = len(fi.type.results)
        if n == 0:
            return []
        results = stack[-n:]
        return results

    # -- instruction sequence ------------------------------------------------------------

    def _exec(self, body: Expr, frame: _Frame, stack: List[object]) -> None:
        fuel = self.fuel
        for ins in body:
            if fuel is not None:
                self.fuel -= 1  # type: ignore[operator]
                fuel = self.fuel
                if fuel < 0:
                    raise ExhaustionError("fuel exhausted")
            self.instructions_executed += 1
            op = ins.op

            # Hot paths first.
            if op == "local.get":
                stack.append(frame.locals[ins.args[0]])
            elif op == "i32.const" or op == "i64.const":
                # Consts are stored signed; runtime works unsigned.
                bits = 32 if op[1] == "3" else 64
                stack.append(ins.args[0] & ((1 << bits) - 1))
            elif op in _BINOPS:
                b = stack.pop()
                a = stack.pop()
                stack.append(_BINOPS[op](a, b))
            elif op in _CMPOPS:
                b = stack.pop()
                a = stack.pop()
                stack.append(1 if _CMPOPS[op](a, b) else 0)
            elif op in _UNOPS:
                stack.append(_UNOPS[op](stack.pop()))
            elif op == "local.set":
                frame.locals[ins.args[0]] = stack.pop()
            elif op == "local.tee":
                frame.locals[ins.args[0]] = stack[-1]
            elif op == "f32.const" or op == "f64.const":
                stack.append(ins.args[0])
            elif op == "block":
                self._exec_block(ins.body, frame, stack, loop=False)
            elif op == "loop":
                self._exec_block(ins.body, frame, stack, loop=True)
            elif op == "if":
                cond = stack.pop()
                chosen = ins.body if cond else ins.else_body
                self._exec_block(chosen, frame, stack, loop=False)
            elif op == "br":
                raise _Branch(ins.args[0])
            elif op == "br_if":
                if stack.pop():
                    raise _Branch(ins.args[0])
            elif op == "br_table":
                labels, default = ins.args
                idx = stack.pop()
                raise _Branch(labels[idx] if idx < len(labels) else default)
            elif op == "return":
                raise _Return()
            elif op == "call":
                self._do_call(frame.instance.func_addrs[ins.args[0]], stack)
            elif op == "call_indirect":
                self._do_call_indirect(ins, frame, stack)
            elif op == "drop":
                stack.pop()
            elif op == "select":
                c = stack.pop()
                v2 = stack.pop()
                v1 = stack.pop()
                stack.append(v1 if c else v2)
            elif op == "global.get":
                stack.append(self.store.globals[frame.instance.global_addrs[ins.args[0]]].value)
            elif op == "global.set":
                self.store.globals[frame.instance.global_addrs[ins.args[0]]].set(stack.pop())
            elif op in _LOADS:
                self._do_load(ins, frame, stack)
            elif op in _STORES:
                self._do_store(ins, frame, stack)
            elif op == "memory.size":
                stack.append(self._mem(frame).pages)
            elif op == "memory.grow":
                delta = stack.pop()
                stack.append(self._mem(frame).grow(delta) & V.MASK32)
            elif op == "memory.fill":
                n = stack.pop()
                val = stack.pop()
                dst = stack.pop()
                mem = self._mem(frame)
                if dst + n > len(mem.data):
                    raise WasmTrap("out of bounds memory access")
                mem.data[dst : dst + n] = bytes([val & 0xFF]) * n
            elif op == "memory.copy":
                n = stack.pop()
                src = stack.pop()
                dst = stack.pop()
                mem = self._mem(frame)
                if src + n > len(mem.data) or dst + n > len(mem.data):
                    raise WasmTrap("out of bounds memory access")
                mem.data[dst : dst + n] = mem.data[src : src + n]
            elif op == "memory.init":
                n = stack.pop()
                src = stack.pop()
                dst = stack.pop()
                payload = self.store.datas[frame.instance.data_addrs[ins.args[0]]]
                if payload is None:
                    if n or src:
                        raise WasmTrap("out of bounds memory access")
                    payload = b""
                mem = self._mem(frame)
                if src + n > len(payload) or dst + n > len(mem.data):
                    raise WasmTrap("out of bounds memory access")
                mem.data[dst : dst + n] = payload[src : src + n]
            elif op == "data.drop":
                self.store.datas[frame.instance.data_addrs[ins.args[0]]] = None
            elif op == "nop":
                pass
            elif op == "unreachable":
                raise WasmTrap("unreachable executed")
            else:  # pragma: no cover - validator rejects unknown ops
                raise WasmTrap(f"unknown instruction {op!r}")

    # -- helpers ----------------------------------------------------------------------

    def _exec_block(self, body: Expr, frame: _Frame, stack: List[object], loop: bool) -> None:
        while True:
            try:
                self._exec(body, frame, stack)
                return
            except _Branch as br:
                if br.depth > 0:
                    br.depth -= 1
                    raise
                if not loop:
                    return
                # Branch to a loop label: iterate again.
                continue

    def _mem(self, frame: _Frame):
        return self.store.mems[frame.instance.mem_addrs[0]]

    def _do_call(self, func_addr: int, stack: List[object]) -> None:
        fi = self.store.funcs[func_addr]
        n = len(fi.type.params)
        args = stack[len(stack) - n :] if n else []
        del stack[len(stack) - n :]
        if fi.is_host:
            result = fi.host_fn(*args)  # type: ignore[misc]
            stack.extend(result if result is not None else [])
        else:
            stack.extend(self._call_wasm(fi, args))

    def _do_call_indirect(self, ins: Instr, frame: _Frame, stack: List[object]) -> None:
        table = self.store.tables[frame.instance.table_addrs[0]]
        elem_idx = stack.pop()
        func_addr = table.get(elem_idx)
        expected = frame.instance.module.types[ins.args[0]]
        actual = self.store.funcs[func_addr].type
        if actual != expected:
            raise WasmTrap(
                f"indirect call type mismatch: expected {expected}, got {actual}"
            )
        self._do_call(func_addr, stack)

    def _do_load(self, ins: Instr, frame: _Frame, stack: List[object]) -> None:
        width, signed, kind, bits = _LOADS[ins.op]
        base = stack.pop()
        addr = base + ins.args[1]
        raw = self._mem(frame).read(addr, width)
        if kind == "i":
            value = int.from_bytes(raw, "little", signed=False)
            if signed:
                value = V.sign_extend(value, width * 8, bits)
            stack.append(value)
        else:
            stack.append(V.bits_to_f32(int.from_bytes(raw, "little")) if bits == 32
                         else V.bits_to_f64(int.from_bytes(raw, "little")))

    def _do_store(self, ins: Instr, frame: _Frame, stack: List[object]) -> None:
        width, kind = _STORES[ins.op]
        value = stack.pop()
        base = stack.pop()
        addr = base + ins.args[1]
        if kind == "i":
            raw = (value & ((1 << (width * 8)) - 1)).to_bytes(width, "little")
        elif kind == "f32":
            raw = V.f32_to_bits(value).to_bytes(4, "little")
        else:
            raw = V.f64_to_bits(value).to_bytes(8, "little")
        self._mem(frame).write(addr, raw)
