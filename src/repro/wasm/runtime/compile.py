"""Function preparation: lower validated ASTs to flat linear code.

The tree-walking reference interpreter re-dispatches on opcode strings and
implements ``br``/``return`` by raising Python exceptions that unwind
through nested block frames. This module removes all of that from the hot
path with a one-time *prepare* pass per function:

* ``block``/``loop``/``if`` disappear into computed jump offsets — every
  branch becomes a pc assignment with a precomputed stack-height repair
  (no exceptions, no label search);
* every instruction is pre-bound to a ``(handler, args, weight)`` triple,
  so per-step dispatch is one tuple unpack and one call instead of a
  40-arm string-comparison ladder;
* dominant instruction pairs are fused into superinstructions
  (``local.get local.get <binop>``, ``<const> <binop>``, ``<cmp> br_if``,
  ``local.get <load>``), cutting dispatches on the workloads' inner loops
  by ~30%.

``weight`` is the number of source AST instructions a flat entry stands
for. The interpreter adds weights to ``instructions_executed`` and debits
fuel by them, which keeps fuel accounting and metering *exactly* equal to
the reference tree-walker: ``block``/``loop`` headers still cost one
instruction on entry (they lower to a weight-1 no-op that backward
branches skip), the jump over an ``else`` arm costs zero, and a fused
pair costs the sum of its parts.

Prepared code is instance-independent: immediates are module-level
(function indices, types, offsets) and all store access goes through the
executing frame, so one prepared function serves every instantiation of
the module — ``engines/cache.py`` memoizes prepared modules per content
digest across the N-hundred-pod density experiments. The prepared form is
keyed to the exact ``Function`` object (``Function.prepared``); mutating
a body after first execution requires clearing that field.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.errors import WasmTrap
from repro.wasm.ast import Function, Instr, Module
from repro.wasm.runtime import values as V
from repro.wasm.runtime.ops import BINOPS, CMPOPS, LOADS, STORES, UNOPS
from repro.wasm.types import ValType

_MASK32 = V.MASK32
_MASK64 = V.MASK64

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")


class PreparedFunction:
    """Flat executable form of one function body.

    ``code`` is a tuple of ``(handler, args, weight)`` triples; handlers
    take ``(interp, frame, stack, args, pc)`` and return the next pc
    (``-1`` terminates the activation).

    ``compiled`` is an optional exec'd Python closure produced by the
    specialization tier (``specialize.py``); ``Interpreter._call_wasm``
    dispatches to it for unmetered activations and falls back to
    ``code`` otherwise.
    """

    __slots__ = (
        "code",
        "n_results",
        "local_defaults",
        "source_instrs",
        "name",
        "compiled",
    )

    def __init__(
        self,
        code: Tuple,
        n_results: int,
        local_defaults: Tuple,
        source_instrs: int,
        name: str = "",
    ) -> None:
        self.code = code
        self.n_results = n_results
        self.local_defaults = local_defaults
        self.source_instrs = source_instrs  # AST instrs represented (= sum of weights)
        self.name = name
        self.compiled = None


class PreparedModule:
    """Prepared code for every defined function, indexed like ``module.funcs``."""

    __slots__ = ("functions",)

    def __init__(self, functions: List[PreparedFunction]) -> None:
        self.functions = functions

    def attach(self, module: Module) -> None:
        """Share this prepared code with another decode of the same blob."""
        for func, pf in zip(module.funcs, self.functions):
            func.prepared = pf


def prepare_module(module: Module) -> PreparedModule:
    """Prepare every defined function, reusing already-attached code.

    An attached ``SpecializedFunction`` (specialization tier) is unwound
    to its unspecialized ``fallback`` first: the prepare layer caches
    *baseline* code only, so a corrupted or disabled specialize layer can
    always fall back to it.
    """
    functions = []
    for func in module.funcs:
        pf = func.prepared
        base = getattr(pf, "fallback", None)
        if base is not None:
            pf = base
        if pf is None:
            pf = prepare_function(module, func)
            func.prepared = pf
        functions.append(pf)
    return PreparedModule(functions)


def prepare_function(module: Module, func: Function) -> PreparedFunction:
    """Lower one validated function body to flat code."""
    return _Lowering(module, func).finish()


def _func_signatures(module: Module):
    """Signatures over the joint (imports-first) function index space."""
    sigs = getattr(module, "_func_sigs", None)
    if sigs is None:
        sigs = [module.types[imp.desc] for imp in module.imports if imp.kind == "func"]
        sigs += [module.types[f.type_idx] for f in module.funcs]
        module._func_sigs = sigs
    return sigs


# ---------------------------------------------------------------------------
# Handlers. Uniform signature: (interp, frame, stack, args, pc) -> next pc.
# ---------------------------------------------------------------------------


def h_end(interp, frame, stack, args, pc):
    return -1


def h_nop(interp, frame, stack, args, pc):
    return pc + 1


def h_unreachable(interp, frame, stack, args, pc):
    raise WasmTrap("unreachable executed")


def h_local_get(interp, frame, stack, args, pc):
    stack.append(frame.locals[args])
    return pc + 1


def h_local_set(interp, frame, stack, args, pc):
    frame.locals[args] = stack.pop()
    return pc + 1


def h_local_tee(interp, frame, stack, args, pc):
    frame.locals[args] = stack[-1]
    return pc + 1


def h_const(interp, frame, stack, args, pc):
    stack.append(args)
    return pc + 1


def h_drop(interp, frame, stack, args, pc):
    del stack[-1]
    return pc + 1


def h_select(interp, frame, stack, args, pc):
    c = stack.pop()
    v2 = stack.pop()
    if not c:
        stack[-1] = v2
    return pc + 1


def h_binop(interp, frame, stack, args, pc):
    b = stack.pop()
    stack[-1] = args(stack[-1], b)
    return pc + 1


def h_cmp(interp, frame, stack, args, pc):
    b = stack.pop()
    stack[-1] = 1 if args(stack[-1], b) else 0
    return pc + 1


def h_unop(interp, frame, stack, args, pc):
    stack[-1] = args(stack[-1])
    return pc + 1


def h_global_get(interp, frame, stack, args, pc):
    stack.append(interp.store.globals[frame.instance.global_addrs[args]].value)
    return pc + 1


def h_global_set(interp, frame, stack, args, pc):
    interp.store.globals[frame.instance.global_addrs[args]].set(stack.pop())
    return pc + 1


# -- fused superinstructions ------------------------------------------------


def h_lgg_binop(interp, frame, stack, args, pc):
    i, j, f = args
    loc = frame.locals
    stack.append(f(loc[i], loc[j]))
    return pc + 1


def h_lgg_cmp(interp, frame, stack, args, pc):
    i, j, f = args
    loc = frame.locals
    stack.append(1 if f(loc[i], loc[j]) else 0)
    return pc + 1


def h_const_binop(interp, frame, stack, args, pc):
    c, f = args
    stack[-1] = f(stack[-1], c)
    return pc + 1


def h_const_cmp(interp, frame, stack, args, pc):
    c, f = args
    stack[-1] = 1 if f(stack[-1], c) else 0
    return pc + 1


def h_cmp_br_if(interp, frame, stack, args, pc):
    f, target = args
    b = stack.pop()
    a = stack.pop()
    return target if f(a, b) else pc + 1


def h_lg_i32_load(interp, frame, stack, args, pc):
    i, off = args
    data = frame.mem.data
    addr = frame.locals[i] + off
    if addr < 0 or addr + 4 > len(data):
        raise WasmTrap("out of bounds memory access")
    stack.append(_U32.unpack_from(data, addr)[0])
    return pc + 1


def h_lg_load(interp, frame, stack, args, pc):
    i, off, width, signed, bits, isfloat = args
    data = frame.mem.data
    addr = frame.locals[i] + off
    if addr < 0 or addr + width > len(data):
        raise WasmTrap("out of bounds memory access")
    if isfloat:
        value = (_F32 if bits == 32 else _F64).unpack_from(data, addr)[0]
    else:
        value = int.from_bytes(data[addr : addr + width], "little")
        if signed:
            value = V.sign_extend(value, width * 8, bits)
    stack.append(value)
    return pc + 1


# -- control flow -----------------------------------------------------------


def h_goto(interp, frame, stack, args, pc):
    return args


def h_if(interp, frame, stack, args, pc):
    # args = else/end target; fall through into the then arm when true.
    return pc + 1 if stack.pop() else args


def h_br_if(interp, frame, stack, args, pc):
    return args if stack.pop() else pc + 1


def h_return(interp, frame, stack, args, pc):
    return -1


def _repair(stack, want, arity):
    """Drop values stranded between the branch target's expected height
    and the ``arity`` carried values on top (spec label unwinding)."""
    if arity:
        stack[want - arity : len(stack) - arity] = []
    else:
        del stack[want:]


def h_br_adjust(interp, frame, stack, args, pc):
    target, want, arity = args
    _repair(stack, want, arity)
    return target


def h_br_if_adjust(interp, frame, stack, args, pc):
    if not stack.pop():
        return pc + 1
    target, want, arity = args
    _repair(stack, want, arity)
    return target


def h_br_table(interp, frame, stack, args, pc):
    targets, default = args
    idx = stack.pop()
    target, want, arity = targets[idx] if idx < len(targets) else default
    if want >= 0 and len(stack) != want:
        _repair(stack, want, arity)
    return target


def h_call(interp, frame, stack, args, pc):
    idx, n = args
    fi = interp.store.funcs[frame.instance.func_addrs[idx]]
    if n:
        cargs = stack[-n:]
        del stack[-n:]
    else:
        cargs = []
    if fi.host_fn is None:
        stack.extend(interp._call_wasm(fi, cargs))
    else:
        result = fi.host_fn(*cargs)
        if result:
            stack.extend(result)
    return pc + 1


def h_call_indirect(interp, frame, stack, args, pc):
    expected, n = args
    store = interp.store
    table = store.tables[frame.instance.table_addrs[0]]
    fi = store.funcs[table.get(stack.pop())]
    if fi.type != expected:
        raise WasmTrap(
            f"indirect call type mismatch: expected {expected}, got {fi.type}"
        )
    if n:
        cargs = stack[-n:]
        del stack[-n:]
    else:
        cargs = []
    if fi.host_fn is None:
        stack.extend(interp._call_wasm(fi, cargs))
    else:
        result = fi.host_fn(*cargs)
        if result:
            stack.extend(result)
    return pc + 1


# -- memory -----------------------------------------------------------------


def h_i32_load(interp, frame, stack, args, pc):
    data = frame.mem.data
    addr = stack[-1] + args
    if addr < 0 or addr + 4 > len(data):
        raise WasmTrap("out of bounds memory access")
    stack[-1] = _U32.unpack_from(data, addr)[0]
    return pc + 1


def h_i64_load(interp, frame, stack, args, pc):
    data = frame.mem.data
    addr = stack[-1] + args
    if addr < 0 or addr + 8 > len(data):
        raise WasmTrap("out of bounds memory access")
    stack[-1] = _U64.unpack_from(data, addr)[0]
    return pc + 1


def h_f32_load(interp, frame, stack, args, pc):
    data = frame.mem.data
    addr = stack[-1] + args
    if addr < 0 or addr + 4 > len(data):
        raise WasmTrap("out of bounds memory access")
    stack[-1] = _F32.unpack_from(data, addr)[0]
    return pc + 1


def h_f64_load(interp, frame, stack, args, pc):
    data = frame.mem.data
    addr = stack[-1] + args
    if addr < 0 or addr + 8 > len(data):
        raise WasmTrap("out of bounds memory access")
    stack[-1] = _F64.unpack_from(data, addr)[0]
    return pc + 1


def h_loadn(interp, frame, stack, args, pc):
    off, width, signed, bits = args
    data = frame.mem.data
    addr = stack[-1] + off
    if addr < 0 or addr + width > len(data):
        raise WasmTrap("out of bounds memory access")
    value = int.from_bytes(data[addr : addr + width], "little")
    if signed:
        value = V.sign_extend(value, width * 8, bits)
    stack[-1] = value
    return pc + 1


def h_i32_store(interp, frame, stack, args, pc):
    value = stack.pop()
    addr = stack.pop() + args
    data = frame.mem.data
    if addr < 0 or addr + 4 > len(data):
        raise WasmTrap("out of bounds memory access")
    _U32.pack_into(data, addr, value & _MASK32)
    return pc + 1


def h_i64_store(interp, frame, stack, args, pc):
    value = stack.pop()
    addr = stack.pop() + args
    data = frame.mem.data
    if addr < 0 or addr + 8 > len(data):
        raise WasmTrap("out of bounds memory access")
    _U64.pack_into(data, addr, value & _MASK64)
    return pc + 1


def h_f32_store(interp, frame, stack, args, pc):
    value = stack.pop()
    addr = stack.pop() + args
    data = frame.mem.data
    if addr < 0 or addr + 4 > len(data):
        raise WasmTrap("out of bounds memory access")
    _F32.pack_into(data, addr, value)
    return pc + 1


def h_f64_store(interp, frame, stack, args, pc):
    value = stack.pop()
    addr = stack.pop() + args
    data = frame.mem.data
    if addr < 0 or addr + 8 > len(data):
        raise WasmTrap("out of bounds memory access")
    _F64.pack_into(data, addr, value)
    return pc + 1


def h_storen(interp, frame, stack, args, pc):
    off, width = args
    value = stack.pop()
    addr = stack.pop() + off
    data = frame.mem.data
    if addr < 0 or addr + width > len(data):
        raise WasmTrap("out of bounds memory access")
    data[addr : addr + width] = (value & ((1 << (width * 8)) - 1)).to_bytes(
        width, "little"
    )
    return pc + 1


def h_memory_size(interp, frame, stack, args, pc):
    stack.append(frame.mem.pages)
    return pc + 1


def h_memory_grow(interp, frame, stack, args, pc):
    stack[-1] = frame.mem.grow(stack[-1]) & _MASK32
    return pc + 1


def h_memory_fill(interp, frame, stack, args, pc):
    n = stack.pop()
    val = stack.pop()
    dst = stack.pop()
    mem = frame.mem
    if dst + n > len(mem.data):
        raise WasmTrap("out of bounds memory access")
    mem.data[dst : dst + n] = bytes([val & 0xFF]) * n
    return pc + 1


def h_memory_copy(interp, frame, stack, args, pc):
    n = stack.pop()
    src = stack.pop()
    dst = stack.pop()
    mem = frame.mem
    if src + n > len(mem.data) or dst + n > len(mem.data):
        raise WasmTrap("out of bounds memory access")
    mem.data[dst : dst + n] = mem.data[src : src + n]
    return pc + 1


def h_memory_init(interp, frame, stack, args, pc):
    n = stack.pop()
    src = stack.pop()
    dst = stack.pop()
    payload = interp.store.datas[frame.instance.data_addrs[args]]
    if payload is None:
        if n or src:
            raise WasmTrap("out of bounds memory access")
        payload = b""
    mem = frame.mem
    if src + n > len(payload) or dst + n > len(mem.data):
        raise WasmTrap("out of bounds memory access")
    mem.data[dst : dst + n] = payload[src : src + n]
    return pc + 1


def h_data_drop(interp, frame, stack, args, pc):
    interp.store.datas[frame.instance.data_addrs[args]] = None
    return pc + 1


#: Handlers whose args embed a label id that must be rewritten to a pc.
_PATCH_SIMPLE = (h_goto, h_if, h_br_if)
_PATCH_ADJUST = (h_br_adjust, h_br_if_adjust)

#: The fused superinstruction handlers (introspection / tests).
SUPERINSTRUCTIONS = (
    h_lgg_binop,
    h_lgg_cmp,
    h_const_binop,
    h_const_cmp,
    h_cmp_br_if,
    h_lg_i32_load,
    h_lg_load,
)

_CONST_OPS = {
    "i32.const": _MASK32,
    "i64.const": _MASK64,
    "f32.const": None,
    "f64.const": None,
}


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


class _Ctrl:
    """One enclosing label: where a branch lands and how to repair the stack.

    ``target_height`` is the statically-known operand-stack height after a
    branch lands (``None`` for the function label, whose unwinding is done
    by the activation epilogue), ``arity`` the number of values the branch
    carries.
    """

    __slots__ = ("label", "target_height", "arity")

    def __init__(self, label: int, target_height: Optional[int], arity: int) -> None:
        self.label = label
        self.target_height = target_height
        self.arity = arity


class _Lowering:
    def __init__(self, module: Module, func: Function) -> None:
        self.module = module
        self.sigs = _func_signatures(module)
        self.func = func
        self.entries: List[list] = []  # [handler, args, weight], patched in finish()
        self.label_pc: List[Optional[int]] = []
        self.ctrl: List[_Ctrl] = []
        # Static operand-stack height; None while lowering dead code.
        self.h: Optional[int] = 0

    # -- emission helpers ---------------------------------------------------

    def emit(self, handler, args, weight: int) -> None:
        self.entries.append([handler, args, weight])

    def new_label(self) -> int:
        self.label_pc.append(None)
        return len(self.label_pc) - 1

    def place(self, label: int) -> None:
        self.label_pc[label] = len(self.entries)

    def bump(self, delta: int) -> None:
        if self.h is not None:
            self.h += delta

    def _bt_arity(self, bt) -> Tuple[int, int]:
        if bt is None:
            return 0, 0
        if isinstance(bt, ValType):
            return 0, 1
        ft = self.module.types[bt]
        return len(ft.params), len(ft.results)

    # -- top level ----------------------------------------------------------

    def finish(self) -> PreparedFunction:
        func = self.func
        ft = self.module.types[func.type_idx]
        end = self.new_label()
        self.ctrl.append(_Ctrl(end, None, len(ft.results)))
        self.lower(func.body)
        self.place(end)
        self.emit(h_end, None, 0)
        self._patch_labels()
        code = tuple((e[0], e[1], e[2]) for e in self.entries)
        return PreparedFunction(
            code=code,
            n_results=len(ft.results),
            local_defaults=tuple(V.default_value(t) for t in func.locals),
            source_instrs=sum(e[2] for e in self.entries),
            name=func.name or "",
        )

    def _patch_labels(self) -> None:
        L = self.label_pc
        for e in self.entries:
            hd = e[0]
            if hd in _PATCH_SIMPLE:
                e[1] = L[e[1]]
            elif hd in _PATCH_ADJUST:
                t, want, a = e[1]
                e[1] = (L[t], want, a)
            elif hd is h_cmp_br_if:
                f, t = e[1]
                e[1] = (f, L[t])
            elif hd is h_br_table:
                targets, default = e[1]
                e[1] = (
                    tuple((L[t], w, a) for t, w, a in targets),
                    (L[default[0]], default[1], default[2]),
                )

    # -- instruction sequences ----------------------------------------------

    def lower(self, body: List[Instr]) -> None:
        i = 0
        n = len(body)
        while i < n:
            ins = body[i]
            op = ins.op

            # -- superinstruction fusion (windows never span a branch
            # target: targets only exist at block boundaries, and the
            # window stays inside one structured body list) --------------
            if op == "local.get":
                if i + 2 < n and body[i + 1].op == "local.get":
                    f = BINOPS.get(body[i + 2].op)
                    if f is not None:
                        self.emit(
                            h_lgg_binop, (ins.args[0], body[i + 1].args[0], f), 3
                        )
                        self.bump(1)
                        i += 3
                        continue
                    f = CMPOPS.get(body[i + 2].op)
                    if f is not None:
                        self.emit(h_lgg_cmp, (ins.args[0], body[i + 1].args[0], f), 3)
                        self.bump(1)
                        i += 3
                        continue
                if i + 1 < n:
                    spec = LOADS.get(body[i + 1].op)
                    if spec is not None:
                        width, signed, kind, bits = spec
                        off = body[i + 1].args[1]
                        if body[i + 1].op == "i32.load":
                            self.emit(h_lg_i32_load, (ins.args[0], off), 2)
                        else:
                            self.emit(
                                h_lg_load,
                                (ins.args[0], off, width, signed, bits, kind == "f"),
                                2,
                            )
                        self.bump(1)
                        i += 2
                        continue
                self.emit(h_local_get, ins.args[0], 1)
                self.bump(1)
                i += 1
                continue
            if op in _CONST_OPS:
                mask = _CONST_OPS[op]
                value = ins.args[0] & mask if mask is not None else ins.args[0]
                if i + 1 < n:
                    f = BINOPS.get(body[i + 1].op)
                    if f is not None:
                        self.emit(h_const_binop, (value, f), 2)
                        self.bump(0)
                        i += 2
                        continue
                    f = CMPOPS.get(body[i + 1].op)
                    if f is not None:
                        self.emit(h_const_cmp, (value, f), 2)
                        self.bump(0)
                        i += 2
                        continue
                self.emit(h_const, value, 1)
                self.bump(1)
                i += 1
                continue
            f = CMPOPS.get(op)
            if f is not None and i + 1 < n and body[i + 1].op == "br_if":
                c = self.ctrl[-1 - body[i + 1].args[0]]
                th = c.target_height
                # Fuse only when the taken branch needs no stack repair.
                if th is None or self.h is None or self.h - 2 == th:
                    self.emit(h_cmp_br_if, (f, c.label), 2)
                    self.bump(-2)
                    i += 2
                    continue

            self._one(ins)
            i += 1

    def _one(self, ins: Instr) -> None:
        op = ins.op
        f = BINOPS.get(op)
        if f is not None:
            self.emit(h_binop, f, 1)
            self.bump(-1)
            return
        f = CMPOPS.get(op)
        if f is not None:
            self.emit(h_cmp, f, 1)
            self.bump(-1)
            return
        f = UNOPS.get(op)
        if f is not None:
            self.emit(h_unop, f, 1)
            return
        if op == "local.set":
            self.emit(h_local_set, ins.args[0], 1)
            self.bump(-1)
        elif op == "local.tee":
            self.emit(h_local_tee, ins.args[0], 1)
        elif op == "block":
            self._block(ins)
        elif op == "loop":
            self._loop(ins)
        elif op == "if":
            self._if(ins)
        elif op == "br":
            self._br(ins.args[0])
        elif op == "br_if":
            self._br_if(ins.args[0])
        elif op == "br_table":
            self._br_table(ins)
        elif op == "return":
            self.emit(h_return, None, 1)
            self.h = None
        elif op == "call":
            sig = self.sigs[ins.args[0]]
            self.emit(h_call, (ins.args[0], len(sig.params)), 1)
            self.bump(len(sig.results) - len(sig.params))
        elif op == "call_indirect":
            ft = self.module.types[ins.args[0]]
            self.emit(h_call_indirect, (ft, len(ft.params)), 1)
            self.bump(len(ft.results) - len(ft.params) - 1)
        elif op == "drop":
            self.emit(h_drop, None, 1)
            self.bump(-1)
        elif op == "select":
            self.emit(h_select, None, 1)
            self.bump(-2)
        elif op == "global.get":
            self.emit(h_global_get, ins.args[0], 1)
            self.bump(1)
        elif op == "global.set":
            self.emit(h_global_set, ins.args[0], 1)
            self.bump(-1)
        elif op in LOADS:
            width, signed, kind, bits = LOADS[op]
            off = ins.args[1]
            if op == "i32.load":
                self.emit(h_i32_load, off, 1)
            elif op == "i64.load":
                self.emit(h_i64_load, off, 1)
            elif op == "f32.load":
                self.emit(h_f32_load, off, 1)
            elif op == "f64.load":
                self.emit(h_f64_load, off, 1)
            else:
                self.emit(h_loadn, (off, width, signed, bits), 1)
        elif op in STORES:
            width, kind = STORES[op]
            off = ins.args[1]
            if op == "i32.store":
                self.emit(h_i32_store, off, 1)
            elif op == "i64.store":
                self.emit(h_i64_store, off, 1)
            elif op == "f32.store":
                self.emit(h_f32_store, off, 1)
            elif op == "f64.store":
                self.emit(h_f64_store, off, 1)
            else:
                self.emit(h_storen, (off, width), 1)
            self.bump(-2)
        elif op == "memory.size":
            self.emit(h_memory_size, None, 1)
            self.bump(1)
        elif op == "memory.grow":
            self.emit(h_memory_grow, None, 1)
        elif op == "memory.fill":
            self.emit(h_memory_fill, None, 1)
            self.bump(-3)
        elif op == "memory.copy":
            self.emit(h_memory_copy, None, 1)
            self.bump(-3)
        elif op == "memory.init":
            self.emit(h_memory_init, ins.args[0], 1)
            self.bump(-3)
        elif op == "data.drop":
            self.emit(h_data_drop, ins.args[0], 1)
        elif op == "nop":
            self.emit(h_nop, None, 1)
        elif op == "unreachable":
            self.emit(h_unreachable, None, 1)
            self.h = None
        else:
            raise WasmTrap(f"unknown instruction {op!r}")

    # -- structured control --------------------------------------------------

    def _block(self, ins: Instr) -> None:
        p, r = self._bt_arity(ins.blocktype)
        entry = self.h  # includes the block's params
        target = None if entry is None else entry - p + r
        end = self.new_label()
        # Header no-op: the reference walker charges `block` one instruction.
        self.emit(h_nop, None, 1)
        self.ctrl.append(_Ctrl(end, target, r))
        self.lower(ins.body)
        self.ctrl.pop()
        self.place(end)
        self.h = target

    def _loop(self, ins: Instr) -> None:
        p, r = self._bt_arity(ins.blocktype)
        entry = self.h
        # Header charged once on entry; backward branches re-enter *after*
        # it, matching the reference walker (which does not re-count `loop`
        # on each iteration).
        self.emit(h_nop, None, 1)
        start = self.new_label()
        self.place(start)
        self.ctrl.append(_Ctrl(start, entry, p))
        self.lower(ins.body)
        self.ctrl.pop()
        self.h = None if entry is None else entry - p + r

    def _if(self, ins: Instr) -> None:
        p, r = self._bt_arity(ins.blocktype)
        self.bump(-1)  # condition
        entry = self.h
        target = None if entry is None else entry - p + r
        end = self.new_label()
        self.ctrl.append(_Ctrl(end, target, r))
        if ins.else_body:
            els = self.new_label()
            self.emit(h_if, els, 1)
            self.lower(ins.body)
            self.emit(h_goto, end, 0)  # skip over else: free, like the walker
            self.place(els)
            self.h = entry
            self.lower(ins.else_body)
        else:
            self.emit(h_if, end, 1)
            self.lower(ins.body)
        self.ctrl.pop()
        self.place(end)
        self.h = target

    def _br(self, depth: int) -> None:
        c = self.ctrl[-1 - depth]
        th = c.target_height
        if th is None or self.h is None or self.h == th:
            self.emit(h_goto, c.label, 1)
        else:
            self.emit(h_br_adjust, (c.label, th, c.arity), 1)
        self.h = None

    def _br_if(self, depth: int) -> None:
        self.bump(-1)  # condition
        c = self.ctrl[-1 - depth]
        th = c.target_height
        if th is None or self.h is None or self.h == th:
            self.emit(h_br_if, c.label, 1)
        else:
            self.emit(h_br_if_adjust, (c.label, th, c.arity), 1)

    def _br_table(self, ins: Instr) -> None:
        self.bump(-1)  # index
        labels, default = ins.args

        def entry(depth: int):
            c = self.ctrl[-1 - depth]
            th = c.target_height
            if th is None or self.h is None:
                return (c.label, -1, 0)
            return (c.label, th, c.arity)

        self.emit(
            h_br_table,
            (tuple(entry(l) for l in labels), entry(default)),
            1,
        )
        self.h = None
