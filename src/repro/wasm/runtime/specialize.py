"""Specialization tier: digest-keyed bytecode optimization with guarded deopt.

The flat interpreter (``compile.py``) still re-proves facts at run time
that prepare time already settled: immutable globals are re-read from the
store on every access, every memory access re-checks bounds the declared
memory minimum already guarantees, and every ``call_indirect`` re-walks
``table → store → type check``. This module is a second, optional lowering
stage that rewrites finished :class:`PreparedFunction` code — the same
``(handler, args, weight)`` triples, the same dispatch loop — through
four passes, in order:

1. **Constant folding** — ``global.get`` of a module-defined immutable
   global with a constant initializer becomes ``h_const`` (the value is
   instance-independent by construction; imported globals are resolved
   per instance and are left alone).
2. **Peephole re-fusion** — the prepare-time fusion pass runs over
   structured bodies and misses pairs the fold just created; this pass
   re-runs it over the *flat* stream to a fixpoint (``const+binop`` →
   ``const_binop``, ``const+const_binop`` → ``const``, …), remapping
   every stored pc. Windows never merge across a branch target, and a
   fused entry carries the summed weight of its parts — fuel accounting
   stays exactly equal to the reference tree-walker.
3. **Bounds-check elision** — a per-basic-block abstract interpretation
   tracks unsigned upper bounds on stack values (constants, ``x & mask``
   results, comparison results); a checked load/store whose address is
   provably below the declared memory *minimum* (a lower bound on the
   memory's size for its whole lifetime — ``grow`` only extends) is
   swapped for an unchecked ``u_*`` handler.
4. **Inline caches** — each ``call_indirect`` site gets a mutable
   monomorphic cache cell guarded on ``(table identity, slot address)``;
   a hit skips the ``store.funcs`` index and the structural
   ``FuncType.__eq__``. A miss (counted in
   ``repro_specialize_deopts_total{reason="ic_miss"}``) takes the full
   generic path, including its exact trap messages, then refills the
   cell.

In the default ``on`` mode a fifth step compiles each specialized
function to a real Python closure (``exec``-generated, one ``while``
dispatch loop over basic blocks with stack slots and locals held in
Python local variables). The closure is attached as
``PreparedFunction.compiled`` and dispatched by
``Interpreter._call_wasm`` **only for unmetered activations**: fuel
metering needs the per-entry debit protocol, so metered calls deopt to
the specialized flat bytecode (counted as ``reason="metered"``). The
closure accumulates retired-instruction weights in a local and flushes
in a ``finally``, flushing eagerly before every trap-capable statement —
``instructions_executed`` is exact under traps, exactly like the flat
loop. Functions whose shape the closure compiler does not handle
(conflicting static stack heights, ``br_table`` entries lowered without
a static height, oversized bodies) silently stay on specialized flat
bytecode (outcome ``bytecode``).

Everything is behind ``REPRO_SPECIALIZE`` (default ``on``; ``bytecode``
keeps passes 1–4 but skips closures; ``off``/``0``/``false``/``no``
disables the tier). ``engines/cache.py`` keys the result by content
digest (the ``specialize`` layer) so the passes run once per blob across
N-hundred-pod experiments, and the ReferenceInterpreter remains the
differential oracle for all of it (``tests/wasm/test_differential.py``).
"""

from __future__ import annotations

import os
import struct
import time
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.errors import ExhaustionError, WasmTrap
from repro.wasm.ast import Function, Module
from repro.wasm.runtime import compile as flat
from repro.wasm.runtime import values as V
from repro.wasm.runtime.compile import (
    PreparedFunction,
    _func_signatures,
    prepare_function,
)
from repro.wasm.runtime.ops import BINOPS, CMPOPS, UNOPS
from repro.wasm.types import PAGE_SIZE

SPECIALIZE_ENV = "REPRO_SPECIALIZE"

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")

# always=True: tests and `repro inspect` consume these functionally.
_FUNCS_TOTAL = obs.counter(
    "repro_specialize_functions_total",
    "functions processed by the specialization tier, by outcome",
    ("outcome",),
    always=True,
)
_DEOPTS_TOTAL = obs.counter(
    "repro_specialize_deopts_total",
    "specialized-code guard failures falling back to a generic path",
    ("reason",),
    always=True,
)
#: real passes are sub-millisecond for the paper workloads; the default
#: request-scale buckets would collapse them into one bin
_PASS_BUCKETS = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0)
_PASS_SECONDS = obs.histogram(
    "repro_specialize_pass_seconds",
    "wall-clock latency of one specialize_module pass",
    buckets=_PASS_BUCKETS,
    always=True,
)

#: pre-bound children: the metered deopt fires per guest call, the IC
#: miss per megamorphic call site — neither can afford a labels() lookup.
METERED_DEOPT = _DEOPTS_TOTAL.labels("metered")
_IC_MISS = _DEOPTS_TOTAL.labels("ic_miss")


def specialize_mode() -> str:
    """Resolve ``REPRO_SPECIALIZE`` to ``"on"``/``"bytecode"``/``"off"``.

    Read per call (like ``zygote_enabled``) so tests and experiment
    sweeps can flip the toggle without re-importing anything.
    """
    raw = os.environ.get(SPECIALIZE_ENV, "on").strip().lower()
    if raw in ("off", "0", "false", "no"):
        return "off"
    if raw == "bytecode":
        return "bytecode"
    return "on"


class SpecializedFunction(PreparedFunction):
    """Specialized flat code plus the original it deopts to.

    Runs on the unmodified dispatch loop. ``fallback`` is the
    unspecialized :class:`PreparedFunction` — kept so cache-layer
    corruption and the ``off`` toggle can always restore baseline code,
    and so re-specializing an already-attached module never stacks
    tiers.
    """

    __slots__ = ("fallback",)

    def __init__(self, code: Tuple, fallback: PreparedFunction) -> None:
        super().__init__(
            code=code,
            n_results=fallback.n_results,
            local_defaults=fallback.local_defaults,
            source_instrs=fallback.source_instrs,
            name=fallback.name,
        )
        self.fallback = fallback


class SpecializedModule:
    """Specialized code for every defined function (digest-cache entry)."""

    __slots__ = ("functions", "mode")

    def __init__(self, functions: List[PreparedFunction], mode: str) -> None:
        self.functions = functions
        self.mode = mode

    def attach(self, module: Module) -> None:
        for func, pf in zip(module.funcs, self.functions):
            func.prepared = pf


# ---------------------------------------------------------------------------
# Unchecked memory handlers (installed by the bounds-elision pass only when
# `addr_bound + offset + width <= declared_minimum_bytes` is proven).
# ---------------------------------------------------------------------------


def u_i32_load(interp, frame, stack, args, pc):
    stack[-1] = _U32.unpack_from(frame.mem.data, stack[-1] + args)[0]
    return pc + 1


def u_i64_load(interp, frame, stack, args, pc):
    stack[-1] = _U64.unpack_from(frame.mem.data, stack[-1] + args)[0]
    return pc + 1


def u_f32_load(interp, frame, stack, args, pc):
    stack[-1] = _F32.unpack_from(frame.mem.data, stack[-1] + args)[0]
    return pc + 1


def u_f64_load(interp, frame, stack, args, pc):
    stack[-1] = _F64.unpack_from(frame.mem.data, stack[-1] + args)[0]
    return pc + 1


def u_loadn(interp, frame, stack, args, pc):
    off, width, signed, bits = args
    addr = stack[-1] + off
    value = int.from_bytes(frame.mem.data[addr : addr + width], "little")
    if signed:
        value = V.sign_extend(value, width * 8, bits)
    stack[-1] = value
    return pc + 1


def u_i32_store(interp, frame, stack, args, pc):
    value = stack.pop()
    _U32.pack_into(frame.mem.data, stack.pop() + args, value & V.MASK32)
    return pc + 1


def u_i64_store(interp, frame, stack, args, pc):
    value = stack.pop()
    _U64.pack_into(frame.mem.data, stack.pop() + args, value & V.MASK64)
    return pc + 1


def u_f32_store(interp, frame, stack, args, pc):
    value = stack.pop()
    _F32.pack_into(frame.mem.data, stack.pop() + args, value)
    return pc + 1


def u_f64_store(interp, frame, stack, args, pc):
    value = stack.pop()
    _F64.pack_into(frame.mem.data, stack.pop() + args, value)
    return pc + 1


def u_storen(interp, frame, stack, args, pc):
    off, width = args
    value = stack.pop()
    addr = stack.pop() + off
    frame.mem.data[addr : addr + width] = (
        value & ((1 << (width * 8)) - 1)
    ).to_bytes(width, "little")
    return pc + 1


# ---------------------------------------------------------------------------
# Inline-cached call_indirect
# ---------------------------------------------------------------------------


def _ic_type_mismatch(expected, actual):
    raise WasmTrap(
        f"indirect call type mismatch: expected {expected}, got {actual}"
    )


def h_call_indirect_ic(interp, frame, stack, args, pc):
    """``call_indirect`` with a monomorphic inline cache.

    ``args = (expected_type, n_params, cell)`` where ``cell`` is the
    per-site mutable ``[table, slot_addr, func_instance]``. The guard is
    table *identity* plus slot address: store function lists are
    append-only and ``FuncInstance`` objects are never rebound to a
    different address, so a hit cannot go stale even across
    ``table.set``-free module lifetimes. A miss replays the generic
    path — identical traps, in the same order as the flat handler — and
    refills the cell.
    """
    expected, n, cell = args
    store = interp.store
    table = store.tables[frame.instance.table_addrs[0]]
    idx = stack.pop()
    elements = table.elements
    if idx < 0 or idx >= len(elements):
        raise WasmTrap("undefined element")
    addr = elements[idx]
    if addr is None:
        raise WasmTrap("uninitialized element")
    if cell[0] is table and cell[1] == addr:
        fi = cell[2]
    else:
        fi = store.funcs[addr]
        if fi.type != expected:
            _ic_type_mismatch(expected, fi.type)
        _IC_MISS.inc()
        cell[0] = table
        cell[1] = addr
        cell[2] = fi
    if n:
        cargs = stack[-n:]
        del stack[-n:]
    else:
        cargs = []
    if fi.host_fn is None:
        stack.extend(interp._call_wasm(fi, cargs))
    else:
        result = fi.host_fn(*cargs)
        if result:
            stack.extend(result)
    return pc + 1


# ---------------------------------------------------------------------------
# Pass 1: constant-fold immutable globals
# ---------------------------------------------------------------------------


def _foldable_globals(module: Module) -> Dict[int, object]:
    """Joint-index-space map of foldable global values.

    Only *module-defined* immutable globals with a single-instruction
    constant initializer qualify: their value is identical in every
    instance (``_eval_const`` applies the same mask at instantiation).
    Imported globals resolve per instance; ``global.get`` of one stays a
    store read.
    """
    n_imported = sum(1 for imp in module.imports if imp.kind == "global")
    out: Dict[int, object] = {}
    for i, glob in enumerate(module.globals):
        if glob.type.mutable or len(glob.init) != 1:
            continue
        ins = glob.init[0]
        if ins.op == "i32.const":
            out[n_imported + i] = ins.args[0] & V.MASK32
        elif ins.op == "i64.const":
            out[n_imported + i] = ins.args[0] & V.MASK64
        elif ins.op in ("f32.const", "f64.const"):
            out[n_imported + i] = ins.args[0]
    return out


def _memory_min_bytes(module: Module) -> Optional[int]:
    """Declared minimum of memory 0 in bytes — a lifetime lower bound.

    ``MemoryInstance`` starts at the minimum and ``grow`` only extends,
    so an access proven below this line can never go out of bounds, for
    defined and imported memories alike (import limits are checked at
    link time).
    """
    for imp in module.imports:
        if imp.kind == "mem":
            return imp.desc.limits.minimum * PAGE_SIZE
    if module.mems:
        return module.mems[0].limits.minimum * PAGE_SIZE
    return None


# ---------------------------------------------------------------------------
# Flat-code CFG helpers shared by the peephole, elision, and closure passes
# ---------------------------------------------------------------------------


def _branch_targets(code) -> Set[int]:
    """Every pc that some branch can land on (fusion must not cross one)."""
    targets: Set[int] = set()
    for handler, args, _w in code:
        if handler is flat.h_goto or handler is flat.h_if or handler is flat.h_br_if:
            targets.add(args)
        elif handler is flat.h_br_adjust or handler is flat.h_br_if_adjust:
            targets.add(args[0])
        elif handler is flat.h_cmp_br_if:
            targets.add(args[1])
        elif handler is flat.h_br_table:
            table, default = args
            for t, _want, _arity in table:
                targets.add(t)
            targets.add(default[0])
    return targets


def _remap_pcs(entries, pcmap):
    """Rewrite every stored pc through ``pcmap`` after entries moved."""
    out = []
    for handler, args, weight in entries:
        if handler is flat.h_goto or handler is flat.h_if or handler is flat.h_br_if:
            args = pcmap[args]
        elif handler is flat.h_br_adjust or handler is flat.h_br_if_adjust:
            args = (pcmap[args[0]], args[1], args[2])
        elif handler is flat.h_cmp_br_if:
            args = (args[0], pcmap[args[1]])
        elif handler is flat.h_br_table:
            table, default = args
            args = (
                tuple((pcmap[t], w, a) for t, w, a in table),
                (pcmap[default[0]], default[1], default[2]),
            )
        out.append((handler, args, weight))
    return out


# ---------------------------------------------------------------------------
# Pass 2: flat peephole fusion (to fixpoint)
# ---------------------------------------------------------------------------

_NOFOLD = object()


def _try_pure(f, *operands):
    """Apply a pure operator at specialization time; ``_NOFOLD`` if it
    would trap (e.g. folded div-by-zero must stay a runtime trap)."""
    try:
        return f(*operands)
    except Exception:
        return _NOFOLD


def _peephole_once(entries, targets):
    """One left-to-right fusion sweep; returns (entries, targets, changed).

    Merged windows never span a branch target (the second element of a
    candidate pair must not be jumped into) and a fused entry carries the
    summed weight — the fuel-exactness argument is the same as for
    prepare-time fusion: every candidate is side-effect-free before its
    last component.
    """
    out: List[tuple] = []
    pcmap: Dict[int, int] = {}
    changed = False
    i = 0
    n = len(entries)
    while i < n:
        pcmap[i] = len(out)
        handler, args, weight = entries[i]
        fused = None
        if handler is flat.h_const and i + 1 < n and (i + 1) not in targets:
            h2, a2, w2 = entries[i + 1]
            if h2 is flat.h_binop:
                fused = (flat.h_const_binop, (args, a2), weight + w2)
            elif h2 is flat.h_cmp:
                fused = (flat.h_const_cmp, (args, a2), weight + w2)
            elif h2 is flat.h_unop:
                value = _try_pure(a2, args)
                if value is not _NOFOLD:
                    fused = (flat.h_const, value, weight + w2)
            elif h2 is flat.h_const_binop:
                c2, f2 = a2
                value = _try_pure(f2, args, c2)
                if value is not _NOFOLD:
                    fused = (flat.h_const, value, weight + w2)
            elif h2 is flat.h_const_cmp:
                c2, f2 = a2
                value = _try_pure(f2, args, c2)
                if value is not _NOFOLD:
                    fused = (flat.h_const, 1 if value else 0, weight + w2)
        if fused is not None:
            out.append(fused)
            changed = True
            i += 2
        else:
            out.append((handler, args, weight))
            i += 1
    if not changed:
        return entries, targets, False
    pcmap[n] = len(out)  # end-of-code sentinel (never a real target)
    return _remap_pcs(out, pcmap), {pcmap[t] for t in targets}, True


def _peephole(entries, targets):
    fused = 0
    while True:
        before = len(entries)
        entries, targets, changed = _peephole_once(entries, targets)
        if not changed:
            return entries, targets, fused
        fused += before - len(entries)


# ---------------------------------------------------------------------------
# Pass 3: bounds-check elision
# ---------------------------------------------------------------------------

_AND32 = BINOPS["i32.and"]
_AND64 = BINOPS["i64.and"]
_EQZ32 = UNOPS["i32.eqz"]
_EQZ64 = UNOPS["i64.eqz"]

_CHECKED_LOADS = {
    flat.h_i32_load: (4, u_i32_load),
    flat.h_i64_load: (8, u_i64_load),
    flat.h_f32_load: (4, u_f32_load),
    flat.h_f64_load: (8, u_f64_load),
}
_CHECKED_STORES = {
    flat.h_i32_store: (4, u_i32_store),
    flat.h_i64_store: (8, u_i64_store),
    flat.h_f32_store: (4, u_f32_store),
    flat.h_f64_store: (8, u_f64_store),
}

#: handlers ending a basic block; abstract state dies with the block
_BLOCK_ENDERS = (
    flat.h_goto,
    flat.h_br_adjust,
    flat.h_br_table,
    flat.h_end,
    flat.h_return,
    flat.h_unreachable,
)


def _elide_bounds(module: Module, entries, targets, mem_min: Optional[int]):
    """Swap checked memory handlers for unchecked ones where an unsigned
    upper bound on the address proves ``addr + offset + width <= minimum``.

    The abstract state is a suffix of the operand stack: each slot holds
    an upper bound (values are unsigned by representation, so a bound is
    also a proof of non-negativity) or ``None``. It resets at branch
    targets and block enders; conditional branches only pop. Pops on an
    empty abstract stack model unknown deeper values.
    """
    if mem_min is None or mem_min <= 0:
        return entries, 0
    out = list(entries)
    elided = 0
    st: List[Optional[int]] = []

    def pop():
        return st.pop() if st else None

    for pc, (handler, args, _w) in enumerate(entries):
        if pc in targets:
            st.clear()
        if handler is flat.h_const:
            st.append(args if isinstance(args, int) else None)
        elif handler is flat.h_local_get or handler is flat.h_global_get:
            st.append(None)
        elif handler is flat.h_memory_size:
            st.append(None)
        elif handler is flat.h_local_set or handler is flat.h_global_set:
            pop()
        elif handler is flat.h_drop:
            pop()
        elif handler is flat.h_local_tee or handler is flat.h_nop:
            pass
        elif handler is flat.h_data_drop:
            pass
        elif handler is flat.h_select:
            pop()
            v2 = pop()
            v1 = pop()
            st.append(None if v1 is None or v2 is None else max(v1, v2))
        elif handler is flat.h_binop:
            b = pop()
            a = pop()
            if args is _AND32 or args is _AND64:
                if a is None:
                    st.append(b)
                elif b is None:
                    st.append(a)
                else:
                    st.append(min(a, b))
            else:
                st.append(None)
        elif handler is flat.h_cmp:
            pop()
            pop()
            st.append(1)
        elif handler is flat.h_unop:
            pop()
            st.append(1 if (args is _EQZ32 or args is _EQZ64) else None)
        elif handler is flat.h_lgg_binop:
            st.append(None)
        elif handler is flat.h_lgg_cmp:
            st.append(1)
        elif handler is flat.h_const_binop:
            c, f = args
            a = pop()
            if (f is _AND32 or f is _AND64) and isinstance(c, int):
                st.append(c if a is None else min(a, c))
            else:
                st.append(None)
        elif handler is flat.h_const_cmp:
            pop()
            st.append(1)
        elif handler is flat.h_lg_i32_load or handler is flat.h_lg_load:
            st.append(None)
        elif handler in _CHECKED_LOADS:
            width, unchecked = _CHECKED_LOADS[handler]
            bound = st[-1] if st else None
            if bound is not None and bound + args + width <= mem_min:
                out[pc] = (unchecked, args, entries[pc][2])
                elided += 1
            pop()
            st.append(None)
        elif handler is flat.h_loadn:
            off, width, _signed, _bits = args
            bound = st[-1] if st else None
            if bound is not None and bound + off + width <= mem_min:
                out[pc] = (u_loadn, args, entries[pc][2])
                elided += 1
            pop()
            st.append(None)
        elif handler in _CHECKED_STORES:
            width, unchecked = _CHECKED_STORES[handler]
            bound = st[-2] if len(st) >= 2 else None
            if bound is not None and bound + args + width <= mem_min:
                out[pc] = (unchecked, args, entries[pc][2])
                elided += 1
            pop()
            pop()
        elif handler is flat.h_storen:
            off, width = args
            bound = st[-2] if len(st) >= 2 else None
            if bound is not None and bound + off + width <= mem_min:
                out[pc] = (u_storen, args, entries[pc][2])
                elided += 1
            pop()
            pop()
        elif handler is flat.h_memory_grow:
            pop()
            st.append(None)
        elif (
            handler is flat.h_memory_fill
            or handler is flat.h_memory_copy
            or handler is flat.h_memory_init
        ):
            pop()
            pop()
            pop()
        elif handler is flat.h_call:
            idx, n_args = args
            for _ in range(n_args):
                pop()
            for _ in range(len(_func_signatures(module)[idx].results)):
                st.append(None)
        elif handler is flat.h_call_indirect or handler is h_call_indirect_ic:
            ft = args[0]
            for _ in range(len(ft.params) + 1):
                pop()
            for _ in range(len(ft.results)):
                st.append(None)
        elif (
            handler is flat.h_if
            or handler is flat.h_br_if
            or handler is flat.h_br_if_adjust
        ):
            pop()  # condition; fallthrough keeps the rest untouched
        elif handler is flat.h_cmp_br_if:
            pop()
            pop()
        elif handler in _BLOCK_ENDERS:
            st.clear()
        else:  # pragma: no cover - future handlers: be conservative
            st.clear()
    return out, elided


# ---------------------------------------------------------------------------
# Pass 4: inline caches at call_indirect sites
# ---------------------------------------------------------------------------


def _install_ics(entries):
    out = []
    installed = 0
    for handler, args, weight in entries:
        if handler is flat.h_call_indirect:
            expected, n = args
            out.append(
                (h_call_indirect_ic, (expected, n, [None, -1, None]), weight)
            )
            installed += 1
        else:
            out.append((handler, args, weight))
    return out, installed


# ---------------------------------------------------------------------------
# Pass 5: closure compilation
# ---------------------------------------------------------------------------


class _Unsupported(Exception):
    """Function shape the closure compiler does not handle (stays flat)."""


#: stack-height deltas for every non-control handler the compiler knows
_SIMPLE_DELTAS = {
    flat.h_nop: 0,
    flat.h_local_get: 1,
    flat.h_local_set: -1,
    flat.h_local_tee: 0,
    flat.h_const: 1,
    flat.h_drop: -1,
    flat.h_select: -2,
    flat.h_binop: -1,
    flat.h_cmp: -1,
    flat.h_unop: 0,
    flat.h_global_get: 1,
    flat.h_global_set: -1,
    flat.h_lgg_binop: 1,
    flat.h_lgg_cmp: 1,
    flat.h_const_binop: 0,
    flat.h_const_cmp: 0,
    flat.h_lg_i32_load: 1,
    flat.h_lg_load: 1,
    flat.h_i32_load: 0,
    flat.h_i64_load: 0,
    flat.h_f32_load: 0,
    flat.h_f64_load: 0,
    flat.h_loadn: 0,
    u_i32_load: 0,
    u_i64_load: 0,
    u_f32_load: 0,
    u_f64_load: 0,
    u_loadn: 0,
    flat.h_i32_store: -2,
    flat.h_i64_store: -2,
    flat.h_f32_store: -2,
    flat.h_f64_store: -2,
    flat.h_storen: -2,
    u_i32_store: -2,
    u_i64_store: -2,
    u_f32_store: -2,
    u_f64_store: -2,
    u_storen: -2,
    flat.h_memory_size: 1,
    flat.h_memory_grow: 0,
    flat.h_memory_fill: -3,
    flat.h_memory_copy: -3,
    flat.h_memory_init: -3,
    flat.h_data_drop: 0,
}

_CONTROL = frozenset(
    (
        flat.h_goto,
        flat.h_if,
        flat.h_br_if,
        flat.h_br_adjust,
        flat.h_br_if_adjust,
        flat.h_cmp_br_if,
        flat.h_br_table,
        flat.h_end,
        flat.h_return,
        flat.h_unreachable,
    )
)

_MEMORY_HANDLERS = frozenset(
    h
    for h in _SIMPLE_DELTAS
    if h
    in (
        flat.h_lg_i32_load,
        flat.h_lg_load,
        flat.h_i32_load,
        flat.h_i64_load,
        flat.h_f32_load,
        flat.h_f64_load,
        flat.h_loadn,
        u_i32_load,
        u_i64_load,
        u_f32_load,
        u_f64_load,
        u_loadn,
        flat.h_i32_store,
        flat.h_i64_store,
        flat.h_f32_store,
        flat.h_f64_store,
        flat.h_storen,
        u_i32_store,
        u_i64_store,
        u_f32_store,
        u_f64_store,
        u_storen,
        flat.h_memory_size,
        flat.h_memory_grow,
        flat.h_memory_fill,
        flat.h_memory_copy,
        flat.h_memory_init,
    )
)

#: operator name -> Python expression template (a/b are operand exprs).
#: Everything here is exactly equivalent to the table callable: unsigned
#: representation in, unsigned out.
_INLINE_BINOPS = {
    "i32.add": "({a} + {b}) & 0xFFFFFFFF",
    "i32.sub": "({a} - {b}) & 0xFFFFFFFF",
    "i32.mul": "({a} * {b}) & 0xFFFFFFFF",
    "i32.and": "{a} & {b}",
    "i32.or": "{a} | {b}",
    "i32.xor": "{a} ^ {b}",
    "i64.add": "({a} + {b}) & 0xFFFFFFFFFFFFFFFF",
    "i64.sub": "({a} - {b}) & 0xFFFFFFFFFFFFFFFF",
    "i64.mul": "({a} * {b}) & 0xFFFFFFFFFFFFFFFF",
    "i64.and": "{a} & {b}",
    "i64.or": "{a} | {b}",
    "i64.xor": "{a} ^ {b}",
    "f64.add": "{a} + {b}",
    "f64.sub": "{a} - {b}",
    "f64.mul": "{a} * {b}",
}

_INLINE_CMPS = {
    "i32.eq": "{a} == {b}",
    "i32.ne": "{a} != {b}",
    "i32.lt_u": "{a} < {b}",
    "i32.gt_u": "{a} > {b}",
    "i32.le_u": "{a} <= {b}",
    "i32.ge_u": "{a} >= {b}",
    "i32.lt_s": "S32({a}) < S32({b})",
    "i32.gt_s": "S32({a}) > S32({b})",
    "i32.le_s": "S32({a}) <= S32({b})",
    "i32.ge_s": "S32({a}) >= S32({b})",
    "i64.eq": "{a} == {b}",
    "i64.ne": "{a} != {b}",
    "i64.lt_u": "{a} < {b}",
    "i64.gt_u": "{a} > {b}",
    "i64.le_u": "{a} <= {b}",
    "i64.ge_u": "{a} >= {b}",
    "i64.lt_s": "S64({a}) < S64({b})",
    "i64.gt_s": "S64({a}) > S64({b})",
    "i64.le_s": "S64({a}) <= S64({b})",
    "i64.ge_s": "S64({a}) >= S64({b})",
    "f32.eq": "{a} == {b}",
    "f32.ne": "{a} != {b}",
    "f32.lt": "{a} < {b}",
    "f32.gt": "{a} > {b}",
    "f32.le": "{a} <= {b}",
    "f32.ge": "{a} >= {b}",
    "f64.eq": "{a} == {b}",
    "f64.ne": "{a} != {b}",
    "f64.lt": "{a} < {b}",
    "f64.gt": "{a} > {b}",
    "f64.le": "{a} <= {b}",
    "f64.ge": "{a} >= {b}",
}

_INLINE_UNOPS = {
    "i32.eqz": "(1 if {a} == 0 else 0)",
    "i64.eqz": "(1 if {a} == 0 else 0)",
    "i32.wrap_i64": "{a} & 0xFFFFFFFF",
    "i64.extend_i32_u": "{a} & 0xFFFFFFFF",
}

_TRAPPING_BINOPS = frozenset(
    (
        "i32.div_s",
        "i32.div_u",
        "i32.rem_s",
        "i32.rem_u",
        "i64.div_s",
        "i64.div_u",
        "i64.rem_s",
        "i64.rem_u",
    )
)


def _trapping_unop(name: Optional[str]) -> bool:
    # Non-saturating float→int truncation traps on NaN / out-of-range.
    return name is None or ("trunc_f" in name and "sat" not in name)


#: callable identity -> opcode name (shared callables share semantics)
_BINOP_NAMES: Dict[object, str] = {}
for _name, _fn in BINOPS.items():
    _BINOP_NAMES.setdefault(_fn, _name)
_CMP_NAMES: Dict[object, str] = {}
for _name, _fn in CMPOPS.items():
    _CMP_NAMES.setdefault(_fn, _name)
_UNOP_NAMES: Dict[object, str] = {}
for _name, _fn in UNOPS.items():
    _UNOP_NAMES.setdefault(_fn, _name)

#: bail out of closure compilation above this many flat entries — the
#: generated if/elif dispatch chain would stop paying for itself
_MAX_CLOSURE_ENTRIES = 4000

_OOB = "out of bounds memory access"


class _ClosureCompiler:
    """Compile one specialized flat function to an exec'd Python closure.

    The closure signature is ``_spec(interp, frame, **bound)`` and its
    return value is the activation's result list. Stack slots live in
    Python locals ``s0..sN`` addressed by *absolute static height*
    (heights are propagated from pc 0 and must be consistent at every
    join — a conflict aborts compilation, keeping the function on flat
    bytecode). Locals live in ``l0..lK`` and are never written back:
    frames are per-activation and nothing outside the activation reads
    them. Control flow is a ``while True`` loop over an ``if pc ==``
    chain of basic blocks.

    Instruction accounting matches the flat loop exactly: weights
    accumulate into a local ``_n`` (flushed by ``finally``), and the
    pending count is flushed *before* any statement that can raise —
    the trapping instruction is charged, later ones are not, same as
    the reference.

    Direct calls carry a per-site cell ``[instance, fi, closure,
    defaults]`` guarded on caller-instance identity: a hit calls the
    callee closure without going through ``_call_wasm``. Closures run
    only in unmetered activations (the interpreter deopts metered calls
    to flat bytecode), so the fast path never touches fuel.
    """

    def __init__(self, module: Module, func: Function, spec: PreparedFunction):
        self.code = spec.code
        self.n_results = spec.n_results
        self.sigs = _func_signatures(module)
        ft = module.types[func.type_idx]
        self.n_locals = len(ft.params) + len(spec.local_defaults)
        self.name = spec.name or "fn"
        self.end_pc = len(spec.code) - 1
        if not spec.code or spec.code[self.end_pc][0] is not flat.h_end:
            raise _Unsupported("no terminal h_end")
        if len(spec.code) > _MAX_CLOSURE_ENTRIES:
            raise _Unsupported("function too large")
        self.binds: Dict[str, object] = {}
        self._bind_ids: Dict[int, str] = {}
        self.heights: Dict[int, int] = {}
        self.leaders: Set[int] = set()
        self.uses_memory = False

    # -- binding ------------------------------------------------------------

    def _bind(self, obj, prefix: str) -> str:
        key = id(obj)
        name = self._bind_ids.get(key)
        if name is None:
            name = f"{prefix}{len(self.binds)}"
            self._bind_ids[key] = name
            self.binds[name] = obj
        return name

    def _lit(self, value) -> str:
        if isinstance(value, int):
            return repr(value)
        return self._bind(value, "K")  # floats: nan/inf have no literal

    # -- CFG ----------------------------------------------------------------

    def _delta(self, handler, args) -> int:
        delta = _SIMPLE_DELTAS.get(handler)
        if delta is not None:
            return delta
        if handler is flat.h_call:
            idx, n = args
            return len(self.sigs[idx].results) - n
        if handler is h_call_indirect_ic or handler is flat.h_call_indirect:
            ft = args[0]
            return len(ft.results) - len(ft.params) - 1
        if handler is flat.h_nop:
            return 0
        raise _Unsupported(
            f"handler {getattr(handler, '__name__', handler)!r}"
        )

    def _succ(self, pc: int, h: int):
        handler, args, _w = self.code[pc]
        if (
            handler is flat.h_end
            or handler is flat.h_return
            or handler is flat.h_unreachable
        ):
            return []
        if handler is flat.h_goto:
            return [(args, h)]
        if handler is flat.h_if or handler is flat.h_br_if:
            return [(args, h - 1), (pc + 1, h - 1)]
        if handler is flat.h_br_adjust:
            return [(args[0], args[1])]
        if handler is flat.h_br_if_adjust:
            return [(args[0], args[1]), (pc + 1, h - 1)]
        if handler is flat.h_cmp_br_if:
            return [(args[1], h - 2), (pc + 1, h - 2)]
        if handler is flat.h_br_table:
            table, default = args
            out = []
            for target, want, _arity in table + (default,):
                if want < 0:
                    raise _Unsupported("br_table without static height")
                out.append((target, want))
            return out
        return [(pc + 1, h + self._delta(handler, args))]

    def _analyze(self) -> None:
        self.heights[0] = 0
        reachable: Set[int] = set()
        work = [0]
        while work:
            pc = work.pop()
            if pc in reachable:
                continue
            reachable.add(pc)
            handler = self.code[pc][0]
            if handler in _MEMORY_HANDLERS:
                self.uses_memory = True
            for target, th in self._succ(pc, self.heights[pc]):
                if th < 0:
                    raise _Unsupported("negative stack height")
                if target == self.end_pc:
                    continue  # return edges are emitted inline
                known = self.heights.get(target)
                if known is None:
                    self.heights[target] = th
                    work.append(target)
                elif known != th:
                    raise _Unsupported("conflicting stack heights at join")
        self.leaders = {0}
        for pc in reachable:
            if self.code[pc][0] in _CONTROL:
                for target, _th in self._succ(pc, self.heights[pc]):
                    if target != self.end_pc:
                        self.leaders.add(target)

    # -- expression helpers --------------------------------------------------

    def _binop_expr(self, f, a: str, b: str) -> Tuple[str, bool]:
        name = _BINOP_NAMES.get(f)
        template = _INLINE_BINOPS.get(name)
        if template is not None:
            return template.format(a=a, b=b), False
        return (
            f"{self._bind(f, 'F')}({a}, {b})",
            name is None or name in _TRAPPING_BINOPS,
        )

    def _cmp_expr(self, f, a: str, b: str) -> str:
        name = _CMP_NAMES.get(f)
        template = _INLINE_CMPS.get(name)
        if template is not None:
            return template.format(a=a, b=b)
        return f"{self._bind(f, 'F')}({a}, {b})"

    def _unop_expr(self, f, a: str) -> Tuple[str, bool]:
        name = _UNOP_NAMES.get(f)
        template = _INLINE_UNOPS.get(name)
        if template is not None:
            return template.format(a=a), False
        return f"{self._bind(f, 'F')}({a})", _trapping_unop(name)

    def _ret(self, h: int) -> str:
        r = self.n_results
        if r == 0:
            return "return []"
        values = ", ".join(f"s{h - r + k}" for k in range(r))
        return f"return [{values}]"

    # -- memory helpers ------------------------------------------------------

    def _load_stmts(self, addr: str, off: int, width: int, packer: Optional[str],
                    signed: bool, bits: int, dst: str, checked: bool):
        """Emit one load. ``packer`` is LD32/LD64/LF32/LF64 or ``None``
        for the narrow int path."""
        expr = f"{addr} + {off}" if off else addr
        if checked:
            stmts = [f"_a = {expr}"]
            stmts.append(
                f"if _a < 0 or _a + {width} > len(data): raise WT({_OOB!r})"
            )
            expr = "_a"
        else:
            stmts = []
        if packer is not None:
            stmts.append(f"{dst} = {packer}(data, {expr})[0]")
            return stmts
        if not checked:
            stmts.append(f"_a = {expr}")
        stmts.append(f"_v = int.from_bytes(data[_a:_a + {width}], 'little')")
        if signed:
            stmts.append(f"{dst} = SE(_v, {width * 8}, {bits})")
        else:
            stmts.append(f"{dst} = _v")
        return stmts

    def _store_stmts(self, addr: str, off: int, width: int,
                     packer: Optional[str], value: str, checked: bool):
        expr = f"{addr} + {off}" if off else addr
        stmts = []
        if checked:
            stmts.append(f"_a = {expr}")
            stmts.append(
                f"if _a < 0 or _a + {width} > len(data): raise WT({_OOB!r})"
            )
            expr = "_a"
        if packer == "ST32":
            stmts.append(f"ST32(data, {expr}, {value} & 0xFFFFFFFF)")
        elif packer == "ST64":
            stmts.append(f"ST64(data, {expr}, {value} & 0xFFFFFFFFFFFFFFFF)")
        elif packer is not None:  # SF32 / SF64
            stmts.append(f"{packer}(data, {expr}, {value})")
        else:
            if not checked:
                stmts.append(f"_a = {expr}")
            mask = (1 << (width * 8)) - 1
            stmts.append(
                f"data[_a:_a + {width}] = ({value} & {mask})"
                f".to_bytes({width}, 'little')"
            )
        return stmts

    def _call_stmts(self, idx: int, n: int, h: int):
        """Direct ``call``: per-site cell fast path + generic fallback."""
        base = h - n
        results = len(self.sigs[idx].results)
        args_list = ", ".join(f"s{base + k}" for k in range(n))
        cell = self._bind([None, None, None, None, None, None], "D")
        stmts = [
            f"_d = {cell}",
            "if inst is _d[0]:",
            "    _fi = _d[1]",
            "    _cc = _d[2]",
            "else:",
            f"    _fi = store.funcs[inst.func_addrs[{idx}]]",
            "    _cc = None",
            "    if _fi.host_fn is None:",
            "        _pp = _fi.code.prepared",
            "        if _pp is not None and _pp.compiled is not None:",
            "            _m = _fi.module",
            "            _mm = _m.mem0",
            "            if _mm is None and _m.mem_addrs:",
            "                _mm = _m.mem0 = store.mems[_m.mem_addrs[0]]",
            "            _cc = _pp.compiled",
            "            _d[1] = _fi",
            "            _d[2] = _cc",
            "            _d[3] = list(_pp.local_defaults)",
            "            _d[4] = _m",
            "            _d[5] = _mm",
            "            _d[0] = inst",
            # The cell fast path skips _call_wasm, which is where the
            # profiler hangs its enter/exit hooks — so profiled
            # activations take the generic path to keep frame
            # attribution complete (profiling is opt-in; the extra
            # attribute check is the only cost when it is off).
            "if _cc is not None and interp.profiler is None:",
            "    if interp._depth >= interp.max_call_depth:"
            " raise EE('call stack exhausted')",
            "    interp._depth += 1",
            "    try:",
            f"        _r = _cc(interp, FR([{args_list}] + _d[3], _d[4], _d[5]))",
            "    finally:",
            "        interp._depth -= 1",
            "elif _fi.host_fn is None:",
            f"    _r = interp._call_wasm(_fi, [{args_list}])",
            "else:",
            f"    _r = _fi.host_fn({args_list})",
        ]
        for k in range(results):
            stmts.append(f"s{base + k} = _r[{k}]")
        return stmts, base + results

    def _call_indirect_stmts(self, expected, n: int, cell, h: int):
        base = h - 1 - n
        results = len(expected.results)
        args_list = ", ".join(f"s{base + k}" for k in range(n))
        et = self._bind(expected, "ET")
        cc = self._bind(cell, "C")
        stmts = [
            "_t = store.tables[inst.table_addrs[0]]",
            "_e = _t.elements",
            f"_i = s{h - 1}",
            "if _i < 0 or _i >= len(_e): raise WT('undefined element')",
            "_a = _e[_i]",
            "if _a is None: raise WT('uninitialized element')",
            f"_c = {cc}",
            "if _c[0] is _t and _c[1] == _a:",
            "    _fi = _c[2]",
            "else:",
            "    _fi = store.funcs[_a]",
            f"    if _fi.type != {et}: TMISS({et}, _fi.type)",
            "    MISS()",
            "    _c[0] = _t",
            "    _c[1] = _a",
            "    _c[2] = _fi",
            "if _fi.host_fn is None:",
            f"    _r = interp._call_wasm(_fi, [{args_list}])",
            "else:",
            f"    _r = _fi.host_fn({args_list})",
        ]
        for k in range(results):
            stmts.append(f"s{base + k} = _r[{k}]")
        return stmts, base + results

    # -- per-entry emission --------------------------------------------------

    def _emit_simple(self, handler, args, h: int):
        """Return ``(trapping, stmts, new_height)`` for a non-control entry."""
        if handler is flat.h_nop:
            return False, [], h
        if handler is flat.h_local_get:
            return False, [f"s{h} = l{args}"], h + 1
        if handler is flat.h_local_set:
            return False, [f"l{args} = s{h - 1}"], h - 1
        if handler is flat.h_local_tee:
            return False, [f"l{args} = s{h - 1}"], h
        if handler is flat.h_const:
            return False, [f"s{h} = {self._lit(args)}"], h + 1
        if handler is flat.h_drop:
            return False, [], h - 1
        if handler is flat.h_select:
            return False, [f"if not s{h - 1}: s{h - 3} = s{h - 2}"], h - 2
        if handler is flat.h_binop:
            expr, trapping = self._binop_expr(args, f"s{h - 2}", f"s{h - 1}")
            return trapping, [f"s{h - 2} = {expr}"], h - 1
        if handler is flat.h_cmp:
            cond = self._cmp_expr(args, f"s{h - 2}", f"s{h - 1}")
            return False, [f"s{h - 2} = 1 if {cond} else 0"], h - 1
        if handler is flat.h_unop:
            expr, trapping = self._unop_expr(args, f"s{h - 1}")
            return trapping, [f"s{h - 1} = {expr}"], h
        if handler is flat.h_global_get:
            return (
                False,
                [f"s{h} = store.globals[inst.global_addrs[{args}]].value"],
                h + 1,
            )
        if handler is flat.h_global_set:
            return (
                True,  # traps on immutable globals
                [f"store.globals[inst.global_addrs[{args}]].set(s{h - 1})"],
                h - 1,
            )
        if handler is flat.h_lgg_binop:
            i, j, f = args
            expr, trapping = self._binop_expr(f, f"l{i}", f"l{j}")
            return trapping, [f"s{h} = {expr}"], h + 1
        if handler is flat.h_lgg_cmp:
            i, j, f = args
            cond = self._cmp_expr(f, f"l{i}", f"l{j}")
            return False, [f"s{h} = 1 if {cond} else 0"], h + 1
        if handler is flat.h_const_binop:
            c, f = args
            expr, trapping = self._binop_expr(f, f"s{h - 1}", self._lit(c))
            return trapping, [f"s{h - 1} = {expr}"], h
        if handler is flat.h_const_cmp:
            c, f = args
            cond = self._cmp_expr(f, f"s{h - 1}", self._lit(c))
            return False, [f"s{h - 1} = 1 if {cond} else 0"], h
        if handler is flat.h_lg_i32_load:
            i, off = args
            return (
                True,
                self._load_stmts(f"l{i}", off, 4, "LD32", False, 32,
                                 f"s{h}", True),
                h + 1,
            )
        if handler is flat.h_lg_load:
            i, off, width, signed, bits, isfloat = args
            packer = (
                ("LF32" if bits == 32 else "LF64") if isfloat else None
            )
            return (
                True,
                self._load_stmts(f"l{i}", off, width, packer, signed, bits,
                                 f"s{h}", True),
                h + 1,
            )
        for table, checked in ((_CHECKED_LOADS, True),):
            spec = table.get(handler)
            if spec is not None:
                width, _un = spec
                packer = {4: "LD32", 8: "LD64"}[width]
                if handler is flat.h_f32_load:
                    packer = "LF32"
                elif handler is flat.h_f64_load:
                    packer = "LF64"
                return (
                    True,
                    self._load_stmts(f"s{h - 1}", args, width, packer,
                                     False, 0, f"s{h - 1}", True),
                    h,
                )
        if handler in (u_i32_load, u_i64_load, u_f32_load, u_f64_load):
            packer = {
                u_i32_load: "LD32",
                u_i64_load: "LD64",
                u_f32_load: "LF32",
                u_f64_load: "LF64",
            }[handler]
            width = 8 if handler in (u_i64_load, u_f64_load) else 4
            return (
                False,
                self._load_stmts(f"s{h - 1}", args, width, packer,
                                 False, 0, f"s{h - 1}", False),
                h,
            )
        if handler is flat.h_loadn or handler is u_loadn:
            off, width, signed, bits = args
            return (
                handler is flat.h_loadn,
                self._load_stmts(f"s{h - 1}", off, width, None, signed, bits,
                                 f"s{h - 1}", handler is flat.h_loadn),
                h,
            )
        store_packers = {
            flat.h_i32_store: ("ST32", 4, True),
            flat.h_i64_store: ("ST64", 8, True),
            flat.h_f32_store: ("SF32", 4, True),
            flat.h_f64_store: ("SF64", 8, True),
            u_i32_store: ("ST32", 4, False),
            u_i64_store: ("ST64", 8, False),
            u_f32_store: ("SF32", 4, False),
            u_f64_store: ("SF64", 8, False),
        }
        spec = store_packers.get(handler)
        if spec is not None:
            packer, width, checked = spec
            return (
                checked,
                self._store_stmts(f"s{h - 2}", args, width, packer,
                                  f"s{h - 1}", checked),
                h - 2,
            )
        if handler is flat.h_storen or handler is u_storen:
            off, width = args
            checked = handler is flat.h_storen
            return (
                checked,
                self._store_stmts(f"s{h - 2}", off, width, None,
                                  f"s{h - 1}", checked),
                h - 2,
            )
        if handler is flat.h_memory_size:
            return False, [f"s{h} = len(data) // {PAGE_SIZE}"], h + 1
        if handler is flat.h_memory_grow:
            return (
                False,
                [f"s{h - 1} = mem.grow(s{h - 1}) & 0xFFFFFFFF"],
                h,
            )
        if handler is flat.h_memory_fill:
            return (
                True,
                [
                    f"_c = s{h - 1}",
                    f"if s{h - 3} + _c > len(data): raise WT({_OOB!r})",
                    f"data[s{h - 3}:s{h - 3} + _c] ="
                    f" bytes([s{h - 2} & 0xFF]) * _c",
                ],
                h - 3,
            )
        if handler is flat.h_memory_copy:
            return (
                True,
                [
                    f"_c = s{h - 1}",
                    f"if s{h - 2} + _c > len(data) or s{h - 3} + _c >"
                    f" len(data): raise WT({_OOB!r})",
                    f"data[s{h - 3}:s{h - 3} + _c] ="
                    f" data[s{h - 2}:s{h - 2} + _c]",
                ],
                h - 3,
            )
        if handler is flat.h_memory_init:
            return (
                True,
                [
                    f"_p = store.datas[inst.data_addrs[{args}]]",
                    "if _p is None:",
                    f"    if s{h - 1} or s{h - 2}: raise WT({_OOB!r})",
                    "    _p = b''",
                    f"if s{h - 2} + s{h - 1} > len(_p) or s{h - 3} +"
                    f" s{h - 1} > len(data): raise WT({_OOB!r})",
                    f"data[s{h - 3}:s{h - 3} + s{h - 1}] ="
                    f" _p[s{h - 2}:s{h - 2} + s{h - 1}]",
                ],
                h - 3,
            )
        if handler is flat.h_data_drop:
            return (
                False,
                [f"store.datas[inst.data_addrs[{args}]] = None"],
                h,
            )
        if handler is flat.h_call:
            idx, n = args
            stmts, new_h = self._call_stmts(idx, n, h)
            return True, stmts, new_h
        if handler is h_call_indirect_ic:
            expected, n, cell = args
            stmts, new_h = self._call_indirect_stmts(expected, n, cell, h)
            return True, stmts, new_h
        if handler is flat.h_call_indirect:
            expected, n = args
            stmts, new_h = self._call_indirect_stmts(
                expected, n, [None, -1, None], h
            )
            return True, stmts, new_h
        raise _Unsupported(
            f"handler {getattr(handler, '__name__', handler)!r}"
        )

    # -- control emission ----------------------------------------------------

    def _jump(self, target: int, h: int, emit, indent: int) -> None:
        if target == self.end_pc:
            emit(self._ret(h), indent)
        else:
            emit(f"pc = {target}", indent)
            emit("continue", indent)

    def _moves(self, h: int, want: int, arity: int, emit, indent: int) -> None:
        """Register moves implementing the branch stack repair: slide the
        ``arity`` carried values down to the target height."""
        if h == want:
            return
        for k in range(arity):
            emit(f"s{want - arity + k} = s{h - arity + k}", indent)

    def _emit_control(self, pc, handler, args, h, emit) -> Optional[int]:
        """Emit a control entry; returns the fallthrough height, or
        ``None`` for terminal control."""
        if handler is flat.h_end or handler is flat.h_return:
            emit(self._ret(h), 0)
            return None
        if handler is flat.h_unreachable:
            emit("raise WT('unreachable executed')", 0)
            return None
        if handler is flat.h_goto:
            self._jump(args, h, emit, 0)
            return None
        if handler is flat.h_if:
            emit(f"if not s{h - 1}:", 0)
            self._jump(args, h - 1, emit, 1)
            return h - 1
        if handler is flat.h_br_if:
            emit(f"if s{h - 1}:", 0)
            self._jump(args, h - 1, emit, 1)
            return h - 1
        if handler is flat.h_cmp_br_if:
            f, target = args
            cond = self._cmp_expr(f, f"s{h - 2}", f"s{h - 1}")
            emit(f"if {cond}:", 0)
            self._jump(target, h - 2, emit, 1)
            return h - 2
        if handler is flat.h_br_adjust:
            target, want, arity = args
            self._moves(h, want, arity, emit, 0)
            self._jump(target, want, emit, 0)
            return None
        if handler is flat.h_br_if_adjust:
            target, want, arity = args
            emit(f"if s{h - 1}:", 0)
            self._moves(h - 1, want, arity, emit, 1)
            self._jump(target, want, emit, 1)
            return h - 1
        if handler is flat.h_br_table:
            table, default = args
            emit(f"_i = s{h - 1}", 0)
            for ci, (target, want, arity) in enumerate(table):
                emit(f"{'if' if ci == 0 else 'elif'} _i == {ci}:", 0)
                self._moves(h - 1, want, arity, emit, 1)
                self._jump(target, want, emit, 1)
            target, want, arity = default
            if table:
                emit("else:", 0)
                self._moves(h - 1, want, arity, emit, 1)
                self._jump(target, want, emit, 1)
            else:
                self._moves(h - 1, want, arity, emit, 0)
                self._jump(target, want, emit, 0)
            return None
        raise _Unsupported(
            f"control {getattr(handler, '__name__', handler)!r}"
        )

    def _emit_block(self, leader: int, out: List[str]) -> None:
        pc = leader
        h = self.heights[leader]
        pending = 0

        def emit(stmt: str, extra: int = 0) -> None:
            out.append(" " * (16 + 4 * extra) + stmt)

        while True:
            handler, args, weight = self.code[pc]
            if handler in _CONTROL:
                total = pending + weight
                if total:
                    emit(f"_n += {total}")
                pending = 0
                h_after = self._emit_control(pc, handler, args, h, emit)
                if h_after is None:
                    return
                h = h_after
            else:
                trapping, stmts, h_after = self._emit_simple(handler, args, h)
                if trapping:
                    total = pending + weight
                    if total:
                        emit(f"_n += {total}")
                    pending = 0
                else:
                    pending += weight
                for stmt in stmts:
                    emit(stmt)
                h = h_after
            pc += 1
            if pc in self.leaders:
                if pending:
                    emit(f"_n += {pending}")
                emit(f"pc = {pc}")
                emit("continue")
                return

    # -- top level -----------------------------------------------------------

    def compile(self):
        # Deferred import: interpreter.py imports this module at load
        # time (for the metered-deopt counter); binding Frame lazily
        # keeps the import graph acyclic.
        from repro.wasm.runtime.interpreter import Frame

        self._analyze()
        self.binds.update(
            WT=WasmTrap,
            EE=ExhaustionError,
            FR=Frame,
            SE=V.sign_extend,
            S32=V.signed32,
            S64=V.signed64,
            LD32=_U32.unpack_from,
            LD64=_U64.unpack_from,
            LF32=_F32.unpack_from,
            LF64=_F64.unpack_from,
            ST32=_U32.pack_into,
            ST64=_U64.pack_into,
            SF32=_F32.pack_into,
            SF64=_F64.pack_into,
            MISS=_IC_MISS.inc,
            TMISS=_ic_type_mismatch,
        )
        body: List[str] = []
        for bi, leader in enumerate(sorted(self.leaders)):
            body.append(
                f"            {'if' if bi == 0 else 'elif'} pc == {leader}:"
            )
            self._emit_block(leader, body)
        # Bound objects ride in as keyword defaults so lookups inside the
        # closure are LOAD_FAST, not module-global dict probes.
        params = "".join(f", {k}={k}" for k in self.binds)
        lines = [f"def _spec(interp, frame{params}):"]
        if self.n_locals:
            lines.append("    loc = frame.locals")
            for i in range(self.n_locals):
                lines.append(f"    l{i} = loc[{i}]")
        lines.append("    store = interp.store")
        lines.append("    inst = frame.instance")
        if self.uses_memory:
            lines.append("    mem = frame.mem")
            lines.append("    data = mem.data")
        lines.append("    _n = 0")
        lines.append("    try:")
        lines.append("        pc = 0")
        lines.append("        while True:")
        lines.extend(body)
        lines.append("    finally:")
        lines.append("        interp.instructions_executed += _n")
        source = "\n".join(lines)
        namespace = dict(self.binds)
        exec(compile(source, f"<specialized:{self.name}>", "exec"), namespace)
        fn = namespace["_spec"]
        fn.__specialized_source__ = source  # introspection / tests
        return fn


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


class SpecializeReport:
    """Per-module pass statistics (tests and `repro inspect`)."""

    __slots__ = ("folded", "fused", "elided", "ic_sites", "compiled", "bytecode")

    def __init__(self) -> None:
        self.folded = 0
        self.fused = 0
        self.elided = 0
        self.ic_sites = 0
        self.compiled = 0
        self.bytecode = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


def _specialize_code(module, pf, fold_map, mem_min, report):
    entries = list(pf.code)
    targets = _branch_targets(pf.code)
    for pc, (handler, args, weight) in enumerate(entries):
        if handler is flat.h_global_get and args in fold_map:
            entries[pc] = (flat.h_const, fold_map[args], weight)
            report.folded += 1
    entries, targets, fused = _peephole(entries, targets)
    report.fused += fused
    entries, elided = _elide_bounds(module, entries, targets, mem_min)
    report.elided += elided
    entries, ic_sites = _install_ics(entries)
    report.ic_sites += ic_sites
    code = tuple(entries)
    total = sum(w for _h, _a, w in code)
    assert total == pf.source_instrs, (
        f"specialization changed instruction accounting for {pf.name!r}: "
        f"{total} != {pf.source_instrs}"
    )
    return code


def specialize_module(
    module: Module,
    mode: Optional[str] = None,
    report: Optional[SpecializeReport] = None,
) -> SpecializedModule:
    """Specialize every defined function of ``module``.

    Returns a digest-cacheable :class:`SpecializedModule`; call
    ``.attach(module)`` to activate it (mirrors ``PreparedModule``).
    Already-specialized attachments are unwrapped through ``fallback``
    first, so re-specializing is idempotent, and any per-function pass
    failure falls back to the unspecialized prepared code (counted as
    outcome ``failed``) — specialization can lose performance, never
    correctness.
    """
    mode = specialize_mode() if mode is None else mode
    if mode not in ("on", "bytecode"):
        raise ValueError(f"cannot specialize with mode {mode!r}")
    started = time.perf_counter()
    if report is None:
        report = SpecializeReport()
    fold_map = _foldable_globals(module)
    mem_min = _memory_min_bytes(module)
    functions: List[PreparedFunction] = []
    for func in module.funcs:
        pf = func.prepared
        base = getattr(pf, "fallback", None)
        if base is not None:
            pf = base
        if pf is None:
            pf = prepare_function(module, func)
            func.prepared = pf
        try:
            code = _specialize_code(module, pf, fold_map, mem_min, report)
            sf = SpecializedFunction(code, pf)
            if mode == "on":
                try:
                    sf.compiled = _ClosureCompiler(module, func, sf).compile()
                except _Unsupported:
                    sf.compiled = None
        except Exception:
            _FUNCS_TOTAL.labels("failed").inc()
            functions.append(pf)
            continue
        if sf.compiled is not None:
            report.compiled += 1
            _FUNCS_TOTAL.labels("compiled").inc()
        else:
            report.bytecode += 1
            _FUNCS_TOTAL.labels("bytecode").inc()
        functions.append(sf)
    _PASS_SECONDS.observe(time.perf_counter() - started)
    return SpecializedModule(functions, mode)


def specialize_counts() -> Dict[str, int]:
    """Functional read of the tier's counters (tests, `repro inspect`)."""
    return {
        "functions_compiled": int(_FUNCS_TOTAL.labels("compiled").value),
        "functions_bytecode": int(_FUNCS_TOTAL.labels("bytecode").value),
        "functions_failed": int(_FUNCS_TOTAL.labels("failed").value),
        "deopts_ic_miss": int(_IC_MISS.value),
        "deopts_metered": int(METERED_DEOPT.value),
    }
