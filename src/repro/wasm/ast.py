"""Module AST shared by the WAT assembler, binary codec, and interpreter.

Instructions are structured: ``block``/``loop``/``if`` carry nested bodies
rather than relying on ``end`` delimiters, which keeps the validator and
interpreter free of label-matching bookkeeping. The binary encoder emits the
flat form, and the decoder rebuilds the structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.wasm.types import FuncType, GlobalType, MemoryType, TableType, ValType

# A block type is: None (empty), a single result ValType, or a type index
# (multi-value via the type section).
BlockType = Union[None, ValType, int]


@dataclass
class Instr:
    """One instruction.

    ``args`` holds immediates in a canonical shape per immediate kind:
      * ``IDX`` → ``(index,)``
      * ``MEMARG`` → ``(align, offset)``
      * ``BR_TABLE`` → ``(labels_tuple, default)``
      * ``CALL_INDIRECT`` → ``(type_index,)``
      * const → ``(value,)``
    """

    op: str
    args: Tuple = ()
    blocktype: BlockType = None
    body: List["Instr"] = field(default_factory=list)
    else_body: List["Instr"] = field(default_factory=list)

    def __repr__(self) -> str:
        parts = [self.op]
        if self.args:
            parts.append(repr(self.args))
        if self.body:
            parts.append(f"body[{len(self.body)}]")
        if self.else_body:
            parts.append(f"else[{len(self.else_body)}]")
        return f"Instr({' '.join(parts)})"


Expr = List[Instr]


@dataclass
class Function:
    """A defined (non-imported) function."""

    type_idx: int
    locals: List[ValType] = field(default_factory=list)
    body: Expr = field(default_factory=list)
    name: Optional[str] = None  # debug name, kept in the custom name section
    # Flat executable form (runtime/compile.py), attached lazily on first
    # call and keyed to this exact object — clear it if `body` is mutated
    # after execution.
    prepared: Optional[object] = field(default=None, repr=False, compare=False)


@dataclass
class Import:
    module: str
    name: str
    kind: str  # "func" | "table" | "mem" | "global"
    desc: Union[int, TableType, MemoryType, GlobalType]  # func: type index


@dataclass
class Export:
    name: str
    kind: str  # "func" | "table" | "mem" | "global"
    index: int


@dataclass
class Global:
    type: GlobalType
    init: Expr = field(default_factory=list)


@dataclass
class ElemSegment:
    """Active element segment seeding a funcref table."""

    table_idx: int
    offset: Expr
    func_indices: List[int] = field(default_factory=list)


@dataclass
class DataSegment:
    """A data segment.

    *Active* segments (``passive=False``) are copied into linear memory
    at instantiation; *passive* segments (bulk-memory extension) sit in
    the store until ``memory.init`` copies from them or ``data.drop``
    releases them.
    """

    mem_idx: int
    offset: Expr
    data: bytes = b""
    passive: bool = False


@dataclass
class CustomSection:
    name: str
    payload: bytes


@dataclass
class Module:
    """A decoded/parsed module, mirroring the section structure."""

    types: List[FuncType] = field(default_factory=list)
    imports: List[Import] = field(default_factory=list)
    funcs: List[Function] = field(default_factory=list)
    tables: List[TableType] = field(default_factory=list)
    mems: List[MemoryType] = field(default_factory=list)
    globals: List[Global] = field(default_factory=list)
    exports: List[Export] = field(default_factory=list)
    start: Optional[int] = None
    elems: List[ElemSegment] = field(default_factory=list)
    datas: List[DataSegment] = field(default_factory=list)
    customs: List[CustomSection] = field(default_factory=list)
    name: Optional[str] = None

    # -- index-space helpers (imports precede definitions) -------------------

    def imported(self, kind: str) -> List[Import]:
        return [imp for imp in self.imports if imp.kind == kind]

    def num_imported_funcs(self) -> int:
        return sum(1 for imp in self.imports if imp.kind == "func")

    def func_type(self, func_idx: int) -> FuncType:
        """Signature of function ``func_idx`` in the joint index space."""
        n_imp = 0
        for imp in self.imports:
            if imp.kind == "func":
                if n_imp == func_idx:
                    return self.types[imp.desc]  # type: ignore[index]
                n_imp += 1
        return self.types[self.funcs[func_idx - n_imp].type_idx]

    def total_funcs(self) -> int:
        return self.num_imported_funcs() + len(self.funcs)

    def total_mems(self) -> int:
        return sum(1 for i in self.imports if i.kind == "mem") + len(self.mems)

    def total_tables(self) -> int:
        return sum(1 for i in self.imports if i.kind == "table") + len(self.tables)

    def total_globals(self) -> int:
        return sum(1 for i in self.imports if i.kind == "global") + len(self.globals)

    def add_type(self, ft: FuncType) -> int:
        """Intern a function type, returning its index."""
        for i, existing in enumerate(self.types):
            if existing == ft:
                return i
        self.types.append(ft)
        return len(self.types) - 1

    def export_index(self, name: str, kind: str) -> int:
        for ex in self.exports:
            if ex.name == name and ex.kind == kind:
                return ex.index
        raise KeyError(f"no {kind} export named {name!r}")

    def code_size(self) -> int:
        """Instruction count across all bodies — a proxy for code size used
        by engine resource models (JIT output scales with it)."""

        def count(body: Expr) -> int:
            n = 0
            for ins in body:
                n += 1 + count(ins.body) + count(ins.else_body)
            return n

        return sum(count(f.body) for f in self.funcs)
