"""Tokenizer for the WebAssembly text format.

Produces parens, atoms (keywords, numbers, ``$identifiers``) and decoded
string literals. Handles ``;;`` line comments and nestable ``(; ;)`` block
comments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Union

from repro.errors import WatSyntaxError


class TokKind(enum.Enum):
    LPAREN = "("
    RPAREN = ")"
    ATOM = "atom"
    STRING = "string"


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str  # atom text; for STRING the *decoded* value is in `data`
    line: int
    col: int
    data: bytes = b""

    def __repr__(self) -> str:
        if self.kind is TokKind.STRING:
            return f"Token(str {self.data!r} @{self.line}:{self.col})"
        return f"Token({self.text!r} @{self.line}:{self.col})"


_IDCHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    "!#$%&'*+-./:<=>?@\\^_`|~"
)

_ESCAPES = {
    "n": b"\n",
    "t": b"\t",
    "r": b"\r",
    '"': b'"',
    "'": b"'",
    "\\": b"\\",
}


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def err(msg: str) -> WatSyntaxError:
        return WatSyntaxError(f"{msg} at {line}:{col}")

    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith(";;", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("(;", i):
            depth = 1
            j = i + 2
            while j < n and depth:
                if source.startswith("(;", j):
                    depth += 1
                    j += 2
                elif source.startswith(";)", j):
                    depth -= 1
                    j += 2
                else:
                    if source[j] == "\n":
                        line += 1
                        col = 1
                    j += 1
            if depth:
                raise err("unterminated block comment")
            i = j
            continue
        if ch == "(":
            tokens.append(Token(TokKind.LPAREN, "(", line, col))
            i += 1
            col += 1
            continue
        if ch == ")":
            tokens.append(Token(TokKind.RPAREN, ")", line, col))
            i += 1
            col += 1
            continue
        if ch == '"':
            start_line, start_col = line, col
            i += 1
            col += 1
            buf = bytearray()
            while True:
                if i >= n:
                    raise err("unterminated string")
                c = source[i]
                if c == '"':
                    i += 1
                    col += 1
                    break
                if c == "\n":
                    raise err("newline in string")
                if c == "\\":
                    if i + 1 >= n:
                        raise err("dangling escape")
                    esc = source[i + 1]
                    if esc in _ESCAPES:
                        buf += _ESCAPES[esc]
                        i += 2
                        col += 2
                    elif esc == "u":
                        if i + 2 >= n or source[i + 2] != "{":
                            raise err("bad \\u escape")
                        j = source.index("}", i + 3)
                        cp = int(source[i + 3 : j], 16)
                        buf += chr(cp).encode("utf-8")
                        col += j + 1 - i
                        i = j + 1
                    else:
                        # Two-hex-digit byte escape.
                        pair = source[i + 1 : i + 3]
                        try:
                            buf.append(int(pair, 16))
                        except ValueError:
                            raise err(f"bad escape \\{pair}") from None
                        i += 3
                        col += 3
                else:
                    buf += c.encode("utf-8")
                    i += 1
                    col += 1
            tokens.append(
                Token(TokKind.STRING, "", start_line, start_col, data=bytes(buf))
            )
            continue
        if ch in _IDCHARS:
            start = i
            start_col = col
            while i < n and source[i] in _IDCHARS:
                i += 1
                col += 1
            tokens.append(Token(TokKind.ATOM, source[start:i], line, start_col))
            continue
        raise err(f"unexpected character {ch!r}")

    return tokens
