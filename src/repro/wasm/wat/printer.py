"""WAT printer: module AST → text format.

The inverse of :mod:`repro.wasm.wat.parser`. Output is flat-form WAT with
structured blocks indented, one instruction per line — designed so that
``parse_wat(print_wat(m))`` reproduces a module with identical binary
encoding (asserted by property tests).
"""

from __future__ import annotations

import math
from typing import List

from repro.wasm.ast import Expr, Instr, Module
from repro.wasm.opcodes import Imm, OPCODES
from repro.wasm.types import FuncType, GlobalType, Limits, ValType

_NATURAL_ALIGN = {
    "i32.load": 2, "i64.load": 3, "f32.load": 2, "f64.load": 3,
    "i32.load8_s": 0, "i32.load8_u": 0, "i32.load16_s": 1, "i32.load16_u": 1,
    "i64.load8_s": 0, "i64.load8_u": 0, "i64.load16_s": 1, "i64.load16_u": 1,
    "i64.load32_s": 2, "i64.load32_u": 2,
    "i32.store": 2, "i64.store": 3, "f32.store": 2, "f64.store": 3,
    "i32.store8": 0, "i32.store16": 1,
    "i64.store8": 0, "i64.store16": 1, "i64.store32": 2,
}


def _valtype(t: ValType) -> str:
    return t.name.lower()


def _limits(lim: Limits) -> str:
    if lim.maximum is None:
        return str(lim.minimum)
    return f"{lim.minimum} {lim.maximum}"


def _float_literal(value: float, bits: int) -> str:
    if math.isnan(value):
        return "-nan" if math.copysign(1.0, value) < 0 else "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    # hex float roundtrips exactly for both f32 and f64.
    return value.hex()


def _escape(data: bytes) -> str:
    out = []
    for b in data:
        if b in (0x22, 0x5C):  # " and backslash
            out.append("\\" + chr(b))
        elif 0x20 <= b < 0x7F:
            out.append(chr(b))
        else:
            out.append(f"\\{b:02x}")
    return "".join(out)


def _blocktype(instr: Instr, module: Module) -> str:
    bt = instr.blocktype
    if bt is None:
        return ""
    if isinstance(bt, ValType):
        return f" (result {_valtype(bt)})"
    sig = module.types[bt]
    parts = []
    if sig.params:
        parts.append("(param " + " ".join(_valtype(t) for t in sig.params) + ")")
    if sig.results:
        parts.append("(result " + " ".join(_valtype(t) for t in sig.results) + ")")
    return (" " + " ".join(parts)) if parts else ""


def _instr_lines(instr: Instr, module: Module, indent: int, out: List[str]) -> None:
    pad = "  " * indent
    op = instr.op
    kind = OPCODES[op][1]

    if op in ("block", "loop"):
        out.append(f"{pad}{op}{_blocktype(instr, module)}")
        for child in instr.body:
            _instr_lines(child, module, indent + 1, out)
        out.append(f"{pad}end")
        return
    if op == "if":
        out.append(f"{pad}if{_blocktype(instr, module)}")
        for child in instr.body:
            _instr_lines(child, module, indent + 1, out)
        if instr.else_body:
            out.append(f"{pad}else")
            for child in instr.else_body:
                _instr_lines(child, module, indent + 1, out)
        out.append(f"{pad}end")
        return

    if kind in (Imm.NONE, Imm.MEM, Imm.MEM2):
        out.append(f"{pad}{op}")
    elif kind is Imm.IDX:
        out.append(f"{pad}{op} {instr.args[0]}")
    elif kind is Imm.MEMARG:
        align, offset = instr.args
        parts = [op]
        if offset:
            parts.append(f"offset={offset}")
        if align != _NATURAL_ALIGN[op]:
            parts.append(f"align={1 << align}")
        out.append(pad + " ".join(parts))
    elif kind is Imm.BR_TABLE:
        labels, default = instr.args
        out.append(pad + " ".join([op, *map(str, labels), str(default)]))
    elif kind is Imm.CALL_INDIRECT:
        # Explicit (type N) keeps the exact type index through a
        # print→parse roundtrip even when structural duplicates exist.
        out.append(f"{pad}{op} (type {instr.args[0]})")
    elif kind in (Imm.I32, Imm.I64, Imm.DATA_IDX, Imm.DATA_MEM):
        out.append(f"{pad}{op} {instr.args[0]}")
    elif kind is Imm.F32:
        out.append(f"{pad}{op} {_float_literal(instr.args[0], 32)}")
    elif kind is Imm.F64:
        out.append(f"{pad}{op} {_float_literal(instr.args[0], 64)}")
    else:  # pragma: no cover
        raise ValueError(f"unhandled immediate kind {kind}")


def print_wat(module: Module) -> str:
    """Render ``module`` as WAT text."""
    lines: List[str] = ["(module"]

    for i, ft in enumerate(module.types):
        params = "".join(f" (param {_valtype(t)})" for t in ft.params)
        results = "".join(f" (result {_valtype(t)})" for t in ft.results)
        lines.append(f"  (type (;{i};) (func{params}{results}))")

    for imp in module.imports:
        if imp.kind == "func":
            desc = f"(func (type {imp.desc}))"
        elif imp.kind == "table":
            desc = f"(table {_limits(imp.desc.limits)} funcref)"
        elif imp.kind == "mem":
            desc = f"(memory {_limits(imp.desc.limits)})"
        else:
            gt: GlobalType = imp.desc  # type: ignore[assignment]
            inner = _valtype(gt.valtype)
            desc = f"(global {'(mut ' + inner + ')' if gt.mutable else inner})"
        lines.append(f'  (import "{_escape(imp.module.encode())}" '
                     f'"{_escape(imp.name.encode())}" {desc})')

    for func in module.funcs:
        lines.append(f"  (func (type {func.type_idx})")
        if func.locals:
            lines.append("    (local " + " ".join(_valtype(t) for t in func.locals) + ")")
        for instr in func.body:
            _instr_lines(instr, module, 2, lines)
        lines.append("  )")

    for table in module.tables:
        lines.append(f"  (table {_limits(table.limits)} funcref)")
    for mem in module.mems:
        lines.append(f"  (memory {_limits(mem.limits)})")

    for g in module.globals:
        inner = _valtype(g.type.valtype)
        head = f"(mut {inner})" if g.type.mutable else inner
        init: List[str] = []
        _instr_lines(g.init[0], module, 0, init)
        lines.append(f"  (global {head} ({init[0].strip()}))")

    for ex in module.exports:
        kind = "memory" if ex.kind == "mem" else ex.kind
        lines.append(f'  (export "{_escape(ex.name.encode())}" ({kind} {ex.index}))')

    if module.start is not None:
        lines.append(f"  (start {module.start})")

    for seg in module.elems:
        offset: List[str] = []
        _instr_lines(seg.offset[0], module, 0, offset)
        funcs = " ".join(str(f) for f in seg.func_indices)
        lines.append(f"  (elem ({offset[0].strip()}) {funcs})".rstrip())

    for seg in module.datas:
        if seg.passive:
            lines.append(f'  (data "{_escape(seg.data)}")')
            continue
        offset = []
        _instr_lines(seg.offset[0], module, 0, offset)
        lines.append(f'  (data ({offset[0].strip()}) "{_escape(seg.data)}")')

    lines.append(")")
    return "\n".join(lines)
