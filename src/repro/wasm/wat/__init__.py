"""WebAssembly text format (WAT) assembler.

:func:`parse_wat` turns WAT source into a :class:`repro.wasm.ast.Module`;
:func:`assemble_wat` goes all the way to validated binary bytes. Both the
flat and the folded (s-expression) instruction forms are accepted, as are
symbolic ``$identifiers`` for types, functions, locals, globals, tables,
memories, and labels.
"""

from repro.wasm.wat.parser import parse_wat
from repro.wasm.wat.printer import print_wat


def assemble_wat(source: str, validate: bool = True) -> bytes:
    """Assemble WAT source text into WebAssembly binary bytes."""
    from repro.wasm.encoder import encode_module
    from repro.wasm.validation import validate_module

    module = parse_wat(source)
    if validate:
        validate_module(module)
    return encode_module(module)


__all__ = ["parse_wat", "print_wat", "assemble_wat"]
