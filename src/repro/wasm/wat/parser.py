"""Parser from WAT s-expressions to the module AST.

Supports the common authoring subset used throughout this repository and
its tests:

* module fields: ``type``, ``import``, ``func``, ``table``, ``memory``,
  ``global``, ``export``, ``start``, ``elem``, ``data``;
* inline abbreviations: ``(func (export "f") ...)``,
  ``(memory (export "memory") 1)``, ``(import ...)`` inside definitions,
  anonymous type uses interned into the type section;
* both flat and folded instruction syntax, symbolic labels, and the full
  immediate grammar (``offset=``/``align=`` memargs, typed constants,
  ``br_table`` label lists).
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import WatSyntaxError
from repro.wasm.ast import (
    DataSegment,
    ElemSegment,
    Export,
    Expr,
    Function,
    Global,
    Import,
    Instr,
    Module,
)
from repro.wasm.opcodes import OPCODES, Imm
from repro.wasm.types import (
    FuncType,
    GlobalType,
    Limits,
    MemoryType,
    TableType,
    ValType,
)
from repro.wasm.wat.lexer import TokKind, Token, tokenize

SExpr = Union[Token, List["SExpr"]]

_VALTYPES = {
    "i32": ValType.I32,
    "i64": ValType.I64,
    "f32": ValType.F32,
    "f64": ValType.F64,
}

# log2 of the natural alignment per memory instruction.
_NATURAL_ALIGN = {
    "i32.load": 2, "i64.load": 3, "f32.load": 2, "f64.load": 3,
    "i32.load8_s": 0, "i32.load8_u": 0, "i32.load16_s": 1, "i32.load16_u": 1,
    "i64.load8_s": 0, "i64.load8_u": 0, "i64.load16_s": 1, "i64.load16_u": 1,
    "i64.load32_s": 2, "i64.load32_u": 2,
    "i32.store": 2, "i64.store": 3, "f32.store": 2, "f64.store": 3,
    "i32.store8": 0, "i32.store16": 1,
    "i64.store8": 0, "i64.store16": 1, "i64.store32": 2,
}


def _parse_sexprs(tokens: Sequence[Token]) -> List[SExpr]:
    """Group the token stream into nested lists."""
    stack: List[List[SExpr]] = [[]]
    for tok in tokens:
        if tok.kind is TokKind.LPAREN:
            stack.append([])
        elif tok.kind is TokKind.RPAREN:
            if len(stack) == 1:
                raise WatSyntaxError(f"unbalanced ')' at {tok.line}:{tok.col}")
            done = stack.pop()
            stack[-1].append(done)
        else:
            stack[-1].append(tok)
    if len(stack) != 1:
        raise WatSyntaxError("unbalanced '(' at end of input")
    return stack[0]


def _is_atom(e: SExpr, text: Optional[str] = None) -> bool:
    return isinstance(e, Token) and e.kind is TokKind.ATOM and (
        text is None or e.text == text
    )


def _head(e: SExpr) -> Optional[str]:
    if isinstance(e, list) and e and _is_atom(e[0]):
        return e[0].text  # type: ignore[union-attr]
    return None


# --------------------------------------------------------------------------
# Literals
# --------------------------------------------------------------------------


def parse_int(text: str, bits: int, signed_ok: bool = True) -> int:
    """Parse a WAT integer literal; result is the *signed* value stored in
    const instructions (the binary format uses signed LEB for consts)."""
    raw = text.replace("_", "")
    neg = raw.startswith("-")
    if raw.startswith(("+", "-")):
        raw = raw[1:]
    try:
        if raw.lower().startswith("0x"):
            value = int(raw, 16)
        else:
            value = int(raw, 10)
    except ValueError:
        raise WatSyntaxError(f"bad integer literal {text!r}") from None
    if neg:
        value = -value
    lo, hi_u = -(1 << (bits - 1)), (1 << bits) - 1
    if not (lo <= value <= hi_u):
        raise WatSyntaxError(f"integer {text} out of range for i{bits}")
    # Normalize unsigned-range literals to the signed representative.
    if value > (1 << (bits - 1)) - 1:
        value -= 1 << bits
    return value


def parse_float(text: str, bits: int) -> float:
    raw = text.replace("_", "")
    sign = -1.0 if raw.startswith("-") else 1.0
    body = raw[1:] if raw[:1] in "+-" else raw
    if body == "inf":
        return sign * math.inf
    if body == "nan" or body.startswith("nan:"):
        return math.copysign(math.nan, sign)
    try:
        if body.lower().startswith("0x"):
            # float.fromhex needs a p-exponent; default to p0.
            hex_body = body if "p" in body.lower() else body + "p0"
            value = float.fromhex(hex_body)
        else:
            value = float(body)
    except ValueError:
        raise WatSyntaxError(f"bad float literal {text!r}") from None
    value *= sign
    if bits == 32:
        value = struct.unpack("<f", struct.pack("<f", value))[0]
    return value


# --------------------------------------------------------------------------
# Index spaces
# --------------------------------------------------------------------------


@dataclass
class _Space:
    """One index space with optional $names."""

    names: Dict[str, int] = field(default_factory=dict)
    count: int = 0

    def define(self, name: Optional[str]) -> int:
        idx = self.count
        self.count += 1
        if name is not None:
            if name in self.names:
                raise WatSyntaxError(f"duplicate identifier {name}")
            self.names[name] = idx
        return idx

    def resolve(self, tok: Token, what: str) -> int:
        if tok.text.startswith("$"):
            try:
                return self.names[tok.text]
            except KeyError:
                raise WatSyntaxError(
                    f"unknown {what} {tok.text} at {tok.line}:{tok.col}"
                ) from None
        return parse_int(tok.text, 32) & 0xFFFFFFFF


# --------------------------------------------------------------------------
# The parser
# --------------------------------------------------------------------------


class _ModuleParser:
    def __init__(self) -> None:
        self.module = Module()
        self.types = _Space()
        self.funcs = _Space()
        self.tables = _Space()
        self.mems = _Space()
        self.globals = _Space()
        self.datas = _Space()
        # Resolution of bodies / elem function lists / start is deferred
        # until all index spaces are populated (forward references are
        # legal in WAT).
        self._pending_bodies: List[Tuple[Function, List[SExpr], Dict[str, int]]] = []
        self._pending_elems: List[Tuple[ElemSegment, List[SExpr]]] = []
        self._pending_start: Optional[Token] = None
        self._seen_definition = {"func": False, "table": False, "mem": False, "global": False}

    # -- entry ---------------------------------------------------------------

    def parse(self, fields: List[SExpr]) -> Module:
        for f in fields:
            head = _head(f)
            if head is None:
                raise WatSyntaxError(f"expected module field, got {f!r}")
            handler = getattr(self, f"_field_{head.replace('.', '_')}", None)
            if handler is None:
                raise WatSyntaxError(f"unsupported module field ({head} ...)")
            handler(f)  # type: ignore[arg-type]
        for seg, items in self._pending_elems:
            for e in items:
                if not _is_atom(e):
                    raise WatSyntaxError(f"bad elem function ref {e!r}")
                seg.func_indices.append(self.funcs.resolve(e, "function"))  # type: ignore[arg-type]
        if self._pending_start is not None:
            self.module.start = self.funcs.resolve(self._pending_start, "function")
        for func, body_exprs, local_names in self._pending_bodies:
            func.body = _BodyParser(self, func, local_names).parse(body_exprs)
        return self.module

    # -- helpers ---------------------------------------------------------------

    def _take_name(self, items: List[SExpr], pos: int) -> Tuple[Optional[str], int]:
        if pos < len(items) and _is_atom(items[pos]) and items[pos].text.startswith("$"):  # type: ignore[union-attr]
            return items[pos].text, pos + 1  # type: ignore[union-attr]
        return None, pos

    def _check_imports_precede(self, kind: str) -> None:
        if self._seen_definition.get(kind):
            raise WatSyntaxError("imports must precede definitions")

    def _parse_valtype(self, e: SExpr) -> ValType:
        if _is_atom(e) and e.text in _VALTYPES:  # type: ignore[union-attr]
            return _VALTYPES[e.text]  # type: ignore[union-attr]
        raise WatSyntaxError(f"expected value type, got {e!r}")

    def _parse_limits(self, items: List[SExpr], pos: int) -> Tuple[Limits, int]:
        if pos >= len(items) or not _is_atom(items[pos]):
            raise WatSyntaxError("expected limits")
        minimum = parse_int(items[pos].text, 32) & 0xFFFFFFFF  # type: ignore[union-attr]
        pos += 1
        maximum = None
        if pos < len(items) and _is_atom(items[pos]) and items[pos].text[0].isdigit():  # type: ignore[union-attr]
            maximum = parse_int(items[pos].text, 32) & 0xFFFFFFFF  # type: ignore[union-attr]
            pos += 1
        return Limits(minimum, maximum), pos

    def _parse_typeuse(
        self, items: List[SExpr], pos: int
    ) -> Tuple[int, List[Optional[str]], int]:
        """Parse ``(type $t)? (param ...)* (result ...)*``.

        Returns (type index, parameter names, next position).
        """
        explicit: Optional[int] = None
        params: List[ValType] = []
        param_names: List[Optional[str]] = []
        results: List[ValType] = []

        if pos < len(items) and _head(items[pos]) == "type":
            type_field = items[pos]  # type: ignore[assignment]
            if len(type_field) != 2 or not _is_atom(type_field[1]):
                raise WatSyntaxError("bad (type ...) use")
            explicit = self.types.resolve(type_field[1], "type")  # type: ignore[arg-type]
            pos += 1

        while pos < len(items) and _head(items[pos]) == "param":
            body = items[pos][1:]  # type: ignore[index]
            if body and _is_atom(body[0]) and body[0].text.startswith("$"):  # type: ignore[union-attr]
                params.append(self._parse_valtype(body[1]))
                param_names.append(body[0].text)  # type: ignore[union-attr]
            else:
                for e in body:
                    params.append(self._parse_valtype(e))
                    param_names.append(None)
            pos += 1
        while pos < len(items) and _head(items[pos]) == "result":
            for e in items[pos][1:]:  # type: ignore[index]
                results.append(self._parse_valtype(e))
            pos += 1

        sig = FuncType(tuple(params), tuple(results))
        if explicit is not None:
            if explicit >= len(self.module.types):
                raise WatSyntaxError(f"type index {explicit} out of range")
            if (params or results) and self.module.types[explicit] != sig:
                raise WatSyntaxError(
                    f"inline signature {sig} does not match (type {explicit}) "
                    f"{self.module.types[explicit]}"
                )
            declared = self.module.types[explicit]
            if not param_names:
                param_names = [None] * len(declared.params)
            return explicit, param_names, pos

        idx = self.module.add_type(sig)
        # add_type may intern; _Space count tracks the types list length.
        self.types.count = len(self.module.types)
        return idx, param_names, pos

    # -- module fields -----------------------------------------------------------

    def _field_type(self, f: List[SExpr]) -> None:
        items = f[1:]
        name, pos = self._take_name(items, 0)
        if pos >= len(items) or _head(items[pos]) != "func":
            raise WatSyntaxError("(type ...) requires (func ...)")
        func_form = items[pos]
        params: List[ValType] = []
        results: List[ValType] = []
        for e in func_form[1:]:  # type: ignore[index]
            h = _head(e)
            if h == "param":
                body = e[1:]  # type: ignore[index]
                if body and _is_atom(body[0]) and body[0].text.startswith("$"):  # type: ignore[union-attr]
                    params.append(self._parse_valtype(body[1]))
                else:
                    params.extend(self._parse_valtype(x) for x in body)
            elif h == "result":
                results.extend(self._parse_valtype(x) for x in e[1:])  # type: ignore[index]
            else:
                raise WatSyntaxError(f"bad type member {e!r}")
        self.module.types.append(FuncType(tuple(params), tuple(results)))
        self.types.define(name)

    def _field_import(self, f: List[SExpr]) -> None:
        if len(f) != 4 or not (
            isinstance(f[1], Token) and isinstance(f[2], Token)
        ):
            raise WatSyntaxError("(import \"mod\" \"name\" <desc>)")
        mod = f[1].data.decode("utf-8")  # type: ignore[union-attr]
        item = f[2].data.decode("utf-8")  # type: ignore[union-attr]
        desc = f[3]
        head = _head(desc)
        items = desc[1:]  # type: ignore[index]
        name, pos = self._take_name(items, 0)
        if head == "func":
            self._check_imports_precede("func")
            type_idx, _names, pos = self._parse_typeuse(items, pos)
            self.module.imports.append(Import(mod, item, "func", type_idx))
            self.funcs.define(name)
        elif head == "memory":
            self._check_imports_precede("mem")
            limits, pos = self._parse_limits(items, pos)
            self.module.imports.append(Import(mod, item, "mem", MemoryType(limits)))
            self.mems.define(name)
        elif head == "table":
            self._check_imports_precede("table")
            limits, pos = self._parse_limits(items, pos)
            self.module.imports.append(Import(mod, item, "table", TableType(limits)))
            self.tables.define(name)
        elif head == "global":
            self._check_imports_precede("global")
            gt, pos = self._parse_globaltype(items, pos)
            self.module.imports.append(Import(mod, item, "global", gt))
            self.globals.define(name)
        else:
            raise WatSyntaxError(f"bad import descriptor {desc!r}")

    def _parse_globaltype(self, items: List[SExpr], pos: int) -> Tuple[GlobalType, int]:
        e = items[pos]
        if _head(e) == "mut":
            return GlobalType(self._parse_valtype(e[1]), mutable=True), pos + 1  # type: ignore[index]
        return GlobalType(self._parse_valtype(e), mutable=False), pos + 1

    def _inline_export_import(
        self, items: List[SExpr], pos: int, kind: str, index: int
    ) -> Tuple[Optional[Tuple[str, str]], int]:
        """Handle ``(export "n")*`` and one optional ``(import "m" "n")``."""
        imported = None
        while pos < len(items) and _head(items[pos]) in ("export", "import"):
            e = items[pos]
            if _head(e) == "export":
                export_name = e[1].data.decode("utf-8")  # type: ignore[index,union-attr]
                self.module.exports.append(Export(export_name, kind, index))
            else:
                imported = (
                    e[1].data.decode("utf-8"),  # type: ignore[index,union-attr]
                    e[2].data.decode("utf-8"),  # type: ignore[index,union-attr]
                )
            pos += 1
        return imported, pos

    def _field_func(self, f: List[SExpr]) -> None:
        items = f[1:]
        name, pos = self._take_name(items, 0)
        index = self.funcs.define(name)
        imported, pos = self._inline_export_import(items, pos, "func", index)
        type_idx, param_names, pos = self._parse_typeuse(items, pos)

        if imported is not None:
            self._check_imports_precede("func")
            self.module.imports.append(Import(imported[0], imported[1], "func", type_idx))
            return
        self._seen_definition["func"] = True

        local_names: Dict[str, int] = {}
        for i, pname in enumerate(param_names):
            if pname is not None:
                local_names[pname] = i
        locals_: List[ValType] = []
        n_params = len(self.module.types[type_idx].params)
        while pos < len(items) and _head(items[pos]) == "local":
            body = items[pos][1:]  # type: ignore[index]
            if body and _is_atom(body[0]) and body[0].text.startswith("$"):  # type: ignore[union-attr]
                local_names[body[0].text] = n_params + len(locals_)  # type: ignore[union-attr]
                locals_.append(self._parse_valtype(body[1]))
            else:
                locals_.extend(self._parse_valtype(e) for e in body)
            pos += 1

        func = Function(type_idx, locals_, [], name=name[1:] if name else None)
        self.module.funcs.append(func)
        self._pending_bodies.append((func, items[pos:], local_names))

    def _field_table(self, f: List[SExpr]) -> None:
        items = f[1:]
        name, pos = self._take_name(items, 0)
        index = self.tables.define(name)
        imported, pos = self._inline_export_import(items, pos, "table", index)
        # Inline element form: (table funcref (elem $f1 $f2)) — fixed size.
        if (
            pos < len(items)
            and _is_atom(items[pos], "funcref")
            and pos + 1 < len(items)
            and _head(items[pos + 1]) == "elem"
        ):
            elem_items = items[pos + 1][1:]  # type: ignore[index]
            count = len(elem_items)
            self.module.tables.append(TableType(Limits(count, count)))
            seg = ElemSegment(index, [Instr("i32.const", (0,))], [])
            self._pending_elem_funcs(seg, elem_items)
            self.module.elems.append(seg)
            self._seen_definition["table"] = True
            return
        limits, pos = self._parse_limits(items, pos)
        if pos < len(items) and _is_atom(items[pos], "funcref"):
            pos += 1
        if imported is not None:
            self._check_imports_precede("table")
            self.module.imports.append(
                Import(imported[0], imported[1], "table", TableType(limits))
            )
            return
        self._seen_definition["table"] = True
        self.module.tables.append(TableType(limits))

    def _pending_elem_funcs(self, seg: ElemSegment, items: List[SExpr]) -> None:
        self._pending_elems.append((seg, list(items)))

    def _field_memory(self, f: List[SExpr]) -> None:
        items = f[1:]
        name, pos = self._take_name(items, 0)
        index = self.mems.define(name)
        imported, pos = self._inline_export_import(items, pos, "mem", index)
        # Inline data form: (memory (data "...")) — size derived from data.
        if pos < len(items) and _head(items[pos]) == "data":
            blob = b"".join(
                t.data for t in items[pos][1:]  # type: ignore[index,union-attr]
            )
            pages = (len(blob) + 65535) // 65536
            self.module.mems.append(MemoryType(Limits(pages, pages)))
            self.module.datas.append(
                DataSegment(index, [Instr("i32.const", (0,))], blob)
            )
            self._seen_definition["mem"] = True
            return
        limits, pos = self._parse_limits(items, pos)
        if imported is not None:
            self._check_imports_precede("mem")
            self.module.imports.append(
                Import(imported[0], imported[1], "mem", MemoryType(limits))
            )
            return
        self._seen_definition["mem"] = True
        self.module.mems.append(MemoryType(limits))

    def _field_global(self, f: List[SExpr]) -> None:
        items = f[1:]
        name, pos = self._take_name(items, 0)
        index = self.globals.define(name)
        imported, pos = self._inline_export_import(items, pos, "global", index)
        gt, pos = self._parse_globaltype(items, pos)
        if imported is not None:
            self._check_imports_precede("global")
            self.module.imports.append(Import(imported[0], imported[1], "global", gt))
            return
        self._seen_definition["global"] = True
        init_parser = _BodyParser(self, None, {})
        init = init_parser.parse(items[pos:])
        self.module.globals.append(Global(gt, init))

    def _field_export(self, f: List[SExpr]) -> None:
        if len(f) != 3 or not isinstance(f[1], Token):
            raise WatSyntaxError('(export "name" (<kind> <idx>))')
        export_name = f[1].data.decode("utf-8")  # type: ignore[union-attr]
        desc = f[2]
        head = _head(desc)
        target = desc[1]  # type: ignore[index]
        space = {
            "func": self.funcs,
            "table": self.tables,
            "memory": self.mems,
            "global": self.globals,
        }.get(head or "")
        if space is None or not _is_atom(target):
            raise WatSyntaxError(f"bad export descriptor {desc!r}")
        kind = "mem" if head == "memory" else head
        self.module.exports.append(
            Export(export_name, kind, space.resolve(target, head))  # type: ignore[arg-type]
        )

    def _field_start(self, f: List[SExpr]) -> None:
        if len(f) != 2 or not _is_atom(f[1]):
            raise WatSyntaxError("(start <funcidx>)")
        self._pending_start = f[1]  # type: ignore[assignment]

    def _field_elem(self, f: List[SExpr]) -> None:
        items = f[1:]
        pos = 0
        table_idx = 0
        if pos < len(items) and _is_atom(items[pos]) and items[pos].text.startswith("$"):  # type: ignore[union-attr]
            table_idx = self.tables.resolve(items[pos], "table")  # type: ignore[arg-type]
            pos += 1
        elif pos < len(items) and _is_atom(items[pos]) and items[pos].text[0].isdigit():  # type: ignore[union-attr]
            # Could be a table index; only treat as such when followed by offset.
            if pos + 1 < len(items) and isinstance(items[pos + 1], list):
                table_idx = parse_int(items[pos].text, 32)  # type: ignore[union-attr]
                pos += 1
        offset_expr = self._parse_offset(items, pos)
        pos += 1
        seg = ElemSegment(table_idx, offset_expr, [])
        self._pending_elem_funcs(seg, items[pos:])
        self.module.elems.append(seg)

    def _parse_offset(self, items: List[SExpr], pos: int) -> Expr:
        if pos >= len(items) or not isinstance(items[pos], list):
            raise WatSyntaxError("expected (offset ...) or const expression")
        e = items[pos]
        inner = e[1:] if _head(e) == "offset" else [e]  # type: ignore[index]
        return _BodyParser(self, None, {}).parse(inner)

    def _field_data(self, f: List[SExpr]) -> None:
        items = f[1:]
        name, pos = self._take_name(items, 0)
        self.datas.define(name)
        mem_idx = 0
        if pos < len(items) and _is_atom(items[pos]):
            mem_idx = self.mems.resolve(items[pos], "memory")  # type: ignore[arg-type]
            pos += 1
        # Passive form: only string payloads, no offset expression.
        passive = pos >= len(items) or not isinstance(items[pos], list)
        if passive:
            offset_expr: Expr = []
        else:
            offset_expr = self._parse_offset(items, pos)
            pos += 1
        blob = bytearray()
        for e in items[pos:]:
            if not (isinstance(e, Token) and e.kind is TokKind.STRING):
                raise WatSyntaxError(f"bad data string {e!r}")
            blob += e.data
        self.module.datas.append(
            DataSegment(mem_idx, offset_expr, bytes(blob), passive=passive)
        )


# --------------------------------------------------------------------------
# Instruction bodies
# --------------------------------------------------------------------------


class _BodyParser:
    """Parses a function body (flat + folded forms) with label scoping."""

    def __init__(
        self,
        mod: _ModuleParser,
        func: Optional[Function],
        local_names: Dict[str, int],
    ) -> None:
        self.mod = mod
        self.func = func
        self.local_names = local_names
        self.labels: List[Optional[str]] = []  # innermost last

    # -- public -----------------------------------------------------------

    def parse(self, exprs: List[SExpr]) -> Expr:
        out: Expr = []
        stream = _Stream(exprs)
        while not stream.eof():
            out.extend(self._instr(stream))
        return out

    # -- label handling ------------------------------------------------------

    def _resolve_label(self, tok: Token) -> int:
        if tok.text.startswith("$"):
            for depth, name in enumerate(reversed(self.labels)):
                if name == tok.text:
                    return depth
            raise WatSyntaxError(f"unknown label {tok.text} at {tok.line}:{tok.col}")
        return parse_int(tok.text, 32) & 0xFFFFFFFF

    # -- core dispatch ----------------------------------------------------------

    def _instr(self, stream: "_Stream") -> Expr:
        e = stream.next()
        if isinstance(e, Token):
            return self._flat_instr(e, stream)
        return self._folded(e)

    def _flat_instr(self, tok: Token, stream: "_Stream") -> Expr:
        op = tok.text
        if op in ("block", "loop"):
            return [self._flat_block(op, stream)]
        if op == "if":
            return [self._flat_if(stream)]
        if op in ("end", "else"):
            raise WatSyntaxError(f"unexpected {op} at {tok.line}:{tok.col}")
        return [self._simple(op, tok, stream)]

    def _flat_block(self, op: str, stream: "_Stream") -> Instr:
        label, bt = self._block_header(stream)
        self.labels.append(label)
        body: Expr = []
        while True:
            nxt = stream.peek()
            if _is_atom(nxt, "end"):
                stream.next()
                self._maybe_trailing_label(stream)
                break
            body.extend(self._instr(stream))
        self.labels.pop()
        return Instr(op, blocktype=bt, body=body)

    def _flat_if(self, stream: "_Stream") -> Instr:
        label, bt = self._block_header(stream)
        self.labels.append(label)
        then: Expr = []
        else_body: Expr = []
        target = then
        while True:
            nxt = stream.peek()
            if _is_atom(nxt, "else"):
                stream.next()
                self._maybe_trailing_label(stream)
                target = else_body
                continue
            if _is_atom(nxt, "end"):
                stream.next()
                self._maybe_trailing_label(stream)
                break
            target.extend(self._instr(stream))
        self.labels.pop()
        return Instr("if", blocktype=bt, body=then, else_body=else_body)

    def _maybe_trailing_label(self, stream: "_Stream") -> None:
        nxt = stream.peek()
        if nxt is not None and _is_atom(nxt) and nxt.text.startswith("$"):  # type: ignore[union-attr]
            stream.next()  # `end $label` repetition — ignored

    def _block_header(self, stream: "_Stream"):
        label = None
        nxt = stream.peek()
        if nxt is not None and _is_atom(nxt) and nxt.text.startswith("$"):  # type: ignore[union-attr]
            label = stream.next().text  # type: ignore[union-attr]
        bt = None
        nxt = stream.peek()
        if isinstance(nxt, list) and _head(nxt) == "result":
            results = [self.mod._parse_valtype(x) for x in nxt[1:]]
            stream.next()
            if len(results) == 1:
                bt = results[0]
            elif len(results) > 1:
                bt = self.mod.module.add_type(FuncType((), tuple(results)))
        elif isinstance(nxt, list) and _head(nxt) in ("param", "type"):
            raise WatSyntaxError("block parameters are not supported (MVP blocks)")
        return label, bt

    def _folded(self, e: List[SExpr]) -> Expr:
        if not e or not _is_atom(e[0]):
            raise WatSyntaxError(f"bad folded instruction {e!r}")
        op = e[0].text  # type: ignore[union-attr]
        if op in ("block", "loop"):
            stream = _Stream(e[1:])
            label, bt = self._block_header(stream)
            self.labels.append(label)
            body: Expr = []
            while not stream.eof():
                body.extend(self._instr(stream))
            self.labels.pop()
            return [Instr(op, blocktype=bt, body=body)]
        if op == "if":
            return self._folded_if(e)
        # Generic folded op: (op imm... operand...)
        stream = _Stream(e[1:])
        main = self._simple(op, e[0], stream)  # type: ignore[arg-type]
        out: Expr = []
        while not stream.eof():
            operand = stream.next()
            if not isinstance(operand, list):
                raise WatSyntaxError(
                    f"unexpected atom {operand!r} after immediates of folded {op}"
                )
            out.extend(self._folded(operand))
        out.append(main)
        return out

    def _folded_if(self, e: List[SExpr]) -> Expr:
        stream = _Stream(e[1:])
        label, bt = self._block_header(stream)
        cond: Expr = []
        then: Expr = []
        else_body: Expr = []
        saw_then = False
        while not stream.eof():
            item = stream.next()
            if isinstance(item, list) and _head(item) == "then":
                saw_then = True
                self.labels.append(label)
                sub = _Stream(item[1:])
                while not sub.eof():
                    then.extend(self._instr(sub))
                self.labels.pop()
            elif isinstance(item, list) and _head(item) == "else":
                self.labels.append(label)
                sub = _Stream(item[1:])
                while not sub.eof():
                    else_body.extend(self._instr(sub))
                self.labels.pop()
            elif isinstance(item, list) and not saw_then:
                cond.extend(self._folded(item))
            else:
                raise WatSyntaxError(f"bad clause in folded if: {item!r}")
        if not saw_then:
            raise WatSyntaxError("folded if requires (then ...)")
        out = list(cond)
        out.append(Instr("if", blocktype=bt, body=then, else_body=else_body))
        return out

    # -- leaf instructions --------------------------------------------------------

    def _simple(self, op: str, tok: Token, stream: "_Stream") -> Instr:
        info = OPCODES.get(op)
        if info is None:
            raise WatSyntaxError(f"unknown instruction {op!r} at {tok.line}:{tok.col}")
        kind = info[1]

        if kind is Imm.NONE or kind is Imm.MEM or kind is Imm.MEM2:
            return Instr(op)
        if kind in (Imm.DATA_IDX, Imm.DATA_MEM):
            target = stream.next_atom(f"{op} data index")
            return Instr(op, (self.mod.datas.resolve(target, "data segment"),))
        if kind is Imm.IDX:
            target = stream.next_atom(f"{op} index")
            if op in ("br", "br_if"):
                return Instr(op, (self._resolve_label(target),))
            if op == "call":
                return Instr(op, (self.mod.funcs.resolve(target, "function"),))
            if op.startswith("local."):
                return Instr(op, (self._resolve_local(target),))
            if op.startswith("global."):
                return Instr(op, (self.mod.globals.resolve(target, "global"),))
            return Instr(op, (parse_int(target.text, 32) & 0xFFFFFFFF,))
        if kind is Imm.BR_TABLE:
            labels: List[int] = []
            while True:
                nxt = stream.peek()
                if (
                    nxt is None
                    or not _is_atom(nxt)
                    or not (
                        nxt.text.startswith("$") or nxt.text[0].isdigit()  # type: ignore[union-attr]
                    )
                ):
                    break
                labels.append(self._resolve_label(stream.next()))  # type: ignore[arg-type]
            if not labels:
                raise WatSyntaxError("br_table needs at least a default label")
            return Instr(op, (tuple(labels[:-1]), labels[-1]))
        if kind is Imm.CALL_INDIRECT:
            type_idx, _names, _pos = self.mod._parse_typeuse(stream.rest(), 0)
            stream.skip_typeuse()
            return Instr(op, (type_idx,))
        if kind is Imm.MEMARG:
            return self._memarg(op, stream)
        if kind is Imm.I32:
            return Instr(op, (parse_int(stream.next_atom("i32 literal").text, 32),))
        if kind is Imm.I64:
            return Instr(op, (parse_int(stream.next_atom("i64 literal").text, 64),))
        if kind is Imm.F32:
            return Instr(op, (parse_float(stream.next_atom("f32 literal").text, 32),))
        if kind is Imm.F64:
            return Instr(op, (parse_float(stream.next_atom("f64 literal").text, 64),))
        raise WatSyntaxError(f"unhandled immediate kind for {op}")  # pragma: no cover

    def _resolve_local(self, tok: Token) -> int:
        if tok.text.startswith("$"):
            try:
                return self.local_names[tok.text]
            except KeyError:
                raise WatSyntaxError(
                    f"unknown local {tok.text} at {tok.line}:{tok.col}"
                ) from None
        return parse_int(tok.text, 32) & 0xFFFFFFFF

    def _memarg(self, op: str, stream: "_Stream") -> Instr:
        offset = 0
        align = _NATURAL_ALIGN[op]
        nxt = stream.peek()
        if nxt is not None and _is_atom(nxt) and nxt.text.startswith("offset="):  # type: ignore[union-attr]
            offset = parse_int(stream.next().text[7:], 32) & 0xFFFFFFFF  # type: ignore[union-attr]
            nxt = stream.peek()
        if nxt is not None and _is_atom(nxt) and nxt.text.startswith("align="):  # type: ignore[union-attr]
            raw = parse_int(stream.next().text[6:], 32)  # type: ignore[union-attr]
            if raw <= 0 or raw & (raw - 1):
                raise WatSyntaxError(f"alignment must be a positive power of 2, got {raw}")
            align = raw.bit_length() - 1
        return Instr(op, (align, offset))


class _Stream:
    """Cursor over a list of s-expressions."""

    def __init__(self, items: List[SExpr]) -> None:
        self.items = items
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.items)

    def peek(self) -> Optional[SExpr]:
        return self.items[self.pos] if self.pos < len(self.items) else None

    def next(self) -> SExpr:
        if self.eof():
            raise WatSyntaxError("unexpected end of instruction sequence")
        e = self.items[self.pos]
        self.pos += 1
        return e

    def next_atom(self, what: str) -> Token:
        e = self.next()
        if not _is_atom(e):
            raise WatSyntaxError(f"expected {what}, got {e!r}")
        return e  # type: ignore[return-value]

    def rest(self) -> List[SExpr]:
        return self.items[self.pos :]

    def skip_typeuse(self) -> None:
        while not self.eof() and _head(self.peek()) in ("type", "param", "result"):
            self.pos += 1


def parse_wat(source: str) -> Module:
    """Parse WAT text into a :class:`Module` AST."""
    forms = _parse_sexprs(tokenize(source))
    if len(forms) == 1 and _head(forms[0]) == "module":
        fields = forms[0][1:]  # type: ignore[index]
        # Optional module name.
        name = None
        if fields and _is_atom(fields[0]) and fields[0].text.startswith("$"):  # type: ignore[union-attr]
            name = fields[0].text[1:]  # type: ignore[union-attr]
            fields = fields[1:]
        parser = _ModuleParser()
        module = parser.parse(list(fields))
        module.name = name
        return module
    # Bare field list (no (module ...) wrapper).
    return _ModuleParser().parse(forms)
