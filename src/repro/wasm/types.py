"""WebAssembly type system objects (value, function, limit, extern types)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import MalformedModule


class ValType(enum.Enum):
    """Core numeric value types (MVP)."""

    I32 = 0x7F
    I64 = 0x7E
    F32 = 0x7D
    F64 = 0x7C

    @property
    def is_int(self) -> bool:
        return self in (ValType.I32, ValType.I64)

    @property
    def bits(self) -> int:
        return {ValType.I32: 32, ValType.I64: 64, ValType.F32: 32, ValType.F64: 64}[self]

    @classmethod
    def from_byte(cls, b: int) -> "ValType":
        try:
            return cls(b)
        except ValueError:
            raise MalformedModule(f"unknown value type byte 0x{b:02x}") from None

    def __repr__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class FuncType:
    """Function signature: ``params -> results``."""

    params: Tuple[ValType, ...] = ()
    results: Tuple[ValType, ...] = ()

    def __str__(self) -> str:
        p = " ".join(t.name.lower() for t in self.params)
        r = " ".join(t.name.lower() for t in self.results)
        return f"[{p}] -> [{r}]"


@dataclass(frozen=True)
class Limits:
    """Memory/table limits in units of pages or elements."""

    minimum: int
    maximum: Optional[int] = None

    def __post_init__(self) -> None:
        if self.minimum < 0:
            raise MalformedModule("limits minimum must be >= 0")
        if self.maximum is not None and self.maximum < self.minimum:
            raise MalformedModule("limits maximum below minimum")

    def contains(self, other: "Limits") -> bool:
        """Import-matching rule: ``other`` at least as restrictive."""
        if other.minimum < self.minimum:
            return False
        if self.maximum is not None:
            if other.maximum is None or other.maximum > self.maximum:
                return False
        return True


@dataclass(frozen=True)
class MemoryType:
    limits: Limits


@dataclass(frozen=True)
class TableType:
    limits: Limits
    elem_kind: int = 0x70  # funcref — the only MVP element type


@dataclass(frozen=True)
class GlobalType:
    valtype: ValType
    mutable: bool = False


PAGE_SIZE = 65536
MAX_PAGES = 65536  # 4 GiB of 64 KiB pages
