"""WebAssembly binary format → module AST."""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.errors import MalformedModule
from repro.wasm import leb128
from repro.wasm.ast import (
    CustomSection,
    DataSegment,
    ElemSegment,
    Export,
    Expr,
    Function,
    Global,
    Import,
    Instr,
    Module,
)
from repro.wasm.encoder import MAGIC, VERSION
from repro.wasm.opcodes import Imm, OP_TO_NAME, OPCODES
from repro.wasm.types import (
    FuncType,
    GlobalType,
    Limits,
    MemoryType,
    TableType,
    ValType,
)

_VALTYPE_BYTES = {t.value for t in ValType}
_IMPORT_KINDS = {0: "func", 1: "table", 2: "mem", 3: "global"}


class _Reader:
    """Cursor over the binary with spec-shaped primitive readers."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = data
        self.pos = pos

    def eof(self) -> bool:
        return self.pos >= len(self.data)

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise MalformedModule("unexpected end of module")
        b = self.data[self.pos]
        self.pos += 1
        return b

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise MalformedModule("unexpected end of module")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u32(self) -> int:
        value, self.pos = leb128.decode_u(self.data, self.pos, 32)
        return value

    def s32(self) -> int:
        value, self.pos = leb128.decode_s(self.data, self.pos, 32)
        return value

    def s33(self) -> int:
        value, self.pos = leb128.decode_s(self.data, self.pos, 33)
        return value

    def s64(self) -> int:
        value, self.pos = leb128.decode_s(self.data, self.pos, 64)
        return value

    def f32(self) -> float:
        return struct.unpack("<f", self.take(4))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.take(8))[0]

    def name(self) -> str:
        raw = self.take(self.u32())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise MalformedModule(f"invalid UTF-8 name: {exc}") from None

    def valtype(self) -> ValType:
        return ValType.from_byte(self.byte())

    def limits(self) -> Limits:
        flag = self.byte()
        if flag == 0x00:
            return Limits(self.u32())
        if flag == 0x01:
            return Limits(self.u32(), self.u32())
        raise MalformedModule(f"bad limits flag 0x{flag:02x}")

    def functype(self) -> FuncType:
        if self.byte() != 0x60:
            raise MalformedModule("function type must start with 0x60")
        params = tuple(self.valtype() for _ in range(self.u32()))
        results = tuple(self.valtype() for _ in range(self.u32()))
        return FuncType(params, results)

    def tabletype(self) -> TableType:
        kind = self.byte()
        if kind != 0x70:
            raise MalformedModule(f"unsupported table element kind 0x{kind:02x}")
        return TableType(self.limits(), elem_kind=kind)

    def globaltype(self) -> GlobalType:
        vt = self.valtype()
        mut = self.byte()
        if mut not in (0, 1):
            raise MalformedModule(f"bad global mutability byte 0x{mut:02x}")
        return GlobalType(vt, bool(mut))

    def blocktype(self):
        b = self.data[self.pos] if self.pos < len(self.data) else None
        if b is None:
            raise MalformedModule("unexpected end in block type")
        if b == 0x40:
            self.pos += 1
            return None
        if b in _VALTYPE_BYTES:
            self.pos += 1
            return ValType(b)
        idx = self.s33()
        if idx < 0:
            raise MalformedModule(f"negative block type index {idx}")
        return idx


def _decode_instr(r: _Reader, code: int) -> Instr:
    """Decode one non-structured instruction given its opcode byte."""
    if code == 0xFC:
        sub = r.u32()
        full = 0xFC00 | sub
        name = OP_TO_NAME.get(full)
        if name is None:
            raise MalformedModule(f"unknown 0xFC sub-opcode {sub}")
    else:
        name = OP_TO_NAME.get(code)
        if name is None:
            raise MalformedModule(f"unknown opcode 0x{code:02x}")
        full = code

    kind = OPCODES[name][1]
    if kind is Imm.NONE:
        return Instr(name)
    if kind is Imm.IDX:
        return Instr(name, (r.u32(),))
    if kind is Imm.MEMARG:
        return Instr(name, (r.u32(), r.u32()))
    if kind is Imm.BR_TABLE:
        labels = tuple(r.u32() for _ in range(r.u32()))
        return Instr(name, (labels, r.u32()))
    if kind is Imm.CALL_INDIRECT:
        type_idx = r.u32()
        table = r.byte()
        if table != 0x00:
            raise MalformedModule("call_indirect reserved byte must be 0")
        return Instr(name, (type_idx,))
    if kind is Imm.I32:
        return Instr(name, (r.s32(),))
    if kind is Imm.I64:
        return Instr(name, (r.s64(),))
    if kind is Imm.F32:
        return Instr(name, (r.f32(),))
    if kind is Imm.F64:
        return Instr(name, (r.f64(),))
    if kind is Imm.MEM:
        if r.byte() != 0x00:
            raise MalformedModule("memory instruction reserved byte must be 0")
        return Instr(name)
    if kind is Imm.MEM2:
        b1, b2 = r.byte(), r.byte()
        if b1 != 0x00 or b2 != 0x00:
            raise MalformedModule("memory.copy reserved bytes must be 0")
        return Instr(name)
    if kind is Imm.DATA_IDX:
        return Instr(name, (r.u32(),))
    if kind is Imm.DATA_MEM:
        idx = r.u32()
        if r.byte() != 0x00:
            raise MalformedModule("memory.init reserved byte must be 0")
        return Instr(name, (idx,))
    raise MalformedModule(f"unhandled immediate kind {kind}")  # pragma: no cover


def _decode_body(r: _Reader) -> Tuple[Expr, int]:
    """Decode a sequence of instructions until ``end`` (0x0B) or ``else``.

    Returns (instructions, terminator_opcode).
    """
    out: Expr = []
    while True:
        code = r.byte()
        if code in (0x0B, 0x05):
            return out, code
        if code == 0x02 or code == 0x03:  # block / loop
            bt = r.blocktype()
            body, term = _decode_body(r)
            if term != 0x0B:
                raise MalformedModule("block/loop terminated by else")
            out.append(Instr("block" if code == 0x02 else "loop", blocktype=bt, body=body))
        elif code == 0x04:  # if
            bt = r.blocktype()
            then, term = _decode_body(r)
            else_body: Expr = []
            if term == 0x05:
                else_body, term = _decode_body(r)
                if term != 0x0B:
                    raise MalformedModule("else terminated by else")
            out.append(Instr("if", blocktype=bt, body=then, else_body=else_body))
        else:
            out.append(_decode_instr(r, code))


def _decode_expr(r: _Reader) -> Expr:
    body, term = _decode_body(r)
    if term != 0x0B:
        raise MalformedModule("expression terminated by else")
    return body


def _decode_code_entry(payload: bytes) -> Tuple[List[ValType], Expr]:
    r = _Reader(payload)
    locals_: List[ValType] = []
    for _ in range(r.u32()):
        count = r.u32()
        vt = r.valtype()
        if count > 1_000_000:
            raise MalformedModule(f"too many locals: {count}")
        locals_.extend([vt] * count)
    body = _decode_expr(r)
    if not r.eof():
        raise MalformedModule("trailing bytes after function body")
    return locals_, body


def decode_module(data: bytes) -> Module:
    """Parse a WebAssembly binary into a :class:`Module`.

    Enforces the spec's section ordering and the function/code section
    count agreement. Custom sections are preserved verbatim.
    """
    r = _Reader(data)
    if r.take(4) != MAGIC:
        raise MalformedModule("bad magic number")
    if r.take(4) != VERSION:
        raise MalformedModule("unsupported binary version")

    module = Module()
    func_type_indices: List[int] = []
    data_count: Optional[int] = None
    last_section = 0

    while not r.eof():
        section_id = r.byte()
        size = r.u32()
        payload = r.take(size)
        sr = _Reader(payload)

        if section_id == 0:
            name = sr.name()
            module.customs.append(CustomSection(name, payload[sr.pos :]))
            continue
        if section_id > 12:
            raise MalformedModule(f"unknown section id {section_id}")
        # DataCount (12) sits between Element (9) and Code (10).
        order_key = 9.5 if section_id == 12 else float(section_id)
        last_key = 9.5 if last_section == 12 else float(last_section)
        if order_key <= last_key:
            raise MalformedModule(
                f"section {section_id} out of order (after {last_section})"
            )
        last_section = section_id

        if section_id == 1:
            module.types = [sr.functype() for _ in range(sr.u32())]
        elif section_id == 2:
            for _ in range(sr.u32()):
                mod_name, item_name = sr.name(), sr.name()
                kind_byte = sr.byte()
                kind = _IMPORT_KINDS.get(kind_byte)
                if kind is None:
                    raise MalformedModule(f"bad import kind 0x{kind_byte:02x}")
                desc = {
                    "func": sr.u32,
                    "table": sr.tabletype,
                    "mem": lambda: MemoryType(sr.limits()),
                    "global": sr.globaltype,
                }[kind]()
                module.imports.append(Import(mod_name, item_name, kind, desc))
        elif section_id == 3:
            func_type_indices = [sr.u32() for _ in range(sr.u32())]
        elif section_id == 4:
            module.tables = [sr.tabletype() for _ in range(sr.u32())]
        elif section_id == 5:
            module.mems = [MemoryType(sr.limits()) for _ in range(sr.u32())]
        elif section_id == 6:
            for _ in range(sr.u32()):
                gt = sr.globaltype()
                module.globals.append(Global(gt, _decode_expr(sr)))
        elif section_id == 7:
            kinds = {0: "func", 1: "table", 2: "mem", 3: "global"}
            for _ in range(sr.u32()):
                name = sr.name()
                kb = sr.byte()
                if kb not in kinds:
                    raise MalformedModule(f"bad export kind 0x{kb:02x}")
                module.exports.append(Export(name, kinds[kb], sr.u32()))
        elif section_id == 8:
            module.start = sr.u32()
        elif section_id == 9:
            for _ in range(sr.u32()):
                table_idx = sr.u32()
                offset = _decode_expr(sr)
                funcs = [sr.u32() for _ in range(sr.u32())]
                module.elems.append(ElemSegment(table_idx, offset, funcs))
        elif section_id == 10:
            count = sr.u32()
            if count != len(func_type_indices):
                raise MalformedModule(
                    f"code count {count} != function count {len(func_type_indices)}"
                )
            for type_idx in func_type_indices:
                body_size = sr.u32()
                locals_, body = _decode_code_entry(sr.take(body_size))
                module.funcs.append(Function(type_idx, locals_, body))
        elif section_id == 11:
            for _ in range(sr.u32()):
                flag = sr.u32()
                if flag == 0:
                    offset = _decode_expr(sr)
                    blob = sr.take(sr.u32())
                    module.datas.append(DataSegment(0, offset, blob))
                elif flag == 1:
                    blob = sr.take(sr.u32())
                    module.datas.append(DataSegment(0, [], blob, passive=True))
                elif flag == 2:
                    mem_idx = sr.u32()
                    offset = _decode_expr(sr)
                    blob = sr.take(sr.u32())
                    module.datas.append(DataSegment(mem_idx, offset, blob))
                else:
                    raise MalformedModule(f"bad data segment flag {flag}")
            if data_count is not None and len(module.datas) != data_count:
                raise MalformedModule(
                    f"data count section says {data_count}, "
                    f"data section has {len(module.datas)}"
                )
        elif section_id == 12:
            data_count = sr.u32()

        if not sr.eof():
            raise MalformedModule(f"trailing bytes in section {section_id}")

    if func_type_indices and len(module.funcs) != len(func_type_indices):
        raise MalformedModule("function section without matching code section")
    return module
