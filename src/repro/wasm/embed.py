"""Embedder convenience API: run a WASI command module in one call.

This is the code path every engine model exercises: decode → validate →
link WASI imports → instantiate → attach exported memory → call
``_start`` → collect exit code and captured output.

Repeated runs of one blob are collapsed through the engine caches: the
bytes are decoded/validated once per digest (``decode`` layer), the
**specialization tier** rewrites the prepared bytecode once per digest
(``specialize`` layer — constant folding, bounds-check elision, inline
caches, closure compilation; disable with ``REPRO_SPECIALIZE=off``), and
the **zygote warm-start** path instantiates once per digest, captures an
:class:`~repro.wasm.runtime.snapshot.InstanceSnapshot`, and clones every
subsequent instance from it (``zygote`` layer) — observably identical to
a cold instantiation, including instruction and fuel metering. Disable
with ``REPRO_ZYGOTE=off``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.errors import ExhaustionError, WasiExit, WasmError
from repro.obs import profile
from repro.sim import faults
from repro.wasm.ast import Module
from repro.wasm.decoder import decode_module
from repro.wasm.runtime import Interpreter, ModuleInstance, Store, instantiate
from repro.wasm.runtime.snapshot import (
    InstanceSnapshot,
    capture_snapshot,
    dirty_memory_bytes,
    restore_instance,
    verify_snapshot,
    zygote_enabled,
)
from repro.wasm.validation import validate_module
from repro.wasm.wasi import InMemoryFilesystem, WasiEnv

#: buckets for the restore-latency histogram: real restores are tens of
#: microseconds; the default (request-scale) buckets would collapse them
_RESTORE_BUCKETS = (1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2)


@dataclass
class WasiRunResult:
    """Outcome of one guest run."""

    exit_code: int
    stdout: bytes
    stderr: bytes
    instructions: int
    memory_bytes: int  # linear memory resident at exit
    instance: ModuleInstance
    store: Store
    #: True when the instance was cloned from a zygote snapshot
    restored: bool = False
    #: digest keying the zygote layer (None = zygote not considered)
    zygote_digest: Optional[str] = None
    #: bytes of linear memory diverging from the snapshot at exit (page
    #: granularity); equals ``memory_bytes`` when no snapshot exists
    dirty_memory_bytes: int = 0


class _HostCallCounter:
    """Temporarily wraps every host function to count invocations.

    Decides snapshot placement: a start section that never calls the host
    is pure state initialization, so the *post*-start state can be
    captured and the start skipped on restore. Any host call means side
    effects outside the instance — snapshot pre-start and re-run it.
    """

    def __init__(self, store: Store) -> None:
        self._store = store
        self.count = 0
        self._saved: List[Tuple[object, Callable]] = []

    def __enter__(self) -> "_HostCallCounter":
        for func in self._store.funcs:
            if func.is_host:
                self._saved.append((func, func.host_fn))
                func.host_fn = self._wrap(func.host_fn)
        return self

    def _wrap(self, fn: Callable) -> Callable:
        def counted(*args):
            self.count += 1
            return fn(*args)

        return counted

    def __exit__(self, *exc) -> None:
        for func, fn in self._saved:
            func.host_fn = fn


def _credit_start_cost(interp, credited: int) -> None:
    """Meter the skipped start section as if it had executed.

    Mirrors the interpreter's exhaustion protocol exactly: a budget too
    small for the start section fails the same way a cold run would.
    """
    fuel = getattr(interp, "fuel", None)
    if fuel is None or fuel < 0:
        return
    if credited > fuel:
        interp.instructions_executed += fuel
        interp.fuel = -1
        raise ExhaustionError("fuel exhausted")
    interp.fuel = fuel - credited


def _capture_zygote(
    cache, store: Store, instance: ModuleInstance, interp, digest: str
) -> Optional[InstanceSnapshot]:
    """First run of a digest: run the start section (if any) and record
    the best restorable snapshot in the zygote layer. Returns it, or
    ``None`` when the module is unsnapshottable (digest poisoned).

    Raises whatever the start section raises — after saving the
    pre-start snapshot, so later runs still warm-start and reproduce the
    failure by re-running the start.
    """
    module = instance.module
    if module.start is None:
        snapshot = capture_snapshot(store, instance, digest, start_rerun=False)
        cache.zygote_put(digest, snapshot)
        return snapshot

    pre = capture_snapshot(store, instance, digest, start_rerun=True)
    before = interp.instructions_executed
    counter = _HostCallCounter(store)
    try:
        with counter:
            interp.invoke(instance.func_addrs[module.start])
    except BaseException:
        cache.zygote_put(digest, pre)
        raise
    if counter.count:
        cache.zygote_put(digest, pre)
        return pre
    snapshot = capture_snapshot(
        store,
        instance,
        digest,
        start_rerun=False,
        start_instructions=interp.instructions_executed - before,
    )
    if snapshot is None:
        # Post-start state not restorable (e.g. table entry rebound to a
        # host function); fall back to re-running the start every time.
        snapshot = pre
    cache.zygote_put(digest, snapshot)
    return snapshot


def run_wasi(
    module: Union[bytes, Module],
    args: Sequence[str] = ("main.wasm",),
    env: Optional[Dict[str, str]] = None,
    preopens: Optional[Dict[str, str]] = None,
    fs: Optional[InMemoryFilesystem] = None,
    stdin: bytes = b"",
    fuel: Optional[int] = None,
    clock_ns: Optional[Callable[[], int]] = None,
    entrypoint: str = "_start",
    interpreter_cls: type = Interpreter,
    zygote: Optional[bool] = None,
    digest: Optional[str] = None,
) -> WasiRunResult:
    """Execute a WASI command module to completion.

    Args:
        module: binary bytes or an already-decoded :class:`Module`.
        args: argv (``args[0]`` is the program name).
        env: environment variables.
        preopens: guest path → host-fs path preopened directories.
        fs: filesystem to mount (fresh empty one if omitted).
        stdin: bytes readable on fd 0.
        fuel: optional instruction budget (``ExhaustionError`` beyond it).
        clock_ns: deterministic nanosecond clock for ``clock_time_get``.
        entrypoint: exported function to call (``_start`` for commands).
        interpreter_cls: interpreter implementation (the differential
            tests pass ``ReferenceInterpreter`` here).
        zygote: force zygote warm-start on/off for this run (default:
            the ``REPRO_ZYGOTE`` environment toggle).
        digest: content digest of ``module`` if the caller knows it
            (derived automatically for ``bytes`` input); keys the zygote
            snapshot layer. Without a digest the run is always cold.

    Returns:
        :class:`WasiRunResult`. ``exit_code`` is 0 when the entrypoint
        returns normally, otherwise the ``proc_exit`` code.
    """
    # Deferred: engines.cache imports engines.base, which imports us.
    from repro.engines import cache as engine_cache

    if isinstance(module, (bytes, bytearray)):
        module, digest = engine_cache.decode_cached(bytes(module), digest)
    else:
        validate_module(module)

    use_zygote = zygote_enabled() if zygote is None else bool(zygote)
    snapshot: Optional[InstanceSnapshot] = None
    capture = False
    if use_zygote and digest is not None:
        snapshot = engine_cache.zygote_get(digest)
        if snapshot is not None:
            ctx = faults.ambient()
            # Injected corruption (chaos plan) or organic checksum
            # mismatch both quarantine the digest: the snapshot is
            # dropped, never re-captured, and this run — like every
            # later one — takes the cold two-phase path. Verification
            # is amortized to once per digest on the happy path, but
            # runs every time under an armed fault scope (the plan may
            # corrupt the entry on any restore).
            corrupt = (
                ctx is not None
                and ctx[0].check(faults.FaultPoint.ZYGOTE_CORRUPT, ctx[1])
                is not None
            )
            if not corrupt and (
                ctx is not None or not engine_cache.zygote_verified(digest)
            ):
                if verify_snapshot(snapshot):
                    engine_cache.zygote_mark_verified(digest)
                else:
                    corrupt = True
            if corrupt:
                engine_cache.zygote_quarantine(digest)
                snapshot = None
        # Quarantined digests stay zygote_known, so capture stays False.
        capture = snapshot is None and not engine_cache.zygote_known(digest)

    store = Store()
    wasi = WasiEnv(
        args=args,
        env=env,
        preopens=preopens,
        fs=fs,
        stdin=stdin,
        clock_ns=clock_ns,
    )
    host = wasi.register(store)
    interp = interpreter_cls(store, fuel=fuel)
    prof = profile.active_profiler()
    if prof is not None:
        interp.profiler = prof

    restored = snapshot is not None
    restore_elapsed = 0.0
    if restored:
        t_restore = time.perf_counter()
        instance = restore_instance(store, snapshot, imports=host.import_map())
        restore_elapsed = time.perf_counter() - t_restore
        engine_cache.zygote_stats.hit()
    else:
        instance = instantiate(
            store, module, imports=host.import_map(), run_start=False
        )
    if instance.mem_addrs:
        wasi.attach_memory(store.mems[instance.mem_addrs[0]])

    credited = 0
    exit_code = 0
    try:
        if restored:
            if module.start is not None and snapshot.start_rerun:
                interp.invoke(instance.func_addrs[module.start])
            elif snapshot.start_instructions:
                credited = snapshot.start_instructions
                _credit_start_cost(interp, credited)
        elif capture:
            engine_cache.zygote_stats.miss()
            snapshot = _capture_zygote(engine_cache, store, instance, interp, digest)
        elif module.start is not None:
            interp.invoke(instance.func_addrs[module.start])

        ctx = faults.ambient()
        if ctx is not None:
            # Mid-run guest failures: a trap (unreachable, OOB) or
            # fuel/OOM exhaustion between start and entrypoint. Raised
            # as FaultInjected (a ContainerError), so they pass through
            # the engine's WasmTrap→EngineError conversion untouched
            # and reach the kubelet as pod-visible transient crashes.
            plan, pod_key = ctx
            plan.raise_if_fires(faults.FaultPoint.GUEST_TRAP, pod_key)
            plan.raise_if_fires(faults.FaultPoint.GUEST_EXHAUST, pod_key)

        entry = instance.exports.get(entrypoint)
        if entry is not None:
            if entry[0] != "func":
                raise WasmError(
                    f"export {entrypoint!r} is a {entry[0]}, not a function"
                )
            interp.invoke(entry[1])
        elif module.start is None:
            raise WasmError(f"module has no {entrypoint!r} export and no start section")
    except WasiExit as stop:
        exit_code = stop.code

    instructions = interp.instructions_executed + credited
    memory_bytes = store.total_memory_bytes()
    if snapshot is not None:
        dirty = dirty_memory_bytes(snapshot, store, instance)
    else:
        dirty = memory_bytes

    if obs.enabled():
        obs.counter(
            "repro_wasm_instructions_total",
            "guest instructions retired across all interpreter runs",
        ).inc(instructions)
        remaining = getattr(interp, "fuel", None)
        if fuel is not None and remaining is not None:
            obs.counter(
                "repro_wasm_fuel_consumed_total",
                "fuel consumed by fuel-limited guest runs",
            ).inc(fuel - max(remaining, 0))
        mode = "restore" if restored else ("capture" if capture else "cold")
        obs.counter(
            "repro_zygote_runs_total",
            "guest runs by zygote warm-start path",
            ("mode",),
        ).labels(mode).inc()
        pf = module.funcs[0].prepared if module.funcs else None
        if getattr(pf, "fallback", None) is not None:
            spec_mode = "compiled" if pf.compiled is not None else "bytecode"
        else:
            spec_mode = "off"
        obs.counter(
            "repro_specialize_runs_total",
            "guest runs by specialization-tier attachment",
            ("mode",),
        ).labels(spec_mode).inc()
        if restored:
            obs.histogram(
                "repro_zygote_restore_seconds",
                "wall-clock latency of cloning an instance from its zygote snapshot",
                buckets=_RESTORE_BUCKETS,
            ).observe(restore_elapsed)

    return WasiRunResult(
        exit_code=exit_code,
        stdout=bytes(wasi.stdout),
        stderr=bytes(wasi.stderr),
        instructions=instructions,
        memory_bytes=memory_bytes,
        instance=instance,
        store=store,
        restored=restored,
        zygote_digest=digest if use_zygote else None,
        dirty_memory_bytes=dirty,
    )
