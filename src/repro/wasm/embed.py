"""Embedder convenience API: run a WASI command module in one call.

This is the code path every engine model exercises: decode → validate →
link WASI imports → instantiate → attach exported memory → call
``_start`` → collect exit code and captured output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Union

from repro import obs
from repro.errors import WasiExit, WasmError
from repro.wasm.ast import Module
from repro.wasm.decoder import decode_module
from repro.wasm.runtime import Interpreter, ModuleInstance, Store, instantiate
from repro.wasm.validation import validate_module
from repro.wasm.wasi import InMemoryFilesystem, WasiEnv


@dataclass
class WasiRunResult:
    """Outcome of one guest run."""

    exit_code: int
    stdout: bytes
    stderr: bytes
    instructions: int
    memory_bytes: int  # linear memory resident at exit
    instance: ModuleInstance
    store: Store


def run_wasi(
    module: Union[bytes, Module],
    args: Sequence[str] = ("main.wasm",),
    env: Optional[Dict[str, str]] = None,
    preopens: Optional[Dict[str, str]] = None,
    fs: Optional[InMemoryFilesystem] = None,
    stdin: bytes = b"",
    fuel: Optional[int] = None,
    clock_ns: Optional[Callable[[], int]] = None,
    entrypoint: str = "_start",
    interpreter_cls: type = Interpreter,
) -> WasiRunResult:
    """Execute a WASI command module to completion.

    Args:
        module: binary bytes or an already-decoded :class:`Module`.
        args: argv (``args[0]`` is the program name).
        env: environment variables.
        preopens: guest path → host-fs path preopened directories.
        fs: filesystem to mount (fresh empty one if omitted).
        stdin: bytes readable on fd 0.
        fuel: optional instruction budget (``ExhaustionError`` beyond it).
        clock_ns: deterministic nanosecond clock for ``clock_time_get``.
        entrypoint: exported function to call (``_start`` for commands).
        interpreter_cls: interpreter implementation (the differential
            tests pass ``ReferenceInterpreter`` here).

    Returns:
        :class:`WasiRunResult`. ``exit_code`` is 0 when the entrypoint
        returns normally, otherwise the ``proc_exit`` code.
    """
    if isinstance(module, (bytes, bytearray)):
        module = decode_module(bytes(module))
    validate_module(module)

    store = Store()
    wasi = WasiEnv(
        args=args,
        env=env,
        preopens=preopens,
        fs=fs,
        stdin=stdin,
        clock_ns=clock_ns,
    )
    host = wasi.register(store)
    interp = interpreter_cls(store, fuel=fuel)

    instance = instantiate(
        store, module, imports=host.import_map(), run_start=False
    )
    if instance.mem_addrs:
        wasi.attach_memory(store.mems[instance.mem_addrs[0]])

    exit_code = 0
    try:
        if module.start is not None:
            interp.invoke(instance.func_addrs[module.start])
        entry = instance.exports.get(entrypoint)
        if entry is not None and entry[0] == "func":
            interp.invoke(entry[1])
        elif module.start is None:
            raise WasmError(f"module has no {entrypoint!r} export and no start section")
    except WasiExit as stop:
        exit_code = stop.code

    if obs.enabled():
        obs.counter(
            "repro_wasm_instructions_total",
            "guest instructions retired across all interpreter runs",
        ).inc(interp.instructions_executed)
        remaining = getattr(interp, "fuel", None)
        if fuel is not None and remaining is not None:
            obs.counter(
                "repro_wasm_fuel_consumed_total",
                "fuel consumed by fuel-limited guest runs",
            ).inc(fuel - max(remaining, 0))

    return WasiRunResult(
        exit_code=exit_code,
        stdout=bytes(wasi.stdout),
        stderr=bytes(wasi.stderr),
        instructions=interp.instructions_executed,
        memory_bytes=store.total_memory_bytes(),
        instance=instance,
        store=store,
    )
