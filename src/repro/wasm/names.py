"""The ``name`` custom section (module + function debug names).

Engines and debuggers read this section to label stack traces; our
toolchain preserves symbolic names across a binary roundtrip with it:
``attach_name_section`` serializes ``Module.name`` and ``Function.name``
into the custom section, and ``apply_name_section`` restores them after
:func:`~repro.wasm.decoder.decode_module` (which keeps custom sections
verbatim but does not interpret them).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import MalformedModule
from repro.wasm import leb128
from repro.wasm.ast import CustomSection, Module

SECTION_NAME = "name"

_SUB_MODULE = 0
_SUB_FUNCTIONS = 1


def _name_bytes(s: str) -> bytes:
    raw = s.encode("utf-8")
    return leb128.encode_u(len(raw)) + raw


def build_name_section(module: Module) -> Optional[CustomSection]:
    """Serialize the module's symbolic names; None if there are none."""
    payload = bytearray()

    if module.name:
        body = _name_bytes(module.name)
        payload += bytes([_SUB_MODULE]) + leb128.encode_u(len(body)) + body

    n_imported = module.num_imported_funcs()
    named = {
        n_imported + i: f.name for i, f in enumerate(module.funcs) if f.name
    }
    if named:
        body = bytearray(leb128.encode_u(len(named)))
        for idx in sorted(named):
            body += leb128.encode_u(idx) + _name_bytes(named[idx])
        payload += bytes([_SUB_FUNCTIONS]) + leb128.encode_u(len(body)) + bytes(body)

    if not payload:
        return None
    return CustomSection(SECTION_NAME, bytes(payload))


def attach_name_section(module: Module) -> Module:
    """Add (or replace) the name section among the custom sections."""
    module.customs = [c for c in module.customs if c.name != SECTION_NAME]
    section = build_name_section(module)
    if section is not None:
        module.customs.append(section)
    return module


def parse_name_section(section: CustomSection) -> Dict[str, object]:
    """Decode a name section payload → {'module': str|None, 'functions': {idx: name}}."""
    data = section.payload
    pos = 0
    result: Dict[str, object] = {"module": None, "functions": {}}
    while pos < len(data):
        sub_id = data[pos]
        pos += 1
        size, pos = leb128.decode_u(data, pos, 32)
        body = data[pos : pos + size]
        if len(body) != size:
            raise MalformedModule("truncated name subsection")
        pos += size
        bpos = 0
        if sub_id == _SUB_MODULE:
            length, bpos = leb128.decode_u(body, bpos, 32)
            result["module"] = body[bpos : bpos + length].decode("utf-8")
        elif sub_id == _SUB_FUNCTIONS:
            count, bpos = leb128.decode_u(body, bpos, 32)
            functions: Dict[int, str] = {}
            for _ in range(count):
                idx, bpos = leb128.decode_u(body, bpos, 32)
                length, bpos = leb128.decode_u(body, bpos, 32)
                functions[idx] = body[bpos : bpos + length].decode("utf-8")
                bpos += length
            result["functions"] = functions
        # Unknown subsections (locals, labels, ...) are skipped, per spec.
    return result


def apply_name_section(module: Module) -> Module:
    """Restore Module.name / Function.name from a decoded name section."""
    for section in module.customs:
        if section.name != SECTION_NAME:
            continue
        names = parse_name_section(section)
        if names["module"]:
            module.name = names["module"]  # type: ignore[assignment]
        n_imported = module.num_imported_funcs()
        for idx, fname in names["functions"].items():  # type: ignore[union-attr]
            local_idx = idx - n_imported
            if 0 <= local_idx < len(module.funcs):
                module.funcs[local_idx].name = fname
    return module
