"""WASI ``snapshot_preview1`` subset over an in-memory filesystem."""

from repro.wasm.wasi.fs import InMemoryFilesystem, FsNode
from repro.wasm.wasi.preview1 import WasiEnv

__all__ = ["WasiEnv", "InMemoryFilesystem", "FsNode"]
