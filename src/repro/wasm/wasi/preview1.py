"""WASI ``wasi_snapshot_preview1`` host implementation.

:class:`WasiEnv` owns the guest-visible world: argv, environment, an fd
table over an :class:`~repro.wasm.wasi.fs.InMemoryFilesystem` with
preopened directories, capture buffers for stdout/stderr, a deterministic
clock, and a seeded RNG for ``random_get``. It registers its functions on
a :class:`~repro.wasm.runtime.host.HostModule` so modules importing
``wasi_snapshot_preview1`` link against it.

All functions follow the preview1 ABI: scalar i32/i64 arguments, results
written through guest-memory pointers, errno returned as i32.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import WasiExit, WasmTrap
from repro.sim import faults
from repro.wasm.runtime.host import HostModule, sig
from repro.wasm.runtime.store import MemoryInstance, Store
from repro.wasm.wasi import errno as E
from repro.wasm.wasi.fs import FsNode, InMemoryFilesystem

MODULE_NAME = "wasi_snapshot_preview1"


@dataclass
class _FdEntry:
    """One open descriptor."""

    kind: str  # "stream" | "file" | "dir"
    node: Optional[FsNode] = None
    offset: int = 0
    preopen_path: Optional[str] = None
    write_sink: Optional[bytearray] = None  # streams (stdout/stderr)
    read_source: bytes = b""  # stdin contents
    readable: bool = True
    writable: bool = True


class WasiEnv:
    """Host state for one WASI instance (one container's guest world)."""

    def __init__(
        self,
        args: Sequence[str] = ("main.wasm",),
        env: Optional[Dict[str, str]] = None,
        preopens: Optional[Dict[str, str]] = None,
        fs: Optional[InMemoryFilesystem] = None,
        stdin: bytes = b"",
        clock_ns: Optional[Callable[[], int]] = None,
        random_bytes: Optional[Callable[[int], bytes]] = None,
    ) -> None:
        self.args = [str(a) for a in args]
        self.env = dict(env or {})
        self.fs = fs or InMemoryFilesystem()
        self.stdout = bytearray()
        self.stderr = bytearray()
        self.exit_code: Optional[int] = None
        self._clock_ns = clock_ns or (lambda: 1_000_000)
        self._random = random_bytes or (lambda n: bytes(n))
        self.memory: Optional[MemoryInstance] = None

        self._fds: Dict[int, _FdEntry] = {
            0: _FdEntry(kind="stream", read_source=stdin, writable=False),
            1: _FdEntry(kind="stream", write_sink=self.stdout, readable=False),
            2: _FdEntry(kind="stream", write_sink=self.stderr, readable=False),
        }
        self._next_fd = 3
        # Per-direction byte counters for the eWAPA-style latency model
        # (``repro inspect --wasi``): data-moving hostcalls charge a
        # per-byte cost on top of the per-call base.
        if obs.enabled():
            bytes_total = obs.counter(
                "repro_wasi_bytes_total",
                "bytes moved through WASI data-path host calls",
                ("func", "direction"),
            )
            self._m_write_bytes = bytes_total.labels("fd_write", "out")
            self._m_read_bytes = bytes_total.labels("fd_read", "in")
        else:
            self._m_write_bytes = obs.NULL_METRIC
            self._m_read_bytes = obs.NULL_METRIC
        # Preopens: guest path -> host fs path, in fd order starting at 3.
        for guest_path, host_path in (preopens or {}).items():
            node = self.fs.mkdir(host_path)
            self._fds[self._next_fd] = _FdEntry(
                kind="dir", node=node, preopen_path=guest_path
            )
            self._next_fd += 1

    # -- wiring ------------------------------------------------------------

    def attach_memory(self, memory: MemoryInstance) -> None:
        self.memory = memory

    def register(self, store: Store) -> HostModule:
        """Create the ``wasi_snapshot_preview1`` host module in ``store``.

        Under an ambient fault scope arming ``wasi.syscall``, every host
        function is wrapped with a per-call injection check: a fire
        raises :class:`~repro.errors.FaultInjected` out of the guest —
        a pod-visible crash routed through the kubelet's restart-policy
        machinery, never a stray Python exception. Registration happens
        inside the container's fault scope, so the wrapper only exists
        for chaos runs; the disabled path registers the bare functions.
        """
        hm = HostModule(store, MODULE_NAME)
        wrap_fault = None
        ctx = faults.ambient()
        if ctx is not None and ctx[0].arms_any((faults.FaultPoint.WASI_SYSCALL,)):
            plan, pod_key = ctx

            def wrap_fault(fn, _plan=plan, _key=pod_key):
                def checked(*args, _fn=fn):
                    _plan.raise_if_fires(faults.FaultPoint.WASI_SYSCALL, _key)
                    return _fn(*args)

                return checked

        if obs.enabled():
            calls = obs.counter(
                "repro_wasi_calls_total",
                "WASI preview1 host calls, by import name",
                ("func",),
            )

            def add(name: str, signature, fn) -> None:
                child = calls.labels(name)
                if wrap_fault is not None:
                    fn = wrap_fault(fn)

                def wrapped(*args, _fn=fn, _child=child):
                    _child.inc()
                    return _fn(*args)

                hm.func(name, signature, wrapped)

        elif wrap_fault is not None:

            def add(name: str, signature, fn) -> None:
                hm.func(name, signature, wrap_fault(fn))

        else:
            add = hm.func
        add("args_sizes_get", sig("ii", "i"), self.args_sizes_get)
        add("args_get", sig("ii", "i"), self.args_get)
        add("environ_sizes_get", sig("ii", "i"), self.environ_sizes_get)
        add("environ_get", sig("ii", "i"), self.environ_get)
        add("clock_time_get", sig("iIi", "i"), self.clock_time_get)
        add("clock_res_get", sig("ii", "i"), self.clock_res_get)
        add("fd_write", sig("iiii", "i"), self.fd_write)
        add("fd_read", sig("iiii", "i"), self.fd_read)
        add("fd_close", sig("i", "i"), self.fd_close)
        add("fd_seek", sig("iIii", "i"), self.fd_seek)
        add("fd_fdstat_get", sig("ii", "i"), self.fd_fdstat_get)
        add("fd_fdstat_set_flags", sig("ii", "i"), lambda fd, flags: [E.SUCCESS])
        add("fd_prestat_get", sig("ii", "i"), self.fd_prestat_get)
        add("fd_prestat_dir_name", sig("iii", "i"), self.fd_prestat_dir_name)
        add("fd_filestat_get", sig("ii", "i"), self.fd_filestat_get)
        add("path_open", sig("iiiiiIIii", "i"), self.path_open)
        add("path_filestat_get", sig("iiiii", "i"), self.path_filestat_get)
        add("path_create_directory", sig("iii", "i"), self.path_create_directory)
        add("path_unlink_file", sig("iii", "i"), self.path_unlink_file)
        add("path_remove_directory", sig("iii", "i"), self.path_remove_directory)
        add("fd_tell", sig("ii", "i"), self.fd_tell)
        add("fd_readdir", sig("iiiIi", "i"), self.fd_readdir)
        add("fd_sync", sig("i", "i"), lambda fd: [E.SUCCESS])
        add("fd_datasync", sig("i", "i"), lambda fd: [E.SUCCESS])
        add("random_get", sig("ii", "i"), self.random_get)
        add("proc_exit", sig("i"), self.proc_exit)
        add("sched_yield", sig("", "i"), lambda: [E.SUCCESS])
        add("poll_oneoff", sig("iiii", "i"), self.poll_oneoff)
        return hm

    # -- memory helpers --------------------------------------------------------

    def _mem(self) -> MemoryInstance:
        if self.memory is None:
            raise WasmTrap("WASI host has no attached memory")
        return self.memory

    # -- args / environ -----------------------------------------------------------

    def _encoded_args(self) -> List[bytes]:
        return [a.encode("utf-8") + b"\x00" for a in self.args]

    def _encoded_env(self) -> List[bytes]:
        return [f"{k}={v}".encode("utf-8") + b"\x00" for k, v in self.env.items()]

    def args_sizes_get(self, argc_ptr: int, argv_buf_size_ptr: int) -> List[int]:
        mem = self._mem()
        blobs = self._encoded_args()
        mem.write_u32(argc_ptr, len(blobs))
        mem.write_u32(argv_buf_size_ptr, sum(len(b) for b in blobs))
        return [E.SUCCESS]

    def args_get(self, argv_ptr: int, argv_buf_ptr: int) -> List[int]:
        mem = self._mem()
        offset = argv_buf_ptr
        for i, blob in enumerate(self._encoded_args()):
            mem.write_u32(argv_ptr + 4 * i, offset)
            mem.write(offset, blob)
            offset += len(blob)
        return [E.SUCCESS]

    def environ_sizes_get(self, count_ptr: int, buf_size_ptr: int) -> List[int]:
        mem = self._mem()
        blobs = self._encoded_env()
        mem.write_u32(count_ptr, len(blobs))
        mem.write_u32(buf_size_ptr, sum(len(b) for b in blobs))
        return [E.SUCCESS]

    def environ_get(self, environ_ptr: int, buf_ptr: int) -> List[int]:
        mem = self._mem()
        offset = buf_ptr
        for i, blob in enumerate(self._encoded_env()):
            mem.write_u32(environ_ptr + 4 * i, offset)
            mem.write(offset, blob)
            offset += len(blob)
        return [E.SUCCESS]

    # -- clocks / random ---------------------------------------------------------------

    def clock_time_get(self, clock_id: int, _precision: int, time_ptr: int) -> List[int]:
        if clock_id not in (E.CLOCK_REALTIME, E.CLOCK_MONOTONIC):
            return [E.EINVAL]
        self._mem().write_u64(time_ptr, self._clock_ns())
        return [E.SUCCESS]

    def clock_res_get(self, clock_id: int, res_ptr: int) -> List[int]:
        if clock_id not in (E.CLOCK_REALTIME, E.CLOCK_MONOTONIC):
            return [E.EINVAL]
        self._mem().write_u64(res_ptr, 1_000)
        return [E.SUCCESS]

    def random_get(self, buf_ptr: int, buf_len: int) -> List[int]:
        self._mem().write(buf_ptr, self._random(buf_len))
        return [E.SUCCESS]

    # -- descriptors --------------------------------------------------------------------

    def _fd(self, fd: int) -> Optional[_FdEntry]:
        return self._fds.get(fd)

    def fd_write(self, fd: int, iovs_ptr: int, iovs_len: int, nwritten_ptr: int) -> List[int]:
        mem = self._mem()
        entry = self._fd(fd)
        if entry is None:
            return [E.EBADF]
        if not entry.writable:
            return [E.EACCES]
        written = 0
        for i in range(iovs_len):
            base = mem.read_u32(iovs_ptr + 8 * i)
            length = mem.read_u32(iovs_ptr + 8 * i + 4)
            chunk = mem.read(base, length)
            if entry.kind == "stream":
                assert entry.write_sink is not None
                entry.write_sink += chunk
            elif entry.kind == "file":
                assert entry.node is not None
                end = entry.offset + len(chunk)
                if end > len(entry.node.data):
                    entry.node.data.extend(bytes(end - len(entry.node.data)))
                entry.node.data[entry.offset : end] = chunk
                entry.offset = end
            else:
                return [E.EISDIR]
            written += len(chunk)
        if written:
            self._m_write_bytes.inc(written)
        mem.write_u32(nwritten_ptr, written)
        return [E.SUCCESS]

    def fd_read(self, fd: int, iovs_ptr: int, iovs_len: int, nread_ptr: int) -> List[int]:
        mem = self._mem()
        entry = self._fd(fd)
        if entry is None:
            return [E.EBADF]
        if not entry.readable:
            return [E.EACCES]
        total = 0
        for i in range(iovs_len):
            base = mem.read_u32(iovs_ptr + 8 * i)
            length = mem.read_u32(iovs_ptr + 8 * i + 4)
            if entry.kind == "stream":
                chunk = entry.read_source[entry.offset : entry.offset + length]
            elif entry.kind == "file":
                assert entry.node is not None
                chunk = bytes(entry.node.data[entry.offset : entry.offset + length])
            else:
                return [E.EISDIR]
            entry.offset += len(chunk)
            mem.write(base, chunk)
            total += len(chunk)
            if len(chunk) < length:
                break
        if total:
            self._m_read_bytes.inc(total)
        mem.write_u32(nread_ptr, total)
        return [E.SUCCESS]

    def fd_close(self, fd: int) -> List[int]:
        if fd in (0, 1, 2):
            return [E.SUCCESS]
        if self._fds.pop(fd, None) is None:
            return [E.EBADF]
        return [E.SUCCESS]

    def fd_seek(self, fd: int, offset: int, whence: int, newoffset_ptr: int) -> List[int]:
        entry = self._fd(fd)
        if entry is None:
            return [E.EBADF]
        if entry.kind == "stream":
            return [E.ESPIPE]
        if entry.kind != "file":
            return [E.EISDIR]
        assert entry.node is not None
        # offset arrives as u64; interpret as signed.
        if offset >= 1 << 63:
            offset -= 1 << 64
        if whence == E.WHENCE_SET:
            new = offset
        elif whence == E.WHENCE_CUR:
            new = entry.offset + offset
        elif whence == E.WHENCE_END:
            new = len(entry.node.data) + offset
        else:
            return [E.EINVAL]
        if new < 0:
            return [E.EINVAL]
        entry.offset = new
        self._mem().write_u64(newoffset_ptr, new)
        return [E.SUCCESS]

    def fd_fdstat_get(self, fd: int, stat_ptr: int) -> List[int]:
        entry = self._fd(fd)
        if entry is None:
            return [E.EBADF]
        mem = self._mem()
        filetype = {
            "stream": E.FILETYPE_CHARACTER_DEVICE,
            "file": E.FILETYPE_REGULAR_FILE,
            "dir": E.FILETYPE_DIRECTORY,
        }[entry.kind]
        mem.write(stat_ptr, bytes([filetype, 0]))
        mem.write(stat_ptr + 2, b"\x00" * 6)  # flags + padding
        mem.write_u64(stat_ptr + 8, 0xFFFFFFFFFFFFFFFF)  # rights base
        mem.write_u64(stat_ptr + 16, 0xFFFFFFFFFFFFFFFF)  # rights inheriting
        return [E.SUCCESS]

    def fd_prestat_get(self, fd: int, prestat_ptr: int) -> List[int]:
        entry = self._fd(fd)
        if entry is None or entry.preopen_path is None:
            return [E.EBADF]
        mem = self._mem()
        mem.write(prestat_ptr, b"\x00\x00\x00\x00")  # tag 0 = dir
        mem.write_u32(prestat_ptr + 4, len(entry.preopen_path.encode("utf-8")))
        return [E.SUCCESS]

    def fd_prestat_dir_name(self, fd: int, path_ptr: int, path_len: int) -> List[int]:
        entry = self._fd(fd)
        if entry is None or entry.preopen_path is None:
            return [E.EBADF]
        raw = entry.preopen_path.encode("utf-8")
        if len(raw) > path_len:
            return [E.EINVAL]
        self._mem().write(path_ptr, raw)
        return [E.SUCCESS]

    def _write_filestat(self, stat_ptr: int, node: FsNode) -> None:
        mem = self._mem()
        mem.write_u64(stat_ptr, 1)  # device
        mem.write_u64(stat_ptr + 8, id(node) & 0xFFFFFFFFFFFFFFFF)  # inode
        filetype = E.FILETYPE_DIRECTORY if node.is_dir else E.FILETYPE_REGULAR_FILE
        mem.write(stat_ptr + 16, bytes([filetype]) + b"\x00" * 7)
        mem.write_u64(stat_ptr + 24, 1)  # nlink
        mem.write_u64(stat_ptr + 32, node.size)
        now = self._clock_ns()
        mem.write_u64(stat_ptr + 40, now)  # atim
        mem.write_u64(stat_ptr + 48, now)  # mtim
        mem.write_u64(stat_ptr + 56, now)  # ctim

    def fd_filestat_get(self, fd: int, stat_ptr: int) -> List[int]:
        entry = self._fd(fd)
        if entry is None:
            return [E.EBADF]
        if entry.kind == "stream":
            node = FsNode(name="stream", is_dir=False)
        else:
            assert entry.node is not None
            node = entry.node
        self._write_filestat(stat_ptr, node)
        return [E.SUCCESS]

    def path_filestat_get(
        self, dir_fd: int, _flags: int, path_ptr: int, path_len: int, stat_ptr: int
    ) -> List[int]:
        entry = self._fd(dir_fd)
        if entry is None or entry.kind != "dir":
            return [E.EBADF]
        rel = self._mem().read(path_ptr, path_len).decode("utf-8", "replace")
        assert entry.node is not None
        node, err = self.fs.resolve(entry.node, rel)
        if node is None:
            return [{"noent": E.ENOENT, "notdir": E.ENOTDIR, "escape": E.EPERM}[err]]
        self._write_filestat(stat_ptr, node)
        return [E.SUCCESS]

    def path_open(
        self,
        dir_fd: int,
        _dirflags: int,
        path_ptr: int,
        path_len: int,
        oflags: int,
        _rights_base: int,
        _rights_inheriting: int,
        _fdflags: int,
        opened_fd_ptr: int,
    ) -> List[int]:
        entry = self._fd(dir_fd)
        if entry is None or entry.kind != "dir":
            return [E.EBADF]
        rel = self._mem().read(path_ptr, path_len).decode("utf-8", "replace")
        assert entry.node is not None
        create = bool(oflags & E.OFLAGS_CREAT)
        node, err = self.fs.resolve(entry.node, rel, create_file=create)
        if node is None:
            return [{"noent": E.ENOENT, "notdir": E.ENOTDIR, "escape": E.EPERM}[err]]
        if (oflags & E.OFLAGS_DIRECTORY) and not node.is_dir:
            return [E.ENOTDIR]
        if oflags & E.OFLAGS_TRUNC and not node.is_dir:
            node.data = bytearray()
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = _FdEntry(kind="dir" if node.is_dir else "file", node=node)
        self._mem().write_u32(opened_fd_ptr, fd)
        return [E.SUCCESS]

    # -- path-level directory operations -----------------------------------

    def _dir_and_path(self, dir_fd: int, path_ptr: int, path_len: int):
        entry = self._fd(dir_fd)
        if entry is None or entry.kind != "dir" or entry.node is None:
            return None, None
        rel = self._mem().read(path_ptr, path_len).decode("utf-8", "replace")
        return entry, rel

    def path_create_directory(self, dir_fd: int, path_ptr: int, path_len: int) -> List[int]:
        entry, rel = self._dir_and_path(dir_fd, path_ptr, path_len)
        if entry is None:
            return [E.EBADF]
        parts = [p for p in rel.split("/") if p]
        if not parts:
            return [E.EINVAL]
        parent, err = self.fs.resolve(entry.node, "/".join(parts[:-1]))
        if parent is None:
            return [E.ENOENT]
        if not parent.is_dir:
            return [E.ENOTDIR]
        name = parts[-1]
        if parent.child(name) is not None:
            return [E.EEXIST]
        from repro.wasm.wasi.fs import FsNode as _FsNode

        parent.children[name] = _FsNode(name=name, is_dir=True)
        return [E.SUCCESS]

    def _unlink(self, dir_fd: int, path_ptr: int, path_len: int, want_dir: bool) -> List[int]:
        entry, rel = self._dir_and_path(dir_fd, path_ptr, path_len)
        if entry is None:
            return [E.EBADF]
        parts = [p for p in rel.split("/") if p]
        if not parts:
            return [E.EINVAL]
        parent, err = self.fs.resolve(entry.node, "/".join(parts[:-1]))
        if parent is None or not parent.is_dir:
            return [E.ENOENT]
        target = parent.child(parts[-1])
        if target is None:
            return [E.ENOENT]
        if want_dir:
            if not target.is_dir:
                return [E.ENOTDIR]
            if target.children:
                return [E.ENOTEMPTY]
        elif target.is_dir:
            return [E.EISDIR]
        del parent.children[parts[-1]]
        return [E.SUCCESS]

    def path_unlink_file(self, dir_fd: int, path_ptr: int, path_len: int) -> List[int]:
        return self._unlink(dir_fd, path_ptr, path_len, want_dir=False)

    def path_remove_directory(self, dir_fd: int, path_ptr: int, path_len: int) -> List[int]:
        return self._unlink(dir_fd, path_ptr, path_len, want_dir=True)

    def fd_tell(self, fd: int, offset_ptr: int) -> List[int]:
        entry = self._fd(fd)
        if entry is None:
            return [E.EBADF]
        if entry.kind == "stream":
            return [E.ESPIPE]
        self._mem().write_u64(offset_ptr, entry.offset)
        return [E.SUCCESS]

    def fd_readdir(
        self, fd: int, buf_ptr: int, buf_len: int, cookie: int, bufused_ptr: int
    ) -> List[int]:
        """Fill ``buf`` with dirent records starting at ``cookie``.

        Record layout (24-byte header + name): d_next u64, d_ino u64,
        d_namlen u32, d_type u8, 3 pad bytes. A truncated final record
        signals the guest to come back with a larger buffer.
        """
        entry = self._fd(fd)
        if entry is None:
            return [E.EBADF]
        if entry.kind != "dir" or entry.node is None:
            return [E.ENOTDIR]
        mem = self._mem()
        names = sorted(entry.node.children)
        out = bytearray()
        for index in range(int(cookie), len(names)):
            child = entry.node.children[names[index]]
            raw_name = names[index].encode("utf-8")
            record = bytearray()
            record += (index + 1).to_bytes(8, "little")  # d_next cookie
            record += (id(child) & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
            record += len(raw_name).to_bytes(4, "little")
            record += bytes(
                [E.FILETYPE_DIRECTORY if child.is_dir else E.FILETYPE_REGULAR_FILE]
            )
            record += b"\x00\x00\x00"
            record += raw_name
            out += record
            if len(out) >= buf_len:
                break
        payload = bytes(out[:buf_len])
        mem.write(buf_ptr, payload)
        mem.write_u32(bufused_ptr, len(payload))
        return [E.SUCCESS]

    def poll_oneoff(self, _in_ptr: int, _out_ptr: int, nsubs: int, nevents_ptr: int) -> List[int]:
        # All subscriptions complete immediately in simulated time.
        self._mem().write_u32(nevents_ptr, nsubs)
        return [E.SUCCESS]

    def proc_exit(self, code: int) -> List[int]:
        self.exit_code = code
        raise WasiExit(code)
