"""In-memory filesystem backing the WASI layer.

A tree of :class:`FsNode` (directories hold children; files hold bytes).
Paths are POSIX-style, resolved relative to a node with ``.``/``..``
handling and no symlinks (WASI preopens disallow escaping upward past the
preopen root, which :meth:`InMemoryFilesystem.resolve` enforces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class FsNode:
    name: str
    is_dir: bool
    data: bytearray = field(default_factory=bytearray)
    children: Dict[str, "FsNode"] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.data)

    def child(self, name: str) -> Optional["FsNode"]:
        return self.children.get(name)


class InMemoryFilesystem:
    """A rooted in-memory tree with mkdir/write/read helpers."""

    def __init__(self) -> None:
        self.root = FsNode(name="/", is_dir=True)

    # -- host-side population --------------------------------------------

    def mkdir(self, path: str) -> FsNode:
        node = self.root
        for part in self._parts(path):
            nxt = node.child(part)
            if nxt is None:
                nxt = FsNode(name=part, is_dir=True)
                node.children[part] = nxt
            elif not nxt.is_dir:
                raise NotADirectoryError(path)
            node = nxt
        return node

    def write_file(self, path: str, data: bytes) -> FsNode:
        parts = self._parts(path)
        if not parts:
            raise IsADirectoryError(path)
        parent = self.mkdir("/".join(parts[:-1])) if len(parts) > 1 else self.root
        node = parent.child(parts[-1])
        if node is None:
            node = FsNode(name=parts[-1], is_dir=False)
            parent.children[parts[-1]] = node
        elif node.is_dir:
            raise IsADirectoryError(path)
        node.data = bytearray(data)
        return node

    def read_file(self, path: str) -> bytes:
        node = self.lookup(path)
        if node is None:
            raise FileNotFoundError(path)
        if node.is_dir:
            raise IsADirectoryError(path)
        return bytes(node.data)

    def lookup(self, path: str) -> Optional[FsNode]:
        node = self.root
        for part in self._parts(path):
            if not node.is_dir:
                return None
            nxt = node.child(part)
            if nxt is None:
                return None
            node = nxt
        return node

    # -- guest-side resolution -----------------------------------------------

    def resolve(
        self, base: FsNode, rel_path: str, create_file: bool = False
    ) -> Tuple[Optional[FsNode], str]:
        """Resolve ``rel_path`` against ``base`` without escaping it.

        Returns (node, error): node is None with a non-empty error string
        ("noent", "notdir", "escape") on failure. With ``create_file`` the
        final component is created as an empty file if missing.
        """
        parts = self._parts(rel_path)
        stack: List[FsNode] = [base]
        for i, part in enumerate(parts):
            node = stack[-1]
            if part == ".":
                continue
            if part == "..":
                if len(stack) == 1:
                    return None, "escape"
                stack.pop()
                continue
            if not node.is_dir:
                return None, "notdir"
            nxt = node.child(part)
            if nxt is None:
                if create_file and i == len(parts) - 1:
                    nxt = FsNode(name=part, is_dir=False)
                    node.children[part] = nxt
                else:
                    return None, "noent"
            stack.append(nxt)
        return stack[-1], ""

    def total_bytes(self) -> int:
        """Total file payload (used in container image size accounting)."""

        def walk(node: FsNode) -> int:
            if not node.is_dir:
                return node.size
            return sum(walk(c) for c in node.children.values())

        return walk(self.root)

    @staticmethod
    def _parts(path: str) -> List[str]:
        return [p for p in path.split("/") if p]
