"""Opcode table for the MVP core instruction set (+ small extensions).

Each instruction is identified in the AST by its canonical text name
(``"i32.add"``). This module maps names to binary opcodes and describes
each opcode's immediate encoding so the encoder/decoder can be generic.

Immediate kinds:

* ``NONE`` — no immediates,
* ``BLOCK`` — block type (structured instruction; body follows),
* ``IDX`` — one u32 index (local/global/func/label),
* ``MEMARG`` — align u32 + offset u32,
* ``BR_TABLE`` — vector of label indices + default,
* ``CALL_INDIRECT`` — type index u32 + table byte (0x00),
* ``I32`` / ``I64`` — signed LEB immediates,
* ``F32`` / ``F64`` — little-endian IEEE-754 immediates,
* ``MEM`` — single 0x00 byte (memory.size/grow),
* ``MEM2`` — two 0x00 bytes (memory.copy),
* ``DATA_IDX`` — data segment index (data.drop),
* ``DATA_MEM`` — data segment index + 0x00 memory byte (memory.init).
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple


class Imm(enum.Enum):
    NONE = "none"
    BLOCK = "block"
    IDX = "idx"
    MEMARG = "memarg"
    BR_TABLE = "br_table"
    CALL_INDIRECT = "call_indirect"
    I32 = "i32"
    I64 = "i64"
    F32 = "f32"
    F64 = "f64"
    MEM = "mem"
    MEM2 = "mem2"
    DATA_IDX = "data_idx"
    DATA_MEM = "data_mem"


# name -> (opcode, immediate kind). 0xFC-prefixed extension opcodes are
# encoded as 0xFC00 | sub-opcode.
OPCODES: Dict[str, Tuple[int, Imm]] = {
    # Control
    "unreachable": (0x00, Imm.NONE),
    "nop": (0x01, Imm.NONE),
    "block": (0x02, Imm.BLOCK),
    "loop": (0x03, Imm.BLOCK),
    "if": (0x04, Imm.BLOCK),
    "else": (0x05, Imm.NONE),
    "end": (0x0B, Imm.NONE),
    "br": (0x0C, Imm.IDX),
    "br_if": (0x0D, Imm.IDX),
    "br_table": (0x0E, Imm.BR_TABLE),
    "return": (0x0F, Imm.NONE),
    "call": (0x10, Imm.IDX),
    "call_indirect": (0x11, Imm.CALL_INDIRECT),
    # Parametric
    "drop": (0x1A, Imm.NONE),
    "select": (0x1B, Imm.NONE),
    # Variable
    "local.get": (0x20, Imm.IDX),
    "local.set": (0x21, Imm.IDX),
    "local.tee": (0x22, Imm.IDX),
    "global.get": (0x23, Imm.IDX),
    "global.set": (0x24, Imm.IDX),
    # Memory loads
    "i32.load": (0x28, Imm.MEMARG),
    "i64.load": (0x29, Imm.MEMARG),
    "f32.load": (0x2A, Imm.MEMARG),
    "f64.load": (0x2B, Imm.MEMARG),
    "i32.load8_s": (0x2C, Imm.MEMARG),
    "i32.load8_u": (0x2D, Imm.MEMARG),
    "i32.load16_s": (0x2E, Imm.MEMARG),
    "i32.load16_u": (0x2F, Imm.MEMARG),
    "i64.load8_s": (0x30, Imm.MEMARG),
    "i64.load8_u": (0x31, Imm.MEMARG),
    "i64.load16_s": (0x32, Imm.MEMARG),
    "i64.load16_u": (0x33, Imm.MEMARG),
    "i64.load32_s": (0x34, Imm.MEMARG),
    "i64.load32_u": (0x35, Imm.MEMARG),
    # Memory stores
    "i32.store": (0x36, Imm.MEMARG),
    "i64.store": (0x37, Imm.MEMARG),
    "f32.store": (0x38, Imm.MEMARG),
    "f64.store": (0x39, Imm.MEMARG),
    "i32.store8": (0x3A, Imm.MEMARG),
    "i32.store16": (0x3B, Imm.MEMARG),
    "i64.store8": (0x3C, Imm.MEMARG),
    "i64.store16": (0x3D, Imm.MEMARG),
    "i64.store32": (0x3E, Imm.MEMARG),
    "memory.size": (0x3F, Imm.MEM),
    "memory.grow": (0x40, Imm.MEM),
    # Constants
    "i32.const": (0x41, Imm.I32),
    "i64.const": (0x42, Imm.I64),
    "f32.const": (0x43, Imm.F32),
    "f64.const": (0x44, Imm.F64),
    # i32 comparisons
    "i32.eqz": (0x45, Imm.NONE),
    "i32.eq": (0x46, Imm.NONE),
    "i32.ne": (0x47, Imm.NONE),
    "i32.lt_s": (0x48, Imm.NONE),
    "i32.lt_u": (0x49, Imm.NONE),
    "i32.gt_s": (0x4A, Imm.NONE),
    "i32.gt_u": (0x4B, Imm.NONE),
    "i32.le_s": (0x4C, Imm.NONE),
    "i32.le_u": (0x4D, Imm.NONE),
    "i32.ge_s": (0x4E, Imm.NONE),
    "i32.ge_u": (0x4F, Imm.NONE),
    # i64 comparisons
    "i64.eqz": (0x50, Imm.NONE),
    "i64.eq": (0x51, Imm.NONE),
    "i64.ne": (0x52, Imm.NONE),
    "i64.lt_s": (0x53, Imm.NONE),
    "i64.lt_u": (0x54, Imm.NONE),
    "i64.gt_s": (0x55, Imm.NONE),
    "i64.gt_u": (0x56, Imm.NONE),
    "i64.le_s": (0x57, Imm.NONE),
    "i64.le_u": (0x58, Imm.NONE),
    "i64.ge_s": (0x59, Imm.NONE),
    "i64.ge_u": (0x5A, Imm.NONE),
    # f32 comparisons
    "f32.eq": (0x5B, Imm.NONE),
    "f32.ne": (0x5C, Imm.NONE),
    "f32.lt": (0x5D, Imm.NONE),
    "f32.gt": (0x5E, Imm.NONE),
    "f32.le": (0x5F, Imm.NONE),
    "f32.ge": (0x60, Imm.NONE),
    # f64 comparisons
    "f64.eq": (0x61, Imm.NONE),
    "f64.ne": (0x62, Imm.NONE),
    "f64.lt": (0x63, Imm.NONE),
    "f64.gt": (0x64, Imm.NONE),
    "f64.le": (0x65, Imm.NONE),
    "f64.ge": (0x66, Imm.NONE),
    # i32 arithmetic
    "i32.clz": (0x67, Imm.NONE),
    "i32.ctz": (0x68, Imm.NONE),
    "i32.popcnt": (0x69, Imm.NONE),
    "i32.add": (0x6A, Imm.NONE),
    "i32.sub": (0x6B, Imm.NONE),
    "i32.mul": (0x6C, Imm.NONE),
    "i32.div_s": (0x6D, Imm.NONE),
    "i32.div_u": (0x6E, Imm.NONE),
    "i32.rem_s": (0x6F, Imm.NONE),
    "i32.rem_u": (0x70, Imm.NONE),
    "i32.and": (0x71, Imm.NONE),
    "i32.or": (0x72, Imm.NONE),
    "i32.xor": (0x73, Imm.NONE),
    "i32.shl": (0x74, Imm.NONE),
    "i32.shr_s": (0x75, Imm.NONE),
    "i32.shr_u": (0x76, Imm.NONE),
    "i32.rotl": (0x77, Imm.NONE),
    "i32.rotr": (0x78, Imm.NONE),
    # i64 arithmetic
    "i64.clz": (0x79, Imm.NONE),
    "i64.ctz": (0x7A, Imm.NONE),
    "i64.popcnt": (0x7B, Imm.NONE),
    "i64.add": (0x7C, Imm.NONE),
    "i64.sub": (0x7D, Imm.NONE),
    "i64.mul": (0x7E, Imm.NONE),
    "i64.div_s": (0x7F, Imm.NONE),
    "i64.div_u": (0x80, Imm.NONE),
    "i64.rem_s": (0x81, Imm.NONE),
    "i64.rem_u": (0x82, Imm.NONE),
    "i64.and": (0x83, Imm.NONE),
    "i64.or": (0x84, Imm.NONE),
    "i64.xor": (0x85, Imm.NONE),
    "i64.shl": (0x86, Imm.NONE),
    "i64.shr_s": (0x87, Imm.NONE),
    "i64.shr_u": (0x88, Imm.NONE),
    "i64.rotl": (0x89, Imm.NONE),
    "i64.rotr": (0x8A, Imm.NONE),
    # f32 arithmetic
    "f32.abs": (0x8B, Imm.NONE),
    "f32.neg": (0x8C, Imm.NONE),
    "f32.ceil": (0x8D, Imm.NONE),
    "f32.floor": (0x8E, Imm.NONE),
    "f32.trunc": (0x8F, Imm.NONE),
    "f32.nearest": (0x90, Imm.NONE),
    "f32.sqrt": (0x91, Imm.NONE),
    "f32.add": (0x92, Imm.NONE),
    "f32.sub": (0x93, Imm.NONE),
    "f32.mul": (0x94, Imm.NONE),
    "f32.div": (0x95, Imm.NONE),
    "f32.min": (0x96, Imm.NONE),
    "f32.max": (0x97, Imm.NONE),
    "f32.copysign": (0x98, Imm.NONE),
    # f64 arithmetic
    "f64.abs": (0x99, Imm.NONE),
    "f64.neg": (0x9A, Imm.NONE),
    "f64.ceil": (0x9B, Imm.NONE),
    "f64.floor": (0x9C, Imm.NONE),
    "f64.trunc": (0x9D, Imm.NONE),
    "f64.nearest": (0x9E, Imm.NONE),
    "f64.sqrt": (0x9F, Imm.NONE),
    "f64.add": (0xA0, Imm.NONE),
    "f64.sub": (0xA1, Imm.NONE),
    "f64.mul": (0xA2, Imm.NONE),
    "f64.div": (0xA3, Imm.NONE),
    "f64.min": (0xA4, Imm.NONE),
    "f64.max": (0xA5, Imm.NONE),
    "f64.copysign": (0xA6, Imm.NONE),
    # Conversions
    "i32.wrap_i64": (0xA7, Imm.NONE),
    "i32.trunc_f32_s": (0xA8, Imm.NONE),
    "i32.trunc_f32_u": (0xA9, Imm.NONE),
    "i32.trunc_f64_s": (0xAA, Imm.NONE),
    "i32.trunc_f64_u": (0xAB, Imm.NONE),
    "i64.extend_i32_s": (0xAC, Imm.NONE),
    "i64.extend_i32_u": (0xAD, Imm.NONE),
    "i64.trunc_f32_s": (0xAE, Imm.NONE),
    "i64.trunc_f32_u": (0xAF, Imm.NONE),
    "i64.trunc_f64_s": (0xB0, Imm.NONE),
    "i64.trunc_f64_u": (0xB1, Imm.NONE),
    "f32.convert_i32_s": (0xB2, Imm.NONE),
    "f32.convert_i32_u": (0xB3, Imm.NONE),
    "f32.convert_i64_s": (0xB4, Imm.NONE),
    "f32.convert_i64_u": (0xB5, Imm.NONE),
    "f32.demote_f64": (0xB6, Imm.NONE),
    "f64.convert_i32_s": (0xB7, Imm.NONE),
    "f64.convert_i32_u": (0xB8, Imm.NONE),
    "f64.convert_i64_s": (0xB9, Imm.NONE),
    "f64.convert_i64_u": (0xBA, Imm.NONE),
    "f64.promote_f32": (0xBB, Imm.NONE),
    "i32.reinterpret_f32": (0xBC, Imm.NONE),
    "i64.reinterpret_f64": (0xBD, Imm.NONE),
    "f32.reinterpret_i32": (0xBE, Imm.NONE),
    "f64.reinterpret_i64": (0xBF, Imm.NONE),
    # Sign-extension extension
    "i32.extend8_s": (0xC0, Imm.NONE),
    "i32.extend16_s": (0xC1, Imm.NONE),
    "i64.extend8_s": (0xC2, Imm.NONE),
    "i64.extend16_s": (0xC3, Imm.NONE),
    "i64.extend32_s": (0xC4, Imm.NONE),
    # 0xFC-prefixed: saturating truncation + bulk memory subset
    "i32.trunc_sat_f32_s": (0xFC00, Imm.NONE),
    "i32.trunc_sat_f32_u": (0xFC01, Imm.NONE),
    "i32.trunc_sat_f64_s": (0xFC02, Imm.NONE),
    "i32.trunc_sat_f64_u": (0xFC03, Imm.NONE),
    "i64.trunc_sat_f32_s": (0xFC04, Imm.NONE),
    "i64.trunc_sat_f32_u": (0xFC05, Imm.NONE),
    "i64.trunc_sat_f64_s": (0xFC06, Imm.NONE),
    "i64.trunc_sat_f64_u": (0xFC07, Imm.NONE),
    "memory.init": (0xFC08, Imm.DATA_MEM),
    "data.drop": (0xFC09, Imm.DATA_IDX),
    "memory.copy": (0xFC0A, Imm.MEM2),
    "memory.fill": (0xFC0B, Imm.MEM),
}

OP_TO_NAME: Dict[int, str] = {code: name for name, (code, _imm) in OPCODES.items()}

# Structured instructions (carry a body in the AST).
STRUCTURED = frozenset({"block", "loop", "if"})


def imm_kind(name: str) -> Imm:
    return OPCODES[name][1]


def opcode(name: str) -> int:
    return OPCODES[name][0]
