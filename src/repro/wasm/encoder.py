"""Module AST → WebAssembly binary format."""

from __future__ import annotations

import struct
from typing import List

from repro.errors import WasmError
from repro.wasm import leb128
from repro.wasm.ast import (
    DataSegment,
    ElemSegment,
    Expr,
    Function,
    Global,
    Import,
    Module,
)
from repro.wasm.opcodes import Imm, OPCODES
from repro.wasm.types import (
    FuncType,
    GlobalType,
    Limits,
    MemoryType,
    TableType,
    ValType,
)

MAGIC = b"\x00asm"
VERSION = b"\x01\x00\x00\x00"

_SECTION_IDS = {
    "custom": 0,
    "type": 1,
    "import": 2,
    "function": 3,
    "table": 4,
    "memory": 5,
    "global": 6,
    "export": 7,
    "start": 8,
    "elem": 9,
    "code": 10,
    "data": 11,
}

_EXPORT_KIND = {"func": 0, "table": 1, "mem": 2, "global": 3}


def _vec(items: List[bytes]) -> bytes:
    return leb128.encode_u(len(items)) + b"".join(items)


def _name(s: str) -> bytes:
    raw = s.encode("utf-8")
    return leb128.encode_u(len(raw)) + raw


def _limits(lim: Limits) -> bytes:
    if lim.maximum is None:
        return b"\x00" + leb128.encode_u(lim.minimum)
    return b"\x01" + leb128.encode_u(lim.minimum) + leb128.encode_u(lim.maximum)


def _functype(ft: FuncType) -> bytes:
    return (
        b"\x60"
        + _vec([bytes([t.value]) for t in ft.params])
        + _vec([bytes([t.value]) for t in ft.results])
    )


def _globaltype(gt: GlobalType) -> bytes:
    return bytes([gt.valtype.value, 1 if gt.mutable else 0])


def _tabletype(tt: TableType) -> bytes:
    return bytes([tt.elem_kind]) + _limits(tt.limits)


def _blocktype(bt) -> bytes:
    if bt is None:
        return b"\x40"
    if isinstance(bt, ValType):
        return bytes([bt.value])
    if isinstance(bt, int):
        return leb128.encode_s(bt)
    raise WasmError(f"bad block type {bt!r}")


def encode_instr(ins, out: bytearray) -> None:
    """Append the flat encoding of one (possibly structured) instruction."""
    try:
        code, kind = OPCODES[ins.op]
    except KeyError:
        raise WasmError(f"unknown instruction {ins.op!r}") from None
    if code > 0xFF:
        out.append(0xFC)
        out += leb128.encode_u(code & 0xFF)
    else:
        out.append(code)

    if kind is Imm.NONE:
        pass
    elif kind is Imm.BLOCK:
        out += _blocktype(ins.blocktype)
        for child in ins.body:
            encode_instr(child, out)
        if ins.op == "if" and ins.else_body:
            out.append(0x05)
            for child in ins.else_body:
                encode_instr(child, out)
        out.append(0x0B)
    elif kind is Imm.IDX:
        out += leb128.encode_u(ins.args[0])
    elif kind is Imm.MEMARG:
        align, offset = ins.args
        out += leb128.encode_u(align) + leb128.encode_u(offset)
    elif kind is Imm.BR_TABLE:
        labels, default = ins.args
        out += _vec([leb128.encode_u(l) for l in labels])
        out += leb128.encode_u(default)
    elif kind is Imm.CALL_INDIRECT:
        out += leb128.encode_u(ins.args[0]) + b"\x00"
    elif kind is Imm.I32:
        out += leb128.encode_s(ins.args[0])
    elif kind is Imm.I64:
        out += leb128.encode_s(ins.args[0])
    elif kind is Imm.F32:
        out += struct.pack("<f", ins.args[0])
    elif kind is Imm.F64:
        out += struct.pack("<d", ins.args[0])
    elif kind is Imm.MEM:
        out.append(0x00)
    elif kind is Imm.MEM2:
        out += b"\x00\x00"
    elif kind is Imm.DATA_IDX:
        out += leb128.encode_u(ins.args[0])
    elif kind is Imm.DATA_MEM:
        out += leb128.encode_u(ins.args[0]) + b"\x00"
    else:  # pragma: no cover - table is exhaustive
        raise WasmError(f"unhandled immediate kind {kind}")


def _expr(body: Expr) -> bytes:
    out = bytearray()
    for ins in body:
        encode_instr(ins, out)
    out.append(0x0B)
    return bytes(out)


def _import(imp: Import) -> bytes:
    head = _name(imp.module) + _name(imp.name)
    if imp.kind == "func":
        return head + b"\x00" + leb128.encode_u(imp.desc)  # type: ignore[arg-type]
    if imp.kind == "table":
        return head + b"\x01" + _tabletype(imp.desc)  # type: ignore[arg-type]
    if imp.kind == "mem":
        return head + b"\x02" + _limits(imp.desc.limits)  # type: ignore[union-attr]
    if imp.kind == "global":
        return head + b"\x03" + _globaltype(imp.desc)  # type: ignore[arg-type]
    raise WasmError(f"bad import kind {imp.kind!r}")


def _code_entry(func: Function) -> bytes:
    # Group consecutive identical local types (the compressed form).
    groups: List[bytes] = []
    i = 0
    locs = func.locals
    while i < len(locs):
        j = i
        while j < len(locs) and locs[j] == locs[i]:
            j += 1
        groups.append(leb128.encode_u(j - i) + bytes([locs[i].value]))
        i = j
    body = _vec(groups) + _expr(func.body)
    return leb128.encode_u(len(body)) + body


def _section(section_id: int, payload: bytes) -> bytes:
    return bytes([section_id]) + leb128.encode_u(len(payload)) + payload


def _elem(seg: ElemSegment) -> bytes:
    return (
        leb128.encode_u(seg.table_idx)
        + _expr(seg.offset)
        + _vec([leb128.encode_u(f) for f in seg.func_indices])
    )


def _data(seg: DataSegment) -> bytes:
    """Data segment with its mode flag: 0 = active (memory 0),
    1 = passive, 2 = active with explicit memory index."""
    payload = leb128.encode_u(len(seg.data)) + seg.data
    if seg.passive:
        return b"\x01" + payload
    if seg.mem_idx == 0:
        return b"\x00" + _expr(seg.offset) + payload
    return b"\x02" + leb128.encode_u(seg.mem_idx) + _expr(seg.offset) + payload


def _uses_bulk_data_ops(module: Module) -> bool:
    """True when any body contains memory.init / data.drop — the binary
    then requires a DataCount section (id 12) before the code section."""

    def scan(body) -> bool:
        for ins in body:
            if ins.op in ("memory.init", "data.drop"):
                return True
            if scan(ins.body) or scan(ins.else_body):
                return True
        return False

    return any(scan(f.body) for f in module.funcs)


def _global(g: Global) -> bytes:
    return _globaltype(g.type) + _expr(g.init)


def encode_module(module: Module) -> bytes:
    """Serialize ``module`` to the binary format."""
    out = bytearray(MAGIC + VERSION)

    if module.types:
        out += _section(1, _vec([_functype(t) for t in module.types]))
    if module.imports:
        out += _section(2, _vec([_import(i) for i in module.imports]))
    if module.funcs:
        out += _section(3, _vec([leb128.encode_u(f.type_idx) for f in module.funcs]))
    if module.tables:
        out += _section(4, _vec([_tabletype(t) for t in module.tables]))
    if module.mems:
        out += _section(5, _vec([_limits(m.limits) for m in module.mems]))
    if module.globals:
        out += _section(6, _vec([_global(g) for g in module.globals]))
    if module.exports:
        out += _section(
            7,
            _vec(
                [
                    _name(e.name) + bytes([_EXPORT_KIND[e.kind]]) + leb128.encode_u(e.index)
                    for e in module.exports
                ]
            ),
        )
    if module.start is not None:
        out += _section(8, leb128.encode_u(module.start))
    if module.elems:
        out += _section(9, _vec([_elem(s) for s in module.elems]))
    if module.datas and (_uses_bulk_data_ops(module) or any(s.passive for s in module.datas)):
        out += _section(12, leb128.encode_u(len(module.datas)))
    if module.funcs:
        out += _section(10, _vec([_code_entry(f) for f in module.funcs]))
    if module.datas:
        out += _section(11, _vec([_data(s) for s in module.datas]))
    for custom in module.customs:
        out += _section(0, _name(custom.name) + custom.payload)

    return bytes(out)
