"""Type-checking module validator.

Implements the algorithm from the spec appendix ("Validation Algorithm"):
an operand stack of known/unknown value types and a control stack tracking
label types and unreachability, plus the module-level checks (index bounds,
constant expressions, single memory/table, export uniqueness, alignment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.errors import InvalidModule
from repro.wasm.ast import Expr, Function, Instr, Module
from repro.wasm.opcodes import Imm, OPCODES
from repro.wasm.types import FuncType, GlobalType, MemoryType, TableType, ValType

I32, I64, F32, F64 = ValType.I32, ValType.I64, ValType.F32, ValType.F64

# Operand-stack entries: a concrete ValType or None = unknown (polymorphic).
StackType = Optional[ValType]

# Simple (inputs -> outputs) signatures for the non-polymorphic ops.
_SIGS: dict[str, Tuple[Tuple[ValType, ...], Tuple[ValType, ...]]] = {}


def _sig(names: str, ins: Tuple[ValType, ...], outs: Tuple[ValType, ...]) -> None:
    for name in names.split():
        _SIGS[name] = (ins, outs)


# Comparisons
_sig("i32.eqz", (I32,), (I32,))
_sig("i64.eqz", (I64,), (I32,))
_sig(
    "i32.eq i32.ne i32.lt_s i32.lt_u i32.gt_s i32.gt_u i32.le_s i32.le_u "
    "i32.ge_s i32.ge_u",
    (I32, I32),
    (I32,),
)
_sig(
    "i64.eq i64.ne i64.lt_s i64.lt_u i64.gt_s i64.gt_u i64.le_s i64.le_u "
    "i64.ge_s i64.ge_u",
    (I64, I64),
    (I32,),
)
_sig("f32.eq f32.ne f32.lt f32.gt f32.le f32.ge", (F32, F32), (I32,))
_sig("f64.eq f64.ne f64.lt f64.gt f64.le f64.ge", (F64, F64), (I32,))
# Integer arithmetic
_sig("i32.clz i32.ctz i32.popcnt i32.extend8_s i32.extend16_s", (I32,), (I32,))
_sig(
    "i64.clz i64.ctz i64.popcnt i64.extend8_s i64.extend16_s i64.extend32_s",
    (I64,),
    (I64,),
)
_sig(
    "i32.add i32.sub i32.mul i32.div_s i32.div_u i32.rem_s i32.rem_u i32.and "
    "i32.or i32.xor i32.shl i32.shr_s i32.shr_u i32.rotl i32.rotr",
    (I32, I32),
    (I32,),
)
_sig(
    "i64.add i64.sub i64.mul i64.div_s i64.div_u i64.rem_s i64.rem_u i64.and "
    "i64.or i64.xor i64.shl i64.shr_s i64.shr_u i64.rotl i64.rotr",
    (I64, I64),
    (I64,),
)
# Float arithmetic
_sig("f32.abs f32.neg f32.ceil f32.floor f32.trunc f32.nearest f32.sqrt", (F32,), (F32,))
_sig("f64.abs f64.neg f64.ceil f64.floor f64.trunc f64.nearest f64.sqrt", (F64,), (F64,))
_sig("f32.add f32.sub f32.mul f32.div f32.min f32.max f32.copysign", (F32, F32), (F32,))
_sig("f64.add f64.sub f64.mul f64.div f64.min f64.max f64.copysign", (F64, F64), (F64,))
# Conversions
_sig("i32.wrap_i64", (I64,), (I32,))
_sig(
    "i32.trunc_f32_s i32.trunc_f32_u i32.trunc_sat_f32_s i32.trunc_sat_f32_u "
    "i32.reinterpret_f32",
    (F32,),
    (I32,),
)
_sig("i32.trunc_f64_s i32.trunc_f64_u i32.trunc_sat_f64_s i32.trunc_sat_f64_u", (F64,), (I32,))
_sig("i64.extend_i32_s i64.extend_i32_u", (I32,), (I64,))
_sig("i64.trunc_f32_s i64.trunc_f32_u i64.trunc_sat_f32_s i64.trunc_sat_f32_u", (F32,), (I64,))
_sig(
    "i64.trunc_f64_s i64.trunc_f64_u i64.trunc_sat_f64_s i64.trunc_sat_f64_u "
    "i64.reinterpret_f64",
    (F64,),
    (I64,),
)
_sig("f32.convert_i32_s f32.convert_i32_u f32.reinterpret_i32", (I32,), (F32,))
_sig("f32.convert_i64_s f32.convert_i64_u", (I64,), (F32,))
_sig("f32.demote_f64", (F64,), (F32,))
_sig("f64.convert_i32_s f64.convert_i32_u", (I32,), (F64,))
_sig("f64.convert_i64_s f64.convert_i64_u f64.reinterpret_i64", (I64,), (F64,))
_sig("f64.promote_f32", (F32,), (F64,))
# Constants
_sig("i32.const", (), (I32,))
_sig("i64.const", (), (I64,))
_sig("f32.const", (), (F32,))
_sig("f64.const", (), (F64,))
# Memory access
_LOAD_TYPE = {
    "i32.load": I32, "i64.load": I64, "f32.load": F32, "f64.load": F64,
    "i32.load8_s": I32, "i32.load8_u": I32, "i32.load16_s": I32, "i32.load16_u": I32,
    "i64.load8_s": I64, "i64.load8_u": I64, "i64.load16_s": I64, "i64.load16_u": I64,
    "i64.load32_s": I64, "i64.load32_u": I64,
}
_STORE_TYPE = {
    "i32.store": I32, "i64.store": I64, "f32.store": F32, "f64.store": F64,
    "i32.store8": I32, "i32.store16": I32,
    "i64.store8": I64, "i64.store16": I64, "i64.store32": I64,
}
_ACCESS_WIDTH = {  # bytes touched — bounds the allowed alignment
    "i32.load": 4, "i64.load": 8, "f32.load": 4, "f64.load": 8,
    "i32.load8_s": 1, "i32.load8_u": 1, "i32.load16_s": 2, "i32.load16_u": 2,
    "i64.load8_s": 1, "i64.load8_u": 1, "i64.load16_s": 2, "i64.load16_u": 2,
    "i64.load32_s": 4, "i64.load32_u": 4,
    "i32.store": 4, "i64.store": 8, "f32.store": 4, "f64.store": 8,
    "i32.store8": 1, "i32.store16": 2,
    "i64.store8": 1, "i64.store16": 2, "i64.store32": 4,
}


@dataclass
class _Ctrl:
    op: str
    start_types: Tuple[ValType, ...]
    end_types: Tuple[ValType, ...]
    height: int
    unreachable: bool = False


@dataclass
class _FuncContext:
    module: Module
    locals: List[ValType]
    return_types: Tuple[ValType, ...]
    stack: List[StackType] = field(default_factory=list)
    ctrls: List[_Ctrl] = field(default_factory=list)

    # -- stack ops (spec appendix) -----------------------------------------

    def push(self, t: StackType) -> None:
        self.stack.append(t)

    def pop(self, expect: StackType = None) -> StackType:
        ctrl = self.ctrls[-1]
        if len(self.stack) == ctrl.height:
            if ctrl.unreachable:
                return expect
            raise InvalidModule(f"stack underflow in {ctrl.op}")
        actual = self.stack.pop()
        if expect is not None and actual is not None and actual != expect:
            raise InvalidModule(f"type mismatch: expected {expect!r}, got {actual!r}")
        return actual if actual is not None else expect

    def push_many(self, types: Tuple[ValType, ...]) -> None:
        for t in types:
            self.push(t)

    def pop_many(self, types: Tuple[ValType, ...]) -> None:
        for t in reversed(types):
            self.pop(t)

    def push_ctrl(self, op: str, start: Tuple[ValType, ...], end: Tuple[ValType, ...]) -> None:
        self.ctrls.append(_Ctrl(op, start, end, len(self.stack)))
        self.push_many(start)

    def pop_ctrl(self) -> _Ctrl:
        if not self.ctrls:
            raise InvalidModule("control stack underflow")
        ctrl = self.ctrls[-1]
        self.pop_many(ctrl.end_types)
        if len(self.stack) != ctrl.height:
            raise InvalidModule(f"values left on stack at end of {ctrl.op}")
        return self.ctrls.pop()

    def set_unreachable(self) -> None:
        ctrl = self.ctrls[-1]
        del self.stack[ctrl.height :]
        ctrl.unreachable = True

    def label_types(self, depth: int) -> Tuple[ValType, ...]:
        if depth >= len(self.ctrls):
            raise InvalidModule(f"branch depth {depth} exceeds nesting {len(self.ctrls)}")
        ctrl = self.ctrls[-1 - depth]
        # Branches to a loop re-enter with its *start* types.
        return ctrl.start_types if ctrl.op == "loop" else ctrl.end_types


def _block_signature(module: Module, bt) -> FuncType:
    if bt is None:
        return FuncType()
    if isinstance(bt, ValType):
        return FuncType((), (bt,))
    if isinstance(bt, int):
        if bt >= len(module.types):
            raise InvalidModule(f"block type index {bt} out of range")
        return module.types[bt]
    raise InvalidModule(f"bad block type {bt!r}")


class _Validator:
    def __init__(self, module: Module) -> None:
        self.module = module
        # Precompute joint index spaces.
        self.func_types: List[FuncType] = []
        self.global_types: List[GlobalType] = []
        self.table_types: List[TableType] = []
        self.mem_types: List[MemoryType] = []
        self.num_imported_globals = 0
        for imp in module.imports:
            if imp.kind == "func":
                if not isinstance(imp.desc, int) or imp.desc >= len(module.types):
                    raise InvalidModule(f"import {imp.module}.{imp.name}: bad type index")
                self.func_types.append(module.types[imp.desc])
            elif imp.kind == "global":
                self.global_types.append(imp.desc)  # type: ignore[arg-type]
                self.num_imported_globals += 1
            elif imp.kind == "table":
                self.table_types.append(imp.desc)  # type: ignore[arg-type]
            elif imp.kind == "mem":
                self.mem_types.append(imp.desc)  # type: ignore[arg-type]
        for func in module.funcs:
            if func.type_idx >= len(module.types):
                raise InvalidModule(f"function type index {func.type_idx} out of range")
            self.func_types.append(module.types[func.type_idx])
        self.global_types.extend(g.type for g in module.globals)
        self.table_types.extend(module.tables)
        self.mem_types.extend(module.mems)

    # -- module-level ---------------------------------------------------------

    def validate(self) -> None:
        m = self.module
        if len(self.mem_types) > 1:
            raise InvalidModule("multiple memories are not allowed (MVP)")
        if len(self.table_types) > 1:
            raise InvalidModule("multiple tables are not allowed (MVP)")

        for i, g in enumerate(m.globals):
            self._check_const_expr(g.init, g.type.valtype, f"global {i}")

        for i, seg in enumerate(m.elems):
            if seg.table_idx >= len(self.table_types):
                raise InvalidModule(f"elem segment {i}: no table {seg.table_idx}")
            self._check_const_expr(seg.offset, I32, f"elem segment {i} offset")
            for f in seg.func_indices:
                if f >= len(self.func_types):
                    raise InvalidModule(f"elem segment {i}: no function {f}")

        for i, seg in enumerate(m.datas):
            if seg.passive:
                continue  # passive segments have no offset to check
            if seg.mem_idx >= len(self.mem_types):
                raise InvalidModule(f"data segment {i}: no memory {seg.mem_idx}")
            self._check_const_expr(seg.offset, I32, f"data segment {i} offset")

        seen_exports: set = set()
        limits = {
            "func": len(self.func_types),
            "table": len(self.table_types),
            "mem": len(self.mem_types),
            "global": len(self.global_types),
        }
        for ex in m.exports:
            if ex.name in seen_exports:
                raise InvalidModule(f"duplicate export name {ex.name!r}")
            seen_exports.add(ex.name)
            if ex.kind not in limits:
                raise InvalidModule(f"bad export kind {ex.kind!r}")
            if ex.index >= limits[ex.kind]:
                raise InvalidModule(
                    f"export {ex.name!r}: {ex.kind} index {ex.index} out of range"
                )

        if m.start is not None:
            if m.start >= len(self.func_types):
                raise InvalidModule(f"start function {m.start} out of range")
            st = self.func_types[m.start]
            if st.params or st.results:
                raise InvalidModule(f"start function must be [] -> [], got {st}")

        n_imported = m.num_imported_funcs()
        for i, func in enumerate(m.funcs):
            self._validate_func(func, self.func_types[n_imported + i])

    def _check_const_expr(self, expr: Expr, expect: ValType, what: str) -> None:
        if len(expr) != 1:
            raise InvalidModule(f"{what}: constant expression must be one instruction")
        ins = expr[0]
        const_types = {
            "i32.const": I32,
            "i64.const": I64,
            "f32.const": F32,
            "f64.const": F64,
        }
        if ins.op in const_types:
            got = const_types[ins.op]
        elif ins.op == "global.get":
            idx = ins.args[0]
            if idx >= self.num_imported_globals:
                raise InvalidModule(f"{what}: global.get must reference an imported global")
            gt = self.global_types[idx]
            if gt.mutable:
                raise InvalidModule(f"{what}: constant global.get must be immutable")
            got = gt.valtype
        else:
            raise InvalidModule(f"{what}: non-constant instruction {ins.op}")
        if got != expect:
            raise InvalidModule(f"{what}: expected {expect!r}, got {got!r}")

    # -- function bodies -----------------------------------------------------------

    def _validate_func(self, func: Function, sig: FuncType) -> None:
        ctx = _FuncContext(
            module=self.module,
            locals=list(sig.params) + list(func.locals),
            return_types=sig.results,
        )
        ctx.push_ctrl("func", (), sig.results)
        self._seq(ctx, func.body)
        ctx.pop_ctrl()
        if ctx.stack:
            raise InvalidModule("operand stack not empty at function end")

    def _seq(self, ctx: _FuncContext, body: Expr) -> None:
        for ins in body:
            self._instr(ctx, ins)

    def _instr(self, ctx: _FuncContext, ins: Instr) -> None:
        op = ins.op
        sig = _SIGS.get(op)
        if sig is not None:
            ctx.pop_many(sig[0])
            ctx.push_many(sig[1])
            if op in _ACCESS_WIDTH:  # consts share _SIGS; loads/stores don't
                pass
            return

        if op == "nop":
            return
        if op == "unreachable":
            ctx.set_unreachable()
            return
        if op in ("block", "loop", "if"):
            bsig = _block_signature(ctx.module, ins.blocktype)
            if op == "if":
                ctx.pop(I32)
            ctx.pop_many(bsig.params)
            ctx.push_ctrl(op, bsig.params, bsig.results)
            self._seq(ctx, ins.body)
            inner = ctx.pop_ctrl()
            if op == "if":
                if ins.else_body or bsig.params or bsig.results:
                    if not ins.else_body and bsig.params != bsig.results:
                        raise InvalidModule("if without else must have matching types")
                if ins.else_body:
                    ctx.push_ctrl("else", inner.start_types, inner.end_types)
                    # Re-run with fresh stack for else arm.
                    self._seq(ctx, ins.else_body)
                    ctx.pop_ctrl()
            ctx.push_many(bsig.results)
            return
        if op == "br":
            depth = ins.args[0]
            ctx.pop_many(ctx.label_types(depth))
            ctx.set_unreachable()
            return
        if op == "br_if":
            depth = ins.args[0]
            ctx.pop(I32)
            types = ctx.label_types(depth)
            ctx.pop_many(types)
            ctx.push_many(types)
            return
        if op == "br_table":
            labels, default = ins.args
            ctx.pop(I32)
            default_types = ctx.label_types(default)
            for l in labels:
                if ctx.label_types(l) != default_types:
                    raise InvalidModule("br_table label type mismatch")
            ctx.pop_many(default_types)
            ctx.set_unreachable()
            return
        if op == "return":
            ctx.pop_many(ctx.return_types)
            ctx.set_unreachable()
            return
        if op == "call":
            idx = ins.args[0]
            if idx >= len(self.func_types):
                raise InvalidModule(f"call to unknown function {idx}")
            fsig = self.func_types[idx]
            ctx.pop_many(fsig.params)
            ctx.push_many(fsig.results)
            return
        if op == "call_indirect":
            if not self.table_types:
                raise InvalidModule("call_indirect requires a table")
            type_idx = ins.args[0]
            if type_idx >= len(ctx.module.types):
                raise InvalidModule(f"call_indirect: type {type_idx} out of range")
            fsig = ctx.module.types[type_idx]
            ctx.pop(I32)
            ctx.pop_many(fsig.params)
            ctx.push_many(fsig.results)
            return
        if op == "drop":
            ctx.pop()
            return
        if op == "select":
            ctx.pop(I32)
            t1 = ctx.pop()
            t2 = ctx.pop(t1)
            ctx.push(t2 if t2 is not None else t1)
            return
        if op in ("local.get", "local.set", "local.tee"):
            idx = ins.args[0]
            if idx >= len(ctx.locals):
                raise InvalidModule(f"{op}: local {idx} out of range")
            lt = ctx.locals[idx]
            if op == "local.get":
                ctx.push(lt)
            elif op == "local.set":
                ctx.pop(lt)
            else:
                ctx.pop(lt)
                ctx.push(lt)
            return
        if op in ("global.get", "global.set"):
            idx = ins.args[0]
            if idx >= len(self.global_types):
                raise InvalidModule(f"{op}: global {idx} out of range")
            gt = self.global_types[idx]
            if op == "global.get":
                ctx.push(gt.valtype)
            else:
                if not gt.mutable:
                    raise InvalidModule(f"global.set on immutable global {idx}")
                ctx.pop(gt.valtype)
            return
        if op in _LOAD_TYPE:
            self._check_mem(ins, op)
            ctx.pop(I32)
            ctx.push(_LOAD_TYPE[op])
            return
        if op in _STORE_TYPE:
            self._check_mem(ins, op)
            ctx.pop(_STORE_TYPE[op])
            ctx.pop(I32)
            return
        if op in ("memory.size", "memory.grow"):
            self._require_mem(op)
            if op == "memory.grow":
                ctx.pop(I32)
            ctx.push(I32)
            return
        if op == "memory.fill":
            self._require_mem(op)
            ctx.pop(I32)
            ctx.pop(I32)
            ctx.pop(I32)
            return
        if op == "memory.copy":
            self._require_mem(op)
            ctx.pop(I32)
            ctx.pop(I32)
            ctx.pop(I32)
            return
        if op == "memory.init":
            self._require_mem(op)
            if ins.args[0] >= len(ctx.module.datas):
                raise InvalidModule(f"memory.init: no data segment {ins.args[0]}")
            ctx.pop(I32)
            ctx.pop(I32)
            ctx.pop(I32)
            return
        if op == "data.drop":
            if ins.args[0] >= len(ctx.module.datas):
                raise InvalidModule(f"data.drop: no data segment {ins.args[0]}")
            return
        raise InvalidModule(f"validator: unhandled instruction {op!r}")

    def _require_mem(self, op: str) -> None:
        if not self.mem_types:
            raise InvalidModule(f"{op} requires a memory")

    def _check_mem(self, ins: Instr, op: str) -> None:
        self._require_mem(op)
        align = ins.args[0]
        width = _ACCESS_WIDTH[op]
        if (1 << align) > width:
            raise InvalidModule(
                f"{op}: alignment 2**{align} exceeds access width {width}"
            )


def validate_module(module: Module) -> Module:
    """Validate ``module``; returns it unchanged on success.

    Raises:
        InvalidModule: on any type or index-space violation.
    """
    _Validator(module).validate()
    return module
