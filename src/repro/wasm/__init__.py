"""A from-scratch WebAssembly (MVP core) toolchain.

This package implements the substrate every engine model executes on:

* :mod:`repro.wasm.leb128` — LEB128 varint codec,
* :mod:`repro.wasm.types` / :mod:`repro.wasm.ast` — type and module ASTs,
* :mod:`repro.wasm.encoder` / :mod:`repro.wasm.decoder` — binary format
  (full roundtrip),
* :mod:`repro.wasm.wat` — text-format assembler (s-expressions → module),
* :mod:`repro.wasm.validation` — spec-style type-checking validator,
* :mod:`repro.wasm.runtime` — stack-machine interpreter with linear
  memory, tables, globals, host functions, and traps,
* :mod:`repro.wasm.wasi` — WASI ``snapshot_preview1`` subset over an
  in-memory filesystem.

Coverage: the full MVP numeric/parametric/variable/memory/control
instruction set plus the sign-extension and saturating-truncation
extensions; no SIMD, threads, or reference types (the paper's workloads
need none of them).
"""

from repro.wasm.ast import Module
from repro.wasm.decoder import decode_module
from repro.wasm.encoder import encode_module
from repro.wasm.validation import validate_module
from repro.wasm.wat import parse_wat, assemble_wat

__all__ = [
    "Module",
    "decode_module",
    "encode_module",
    "validate_module",
    "parse_wat",
    "assemble_wat",
]
