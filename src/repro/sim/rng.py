"""Named deterministic random streams.

Every stochastic term in the simulation (startup jitter, allocator slack)
draws from a stream named after the component that uses it. Streams are
derived from a root seed with SeedSequence spawning, so adding a new
consumer never perturbs the draws of existing ones — experiments stay
reproducible across library versions as long as stream names are stable.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngStreams:
    """Factory of independent, seeded :class:`numpy.random.Generator`\\ s."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields an identical sequence.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Stable 32-bit hash of the name; Python's hash() is salted per
            # process and would break determinism.
            name_key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence([self._seed, name_key])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def jitter(self, name: str, scale: float) -> float:
        """One absolute half-normal jitter draw with std ``scale``."""
        return abs(float(self.stream(name).normal(0.0, scale)))

    def fork(self, salt: int) -> "RngStreams":
        """Derive an independent stream family (e.g. one per repetition)."""
        return RngStreams(seed=(self._seed * 1_000_003 + salt) & 0x7FFFFFFF)
