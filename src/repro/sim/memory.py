"""Node-wide memory accounting.

This module answers the two questions the paper's two measurement channels
ask (§IV-B):

* the **`free(1)` view** — whole-system usage including every daemon, shim,
  kernel per-pod overhead, and the page cache, and
* the **metrics-server view** — per-cgroup working sets covering only the
  processes inside pod cgroups, with shared file pages charged to the cgroup
  that faulted them first.

The difference between the two (paper: ``free`` reports up to 42% more) is
not a fudge factor here: it emerges because shim processes, the containerd
daemon's growth, and kernel per-pod structures live *outside* pod cgroups.

Accounting is **incremental**: the model keeps running totals (node private
bytes, distinct shared-file bytes, page cache) and a per-cgroup ledger,
updated on every segment mutation via the :class:`~repro.sim.process.SimProcess`
observer hooks. ``map_private`` admission, ``free_report()``,
``node_working_set()`` are O(1); ``cgroup_working_set()`` is O(cgroups +
files) instead of O(processes × segments). The pre-incremental full-scan
implementations survive as :class:`ReferenceAccountant`, and the model can
run in three modes (``REPRO_MEMORY_ACCOUNTING`` or the ``accounting``
constructor argument):

* ``incremental`` — running counters only (default, fast path),
* ``reference``   — answer every query with a full scan (the old behavior;
  used to benchmark the speedup),
* ``audit``       — compute both and raise :class:`SimulationError` on any
  byte-level disagreement (mirrors the PR 2 ``ReferenceInterpreter``
  differential-testing pattern; exercised by the hypothesis suite).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro import obs
from repro.errors import OutOfMemory, SimulationError
from repro.sim.process import MemorySegment, SegmentKind, SimProcess

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

ACCOUNTING_MODES = ("incremental", "reference", "audit")

#: environment knob consulted when the constructor gets no explicit mode
ACCOUNTING_ENV = "REPRO_MEMORY_ACCOUNTING"


@dataclass(frozen=True)
class FreeReport:
    """Snapshot shaped like the columns of ``free -b``."""

    total: int
    used: int
    free: int
    shared: int
    buff_cache: int
    available: int

    def used_plus_cache(self) -> int:
        """System footprint including reclaimable cache.

        This is the quantity the paper's OS-level channel tracks between
        deployments: daemons, shims, kernel structures, and the page cache
        populated by image pulls all land in it.
        """
        return self.used + self.buff_cache


class ReferenceAccountant:
    """Full-scan accounting over a model's ground-truth structures.

    This is the pre-incremental implementation, retained verbatim as the
    oracle: it derives every answer by walking ``_procs`` /
    ``_file_mappers`` / ``_page_cache``, never consulting the running
    counters. Audit mode and the property suite compare it byte-for-byte
    against the incremental ledger.
    """

    def __init__(self, model: "SystemMemoryModel") -> None:
        self._m = model

    def _proc_private(self, proc: SimProcess) -> int:
        # Recompute from raw segments: the cached SimProcess.private_bytes
        # is itself under test, so the oracle must not consult it. COW
        # segments contribute their split (dirtied) bytes.
        total = 0
        for s in proc.segments.values():
            if s.kind is SegmentKind.PRIVATE:
                total += s.size
            elif s.kind is SegmentKind.COW:
                total += s.cow_dirty
        return total

    def private_total(self) -> int:
        return sum(self._proc_private(p) for p in self._m._procs.values())

    def shared_key_size(self, file_key: str) -> int:
        """One shared key's accounted extent: the first mapper's mapping.

        Covers both file-backed text and COW zygote extents (a COW
        segment's clean *and* dirty pages stay resident node-wide: the
        snapshot image is never shrunk by one process's writes).
        """
        mappers = self._m._file_mappers.get(file_key, ())
        first = self._m._procs.get(mappers[0]) if mappers else None
        if first is None:
            return 0
        for seg in first.shared_segments():
            if seg.file_key == file_key:
                return seg.size
        return 0

    def distinct_file_bytes(self) -> int:
        total = 0
        for file_key in self._m._file_mappers:
            total += self.shared_key_size(file_key)
        return total

    def node_working_set(self) -> int:
        return self.private_total() + self.distinct_file_bytes()

    def page_cache_bytes(self) -> int:
        return sum(self._m._page_cache.values())

    def charged_cgroup(self, file_key: str) -> Optional[str]:
        """Cgroup paying for a shared file: the first *live* mapper's."""
        for pid in self._m._file_mappers.get(file_key, ()):
            proc = self._m._procs.get(pid)
            if proc is not None and proc.alive:
                return proc.cgroup
        return None

    def cgroup_working_set(self, cgroup_prefix: str) -> int:
        total = 0
        for proc in self._m._procs.values():
            if proc.cgroup.startswith(cgroup_prefix):
                total += self._proc_private(proc)
        for file_key in self._m._file_mappers:
            owner = self.charged_cgroup(file_key)
            if owner is not None and owner.startswith(cgroup_prefix):
                total += self.shared_key_size(file_key)
        return total


class SystemMemoryModel:
    """Tracks processes, shared file residency, page cache, kernel overhead."""

    def __init__(
        self,
        total_bytes: int = 256 * GIB,
        kernel_base: int = 600 * MIB,
        accounting: Optional[str] = None,
    ) -> None:
        if total_bytes <= 0:
            raise SimulationError("total_bytes must be positive")
        if accounting is None:
            accounting = os.environ.get(ACCOUNTING_ENV, "incremental")
        if accounting not in ACCOUNTING_MODES:
            raise SimulationError(
                f"unknown accounting mode {accounting!r}; pick one of {ACCOUNTING_MODES}"
            )
        self.accounting = accounting
        self.total_bytes = total_bytes
        # Kernel text/slab base plus per-pod kernel overhead added later.
        self.kernel_bytes = kernel_base
        self._procs: Dict[int, SimProcess] = {}
        self._next_pid = 100
        # file_key -> ordered list of mapping pids (first = charge owner)
        self._file_mappers: Dict[str, List[int]] = {}
        # file_key -> resident page-cache bytes (image layers, etc.)
        self._page_cache: Dict[str, int] = {}
        # -- incremental ledger -------------------------------------------
        # Every entry below is derivable from the structures above; the
        # observer hooks keep them in lockstep so queries are O(1)/O(pods).
        self._private_total = 0
        self._cgroup_private: Dict[str, int] = {}
        self._file_sizes: Dict[str, int] = {}  # accounted size (first mapper's)
        self._file_owner: Dict[str, Optional[str]] = {}  # charged cgroup
        self._file_total = 0
        self._cache_total = 0
        self.reference = ReferenceAccountant(self)
        # Query/audit telemetry, children pre-bound (hot path).
        _m_queries = obs.counter(
            "repro_memory_queries_total",
            "memory-accounting queries answered, by query kind",
            ("query",),
        )
        self._q_free = _m_queries.labels("free_report")
        self._q_node = _m_queries.labels("node_working_set")
        self._q_cgroup = _m_queries.labels("cgroup_working_set")
        _m_audit = obs.counter(
            "repro_memory_audit_total",
            "audit-mode incremental-vs-reference cross-checks, by result",
            ("result",),
        )
        self._a_ok = _m_audit.labels("ok")
        self._a_drift = _m_audit.labels("drift")

    # -- process lifecycle ---------------------------------------------------

    def spawn(self, name: str, cgroup: str = "/", start_time: float = 0.0) -> SimProcess:
        pid = self._next_pid
        self._next_pid += 1
        proc = SimProcess(pid=pid, name=name, cgroup=cgroup, start_time=start_time)
        proc._observer = self
        self._procs[pid] = proc
        return proc

    def exit(self, proc: SimProcess) -> None:
        """Terminate a process, releasing its mappings."""
        if not proc.alive:
            return
        proc.alive = False
        for seg in list(proc.shared_segments()):
            self._unmap_file(proc.pid, seg.file_key)  # type: ignore[arg-type]
        del self._procs[proc.pid]
        proc._observer = None
        self._add_cgroup_private(proc.cgroup, -proc.private_bytes())

    def processes(self) -> Iterable[SimProcess]:
        return self._procs.values()

    def process_count(self) -> int:
        return len(self._procs)

    def find(self, name_prefix: str) -> List[SimProcess]:
        return [p for p in self._procs.values() if p.name.startswith(name_prefix)]

    # -- segment observer hooks (called by SimProcess mutators) ---------------

    def _add_cgroup_private(self, cgroup: str, delta: int) -> None:
        self._private_total += delta
        updated = self._cgroup_private.get(cgroup, 0) + delta
        if updated:
            self._cgroup_private[cgroup] = updated
        else:
            self._cgroup_private.pop(cgroup, None)

    def segment_added(self, proc: SimProcess, seg: MemorySegment) -> None:
        # FILE_TEXT/COW registration happens in map_file/map_cow (a bare
        # add_segment of a shared mapping is invisible node-wide, as in
        # the reference scan), but a COW segment's already-split bytes are
        # private from the moment it appears.
        if proc.pid not in self._procs:
            return
        if seg.kind is SegmentKind.PRIVATE:
            self._add_cgroup_private(proc.cgroup, seg.size)
        elif seg.kind is SegmentKind.COW and seg.cow_dirty:
            self._add_cgroup_private(proc.cgroup, seg.cow_dirty)

    def segment_removed(self, proc: SimProcess, seg: MemorySegment) -> None:
        if proc.pid not in self._procs:
            return
        if seg.kind is SegmentKind.PRIVATE:
            self._add_cgroup_private(proc.cgroup, -seg.size)
        else:
            # munmap semantics: dropping a shared mapping releases the
            # process's claim on the shared pages (and, for COW, frees
            # the private copies it split off).
            if seg.kind is SegmentKind.COW and seg.cow_dirty:
                self._add_cgroup_private(proc.cgroup, -seg.cow_dirty)
            self._unmap_file(proc.pid, seg.file_key)  # type: ignore[arg-type]

    def segment_resized(self, proc: SimProcess, seg: MemorySegment, old_size: int) -> None:
        if proc.pid not in self._procs:
            return
        if seg.kind is SegmentKind.PRIVATE:
            self._add_cgroup_private(proc.cgroup, seg.size - old_size)
        elif seg.file_key in self._file_mappers:
            # Node-wide size follows the first mapper's mapping.
            self._refresh_file_size(seg.file_key)  # type: ignore[arg-type]

    def segment_cow_split(
        self, proc: SimProcess, seg: MemorySegment, old_dirty: int
    ) -> None:
        """A COW segment's split bytes changed: move the delta between the
        shared snapshot image and the process's private charge. The shared
        extent itself stays put (the snapshot pages remain resident)."""
        if proc.pid in self._procs:
            self._add_cgroup_private(proc.cgroup, seg.cow_dirty - old_dirty)

    def _refresh_file_size(self, file_key: str) -> None:
        """Re-derive one shared key's accounted size from its first mapper."""
        size = 0
        first = self._procs.get(self._file_mappers[file_key][0])
        if first is not None:
            for seg in first.shared_segments():
                if seg.file_key == file_key:
                    size = seg.size
                    break
        self._file_total += size - self._file_sizes.get(file_key, 0)
        self._file_sizes[file_key] = size

    def _refresh_file_owner(self, file_key: str) -> None:
        owner = None
        for pid in self._file_mappers.get(file_key, ()):
            proc = self._procs.get(pid)
            if proc is not None and proc.alive:
                owner = proc.cgroup
                break
        self._file_owner[file_key] = owner

    # -- segments -------------------------------------------------------------

    def map_private(self, proc: SimProcess, size: int, label: str = "heap") -> str:
        """Allocate private memory, enforcing the node's physical limit.

        Raises:
            OutOfMemory: when the allocation would not fit even after
                dropping the (reclaimable) page cache — the point where
                Linux would OOM-kill.
        """
        projected = self.node_working_set() + self.kernel_bytes + size
        if projected > self.total_bytes:
            raise OutOfMemory(
                f"node memory exhausted: need {size} bytes for {proc.name}, "
                f"{self.total_bytes - projected + size} available"
            )
        return proc.add_segment(MemorySegment(SegmentKind.PRIVATE, size, label=label))

    def map_file(self, proc: SimProcess, file_key: str, size: int, label: str = "") -> str:
        """Map a shared file into ``proc``; physical pages shared node-wide.

        All mappings of one ``file_key`` must agree on ``size`` — they model
        the text of one artifact on disk. Validation uses the tracked file
        size, so it holds even after the first mapper exits or unmaps.
        """
        if file_key in self._file_mappers:
            tracked = self._file_sizes[file_key]
            if size != tracked:
                raise SimulationError(
                    f"file {file_key!r} mapped with size {tracked}, now {size}"
                )
        key = proc.add_segment(
            MemorySegment(SegmentKind.FILE_TEXT, size, file_key=file_key, label=label or file_key)
        )
        mappers = self._file_mappers.setdefault(file_key, [])
        mappers.append(proc.pid)
        if len(mappers) == 1:
            self._file_sizes[file_key] = size
            self._file_total += size
            self._file_owner[file_key] = proc.cgroup if proc.alive else None
        return key

    def map_cow(
        self, proc: SimProcess, cow_key: str, size: int, label: str = ""
    ) -> str:
        """Clone a zygote snapshot into ``proc`` as a COW anonymous mapping.

        All clones of one ``cow_key`` share the snapshot's physical pages
        (accounted once node-wide, charged to the first toucher's cgroup
        like a shared file); bytes the process subsequently dirties are
        split into its private charge via
        :meth:`~repro.sim.process.SimProcess.cow_split`. The extent is the
        snapshot size and must agree across clones.
        """
        if cow_key in self._file_mappers:
            tracked = self._file_sizes[cow_key]
            if size != tracked:
                raise SimulationError(
                    f"zygote snapshot {cow_key!r} mapped with size {tracked}, now {size}"
                )
        key = proc.add_segment(
            MemorySegment(SegmentKind.COW, size, file_key=cow_key, label=label or cow_key)
        )
        mappers = self._file_mappers.setdefault(cow_key, [])
        mappers.append(proc.pid)
        if len(mappers) == 1:
            self._file_sizes[cow_key] = size
            self._file_total += size
            self._file_owner[cow_key] = proc.cgroup if proc.alive else None
        return key

    def _unmap_file(self, pid: int, file_key: str) -> None:
        mappers = self._file_mappers.get(file_key)
        if mappers and pid in mappers:
            was_first = mappers[0] == pid
            mappers.remove(pid)
            if not mappers:
                del self._file_mappers[file_key]
                self._file_total -= self._file_sizes.pop(file_key)
                self._file_owner.pop(file_key)
                return
            if was_first:
                self._refresh_file_size(file_key)
            self._refresh_file_owner(file_key)

    def file_mapper_count(self, file_key: str) -> int:
        return len(self._file_mappers.get(file_key, ()))

    # -- page cache / kernel ---------------------------------------------------

    def touch_page_cache(self, file_key: str, size: int) -> None:
        """Record ``size`` resident cache bytes for a file (max of touches)."""
        current = self._page_cache.get(file_key, 0)
        if size > current:
            self._page_cache[file_key] = size
            self._cache_total += size - current

    def drop_page_cache(self, file_key: Optional[str] = None) -> None:
        if file_key is None:
            self._page_cache.clear()
            self._cache_total = 0
        else:
            self._cache_total -= self._page_cache.pop(file_key, 0)

    def add_kernel_overhead(self, size: int) -> None:
        """Per-pod kernel cost: netns, veth, cgroup and conntrack structures."""
        self.kernel_bytes += size

    def remove_kernel_overhead(self, size: int) -> None:
        self.kernel_bytes -= size
        if self.kernel_bytes < 0:
            raise SimulationError("kernel overhead went negative")

    # -- audit plumbing ----------------------------------------------------------

    def _checked(self, what, incremental, reference_fn):
        """Route one query through the active accounting mode.

        ``incremental`` is the ledger answer; ``reference_fn`` produces the
        full-scan answer and is only evaluated outside incremental mode.
        """
        if self.accounting == "incremental":
            return incremental
        reference = reference_fn()
        if self.accounting == "audit":
            if incremental != reference:
                self._a_drift.inc()
                raise SimulationError(
                    f"accounting drift in {what}: incremental={incremental} "
                    f"reference={reference}"
                )
            self._a_ok.inc()
        return reference

    def verify_accounting(self) -> None:
        """Cross-check every ledger entry against the reference accountant.

        Raises :class:`SimulationError` on the first drifted counter. Audit
        mode does this per query; this walks the whole ledger at once (the
        property suite calls it after every step).
        """
        ref = self.reference
        checks = [
            ("private_total", self._private_total, ref.private_total()),
            ("file_total", self._file_total, ref.distinct_file_bytes()),
            ("cache_total", self._cache_total, ref.page_cache_bytes()),
        ]
        for what, inc, expected in checks:
            if inc != expected:
                raise SimulationError(
                    f"accounting drift in {what}: incremental={inc} reference={expected}"
                )
        for proc in self._procs.values():
            if proc.private_bytes() != ref._proc_private(proc):
                raise SimulationError(
                    f"accounting drift in pid {proc.pid} private_bytes: "
                    f"cached={proc.private_bytes()} reference={ref._proc_private(proc)}"
                )
        cgroups = {p.cgroup for p in self._procs.values()}
        cgroups.update(self._cgroup_private)
        cgroups.update(o for o in self._file_owner.values() if o is not None)
        for cgroup in sorted(cgroups):
            inc = self._cgroup_working_set_incremental(cgroup)
            expected = ref.cgroup_working_set(cgroup)
            if inc != expected:
                raise SimulationError(
                    f"accounting drift in cgroup_working_set({cgroup!r}): "
                    f"incremental={inc} reference={expected}"
                )
        for file_key in self._file_mappers:
            if self._file_owner.get(file_key) != ref.charged_cgroup(file_key):
                raise SimulationError(
                    f"accounting drift in charged cgroup of {file_key!r}"
                )
            if self._file_sizes.get(file_key, 0) != ref.shared_key_size(file_key):
                raise SimulationError(
                    f"accounting drift in shared extent of {file_key!r}: "
                    f"incremental={self._file_sizes.get(file_key, 0)} "
                    f"reference={ref.shared_key_size(file_key)}"
                )

    # -- accounting: free(1) ----------------------------------------------------

    def _distinct_file_bytes(self) -> int:
        return self._checked(
            "distinct_file_bytes", self._file_total, self.reference.distinct_file_bytes
        )

    def free_report(self) -> FreeReport:
        self._q_free.inc()
        private = self._checked(
            "private_total", self._private_total, self.reference.private_total
        )
        shared_files = self._distinct_file_bytes()
        used = private + shared_files + self.kernel_bytes
        buff_cache = self._checked(
            "cache_total", self._cache_total, self.reference.page_cache_bytes
        )
        free = self.total_bytes - used - buff_cache
        if free < 0:
            raise SimulationError(
                f"node out of memory: used={used} cache={buff_cache} total={self.total_bytes}"
            )
        available = free + buff_cache + shared_files // 2
        return FreeReport(
            total=self.total_bytes,
            used=used,
            free=free,
            shared=shared_files,
            buff_cache=buff_cache,
            available=min(available, self.total_bytes),
        )

    # -- accounting: cgroups ------------------------------------------------------

    def _charged_cgroup(self, file_key: str) -> Optional[str]:
        """Cgroup paying for a shared file: the first *live* mapper's."""
        if self.accounting == "incremental":
            return self._file_owner.get(file_key)
        reference = self.reference.charged_cgroup(file_key)
        if self.accounting == "audit" and self._file_owner.get(file_key) != reference:
            raise SimulationError(f"accounting drift in charged cgroup of {file_key!r}")
        return reference

    def _cgroup_working_set_incremental(self, cgroup_prefix: str) -> int:
        total = 0
        for cgroup, private in self._cgroup_private.items():
            if cgroup.startswith(cgroup_prefix):
                total += private
        for file_key, owner in self._file_owner.items():
            if owner is not None and owner.startswith(cgroup_prefix):
                total += self._file_sizes[file_key]
        return total

    def cgroup_working_set(self, cgroup_prefix: str) -> int:
        """Working set of a cgroup subtree, kernel first-touch style.

        Private memory of member processes plus shared files charged to a
        member cgroup. This is what the metrics server aggregates per pod.
        """
        self._q_cgroup.inc()
        return self._checked(
            f"cgroup_working_set({cgroup_prefix!r})",
            self._cgroup_working_set_incremental(cgroup_prefix),
            lambda: self.reference.cgroup_working_set(cgroup_prefix),
        )

    def cgroup_working_sets(self, cgroup_prefixes: Iterable[str]) -> Dict[str, int]:
        """Batched :meth:`cgroup_working_set` — one ledger pass for all prefixes.

        Equivalent to calling ``cgroup_working_set`` per prefix (including
        overlap behavior: a byte charged under two matching prefixes counts
        toward both), but visits each ledger entry once, testing only the
        entry's own string truncations against the prefix set.
        """
        prefixes = set(cgroup_prefixes)
        if self.accounting != "incremental":
            return {p: self.cgroup_working_set(p) for p in sorted(prefixes)}
        self._q_cgroup.inc(len(prefixes))
        totals = {p: 0 for p in prefixes}

        def credit(cgroup: str, amount: int) -> None:
            # Every prefix matching `cgroup` is one of its truncations.
            for k in range(len(cgroup) + 1):
                p = cgroup[:k]
                if p in prefixes:
                    totals[p] += amount

        for cgroup, private in self._cgroup_private.items():
            credit(cgroup, private)
        for file_key, owner in self._file_owner.items():
            if owner is not None:
                credit(owner, self._file_sizes[file_key])
        return totals

    def node_working_set(self) -> int:
        """Sum of all process private memory + each shared file once."""
        self._q_node.inc()
        return self._checked(
            "node_working_set",
            self._private_total + self._file_total,
            self.reference.node_working_set,
        )
