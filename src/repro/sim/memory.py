"""Node-wide memory accounting.

This module answers the two questions the paper's two measurement channels
ask (§IV-B):

* the **`free(1)` view** — whole-system usage including every daemon, shim,
  kernel per-pod overhead, and the page cache, and
* the **metrics-server view** — per-cgroup working sets covering only the
  processes inside pod cgroups, with shared file pages charged to the cgroup
  that faulted them first.

The difference between the two (paper: ``free`` reports up to 42% more) is
not a fudge factor here: it emerges because shim processes, the containerd
daemon's growth, and kernel per-pod structures live *outside* pod cgroups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import OutOfMemory, SimulationError
from repro.sim.process import MemorySegment, SegmentKind, SimProcess

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class FreeReport:
    """Snapshot shaped like the columns of ``free -b``."""

    total: int
    used: int
    free: int
    shared: int
    buff_cache: int
    available: int

    def used_plus_cache(self) -> int:
        """System footprint including reclaimable cache.

        This is the quantity the paper's OS-level channel tracks between
        deployments: daemons, shims, kernel structures, and the page cache
        populated by image pulls all land in it.
        """
        return self.used + self.buff_cache


class SystemMemoryModel:
    """Tracks processes, shared file residency, page cache, kernel overhead."""

    def __init__(self, total_bytes: int = 256 * GIB, kernel_base: int = 600 * MIB) -> None:
        if total_bytes <= 0:
            raise SimulationError("total_bytes must be positive")
        self.total_bytes = total_bytes
        # Kernel text/slab base plus per-pod kernel overhead added later.
        self.kernel_bytes = kernel_base
        self._procs: Dict[int, SimProcess] = {}
        self._next_pid = 100
        # file_key -> ordered list of mapping pids (first = charge owner)
        self._file_mappers: Dict[str, List[int]] = {}
        # file_key -> resident page-cache bytes (image layers, etc.)
        self._page_cache: Dict[str, int] = {}

    # -- process lifecycle ---------------------------------------------------

    def spawn(self, name: str, cgroup: str = "/", start_time: float = 0.0) -> SimProcess:
        pid = self._next_pid
        self._next_pid += 1
        proc = SimProcess(pid=pid, name=name, cgroup=cgroup, start_time=start_time)
        self._procs[pid] = proc
        return proc

    def exit(self, proc: SimProcess) -> None:
        """Terminate a process, releasing its mappings."""
        if not proc.alive:
            return
        proc.alive = False
        for seg in list(proc.file_segments()):
            self._unmap_file(proc.pid, seg.file_key)  # type: ignore[arg-type]
        del self._procs[proc.pid]

    def processes(self) -> Iterable[SimProcess]:
        return self._procs.values()

    def find(self, name_prefix: str) -> List[SimProcess]:
        return [p for p in self._procs.values() if p.name.startswith(name_prefix)]

    # -- segments -------------------------------------------------------------

    def map_private(self, proc: SimProcess, size: int, label: str = "heap") -> str:
        """Allocate private memory, enforcing the node's physical limit.

        Raises:
            OutOfMemory: when the allocation would not fit even after
                dropping the (reclaimable) page cache — the point where
                Linux would OOM-kill.
        """
        projected = self.node_working_set() + self.kernel_bytes + size
        if projected > self.total_bytes:
            raise OutOfMemory(
                f"node memory exhausted: need {size} bytes for {proc.name}, "
                f"{self.total_bytes - projected + size} available"
            )
        return proc.add_segment(MemorySegment(SegmentKind.PRIVATE, size, label=label))

    def map_file(self, proc: SimProcess, file_key: str, size: int, label: str = "") -> str:
        """Map a shared file into ``proc``; physical pages shared node-wide.

        All mappings of one ``file_key`` must agree on ``size`` — they model
        the text of one artifact on disk.
        """
        existing = self._file_mappers.get(file_key)
        if existing:
            first = self._procs.get(existing[0])
            if first is not None:
                for seg in first.file_segments():
                    if seg.file_key == file_key and seg.size != size:
                        raise SimulationError(
                            f"file {file_key!r} mapped with size {seg.size}, now {size}"
                        )
        key = proc.add_segment(
            MemorySegment(SegmentKind.FILE_TEXT, size, file_key=file_key, label=label or file_key)
        )
        self._file_mappers.setdefault(file_key, []).append(proc.pid)
        return key

    def _unmap_file(self, pid: int, file_key: str) -> None:
        mappers = self._file_mappers.get(file_key)
        if mappers and pid in mappers:
            mappers.remove(pid)
            if not mappers:
                del self._file_mappers[file_key]

    def file_mapper_count(self, file_key: str) -> int:
        return len(self._file_mappers.get(file_key, ()))

    # -- page cache / kernel ---------------------------------------------------

    def touch_page_cache(self, file_key: str, size: int) -> None:
        """Record ``size`` resident cache bytes for a file (max of touches)."""
        self._page_cache[file_key] = max(self._page_cache.get(file_key, 0), size)

    def drop_page_cache(self, file_key: Optional[str] = None) -> None:
        if file_key is None:
            self._page_cache.clear()
        else:
            self._page_cache.pop(file_key, None)

    def add_kernel_overhead(self, size: int) -> None:
        """Per-pod kernel cost: netns, veth, cgroup and conntrack structures."""
        self.kernel_bytes += size

    def remove_kernel_overhead(self, size: int) -> None:
        self.kernel_bytes -= size
        if self.kernel_bytes < 0:
            raise SimulationError("kernel overhead went negative")

    # -- accounting: free(1) ----------------------------------------------------

    def _distinct_file_bytes(self) -> int:
        total = 0
        for file_key, mappers in self._file_mappers.items():
            first = self._procs.get(mappers[0])
            if first is None:
                continue
            for seg in first.file_segments():
                if seg.file_key == file_key:
                    total += seg.size
                    break
        return total

    def free_report(self) -> FreeReport:
        private = sum(p.private_bytes() for p in self._procs.values())
        shared_files = self._distinct_file_bytes()
        used = private + shared_files + self.kernel_bytes
        buff_cache = sum(self._page_cache.values())
        free = self.total_bytes - used - buff_cache
        if free < 0:
            raise SimulationError(
                f"node out of memory: used={used} cache={buff_cache} total={self.total_bytes}"
            )
        available = free + buff_cache + shared_files // 2
        return FreeReport(
            total=self.total_bytes,
            used=used,
            free=free,
            shared=shared_files,
            buff_cache=buff_cache,
            available=min(available, self.total_bytes),
        )

    # -- accounting: cgroups ------------------------------------------------------

    def _charged_cgroup(self, file_key: str) -> Optional[str]:
        """Cgroup paying for a shared file: the first *live* mapper's."""
        for pid in self._file_mappers.get(file_key, ()):
            proc = self._procs.get(pid)
            if proc is not None and proc.alive:
                return proc.cgroup
        return None

    def cgroup_working_set(self, cgroup_prefix: str) -> int:
        """Working set of a cgroup subtree, kernel first-touch style.

        Private memory of member processes plus shared files charged to a
        member cgroup. This is what the metrics server aggregates per pod.
        """
        total = 0
        for proc in self._procs.values():
            if proc.cgroup.startswith(cgroup_prefix):
                total += proc.private_bytes()
        for file_key in self._file_mappers:
            owner = self._charged_cgroup(file_key)
            if owner is not None and owner.startswith(cgroup_prefix):
                first = self._procs.get(self._file_mappers[file_key][0])
                if first is None:
                    continue
                for seg in first.file_segments():
                    if seg.file_key == file_key:
                        total += seg.size
                        break
        return total

    def node_working_set(self) -> int:
        """Sum of all process private memory + each shared file once."""
        private = sum(p.private_bytes() for p in self._procs.values())
        return private + self._distinct_file_bytes()
