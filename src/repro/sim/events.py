"""Time-ordered event queue with stable FIFO tie-breaking."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is (time, sequence number): two events at the same instant run
    in the order they were scheduled, which keeps multi-process experiments
    deterministic.
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`Event` keyed by (time, insertion order)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: float, callback: Callable[[], Any], label: str = "") -> Event:
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        ev = Event(time=time, seq=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def cancel(self, ev: Event) -> None:
        """Cancel a scheduled event; it will be skipped when reached."""
        if not ev.cancelled:
            ev.cancel()
            self._live -= 1

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` if empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._live -= 1
            return ev
        self._live = 0
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
