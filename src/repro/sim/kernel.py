"""Coroutine-based discrete-event kernel.

Activities are generator functions. They ``yield`` effect objects and the
kernel resumes them when the effect completes:

* :class:`Timeout` — resume after a simulated delay,
* :class:`Acquire` / :class:`Release` — bounded-capacity resources with a
  FIFO wait queue (used to model the node's limited startup parallelism),
* :class:`WaitEvent` — resume when a :class:`SimEvent` is triggered,
* another generator — run it as a sub-activity and resume with its return
  value (``return x`` inside the child).

Example::

    k = Kernel()

    def boot(k, dev):
        yield Timeout(0.5)
        return f"{dev} up"

    def main(k):
        result = yield boot(k, "eth0")
        ...

    k.spawn(main(k))
    k.run()
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue

SimGen = Generator[Any, Any, Any]


@dataclass
class Timeout:
    """Suspend the activity for ``delay`` simulated seconds."""

    delay: float


class SimEvent:
    """One-shot broadcast event activities can wait on.

    ``trigger(value)`` resumes every current and future waiter with
    ``value`` (future waiters resume immediately).
    """

    __slots__ = ("triggered", "value", "_waiters")

    def __init__(self) -> None:
        self.triggered = False
        self.value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    def add_waiter(self, resume: Callable[[Any], None]) -> None:
        if self.triggered:
            resume(self.value)
        else:
            self._waiters.append(resume)

    def trigger(self, value: Any = None) -> None:
        if self.triggered:
            raise SimulationError("SimEvent triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            resume(value)


@dataclass
class WaitEvent:
    """Suspend until ``event`` triggers; resumes with its value."""

    event: SimEvent


class Resource:
    """Bounded-capacity resource with FIFO admission.

    Models k-way parallelism (e.g. 20 CPU cores concurrently executing
    container-creation critical paths).
    """

    def __init__(self, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: deque[Callable[[Any], None]] = deque()

    @property
    def queued(self) -> int:
        return len(self._queue)

    def acquire(self, resume: Callable[[Any], None]) -> None:
        if self.in_use < self.capacity:
            self.in_use += 1
            resume(None)
        else:
            self._queue.append(resume)

    def release(self) -> Optional[Callable[[Any], None]]:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            # Hand the slot straight to the next waiter.
            return self._queue.popleft()
        self.in_use -= 1
        return None


@dataclass
class Acquire:
    """Suspend until one slot of ``resource`` is granted."""

    resource: Resource


@dataclass
class Release:
    """Give back one slot of ``resource`` (resumes immediately)."""

    resource: Resource


@dataclass
class _Failure:
    """Wrapper marking a completion value as a raised exception."""

    exc: BaseException


@dataclass
class _Task:
    """Bookkeeping for one spawned activity."""

    gen: SimGen
    done: SimEvent = field(default_factory=SimEvent)
    parent: Optional["_Task"] = None


class Kernel:
    """The discrete-event scheduler."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock or SimClock()
        self.queue = EventQueue()
        self._active = 0

    # -- public API --------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now

    def spawn(self, gen: SimGen) -> SimEvent:
        """Start an activity; returns a :class:`SimEvent` for its result."""
        task = _Task(gen=gen)
        self._active += 1
        self.queue.push(self.clock.now, lambda: self._step(task, None), label="spawn")
        return task.done

    def call_at(self, time: float, fn: Callable[[], Any], label: str = "") -> None:
        """Schedule a plain callback at absolute simulated time."""
        if time < self.clock.now:
            raise SimulationError(f"call_at in the past: {time} < {self.clock.now}")
        self.queue.push(time, fn, label=label)

    def call_after(self, delay: float, fn: Callable[[], Any], label: str = "") -> None:
        """Schedule a plain callback after a relative delay."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.queue.push(self.clock.now + delay, fn, label=label)

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains (or ``until`` is reached).

        Returns the final simulated time.
        """
        while True:
            t = self.queue.peek_time()
            if t is None:
                break
            if until is not None and t > until:
                self.clock.advance_to(until)
                return self.clock.now
            ev = self.queue.pop()
            assert ev is not None
            self.clock.advance_to(ev.time)
            ev.callback()
        return self.clock.now

    def run_all(self, gens: Iterable[SimGen]) -> list[Any]:
        """Spawn ``gens`` concurrently, run to completion, return results.

        An exception raised by any activity is re-raised here once the
        event loop drains (the first one, in spawn order).
        """
        events = [self.spawn(g) for g in gens]
        self.run()
        missing = [i for i, e in enumerate(events) if not e.triggered]
        if missing:
            raise SimulationError(
                f"{len(missing)} activities never completed (deadlock?): idx {missing[:5]}"
            )
        results = []
        for e in events:
            if isinstance(e.value, _Failure):
                raise e.value.exc
            results.append(e.value)
        return results

    # -- internals ----------------------------------------------------------

    def _step(self, task: _Task, send_value: Any) -> None:
        """Resume ``task.gen`` with ``send_value`` and process its yield.

        If the value is a :class:`_Failure` (a child activity raised), the
        exception is thrown *into* the generator at the yield point so
        ordinary try/except works across activity boundaries.
        """
        try:
            if isinstance(send_value, _Failure):
                yielded = task.gen.throw(send_value.exc)
            else:
                yielded = task.gen.send(send_value)
        except StopIteration as stop:
            self._active -= 1
            task.done.trigger(stop.value)
            return
        except SimulationError:
            raise
        except Exception as exc:  # noqa: BLE001 - forwarded to the waiter
            self._active -= 1
            task.done.trigger(_Failure(exc))
            return
        self._dispatch(task, yielded)

    def _dispatch(self, task: _Task, eff: Any) -> None:
        resume = lambda v=None: self._step(task, v)  # noqa: E731
        if isinstance(eff, Timeout):
            if eff.delay < 0:
                raise SimulationError(f"negative timeout: {eff.delay}")
            self.queue.push(self.clock.now + eff.delay, resume, label="timeout")
        elif isinstance(eff, Acquire):
            eff.resource.acquire(resume)
        elif isinstance(eff, Release):
            handoff = eff.resource.release()
            if handoff is not None:
                # Waiter runs as a fresh event at the current instant.
                self.queue.push(self.clock.now, lambda: handoff(None), label="handoff")
            resume(None)
        elif isinstance(eff, WaitEvent):
            eff.event.add_waiter(resume)
        elif isinstance(eff, SimEvent):
            eff.add_waiter(resume)
        elif hasattr(eff, "send") and hasattr(eff, "throw"):
            # Sub-activity: run child, resume parent with its return value.
            child = _Task(gen=eff)
            self._active += 1
            child.done.add_waiter(resume)
            self.queue.push(self.clock.now, lambda: self._step(child, None), label="sub")
        else:
            raise SimulationError(f"activity yielded unsupported effect: {eff!r}")
