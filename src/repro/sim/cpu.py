"""CPU and contention model for container-startup critical paths.

The testbed is a 20-core Xeon. Startup work (shim spawn, runtime create,
engine compile) runs on a bounded-parallelism :class:`~repro.sim.kernel.Resource`
of ``cores`` slots; on top of that, two contention terms shape the
10-vs-400-container behaviour of Figs 8 and 9:

* a **serialized phase** — pod sandbox networking (CNI add, IPAM) is
  effectively serialized on the node, so its cost scales with the number of
  concurrently created pods;
* a **pressure factor** — page-allocation and cgroup bookkeeping slow down
  as resident memory and the number of live processes grow, penalising
  runtimes that stack hundreds of heavyweight processes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.kernel import Resource


@dataclass
class CpuModel:
    """Parallelism limits and contention coefficients for one node."""

    cores: int = 20
    # Extra relative cost per live process during startup storms; models
    # scheduler/allocator pressure (small but multiplies at 400 pods).
    process_pressure: float = 4.0e-4
    # Extra relative cost per resident GiB beyond `pressure_floor_gib`.
    memory_pressure_per_gib: float = 8.0e-3
    pressure_floor_gib: float = 4.0

    def make_run_queue(self) -> Resource:
        """A fresh k-way startup execution resource."""
        return Resource(self.cores, name="cpu")

    def pressure_factor(self, live_processes: int, resident_bytes: int) -> float:
        """Multiplier (>= 1.0) applied to CPU-bound startup work."""
        gib = resident_bytes / float(1024**3)
        mem_term = max(0.0, gib - self.pressure_floor_gib) * self.memory_pressure_per_gib
        proc_term = live_processes * self.process_pressure
        return 1.0 + mem_term + proc_term
