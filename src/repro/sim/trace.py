"""Span tracing for simulated activities.

Components record named spans (``category``, ``name``, start/end in
simulated seconds, free-form attributes); the measurement layer
aggregates them into per-phase startup breakdowns — the observability
needed to *explain* Figs 8/9 rather than just reproduce them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class Span:
    category: str  # e.g. "startup.serialized"
    name: str  # e.g. the container id
    start: float
    end: float
    attrs: Tuple[Tuple[str, str], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def attr(self, key: str) -> Optional[str]:
        for k, v in self.attrs:
            if k == key:
                return v
        return None


@dataclass
class Tracer:
    """Append-only span log."""

    spans: List[Span] = field(default_factory=list)
    enabled: bool = True

    def record(
        self, category: str, name: str, start: float, end: float, **attrs: str
    ) -> None:
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"span {category}/{name} ends before it starts")
        self.spans.append(
            Span(category, name, start, end, tuple(sorted(attrs.items())))
        )

    def by_category(self, category: str) -> List[Span]:
        return [s for s in self.spans if s.category == category]

    def filtered(self, **attrs: str) -> List[Span]:
        return [
            s for s in self.spans if all(s.attr(k) == v for k, v in attrs.items())
        ]

    def phase_totals(self, **attrs: str) -> Dict[str, float]:
        """Total simulated seconds per category, optionally filtered."""
        totals: Dict[str, float] = defaultdict(float)
        for span in self.filtered(**attrs) if attrs else self.spans:
            totals[span.category] += span.duration
        return dict(totals)

    def phase_means(self, **attrs: str) -> Dict[str, float]:
        """Mean span duration per category, optionally filtered."""
        sums: Dict[str, float] = defaultdict(float)
        counts: Dict[str, int] = defaultdict(int)
        for span in self.filtered(**attrs) if attrs else self.spans:
            sums[span.category] += span.duration
            counts[span.category] += 1
        return {c: sums[c] / counts[c] for c in sums}

    def clear(self) -> None:
        self.spans.clear()
