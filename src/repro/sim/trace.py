"""Span tracing for simulated activities.

Components record named spans (``category``, ``name``, start/end in
simulated seconds, free-form attributes); the measurement layer
aggregates them into per-phase breakdowns — the observability needed to
*explain* Figs 8/9 rather than just reproduce them. Beyond startup, the
control plane records ``pod.sync`` (admission → Running),
``recovery.backoff`` / ``recovery.eviction``, and ``recovery.converge``
spans, so a whole fault-recovery timeline exports as one trace.

Queries are indexed: ``record()`` maintains a per-category and a
per-attribute index, so ``by_category``/``filtered`` touch only matching
spans instead of scanning the full log (the 400-pod experiment records
thousands of spans; recovery post-processing reads categories holding a
few dozen).

A tracer can mirror everything it records into a ``sink`` callable —
:mod:`repro.obs` uses this to collect spans process-wide for the Chrome
trace / JSONL exporters without the simulation layer knowing about them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Span:
    category: str  # e.g. "startup.serialized"
    name: str  # e.g. the container id
    start: float
    end: float
    attrs: Tuple[Tuple[str, str], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def attr(self, key: str) -> Optional[str]:
        for k, v in self.attrs:
            if k == key:
                return v
        return None


@dataclass
class Tracer:
    """Append-only span log with category/attribute indexes."""

    spans: List[Span] = field(default_factory=list)
    enabled: bool = True
    #: optional mirror for every recorded span (process-wide collection)
    sink: Optional[Callable[[Span], None]] = None
    _by_category: Dict[str, List[Span]] = field(
        default_factory=dict, init=False, repr=False
    )
    _by_attr: Dict[Tuple[str, str], List[Span]] = field(
        default_factory=dict, init=False, repr=False
    )

    def __post_init__(self) -> None:
        for span in self.spans:
            self._index(span)

    def _index(self, span: Span) -> None:
        self._by_category.setdefault(span.category, []).append(span)
        for pair in span.attrs:
            self._by_attr.setdefault(pair, []).append(span)

    def record(
        self, category: str, name: str, start: float, end: float, **attrs: str
    ) -> None:
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"span {category}/{name} ends before it starts")
        span = Span(category, name, start, end, tuple(sorted(attrs.items())))
        self.spans.append(span)
        self._index(span)
        if self.sink is not None:
            self.sink(span)

    def by_category(self, category: str) -> List[Span]:
        return list(self._by_category.get(category, ()))

    def categories(self) -> List[str]:
        return sorted(self._by_category)

    def filtered(self, **attrs: str) -> List[Span]:
        """Spans carrying every given attribute value.

        Scans only the smallest matching attribute bucket, then verifies
        the remaining attrs — O(best bucket), not O(all spans).
        """
        if not attrs:
            return list(self.spans)
        buckets = [self._by_attr.get(pair, []) for pair in attrs.items()]
        smallest = min(buckets, key=len)
        if len(attrs) == 1:
            return list(smallest)
        return [
            s for s in smallest if all(s.attr(k) == v for k, v in attrs.items())
        ]

    def phase_totals(self, **attrs: str) -> Dict[str, float]:
        """Total simulated seconds per category, optionally filtered."""
        totals: Dict[str, float] = defaultdict(float)
        for span in self.filtered(**attrs) if attrs else self.spans:
            totals[span.category] += span.duration
        return dict(totals)

    def phase_means(self, **attrs: str) -> Dict[str, float]:
        """Mean span duration per category, optionally filtered."""
        sums: Dict[str, float] = defaultdict(float)
        counts: Dict[str, int] = defaultdict(int)
        for span in self.filtered(**attrs) if attrs else self.spans:
            sums[span.category] += span.duration
            counts[span.category] += 1
        return {c: sums[c] / counts[c] for c in sums}

    def phase_stats(self, **attrs: str) -> Dict[str, Tuple[float, int]]:
        """Per-category ``(total_seconds, span_count)``, optionally filtered.

        The mergeable form of :meth:`phase_means`: summing the pairs
        across several tracers (one per fleet node) and dividing yields
        the exact fleet-wide mean per phase.
        """
        sums: Dict[str, float] = defaultdict(float)
        counts: Dict[str, int] = defaultdict(int)
        for span in self.filtered(**attrs) if attrs else self.spans:
            sums[span.category] += span.duration
            counts[span.category] += 1
        return {c: (sums[c], counts[c]) for c in sums}

    def clear(self) -> None:
        self.spans.clear()
        self._by_category.clear()
        self._by_attr.clear()
