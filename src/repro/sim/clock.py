"""Virtual clock for the discrete-event kernel."""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """Monotonic simulated clock measured in seconds (float).

    The clock only moves forward, and only the kernel advances it. Models
    read it through :meth:`now`; direct writes guard against time travel so
    an event processed out of order fails loudly instead of silently
    corrupting latency measurements.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t`` seconds.

        Raises:
            SimulationError: if ``t`` lies in the past.
        """
        if t < self._now:
            raise SimulationError(
                f"clock cannot move backwards: now={self._now!r}, target={t!r}"
            )
        self._now = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
