"""Deterministic fault injection for the simulated stack.

A :class:`FaultPlan` arms named **injection points** along the pod
lifecycle. The original seven cover the startup critical path (image
pull, sandbox setup, shim spawn, engine compile/instantiate, CRI RPC,
main exec); the *runtime* points extend the plan past Running into every
fast path built since: guest traps and fuel/OOM exhaustion mid-run,
WASI syscall errors, zygote snapshot corruption, engine-cache entry
corruption (``cache.corrupt`` covers the decode/compile/prepare layers
and, since PR 7, the digest-keyed specialized-code layer — a corrupted
entry is re-specialized under the same rebuild cap, falling back to
unspecialized prepared code if the pass fails), metrics-scrape loss, and
liveness/readiness probe failures.
Each point carries a firing probability, an optional max-occurrence
budget, and a transient-vs-permanent classification. Components ask the
plan at the matching point (via
:meth:`repro.container.nodeenv.NodeEnv.inject`) and the plan either does
nothing or raises :class:`~repro.errors.FaultInjected`.

Startup points are checked through the :class:`NodeEnv` the component
already holds. The runtime points fire deep inside layers that have no
node reference (``embed.run_wasi``, the engine caches, the WASI host
functions), so the container layer brackets guest dispatch in
:func:`fault_scope`, which arms a module-level **ambient context** of
``(plan, pod key)``. The guest-side layers consult :func:`ambient`; with
no scope armed that is a single module-global read returning ``None`` —
the disabled path stays within the BENCH_obs overhead ceiling.

Determinism: every ``(point, key)`` pair draws from its own named RNG
stream (``fault/<point>/<key>``), so the outcome of a given pod's n-th
retry at a given point depends only on the plan's seed — never on how
other pods' checks interleave. The same seed therefore reproduces the
same failure pattern, backoff schedule, and recovery timeline; budgets
are the only global state and the event kernel orders them
deterministically too. Fault scopes contain no kernel yields (guest
dispatch is synchronous within one activity step), so the ambient
context never interleaves across pods.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro import obs
from repro.errors import FaultInjected, SimulationError
from repro.sim.rng import RngStreams


class FaultPoint(enum.Enum):
    """Named injection points along the pod lifecycle."""

    # -- startup path (PR 1) -------------------------------------------------
    IMAGE_PULL = "image.pull"
    SANDBOX_SETUP = "sandbox.setup"
    SHIM_SPAWN = "shim.spawn"
    ENGINE_COMPILE = "engine.compile"
    ENGINE_INSTANTIATE = "engine.instantiate"
    CRI_RPC = "cri.rpc"
    MAIN_EXEC = "main.exec"
    # -- runtime path (post-Running chaos layer) -----------------------------
    GUEST_TRAP = "guest.trap"
    GUEST_EXHAUST = "guest.exhaust"
    WASI_SYSCALL = "wasi.syscall"
    ZYGOTE_CORRUPT = "zygote.corrupt"
    CACHE_CORRUPT = "cache.corrupt"
    METRICS_SCRAPE = "metrics.scrape"
    PROBE_LIVENESS = "probe.liveness"
    PROBE_READINESS = "probe.readiness"
    # -- fleet path (multi-node clusters) ------------------------------------
    NODE_FAIL = "node.fail"


#: points checked from inside guest execution (``run_wasi`` and below).
#: When any of these is armed, the run cache must be bypassed so every
#: pod's guest actually executes and gets its own per-(point, key) draws.
GUEST_RUNTIME_POINTS = frozenset(
    {
        FaultPoint.GUEST_TRAP,
        FaultPoint.GUEST_EXHAUST,
        FaultPoint.WASI_SYSCALL,
        FaultPoint.ZYGOTE_CORRUPT,
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One armed injection point.

    ``max_occurrences`` is the point's total firing budget across the
    whole run (``None`` = unlimited): with a finite budget, recovery is
    *guaranteed* to converge once the budget is spent, which the recovery
    experiment uses to bound worst-case retry storms.
    """

    point: FaultPoint
    probability: float
    transient: bool = True
    max_occurrences: Optional[int] = None
    message: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise SimulationError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.max_occurrences is not None and self.max_occurrences < 0:
            raise SimulationError("max_occurrences must be >= 0")


@dataclass(frozen=True)
class InjectedFault:
    """Record of one fault the plan actually fired."""

    point: FaultPoint
    key: str
    occurrence: int  # 1-based, per point
    transient: bool
    message: str


class FaultPlan:
    """Seeded set of :class:`FaultSpec`\\ s with firing bookkeeping."""

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0) -> None:
        self._specs: Dict[FaultPoint, FaultSpec] = {}
        for spec in specs:
            if spec.point in self._specs:
                raise SimulationError(f"duplicate fault spec for {spec.point.value}")
            self._specs[spec.point] = spec
        self._rng = RngStreams(seed)
        self._fired: List[InjectedFault] = []
        self._fired_per_point: Dict[FaultPoint, int] = {}
        self._checks = 0
        self._m_checks = obs.counter(
            "repro_faults_checks_total",
            "armed injection-point checks performed",
        )
        self._m_injected = obs.counter(
            "repro_faults_injected_total",
            "faults actually fired, by injection point",
            ("point",),
        )
        # Registered always=True: the chaos campaign's counter-balance
        # invariants consume these functionally, telemetry on or off.
        self._m_fired = obs.counter(
            "repro_faults_fired_total",
            "faults fired, by injection point and transient/permanent kind",
            ("point", "kind"),
            always=True,
        )

    @property
    def seed(self) -> int:
        return self._rng.seed

    @property
    def fired(self) -> Tuple[InjectedFault, ...]:
        return tuple(self._fired)

    @property
    def checks(self) -> int:
        return self._checks

    def spec(self, point: FaultPoint) -> Optional[FaultSpec]:
        return self._specs.get(point)

    def count(self, point: FaultPoint) -> int:
        return self._fired_per_point.get(point, 0)

    def summary(self) -> Dict[str, int]:
        """Fired-fault counts per point value (for reports/experiments)."""
        return {
            point.value: count
            for point, count in sorted(
                self._fired_per_point.items(), key=lambda kv: kv[0].value
            )
        }

    # -- the injection decision ---------------------------------------------

    def check(self, point: FaultPoint, key: str) -> Optional[InjectedFault]:
        """Draw once for ``(point, key)``; returns the fault if it fires.

        Repeated checks of the same pair (a retry of the same pod) draw
        the *next* value of that pair's stream, so a transient fault can
        fire on attempt 1 and pass on attempt 2 — deterministically.
        """
        spec = self._specs.get(point)
        if spec is None or spec.probability <= 0.0:
            return None
        self._checks += 1
        self._m_checks.inc()
        used = self._fired_per_point.get(point, 0)
        if spec.max_occurrences is not None and used >= spec.max_occurrences:
            return None
        draw = float(self._rng.stream(f"fault/{point.value}/{key}").random())
        if draw >= spec.probability:
            return None
        fault = InjectedFault(
            point=point,
            key=key,
            occurrence=used + 1,
            transient=spec.transient,
            message=spec.message
            or f"injected {'transient' if spec.transient else 'permanent'} "
            f"fault at {point.value}",
        )
        self._fired_per_point[point] = used + 1
        self._fired.append(fault)
        self._m_injected.labels(point.value).inc()
        self._m_fired.labels(
            point.value, "transient" if spec.transient else "permanent"
        ).inc()
        return fault

    def arms_any(self, points: Iterable[FaultPoint]) -> bool:
        """Is any of ``points`` armed with a nonzero probability?"""
        return any(
            (spec := self._specs.get(p)) is not None and spec.probability > 0.0
            for p in points
        )

    def raise_if_fires(self, point: FaultPoint, key: str) -> None:
        """Check and raise :class:`FaultInjected` when the point fires."""
        fault = self.check(point, key)
        if fault is not None:
            raise FaultInjected(
                f"{fault.message} (point={point.value}, key={key}, "
                f"occurrence={fault.occurrence})",
                point=point.value,
                transient=fault.transient,
                key=key,
                occurrence=fault.occurrence,
            )


# --------------------------------------------------------------------------
# Ambient fault context: the bridge into layers with no NodeEnv reference
# --------------------------------------------------------------------------

#: the active (plan, key) pair, or None. A plain module global (not a
#: contextvar): fault scopes are synchronous within one kernel activity
#: step, so there is never more than one live scope.
_AMBIENT: Optional[Tuple["FaultPlan", str]] = None

#: disabled-path guard accounting for the overhead benchmark; the flag
#: check costs one branch on every ambient() call.
_COUNT_GUARDS = False
_GUARD_CALLS = 0


def ambient() -> Optional[Tuple["FaultPlan", str]]:
    """The active fault context, or ``None`` (the common, disabled path)."""
    global _GUARD_CALLS
    if _COUNT_GUARDS:
        _GUARD_CALLS += 1
    return _AMBIENT


@contextmanager
def fault_scope(plan: Optional["FaultPlan"], key: str) -> Iterator[None]:
    """Arm ``(plan, key)`` as the ambient fault context for the duration.

    ``plan=None`` is a no-op scope so call sites don't need to branch.
    Nested scopes are rejected: guest dispatch never nests, and silent
    shadowing would make draws depend on call order.
    """
    global _AMBIENT
    if plan is None:
        yield
        return
    if _AMBIENT is not None:
        raise SimulationError("nested fault_scope (guest dispatch re-entered?)")
    _AMBIENT = (plan, key)
    try:
        yield
    finally:
        _AMBIENT = None


@contextmanager
def count_disabled_guards() -> Iterator[None]:
    """Benchmark hook: count ambient() calls made while the scope is open
    (see ``benchmarks/test_chaos.py``'s disabled-path overhead projection)."""
    global _COUNT_GUARDS, _GUARD_CALLS
    _COUNT_GUARDS = True
    _GUARD_CALLS = 0
    try:
        yield
    finally:
        _COUNT_GUARDS = False


def guard_calls() -> int:
    """Guard evaluations recorded by the last/current counting scope."""
    return _GUARD_CALLS


def transient_plan(
    seed: int = 0,
    pull_probability: float = 0.3,
    compile_probability: float = 0.3,
    budget_per_point: Optional[int] = None,
) -> FaultPlan:
    """The recovery experiment's default plan: transient pull + compile
    failures at the paper-relevant rates (≥30% per attempt)."""
    return FaultPlan(
        [
            FaultSpec(
                FaultPoint.IMAGE_PULL,
                probability=pull_probability,
                transient=True,
                max_occurrences=budget_per_point,
            ),
            FaultSpec(
                FaultPoint.ENGINE_COMPILE,
                probability=compile_probability,
                transient=True,
                max_occurrences=budget_per_point,
            ),
        ],
        seed=seed,
    )


def fleet_plan(
    seed: int = 0,
    node_fail_probability: float = 1.0,
    max_node_failures: int = 1,
) -> FaultPlan:
    """The fleet experiment's plan: whole-node failure with a hard budget.

    Checked once per node (key = node name) by
    :meth:`repro.k8s.cluster.Cluster.inject_node_failures`: a firing node
    is cordoned (``unschedulable``) and drained, and the
    DeploymentController re-places its pods on the surviving fleet. The
    failure is permanent — nodes don't come back — so a finite
    ``max_node_failures`` budget bounds how much capacity a campaign can
    lose.
    """
    return FaultPlan(
        [
            FaultSpec(
                FaultPoint.NODE_FAIL,
                probability=node_fail_probability,
                transient=False,
                max_occurrences=max_node_failures,
            )
        ],
        seed=seed,
    )


def full_lifecycle_plan(
    seed: int = 0,
    rate: float = 0.25,
    budget_per_point: Optional[int] = 40,
    permanent_budget: int = 5,
) -> FaultPlan:
    """The chaos campaign's plan: every lifecycle stage armed at ``rate``.

    Startup *and* runtime points fire transiently at the same per-attempt
    rate; ``engine.instantiate`` is armed permanent with a small budget so
    the campaign also exercises terminal failure + DeploymentController
    replacement. Finite budgets guarantee convergence once spent — the
    campaign's invariants rely on that bound.
    """
    transient_points = (
        FaultPoint.IMAGE_PULL,
        FaultPoint.ENGINE_COMPILE,
        FaultPoint.GUEST_TRAP,
        FaultPoint.GUEST_EXHAUST,
        FaultPoint.WASI_SYSCALL,
        FaultPoint.ZYGOTE_CORRUPT,
        FaultPoint.CACHE_CORRUPT,
        FaultPoint.METRICS_SCRAPE,
        FaultPoint.PROBE_LIVENESS,
        FaultPoint.PROBE_READINESS,
    )
    specs = [
        FaultSpec(
            point,
            probability=rate,
            transient=True,
            max_occurrences=budget_per_point,
        )
        for point in transient_points
    ]
    specs.append(
        FaultSpec(
            FaultPoint.ENGINE_INSTANTIATE,
            probability=rate,
            transient=False,
            max_occurrences=permanent_budget,
        )
    )
    return FaultPlan(specs, seed=seed)
