"""Deterministic fault injection for the simulated stack.

A :class:`FaultPlan` arms named **injection points** along the pod-startup
critical path (image pull, sandbox setup, shim spawn, engine
compile/instantiate, CRI RPC, main exec). Each point carries a firing
probability, an optional max-occurrence budget, and a transient-vs-
permanent classification. Components ask the plan at the matching point
(via :meth:`repro.container.nodeenv.NodeEnv.inject`) and the plan either
does nothing or raises :class:`~repro.errors.FaultInjected`.

Determinism: every ``(point, key)`` pair draws from its own named RNG
stream (``fault/<point>/<key>``), so the outcome of a given pod's n-th
retry at a given point depends only on the plan's seed — never on how
other pods' checks interleave. The same seed therefore reproduces the
same failure pattern, backoff schedule, and recovery timeline; budgets
are the only global state and the event kernel orders them
deterministically too.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro import obs
from repro.errors import FaultInjected, SimulationError
from repro.sim.rng import RngStreams


class FaultPoint(enum.Enum):
    """Named injection points along the pod startup path."""

    IMAGE_PULL = "image.pull"
    SANDBOX_SETUP = "sandbox.setup"
    SHIM_SPAWN = "shim.spawn"
    ENGINE_COMPILE = "engine.compile"
    ENGINE_INSTANTIATE = "engine.instantiate"
    CRI_RPC = "cri.rpc"
    MAIN_EXEC = "main.exec"


@dataclass(frozen=True)
class FaultSpec:
    """One armed injection point.

    ``max_occurrences`` is the point's total firing budget across the
    whole run (``None`` = unlimited): with a finite budget, recovery is
    *guaranteed* to converge once the budget is spent, which the recovery
    experiment uses to bound worst-case retry storms.
    """

    point: FaultPoint
    probability: float
    transient: bool = True
    max_occurrences: Optional[int] = None
    message: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise SimulationError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.max_occurrences is not None and self.max_occurrences < 0:
            raise SimulationError("max_occurrences must be >= 0")


@dataclass(frozen=True)
class InjectedFault:
    """Record of one fault the plan actually fired."""

    point: FaultPoint
    key: str
    occurrence: int  # 1-based, per point
    transient: bool
    message: str


class FaultPlan:
    """Seeded set of :class:`FaultSpec`\\ s with firing bookkeeping."""

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0) -> None:
        self._specs: Dict[FaultPoint, FaultSpec] = {}
        for spec in specs:
            if spec.point in self._specs:
                raise SimulationError(f"duplicate fault spec for {spec.point.value}")
            self._specs[spec.point] = spec
        self._rng = RngStreams(seed)
        self._fired: List[InjectedFault] = []
        self._fired_per_point: Dict[FaultPoint, int] = {}
        self._checks = 0
        self._m_checks = obs.counter(
            "repro_faults_checks_total",
            "armed injection-point checks performed",
        )
        self._m_injected = obs.counter(
            "repro_faults_injected_total",
            "faults actually fired, by injection point",
            ("point",),
        )

    @property
    def seed(self) -> int:
        return self._rng.seed

    @property
    def fired(self) -> Tuple[InjectedFault, ...]:
        return tuple(self._fired)

    @property
    def checks(self) -> int:
        return self._checks

    def spec(self, point: FaultPoint) -> Optional[FaultSpec]:
        return self._specs.get(point)

    def count(self, point: FaultPoint) -> int:
        return self._fired_per_point.get(point, 0)

    def summary(self) -> Dict[str, int]:
        """Fired-fault counts per point value (for reports/experiments)."""
        return {
            point.value: count
            for point, count in sorted(
                self._fired_per_point.items(), key=lambda kv: kv[0].value
            )
        }

    # -- the injection decision ---------------------------------------------

    def check(self, point: FaultPoint, key: str) -> Optional[InjectedFault]:
        """Draw once for ``(point, key)``; returns the fault if it fires.

        Repeated checks of the same pair (a retry of the same pod) draw
        the *next* value of that pair's stream, so a transient fault can
        fire on attempt 1 and pass on attempt 2 — deterministically.
        """
        spec = self._specs.get(point)
        if spec is None or spec.probability <= 0.0:
            return None
        self._checks += 1
        self._m_checks.inc()
        used = self._fired_per_point.get(point, 0)
        if spec.max_occurrences is not None and used >= spec.max_occurrences:
            return None
        draw = float(self._rng.stream(f"fault/{point.value}/{key}").random())
        if draw >= spec.probability:
            return None
        fault = InjectedFault(
            point=point,
            key=key,
            occurrence=used + 1,
            transient=spec.transient,
            message=spec.message
            or f"injected {'transient' if spec.transient else 'permanent'} "
            f"fault at {point.value}",
        )
        self._fired_per_point[point] = used + 1
        self._fired.append(fault)
        self._m_injected.labels(point.value).inc()
        return fault

    def raise_if_fires(self, point: FaultPoint, key: str) -> None:
        """Check and raise :class:`FaultInjected` when the point fires."""
        fault = self.check(point, key)
        if fault is not None:
            raise FaultInjected(
                f"{fault.message} (key={key}, occurrence={fault.occurrence})",
                point=point.value,
                transient=fault.transient,
            )


def transient_plan(
    seed: int = 0,
    pull_probability: float = 0.3,
    compile_probability: float = 0.3,
    budget_per_point: Optional[int] = None,
) -> FaultPlan:
    """The recovery experiment's default plan: transient pull + compile
    failures at the paper-relevant rates (≥30% per attempt)."""
    return FaultPlan(
        [
            FaultSpec(
                FaultPoint.IMAGE_PULL,
                probability=pull_probability,
                transient=True,
                max_occurrences=budget_per_point,
            ),
            FaultSpec(
                FaultPoint.ENGINE_COMPILE,
                probability=compile_probability,
                transient=True,
                max_occurrences=budget_per_point,
            ),
        ],
        seed=seed,
    )
